// The year is 2086. A historian finds a reel of emblems and a printed
// Bootstrap document. No Micr'Olonys software survives — only this
// scenario's rule: the historian may use nothing but (a) the Bootstrap
// text, (b) the scanned frames, and (c) a VeRisc emulator they wrote
// themselves from Part I of the Bootstrap.
//
// This example plays that scenario end to end: the "historian's emulator"
// is one of the independently written implementations in
// src/verisc/implementations.cc, and restoration goes exclusively through
// core::RestoreEmulated (nested emulation of the archived decoders).
//
// Everything the historian must know about what is on the film — emblem
// geometry, the two RS layers, the container formats, the Bootstrap
// letter encoding and restoration chain — is specified for them in
// docs/FORMAT.md (format version core::kUleFormatVersion).

#include <cstdio>

#include "core/micr_olonys.h"
#include "olonys/bootstrap.h"
#include "verisc/implementations.h"

using namespace ule;

int main() {
  // ---- 2026: a small database is archived ----
  const std::string dump =
      "CREATE TABLE ledgers (\n"
      "    entry bigint,\n"
      "    amount decimal(15,2),\n"
      "    memo varchar\n"
      ");\n"
      "COPY ledgers (entry, amount, memo) FROM stdin;\n"
      "1\t12.50\tfirst entry\n"
      "2\t-3.75\tcorrection\n"
      "3\t100.00\tdeposit for the long future\n"
      "\\.\n";
  core::ArchiveOptions options;
  options.emblem.data_side = 65;
  auto archive = core::ArchiveDump(dump, options);
  if (!archive.ok()) return 1;

  std::printf("2026: archived %zu bytes as %zu data + %zu system emblems\n",
              dump.size(), archive.value().data_images.size(),
              archive.value().system_images.size());
  std::printf("      Bootstrap: %d pages (%d lines of pseudocode)\n",
              olonys::PageCount(archive.value().bootstrap_text),
              olonys::PseudocodeLineCount());

  // ---- 2086: only these three artefacts survive ----
  const std::string bootstrap = archive.value().bootstrap_text;
  const std::vector<media::Image> data_scans = archive.value().data_images;
  const std::vector<media::Image> system_scans = archive.value().system_images;

  // The historian implements VeRisc from Part I. We stand in three
  // different people, each with their own implementation.
  for (const auto& impl : verisc::AllImplementations()) {
    core::RestoreStats stats;
    auto restored =
        core::RestoreEmulated(data_scans, system_scans, bootstrap,
                              options.emblem, &stats, impl.run);
    if (!restored.ok()) {
      std::printf("2086 [%s]: FAILED: %s\n", impl.name.c_str(),
                  restored.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "2086 [%-9s %3d LoC]: restored %zu bytes, byte-exact: %s "
        "(%llu VeRisc instructions)\n",
        impl.name.c_str(), impl.lines_of_code, restored.value().size(),
        restored.value() == dump ? "yes" : "NO",
        static_cast<unsigned long long>(stats.emulated_steps));
    if (restored.value() != dump) return 1;
  }
  std::printf("the archive outlived its software. QED.\n");
  return 0;
}
