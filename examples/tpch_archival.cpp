// The paper-archive scenario (§4, experiment E4): a TPC-H database is
// dumped to ~a configurable size, archived as emblems sized for A4 paper
// at 600 dpi, and restored. Prints the same quantities the paper reports
// (emblem count, per-page density).

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/micr_olonys.h"
#include "media/profiles.h"
#include "minidb/sqldump.h"
#include "support/parallel.h"
#include "tpch/tpch.h"

using namespace ule;
using Clock = std::chrono::steady_clock;

int main(int argc, char** argv) {
  // Usage: tpch_archival [dump_bytes] [threads]
  // Default 120 KB keeps the example fast; pass a size for the full-paper
  // 1.2 MB run (bench_paper_archive does that with timing tables).
  const size_t target = argc > 1 ? std::strtoul(argv[1], nullptr, 10)
                                 : 120 * 1000;
  // Archive/restore parallelism: argv[2] if given, else ULE_THREADS, else
  // all hardware threads (1 = serial; output is identical either way).
  const int threads = argc > 2 ? std::atoi(argv[2]) : 0;

  std::printf("generating TPC-H for a ~%zu byte dump...\n", target);
  auto db = tpch::GenerateForDumpSize(target);
  if (!db.ok()) return 1;
  const std::string dump = minidb::DumpSql(db.value());
  std::printf("dump: %zu bytes, %zu rows\n", dump.size(),
              db.value().TotalRows());

  const media::MediaProfile profile = media::PaperA4Laser600();
  core::ArchiveOptions options;
  // Emblem sized to the printable width of A4 at 600 dpi.
  options.emblem.dots_per_cell = 5;
  options.emblem.data_side =
      profile.frame_width / 5 - 2 * 5 - 2 * 2;  // frame/pitch - rings - quiet
  options.emblem.threads = threads;
  std::printf("pipeline threads: %d\n", ResolveThreadCount(threads));

  const auto t0 = Clock::now();
  auto archive = core::ArchiveDump(dump, options);
  const auto t1 = Clock::now();
  if (!archive.ok()) {
    std::printf("archive failed: %s\n", archive.status().ToString().c_str());
    return 1;
  }
  const double encode_s =
      std::chrono::duration<double>(t1 - t0).count();
  const size_t pages = archive.value().data_images.size();
  std::printf("emblems: %zu data + %zu system (paper reports 26 data for "
              "1.2 MB)\n",
              archive.value().data_emblems.size(),
              archive.value().system_emblems.size());
  std::printf("density: %.1f KB/page (paper: 50 KB/page)\n",
              pages ? static_cast<double>(dump.size()) / 1000.0 / pages : 0);
  std::printf("encode time: %.2f s\n", encode_s);

  const auto t2 = Clock::now();
  mocoder::Options restore_options = archive.value().emblem_options;
  restore_options.threads = threads;  // recorded options are always auto
  auto restored = core::RestoreNative(archive.value().data_images,
                                      archive.value().system_images,
                                      restore_options);
  const auto t3 = Clock::now();
  if (!restored.ok()) {
    std::printf("restore failed: %s\n", restored.status().ToString().c_str());
    return 1;
  }
  std::printf("restore time: %.2f s; byte-exact: %s\n",
              std::chrono::duration<double>(t3 - t2).count(),
              restored.value() == dump ? "yes" : "NO");
  return restored.value() == dump ? 0 : 1;
}
