// Quickstart: archive a small database to emblems and restore it.
//
// Demonstrates the whole public API surface in ~60 lines: build a database,
// dump it (db_dump), archive the dump (DBCoder + MOCoder + Bootstrap),
// pretend decades pass, then restore and reload it.
//
// Usage: quickstart [threads]

#include <cstdio>
#include <cstdlib>

#include "core/micr_olonys.h"
#include "dbcoder/dbcoder.h"
#include "decoders/dbdecode.h"
#include "minidb/database.h"
#include "minidb/sqldump.h"
#include "olonys/dynarisc_in_verisc.h"
#include "support/parallel.h"
#include "verisc/machine.h"

using namespace ule;

int main(int argc, char** argv) {
  // Pipeline parallelism knob, in priority order: argv[1] here, the
  // ULE_THREADS environment variable, then all hardware threads. 1 means
  // fully serial. Output is byte-identical at any setting — the thread
  // count is a property of this machine, never of the archive.
  const int threads = argc > 1 ? std::atoi(argv[1]) : 0;
  // 1. A database worth keeping for 50 years.
  minidb::Database db;
  minidb::Schema schema;
  schema.columns = {{"id", minidb::Type::kInt, 0},
                    {"name", minidb::Type::kText, 0},
                    {"balance", minidb::Type::kDecimal, 2}};
  minidb::Table* accounts = db.CreateTable("accounts", schema).TakeValue();
  accounts->Insert({minidb::Value::Int(1), minidb::Value::Text("CODD"),
                    minidb::Value::Decimal(1000)}).ok();
  accounts->Insert({minidb::Value::Int(2), minidb::Value::Text("GRAY"),
                    minidb::Value::Decimal(2000)}).ok();

  // 2. db_dump: the software-independent textual archive.
  const std::string dump = minidb::DumpSql(db);
  std::printf("dump: %zu bytes\n%s\n", dump.size(), dump.c_str());

  // 3. Archive: compress, encode to emblems, generate the Bootstrap.
  core::ArchiveOptions options;
  options.emblem.data_side = 65;  // small emblems for a small database
  options.emblem.threads = threads;
  std::printf("pipeline threads: %d\n", ResolveThreadCount(threads));
  auto archive = core::ArchiveDump(dump, options);
  if (!archive.ok()) {
    std::printf("archive failed: %s\n", archive.status().ToString().c_str());
    return 1;
  }
  std::printf("archived: %zu data emblem(s), %zu system emblem(s), "
              "Bootstrap of %zu characters\n",
              archive.value().data_emblems.size(),
              archive.value().system_emblems.size(),
              archive.value().bootstrap_text.size());

  // 4. Decades later: restore from the rendered frames. The recorded
  // emblem_options carry threads = 0 (the restorer picks its own
  // parallelism); re-apply this machine's knob for the restore side.
  mocoder::Options restore_options = archive.value().emblem_options;
  restore_options.threads = threads;
  auto restored = core::RestoreNative(archive.value().data_images,
                                      archive.value().system_images,
                                      restore_options);
  if (!restored.ok()) {
    std::printf("restore failed: %s\n", restored.status().ToString().c_str());
    return 1;
  }
  std::printf("restored dump matches: %s\n",
              restored.value() == dump ? "yes" : "NO");

  // 5. db_load into a future DBMS.
  auto reloaded = minidb::LoadSql(restored.value());
  if (!reloaded.ok()) return 1;
  auto sum = reloaded.value().GetTable("accounts")->SumWhere("balance", nullptr);
  std::printf("sum(balance) after restoration: %.2f\n",
              static_cast<double>(sum.value()) / 100.0);

  // 6. Under the hood of the fully emulated restore: the archived
  // DBDecode program (DynaRISC) interpreted by the archived interpreter
  // (itself a VeRISC program) on the 4-instruction Machine, driven in
  // bounded slices — with the dispatch core's own instrumentation.
  auto container = dbcoder::Encode(ToBytes(dump), dbcoder::Scheme::kLzac);
  if (!container.ok()) return 1;
  const Bytes packed =
      olonys::PackNestedInput(decoders::DbDecodeProgram(), container.value());
  verisc::Machine vm;
  if (!vm.Load(olonys::DynaRiscInterpreter()).ok()) return 1;
  vm.SetInput(packed);
  while (vm.RunFor(1u << 22) == verisc::MachineState::kPaused) {
  }
  const verisc::Machine::RunStats rs = vm.LastRunStats();
  std::printf("nested emulation decoded the container: %s — %llu VeRISC "
              "instructions in %llu slices, %.1f%% retired fused\n",
              vm.output() == ToBytes(dump) ? "byte-identical" : "MISMATCH",
              static_cast<unsigned long long>(rs.retired),
              static_cast<unsigned long long>(rs.slices),
              rs.retired ? 100.0 * rs.fused / rs.retired : 0.0);
  if (vm.output() != ToBytes(dump)) return 1;
  return restored.value() == dump ? 0 : 1;
}
