// Emblem gallery: renders a Figure-1-style emblem (and its system-emblem
// sibling) to PGM files, then damages and re-decodes one to show the
// inner Reed-Solomon protection at work.

#include <cstdio>

#include "mocoder/detect.h"
#include "mocoder/emblem.h"
#include "mocoder/mocoder.h"
#include "support/crc32.h"
#include "support/random.h"

using namespace ule;
using namespace ule::mocoder;

int main() {
  const int n = 128;
  Rng rng(2021);
  Bytes payload(static_cast<size_t>(EmblemCapacity(n)));
  for (auto& b : payload) b = static_cast<uint8_t>(rng.Below(256));

  EmblemHeader header;
  header.stream = StreamId::kData;
  header.stream_len = static_cast<uint32_t>(payload.size());
  header.payload_crc = Crc32(payload);
  auto grid = BuildEmblem(header, payload, n);
  if (!grid.ok()) return 1;
  const media::Image img = RenderEmblem(grid.value(), 6);
  if (!img.SavePgm("emblem_data.pgm").ok()) return 1;
  std::printf("wrote emblem_data.pgm (%dx%d px, %d bytes of payload)\n",
              img.width(), img.height(), EmblemCapacity(n));

  EmblemHeader sys_header = header;
  sys_header.stream = StreamId::kSystem;
  auto sys_grid = BuildEmblem(sys_header, payload, n);
  if (!sys_grid.ok()) return 1;
  RenderEmblem(sys_grid.value(), 6).SavePgm("emblem_system.pgm").ok();
  std::printf("wrote emblem_system.pgm (inverted sync row marks the type)\n");

  // Scratch a band across the data area and decode anyway.
  media::Image damaged = img;
  damaged.FillRect(0, img.height() / 2, img.width(), 10, 128);
  damaged.SavePgm("emblem_damaged.pgm").ok();
  auto cells = SampleEmblem(damaged, n);
  if (!cells.ok()) return 1;
  EmblemDecodeInfo info;
  auto decoded = DecodeEmblemIntensities(cells.value(), n, nullptr, &info);
  if (!decoded.ok()) {
    std::printf("damaged emblem unrecoverable: %s\n",
                decoded.status().ToString().c_str());
    return 1;
  }
  std::printf("damaged emblem decoded: payload intact=%s, RS corrected %d "
              "byte errors across %d blocks\n",
              decoded.value() == payload ? "yes" : "NO",
              info.rs_errors_corrected, info.blocks);
  return decoded.value() == payload ? 0 : 1;
}
