// Film restoration: archive an image payload to 35 mm cinema-film frames
// (the paper's third experiment), age and scan the film with damage —
// including losing whole frames — and restore the payload.

#include <cstdio>

#include "core/micr_olonys.h"
#include "media/profiles.h"
#include "media/scanner.h"
#include "support/random.h"

using namespace ule;

int main() {
  // A ~102 KB synthetic "logo" payload (the paper archived a 102 KB TIFF).
  Rng rng(1968);
  std::string payload;
  payload.reserve(102 * 1000);
  while (payload.size() < 102 * 1000) {
    payload += "OLONYS LOGO SCANLINE ";
    for (int i = 0; i < 24; ++i) {
      payload.push_back(static_cast<char>('0' + rng.Below(10)));
    }
    payload.push_back('\n');
  }

  const media::MediaProfile film = media::CinemaFilm35mm();
  core::ArchiveOptions options;
  options.emblem.dots_per_cell = 2;  // 2K frames scanned at 4K
  options.emblem.data_side = film.frame_height / 2 - 2 * 5 - 2 * 2;

  auto archive = core::ArchiveDump(payload, options);
  if (!archive.ok()) {
    std::printf("archive failed: %s\n", archive.status().ToString().c_str());
    return 1;
  }
  std::printf("payload: %zu bytes -> %zu data emblems in %dx%d frames "
              "(paper: 102 KB -> 3 emblems)\n",
              payload.size(), archive.value().data_emblems.size(),
              film.frame_width, film.frame_height);

  // The film ages in the vault, then is scanned; frame 1 is lost outright.
  std::vector<media::Image> data_scans;
  for (size_t i = 0; i < archive.value().data_images.size(); ++i) {
    if (i == 1) {
      std::printf("frame %zu: destroyed (splice damage)\n", i);
      continue;
    }
    media::ScanProfile aging;
    aging.fade = 0.15;
    aging.dust_per_megapixel = 4;
    aging.scratch_count = 1;
    aging.seed = 100 + i;
    const media::Image aged = media::Age(archive.value().data_images[i], aging);
    data_scans.push_back(media::Scan(aged, film.scan));
  }
  std::vector<media::Image> system_scans;
  for (const auto& img : archive.value().system_images) {
    system_scans.push_back(media::Scan(img, film.scan));
  }

  core::RestoreStats stats;
  auto restored = core::RestoreNative(data_scans, system_scans,
                                      archive.value().emblem_options, &stats);
  if (!restored.ok()) {
    std::printf("restore failed: %s\n", restored.status().ToString().c_str());
    return 1;
  }
  std::printf("decoded %d/%d scanned emblems, outer code rebuilt %d lost "
              "emblem(s), %d byte errors corrected by the inner code\n",
              stats.data_stream.emblems_decoded,
              stats.data_stream.emblems_total,
              stats.data_stream.emblems_recovered,
              stats.data_stream.rs_errors_corrected);
  std::printf("payload byte-exact after restoration: %s\n",
              restored.value() == payload ? "yes" : "NO");
  return restored.value() == payload ? 0 : 1;
}
