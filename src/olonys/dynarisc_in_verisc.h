/// \file dynarisc_in_verisc.h
/// \brief The DynaRisc emulator implemented as a VeRisc program — the
/// paper's nested emulation core (§3.2).
///
/// "Using just these four VeRisc instructions, we have built an emulator
/// that can interpret the broader DynaRisc ISA." This module is that
/// artefact: a VeRisc instruction stream, generated once via the VeRisc
/// macro-assembler, which fetches, decodes and executes DynaRisc programs.
/// It is this program (letter-encoded) that gets archived in the Bootstrap
/// document, so a future user who has implemented the 4-instruction VeRisc
/// machine can run the archived DynaRisc decoders without knowing anything
/// about DynaRisc itself.
///
/// ## Input protocol (self-contained bootstrapping)
/// The interpreter receives everything through the VeRisc input port:
///
///     [entry.lo, entry.hi]  [len b0..b3, little-endian]  [len image bytes]
///     [... remaining bytes = the DynaRisc program's own input stream]
///
/// and forwards the guest's SYS output to the VeRisc output port. No host
/// pokes VeRisc memory: a future implementer only needs the I/O ports.
///
/// ## VeRisc memory layout used by the interpreter
///
///     0x00010 .. code+data   the interpreter itself (< 0x10000)
///     0x10000  LSR1 table    lsr1[v] = v >> 1            (64 Ki words)
///     0x20000  OP table      op[w]   = w >> 11           (64 Ki words)
///     0x30000  RD table      rd[w]   = (w >> 8) & 7      (64 Ki words)
///     0x40000  RS table      rs[w]   = (w >> 5) & 7      (64 Ki words)
///     0x50000  guest memory  one DynaRisc byte per word  (64 Ki words)
///     0x60000  SHR8 table    shr8[v] = v >> 8            (64 Ki words)
///     0x70000  SHL8 table    shl8[b] = b << 8            (256 words)
///
/// The tables are filled at startup by a generic fill routine (VeRisc has
/// no shift instruction; the tables *are* the shifter). DynaRisc's 16-bit
/// registers and flags live in interpreter cells.

#ifndef ULE_OLONYS_DYNARISC_IN_VERISC_H_
#define ULE_OLONYS_DYNARISC_IN_VERISC_H_

#include <array>
#include <cstdint>

#include "dynarisc/machine.h"
#include "support/bytes.h"
#include "support/status.h"
#include "verisc/verisc.h"

namespace ule {
namespace olonys {

/// Table / guest-region base addresses (word addresses in VeRisc memory).
inline constexpr uint32_t kLsr1Base = 0x10000;
inline constexpr uint32_t kOpBase = 0x20000;
inline constexpr uint32_t kRdBase = 0x30000;
inline constexpr uint32_t kRsBase = 0x40000;
inline constexpr uint32_t kGuestBase = 0x50000;
inline constexpr uint32_t kShr8Base = 0x60000;
inline constexpr uint32_t kShl8Base = 0x70000;

/// Per-guest-address predecode tables used only by the warm-start
/// interpreter variant (never archived; a future implementer sees only the
/// cold layout above). `handler[a]` is the VeRisc address of the handler
/// for the instruction starting at guest address `a`; the other three hold
/// its decoded rd/rs/mode fields. Host-computed by the translation cache;
/// kept coherent under guest self-modification by STM/CALL invalidation.
inline constexpr uint32_t kHandlerBase = 0x80000;
inline constexpr uint32_t kRdIdxBase = 0x90000;
inline constexpr uint32_t kRsIdxBase = 0xA0000;
inline constexpr uint32_t kModeIdxBase = 0xB0000;

/// Returns the (memoised) DynaRisc interpreter as a VeRisc program.
/// Generation is deterministic: the same program words on every call and
/// every platform, which is what makes it archivable.
const verisc::Program& DynaRiscInterpreter();

/// \brief The warm-start interpreter variant plus its host-poke metadata.
///
/// Same guest semantics as DynaRiscInterpreter(), but it skips the startup
/// work entirely (no table fill, no header parse, no image copy) and
/// dispatches through the per-address predecode tables: the host loads the
/// static tables, the guest image, the predecoded handler/operand tables
/// and the entry point directly into machine memory, and the input port
/// carries only the guest's own input stream. This program is an engine
/// acceleration — it is never archived and never leaves this process.
struct WarmInterpreter {
  verisc::Program program;
  /// Cell address to poke with the guest entry point before running.
  uint32_t gpc_addr = 0;
  /// VeRisc handler address per 5-bit guest opcode (23..31 = halt).
  std::array<uint32_t, 32> handler_addr{};
};
const WarmInterpreter& WarmDynaRiscInterpreter();

/// Packs a DynaRisc program and its input stream into the interpreter's
/// input protocol described above.
Bytes PackNestedInput(const dynarisc::Program& program, BytesView input);

/// Which execution path RunNested takes on the reference VeRisc engine.
enum class NestedMode {
  kAuto,        ///< translated when available, else cold
  kCold,        ///< always boot the archived interpreter from the ports
  kTranslated,  ///< require the cached-translation warm path
};

/// Observability for one RunNested call (bench/test instrumentation).
struct NestedRunStats {
  bool translated = false;   ///< warm path taken
  bool cache_hit = false;    ///< translation served from the shared cache
  uint64_t steps = 0;        ///< VeRisc instructions retired
  uint64_t fused = 0;        ///< of those, retired in fused superinstructions
};

/// \brief Runs `program` under nested emulation: the DynaRisc interpreter
/// (a VeRisc program) executes it on top of the VeRisc implementation `vm`
/// (defaults to the library reference; the portability experiment passes
/// the independently written ones).
///
/// Returns the guest's output bytes. The guest halting via SYS #2 (or
/// hitting an illegal opcode, which the archived interpreter defines as
/// halt) ends the run.
///
/// On the reference engine the guest's instruction stream is predecoded
/// once per program via the shared translation cache and later frames skip
/// the interpreter's startup and fetch/decode work (`mode` selects the
/// path explicitly for tests; foreign `vm` implementations always take the
/// cold archival protocol). Output bytes are identical on every path.
Result<Bytes> RunNested(const dynarisc::Program& program, BytesView input,
                        const verisc::RunOptions& options = {},
                        verisc::VmFunction vm = &verisc::Run,
                        NestedMode mode = NestedMode::kAuto,
                        NestedRunStats* stats = nullptr);

/// Test hook: overrides the engine slice size used by RunNested's
/// incremental loop (0 restores the default). Lets tests exercise
/// mid-slice pauses cheaply.
void SetNestedSliceStepsForTest(uint64_t steps);

}  // namespace olonys
}  // namespace ule

#endif  // ULE_OLONYS_DYNARISC_IN_VERISC_H_
