#include "olonys/dynarisc_in_verisc.h"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "dynarisc/isa.h"
#include "olonys/translation_cache.h"
#include "verisc/builder.h"
#include "verisc/machine.h"

namespace ule {
namespace olonys {
namespace {

using verisc::Builder;
using Cell = Builder::Cell;
using Label = Builder::Label;
using Fn = Builder::Fn;

/// Engine slice size for incremental nested emulation (~tens of ms per
/// slice at current dispatch throughput).
inline constexpr uint64_t kNestedSliceSteps = 1ull << 24;

/// Test override for the slice size (0 = use the default).
std::atomic<uint64_t> g_nested_slice_steps{0};

uint64_t NestedSliceSteps() {
  const uint64_t v = g_nested_slice_steps.load(std::memory_order_relaxed);
  return v != 0 ? v : kNestedSliceSteps;
}

/// Generates the interpreter. Structured as one long emitter; every guest
/// architectural element is an interpreter cell, every opcode a handler.
///
/// With `warm_out` set, generates the warm-start variant instead: no table
/// fill and no input-protocol startup (the host pokes the static tables,
/// the guest image and the entry point directly), and the cold main loop's
/// fetch + table decode is replaced by one dispatch through the
/// per-address predecode tables, with per-opcode prologues reading the
/// instruction's predecoded rd/rs/mode fields. STM and CALL redirect the
/// handler-table entries covering every byte they overwrite to a redecode
/// routine, which keeps predecode coherent under guest self-modification.
/// Guest-visible semantics are identical by construction: both variants
/// share every handler body, and immediates are always fetched live from
/// guest memory.
verisc::Program BuildInterpreter(WarmInterpreter* warm_out) {
  const bool warm = warm_out != nullptr;
  Builder b;

  // ---- guest architectural state ----
  const Cell gr = b.NewArray(8);    // R0..R7
  const Cell gd = b.NewArray(4);    // D0..D3
  const Cell ghi = b.NewCell();
  const Cell gz = b.NewCell();      // 0/1
  const Cell gc = b.NewCell();      // 0/1
  const Cell gpc = b.NewCell();

  // ---- interpreter scratch ----
  const Cell fetched = b.NewCell();  // last fetched 16-bit word
  const Cell fhi = b.NewCell();
  const Cell opc = b.NewCell();
  const Cell rdc = b.NewCell();
  const Cell rsc = b.NewCell();
  const Cell modec = b.NewCell();
  const Cell va = b.NewCell();      // first ALU operand (R[rd])
  const Cell vb = b.NewCell();      // second ALU operand (R[rs])
  const Cell val = b.NewCell();     // result in flight / SET_Z input
  const Cell val32 = b.NewCell();   // wide intermediate
  const Cell ptr = b.NewCell();
  const Cell ptr2 = b.NewCell();
  const Cell idx = b.NewCell();
  const Cell amt = b.NewCell();
  const Cell sbit = b.NewCell();
  const Cell mul_i = b.NewCell();
  const Cell plo = b.NewCell();
  const Cell phi = b.NewCell();
  const Cell mlo = b.NewCell();
  const Cell mhi = b.NewCell();
  const Cell nn = b.NewCell();
  const Cell h0 = b.NewCell();
  const Cell h1 = b.NewCell();
  const Cell h2 = b.NewCell();
  const Cell loadlen = b.NewCell();

  // ---- generic table-fill routine ----
  // for (k = 0, v = 0, dst = f_dst; dst != f_end; ) {
  //   mem[dst++] = v; ++k;
  //   if ((k & f_pmask) == 0) v = (v + f_vstep) & f_vmask;
  // }
  const Cell f_dst = b.NewCell();
  const Cell f_end = b.NewCell();
  const Cell f_pmask = b.NewCell();
  const Cell f_vmask = b.NewCell();
  const Cell f_vstep = b.NewCell();
  const Cell f_v = b.NewCell();
  const Cell f_k = b.NewCell();
  Fn fill{};  // cold only: warm tables are host-poked, never filled
  if (!warm) fill = b.DeclareFn();

  // Warm-only plumbing: the redecode routine's address (for invalidation
  // stores) and an address scratch cell for the `ptr - 1` computation.
  Label redecode{};
  Cell redec_c{};
  Cell inv_a{};
  if (warm) {
    redecode = b.NewLabel();
    redec_c = b.NewLabelCell(redecode);
    inv_a = b.NewCell();
  }

  // ---- helper functions ----
  const Fn fetch = b.DeclareFn();   // fetched <- next guest word; GPC += 2
  const Fn setz = b.DeclareFn();    // gz <- (val == 0)
  const Fn load_ab = b.DeclareFn(); // va <- GR[rd], vb <- GR[rs]
  const Fn store_rd = b.DeclareFn();// GR[rd] <- val; gz <- (val == 0)

  // Jump past the function bodies to the start-up code.
  const Label start = b.NewLabel();
  b.Jmp(start);

  // ---------------------------------------------------------------- fill
  if (!warm) {
    b.BeginFn(fill);
    b.LdImm(0);
    b.St(f_v);
    b.St(f_k);
    const Label loop = b.NewLabel();
    b.Bind(loop);
    b.Ld(f_v);
    b.StIndexedAbs(0, f_dst);  // mem[f_dst] <- v
    b.Ld(f_dst);
    b.AddImm(1);
    b.St(f_dst);
    b.Ld(f_k);
    b.AddImm(1);
    b.St(f_k);
    b.And(f_pmask);
    const Label no_step = b.NewLabel();
    b.Jnz(no_step);
    b.Ld(f_v);
    b.AddCell(f_vstep);
    b.And(f_vmask);
    b.St(f_v);
    b.Bind(no_step);
    b.Ld(f_dst);
    b.SubCell(f_end);
    b.Jnz(loop);
    b.Ret(fill);
  }

  // Warm handler prologue: read the instruction's predecoded fields, then
  // step GPC past the instruction word (the cold main loop does both via
  // fetch + table decode before dispatching).
  auto warm_prologue = [&](bool rd, bool rs, bool mode) {
    if (!warm) return;
    if (rd) {
      b.LdIndexedAbs(kRdIdxBase, gpc);
      b.St(rdc);
    }
    if (rs) {
      b.LdIndexedAbs(kRsIdxBase, gpc);
      b.St(rsc);
    }
    if (mode) {
      b.LdIndexedAbs(kModeIdxBase, gpc);
      b.St(modec);
    }
    b.Ld(gpc);
    b.AddImm(2);
    b.AndImm(0xFFFF);
    b.St(gpc);
  };

  // Warm: the guest just overwrote the byte at guest address mem[addr];
  // any instruction covering that byte must be redecoded before it runs
  // again, so point its handler entry at the redecode routine. (Stale
  // rd/rs/mode entries are harmless: execution always routes through the
  // handler table, and redecode refreshes all four.)
  auto warm_invalidate = [&](Cell addr) {
    if (!warm) return;
    b.Ld(redec_c);
    b.StIndexedAbs(kHandlerBase, addr);
  };

  // --------------------------------------------------------------- fetch
  b.BeginFn(fetch);
  {
    b.LdIndexedAbs(kGuestBase, gpc);
    b.St(fetched);
    b.Ld(gpc);
    b.AddImm(1);
    b.AndImm(0xFFFF);
    b.St(gpc);
    b.LdIndexedAbs(kGuestBase, gpc);
    b.St(fhi);
    b.Ld(gpc);
    b.AddImm(1);
    b.AndImm(0xFFFF);
    b.St(gpc);
    b.LdIndexedAbs(kShl8Base, fhi);
    b.AddCell(fetched);
    b.St(fetched);
    b.Ret(fetch);
  }

  // ---------------------------------------------------------------- setz
  b.BeginFn(setz);
  {
    const Label is_zero = b.NewLabel();
    b.Ld(val);
    b.Jz(is_zero);
    b.LdImm(0);
    b.St(gz);
    b.Ret(setz);
    b.Bind(is_zero);
    b.LdImm(1);
    b.St(gz);
    b.Ret(setz);
  }

  // ------------------------------------------------------------- load_ab
  b.BeginFn(load_ab);
  {
    b.LdIndexed(gr, rdc);
    b.St(va);
    b.LdIndexed(gr, rsc);
    b.St(vb);
    b.Ret(load_ab);
  }

  // ------------------------------------------------------------ store_rd
  b.BeginFn(store_rd);
  {
    b.Ld(val);
    b.StIndexed(gr, rdc);
    b.Call(setz);
    b.Ret(store_rd);
  }

  // Emits: gc <- (val32 has bit 16 set) ? 1 : 0.
  auto emit_carry_from_bit16 = [&]() {
    const Label no_carry = b.NewLabel();
    const Label done = b.NewLabel();
    b.Ld(val32);
    b.AndImm(0x10000);
    b.Jz(no_carry);
    b.LdImm(1);
    b.St(gc);
    b.Jmp(done);
    b.Bind(no_carry);
    b.LdImm(0);
    b.St(gc);
    b.Bind(done);
  };

  // Emits: gc <- borrow currently in the VeRisc borrow flag.
  auto emit_carry_from_borrow = [&]() {
    b.LdMapped(2);  // mask: all-ones iff borrow
    b.AndImm(1);
    b.St(gc);
  };

  // ------------------------------------------------------------ dispatch
  const Label mainloop = b.NewLabel();
  const Label halt_handler = b.NewLabel();
  std::vector<Label> handlers(32);
  for (int i = 0; i < 32; ++i) {
    handlers[i] =
        (i < dynarisc::kOpcodeCount) ? b.NewLabel() : halt_handler;
  }
  // Illegal opcodes (23..31) share the halt handler label; create it once.
  // (halt_handler is bound below.)
  const Cell jt = b.NewJumpTable(handlers);

  // ------------------------------------------------------------- startup
  b.Bind(start);
  if (warm) {
    // The host has already poked the static tables, the guest image, the
    // predecode tables and the entry point; the input port carries only
    // the guest's own stream. Nothing to set up.
    b.Jmp(mainloop);
  } else {
    // Fill LSR1: period 2 (pmask 1), step 1, no wrap.
    auto call_fill = [&](uint32_t dst, uint32_t count, uint32_t pmask,
                         uint32_t vmask, uint32_t vstep) {
      b.LdImm(dst);
      b.St(f_dst);
      b.LdImm(dst + count);
      b.St(f_end);
      b.LdImm(pmask);
      b.St(f_pmask);
      b.LdImm(vmask);
      b.St(f_vmask);
      b.LdImm(vstep);
      b.St(f_vstep);
      b.Call(fill);
    };
    call_fill(kLsr1Base, 0x10000, 1, 0xFFFFFFFFu, 1);      // v >> 1
    call_fill(kOpBase, 0x10000, 2047, 0xFFFFFFFFu, 1);     // w >> 11
    call_fill(kRdBase, 0x10000, 255, 7, 1);                // (w >> 8) & 7
    call_fill(kRsBase, 0x10000, 31, 7, 1);                 // (w >> 5) & 7
    call_fill(kShl8Base, 256, 0, 0xFFFFFFFFu, 256);        // b << 8
    call_fill(kShr8Base, 0x10000, 255, 0xFFFFFFFFu, 1);    // v >> 8

    // Header: entry (2 bytes) + length (4 bytes, only 17 bits meaningful).
    b.InByte();
    b.St(h0);
    b.InByte();
    b.St(h1);
    b.LdIndexedAbs(kShl8Base, h1);
    b.AddCell(h0);
    b.St(gpc);

    b.InByte();
    b.St(h0);
    b.InByte();
    b.St(h1);
    b.InByte();
    b.St(h2);
    b.InByte();  // length byte 3: always zero, discarded
    b.LdIndexedAbs(kShl8Base, h1);
    b.AddCell(h0);
    b.St(loadlen);
    const Label len_small = b.NewLabel();
    b.Ld(h2);
    b.Jz(len_small);
    b.Ld(loadlen);
    b.AddImm(0x10000);
    b.St(loadlen);
    b.Bind(len_small);

    // Copy the image into guest memory.
    b.LdImm(0);
    b.St(idx);
    const Label copy_loop = b.NewLabel();
    const Label copy_done = b.NewLabel();
    b.Bind(copy_loop);
    b.Ld(idx);
    b.SubCell(loadlen);
    b.Jz(copy_done);
    b.InByte();
    b.StIndexedAbs(kGuestBase, idx);
    b.Ld(idx);
    b.AddImm(1);
    b.St(idx);
    b.Jmp(copy_loop);
    b.Bind(copy_done);
    b.Jmp(mainloop);
  }

  // ------------------------------------------------------------ mainloop
  b.Bind(mainloop);
  if (warm) {
    // PC <- handler[gpc]: one predecoded dispatch replaces the cold
    // loop's fetch call and three table lookups.
    b.LdIndexedAbs(kHandlerBase, gpc);
    b.StMapped(1);
  } else {
    b.Call(fetch);
    b.LdIndexedAbs(kOpBase, fetched);
    b.St(opc);
    b.LdIndexedAbs(kRdBase, fetched);
    b.St(rdc);
    b.LdIndexedAbs(kRsBase, fetched);
    b.St(rsc);
    b.Ld(fetched);
    b.AndImm(31);
    b.St(modec);
    // PC <- jump_table[op]
    b.LdIndexed(jt, opc);
    b.StMapped(1);
  }

  // ------------------------------------------------------------ ADD / ADC
  for (const bool with_carry : {false, true}) {
    b.Bind(handlers[with_carry ? dynarisc::kAdc : dynarisc::kAdd]);
    warm_prologue(true, true, false);
    b.Call(load_ab);
    b.Ld(va);
    b.AddCell(vb);
    if (with_carry) b.AddCell(gc);
    b.St(val32);
    emit_carry_from_bit16();
    b.Ld(val32);
    b.AndImm(0xFFFF);
    b.St(val);
    b.Call(store_rd);
    b.Jmp(mainloop);
  }

  // ------------------------------------------------------ SUB / SBB / CMP
  for (const uint8_t op : {dynarisc::kSub, dynarisc::kSbb, dynarisc::kCmp}) {
    b.Bind(handlers[op]);
    warm_prologue(true, true, false);
    b.Call(load_ab);
    if (op == dynarisc::kSbb) {
      b.Ld(vb);
      b.AddCell(gc);
      b.St(vb);
    }
    b.Ld(va);
    b.SubCell(vb);           // borrow flag = (va < vb)
    b.St(val32);
    emit_carry_from_borrow();
    b.Ld(val32);
    b.AndImm(0xFFFF);
    b.St(val);
    if (op == dynarisc::kCmp) {
      b.Call(setz);
    } else {
      b.Call(store_rd);
    }
    b.Jmp(mainloop);
  }

  // ----------------------------------------------------------------- MUL
  {
    b.Bind(handlers[dynarisc::kMul]);
    warm_prologue(true, true, false);
    b.Call(load_ab);
    b.LdImm(0);
    b.St(plo);
    b.St(phi);
    b.St(mhi);
    b.Ld(va);
    b.St(mlo);
    b.Ld(vb);
    b.St(nn);
    b.LdImm(16);
    b.St(mul_i);
    const Label loop = b.NewLabel();
    const Label no_add = b.NewLabel();
    const Label no_carry = b.NewLabel();
    const Label no_mcarry = b.NewLabel();
    b.Bind(loop);
    // if (n & 1) { plo += mlo; phi += mhi + carry(plo); }
    b.Ld(nn);
    b.AndImm(1);
    b.Jz(no_add);
    b.Ld(plo);
    b.AddCell(mlo);
    b.St(plo);
    b.Ld(phi);
    b.AddCell(mhi);
    b.St(phi);
    b.Ld(plo);
    b.AndImm(0x10000);
    b.Jz(no_carry);
    b.Ld(phi);
    b.AddImm(1);
    b.St(phi);
    b.Ld(plo);
    b.AndImm(0xFFFF);
    b.St(plo);
    b.Bind(no_carry);
    b.Ld(phi);
    b.AndImm(0xFFFF);
    b.St(phi);
    b.Bind(no_add);
    // m <<= 1 (mlo/mhi pair)
    b.Ld(mlo);
    b.AddCell(mlo);
    b.St(mlo);
    b.Ld(mhi);
    b.AddCell(mhi);
    b.St(mhi);
    b.Ld(mlo);
    b.AndImm(0x10000);
    b.Jz(no_mcarry);
    b.Ld(mhi);
    b.AddImm(1);
    b.St(mhi);
    b.Ld(mlo);
    b.AndImm(0xFFFF);
    b.St(mlo);
    b.Bind(no_mcarry);
    b.Ld(mhi);
    b.AndImm(0xFFFF);
    b.St(mhi);
    // n >>= 1
    b.LdIndexedAbs(kLsr1Base, nn);
    b.St(nn);
    // loop control
    b.Ld(mul_i);
    b.SubImm(1);
    b.St(mul_i);
    b.Jnz(loop);
    // writeback: Rd <- plo, HI <- phi, Z from plo, C = (phi != 0)
    b.Ld(phi);
    b.St(ghi);
    const Label hi_zero = b.NewLabel();
    const Label hi_done = b.NewLabel();
    b.Ld(phi);
    b.Jz(hi_zero);
    b.LdImm(1);
    b.St(gc);
    b.Jmp(hi_done);
    b.Bind(hi_zero);
    b.LdImm(0);
    b.St(gc);
    b.Bind(hi_done);
    b.Ld(plo);
    b.St(val);
    b.Call(store_rd);
    b.Jmp(mainloop);
  }

  // ------------------------------------------------------- AND / OR / XOR
  {
    b.Bind(handlers[dynarisc::kAnd]);
    warm_prologue(true, true, false);
    b.Call(load_ab);
    b.Ld(va);
    b.And(vb);
    b.St(val);
    b.Call(store_rd);
    b.Jmp(mainloop);

    // OR  = a + b - (a & b); XOR = a + b - 2*(a & b). Both fit in 32 bits.
    b.Bind(handlers[dynarisc::kOr]);
    warm_prologue(true, true, false);
    b.Call(load_ab);
    b.Ld(va);
    b.And(vb);
    b.St(val32);
    b.Ld(va);
    b.AddCell(vb);
    b.SubCell(val32);
    b.St(val);
    b.Call(store_rd);
    b.Jmp(mainloop);

    b.Bind(handlers[dynarisc::kXor]);
    warm_prologue(true, true, false);
    b.Call(load_ab);
    b.Ld(va);
    b.And(vb);
    b.St(val32);
    b.Ld(val32);
    b.AddCell(val32);
    b.St(val32);
    b.Ld(va);
    b.AddCell(vb);
    b.SubCell(val32);
    b.St(val);
    b.Call(store_rd);
    b.Jmp(mainloop);
  }

  // ---------------------------------------------------------------- shifts
  // Common amount computation, then one single-bit step loop per opcode.
  const Label shift_body[4] = {b.NewLabel(), b.NewLabel(), b.NewLabel(),
                               b.NewLabel()};
  {
    for (int s = 0; s < 4; ++s) {
      const uint8_t op = static_cast<uint8_t>(dynarisc::kLsl + s);
      b.Bind(handlers[op]);
      warm_prologue(true, true, true);
      // amount: mode bit0 ? rs | (mode bit1 ? 8 : 0) : R[rs] & 15
      const Label from_reg = b.NewLabel();
      const Label have_amt = b.NewLabel();
      const Label no_plus8 = b.NewLabel();
      b.Ld(modec);
      b.AndImm(1);
      b.Jz(from_reg);
      b.Ld(rsc);
      b.St(amt);
      b.Ld(modec);
      b.AndImm(2);
      b.Jz(no_plus8);
      b.Ld(amt);
      b.AddImm(8);
      b.St(amt);
      b.Bind(no_plus8);
      b.Jmp(have_amt);
      b.Bind(from_reg);
      b.LdIndexed(gr, rsc);
      b.AndImm(15);
      b.St(amt);
      b.Bind(have_amt);
      b.LdIndexed(gr, rdc);
      b.St(val);
      b.Jmp(shift_body[s]);
    }

    for (int s = 0; s < 4; ++s) {
      const Label loop = b.NewLabel();
      const Label done = b.NewLabel();
      b.Bind(shift_body[s]);
      b.Bind(loop);
      b.Ld(amt);
      b.Jz(done);
      switch (s) {
        case 0: {  // LSL: c = bit15; v = (v << 1) & 0xFFFF
          const Label no_c = b.NewLabel();
          const Label c_done = b.NewLabel();
          b.Ld(val);
          b.AndImm(0x8000);
          b.Jz(no_c);
          b.LdImm(1);
          b.St(gc);
          b.Jmp(c_done);
          b.Bind(no_c);
          b.LdImm(0);
          b.St(gc);
          b.Bind(c_done);
          b.Ld(val);
          b.AddCell(val);
          b.AndImm(0xFFFF);
          b.St(val);
          break;
        }
        case 1: {  // LSR: c = bit0; v >>= 1
          b.Ld(val);
          b.AndImm(1);
          b.St(gc);
          b.LdIndexedAbs(kLsr1Base, val);
          b.St(val);
          break;
        }
        case 2: {  // ASR: c = bit0; v = (v >> 1) | (v & 0x8000)
          b.Ld(val);
          b.AndImm(1);
          b.St(gc);
          b.Ld(val);
          b.AndImm(0x8000);
          b.St(sbit);
          b.LdIndexedAbs(kLsr1Base, val);
          b.AddCell(sbit);
          b.St(val);
          break;
        }
        case 3: {  // ROR: c = bit0; v = (v >> 1) | (c << 15)
          b.Ld(val);
          b.AndImm(1);
          b.St(gc);
          const Label no_wrap = b.NewLabel();
          const Label wrap_done = b.NewLabel();
          b.LdIndexedAbs(kLsr1Base, val);
          b.St(ptr2);
          b.Ld(gc);
          b.Jz(no_wrap);
          b.Ld(ptr2);
          b.AddImm(0x8000);
          b.St(ptr2);
          b.Bind(no_wrap);
          (void)wrap_done;
          b.Ld(ptr2);
          b.St(val);
          break;
        }
      }
      b.Ld(amt);
      b.SubImm(1);
      b.St(amt);
      b.Jmp(loop);
      b.Bind(done);
      b.Call(store_rd);
      b.Jmp(mainloop);
    }
  }

  // ---------------------------------------------------------------- MOVE
  {
    b.Bind(handlers[dynarisc::kMove]);
    warm_prologue(true, true, true);
    const Label src_d = b.NewLabel();
    const Label src_hi = b.NewLabel();
    const Label have_src = b.NewLabel();
    const Label dst_d = b.NewLabel();
    const Label done = b.NewLabel();
    b.Ld(modec);
    b.AndImm(4);
    b.Jnz(src_hi);
    b.Ld(modec);
    b.AndImm(2);
    b.Jnz(src_d);
    b.LdIndexed(gr, rsc);
    b.St(val);
    b.Jmp(have_src);
    b.Bind(src_d);
    b.Ld(rsc);
    b.AndImm(3);
    b.St(idx);
    b.LdIndexed(gd, idx);
    b.St(val);
    b.Jmp(have_src);
    b.Bind(src_hi);
    b.Ld(ghi);
    b.St(val);
    b.Bind(have_src);
    b.Ld(modec);
    b.AndImm(1);
    b.Jnz(dst_d);
    b.Ld(val);
    b.StIndexed(gr, rdc);
    b.Jmp(done);
    b.Bind(dst_d);
    b.Ld(rdc);
    b.AndImm(3);
    b.St(idx);
    b.Ld(val);
    b.StIndexed(gd, idx);
    b.Bind(done);
    b.Call(setz);
    b.Jmp(mainloop);
  }

  // ----------------------------------------------------------------- LDI
  {
    b.Bind(handlers[dynarisc::kLdi]);
    warm_prologue(true, false, false);
    b.Call(fetch);
    b.Ld(fetched);
    b.St(val);
    b.Call(store_rd);
    b.Jmp(mainloop);
  }

  // ----------------------------------------------------------------- LDM
  {
    b.Bind(handlers[dynarisc::kLdm]);
    warm_prologue(true, true, true);
    const Label byte_access = b.NewLabel();
    const Label no_inc = b.NewLabel();
    b.Ld(rsc);
    b.AndImm(3);
    b.St(idx);
    b.LdIndexed(gd, idx);
    b.St(ptr);
    b.LdIndexedAbs(kGuestBase, ptr);
    b.St(val);
    b.Ld(modec);
    b.AndImm(dynarisc::kModeWord);
    b.Jz(byte_access);
    b.Ld(ptr);
    b.AddImm(1);
    b.AndImm(0xFFFF);
    b.St(ptr2);
    b.LdIndexedAbs(kGuestBase, ptr2);
    b.St(fhi);
    b.LdIndexedAbs(kShl8Base, fhi);
    b.AddCell(val);
    b.St(val);
    b.Bind(byte_access);
    b.Ld(modec);
    b.AndImm(dynarisc::kModePostInc);
    b.Jz(no_inc);
    // step = 1 + (mode & kModeWord), branch-free (kModeWord == 1; jumping
    // here would clobber R, which carries the new pointer value).
    b.Ld(modec);
    b.AndImm(dynarisc::kModeWord);
    b.AddImm(1);
    b.St(sbit);  // reuse as step scratch
    b.Ld(ptr);
    b.AddCell(sbit);
    b.AndImm(0xFFFF);
    b.StIndexed(gd, idx);
    b.Bind(no_inc);
    b.Call(store_rd);
    b.Jmp(mainloop);
  }

  // ----------------------------------------------------------------- STM
  {
    b.Bind(handlers[dynarisc::kStm]);
    warm_prologue(true, true, true);
    const Label byte_access = b.NewLabel();
    const Label no_inc = b.NewLabel();
    b.Ld(rdc);
    b.AndImm(3);
    b.St(idx);
    b.LdIndexed(gd, idx);
    b.St(ptr);
    b.LdIndexed(gr, rsc);
    b.St(val);
    b.Ld(val);
    b.AndImm(0xFF);
    b.StIndexedAbs(kGuestBase, ptr);
    if (warm) {
      // A 2-byte instruction starting at ptr-1 or ptr covers this byte.
      b.Ld(ptr);
      b.SubImm(1);
      b.AndImm(0xFFFF);
      b.St(inv_a);
      warm_invalidate(inv_a);
      warm_invalidate(ptr);
    }
    b.Ld(modec);
    b.AndImm(dynarisc::kModeWord);
    b.Jz(byte_access);
    b.Ld(ptr);
    b.AddImm(1);
    b.AndImm(0xFFFF);
    b.St(ptr2);
    b.LdIndexedAbs(kShr8Base, val);
    b.StIndexedAbs(kGuestBase, ptr2);
    warm_invalidate(ptr2);
    b.Bind(byte_access);
    b.Ld(modec);
    b.AndImm(dynarisc::kModePostInc);
    b.Jz(no_inc);
    b.Ld(modec);
    b.AndImm(dynarisc::kModeWord);
    b.AddImm(1);
    b.St(sbit);
    b.Ld(ptr);
    b.AddCell(sbit);
    b.AndImm(0xFFFF);
    b.StIndexed(gd, idx);
    b.Bind(no_inc);
    b.Jmp(mainloop);
  }

  // ------------------------------------------- JUMP / JZ / JC / CALL / RET
  {
    b.Bind(handlers[dynarisc::kJump]);
    warm_prologue(false, false, false);
    b.Call(fetch);
    b.Ld(fetched);
    b.St(gpc);
    b.Jmp(mainloop);

    b.Bind(handlers[dynarisc::kJz]);
    warm_prologue(false, false, false);
    b.Call(fetch);
    b.Ld(gz);
    {
      const Label no = b.NewLabel();
      b.Jz(no);
      b.Ld(fetched);
      b.St(gpc);
      b.Bind(no);
    }
    b.Jmp(mainloop);

    b.Bind(handlers[dynarisc::kJc]);
    warm_prologue(false, false, false);
    b.Call(fetch);
    b.Ld(gc);
    {
      const Label no = b.NewLabel();
      b.Jz(no);
      b.Ld(fetched);
      b.St(gpc);
      b.Bind(no);
    }
    b.Jmp(mainloop);

    b.Bind(handlers[dynarisc::kCall]);
    warm_prologue(false, false, false);
    b.Call(fetch);
    // D3 -= 2; guest[D3] = pc.lo; guest[D3+1] = pc.hi; pc = fetched.
    b.Ld(Builder::At(gd, 3));
    b.SubImm(2);
    b.AndImm(0xFFFF);
    b.St(Builder::At(gd, 3));
    b.St(ptr);
    b.Ld(gpc);
    b.AndImm(0xFF);
    b.StIndexedAbs(kGuestBase, ptr);
    b.Ld(ptr);
    b.AddImm(1);
    b.AndImm(0xFFFF);
    b.St(ptr2);
    b.LdIndexedAbs(kShr8Base, gpc);
    b.StIndexedAbs(kGuestBase, ptr2);
    if (warm) {
      // The pushed return address overwrote guest bytes ptr and ptr2.
      b.Ld(ptr);
      b.SubImm(1);
      b.AndImm(0xFFFF);
      b.St(inv_a);
      warm_invalidate(inv_a);
      warm_invalidate(ptr);
      warm_invalidate(ptr2);
    }
    b.Ld(fetched);
    b.St(gpc);
    b.Jmp(mainloop);

    b.Bind(handlers[dynarisc::kRet]);
    warm_prologue(false, false, false);
    b.Ld(Builder::At(gd, 3));
    b.St(ptr);
    b.AddImm(1);
    b.AndImm(0xFFFF);
    b.St(ptr2);
    b.LdIndexedAbs(kGuestBase, ptr);
    b.St(val);
    b.LdIndexedAbs(kGuestBase, ptr2);
    b.St(fhi);
    b.LdIndexedAbs(kShl8Base, fhi);
    b.AddCell(val);
    b.St(gpc);
    b.Ld(Builder::At(gd, 3));
    b.AddImm(2);
    b.AndImm(0xFFFF);
    b.St(Builder::At(gd, 3));
    b.Jmp(mainloop);
  }

  // ----------------------------------------------------------------- SYS
  {
    b.Bind(handlers[dynarisc::kSys]);
    warm_prologue(false, false, true);
    const Label sys_read = b.NewLabel();
    const Label sys_write = b.NewLabel();
    b.Ld(modec);
    b.Jz(sys_read);
    b.Ld(modec);
    b.SubImm(dynarisc::kSysWriteByte);
    b.Jz(sys_write);
    // port 2 and any unknown port: halt.
    b.Jmp(halt_handler);

    b.Bind(sys_read);
    {
      const Label eof = b.NewLabel();
      b.InByte();
      b.St(val32);
      b.SubImm(0xFFFFFFFFu);
      b.Jz(eof);
      b.Ld(val32);
      b.St(Builder::At(gr, 0));
      b.LdImm(0);
      b.St(gc);
      b.Jmp(mainloop);
      b.Bind(eof);
      b.LdImm(1);
      b.St(gc);
      b.Jmp(mainloop);
    }

    b.Bind(sys_write);
    b.Ld(Builder::At(gr, 0));
    b.AndImm(0xFF);
    b.OutByte();
    b.Jmp(mainloop);
  }

  // ---------------------------------------------------------------- halt
  b.Bind(halt_handler);
  b.Halt();

  // ------------------------------------------------------------- redecode
  if (warm) {
    // An invalidated handler entry lands here. Recompute the four
    // predecode words for the instruction at GPC from the live guest
    // bytes (exactly the cold fetch + table decode), then re-dispatch:
    // H[gpc] is fresh now, so the main loop reaches the real handler.
    b.Bind(redecode);
    b.LdIndexedAbs(kGuestBase, gpc);
    b.St(h0);
    b.Ld(gpc);
    b.AddImm(1);
    b.AndImm(0xFFFF);
    b.St(h1);
    b.LdIndexedAbs(kGuestBase, h1);
    b.St(h2);
    b.LdIndexedAbs(kShl8Base, h2);
    b.AddCell(h0);
    b.St(fetched);
    b.LdIndexedAbs(kOpBase, fetched);
    b.St(opc);
    b.LdIndexed(jt, opc);
    b.StIndexedAbs(kHandlerBase, gpc);
    b.LdIndexedAbs(kRdBase, fetched);
    b.StIndexedAbs(kRdIdxBase, gpc);
    b.LdIndexedAbs(kRsBase, fetched);
    b.StIndexedAbs(kRsIdxBase, gpc);
    b.Ld(fetched);
    b.AndImm(31);
    b.StIndexedAbs(kModeIdxBase, gpc);
    b.Jmp(mainloop);
  }

  auto built = b.Build();
  assert(built.ok() && "interpreter generation failed");
  verisc::Program program = built.TakeValue();
  if (warm_out) {
    warm_out->gpc_addr = b.CellAddress(gpc);
    for (int i = 0; i < 32; ++i) {
      warm_out->handler_addr[i] = b.LabelAddress(handlers[i]);
    }
  }
  return program;
}

/// Drives a loaded machine to completion in bounded slices, honouring the
/// caller's step budget. Shared by the cold and warm reference paths.
Result<Bytes> DriveMachine(verisc::Machine& machine,
                           const verisc::RunOptions& options) {
  const uint64_t slice = NestedSliceSteps();
  for (;;) {
    const uint64_t left = options.max_steps - machine.steps();
    switch (machine.RunFor(std::min<uint64_t>(left, slice))) {
      case verisc::MachineState::kHalted:
        return machine.TakeOutput();
      case verisc::MachineState::kFault:
        return Status::ExecutionFault("nested emulation fault");
      default:
        if (machine.steps() >= options.max_steps) {
          return Status::ResourceExhausted(
              "nested emulation exceeded step limit");
        }
    }
  }
}

}  // namespace

const verisc::Program& DynaRiscInterpreter() {
  static const verisc::Program kProgram = BuildInterpreter(nullptr);
  return kProgram;
}

const WarmInterpreter& WarmDynaRiscInterpreter() {
  static const WarmInterpreter kWarm = [] {
    WarmInterpreter w;
    w.program = BuildInterpreter(&w);
    return w;
  }();
  return kWarm;
}

void SetNestedSliceStepsForTest(uint64_t steps) {
  g_nested_slice_steps.store(steps, std::memory_order_relaxed);
}

Bytes PackNestedInput(const dynarisc::Program& program, BytesView input) {
  assert(program.image.size() <= dynarisc::kMemorySize);
  ByteWriter w;
  w.PutU16(program.entry);
  w.PutU32(static_cast<uint32_t>(program.image.size()));
  w.PutBytes(program.image);
  w.PutBytes(input);
  return w.TakeBytes();
}

Result<Bytes> RunNested(const dynarisc::Program& program, BytesView input,
                        const verisc::RunOptions& options,
                        verisc::VmFunction vm, NestedMode mode,
                        NestedRunStats* stats) {
  if (stats != nullptr) *stats = NestedRunStats{};
  const bool reference = (vm == nullptr || vm == &verisc::Run);
  if (!reference && mode == NestedMode::kTranslated) {
    return Status::InvalidArgument(
        "NestedMode::kTranslated requires the reference VeRisc engine");
  }

  if (reference) {
    // Reference path: drive the execution engine incrementally, in
    // bounded slices, instead of one monolithic run. The per-thread
    // machine keeps its 4 MiB memory image across nested invocations,
    // and the slice loop is where future callers can interleave progress
    // reporting or cancellation without touching the engine.
    verisc::Machine& machine = verisc::ThreadLocalMachine();

    if (mode != NestedMode::kCold) {
      // Warm path: the shared translation cache has already expanded the
      // guest image and predecoded every guest address, so poke that
      // state straight into machine memory and start in the dispatch
      // loop — no table fill, no header parse, no byte-by-byte copy.
      bool cache_hit = false;
      TranslationCache::EntryPtr entry =
          TranslationCache::Global().Acquire(program, &cache_hit);
      const WarmInterpreter& warm = WarmDynaRiscInterpreter();

      // The 1 MiB of static shift/decode tables survives across frames
      // as long as nobody else re-loaded this thread's machine since our
      // last run (load_seq detects any interleaved Load).
      static thread_local const verisc::Machine* resident_machine = nullptr;
      static thread_local uint64_t resident_seq = 0;
      const bool resident = resident_machine == &machine &&
                            resident_seq == machine.load_seq() &&
                            resident_seq != 0;
      if (resident) {
        ULE_RETURN_IF_ERROR(machine.LoadNoZero(warm.program));
      } else {
        ULE_RETURN_IF_ERROR(machine.Load(warm.program));
        const StaticTables& tables = WarmStaticTables();
        machine.WriteWords(kLsr1Base, tables.low.data(), tables.low.size());
        machine.WriteWords(kShr8Base, tables.high.data(),
                           tables.high.size());
      }
      machine.WriteWords(kGuestBase, entry->guest_words.data(),
                         entry->guest_words.size());
      machine.WriteWords(kHandlerBase, entry->decode_words.data(),
                         entry->decode_words.size());
      const uint32_t entry_word = entry->entry_point;
      machine.WriteWords(warm.gpc_addr, &entry_word, 1);
      resident_machine = &machine;
      resident_seq = machine.load_seq();
      // No archival input protocol: the port carries the guest stream.
      machine.SetInput(input);

      Result<Bytes> out = DriveMachine(machine, options);
      if (stats != nullptr) {
        const verisc::Machine::RunStats rs = machine.LastRunStats();
        stats->translated = true;
        stats->cache_hit = cache_hit;
        stats->steps = rs.retired;
        stats->fused = rs.fused;
      }
      return out;
    }

    // Cold path: the archived interpreter bootstraps itself from the
    // input port, exactly as a future implementer would run it.
    const Bytes packed = PackNestedInput(program, input);
    ULE_RETURN_IF_ERROR(machine.Load(DynaRiscInterpreter()));
    machine.SetInput(packed);
    Result<Bytes> out = DriveMachine(machine, options);
    if (stats != nullptr) {
      const verisc::Machine::RunStats rs = machine.LastRunStats();
      stats->steps = rs.retired;
      stats->fused = rs.fused;
    }
    return out;
  }

  // Portability path: an independently written VeRisc implementation that
  // only offers the monolithic VmFunction entry point.
  const Bytes packed = PackNestedInput(program, input);
  ULE_ASSIGN_OR_RETURN(verisc::RunResult r,
                       vm(DynaRiscInterpreter(), packed, options));
  if (stats != nullptr) stats->steps = r.steps;
  switch (r.reason) {
    case verisc::StopReason::kHalted:
      return std::move(r.output);
    case verisc::StopReason::kFault:
      return Status::ExecutionFault("nested emulation fault");
    case verisc::StopReason::kStepLimit:
      return Status::ResourceExhausted("nested emulation exceeded step limit");
  }
  return Status::ExecutionFault("unreachable");
}

}  // namespace olonys
}  // namespace ule
