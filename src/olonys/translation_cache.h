/// \file translation_cache.h
/// \brief Shared DynaRISC→VeRISC translation cache.
///
/// The nested emulation path re-runs the same DynaRisc decoder program for
/// every frame of an archive. The cold path pays for that redundantly: each
/// run boots the archived interpreter, which fills its shift tables, parses
/// the header and copies the guest image through the input port, then
/// fetches and table-decodes every guest instruction again and again.
///
/// This cache performs that work once per distinct DynaRisc program: the
/// guest image is expanded to one word per byte, and every guest address is
/// predecoded into the warm interpreter's handler/operand tables (resolved
/// VeRisc handler addresses + rd/rs/mode fields — see kHandlerBase in
/// dynarisc_in_verisc.h). RunNested then pokes the entry into machine
/// memory and starts directly in the dispatch loop. Entries are immutable
/// and shared (`shared_ptr`), keyed by a hash of the program image, bounded
/// by an LRU, and safe to use from SharedPool workers concurrently: the
/// mutex only guards the map, never a running machine.
///
/// Nothing in here is archival: a future implementer only ever sees the
/// cold interpreter and its input-port protocol.

#ifndef ULE_OLONYS_TRANSLATION_CACHE_H_
#define ULE_OLONYS_TRANSLATION_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "dynarisc/machine.h"
#include "support/bytes.h"

namespace ule {
namespace olonys {

class TranslationCache {
 public:
  /// One translated program: everything the warm interpreter needs poked
  /// into VeRisc memory, ready to blit.
  struct Entry {
    /// Guest memory image, one word per byte (64 Ki words at kGuestBase).
    std::vector<uint32_t> guest_words;
    /// Predecode tables, contiguous from kHandlerBase: handler address,
    /// rd, rs, mode — 4 × 64 Ki words.
    std::vector<uint32_t> decode_words;
    /// Exact identity for hit verification (hashes can collide).
    Bytes image;
    uint16_t entry_point = 0;
  };
  using EntryPtr = std::shared_ptr<const Entry>;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t entries = 0;
  };

  /// Process-wide cache shared by all RunNested callers and pool workers.
  static TranslationCache& Global();

  /// Returns the translation for `program`, building and inserting it on a
  /// miss (evicting the least-recently-used entry beyond the capacity).
  /// `cache_hit`, when non-null, reports whether the entry was served from
  /// the cache (per-call, race-free, unlike diffing stats()).
  EntryPtr Acquire(const dynarisc::Program& program,
                   bool* cache_hit = nullptr);

  Stats stats() const;
  /// Drops all entries and zeroes the counters (tests and benches).
  void Clear();
  /// Maximum resident entries (default 8, ~1.3 MiB each).
  void set_capacity(size_t capacity);

 private:
  struct Slot {
    uint64_t key = 0;
    EntryPtr entry;
  };

  mutable std::mutex mu_;
  std::list<Slot> lru_;  // front = most recently used
  std::unordered_map<uint64_t, std::list<Slot>::iterator> by_key_;
  size_t capacity_ = 8;
  Stats stats_;
};

/// Host-computed images of the tables the cold interpreter fills at
/// startup, laid out for two contiguous WriteWords blits.
struct StaticTables {
  /// [kLsr1Base, kGuestBase): LSR1, OP, RD, RS (4 × 64 Ki words).
  std::vector<uint32_t> low;
  /// [kShr8Base, kShl8Base + 256): SHR8 (64 Ki) then SHL8 (256 words).
  std::vector<uint32_t> high;
};
const StaticTables& WarmStaticTables();

}  // namespace olonys
}  // namespace ule

#endif  // ULE_OLONYS_TRANSLATION_CACHE_H_
