#include "olonys/bootstrap.h"

#include <algorithm>

#include "support/hexletters.h"

namespace ule {
namespace olonys {
namespace {

constexpr std::string_view kPseudocode = R"BOOT(PART I.  THE VERISC MACHINE — EMULATION ALGORITHM
==================================================

You are reading the Bootstrap of a Micr'Olonys archive. Implement the small
machine below in any programming language on any computer. It is the only
program you must write yourself; everything else on this archive, including
the decoders for the barcode images (emblems), is data that this machine
will execute.

I.1  STORAGE
------------
  memory : 1048576 (2^20) words of 32 bits each, all initially zero
  R      : one 32-bit register (the accumulator), initially zero
  B      : the borrow flag, one bit, initially zero
  PC     : the program counter, a word address, initially 16

I.2  THE PROGRAM
----------------
Decode the letters of PART II into bytes (rule I.6), then assemble every
four consecutive bytes into one 32-bit word, least significant byte first.
Check the container: the first four bytes spell "VRX1"; the next word is N,
the number of program words; the final word is a CRC-32 (rule I.7) of all
preceding bytes. Place the N program words into memory starting at word 16.

I.3  THE FOUR INSTRUCTIONS
--------------------------
Repeat forever:
  1. word <- memory[PC]; PC <- PC + 1
  2. op   <- the top 4 bits of word; addr <- the low 28 bits
  3. execute:
       op = 0  (LD)  : R <- read(addr)
       op = 1  (ST)  : write(addr, R)
       op = 2  (SBB) : t <- read(addr) + B
                       if R < t then B <- 1 else B <- 0
                       R <- (R - t) modulo 2^32
       op = 3  (AND) : R <- R bitwise-and read(addr)

I.4  SPECIAL ADDRESSES
----------------------
read(addr):
  addr = 0 : the value 0
  addr = 1 : the current PC (already advanced past this instruction)
  addr = 2 : if B = 1 then 0xFFFFFFFF else 0
  addr = 3 : the next byte of the INPUT stream (0..255); when the input
             is exhausted, the value 0xFFFFFFFF
  addr 4..15 : the value 0
  otherwise : memory[addr]
write(addr, R):
  addr = 1 : PC <- R modulo 2^20          (this is how programs jump)
  addr = 2 : B  <- lowest bit of R
  addr = 4 : append the lowest 8 bits of R to the OUTPUT stream
  addr = 5 : STOP the machine
  addr = 0, 3, 6..15 : do nothing
  otherwise : memory[addr] <- R

Programs deliberately overwrite their own instruction words; execute
whatever memory currently holds. Do not cache decoded instructions.

I.5  INPUT AND OUTPUT STREAMS
-----------------------------
The INPUT stream is a sequence of bytes you provide; the OUTPUT stream is
where the machine writes its result. Which bytes to provide is stated in
PART II and PART III below.

I.6  LETTER DECODING RULE
-------------------------
Each letter A..P stands for one hexadecimal digit, in REVERSED order:
  A=15 B=14 C=13 D=12 E=11 F=10 G=9 H=8 I=7 J=6 K=5 L=4 M=3 N=2 O=1 P=0
Two letters make one byte, first letter = high 4 bits. Ignore whitespace
and line breaks.

I.7  CRC-32 CHECK RULE
----------------------
crc <- 0xFFFFFFFF
for each byte x:  crc <- crc xor x
                  repeat 8 times: if lowest bit of crc is 1
                                  then crc <- (crc shift-right 1) xor 0xEDB88320
                                  else crc <- (crc shift-right 1)
answer <- crc xor 0xFFFFFFFF

I.8  RUNNING THE ARCHIVE DECODERS
---------------------------------
1. Build the VeRisc machine above.
2. Decode PART II into a VeRisc program: this is the DynaRisc emulator.
   (DynaRisc is a 16-bit processor; you do not need to know its details.)
3. Decode PART III into bytes: this is the media-layout decoder (MOCoder),
   a DynaRisc program in its own container, beginning with "DRX1".
4. To run any DynaRisc program P with input bytes I, run the PART II
   program on the VeRisc machine with INPUT =
        bytes 5..6  of P's container (the entry point), then
        bytes 7..10 of P's container (the image length L), then
        the L image bytes that follow, then
        the bytes of I.
   The OUTPUT stream of the VeRisc machine is P's output.
5. Scan each emblem image into a flat array of 8-bit pixel intensities,
   row by row, top-left first, and resample it on the printed cell grid
   (one intensity per cell, data area only, serpentine order as described
   in the emblem geometry note of PART III). Feed that array, prefixed by
   its 4-byte length (least significant byte first), to MOCoder (rule 4).
   MOCoder outputs the corrected payload bytes of the emblem.
6. The payload of the SYSTEM emblems is the database-layout decoder
   (DBDecode), another DynaRisc program. Run it (rule 4) with the
   concatenated payloads of the DATA emblems as input; it outputs the
   archived files in plain text.
)BOOT";

constexpr std::string_view kPart2Begin = "-----BEGIN VERISC PROGRAM-----";
constexpr std::string_view kPart2End = "-----END VERISC PROGRAM-----";
constexpr std::string_view kPart3Begin = "-----BEGIN MOCODER PROGRAM-----";
constexpr std::string_view kPart3End = "-----END MOCODER PROGRAM-----";

Result<std::string> ExtractSection(std::string_view text,
                                   std::string_view begin,
                                   std::string_view end) {
  const size_t b = text.find(begin);
  if (b == std::string_view::npos) {
    return Status::Corruption("Bootstrap: missing marker " + std::string(begin));
  }
  const size_t e = text.find(end, b);
  if (e == std::string_view::npos) {
    return Status::Corruption("Bootstrap: missing marker " + std::string(end));
  }
  return std::string(text.substr(b + begin.size(), e - b - begin.size()));
}

}  // namespace

std::string_view BootstrapPseudocode() { return kPseudocode; }

std::string GenerateBootstrapText(const verisc::Program& dynarisc_emulator,
                                  const dynarisc::Program& mocoder) {
  std::string out;
  out += "MICR'OLONYS  —  BOOTSTRAP DOCUMENT\n";
  out += "Keep this document with the archive. It is self-contained.\n\n";
  out += kPseudocode;
  out += "\n\nPART II.  THE DYNARISC EMULATOR (a VeRisc program)\n";
  out += "==================================================\n";
  out += std::string(kPart2Begin) + "\n";
  out += HexLettersEncode(dynarisc_emulator.Serialize(), kLettersPerLine);
  out += std::string(kPart2End) + "\n";
  out += "\nPART III.  THE MEDIA LAYOUT DECODER (a DynaRisc program)\n";
  out += "========================================================\n";
  out += std::string(kPart3Begin) + "\n";
  out += HexLettersEncode(mocoder.Serialize(), kLettersPerLine);
  out += std::string(kPart3End) + "\n";
  return out;
}

Result<ParsedBootstrap> ParseBootstrapText(std::string_view text) {
  ULE_ASSIGN_OR_RETURN(std::string part2,
                       ExtractSection(text, kPart2Begin, kPart2End));
  ULE_ASSIGN_OR_RETURN(std::string part3,
                       ExtractSection(text, kPart3Begin, kPart3End));
  ULE_ASSIGN_OR_RETURN(Bytes emulator_bytes, HexLettersDecode(part2));
  ULE_ASSIGN_OR_RETURN(Bytes mocoder_bytes, HexLettersDecode(part3));
  ParsedBootstrap parsed;
  ULE_ASSIGN_OR_RETURN(parsed.dynarisc_emulator,
                       verisc::Program::Deserialize(emulator_bytes));
  ULE_ASSIGN_OR_RETURN(parsed.mocoder,
                       dynarisc::Program::Deserialize(mocoder_bytes));
  return parsed;
}

int PageCount(std::string_view text) {
  const int lines = static_cast<int>(std::count(text.begin(), text.end(), '\n'));
  return (lines + kLinesPerPage - 1) / kLinesPerPage;
}

int PseudocodeLineCount() {
  return static_cast<int>(
      std::count(kPseudocode.begin(), kPseudocode.end(), '\n'));
}

}  // namespace olonys
}  // namespace ule
