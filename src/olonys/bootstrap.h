/// \file bootstrap.h
/// \brief The Bootstrap document (§3.2): the only thing a future user needs
/// on paper to restore everything else.
///
/// The Bootstrap is a plain-text document containing (a) pseudocode of the
/// VeRisc emulation algorithm, including the letter-to-hex decoding rule,
/// and (b) the letter-encoded binary streams of the DynaRisc emulator
/// (a VeRisc program) and of MOCoder's decoder (a DynaRisc program). The
/// paper reports a seven-page document: "four pages of algorithm pseudocode,
/// and three pages of alphabetic characters".
///
/// Restoration (Fig. 2b): the user implements VeRisc from Part I, feeds it
/// the Part II letters to instantiate the DynaRisc emulator, which runs the
/// Part III MOCoder to turn scanned emblems back into bytes.

#ifndef ULE_OLONYS_BOOTSTRAP_H_
#define ULE_OLONYS_BOOTSTRAP_H_

#include <string>
#include <string_view>

#include "dynarisc/machine.h"
#include "support/status.h"
#include "verisc/verisc.h"

namespace ule {
namespace olonys {

/// Text lines that fit on one printed page (used for the page-count
/// experiment E13; conventional 60 lines/page at 12 pt).
inline constexpr int kLinesPerPage = 60;
/// Letters per line in the encoded sections.
inline constexpr int kLettersPerLine = 72;

/// The machine-readable parts recovered from a Bootstrap document.
struct ParsedBootstrap {
  verisc::Program dynarisc_emulator;  ///< Part II: VeRisc program
  dynarisc::Program mocoder;          ///< Part III: DynaRisc program
};

/// Renders the complete Bootstrap text for the given archived programs.
std::string GenerateBootstrapText(const verisc::Program& dynarisc_emulator,
                                  const dynarisc::Program& mocoder);

/// Parses a Bootstrap document back into its binary programs, exactly as a
/// future user's tooling would (section markers + letter decoding + CRC).
Result<ParsedBootstrap> ParseBootstrapText(std::string_view text);

/// The Part I pseudocode (the VeRisc spec a future user implements).
std::string_view BootstrapPseudocode();

/// Number of printed pages the text occupies (kLinesPerPage lines/page).
int PageCount(std::string_view text);

/// Number of pseudocode lines (the paper claims < 500; < 300 for the core).
int PseudocodeLineCount();

}  // namespace olonys
}  // namespace ule

#endif  // ULE_OLONYS_BOOTSTRAP_H_
