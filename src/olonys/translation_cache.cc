#include "olonys/translation_cache.h"

#include <algorithm>
#include <utility>

#include "dynarisc/isa.h"
#include "olonys/dynarisc_in_verisc.h"

namespace ule {
namespace olonys {
namespace {

/// FNV-1a 64 over entry point + image bytes. Collisions are survivable:
/// Acquire verifies the exact image before declaring a hit.
uint64_t HashProgram(const dynarisc::Program& program) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ull;
  };
  mix(static_cast<uint8_t>(program.entry & 0xFF));
  mix(static_cast<uint8_t>(program.entry >> 8));
  for (uint8_t byte : program.image) mix(byte);
  return h;
}

/// Builds the translation: expands the image to one word per byte and
/// predecodes EVERY guest address as an instruction start — DynaRisc has
/// no alignment rule, so the guest may legally jump into what the
/// assembler laid out as an immediate or data. Addresses beyond the image
/// decode the zero word, exactly as the cold interpreter's zeroed guest
/// memory does. The 16-bit fetch wraps at the address-space boundary,
/// matching the cold fetch routine's per-byte wrap.
TranslationCache::EntryPtr Translate(const dynarisc::Program& program) {
  auto e = std::make_shared<TranslationCache::Entry>();
  e->image = program.image;
  e->entry_point = program.entry;
  e->guest_words.assign(dynarisc::kMemorySize, 0);
  for (size_t i = 0; i < program.image.size(); ++i) {
    e->guest_words[i] = program.image[i];
  }
  const WarmInterpreter& warm = WarmDynaRiscInterpreter();
  e->decode_words.assign(4 * dynarisc::kMemorySize, 0);
  uint32_t* handler = e->decode_words.data();
  uint32_t* rd = handler + dynarisc::kMemorySize;
  uint32_t* rs = rd + dynarisc::kMemorySize;
  uint32_t* mode = rs + dynarisc::kMemorySize;
  for (uint32_t a = 0; a < dynarisc::kMemorySize; ++a) {
    const uint32_t w =
        e->guest_words[a] | (e->guest_words[(a + 1) & 0xFFFF] << 8);
    handler[a] = warm.handler_addr[w >> 11];
    rd[a] = (w >> 8) & 7;
    rs[a] = (w >> 5) & 7;
    mode[a] = w & 31;
  }
  return e;
}

}  // namespace

TranslationCache& TranslationCache::Global() {
  // Leaked: shared with detached pool threads at process exit.
  static TranslationCache* cache = new TranslationCache;
  return *cache;
}

TranslationCache::EntryPtr TranslationCache::Acquire(
    const dynarisc::Program& program, bool* cache_hit) {
  const uint64_t key = HashProgram(program);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_key_.find(key);
    if (it != by_key_.end()) {
      EntryPtr entry = it->second->entry;
      if (entry->entry_point == program.entry &&
          entry->image.size() == program.image.size() &&
          std::equal(entry->image.begin(), entry->image.end(),
                     program.image.begin())) {
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, it->second);
        if (cache_hit != nullptr) *cache_hit = true;
        return entry;
      }
      // Hash collision with a different program: evict the old entry and
      // fall through to a rebuild.
      lru_.erase(it->second);
      by_key_.erase(it);
      ++stats_.evictions;
    }
  }

  // Translate outside the lock: building is the expensive part, and two
  // threads racing on the same miss merely duplicate work, never state —
  // the loser's entry is dropped below.
  EntryPtr entry = Translate(program);

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.misses;
  if (cache_hit != nullptr) *cache_hit = false;
  if (by_key_.find(key) == by_key_.end()) {
    lru_.push_front(Slot{key, entry});
    by_key_[key] = lru_.begin();
    while (lru_.size() > capacity_) {
      by_key_.erase(lru_.back().key);
      lru_.pop_back();
      ++stats_.evictions;
    }
  }
  return entry;
}

TranslationCache::Stats TranslationCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = lru_.size();
  return s;
}

void TranslationCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  by_key_.clear();
  stats_ = Stats{};
}

void TranslationCache::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<size_t>(capacity, 1);
  while (lru_.size() > capacity_) {
    by_key_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

const StaticTables& WarmStaticTables() {
  static const StaticTables kTables = [] {
    StaticTables t;
    t.low.resize(4 * 0x10000);
    for (uint32_t v = 0; v < 0x10000; ++v) {
      t.low[v] = v >> 1;              // LSR1
      t.low[0x10000 + v] = v >> 11;   // OP
      t.low[0x20000 + v] = (v >> 8) & 7;  // RD
      t.low[0x30000 + v] = (v >> 5) & 7;  // RS
    }
    t.high.resize(0x10000 + 256);
    for (uint32_t v = 0; v < 0x10000; ++v) t.high[v] = v >> 8;  // SHR8
    for (uint32_t v = 0; v < 256; ++v) {
      t.high[0x10000 + v] = v << 8;  // SHL8
    }
    return t;
  }();
  return kTables;
}

}  // namespace olonys
}  // namespace ule
