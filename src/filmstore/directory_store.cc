#include "filmstore/directory_store.h"

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <utility>

#include "support/io.h"

namespace ule {
namespace filmstore {

namespace {

constexpr char kManifestName[] = "manifest.txt";
constexpr char kBootstrapName[] = "bootstrap.txt";
constexpr char kIndexSectionName[] = "index.ules";

std::string JoinPath(const std::string& dir, const std::string& name) {
  return (std::filesystem::path(dir) / name).string();
}

/// True for frame files a DirectoryWriter produces ("data-0007.pgm",
/// "system-0000.pbm", any digit count beyond four).
bool IsFrameFileName(const std::string& name) {
  size_t pos;
  if (name.rfind("data-", 0) == 0) {
    pos = 5;
  } else if (name.rfind("system-", 0) == 0) {
    pos = 7;
  } else {
    return false;
  }
  size_t digits = 0;
  while (pos + digits < name.size() &&
         std::isdigit(static_cast<unsigned char>(name[pos + digits]))) {
    ++digits;
  }
  if (digits < 4) return false;
  const std::string ext = name.substr(pos + digits);
  return ext == ".pgm" || ext == ".pbm";
}

/// Loads frame files one at a time until the per-stream count recorded in
/// the manifest is exhausted.
/// Loads one frame file; counts its on-disk bytes into `counters` (the
/// directory backend's "payload" is the frame file itself).
Result<media::Image> LoadFrameFile(const std::string& path, bool bitonal,
                                   ReadCounterCell* counters) {
  auto frame =
      bitonal ? media::Image::LoadPbm(path) : media::Image::LoadPgm(path);
  if (!frame.ok()) return frame.status();
  if (counters != nullptr) {
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    counters->Count(ec ? 0 : static_cast<uint64_t>(size));
  }
  return std::move(frame).TakeValue();
}

class DirectorySource final : public FrameSource {
 public:
  DirectorySource(std::string dir, mocoder::StreamId id, size_t count,
                  bool bitonal, std::shared_ptr<ReadCounterCell> counters)
      : dir_(std::move(dir)),
        id_(id),
        count_(count),
        bitonal_(bitonal),
        counters_(std::move(counters)) {}

  Result<std::optional<media::Image>> Next() override {
    if (next_ >= count_) return std::optional<media::Image>();
    const std::string path =
        JoinPath(dir_, FrameFileName(id_, next_++, bitonal_));
    ULE_ASSIGN_OR_RETURN(media::Image frame,
                         LoadFrameFile(path, bitonal_, counters_.get()));
    return std::optional<media::Image>(std::move(frame));
  }

 private:
  std::string dir_;
  mocoder::StreamId id_;
  size_t count_;
  bool bitonal_;
  std::shared_ptr<ReadCounterCell> counters_;
  size_t next_ = 0;
};

}  // namespace

std::string FrameFileName(mocoder::StreamId id, size_t i, bool bitonal) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s-%04zu.%s",
                id == mocoder::StreamId::kData ? "data" : "system", i,
                bitonal ? "pbm" : "pgm");
  return buf;
}

// ---------------------------------------------------------------------------
// Writer

DirectoryWriter::DirectoryWriter(const std::string& dir,
                                 const mocoder::Options& emblem,
                                 const Options& options)
    : dir_(dir), emblem_options_(emblem), options_(options) {}

Result<std::unique_ptr<DirectoryWriter>> DirectoryWriter::Create(
    const std::string& dir, const mocoder::Options& emblem_options,
    const Options& options) {
  ULE_RETURN_IF_ERROR(mocoder::ValidateOptions(emblem_options));
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create directory " + dir + ": " +
                           ec.message());
  }
  // A reel directory equals exactly one archive: clear any previous
  // reel's artifacts (mirrors ContainerWriter truncating its file) so
  // stale frames from a larger or differently-coded archive cannot
  // linger next to the new ones. Unrelated files are left alone.
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IoError("cannot scan directory " + dir + ": " +
                           ec.message());
  }
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name != kManifestName && name != kBootstrapName &&
        name != kIndexSectionName && !IsFrameFileName(name)) {
      continue;
    }
    std::error_code rm_ec;
    std::filesystem::remove(entry.path(), rm_ec);
    if (rm_ec) {
      return Status::IoError("cannot remove stale reel file " +
                             entry.path().string() + ": " + rm_ec.message());
    }
  }
  return std::unique_ptr<DirectoryWriter>(
      new DirectoryWriter(dir, emblem_options, options));
}

Status DirectoryWriter::Append(mocoder::StreamId id,
                               const mocoder::EncodedEmblem& /*emblem*/,
                               media::Image&& frame) {
  if (finished_) {
    return Status::InvalidArgument("directory store already finished: " +
                                   dir_);
  }
  size_t& count =
      id == mocoder::StreamId::kData ? data_frames_ : system_frames_;
  const std::string path =
      JoinPath(dir_, FrameFileName(id, count, options_.bitonal));
  ULE_RETURN_IF_ERROR(options_.bitonal ? frame.SavePbm(path)
                                       : frame.SavePgm(path));
  ++count;
  return Status::OK();
}

Status DirectoryWriter::AppendBootstrap(const std::string& text) {
  if (finished_) {
    return Status::InvalidArgument("directory store already finished: " +
                                   dir_);
  }
  return WriteFileText(JoinPath(dir_, kBootstrapName), text);
}

Status DirectoryWriter::SetIndexSection(Bytes section) {
  if (finished_) {
    return Status::InvalidArgument("directory store already finished: " +
                                   dir_);
  }
  if (has_index_section_) {
    return Status::InvalidArgument(
        "directory store already has a record-index section: " + dir_);
  }
  index_section_ = std::move(section);
  has_index_section_ = true;
  return Status::OK();
}

Status DirectoryWriter::Finish() {
  if (finished_) {
    return Status::InvalidArgument("directory store already finished: " +
                                   dir_);
  }
  if (has_index_section_) {
    ULE_RETURN_IF_ERROR(
        WriteFileBytes(JoinPath(dir_, kIndexSectionName), index_section_));
    index_section_.clear();
    has_index_section_ = false;
  }
  std::ostringstream manifest;
  manifest << "# ULE film-reel directory (one image file per frame)\n"
           << "data_side: " << emblem_options_.data_side << "\n"
           << "dots_per_cell: " << emblem_options_.dots_per_cell << "\n"
           << "quiet_cells: " << emblem_options_.quiet_cells << "\n"
           << "data_frames: " << data_frames_ << "\n"
           << "system_frames: " << system_frames_ << "\n"
           << "frame_codec: " << (options_.bitonal ? "pbm" : "pgm") << "\n";
  ULE_RETURN_IF_ERROR(
      WriteFileText(JoinPath(dir_, kManifestName), manifest.str()));
  finished_ = true;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Reader

Result<std::unique_ptr<DirectoryReader>> DirectoryReader::Open(
    const std::string& dir) {
  const std::string manifest_path = JoinPath(dir, kManifestName);
  if (!std::filesystem::exists(manifest_path)) {
    return Status::NotFound("no film-reel manifest (" +
                            std::string(kManifestName) + ") in " + dir);
  }
  ULE_ASSIGN_OR_RETURN(std::string manifest, ReadFileText(manifest_path));

  auto reader = std::unique_ptr<DirectoryReader>(new DirectoryReader());
  reader->dir_ = dir;
  reader->emblem_options_.threads = 0;
  long data_side = -1, dots = -1, quiet = -1, data_frames = -1,
       system_frames = -1;
  std::string codec;
  std::istringstream lines(manifest);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return Status::Corruption("bad manifest line in " + manifest_path +
                                ": " + line);
    }
    const std::string key = line.substr(0, colon);
    std::istringstream value(line.substr(colon + 1));
    if (key == "data_side") value >> data_side;
    else if (key == "dots_per_cell") value >> dots;
    else if (key == "quiet_cells") value >> quiet;
    else if (key == "data_frames") value >> data_frames;
    else if (key == "system_frames") value >> system_frames;
    else if (key == "frame_codec") value >> codec;
    // Unknown keys are ignored: manifests may grow fields.
  }
  if (data_side < 0 || dots < 0 || quiet < 0 || data_frames < 0 ||
      system_frames < 0 || (codec != "pgm" && codec != "pbm")) {
    return Status::Corruption("incomplete manifest: " + manifest_path);
  }
  reader->emblem_options_.data_side = static_cast<int>(data_side);
  reader->emblem_options_.dots_per_cell = static_cast<int>(dots);
  reader->emblem_options_.quiet_cells = static_cast<int>(quiet);
  ULE_RETURN_IF_ERROR(mocoder::ValidateOptions(reader->emblem_options_));
  reader->data_frames_ = static_cast<size_t>(data_frames);
  reader->system_frames_ = static_cast<size_t>(system_frames);
  reader->bitonal_ = codec == "pbm";
  return reader;
}

bool DirectoryReader::has_bootstrap() const {
  return std::filesystem::exists(JoinPath(dir_, kBootstrapName));
}

Result<std::string> DirectoryReader::ReadBootstrap() const {
  if (!has_bootstrap()) {
    return Status::NotFound("no " + std::string(kBootstrapName) + " in " +
                            dir_);
  }
  return ReadFileText(JoinPath(dir_, kBootstrapName));
}

std::unique_ptr<FrameSource> DirectoryReader::OpenFrames(
    mocoder::StreamId id) const {
  return std::make_unique<DirectorySource>(dir_, id, frame_count(id), bitonal_,
                                           counters_);
}

Result<media::Image> DirectoryReader::ReadFrame(mocoder::StreamId id,
                                                size_t index) const {
  if (index >= frame_count(id)) {
    return Status::OutOfRange(
        "frame " + std::to_string(index) + " out of range (stream has " +
        std::to_string(frame_count(id)) + " frames): " + dir_);
  }
  return LoadFrameFile(JoinPath(dir_, FrameFileName(id, index, bitonal_)),
                       bitonal_, counters_.get());
}

Result<Bytes> DirectoryReader::ReadIndexSection() const {
  const std::string path = JoinPath(dir_, kIndexSectionName);
  if (!std::filesystem::exists(path)) {
    return Status::NotFound("no record-index sidecar (" +
                            std::string(kIndexSectionName) + ") in " + dir_);
  }
  return ReadFileBytes(path);
}

Status DirectoryReader::Verify() const {
  for (mocoder::StreamId id :
       {mocoder::StreamId::kData, mocoder::StreamId::kSystem}) {
    auto source = OpenFrames(id);
    for (;;) {
      auto next = source->Next();
      if (!next.ok()) return next.status();
      if (!next.value().has_value()) break;
    }
  }
  return Status::OK();
}

}  // namespace filmstore
}  // namespace ule
