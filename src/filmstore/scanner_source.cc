#include "filmstore/scanner_source.h"

#include <utility>

namespace ule {
namespace filmstore {

Result<std::optional<media::Image>> ScannerSource::Next() {
  ULE_ASSIGN_OR_RETURN(std::optional<media::Image> frame, inner_->Next());
  if (!frame.has_value()) return std::optional<media::Image>();
  if (options_.bitonal_print) {
    for (auto& px : frame->mutable_pixels()) px = px < 128 ? 0 : 255;
  }
  media::ScanProfile profile = options_.profile;
  profile.seed = options_.profile.seed + index_;
  ++index_;
  return std::optional<media::Image>(media::Scan(*frame, profile));
}

}  // namespace filmstore
}  // namespace ule
