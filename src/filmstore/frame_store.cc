#include "filmstore/frame_store.h"

namespace ule {
namespace filmstore {

Status MemoryStore::Append(mocoder::StreamId id,
                           const mocoder::EncodedEmblem& emblem,
                           media::Image&& frame) {
  Stream& stream = Slot(id);
  stream.emblems.push_back(emblem);
  stream.frames.push_back(std::move(frame));
  return Status::OK();
}

std::unique_ptr<FrameSource> MemoryStore::OpenFrames(
    mocoder::StreamId id) const {
  return std::make_unique<VectorSource>(Slot(id).frames);
}

std::unique_ptr<FrameSource> MemoryStore::ConsumeFrames(mocoder::StreamId id) {
  return VectorSource::Consuming(Slot(id).frames);
}

}  // namespace filmstore
}  // namespace ule
