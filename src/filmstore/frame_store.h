/// \file frame_store.h
/// \brief The film-store boundary: where rendered frames go during an
/// archive and where scanned frames come from during a restore.
///
/// The archive/restore pipeline in `core` streams frames one at a time
/// with O(threads × emblem) peak memory; this header defines the small
/// polymorphic interfaces the pipeline hands those frames across:
///
///   * `FrameSink`    — receives each rendered frame during archival;
///   * `FrameSource`  — yields scanned frames one at a time at restore.
///
/// Backends live next door: `MemoryStore` (below — frames in vectors, the
/// pre-filmstore behavior), `DirectoryStore` (one image file per frame,
/// human-browsable), the single-file ULE-C1 container (`container.h`)
/// that spools archives larger than RAM to disk, and the ULE-R1 reel set
/// (`reel_set.h`) that shards one archive across many such containers.
/// The on-disk writers all implement `ArchiveWriter` (FrameSink + the
/// AppendBootstrap/Finish finalization half), so drivers seal any of
/// them through one pointer. `FunctionSink`/`FunctionSource` adapt
/// ad-hoc lambdas (the shape the old `core::FrameSink`/
/// `core::FrameSource` typedefs had) so call sites that just want a
/// callback keep working; `ScannerSource` (`scanner_source.h`) wraps any
/// source in the print/scan degradation model.

#ifndef ULE_FILMSTORE_FRAME_STORE_H_
#define ULE_FILMSTORE_FRAME_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "media/image.h"
#include "mocoder/mocoder.h"
#include "support/status.h"

namespace ule {
namespace filmstore {

/// \brief Per-reel accounting a sink can expose while (and after) an
/// archive streams through it. Single-reel backends report one entry;
/// the sharding `ReelSetWriter` (reel_set.h) reports one per reel, which
/// is how `core::ArchiveSummary` learns how the archive was split.
struct ReelStats {
  std::string name;      ///< reel path (or file name within a set)
  size_t frames = 0;     ///< frame records appended so far
  uint64_t bytes = 0;    ///< bytes written so far (final after Finish)
};

/// \brief Receives one rendered frame (and its encoded emblem) during a
/// streaming archive. Frames arrive grouped by stream — every data frame,
/// then every system frame — in sequence order within each stream, i.e.
/// exactly the order `core::Archive::data_images` / `system_images` would
/// hold them. A non-OK status aborts the archive. Called serially from
/// the archiving thread.
class FrameSink {
 public:
  virtual ~FrameSink() = default;

  virtual Status Append(mocoder::StreamId id,
                        const mocoder::EncodedEmblem& emblem,
                        media::Image&& frame) = 0;

  /// Per-reel accounting for backends that write physical reels; empty
  /// for sinks with no reel notion (memory, ad-hoc callbacks).
  virtual std::vector<ReelStats> CurrentReelStats() const { return {}; }
};

/// \brief The full writer contract of an on-disk reel backend: frames
/// stream in through FrameSink, then the caller appends the Bootstrap
/// document and seals the artifact. ContainerWriter, DirectoryWriter and
/// ReelSetWriter all implement this, so drivers (ulectl, benches) can
/// finalize any backend through one pointer instead of per-type plumbing.
class ArchiveWriter : public FrameSink {
 public:
  /// Archives the Bootstrap document so the artifact restores (even
  /// emulated) on its own. At most one per archive.
  virtual Status AppendBootstrap(const std::string& text) = 0;
  /// \brief Hands the writer the serialized ULE-S1 record-index section
  /// (core::RecordIndex::Serialize) describing the archive streamed
  /// through it; Finish persists it (as a container record, on the last
  /// reel of a set, or as a sidecar file) so a later selective restore
  /// can map tables/rows to frame records. Optional — at most once,
  /// before Finish. The section is opaque bytes at this layer.
  virtual Status SetIndexSection(Bytes section) = 0;
  /// Seals the artifact (indexes, manifests, catalogs). Required;
  /// appending after Finish (or finishing twice) is InvalidArgument.
  virtual Status Finish() = 0;
};

/// \brief Pull source of scanned frames for streaming restoration: yields
/// the next frame, nullopt when the reel is exhausted, or an error Status
/// when the backing store is unreadable (I/O failure, corrupt record).
/// Called serially from the restoring thread.
class FrameSource {
 public:
  virtual ~FrameSource() = default;

  virtual Result<std::optional<media::Image>> Next() = 0;
};

/// Adapts a callback to FrameSink (the old `core::FrameSink` shape).
class FunctionSink final : public FrameSink {
 public:
  using Fn = std::function<Status(mocoder::StreamId id,
                                  const mocoder::EncodedEmblem& emblem,
                                  media::Image&& frame)>;
  explicit FunctionSink(Fn fn) : fn_(std::move(fn)) {}

  Status Append(mocoder::StreamId id, const mocoder::EncodedEmblem& emblem,
                media::Image&& frame) override {
    return fn_(id, emblem, std::move(frame));
  }

 private:
  Fn fn_;
};

/// \brief Adapts a pull callback to FrameSource. The native callback
/// shape carries the full FrameSource contract — a frame, end-of-reel,
/// or an error Status — so a backing-store read failure aborts the
/// restore instead of masquerading as a short reel.
class FunctionSource final : public FrameSource {
 public:
  /// Error-capable pull callback (the native shape).
  using Fn = std::function<Result<std::optional<media::Image>>()>;
  /// Legacy shape with no error channel (the old `core::FrameSource`
  /// typedef): nullopt ends the reel, so a read failure is
  /// indistinguishable from exhaustion and silently truncates.
  using InfallibleFn = std::function<std::optional<media::Image>()>;

  explicit FunctionSource(Fn fn) : fn_(std::move(fn)) {}

  /// Wraps a callback with no error channel. Only for callbacks that
  /// genuinely cannot fail (in-memory generators); anything touching
  /// storage should use the Result-returning constructor, where a
  /// mid-reel I/O failure surfaces as a non-OK Status.
  static FunctionSource FromInfallible(InfallibleFn fn) {
    return FunctionSource(
        [fn = std::move(fn)]() -> Result<std::optional<media::Image>> {
          return fn();
        });
  }

  Result<std::optional<media::Image>> Next() override { return fn_(); }

 private:
  Fn fn_;
};

/// \brief Yields the images of a vector, in order. Borrowing mode (const
/// reference: the vector must outlive the source) yields copies; owning
/// mode (rvalue) and `Consuming` *move* each frame out instead, so a
/// restore from memory does not pay O(archive) extra RSS on top of the
/// store itself — the vector's images are left moved-from.
class VectorSource final : public FrameSource {
 public:
  explicit VectorSource(const std::vector<media::Image>& frames)
      : frames_(&frames) {}
  explicit VectorSource(std::vector<media::Image>&& frames)
      : owned_(std::move(frames)), frames_(&owned_), mutable_frames_(&owned_) {}

  /// Consuming source over frames owned elsewhere: each Next() moves the
  /// frame out of `frames` (which must outlive the source), leaving an
  /// empty shell behind.
  static std::unique_ptr<VectorSource> Consuming(
      std::vector<media::Image>& frames) {
    auto source = std::make_unique<VectorSource>(
        static_cast<const std::vector<media::Image>&>(frames));
    source->mutable_frames_ = &frames;
    return source;
  }

  Result<std::optional<media::Image>> Next() override {
    if (next_ >= frames_->size()) return std::optional<media::Image>();
    if (mutable_frames_ != nullptr) {
      return std::optional<media::Image>(std::move((*mutable_frames_)[next_++]));
    }
    return std::optional<media::Image>((*frames_)[next_++]);
  }

 private:
  std::vector<media::Image> owned_;
  const std::vector<media::Image>* frames_;
  std::vector<media::Image>* mutable_frames_ = nullptr;
  size_t next_ = 0;
};

/// \brief In-memory film store: frames (and their emblems) accumulate in
/// per-stream vectors — the materialized shape every pre-filmstore call
/// site used. Peak memory is O(archive); use the ULE-C1 container
/// (`container.h`) when the archive may not fit in RAM.
class MemoryStore final : public FrameSink {
 public:
  Status Append(mocoder::StreamId id, const mocoder::EncodedEmblem& emblem,
                media::Image&& frame) override;

  const std::vector<media::Image>& frames(mocoder::StreamId id) const {
    return Slot(id).frames;
  }
  const std::vector<mocoder::EncodedEmblem>& emblems(
      mocoder::StreamId id) const {
    return Slot(id).emblems;
  }

  /// Source over the stored frames of one stream (yields copies). The
  /// store must outlive the source; frames appended after the call are
  /// picked up until the source reports end-of-reel.
  std::unique_ptr<FrameSource> OpenFrames(mocoder::StreamId id) const;

  /// Like OpenFrames but *moves* each frame out of the store (leaving
  /// empty shells), so restoring from memory holds one live copy per
  /// frame instead of two. The store must outlive the source; the
  /// stream's frames are unusable afterwards (emblems are untouched).
  std::unique_ptr<FrameSource> ConsumeFrames(mocoder::StreamId id);

 private:
  struct Stream {
    std::vector<mocoder::EncodedEmblem> emblems;
    std::vector<media::Image> frames;
  };
  const Stream& Slot(mocoder::StreamId id) const {
    return id == mocoder::StreamId::kData ? data_ : system_;
  }
  Stream& Slot(mocoder::StreamId id) {
    return id == mocoder::StreamId::kData ? data_ : system_;
  }

  Stream data_;
  Stream system_;
};

}  // namespace filmstore
}  // namespace ule

#endif  // ULE_FILMSTORE_FRAME_STORE_H_
