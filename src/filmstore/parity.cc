#include "filmstore/parity.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "rs/gf256.h"
#include "rs/reed_solomon.h"
#include "support/crc32.h"
#include "support/io.h"
#include "support/parallel.h"

namespace ule {
namespace filmstore {

// ULE-P1 parity reel wire form (docs/FORMAT.md §10.1; integers
// little-endian):
//
//   header (16 bytes):
//     0   4  magic "ULEP"
//     4   1  binary version (kParityBinaryVersion)
//     5   1  parity index p (0-based position in the catalog section)
//     6   2  data reel count n
//     8   2  parity reel count m
//     10  2  reserved (0)
//     12  4  reserved (0)
//   then exactly `stripe_bytes` parity bytes: byte j is parity symbol p
//   of the RS(n+m, n) codeword over byte j of every data reel's sealed
//   file (streams shorter than the stripe are zero-padded).
//
// The file carries no checksum of its own: the catalog's ULE-P1 section
// records its size and CRC-32, exactly like a data reel's row.

namespace {

constexpr char kParityMagic[4] = {'U', 'L', 'E', 'P'};

/// Per-chunk working-set unit for the streaming encode/reconstruct
/// passes; memory stays O((outputs + 1) * chunk) however big the reels.
constexpr size_t kStripeChunkBytes = 1 << 20;

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  return (std::filesystem::path(dir) / name).string();
}

Bytes ParityHeader(size_t parity_index, size_t data_reels,
                   size_t parity_reels) {
  ByteWriter w;
  w.PutBytes(BytesView(reinterpret_cast<const uint8_t*>(kParityMagic), 4));
  w.PutU8(kParityBinaryVersion);
  w.PutU8(static_cast<uint8_t>(parity_index));
  w.PutU16(static_cast<uint16_t>(data_reels));
  w.PutU16(static_cast<uint16_t>(parity_reels));
  w.PutU16(0);  // reserved
  w.PutU32(0);  // reserved
  return w.TakeBytes();
}

/// Parity weights of the systematic RS(n+m, n) code: `coeff[p][i]` is
/// the GF(256) weight of data stream i in parity stream p. Parity is
/// linear in the data, so encoding the n unit vectors recovers the
/// whole matrix — and lets the striped passes below work byte-at-a-time
/// without ever calling the polynomial encoder per offset.
Result<std::vector<std::vector<uint8_t>>> ParityCoefficients(size_t n,
                                                             size_t m) {
  rs::Codec codec(static_cast<int>(n + m), static_cast<int>(n));
  std::vector<std::vector<uint8_t>> coeff(m, std::vector<uint8_t>(n, 0));
  Bytes unit(n, 0);
  for (size_t i = 0; i < n; ++i) {
    std::fill(unit.begin(), unit.end(), 0);
    unit[i] = 1;
    ULE_ASSIGN_OR_RETURN(Bytes codeword, codec.Encode(unit));
    for (size_t p = 0; p < m; ++p) coeff[p][i] = codeword[n + p];
  }
  return coeff;
}

/// One input stream of a striped pass: `payload_bytes` real bytes at
/// `offset` in the file, zero-padded (implicitly — zeros contribute
/// nothing to a GF(256) linear combination) to the stripe.
struct StripeInput {
  std::string path;
  uint64_t offset = 0;
  uint64_t payload_bytes = 0;
};

/// One output stream: `head` is written first (parity header; empty for
/// data reels), then the first `payload_bytes` of the computed stripe.
/// The file lands at `tmp_path` and is renamed to `path` on success, so
/// an interrupted pass never leaves a half-written reel in place.
struct StripeOutput {
  std::string path;
  Bytes head;
  uint64_t payload_bytes = 0;  ///< stripe bytes to keep (≤ stripe)
  uint64_t want_bytes = 0;     ///< expected final file size
  uint32_t want_crc = 0;       ///< expected final file CRC-32
};

/// The shared core of encode and reconstruct: streams every input once
/// and writes, for each output o, the GF(256) linear combination
/// `out_o[j] = XOR_r Mul(weights[o][r], in_r[j])` over the stripe.
/// With `verify`, each finished file is checked against its expected
/// size + CRC before being renamed into place (reconstruction knows the
/// catalog's truth; a fresh encode is the truth and skips the check).
Status StripeTransform(const std::vector<StripeInput>& inputs,
                       const std::vector<StripeOutput>& outputs,
                       const std::vector<std::vector<uint8_t>>& weights,
                       uint64_t stripe_bytes, bool verify) {
  std::vector<std::ifstream> in(inputs.size());
  for (size_t r = 0; r < inputs.size(); ++r) {
    in[r].open(inputs[r].path, std::ios::binary);
    if (!in[r]) return Status::IoError("cannot open " + inputs[r].path);
    in[r].seekg(static_cast<std::streamoff>(inputs[r].offset));
    if (!in[r]) return Status::IoError("cannot seek in " + inputs[r].path);
  }

  struct OpenOutput {
    std::ofstream file;
    std::string tmp_path;
    uint64_t remaining = 0;
    uint64_t bytes = 0;
    uint32_t crc = 0;
  };
  std::vector<OpenOutput> out(outputs.size());
  for (size_t o = 0; o < outputs.size(); ++o) {
    out[o].tmp_path = outputs[o].path + ".ule-tmp";
    out[o].file.open(out[o].tmp_path,
                     std::ios::binary | std::ios::trunc);
    if (!out[o].file) {
      return Status::IoError("cannot create " + out[o].tmp_path);
    }
    if (!outputs[o].head.empty()) {
      out[o].file.write(
          reinterpret_cast<const char*>(outputs[o].head.data()),
          static_cast<std::streamsize>(outputs[o].head.size()));
      out[o].crc = Crc32(outputs[o].head, out[o].crc);
      out[o].bytes = outputs[o].head.size();
    }
    out[o].remaining = outputs[o].payload_bytes;
  }

  std::vector<uint64_t> in_remaining(inputs.size());
  for (size_t r = 0; r < inputs.size(); ++r) {
    in_remaining[r] = std::min<uint64_t>(inputs[r].payload_bytes,
                                         stripe_bytes);
  }

  Bytes buf(kStripeChunkBytes);
  std::vector<Bytes> acc(outputs.size());
  for (uint64_t off = 0; off < stripe_bytes; off += kStripeChunkBytes) {
    const size_t len = static_cast<size_t>(
        std::min<uint64_t>(kStripeChunkBytes, stripe_bytes - off));
    for (size_t o = 0; o < outputs.size(); ++o) acc[o].assign(len, 0);
    for (size_t r = 0; r < inputs.size(); ++r) {
      const size_t want = static_cast<size_t>(
          std::min<uint64_t>(len, in_remaining[r]));
      if (want == 0) continue;  // past this stream's end: all zeros
      in[r].read(reinterpret_cast<char*>(buf.data()),
                 static_cast<std::streamsize>(want));
      if (static_cast<size_t>(in[r].gcount()) != want) {
        return Status::IoError("short read: " + inputs[r].path);
      }
      in_remaining[r] -= want;
      for (size_t o = 0; o < outputs.size(); ++o) {
        // acc_o ^= weights[o][r] * chunk — the SIMD-dispatched GF(256)
        // kernel (support/kernels.h), byte-identical to the old lookup.
        rs::Gf256::MulSliceAccum(acc[o].data(), buf.data(), weights[o][r],
                                 want);
      }
    }
    for (size_t o = 0; o < outputs.size(); ++o) {
      const size_t keep = static_cast<size_t>(
          std::min<uint64_t>(len, out[o].remaining));
      if (keep == 0) continue;
      out[o].file.write(reinterpret_cast<const char*>(acc[o].data()),
                        static_cast<std::streamsize>(keep));
      out[o].crc = Crc32(BytesView(acc[o]).subspan(0, keep), out[o].crc);
      out[o].bytes += keep;
      out[o].remaining -= keep;
    }
  }

  for (size_t o = 0; o < outputs.size(); ++o) {
    out[o].file.close();
    if (!out[o].file) {
      std::remove(out[o].tmp_path.c_str());
      return Status::IoError("write failed: " + out[o].tmp_path);
    }
    if (verify && (out[o].bytes != outputs[o].want_bytes ||
                   out[o].crc != outputs[o].want_crc)) {
      std::remove(out[o].tmp_path.c_str());
      return Status::Corruption(
          "reconstruction of " + outputs[o].path +
          " does not match the catalog (a surviving reel must be "
          "silently damaged too)");
    }
    std::error_code ec;
    std::filesystem::rename(out[o].tmp_path, outputs[o].path, ec);
    if (ec) {
      std::remove(out[o].tmp_path.c_str());
      return Status::IoError("cannot rename " + out[o].tmp_path + " to " +
                             outputs[o].path + ": " + ec.message());
    }
  }
  return Status::OK();
}

uint64_t StripeLength(const ReelCatalog& catalog) {
  uint64_t stripe = 0;
  for (const CatalogReel& row : catalog.reels) {
    stripe = std::max(stripe, row.bytes);
  }
  return stripe;
}

}  // namespace

std::string ParityReelFileName(const std::string& catalog_path, size_t index) {
  const std::filesystem::path p(catalog_path);
  char suffix[16];
  std::snprintf(suffix, sizeof suffix, "-p%02zu.ulep", index);
  return (p.parent_path() / (p.stem().string() + suffix)).string();
}

Result<ReelCatalog> ParityReelWriter::Build(const std::string& catalog_path,
                                            int parity_reels) {
  ULE_ASSIGN_OR_RETURN(ReelCatalog catalog, LoadCatalog(catalog_path));
  const size_t n = catalog.reels.size();
  const size_t m = static_cast<size_t>(parity_reels);
  if (parity_reels < 1) {
    return Status::InvalidArgument("parity needs at least one parity reel");
  }
  if (n == 0) {
    return Status::InvalidArgument("reel set has no reels to protect: " +
                                   catalog_path);
  }
  if (n + m > 255) {
    return Status::InvalidArgument(
        "RS(n+m, n) needs n+m <= 255: " + std::to_string(n) +
        " data reels + " + std::to_string(m) + " parity reels");
  }
  const std::string dir =
      std::filesystem::path(catalog_path).parent_path().string();

  // Parity over damaged bytes would notarize the damage as truth, so
  // every data reel must match its row before encoding starts.
  {
    ReelCatalog bare = catalog;
    bare.parity = ParityInfo();
    ULE_ASSIGN_OR_RETURN(SetHealth health, AssessSet(bare, dir));
    if (!health.damaged_data.empty()) {
      const CatalogReel& row = catalog.reels[health.damaged_data.front()];
      return Status::InvalidArgument(
          "cannot encode parity over a damaged set: reel " +
          std::to_string(health.damaged_data.front()) + " (" + row.name +
          ") disagrees with the catalog");
    }
  }

  const uint64_t stripe = StripeLength(catalog);
  ULE_ASSIGN_OR_RETURN(std::vector<std::vector<uint8_t>> coeff,
                       ParityCoefficients(n, m));

  std::vector<StripeInput> inputs(n);
  for (size_t i = 0; i < n; ++i) {
    inputs[i] = StripeInput{JoinPath(dir, catalog.reels[i].name), 0,
                            catalog.reels[i].bytes};
  }
  // A fresh encode *defines* the truth the catalog will record, so the
  // transform runs unverified; the digest below reads back what landed
  // on disk for the catalog rows.
  std::vector<StripeOutput> outputs(m);
  std::vector<std::string> parity_paths(m);
  for (size_t p = 0; p < m; ++p) {
    parity_paths[p] = ParityReelFileName(catalog_path, p);
    outputs[p].path = parity_paths[p];
    outputs[p].head = ParityHeader(p, n, m);
    outputs[p].payload_bytes = stripe;
    outputs[p].want_bytes = kParityReelHeaderBytes + stripe;
  }
  ULE_RETURN_IF_ERROR(
      StripeTransform(inputs, outputs, coeff, stripe, /*verify=*/false));

  catalog.parity.parity_reels = static_cast<uint8_t>(m);
  catalog.parity.stripe_bytes = stripe;
  catalog.parity.reels.clear();
  for (size_t p = 0; p < m; ++p) {
    ULE_ASSIGN_OR_RETURN(FileDigest digest, DigestFile(parity_paths[p]));
    CatalogParityReel row;
    row.name = std::filesystem::path(parity_paths[p]).filename().string();
    row.bytes = digest.bytes;
    row.file_crc = digest.crc;
    catalog.parity.reels.push_back(std::move(row));
  }
  ULE_RETURN_IF_ERROR(WriteFileBytes(catalog_path, catalog.Serialize()));
  return catalog;
}

Result<SetHealth> AssessSet(const ReelCatalog& catalog,
                            const std::string& dir) {
  // Digest every reel of the set in parallel on the shared pool — the
  // whole-file CRC pass dominates assessment, and the files are
  // independent. Each index writes only its own flag slot, and the
  // health rows are assembled serially afterwards, so the report is
  // byte-identical to the old serial sweep regardless of thread count.
  const size_t n = catalog.reels.size();
  const size_t total = n + catalog.parity.reels.size();
  std::vector<uint8_t> damaged(total, 0);
  const Status digest_sweep = ParallelFor(0, total, [&](size_t i) {
    uint64_t want_bytes = 0;
    uint32_t want_crc = 0;
    std::string path;
    if (i < n) {
      const CatalogReel& row = catalog.reels[i];
      path = JoinPath(dir, row.name);
      want_bytes = row.bytes;
      want_crc = row.file_crc;
    } else {
      const CatalogParityReel& row = catalog.parity.reels[i - n];
      path = JoinPath(dir, row.name);
      want_bytes = row.bytes;
      want_crc = row.file_crc;
    }
    auto digest = DigestFile(path);
    if (!digest.ok() || digest.value().bytes != want_bytes ||
        digest.value().crc != want_crc) {
      damaged[i] = 1;
    }
    return Status::OK();  // an unreadable reel is damage, not an error
  });
  ULE_RETURN_IF_ERROR(digest_sweep);
  SetHealth health;
  for (size_t i = 0; i < n; ++i) {
    if (damaged[i]) health.damaged_data.push_back(i);
  }
  for (size_t p = n; p < total; ++p) {
    if (damaged[p]) health.damaged_parity.push_back(p - n);
  }
  return health;
}

bool Recoverable(const ReelCatalog& catalog, const SetHealth& health) {
  if (!catalog.parity.present()) return health.clean();
  return health.damaged() <= catalog.parity.parity_reels;
}

Result<uint64_t> ReconstructDamaged(const ReelCatalog& catalog,
                                    const std::string& dir,
                                    const SetHealth& health,
                                    const ReconstructOptions& options) {
  if (!Recoverable(catalog, health)) {
    return Status::InvalidArgument(
        "set is not recoverable: " + std::to_string(health.damaged()) +
        " streams damaged, parity covers " +
        std::to_string(catalog.parity.parity_reels));
  }
  if (health.damaged_data.empty() &&
      (!options.rebuild_parity || health.damaged_parity.empty())) {
    return 0;  // nothing to do
  }
  const size_t n = catalog.reels.size();
  const size_t m = catalog.parity.parity_reels;
  const uint64_t stripe = catalog.parity.stripe_bytes;
  ULE_ASSIGN_OR_RETURN(std::vector<std::vector<uint8_t>> coeff,
                       ParityCoefficients(n, m));

  // Streams 0..n-1 are the data reels, n..n+m-1 the parity reels. Pick
  // the first n surviving streams; the RS code guarantees they span.
  std::vector<bool> damaged(n + m, false);
  for (size_t i : health.damaged_data) damaged[i] = true;
  for (size_t p : health.damaged_parity) damaged[n + p] = true;
  std::vector<size_t> survivors;
  for (size_t s = 0; s < n + m && survivors.size() < n; ++s) {
    if (!damaged[s]) survivors.push_back(s);
  }
  if (survivors.size() < n) {
    return Status::InvalidArgument("not enough surviving streams");
  }

  // Row r of `a` expresses survivor r as a combination of the n data
  // streams; inverting gives every data stream as a combination of the
  // survivors.
  std::vector<std::vector<uint8_t>> a(n, std::vector<uint8_t>(n, 0));
  for (size_t r = 0; r < n; ++r) {
    const size_t s = survivors[r];
    if (s < n) {
      a[r][s] = 1;
    } else {
      a[r] = coeff[s - n];
    }
  }
  ULE_ASSIGN_OR_RETURN(std::vector<std::vector<uint8_t>> inv,
                       rs::InvertGf256Matrix(std::move(a)));

  std::vector<StripeInput> inputs(n);
  for (size_t r = 0; r < n; ++r) {
    const size_t s = survivors[r];
    if (s < n) {
      inputs[r] = StripeInput{JoinPath(dir, catalog.reels[s].name), 0,
                              catalog.reels[s].bytes};
    } else {
      inputs[r] =
          StripeInput{JoinPath(dir, catalog.parity.reels[s - n].name),
                      kParityReelHeaderBytes, stripe};
    }
  }

  std::vector<StripeOutput> outputs;
  std::vector<std::vector<uint8_t>> weights;
  for (size_t d : health.damaged_data) {
    const CatalogReel& row = catalog.reels[d];
    StripeOutput out;
    out.path = JoinPath(dir, row.name + options.data_suffix);
    out.payload_bytes = row.bytes;
    out.want_bytes = row.bytes;
    out.want_crc = row.file_crc;
    outputs.push_back(std::move(out));
    weights.push_back(inv[d]);  // data stream d over the survivors
  }
  if (options.rebuild_parity) {
    for (size_t p : health.damaged_parity) {
      const CatalogParityReel& row = catalog.parity.reels[p];
      StripeOutput out;
      out.path = JoinPath(dir, row.name);
      out.head = ParityHeader(p, n, m);
      out.payload_bytes = stripe;
      out.want_bytes = row.bytes;
      out.want_crc = row.file_crc;
      outputs.push_back(std::move(out));
      // parity p = coeff[p] · data = (coeff[p] · inv) · survivors
      std::vector<uint8_t> w(n, 0);
      for (size_t r = 0; r < n; ++r) {
        uint8_t acc = 0;
        for (size_t i = 0; i < n; ++i) {
          acc = static_cast<uint8_t>(
              acc ^ rs::Gf256::Mul(coeff[p][i], inv[i][r]));
        }
        w[r] = acc;
      }
      weights.push_back(std::move(w));
    }
  }

  uint64_t written = 0;
  for (const StripeOutput& out : outputs) written += out.want_bytes;
  ULE_RETURN_IF_ERROR(
      StripeTransform(inputs, outputs, weights, stripe, /*verify=*/true));
  return written;
}

}  // namespace filmstore
}  // namespace ule
