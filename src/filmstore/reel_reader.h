/// \file reel_reader.h
/// \brief Uniform read surface over any sealed reel on disk.
///
/// `ContainerReader` (single-file ULE-C1), `DirectoryReader` (folder of
/// frame images) and `ReelSetReader` (ULE-R1 catalog over many sharded
/// reels) expose the same contract; this interface names it so tools
/// open "a reel" without caring which backend wrote it. `OpenReel` picks
/// the backend from the path (directory → directory reel, file starting
/// with the ULE-R1 magic → reel-set catalog, anything else → ULE-C1
/// container).

#ifndef ULE_FILMSTORE_REEL_READER_H_
#define ULE_FILMSTORE_REEL_READER_H_

#include <memory>
#include <string>

#include "filmstore/frame_store.h"
#include "mocoder/mocoder.h"
#include "support/status.h"

namespace ule {
namespace filmstore {

class ReelReader {
 public:
  virtual ~ReelReader() = default;

  /// Human-readable backend name ("ULE-C1 container", "directory").
  virtual const char* kind() const = 0;
  /// Recorded emblem geometry (threads = 0: never archival).
  virtual const mocoder::Options& emblem_options() const = 0;
  /// Frame records of one stream (in append = sequence order).
  virtual size_t frame_count(mocoder::StreamId id) const = 0;
  virtual bool has_bootstrap() const = 0;
  /// Reads the archived Bootstrap document; NotFound when the reel was
  /// written without one.
  virtual Result<std::string> ReadBootstrap() const = 0;
  /// Pull source over one stream's frames, loading one frame per Next()
  /// call. Self-contained; may outlive the reader.
  virtual std::unique_ptr<FrameSource> OpenFrames(
      mocoder::StreamId id) const = 0;
  /// Re-reads every record and validates what the backend can guarantee
  /// (ULE-C1: every CRC; directory: every frame file parses).
  virtual Status Verify() const = 0;
};

/// Opens the reel at `path` with the matching backend.
Result<std::unique_ptr<ReelReader>> OpenReel(const std::string& path);

}  // namespace filmstore
}  // namespace ule

#endif  // ULE_FILMSTORE_REEL_READER_H_
