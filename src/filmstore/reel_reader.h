/// \file reel_reader.h
/// \brief Uniform read surface over any sealed reel on disk.
///
/// `ContainerReader` (single-file ULE-C1), `DirectoryReader` (folder of
/// frame images) and `ReelSetReader` (ULE-R1 catalog over many sharded
/// reels) expose the same contract; this interface names it so tools
/// open "a reel" without caring which backend wrote it. `OpenReel` picks
/// the backend from the path (directory → directory reel, file starting
/// with the ULE-R1 magic → reel-set catalog, anything else → ULE-C1
/// container).

#ifndef ULE_FILMSTORE_REEL_READER_H_
#define ULE_FILMSTORE_REEL_READER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "filmstore/frame_store.h"
#include "media/image.h"
#include "mocoder/mocoder.h"
#include "support/bytes.h"
#include "support/status.h"

namespace ule {
namespace filmstore {

/// \brief Cumulative frame-record read accounting of one reader: how
/// many records were fetched from the backing store and how many payload
/// bytes they carried. Selective restoration is judged by exactly this —
/// a partial restore must *read* less, not just decode less — so the
/// counters live at the reader, where every streaming source and seek
/// read it hands out reports in.
struct ReadCounters {
  uint64_t records = 0;  ///< frame records fetched
  uint64_t bytes = 0;    ///< payload bytes of those records
};

/// \brief Shared mutable cell behind ReelReader::read_counters().
/// Sources opened by a reader hold a reference, so reads keep counting
/// even when they outlive the reader; increments are relaxed atomics
/// (sources fan record loads out across pool workers).
struct ReadCounterCell {
  std::atomic<uint64_t> records{0};
  std::atomic<uint64_t> bytes{0};

  void Count(uint64_t payload_bytes) {
    records.fetch_add(1, std::memory_order_relaxed);
    bytes.fetch_add(payload_bytes, std::memory_order_relaxed);
  }
  ReadCounters Snapshot() const {
    return ReadCounters{records.load(std::memory_order_relaxed),
                        bytes.load(std::memory_order_relaxed)};
  }
};

/// \brief Random access into a reel's frames, by stream + emitted
/// position — the read primitive beneath selective restoration. The
/// streaming `ReelReader::OpenFrames` contract is untouched: a seekable
/// backend serves both, and interleaving seek reads with an open
/// streaming source is safe (readers are stateless per call).
class SeekableSource {
 public:
  virtual ~SeekableSource() = default;

  /// Reads (and validates, where the backend has checksums) one frame of
  /// `id`'s stream by its 0-based position in the emitted sequence —
  /// the same order OpenFrames yields and `frame_count` counts.
  /// OutOfRange past the end; a damaged backing record surfaces as the
  /// read error the streaming path would hit at that frame.
  virtual Result<media::Image> ReadFrame(mocoder::StreamId id,
                                         size_t index) const = 0;
};

class ReelReader {
 public:
  virtual ~ReelReader() = default;

  /// Human-readable backend name ("ULE-C1 container", "directory").
  virtual const char* kind() const = 0;
  /// Recorded emblem geometry (threads = 0: never archival).
  virtual const mocoder::Options& emblem_options() const = 0;
  /// Frame records of one stream (in append = sequence order).
  virtual size_t frame_count(mocoder::StreamId id) const = 0;
  virtual bool has_bootstrap() const = 0;
  /// Reads the archived Bootstrap document; NotFound when the reel was
  /// written without one.
  virtual Result<std::string> ReadBootstrap() const = 0;
  /// Pull source over one stream's frames, loading one frame per Next()
  /// call. Self-contained; may outlive the reader.
  virtual std::unique_ptr<FrameSource> OpenFrames(
      mocoder::StreamId id) const = 0;
  /// Re-reads every record and validates what the backend can guarantee
  /// (ULE-C1: every CRC; directory: every frame file parses).
  virtual Status Verify() const = 0;
  /// \brief The serialized ULE-S1 record-index section the archive was
  /// written with (docs/FORMAT.md §11), for `core::RecordIndex::Parse`.
  /// NotFound for a reel archived before (or without) indexing — such
  /// archives stay fully restorable and an index can be re-derived by a
  /// one-pass scan (`core::DeriveRecordIndex`).
  virtual Result<Bytes> ReadIndexSection() const {
    return Status::NotFound("reel has no record-index section");
  }
  /// Frame-record reads served so far — by streaming sources this reader
  /// opened and by seek reads (SeekableSource). Thread-safe snapshot;
  /// backends without per-record accounting report zeros.
  virtual ReadCounters read_counters() const { return {}; }
};

struct ReelOpenOptions {
  /// Reel sets with ULE-P1 parity transparently rebuild up to m damaged
  /// reels on open. Verify-style callers turn this off: they judge the
  /// artifact as stored, and must not write recovery temp files into
  /// the archive directory.
  bool reconstruct = true;
};

/// Opens the reel at `path` with the matching backend.
Result<std::unique_ptr<ReelReader>> OpenReel(const std::string& path);
Result<std::unique_ptr<ReelReader>> OpenReel(const std::string& path,
                                             const ReelOpenOptions& options);

}  // namespace filmstore
}  // namespace ule

#endif  // ULE_FILMSTORE_REEL_READER_H_
