/// \file scrub.h
/// \brief Fleet-scale integrity sweep: walk a directory tree of
/// archives, verify each against its own checksums, repair what ULE-P1
/// parity allows, and emit a machine-readable health report.
///
/// Long-term archival is mostly scrubbing: decades of custody are
/// decades of silent decay, and the write was the easy part. This is
/// the engine behind `ulectl scrub` (and the job every future `uled`
/// daemon schedules): it discovers every ULE-R1 reel set and standalone
/// ULE-C1 reel under a root, scrubs archives in parallel on the shared
/// pool, and classifies each as
///
///   healthy     every file matches its checksums
///   repaired    damage found and rewritten from parity (--repair)
///   repairable  damage found, parity covers it, repair not requested
///   data-loss   damage beyond what parity can rebuild (the report
///               names the reels and the record ranges they owned)
///
/// A sweep over thousands of archives must survive interruption, so the
/// scrub is checkpointed: every finished archive appends one line to a
/// journal, and a re-run with the same journal skips straight past the
/// archives already scrubbed — the resumed fleet report is identical to
/// an uninterrupted run's.

#ifndef ULE_FILMSTORE_SCRUB_H_
#define ULE_FILMSTORE_SCRUB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.h"

namespace ule {
namespace filmstore {

enum class ArchiveState {
  kHealthy = 0,
  kRepaired = 1,
  kRepairable = 2,
  kDataLoss = 3,
  kError = 4,  ///< the scrub itself faulted (not a verdict on the data)
};

const char* ArchiveStateName(ArchiveState state);

/// One archive's scrub verdict.
struct ArchiveHealth {
  std::string path;  ///< relative to the scrub root
  std::string kind;  ///< "reel-set" or "container"
  ArchiveState state = ArchiveState::kError;
  uint64_t records = 0;               ///< records the catalog/index claims
  std::vector<std::string> damaged;   ///< file names that failed their CRCs
  std::vector<std::string> repaired;  ///< file names rewritten from parity
  uint64_t repaired_bytes = 0;
  std::string detail;  ///< what was lost / why the scrub faulted

  std::string ToJson() const;
};

/// The whole sweep's outcome: per-archive verdicts (sorted by path) and
/// the fleet tallies.
struct FleetReport {
  std::vector<ArchiveHealth> archives;
  size_t healthy = 0;
  size_t repaired = 0;
  size_t repairable = 0;
  size_t data_loss = 0;
  size_t errors = 0;
  uint64_t repaired_bytes = 0;
  size_t resumed = 0;  ///< archives taken from the checkpoint, not re-scrubbed

  /// Shell contract (shared with `ulectl verify`): 0 = every archive
  /// healthy (or repaired), 1 = repairable damage remains, 2 = data
  /// loss or scrub faults.
  int ExitCode() const;
  /// Deterministic JSON: fleet summary + one object per archive. The
  /// `resumed` counter is deliberately excluded — a resumed sweep must
  /// report byte-identically to an uninterrupted one.
  std::string ToJson() const;
};

struct ScrubOptions {
  bool repair = false;  ///< rewrite what parity can rebuild
  int threads = 0;      ///< workers across archives (0 = automatic)
  /// Append-only journal of finished archives; a re-run with the same
  /// path resumes past them. Empty: no checkpointing.
  std::string checkpoint_path;
  /// Stop after scrubbing this many *new* archives (0 = no limit) —
  /// an interrupted sweep, on demand, for tests and bounded batches.
  size_t max_archives = 0;
};

/// Finds every archive under `root`: `.uler` catalogs (each owning its
/// member reels and parity files) and standalone `.ulec` reels that no
/// catalog claims. Returns root-relative paths, sorted.
Result<std::vector<std::string>> DiscoverArchives(const std::string& root);

/// Scrubs one archive (absolute or cwd-relative `path`); `path` is also
/// recorded verbatim in the verdict. Never fails for damage — damage is
/// the verdict; only a malformed call is an error.
Result<ArchiveHealth> ScrubArchive(const std::string& path, bool repair);

/// Sweeps every archive under `root` (parallel across archives on the
/// shared pool), honoring the checkpoint journal when one is named.
Result<FleetReport> ScrubFleet(const std::string& root,
                               const ScrubOptions& options);

}  // namespace filmstore
}  // namespace ule

#endif  // ULE_FILMSTORE_SCRUB_H_
