#include "filmstore/reel_set.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <thread>
#include <utility>

#include "filmstore/parity.h"
#include "support/crc32.h"
#include "support/io.h"
#include "support/parallel.h"

namespace ule {
namespace filmstore {

// ULE-R1 catalog wire form (docs/FORMAT.md §10; integers little-endian):
//
//   header (16 bytes):
//     0   4  magic "ULER"
//     4   1  binary version (kReelSetBinaryVersion)
//     5   1  reserved (0)
//     6   2  emblem data_side
//     8   2  emblem dots_per_cell
//     10  2  emblem quiet_cells
//     12  4  reserved (0)
//   u64 archive_id, u32 reel_count, then per reel:
//     u16 name_len | name bytes (relative to the catalog's directory)
//     u32 first_record | u32 records
//     u32 first_data_frame | u32 data_frames
//     u32 first_system_frame | u32 system_frames
//     u8  has_bootstrap
//     u64 sealed file bytes | u32 CRC-32 of the sealed file bytes
//   optional ULE-P1 parity section (docs/FORMAT.md §10.1):
//     magic "ULEP" | u8 parity binary version | u8 parity reel count m
//     u16 reserved (0) | u64 stripe bytes, then per parity reel:
//       u16 name_len | name bytes | u64 file bytes | u32 file CRC-32
//   trailer (8 bytes at EOF):
//     u32 CRC-32 of all preceding bytes | magic "RCAT"

namespace {

constexpr char kCatalogMagic[4] = {'U', 'L', 'E', 'R'};
constexpr char kCatalogTrailerMagic[4] = {'R', 'C', 'A', 'T'};
constexpr char kCatalogParityMagic[4] = {'U', 'L', 'E', 'P'};
constexpr size_t kCatalogHeaderBytes = 16;
constexpr size_t kCatalogTrailerBytes = 8;

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  return (std::filesystem::path(dir) / name).string();
}

/// One record load for the parallel reel-set source.
struct FrameJob {
  std::string path;  ///< the reel file
  ContainerEntry entry;
};

/// \brief Pull source over records spread across many reels. A driver
/// thread runs `ParallelForOrdered` over the job list — record reads and
/// image decodes fan out on the shared pool, delivery is strictly in job
/// order through a bounded channel — so `Next()` hands frames out in
/// stream order with O(threads) frames in flight, identical at any
/// thread count. Abandoning the source (destruction before the end of
/// the reel) closes the channel, which unwinds the driver cleanly.
class ReelSetSource final : public FrameSource {
 public:
  ReelSetSource(std::vector<FrameJob> jobs, int threads,
                std::shared_ptr<ReadCounterCell> counters)
      : jobs_(std::move(jobs)),
        counters_(std::move(counters)),
        threads_(std::min(ResolveThreadCount(threads),
                          ThreadPool::kMaxThreads)),
        window_(static_cast<size_t>(std::max(2, 2 * threads_))),
        slots_(window_),
        channel_(window_) {
    if (jobs_.empty()) {
      channel_.Close();
      return;
    }
    driver_ = std::thread([this] { Drive(); });
  }

  ~ReelSetSource() override {
    channel_.Close();  // unblocks a driver waiting to push
    if (driver_.joinable()) driver_.join();
  }

  Result<std::optional<media::Image>> Next() override {
    std::optional<Result<media::Image>> item = channel_.Pop();
    if (!item.has_value()) {
      // Drained: the reel set ended, or the driver stopped on a failure
      // that was not already handed out in-band.
      std::lock_guard<std::mutex> lock(mu_);
      if (!final_status_.ok()) return final_status_;
      return std::optional<media::Image>();
    }
    if (!item->ok()) return item->status();
    return std::optional<media::Image>(std::move(*item).TakeValue());
  }

 private:
  void Drive() {
    Status st = Status::OK();
    try {
      st = ParallelForOrdered(
          0, jobs_.size(),
          [this](size_t i) -> Status {
            // Errors ride in the slot so the consumer can deliver them in
            // stream order, exactly where a serial reader would hit them.
            Result<media::Image> frame =
                ReadFrameRecord(jobs_[i].path, jobs_[i].entry);
            if (frame.ok() && counters_) {
              counters_->Count(jobs_[i].entry.payload_len);
            }
            slots_[i % window_] = std::move(frame);
            return Status::OK();
          },
          [this](size_t i) -> Status {
            std::optional<Result<media::Image>>& slot = slots_[i % window_];
            Result<media::Image> frame = std::move(*slot);
            slot.reset();
            const Status failure = frame.ok() ? Status::OK() : frame.status();
            if (!channel_.Push(std::move(frame))) {
              return Status::InvalidArgument("reel-set source abandoned");
            }
            // Do not produce past a delivered failure — the restore
            // aborts at that record anyway.
            return failure;
          },
          threads_, static_cast<int>(window_));
    } catch (const std::exception& e) {
      st = Status::IoError(std::string("reel-set source: ") + e.what());
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      final_status_ = std::move(st);
    }
    channel_.Close();
  }

  std::vector<FrameJob> jobs_;
  std::shared_ptr<ReadCounterCell> counters_;
  const int threads_;
  const size_t window_;
  std::vector<std::optional<Result<media::Image>>> slots_;
  BoundedChannel<Result<media::Image>> channel_;
  std::mutex mu_;
  Status final_status_;
  std::thread driver_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Catalog

Result<FileDigest> DigestFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  FileDigest digest;
  Bytes chunk(1 << 20);
  for (;;) {
    in.read(reinterpret_cast<char*>(chunk.data()),
            static_cast<std::streamsize>(chunk.size()));
    const size_t got = static_cast<size_t>(in.gcount());
    if (got == 0) break;
    digest.crc = Crc32(BytesView(chunk).subspan(0, got), digest.crc);
    digest.bytes += got;
    if (!in) break;  // short final chunk: EOF
  }
  if (in.bad()) return Status::IoError("read failed: " + path);
  return digest;
}

size_t ReelCatalog::frame_count(mocoder::StreamId id) const {
  size_t n = 0;
  for (const CatalogReel& reel : reels) {
    n += id == mocoder::StreamId::kData ? reel.data_frames
                                        : reel.system_frames;
  }
  return n;
}

Bytes ReelCatalog::Serialize() const {
  ByteWriter w;
  w.PutBytes(BytesView(reinterpret_cast<const uint8_t*>(kCatalogMagic), 4));
  w.PutU8(kReelSetBinaryVersion);
  w.PutU8(0);  // reserved
  w.PutU16(static_cast<uint16_t>(emblem_options.data_side));
  w.PutU16(static_cast<uint16_t>(emblem_options.dots_per_cell));
  w.PutU16(static_cast<uint16_t>(emblem_options.quiet_cells));
  w.PutU32(0);  // reserved
  w.PutU64(archive_id);
  w.PutU32(static_cast<uint32_t>(reels.size()));
  for (const CatalogReel& reel : reels) {
    w.PutU16(static_cast<uint16_t>(reel.name.size()));
    w.PutBytes(ToBytes(reel.name));
    w.PutU32(reel.first_record);
    w.PutU32(reel.records);
    w.PutU32(reel.first_data_frame);
    w.PutU32(reel.data_frames);
    w.PutU32(reel.first_system_frame);
    w.PutU32(reel.system_frames);
    w.PutU8(reel.has_bootstrap ? 1 : 0);
    w.PutU64(reel.bytes);
    w.PutU32(reel.file_crc);
  }
  if (parity.present()) {
    w.PutBytes(
        BytesView(reinterpret_cast<const uint8_t*>(kCatalogParityMagic), 4));
    w.PutU8(kParityBinaryVersion);
    w.PutU8(parity.parity_reels);
    w.PutU16(0);  // reserved
    w.PutU64(parity.stripe_bytes);
    for (const CatalogParityReel& reel : parity.reels) {
      w.PutU16(static_cast<uint16_t>(reel.name.size()));
      w.PutBytes(ToBytes(reel.name));
      w.PutU64(reel.bytes);
      w.PutU32(reel.file_crc);
    }
  }
  const uint32_t crc = Crc32(w.bytes());
  w.PutU32(crc);
  w.PutBytes(
      BytesView(reinterpret_cast<const uint8_t*>(kCatalogTrailerMagic), 4));
  return w.TakeBytes();
}

Result<ReelCatalog> ReelCatalog::Parse(BytesView bytes) {
  if (bytes.size() < kCatalogHeaderBytes + 12 + kCatalogTrailerBytes) {
    return Status::Corruption("not a ULE-R1 catalog (too small)");
  }
  if (!std::equal(kCatalogMagic, kCatalogMagic + 4, bytes.begin())) {
    return Status::Corruption("bad catalog magic (not ULE-R1)");
  }
  if (bytes[4] != kReelSetBinaryVersion) {
    return Status::Unimplemented(
        "unsupported ULE-R1 catalog version " + std::to_string(bytes[4]) +
        " (this reader understands version " +
        std::to_string(kReelSetBinaryVersion) + ")");
  }
  const BytesView trailer = bytes.subspan(bytes.size() - kCatalogTrailerBytes);
  if (!std::equal(kCatalogTrailerMagic, kCatalogTrailerMagic + 4,
                  trailer.begin() + 4)) {
    return Status::Corruption("catalog trailer magic missing (truncated?)");
  }
  const BytesView body = bytes.subspan(0, bytes.size() - kCatalogTrailerBytes);
  uint32_t stored_crc = 0;
  {
    ByteReader r(trailer);
    ULE_RETURN_IF_ERROR(r.GetU32(&stored_crc));
  }
  if (Crc32(body) != stored_crc) {
    return Status::Corruption("catalog CRC mismatch");
  }

  ReelCatalog catalog;
  ByteReader r(body.subspan(6));
  uint16_t data_side = 0, dots = 0, quiet = 0;
  uint32_t reserved = 0, reel_count = 0;
  ULE_RETURN_IF_ERROR(r.GetU16(&data_side));
  ULE_RETURN_IF_ERROR(r.GetU16(&dots));
  ULE_RETURN_IF_ERROR(r.GetU16(&quiet));
  ULE_RETURN_IF_ERROR(r.GetU32(&reserved));
  ULE_RETURN_IF_ERROR(r.GetU64(&catalog.archive_id));
  ULE_RETURN_IF_ERROR(r.GetU32(&reel_count));
  catalog.emblem_options.data_side = data_side;
  catalog.emblem_options.dots_per_cell = dots;
  catalog.emblem_options.quiet_cells = quiet;
  catalog.emblem_options.threads = 0;
  ULE_RETURN_IF_ERROR(mocoder::ValidateOptions(catalog.emblem_options));
  // Bound the count against what the body could possibly hold (a reel
  // row is at least 40 bytes) before reserving: a crafted count must
  // surface as Status, not as a giant allocation.
  constexpr size_t kMinReelRowBytes = 40;
  if (reel_count > r.remaining() / kMinReelRowBytes) {
    return Status::Corruption("catalog reel count " +
                              std::to_string(reel_count) +
                              " does not fit the file");
  }
  catalog.reels.reserve(reel_count);
  for (uint32_t i = 0; i < reel_count; ++i) {
    CatalogReel reel;
    uint16_t name_len = 0;
    ULE_RETURN_IF_ERROR(r.GetU16(&name_len));
    if (name_len == 0 || name_len > r.remaining()) {
      return Status::Corruption("catalog reel " + std::to_string(i) +
                                " has an implausible name length");
    }
    reel.name.resize(name_len);
    for (uint16_t j = 0; j < name_len; ++j) {
      uint8_t c = 0;
      ULE_RETURN_IF_ERROR(r.GetU8(&c));
      reel.name[j] = static_cast<char>(c);
    }
    uint8_t has_bootstrap = 0;
    ULE_RETURN_IF_ERROR(r.GetU32(&reel.first_record));
    ULE_RETURN_IF_ERROR(r.GetU32(&reel.records));
    ULE_RETURN_IF_ERROR(r.GetU32(&reel.first_data_frame));
    ULE_RETURN_IF_ERROR(r.GetU32(&reel.data_frames));
    ULE_RETURN_IF_ERROR(r.GetU32(&reel.first_system_frame));
    ULE_RETURN_IF_ERROR(r.GetU32(&reel.system_frames));
    ULE_RETURN_IF_ERROR(r.GetU8(&has_bootstrap));
    ULE_RETURN_IF_ERROR(r.GetU64(&reel.bytes));
    ULE_RETURN_IF_ERROR(r.GetU32(&reel.file_crc));
    reel.has_bootstrap = has_bootstrap != 0;
    catalog.reels.push_back(std::move(reel));
  }
  // Anything after the reel rows must be the (optional) ULE-P1 parity
  // section; a parity-less catalog ends right here. Both shapes ride
  // under the same trailer CRC already checked above.
  if (r.remaining() != 0) {
    uint8_t magic[4] = {0, 0, 0, 0};
    for (uint8_t& c : magic) ULE_RETURN_IF_ERROR(r.GetU8(&c));
    if (!std::equal(kCatalogParityMagic, kCatalogParityMagic + 4, magic)) {
      return Status::Corruption("catalog has trailing bytes after its reels");
    }
    uint8_t parity_version = 0, parity_count = 0;
    uint16_t reserved16 = 0;
    ULE_RETURN_IF_ERROR(r.GetU8(&parity_version));
    ULE_RETURN_IF_ERROR(r.GetU8(&parity_count));
    ULE_RETURN_IF_ERROR(r.GetU16(&reserved16));
    if (parity_version != kParityBinaryVersion) {
      return Status::Unimplemented(
          "unsupported ULE-P1 parity section version " +
          std::to_string(parity_version) + " (this reader understands "
          "version " + std::to_string(kParityBinaryVersion) + ")");
    }
    if (parity_count == 0) {
      return Status::Corruption("catalog parity section lists no reels");
    }
    if (reel_count + parity_count > 255) {
      return Status::Corruption(
          "catalog parity section overflows RS(n+m <= 255): " +
          std::to_string(reel_count) + " data + " +
          std::to_string(parity_count) + " parity reels");
    }
    catalog.parity.parity_reels = parity_count;
    ULE_RETURN_IF_ERROR(r.GetU64(&catalog.parity.stripe_bytes));
    catalog.parity.reels.reserve(parity_count);
    for (uint8_t p = 0; p < parity_count; ++p) {
      CatalogParityReel reel;
      uint16_t name_len = 0;
      ULE_RETURN_IF_ERROR(r.GetU16(&name_len));
      if (name_len == 0 || name_len > r.remaining()) {
        return Status::Corruption("catalog parity reel " + std::to_string(p) +
                                  " has an implausible name length");
      }
      reel.name.resize(name_len);
      for (uint16_t j = 0; j < name_len; ++j) {
        uint8_t c = 0;
        ULE_RETURN_IF_ERROR(r.GetU8(&c));
        reel.name[j] = static_cast<char>(c);
      }
      ULE_RETURN_IF_ERROR(r.GetU64(&reel.bytes));
      ULE_RETURN_IF_ERROR(r.GetU32(&reel.file_crc));
      catalog.parity.reels.push_back(std::move(reel));
    }
  }
  if (r.remaining() != 0) {
    return Status::Corruption("catalog has trailing bytes after its parity "
                              "section");
  }
  return catalog;
}

Result<ReelCatalog> LoadCatalog(const std::string& path) {
  ULE_ASSIGN_OR_RETURN(Bytes bytes, ReadFileBytes(path));
  auto catalog = ReelCatalog::Parse(bytes);
  if (!catalog.ok()) {
    return Status(catalog.status().code(),
                  catalog.status().message() + ": " + path);
  }
  return catalog;
}

std::string ReelFileName(const std::string& catalog_path, size_t index) {
  const std::filesystem::path p(catalog_path);
  char suffix[16];
  std::snprintf(suffix, sizeof suffix, "-%03zu.ulec", index);
  return (p.parent_path() / (p.stem().string() + suffix)).string();
}

// ---------------------------------------------------------------------------
// Writer

ReelSetWriter::ReelSetWriter(std::string catalog_path,
                             mocoder::Options emblem_options, Options options)
    : catalog_path_(std::move(catalog_path)),
      emblem_options_(std::move(emblem_options)),
      options_(std::move(options)) {
  catalog_.archive_id = options_.archive_id;
  catalog_.emblem_options = emblem_options_;
  catalog_.emblem_options.threads = 0;  // geometry only, never parallelism
}

Result<std::unique_ptr<ReelSetWriter>> ReelSetWriter::Create(
    const std::string& catalog_path, const mocoder::Options& emblem_options,
    const Options& options) {
  ULE_RETURN_IF_ERROR(mocoder::ValidateOptions(emblem_options));
  return std::unique_ptr<ReelSetWriter>(
      new ReelSetWriter(catalog_path, emblem_options, options));
}

Status ReelSetWriter::SealCurrentReel() {
  if (!current_) return Status::OK();
  ULE_RETURN_IF_ERROR(current_->Finish());
  CatalogReel& row = catalog_.reels.back();
  const std::string path = ReelFileName(catalog_path_,
                                        catalog_.reels.size() - 1);
  ULE_ASSIGN_OR_RETURN(FileDigest sealed, DigestFile(path));
  row.bytes = sealed.bytes;
  row.file_crc = sealed.crc;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    sealed_stats_.push_back(
        ReelStats{row.name, row.data_frames + row.system_frames, sealed.bytes});
    current_.reset();
  }
  current_frames_ = 0;
  current_records_ = 0;
  return Status::OK();
}

Status ReelSetWriter::EnsureRoomFor(uint64_t payload_bytes) {
  if (current_ && current_frames_ > 0) {
    bool roll = false;
    if (options_.shard.max_frames_per_reel > 0 &&
        current_frames_ >= options_.shard.max_frames_per_reel) {
      roll = true;
    }
    if (options_.shard.max_bytes_per_reel > 0) {
      // Project the reel's *sealed* size — records plus the index and
      // footer Finish will add — so the cap bounds the artifact on disk,
      // not just the record region.
      const uint64_t projected =
          current_->bytes_written() + kContainerRecordHeaderBytes +
          payload_bytes +
          (current_records_ + 1) * kContainerIndexEntryBytes +
          kContainerFooterBytes;
      if (projected > options_.shard.max_bytes_per_reel) roll = true;
    }
    if (roll) ULE_RETURN_IF_ERROR(SealCurrentReel());
  }
  if (!current_) {
    const std::string path = ReelFileName(catalog_path_,
                                          catalog_.reels.size());
    ULE_ASSIGN_OR_RETURN(
        std::unique_ptr<ContainerWriter> opened,
        ContainerWriter::Create(path, emblem_options_, options_.container));
    CatalogReel row;
    row.name = std::filesystem::path(path).filename().string();
    row.first_record = static_cast<uint32_t>(total_records_);
    row.first_data_frame = static_cast<uint32_t>(data_frames_total_);
    row.first_system_frame = static_cast<uint32_t>(system_frames_total_);
    std::lock_guard<std::mutex> lock(stats_mu_);
    live_name_ = row.name;
    catalog_.reels.push_back(std::move(row));
    current_ = std::move(opened);
  }
  return Status::OK();
}

Status ReelSetWriter::Append(mocoder::StreamId id,
                             const mocoder::EncodedEmblem& emblem,
                             media::Image&& frame) {
  if (finished_) {
    return Status::InvalidArgument("reel set already finished: " +
                                   catalog_path_);
  }
  // Serialize once, up front: the shard policy needs the record's exact
  // size before deciding which reel it lands on.
  const FrameCodec codec =
      options_.container.bitonal ? FrameCodec::kPbm : FrameCodec::kPgm;
  const Bytes payload =
      options_.container.bitonal ? frame.ToPbm() : frame.ToPgm();
  ULE_RETURN_IF_ERROR(EnsureRoomFor(payload.size()));
  const RecordType type = id == mocoder::StreamId::kData
                              ? RecordType::kDataFrame
                              : RecordType::kSystemFrame;
  ULE_RETURN_IF_ERROR(
      current_->AppendRecord(type, codec, emblem.header.seq, payload));
  CatalogReel& row = catalog_.reels.back();
  row.records += 1;
  if (id == mocoder::StreamId::kData) {
    row.data_frames += 1;
    data_frames_total_ += 1;
  } else {
    row.system_frames += 1;
    system_frames_total_ += 1;
  }
  current_frames_ += 1;
  current_records_ += 1;
  total_records_ += 1;
  return Status::OK();
}

Status ReelSetWriter::AppendBootstrap(const std::string& text) {
  if (finished_) {
    return Status::InvalidArgument("reel set already finished: " +
                                   catalog_path_);
  }
  if (has_bootstrap_) {
    return Status::InvalidArgument("reel set already has a bootstrap record");
  }
  // The Bootstrap rides with the final shard, whatever the budget says: a
  // historian holding the last reel of a set can always boot from it.
  if (!current_) ULE_RETURN_IF_ERROR(EnsureRoomFor(0));
  ULE_RETURN_IF_ERROR(current_->AppendBootstrap(text));
  CatalogReel& row = catalog_.reels.back();
  row.records += 1;
  row.has_bootstrap = true;
  has_bootstrap_ = true;
  current_records_ += 1;
  total_records_ += 1;
  return Status::OK();
}

Status ReelSetWriter::SetIndexSection(Bytes section) {
  if (finished_) {
    return Status::InvalidArgument("reel set already finished: " +
                                   catalog_path_);
  }
  if (has_index_section_) {
    return Status::InvalidArgument(
        "reel set already has a record-index section: " + catalog_path_);
  }
  index_section_ = std::move(section);
  has_index_section_ = true;
  return Status::OK();
}

Status ReelSetWriter::Finish() {
  if (finished_) {
    return Status::InvalidArgument("reel set already finished: " +
                                   catalog_path_);
  }
  // An empty archive still produces one (empty) reel, mirroring the
  // single-container shape.
  if (!current_ && catalog_.reels.empty()) {
    ULE_RETURN_IF_ERROR(EnsureRoomFor(0));
  }
  if (has_index_section_) {
    // The index record lands on the final reel, past its frames, and is
    // counted in that reel's catalog row like any other record.
    ULE_RETURN_IF_ERROR(current_->AppendRecord(
        RecordType::kIndex, FrameCodec::kPgm, 0, index_section_));
    catalog_.reels.back().records += 1;
    current_records_ += 1;
    total_records_ += 1;
    index_section_.clear();
    has_index_section_ = false;
  }
  ULE_RETURN_IF_ERROR(SealCurrentReel());
  ULE_RETURN_IF_ERROR(WriteFileBytes(catalog_path_, catalog_.Serialize()));
  if (options_.parity_reels > 0) {
    // Parity is a function of the sealed reel bytes, so it can only be
    // encoded now; Build rewrites the catalog with the ULE-P1 section.
    ULE_ASSIGN_OR_RETURN(
        catalog_, ParityReelWriter::Build(catalog_path_,
                                          options_.parity_reels));
  }
  finished_ = true;
  return Status::OK();
}

std::vector<ReelStats> ReelSetWriter::CurrentReelStats() const {
  // Sealed reels come from the snapshot this writer maintains; the open
  // reel reports through the container's own (thread-safe) counters. The
  // catalog rows are the archiving thread's private state and are not
  // touched here.
  std::lock_guard<std::mutex> lock(stats_mu_);
  std::vector<ReelStats> stats = sealed_stats_;
  if (current_) {
    std::vector<ReelStats> live = current_->CurrentReelStats();
    if (!live.empty()) {
      live.front().name = live_name_;
      stats.push_back(std::move(live.front()));
    }
  }
  return stats;
}

// ---------------------------------------------------------------------------
// Reader

Result<std::unique_ptr<ReelSetReader>> ReelSetReader::Open(
    const std::string& path) {
  return Open(path, OpenOptions());
}

ReelSetReader::~ReelSetReader() {
  for (const std::string& temp : temp_files_) std::remove(temp.c_str());
}

Result<std::unique_ptr<ReelSetReader>> ReelSetReader::Open(
    const std::string& path, const OpenOptions& opt) {
  ULE_ASSIGN_OR_RETURN(ReelCatalog catalog, LoadCatalog(path));
  auto reader = std::unique_ptr<ReelSetReader>(new ReelSetReader());
  reader->path_ = path;
  reader->dir_ = std::filesystem::path(path).parent_path().string();
  reader->catalog_ = std::move(catalog);

  // Try every reel; damage stays per-reel. A reel that opens but
  // disagrees with the catalog is treated as damaged too — a renamed or
  // swapped file must not silently serve another archive's frames.
  const ReelCatalog& cat = reader->catalog_;
  for (size_t i = 0; i < cat.reels.size(); ++i) {
    const CatalogReel& row = cat.reels[i];
    const std::string reel_path = JoinPath(reader->dir_, row.name);
    const std::string context =
        "reel " + std::to_string(i) + " (" + row.name + "): ";
    auto opened = ContainerReader::Open(reel_path);
    if (!opened.ok()) {
      reader->reels_.emplace_back(nullptr);
      reader->reel_status_.push_back(Status(
          opened.status().code(), context + opened.status().message()));
      continue;
    }
    std::unique_ptr<ContainerReader> reel = std::move(opened).TakeValue();
    Status status = Status::OK();
    if (reel->entries().size() != row.records ||
        reel->frame_count(mocoder::StreamId::kData) != row.data_frames ||
        reel->frame_count(mocoder::StreamId::kSystem) != row.system_frames ||
        reel->has_bootstrap() != row.has_bootstrap) {
      status = Status::Corruption(context +
                                  "record counts disagree with the catalog");
    } else if (reel->emblem_options().data_side !=
                   cat.emblem_options.data_side ||
               reel->emblem_options().dots_per_cell !=
                   cat.emblem_options.dots_per_cell ||
               reel->emblem_options().quiet_cells !=
                   cat.emblem_options.quiet_cells) {
      status = Status::Corruption(context +
                                  "emblem geometry disagrees with the "
                                  "catalog");
    }
    if (!status.ok()) reel.reset();
    reader->reels_.push_back(std::move(reel));
    reader->reel_status_.push_back(std::move(status));
  }
  reader->reel_damage_ = reader->reel_status_;
  reader->reconstructed_.assign(cat.reels.size(), false);

  // A parity-protected set is digested on open: the catalog's per-file
  // CRCs catch silent flips a structural open never sees, and whatever
  // they catch (up to m whole streams) is rebuilt from parity into temp
  // copies before any frame is served — the per-emblem recovery above
  // this layer then has nothing to do.
  if (cat.parity.present()) {
    reader->parity_status_.assign(cat.parity.reels.size(), Status::OK());
    ULE_ASSIGN_OR_RETURN(SetHealth health, AssessSet(cat, reader->dir_));
    for (size_t p : health.damaged_parity) {
      reader->parity_status_[p] = Status::Corruption(
          "parity reel " + std::to_string(p) + " (" +
          cat.parity.reels[p].name + "): file disagrees with the catalog");
    }
    for (size_t i : health.damaged_data) {
      if (reader->reel_damage_[i].ok()) {
        reader->reel_damage_[i] = Status::Corruption(
            "reel " + std::to_string(i) + " (" + cat.reels[i].name +
            "): file bytes disagree with the catalog (silent corruption)");
      }
    }
    if (!health.damaged_data.empty() && opt.reconstruct &&
        Recoverable(cat, health)) {
      // Unique temp suffix: two readers may heal the same set at once.
      static std::atomic<uint64_t> recovery_seq{0};
      const std::string suffix =
          ".recovered." + std::to_string(recovery_seq.fetch_add(1));
      ReconstructOptions ropt;
      ropt.data_suffix = suffix;
      auto rebuilt = ReconstructDamaged(cat, reader->dir_, health, ropt);
      if (rebuilt.ok()) {
        for (size_t i : health.damaged_data) {
          const std::string rebuilt_path =
              JoinPath(reader->dir_, cat.reels[i].name + suffix);
          reader->temp_files_.push_back(rebuilt_path);
          auto opened = ContainerReader::Open(rebuilt_path);
          if (!opened.ok()) continue;  // keep the original damage Status
          reader->reels_[i] = std::move(opened).TakeValue();
          reader->reel_status_[i] = Status::OK();
          reader->reconstructed_[i] = true;
        }
      }
      // A failed reconstruction leaves the per-reel damage in place:
      // the set degrades exactly like a parity-less one. Likewise when
      // the damage exceeds parity's reach — a silently-flipped reel
      // that still opens keeps serving, and its record CRCs fail
      // exactly at the flipped record, nowhere else.
    }
  }
  return reader;
}

size_t ReelSetReader::reconstructed_reels() const {
  size_t n = 0;
  for (bool r : reconstructed_) n += r ? 1 : 0;
  return n;
}

size_t ReelSetReader::surviving_reels() const {
  size_t n = 0;
  for (const Status& s : reel_status_) n += s.ok() ? 1 : 0;
  return n;
}

bool ReelSetReader::has_bootstrap() const {
  for (size_t i = 0; i < catalog_.reels.size(); ++i) {
    if (catalog_.reels[i].has_bootstrap && reel_status_[i].ok()) return true;
  }
  return false;
}

Result<std::string> ReelSetReader::ReadBootstrap() const {
  for (size_t i = 0; i < catalog_.reels.size(); ++i) {
    if (!catalog_.reels[i].has_bootstrap) continue;
    if (!reel_status_[i].ok()) {
      return Status(reel_status_[i].code(),
                    "the bootstrap reel is damaged: " +
                        reel_status_[i].message());
    }
    return reels_[i]->ReadBootstrap();
  }
  return Status::NotFound("reel set has no bootstrap record: " + path_);
}

std::unique_ptr<FrameSource> ReelSetReader::OpenFrames(
    mocoder::StreamId id) const {
  const RecordType want = id == mocoder::StreamId::kData
                              ? RecordType::kDataFrame
                              : RecordType::kSystemFrame;
  std::vector<FrameJob> jobs;
  for (size_t i = 0; i < reels_.size(); ++i) {
    if (!reel_status_[i].ok()) continue;  // dead reel: its frames are lost
    // The reel's own path, not the catalog name: a parity-reconstructed
    // reel serves from its rebuilt temp copy.
    const std::string& reel_path = reels_[i]->path();
    for (const ContainerEntry& e : reels_[i]->entries()) {
      if (e.type == want) jobs.push_back(FrameJob{reel_path, e});
    }
  }
  return std::make_unique<ReelSetSource>(std::move(jobs), restore_threads_,
                                         counters_);
}

Result<media::Image> ReelSetReader::ReadFrame(mocoder::StreamId id,
                                              size_t index) const {
  for (size_t i = 0; i < catalog_.reels.size(); ++i) {
    const CatalogReel& row = catalog_.reels[i];
    const size_t first = id == mocoder::StreamId::kData
                             ? row.first_data_frame
                             : row.first_system_frame;
    const size_t count =
        id == mocoder::StreamId::kData ? row.data_frames : row.system_frames;
    if (index < first || index >= first + count) continue;
    if (!reel_status_[i].ok()) {
      return Status(reel_status_[i].code(),
                    "frame " + std::to_string(index) +
                        " lives on a damaged reel: " +
                        reel_status_[i].message());
    }
    return reels_[i]->ReadFrame(id, index - first);
  }
  return Status::OutOfRange(
      "frame " + std::to_string(index) + " out of range (set has " +
      std::to_string(catalog_.frame_count(id)) + " frames): " + path_);
}

Result<Bytes> ReelSetReader::ReadIndexSection() const {
  for (size_t i = reels_.size(); i > 0; --i) {
    if (!reel_status_[i - 1].ok()) continue;
    auto section = reels_[i - 1]->ReadIndexSection();
    if (section.ok() || section.status().code() != StatusCode::kNotFound) {
      return section;
    }
  }
  return Status::NotFound("reel set has no record-index section: " + path_);
}

ReadCounters ReelSetReader::read_counters() const {
  ReadCounters total = counters_->Snapshot();
  for (const auto& reel : reels_) {
    if (!reel) continue;
    const ReadCounters r = reel->read_counters();
    total.records += r.records;
    total.bytes += r.bytes;
  }
  return total;
}

Status ReelSetReader::Verify() const {
  for (size_t i = 0; i < catalog_.reels.size(); ++i) {
    const CatalogReel& row = catalog_.reels[i];
    const std::string context =
        "reel " + std::to_string(i) + " (" + row.name + "): ";
    // Pre-reconstruction damage: a reel serving from a parity-rebuilt
    // copy is still a damaged artifact on disk, and verify's job is to
    // say so (scrub's is to repair it).
    if (!reel_damage_[i].ok()) return reel_damage_[i];
    const std::string reel_path = JoinPath(dir_, row.name);
    ULE_ASSIGN_OR_RETURN(FileDigest sealed, DigestFile(reel_path));
    if (sealed.bytes != row.bytes) {
      return Status::Corruption(
          context + "file is " + std::to_string(sealed.bytes) +
          " bytes, catalog records " + std::to_string(row.bytes));
    }
    if (sealed.crc != row.file_crc) {
      return Status::Corruption(context +
                                "file CRC disagrees with the catalog");
    }
    Status deep = reels_[i]->Verify();
    if (!deep.ok()) {
      return Status(deep.code(), context + deep.message());
    }
  }
  // Parity reels are part of the artifact too: a set whose parity
  // rotted is one failure away from real loss, and skipping them here
  // silently would defeat the whole point of scrubbing.
  for (size_t p = 0; p < catalog_.parity.reels.size(); ++p) {
    const CatalogParityReel& row = catalog_.parity.reels[p];
    const std::string context =
        "parity reel " + std::to_string(p) + " (" + row.name + "): ";
    ULE_ASSIGN_OR_RETURN(FileDigest sealed, DigestFile(JoinPath(dir_,
                                                                row.name)));
    if (sealed.bytes != row.bytes) {
      return Status::Corruption(
          context + "file is " + std::to_string(sealed.bytes) +
          " bytes, catalog records " + std::to_string(row.bytes));
    }
    if (sealed.crc != row.file_crc) {
      return Status::Corruption(context +
                                "file CRC disagrees with the catalog");
    }
  }
  return Status::OK();
}

}  // namespace filmstore
}  // namespace ule
