#include "filmstore/scrub.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <utility>

#include "filmstore/container.h"
#include "filmstore/parity.h"
#include "filmstore/reel_set.h"
#include "support/parallel.h"

namespace ule {
namespace filmstore {
namespace {

namespace fs = std::filesystem;

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  return (fs::path(dir) / name).string();
}

// ---------------------------------------------------------------------------
// JSON emission (hand-rolled: deterministic field order, no deps)

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonStringArray(const std::vector<std::string>& items) {
  std::string out = "[";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i) out += ", ";
    out += "\"" + JsonEscape(items[i]) + "\"";
  }
  return out + "]";
}

// ---------------------------------------------------------------------------
// Checkpoint journal
//
// One tab-separated line per finished archive, appended as each one
// completes (so an interrupted sweep loses at most the archives still
// in flight — never a finished verdict):
//
//   path  kind  state  records  repaired_bytes  damaged  repaired  detail
//
// List fields are ';'-joined; every field is escaped losslessly
// (\t \n \r \\ ;) so a resumed report is byte-identical to a fresh one.
// Lines starting with '#' and torn trailing lines are ignored.

constexpr char kCheckpointHeader[] = "# ule-scrub checkpoint v1";

std::string EscapeField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case ';': out += "\\s"; break;
      default: out += c;
    }
  }
  return out;
}

std::string UnescapeField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 == s.size()) {
      out += s[i];
      continue;
    }
    switch (s[++i]) {
      case '\\': out += '\\'; break;
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 's': out += ';'; break;
      default: out += s[i];
    }
  }
  return out;
}

std::vector<std::string> SplitOn(const std::string& s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (;;) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(s.substr(start));
      return parts;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i) out += ';';
    out += EscapeField(names[i]);
  }
  return out;
}

std::vector<std::string> SplitNames(const std::string& field) {
  std::vector<std::string> names;
  if (field.empty()) return names;
  for (const std::string& part : SplitOn(field, ';')) {
    names.push_back(UnescapeField(part));
  }
  return names;
}

std::string CheckpointLine(const ArchiveHealth& health) {
  std::string line = EscapeField(health.path);
  line += '\t';
  line += EscapeField(health.kind);
  line += '\t';
  line += std::to_string(static_cast<int>(health.state));
  line += '\t';
  line += std::to_string(health.records);
  line += '\t';
  line += std::to_string(health.repaired_bytes);
  line += '\t';
  line += JoinNames(health.damaged);
  line += '\t';
  line += JoinNames(health.repaired);
  line += '\t';
  line += EscapeField(health.detail);
  return line;
}

bool ParseCheckpointLine(const std::string& line, ArchiveHealth* out) {
  if (line.empty() || line[0] == '#') return false;
  const std::vector<std::string> fields = SplitOn(line, '\t');
  if (fields.size() != 8) return false;  // torn or foreign line
  ArchiveHealth health;
  health.path = UnescapeField(fields[0]);
  health.kind = UnescapeField(fields[1]);
  char* end = nullptr;
  const long state = std::strtol(fields[2].c_str(), &end, 10);
  if (end == fields[2].c_str() || *end != '\0' || state < 0 || state > 4) {
    return false;
  }
  health.state = static_cast<ArchiveState>(state);
  health.records = std::strtoull(fields[3].c_str(), nullptr, 10);
  health.repaired_bytes = std::strtoull(fields[4].c_str(), nullptr, 10);
  health.damaged = SplitNames(fields[5]);
  health.repaired = SplitNames(fields[6]);
  health.detail = UnescapeField(fields[7]);
  *out = std::move(health);
  return true;
}

// ---------------------------------------------------------------------------
// Per-archive scrub

ArchiveHealth ScrubReelSet(const std::string& path, bool repair) {
  ArchiveHealth health;
  health.path = path;
  health.kind = "reel-set";
  auto catalog = LoadCatalog(path);
  if (!catalog.ok()) {
    // The catalog is the set's root of trust; without it the reels are
    // orphans (each may still open individually, but the set — its
    // order, identity and parity — is gone).
    health.state = ArchiveState::kDataLoss;
    health.detail = "catalog unreadable: " + catalog.status().ToString();
    health.damaged.push_back(fs::path(path).filename().string());
    return health;
  }
  const ReelCatalog& cat = catalog.value();
  const std::string dir = fs::path(path).parent_path().string();
  for (const CatalogReel& row : cat.reels) health.records += row.records;

  auto assessed = AssessSet(cat, dir);
  if (!assessed.ok()) {
    health.state = ArchiveState::kError;
    health.detail = assessed.status().ToString();
    return health;
  }
  const SetHealth& set_health = assessed.value();
  for (size_t i : set_health.damaged_data) {
    health.damaged.push_back(cat.reels[i].name);
  }
  for (size_t p : set_health.damaged_parity) {
    health.damaged.push_back(cat.parity.reels[p].name);
  }
  if (set_health.clean()) {
    health.state = ArchiveState::kHealthy;
    return health;
  }
  if (!Recoverable(cat, set_health)) {
    health.state = ArchiveState::kDataLoss;
    std::string detail = std::to_string(set_health.damaged()) +
                         " streams damaged, parity covers " +
                         std::to_string(cat.parity.parity_reels) + ":";
    for (size_t i : set_health.damaged_data) {
      const CatalogReel& row = cat.reels[i];
      detail += " " + row.name + " (records " +
                std::to_string(row.first_record) + ".." +
                std::to_string(row.first_record + row.records) + " lost)";
    }
    health.detail = detail;
    return health;
  }
  if (!repair) {
    health.state = ArchiveState::kRepairable;
    health.detail = "parity covers the damage; re-run with repair";
    return health;
  }
  ReconstructOptions ropt;
  ropt.rebuild_parity = true;
  auto rebuilt = ReconstructDamaged(cat, dir, set_health, ropt);
  if (!rebuilt.ok()) {
    health.state = ArchiveState::kError;
    health.detail = "repair failed: " + rebuilt.status().ToString();
    return health;
  }
  auto reassessed = AssessSet(cat, dir);
  if (!reassessed.ok() || !reassessed.value().clean()) {
    health.state = ArchiveState::kError;
    health.detail = "repair left the set unhealthy";
    return health;
  }
  health.state = ArchiveState::kRepaired;
  health.repaired = health.damaged;
  health.repaired_bytes = rebuilt.value();
  return health;
}

ArchiveHealth ScrubContainer(const std::string& path) {
  ArchiveHealth health;
  health.path = path;
  health.kind = "container";
  auto reel = ContainerReader::Open(path);
  if (!reel.ok()) {
    // A standalone reel has no parity to lean on; anything that stops
    // it opening is loss (an interrupted spool can still be salvaged by
    // `ulectl resume`, which this sweep never does uninvited).
    health.state = ArchiveState::kDataLoss;
    health.detail = reel.status().ToString();
    health.damaged.push_back(fs::path(path).filename().string());
    return health;
  }
  health.records = reel.value()->entries().size();
  const Status deep = reel.value()->Verify();
  if (!deep.ok()) {
    health.state = ArchiveState::kDataLoss;
    health.detail = deep.ToString();
    health.damaged.push_back(fs::path(path).filename().string());
    return health;
  }
  health.state = ArchiveState::kHealthy;
  return health;
}

bool HasExtension(const fs::path& p, const char* ext) {
  return p.extension().string() == ext;
}

/// Reel files that belong to the set at `catalog_path` — from its
/// catalog when it parses, by naming convention when it does not (a
/// corrupt catalog must not promote its orphan reels to standalone
/// archives in the report).
std::set<std::string> MemberFiles(const std::string& catalog_path) {
  std::set<std::string> members;
  const fs::path dir = fs::path(catalog_path).parent_path();
  auto catalog = LoadCatalog(catalog_path);
  if (catalog.ok()) {
    for (const CatalogReel& row : catalog.value().reels) {
      members.insert((dir / row.name).string());
    }
    for (const CatalogParityReel& row : catalog.value().parity.reels) {
      members.insert((dir / row.name).string());
    }
    return members;
  }
  const std::string stem = fs::path(catalog_path).stem().string();
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() <= stem.size() + 1 ||
        name.compare(0, stem.size(), stem) != 0 ||
        name[stem.size()] != '-') {
      continue;
    }
    if (HasExtension(entry.path(), ".ulec") ||
        HasExtension(entry.path(), ".ulep")) {
      members.insert(entry.path().string());
    }
  }
  return members;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API

const char* ArchiveStateName(ArchiveState state) {
  switch (state) {
    case ArchiveState::kHealthy: return "healthy";
    case ArchiveState::kRepaired: return "repaired";
    case ArchiveState::kRepairable: return "repairable";
    case ArchiveState::kDataLoss: return "data-loss";
    case ArchiveState::kError: return "error";
  }
  return "unknown";
}

std::string ArchiveHealth::ToJson() const {
  std::string out = "{\"path\": \"" + JsonEscape(path) + "\"";
  out += ", \"kind\": \"" + JsonEscape(kind) + "\"";
  out += ", \"state\": \"" + std::string(ArchiveStateName(state)) + "\"";
  out += ", \"records\": " + std::to_string(records);
  out += ", \"damaged\": " + JsonStringArray(damaged);
  out += ", \"repaired\": " + JsonStringArray(repaired);
  out += ", \"repaired_bytes\": " + std::to_string(repaired_bytes);
  out += ", \"detail\": \"" + JsonEscape(detail) + "\"}";
  return out;
}

int FleetReport::ExitCode() const {
  if (data_loss > 0 || errors > 0) return 2;
  if (repairable > 0) return 1;
  return 0;
}

std::string FleetReport::ToJson() const {
  std::string out = "{\n  \"fleet\": {";
  out += "\"archives\": " + std::to_string(archives.size());
  out += ", \"healthy\": " + std::to_string(healthy);
  out += ", \"repaired\": " + std::to_string(repaired);
  out += ", \"repairable\": " + std::to_string(repairable);
  out += ", \"data_loss\": " + std::to_string(data_loss);
  out += ", \"errors\": " + std::to_string(errors);
  out += ", \"repaired_bytes\": " + std::to_string(repaired_bytes);
  out += "},\n  \"archives\": [";
  for (size_t i = 0; i < archives.size(); ++i) {
    out += i ? ",\n    " : "\n    ";
    out += archives[i].ToJson();
  }
  out += archives.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

Result<std::vector<std::string>> DiscoverArchives(const std::string& root) {
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    return Status::InvalidArgument("scrub root is not a directory: " + root);
  }
  std::vector<std::string> catalogs;
  std::vector<std::string> containers;
  for (auto it = fs::recursive_directory_iterator(root, ec);
       it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (ec) {
      return Status::IoError("cannot walk " + root + ": " + ec.message());
    }
    if (!it->is_regular_file()) continue;
    const fs::path& p = it->path();
    if (HasExtension(p, ".uler")) {
      catalogs.push_back(p.string());
    } else if (HasExtension(p, ".ulec")) {
      containers.push_back(p.string());
    }
  }
  std::set<std::string> claimed;
  for (const std::string& catalog : catalogs) {
    const std::set<std::string> members = MemberFiles(catalog);
    claimed.insert(members.begin(), members.end());
  }
  std::vector<std::string> archives;
  archives.reserve(catalogs.size() + containers.size());
  for (const std::string& catalog : catalogs) {
    archives.push_back(fs::relative(catalog, root).string());
  }
  for (const std::string& container : containers) {
    if (claimed.count(container)) continue;  // a set's member reel
    archives.push_back(fs::relative(container, root).string());
  }
  std::sort(archives.begin(), archives.end());
  return archives;
}

Result<ArchiveHealth> ScrubArchive(const std::string& path, bool repair) {
  const fs::path p(path);
  if (HasExtension(p, ".uler")) return ScrubReelSet(path, repair);
  if (HasExtension(p, ".ulec")) return ScrubContainer(path);
  return Status::InvalidArgument(
      "not a scrubbable archive (want .uler or .ulec): " + path);
}

Result<FleetReport> ScrubFleet(const std::string& root,
                               const ScrubOptions& options) {
  ULE_ASSIGN_OR_RETURN(std::vector<std::string> discovered,
                       DiscoverArchives(root));

  // Resume: verdicts already in the journal are final — their archives
  // are not touched again. Entries for archives that vanished since are
  // dropped (the fleet is what's on disk now).
  std::map<std::string, ArchiveHealth> done;
  size_t resumed = 0;
  if (!options.checkpoint_path.empty()) {
    std::ifstream in(options.checkpoint_path);
    if (in) {
      const std::set<std::string> known(discovered.begin(), discovered.end());
      std::string line;
      while (std::getline(in, line)) {
        ArchiveHealth health;
        if (!ParseCheckpointLine(line, &health)) continue;
        if (!known.count(health.path)) continue;
        if (done.emplace(health.path, std::move(health)).second) ++resumed;
      }
    }
  }

  std::vector<std::string> pending;
  for (const std::string& rel : discovered) {
    if (!done.count(rel)) pending.push_back(rel);
  }
  if (options.max_archives > 0 && pending.size() > options.max_archives) {
    pending.resize(options.max_archives);
  }

  std::mutex journal_mu;
  std::ofstream journal;
  if (!options.checkpoint_path.empty() && !pending.empty()) {
    const bool fresh = !fs::exists(options.checkpoint_path);
    journal.open(options.checkpoint_path, std::ios::app);
    if (!journal) {
      return Status::IoError("cannot open checkpoint " +
                             options.checkpoint_path);
    }
    if (fresh) journal << kCheckpointHeader << "\n";
  }

  std::vector<ArchiveHealth> fresh_results(pending.size());
  ULE_RETURN_IF_ERROR(ParallelFor(
      0, pending.size(),
      [&](size_t i) -> Status {
        const std::string& rel = pending[i];
        auto verdict = ScrubArchive(JoinPath(root, rel), options.repair);
        ArchiveHealth health;
        if (verdict.ok()) {
          health = std::move(verdict).TakeValue();
        } else {
          health.state = ArchiveState::kError;
          health.detail = verdict.status().ToString();
        }
        health.path = rel;  // report paths are root-relative
        if (journal.is_open()) {
          std::lock_guard<std::mutex> lock(journal_mu);
          journal << CheckpointLine(health) << "\n";
          journal.flush();
        }
        fresh_results[i] = std::move(health);
        return Status::OK();
      },
      options.threads));

  FleetReport report;
  report.resumed = resumed;
  report.archives.reserve(done.size() + fresh_results.size());
  for (auto& entry : done) report.archives.push_back(std::move(entry.second));
  for (ArchiveHealth& health : fresh_results) {
    report.archives.push_back(std::move(health));
  }
  std::sort(report.archives.begin(), report.archives.end(),
            [](const ArchiveHealth& a, const ArchiveHealth& b) {
              return a.path < b.path;
            });
  for (const ArchiveHealth& health : report.archives) {
    switch (health.state) {
      case ArchiveState::kHealthy: ++report.healthy; break;
      case ArchiveState::kRepaired: ++report.repaired; break;
      case ArchiveState::kRepairable: ++report.repairable; break;
      case ArchiveState::kDataLoss: ++report.data_loss; break;
      case ArchiveState::kError: ++report.errors; break;
    }
    report.repaired_bytes += health.repaired_bytes;
  }
  return report;
}

}  // namespace filmstore
}  // namespace ule
