#include "filmstore/reel_reader.h"

#include <filesystem>

#include "filmstore/container.h"
#include "filmstore/directory_store.h"

namespace ule {
namespace filmstore {

Result<std::unique_ptr<ReelReader>> OpenReel(const std::string& path) {
  if (std::filesystem::is_directory(path)) {
    ULE_ASSIGN_OR_RETURN(std::unique_ptr<DirectoryReader> reader,
                         DirectoryReader::Open(path));
    return std::unique_ptr<ReelReader>(std::move(reader));
  }
  ULE_ASSIGN_OR_RETURN(std::unique_ptr<ContainerReader> reader,
                       ContainerReader::Open(path));
  return std::unique_ptr<ReelReader>(std::move(reader));
}

}  // namespace filmstore
}  // namespace ule
