#include "filmstore/reel_reader.h"

#include <filesystem>
#include <fstream>

#include "filmstore/container.h"
#include "filmstore/directory_store.h"
#include "filmstore/reel_set.h"

namespace ule {
namespace filmstore {

namespace {

/// A ULE-R1 catalog starts with "ULER"; a ULE-C1 container with "ULEC".
/// Sniffing the magic (instead of trusting an extension) keeps renamed
/// artifacts openable.
bool LooksLikeCatalog(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[4] = {0, 0, 0, 0};
  in.read(magic, 4);
  return in && magic[0] == 'U' && magic[1] == 'L' && magic[2] == 'E' &&
         magic[3] == 'R';
}

}  // namespace

Result<std::unique_ptr<ReelReader>> OpenReel(const std::string& path) {
  return OpenReel(path, ReelOpenOptions());
}

Result<std::unique_ptr<ReelReader>> OpenReel(const std::string& path,
                                             const ReelOpenOptions& options) {
  if (std::filesystem::is_directory(path)) {
    ULE_ASSIGN_OR_RETURN(std::unique_ptr<DirectoryReader> reader,
                         DirectoryReader::Open(path));
    return std::unique_ptr<ReelReader>(std::move(reader));
  }
  if (LooksLikeCatalog(path)) {
    ReelSetReader::OpenOptions sopt;
    sopt.reconstruct = options.reconstruct;
    ULE_ASSIGN_OR_RETURN(std::unique_ptr<ReelSetReader> reader,
                         ReelSetReader::Open(path, sopt));
    return std::unique_ptr<ReelReader>(std::move(reader));
  }
  ULE_ASSIGN_OR_RETURN(std::unique_ptr<ContainerReader> reader,
                       ContainerReader::Open(path));
  return std::unique_ptr<ReelReader>(std::move(reader));
}

}  // namespace filmstore
}  // namespace ule
