/// \file directory_store.h
/// \brief Film store as a directory of image files — "the reel as a
/// folder of scans".
///
/// One image file per frame (`data-0000.pgm`, `system-0003.pbm`, ...),
/// the Bootstrap document as `bootstrap.txt`, and a human-readable
/// `manifest.txt` recording the emblem geometry and frame counts. This is
/// the browsable backend: every artifact opens in a stock image viewer
/// and text editor, which is exactly what a future historian holding a
/// box of scanned frames has. For a sealed, CRC-protected single file use
/// the ULE-C1 container (`container.h`) instead.

#ifndef ULE_FILMSTORE_DIRECTORY_STORE_H_
#define ULE_FILMSTORE_DIRECTORY_STORE_H_

#include <memory>
#include <string>

#include "filmstore/frame_store.h"
#include "filmstore/reel_reader.h"
#include "mocoder/mocoder.h"
#include "support/status.h"

namespace ule {
namespace filmstore {

/// \brief Writes one image file per frame into a directory. Plugs into
/// `ArchiveDumpStreaming` as its FrameSink; peak memory is O(1) frames.
class DirectoryWriter final : public ArchiveWriter {
 public:
  struct Options {
    /// Store frames as bitonal PBM instead of lossless PGM.
    bool bitonal = false;
  };

  /// Creates `dir` (and parents) if needed, and removes any previous
  /// reel's artifacts in it (frame images, manifest, bootstrap) so the
  /// directory holds exactly this archive; unrelated files are left
  /// alone.
  static Result<std::unique_ptr<DirectoryWriter>> Create(
      const std::string& dir, const mocoder::Options& emblem_options,
      const Options& options);
  static Result<std::unique_ptr<DirectoryWriter>> Create(
      const std::string& dir, const mocoder::Options& emblem_options) {
    return Create(dir, emblem_options, Options());
  }

  Status Append(mocoder::StreamId id, const mocoder::EncodedEmblem& emblem,
                media::Image&& frame) override;

  /// Writes the Bootstrap document as `bootstrap.txt`.
  Status AppendBootstrap(const std::string& text) override;

  /// Stores the ULE-S1 record-index section; Finish writes it as the
  /// `index.ules` sidecar file next to the frames.
  Status SetIndexSection(Bytes section) override;

  /// Writes `manifest.txt` (geometry + frame counts). Call last; a
  /// directory without a manifest does not open.
  Status Finish() override;

 private:
  DirectoryWriter(const std::string& dir, const mocoder::Options& emblem,
                  const Options& options);

  std::string dir_;
  mocoder::Options emblem_options_;
  Options options_;
  size_t data_frames_ = 0;
  size_t system_frames_ = 0;
  Bytes index_section_;
  bool has_index_section_ = false;
  bool finished_ = false;
};

/// \brief Reads a DirectoryWriter-shaped directory back: manifest,
/// bootstrap, and per-stream frame sources that load one file at a time.
class DirectoryReader final : public ReelReader, public SeekableSource {
 public:
  /// Parses `<dir>/manifest.txt`. NotFound when there is no manifest,
  /// Corruption when it does not parse.
  static Result<std::unique_ptr<DirectoryReader>> Open(
      const std::string& dir);

  const std::string& dir() const { return dir_; }
  bool bitonal() const { return bitonal_; }

  const char* kind() const override { return "directory"; }
  const mocoder::Options& emblem_options() const override {
    return emblem_options_;
  }
  size_t frame_count(mocoder::StreamId id) const override {
    return id == mocoder::StreamId::kData ? data_frames_ : system_frames_;
  }
  bool has_bootstrap() const override;
  Result<std::string> ReadBootstrap() const override;
  /// Pull source over one stream's frame files, loading one image per
  /// Next() call.
  std::unique_ptr<FrameSource> OpenFrames(
      mocoder::StreamId id) const override;
  /// Loads the frame file at per-stream position `index`.
  Result<media::Image> ReadFrame(mocoder::StreamId id,
                                 size_t index) const override;
  /// Reads the `index.ules` sidecar; NotFound when the reel was written
  /// without one.
  Result<Bytes> ReadIndexSection() const override;
  ReadCounters read_counters() const override { return counters_->Snapshot(); }
  /// Loads every frame file once (parse check — directory reels carry no
  /// checksums).
  Status Verify() const override;

 private:
  DirectoryReader() = default;

  std::string dir_;
  mocoder::Options emblem_options_;
  size_t data_frames_ = 0;
  size_t system_frames_ = 0;
  bool bitonal_ = false;
  std::shared_ptr<ReadCounterCell> counters_ =
      std::make_shared<ReadCounterCell>();
};

/// Frame file name for stream `id`, per-stream index `i` (shared by the
/// writer, reader, and tests): "data-0007.pgm", "system-0000.pbm", ...
std::string FrameFileName(mocoder::StreamId id, size_t i, bool bitonal);

}  // namespace filmstore
}  // namespace ule

#endif  // ULE_FILMSTORE_DIRECTORY_STORE_H_
