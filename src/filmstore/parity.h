/// \file parity.h
/// \brief Whole-reel erasure coding: the ULE-P1 parity reels of a
/// reel set (docs/FORMAT.md §10.1).
///
/// PR 5's reel set degrades per reel: a lost reel costs every frame it
/// owned, and the outer code only recovers ≤3 lost emblems per group.
/// ULE-P1 closes that gap at media scale. The n data reels of a set are
/// treated as n byte streams (each zero-padded to the longest reel's
/// sealed size — the *stripe*), and a systematic RS(n+m, n) code over
/// GF(256) is applied independently at every byte offset, producing m
/// parity streams written as `<stem>-p00.ulep`, ... next to the reels.
/// Any n of the n+m files reconstruct the rest: the set survives any m
/// whole reels lost, truncated or silently flipped.
///
/// Because the data reels stay untouched (the code is systematic over
/// the sealed *file bytes*), every reel still opens and restores on its
/// own, and a reconstructed reel is byte-identical to the sealed
/// original — the catalog's per-file CRC proves it after every repair.
///
/// `ParityReelWriter::Build` encodes the parity reels for a finished
/// set and registers them in the catalog's ULE-P1 section;
/// `AssessSet`/`ReconstructDamaged` are the repair half, shared by
/// `ReelSetReader` (transparent reconstruction on open) and the scrub
/// engine (in-place repair). Encoding and reconstruction both stream in
/// bounded chunks: a reel can be far larger than RAM.

#ifndef ULE_FILMSTORE_PARITY_H_
#define ULE_FILMSTORE_PARITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "filmstore/reel_set.h"
#include "support/status.h"

namespace ule {
namespace filmstore {

/// \brief Version string of the ULE-P1 parity-reel format.
///
/// Documented in docs/FORMAT.md (§10.1), which records this exact
/// string; tools/check_docs.py fails the build when the two diverge —
/// the same contract the other `kUle*FormatVersion` constants have.
inline constexpr char kUleParityFormatVersion[] = "ULE-P1";

/// Binary version byte written in the parity reel header and the
/// catalog's parity section (the "1" in ULE-P1). Readers reject
/// anything else with Unimplemented.
inline constexpr uint8_t kParityBinaryVersion = 1;

/// Fixed header of a `.ulep` parity reel file; the stripe bytes follow.
inline constexpr size_t kParityReelHeaderBytes = 16;

/// Parity reel file name within a set: "<catalog stem>-p00.ulep", ...
/// (shared by the writer, the repair paths and tests).
std::string ParityReelFileName(const std::string& catalog_path, size_t index);

/// \brief Builds the ULE-P1 parity reels for a finished reel set.
class ParityReelWriter {
 public:
  /// Encodes `parity_reels` parity files next to the reels of the
  /// (finished) set at `catalog_path` and rewrites the catalog with a
  /// ULE-P1 section describing them. Every data reel must currently
  /// match its catalog row — parity over damaged bytes would notarize
  /// the damage. Existing parity is rebuilt from scratch. Returns the
  /// updated catalog (which is also on disk).
  static Result<ReelCatalog> Build(const std::string& catalog_path,
                                   int parity_reels);
};

/// \brief Stream health of one reel set on disk: which data and parity
/// reels disagree with the catalog (missing, resized, or CRC-flipped).
/// Produced by digesting every file the catalog names — byte-exact, so
/// it catches silent corruption that structural opens miss.
struct SetHealth {
  std::vector<size_t> damaged_data;    ///< data reel indices
  std::vector<size_t> damaged_parity;  ///< parity reel indices

  size_t damaged() const { return damaged_data.size() + damaged_parity.size(); }
  bool clean() const { return damaged() == 0; }
};

/// Digests every data and parity reel of `catalog` (whose files live in
/// `dir`) against its recorded size + CRC. A missing or unreadable file
/// counts as damaged; only an unexpected I/O fault is an error.
Result<SetHealth> AssessSet(const ReelCatalog& catalog, const std::string& dir);

/// True when everything `health` names can be rebuilt from what
/// survives: at most m of the n+m streams are damaged. Without a
/// ULE-P1 section only a clean set is "recoverable".
bool Recoverable(const ReelCatalog& catalog, const SetHealth& health);

/// How `ReconstructDamaged` writes its output.
struct ReconstructOptions {
  /// Appended to each reconstructed *data* reel's file name. Empty means
  /// repair in place (written to a temp file, then renamed over).
  std::string data_suffix;
  /// Also rebuild damaged parity reels (in place). The reader's
  /// transparent path leaves parity alone; scrub repairs it.
  bool rebuild_parity = false;
};

/// Rebuilds every stream `health` names from the surviving ones,
/// streaming in bounded chunks, and verifies each rebuilt file against
/// its catalog CRC. Requires `Recoverable(catalog, health)`. Returns
/// the total bytes written.
Result<uint64_t> ReconstructDamaged(const ReelCatalog& catalog,
                                    const std::string& dir,
                                    const SetHealth& health,
                                    const ReconstructOptions& options);

}  // namespace filmstore
}  // namespace ule

#endif  // ULE_FILMSTORE_PARITY_H_
