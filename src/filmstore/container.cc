#include "filmstore/container.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "support/crc32.h"

namespace ule {
namespace filmstore {

// On-disk layout (docs/FORMAT.md §9; all integers little-endian):
//
//   header (16 bytes):
//     0   4  magic "ULEC"
//     4   1  binary version (kContainerBinaryVersion)
//     5   1  reserved (0)
//     6   2  emblem data_side
//     8   2  emblem dots_per_cell
//     10  2  emblem quiet_cells
//     12  4  reserved (0)
//   record (12-byte header + payload), append-only:
//     0   1  type (RecordType)
//     1   1  codec (FrameCodec; 0 for bootstrap text)
//     2   2  emblem sequence slot (0 for bootstrap)
//     4   4  payload length
//     8   4  CRC-32 of the payload bytes
//   index: one 20-byte entry per record, in append order:
//     0   8  file offset of the payload bytes
//     8   4  payload length
//     12  4  payload CRC-32
//     16  1  type
//     17  1  codec
//     18  2  sequence slot
//   footer (20 bytes, at EOF):
//     0   8  file offset of the index
//     8   4  index entry count
//     12  4  CRC-32 of the raw index bytes
//     16  4  magic "CIDX"

namespace {

constexpr char kMagic[4] = {'U', 'L', 'E', 'C'};
constexpr char kFooterMagic[4] = {'C', 'I', 'D', 'X'};
constexpr size_t kHeaderBytes = kContainerHeaderBytes;
constexpr size_t kRecordHeaderBytes = kContainerRecordHeaderBytes;
constexpr size_t kIndexEntryBytes = kContainerIndexEntryBytes;
constexpr size_t kFooterBytes = kContainerFooterBytes;

Bytes SerializeIndex(const std::vector<ContainerEntry>& entries) {
  ByteWriter w;
  for (const ContainerEntry& e : entries) {
    w.PutU64(e.offset);
    w.PutU32(e.payload_len);
    w.PutU32(e.payload_crc);
    w.PutU8(static_cast<uint8_t>(e.type));
    w.PutU8(static_cast<uint8_t>(e.codec));
    w.PutU16(e.seq);
  }
  return w.TakeBytes();
}

/// Reads and CRC-validates one record payload from an already-open
/// stream (so whole-file passes pay one open, not one per record).
Result<Bytes> ReadPayloadFrom(std::ifstream& in, const std::string& path,
                              const ContainerEntry& entry) {
  in.clear();
  in.seekg(static_cast<std::streamoff>(entry.offset));
  Bytes payload(entry.payload_len);
  in.read(reinterpret_cast<char*>(payload.data()),
          static_cast<std::streamsize>(payload.size()));
  if (!in) return Status::IoError("short read in " + path);
  if (Crc32(payload) != entry.payload_crc) {
    return Status::Corruption("record CRC mismatch in " + path);
  }
  return payload;
}

/// Validates the 16-byte container header and extracts the recorded
/// emblem geometry (shared by the random-access reader and the
/// sequential spool scan).
Status ParseContainerHeader(BytesView header, const std::string& path,
                            mocoder::Options* emblem_options) {
  if (!std::equal(kMagic, kMagic + 4, header.begin())) {
    return Status::Corruption("bad container magic (not ULE-C1): " + path);
  }
  if (header[4] != kContainerBinaryVersion) {
    return Status::Unimplemented(
        "unsupported ULE-C1 container version " + std::to_string(header[4]) +
        " (this reader understands version " +
        std::to_string(kContainerBinaryVersion) + "): " + path);
  }
  ByteReader r(header.subspan(6));
  uint16_t data_side = 0, dots = 0, quiet = 0;
  ULE_RETURN_IF_ERROR(r.GetU16(&data_side));
  ULE_RETURN_IF_ERROR(r.GetU16(&dots));
  ULE_RETURN_IF_ERROR(r.GetU16(&quiet));
  emblem_options->data_side = data_side;
  emblem_options->dots_per_cell = dots;
  emblem_options->quiet_cells = quiet;
  emblem_options->threads = 0;
  return mocoder::ValidateOptions(*emblem_options);
}

/// Context prefix for per-record errors: which record, where in the file.
std::string RecordContext(size_t index, const ContainerEntry& entry) {
  return "record " + std::to_string(index) + " (seq " +
         std::to_string(entry.seq) + ", payload offset " +
         std::to_string(entry.offset) + ")";
}

/// FrameSource over a subset of a sealed container's records. Owns its
/// file handle (opened lazily) so it can outlive the ContainerReader;
/// successful record reads report into the reader's counter cell.
class ContainerSource final : public FrameSource {
 public:
  ContainerSource(std::string path, std::vector<ContainerEntry> entries,
                  std::shared_ptr<ReadCounterCell> counters)
      : path_(std::move(path)),
        entries_(std::move(entries)),
        counters_(std::move(counters)) {}

  Result<std::optional<media::Image>> Next() override {
    if (next_ >= entries_.size()) return std::optional<media::Image>();
    if (!in_.is_open()) {
      in_.open(path_, std::ios::binary);
      if (!in_) return Status::IoError("cannot open " + path_);
    }
    const ContainerEntry& e = entries_[next_++];
    auto payload = ReadPayloadFrom(in_, path_, e);
    if (!payload.ok()) {
      return Status(payload.status().code(),
                    "frame seq " + std::to_string(e.seq) +
                        " (payload offset " + std::to_string(e.offset) +
                        "): " + payload.status().message());
    }
    if (counters_) counters_->Count(e.payload_len);
    ULE_ASSIGN_OR_RETURN(media::Image frame,
                         DecodeFramePayload(e.codec, payload.value()));
    return std::optional<media::Image>(std::move(frame));
  }

 private:
  std::string path_;
  std::vector<ContainerEntry> entries_;
  std::shared_ptr<ReadCounterCell> counters_;
  std::ifstream in_;
  size_t next_ = 0;
};

}  // namespace

Result<media::Image> DecodeFramePayload(FrameCodec codec, BytesView payload) {
  switch (codec) {
    case FrameCodec::kPgm:
      return media::Image::FromPgm(payload);
    case FrameCodec::kPbm:
      return media::Image::FromPbm(payload);
  }
  return Status::Corruption("unknown frame codec " +
                            std::to_string(static_cast<int>(codec)));
}

// ---------------------------------------------------------------------------
// Writer

ContainerWriter::ContainerWriter(const std::string& path,
                                 const Options& options, bool truncate)
    : path_(path),
      options_(options),
      out_(path, truncate ? (std::ios::binary | std::ios::trunc)
                          : (std::ios::binary | std::ios::app)) {}

Result<std::unique_ptr<ContainerWriter>> ContainerWriter::Create(
    const std::string& path, const mocoder::Options& emblem_options,
    const Options& options) {
  ULE_RETURN_IF_ERROR(mocoder::ValidateOptions(emblem_options));
  if (emblem_options.data_side > 0xFFFF ||
      emblem_options.dots_per_cell > 0xFFFF ||
      emblem_options.quiet_cells > 0xFFFF) {
    return Status::InvalidArgument(
        "emblem geometry exceeds the container's u16 fields");
  }
  auto writer = std::unique_ptr<ContainerWriter>(
      new ContainerWriter(path, options, /*truncate=*/true));
  if (!writer->out_) {
    return Status::IoError("cannot create " + path);
  }
  ByteWriter header;
  header.PutBytes(BytesView(reinterpret_cast<const uint8_t*>(kMagic), 4));
  header.PutU8(kContainerBinaryVersion);
  header.PutU8(0);  // reserved
  header.PutU16(static_cast<uint16_t>(emblem_options.data_side));
  header.PutU16(static_cast<uint16_t>(emblem_options.dots_per_cell));
  header.PutU16(static_cast<uint16_t>(emblem_options.quiet_cells));
  header.PutU32(0);  // reserved
  ULE_RETURN_IF_ERROR(writer->WriteRaw(header.bytes()));
  return writer;
}

Result<std::unique_ptr<ContainerWriter>> ContainerWriter::Resume(
    const std::string& path, const Options& options) {
  ULE_ASSIGN_OR_RETURN(RecoveredSpool scan, ScanSpool(path));
  return Resume(path, std::move(scan), options);
}

Result<std::unique_ptr<ContainerWriter>> ContainerWriter::Resume(
    const std::string& path, RecoveredSpool scan, const Options& options) {
  if (scan.sealed) {
    return Status::InvalidArgument(
        "container is already sealed (nothing to resume): " + path);
  }
  // Drop the trailing partial record (if any) so the file ends exactly at
  // the last complete record, then append from there.
  if (scan.dropped_bytes > 0) {
    std::error_code ec;
    std::filesystem::resize_file(path, scan.recovered_bytes, ec);
    if (ec) {
      return Status::IoError("cannot truncate partial record in " + path +
                             ": " + ec.message());
    }
  }
  auto writer = std::unique_ptr<ContainerWriter>(
      new ContainerWriter(path, options, /*truncate=*/false));
  if (!writer->out_) {
    return Status::IoError("cannot reopen " + path);
  }
  writer->offset_ = scan.recovered_bytes;
  writer->entries_ = std::move(scan.entries);
  for (const ContainerEntry& e : writer->entries_) {
    if (e.type == RecordType::kBootstrap) writer->has_bootstrap_ = true;
  }
  return writer;
}

ContainerWriter::~ContainerWriter() = default;

Status ContainerWriter::WriteRaw(BytesView bytes) {
  out_.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  if (!out_) return Status::IoError("write failed: " + path_);
  std::lock_guard<std::mutex> lock(stats_mu_);
  offset_ += bytes.size();
  return Status::OK();
}

Status ContainerWriter::AppendRecord(RecordType type, FrameCodec codec,
                                     uint16_t seq, BytesView payload) {
  if (finished_) {
    return Status::InvalidArgument("container already finished: " + path_);
  }
  if (payload.size() > 0xFFFFFFFFull) {
    return Status::InvalidArgument("record payload exceeds 4 GiB");
  }
  ContainerEntry entry;
  entry.offset = offset_ + kRecordHeaderBytes;
  entry.payload_len = static_cast<uint32_t>(payload.size());
  entry.payload_crc = Crc32(payload);
  entry.type = type;
  entry.codec = codec;
  entry.seq = seq;

  ByteWriter record;
  record.PutU8(static_cast<uint8_t>(type));
  record.PutU8(static_cast<uint8_t>(codec));
  record.PutU16(seq);
  record.PutU32(entry.payload_len);
  record.PutU32(entry.payload_crc);
  ULE_RETURN_IF_ERROR(WriteRaw(record.bytes()));
  ULE_RETURN_IF_ERROR(WriteRaw(payload));
  entries_.push_back(entry);
  if (type == RecordType::kDataFrame || type == RecordType::kSystemFrame) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    frame_records_ += 1;
  }
  return Status::OK();
}

Status ContainerWriter::Append(mocoder::StreamId id,
                               const mocoder::EncodedEmblem& emblem,
                               media::Image&& frame) {
  const RecordType type = id == mocoder::StreamId::kData
                              ? RecordType::kDataFrame
                              : RecordType::kSystemFrame;
  const FrameCodec codec =
      options_.bitonal ? FrameCodec::kPbm : FrameCodec::kPgm;
  const Bytes payload = options_.bitonal ? frame.ToPbm() : frame.ToPgm();
  return AppendRecord(type, codec, emblem.header.seq, payload);
}

Status ContainerWriter::AppendBootstrap(const std::string& text) {
  if (has_bootstrap_) {
    return Status::InvalidArgument("container already has a bootstrap record");
  }
  ULE_RETURN_IF_ERROR(AppendRecord(RecordType::kBootstrap, FrameCodec::kPgm,
                                   0, ToBytes(text)));
  has_bootstrap_ = true;
  return Status::OK();
}

size_t ContainerWriter::frames_written() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return frame_records_;
}

uint64_t ContainerWriter::bytes_written() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return offset_;
}

std::vector<ReelStats> ContainerWriter::CurrentReelStats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return {ReelStats{path_, frame_records_, offset_}};
}

Status ContainerWriter::SetIndexSection(Bytes section) {
  if (finished_) {
    return Status::InvalidArgument("container already finished: " + path_);
  }
  if (has_index_section_) {
    return Status::InvalidArgument(
        "container already has a record-index section");
  }
  index_section_ = std::move(section);
  has_index_section_ = true;
  return Status::OK();
}

Status ContainerWriter::Finish() {
  if (finished_) {
    return Status::InvalidArgument("container already finished: " + path_);
  }
  if (has_index_section_) {
    ULE_RETURN_IF_ERROR(AppendRecord(RecordType::kIndex, FrameCodec::kPgm, 0,
                                     index_section_));
    has_index_section_ = false;  // spooled; do not re-append on a retry
    index_section_.clear();
  }
  const uint64_t index_offset = offset_;
  const Bytes index = SerializeIndex(entries_);
  ULE_RETURN_IF_ERROR(WriteRaw(index));
  ByteWriter footer;
  footer.PutU64(index_offset);
  footer.PutU32(static_cast<uint32_t>(entries_.size()));
  footer.PutU32(Crc32(index));
  footer.PutBytes(BytesView(reinterpret_cast<const uint8_t*>(kFooterMagic), 4));
  ULE_RETURN_IF_ERROR(WriteRaw(footer.bytes()));
  out_.flush();
  if (!out_) return Status::IoError("flush failed: " + path_);
  out_.close();
  finished_ = true;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Reader

Result<std::unique_ptr<ContainerReader>> ContainerReader::Open(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open " + path);
  const uint64_t file_size = static_cast<uint64_t>(in.tellg());
  if (file_size < kHeaderBytes + kFooterBytes) {
    return Status::Corruption("not a ULE-C1 container (too small): " + path);
  }

  auto read_at = [&](uint64_t offset, size_t n) -> Result<Bytes> {
    in.seekg(static_cast<std::streamoff>(offset));
    Bytes buf(n);
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(n));
    if (!in) return Status::IoError("short read in " + path);
    return buf;
  };

  ULE_ASSIGN_OR_RETURN(Bytes header, read_at(0, kHeaderBytes));
  auto reader = std::unique_ptr<ContainerReader>(new ContainerReader());
  reader->path_ = path;
  ULE_RETURN_IF_ERROR(
      ParseContainerHeader(header, path, &reader->emblem_options_));

  ULE_ASSIGN_OR_RETURN(Bytes footer,
                       read_at(file_size - kFooterBytes, kFooterBytes));
  if (!std::equal(kFooterMagic, kFooterMagic + 4, footer.begin() + 16)) {
    return Status::Corruption(
        "container index footer missing (file truncated?): " + path);
  }
  uint64_t index_offset = 0;
  uint32_t index_count = 0, index_crc = 0;
  {
    ByteReader r(footer);
    ULE_RETURN_IF_ERROR(r.GetU64(&index_offset));
    ULE_RETURN_IF_ERROR(r.GetU32(&index_count));
    ULE_RETURN_IF_ERROR(r.GetU32(&index_crc));
  }
  const uint64_t index_bytes =
      static_cast<uint64_t>(index_count) * kIndexEntryBytes;
  if (index_offset < kHeaderBytes ||
      index_offset + index_bytes + kFooterBytes != file_size) {
    return Status::Corruption("container index does not fit the file: " +
                              path);
  }
  ULE_ASSIGN_OR_RETURN(Bytes index,
                       read_at(index_offset, static_cast<size_t>(index_bytes)));
  if (Crc32(index) != index_crc) {
    return Status::Corruption("container index CRC mismatch: " + path);
  }

  ByteReader r(index);
  reader->entries_.reserve(index_count);
  for (uint32_t i = 0; i < index_count; ++i) {
    ContainerEntry e;
    uint8_t type = 0, codec = 0;
    ULE_RETURN_IF_ERROR(r.GetU64(&e.offset));
    ULE_RETURN_IF_ERROR(r.GetU32(&e.payload_len));
    ULE_RETURN_IF_ERROR(r.GetU32(&e.payload_crc));
    ULE_RETURN_IF_ERROR(r.GetU8(&type));
    ULE_RETURN_IF_ERROR(r.GetU8(&codec));
    ULE_RETURN_IF_ERROR(r.GetU16(&e.seq));
    if (type > static_cast<uint8_t>(RecordType::kIndex) ||
        codec > static_cast<uint8_t>(FrameCodec::kPbm)) {
      return Status::Corruption("container index entry " + std::to_string(i) +
                                " has an unknown type/codec: " + path);
    }
    e.type = static_cast<RecordType>(type);
    e.codec = static_cast<FrameCodec>(codec);
    if (e.offset < kHeaderBytes + kRecordHeaderBytes ||
        e.offset + e.payload_len > index_offset) {
      return Status::Corruption("container index entry " + std::to_string(i) +
                                " points outside the record region: " + path);
    }
    if (e.type == RecordType::kDataFrame) {
      reader->data_records_.push_back(reader->entries_.size());
    } else if (e.type == RecordType::kSystemFrame) {
      reader->system_records_.push_back(reader->entries_.size());
    }
    reader->entries_.push_back(e);
  }
  return reader;
}

size_t ContainerReader::frame_count(mocoder::StreamId id) const {
  return id == mocoder::StreamId::kData ? data_records_.size()
                                        : system_records_.size();
}

bool ContainerReader::has_bootstrap() const {
  for (const ContainerEntry& e : entries_) {
    if (e.type == RecordType::kBootstrap) return true;
  }
  return false;
}

Result<Bytes> ContainerReader::ReadPayloadUnchecked(
    const ContainerEntry& entry) const {
  std::ifstream in(path_, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path_);
  return ReadPayloadFrom(in, path_, entry);
}

Result<Bytes> ContainerReader::ReadPayload(const ContainerEntry& entry) const {
  // Accept only entries that are verbatim rows of this container's
  // index: the entry names a file region, and a stale or hand-built one
  // must fail loudly instead of reading arbitrary bytes.
  const bool known = std::any_of(
      entries_.begin(), entries_.end(), [&](const ContainerEntry& e) {
        return e.offset == entry.offset && e.payload_len == entry.payload_len &&
               e.payload_crc == entry.payload_crc && e.type == entry.type;
      });
  if (!known) {
    return Status::OutOfRange("entry (payload offset " +
                              std::to_string(entry.offset) +
                              ") is not a record of this container: " + path_);
  }
  return ReadPayloadUnchecked(entry);
}

Result<std::string> ContainerReader::ReadBootstrap() const {
  for (const ContainerEntry& e : entries_) {
    if (e.type != RecordType::kBootstrap) continue;
    ULE_ASSIGN_OR_RETURN(Bytes payload, ReadPayloadUnchecked(e));
    return ToString(payload);
  }
  return Status::NotFound("container has no bootstrap record: " + path_);
}

Result<Bytes> ContainerReader::ReadIndexSection() const {
  for (const ContainerEntry& e : entries_) {
    if (e.type != RecordType::kIndex) continue;
    return ReadPayloadUnchecked(e);
  }
  return Status::NotFound("container has no record-index section: " + path_);
}

std::unique_ptr<FrameSource> ContainerReader::OpenFrames(
    mocoder::StreamId id) const {
  const RecordType want = id == mocoder::StreamId::kData
                              ? RecordType::kDataFrame
                              : RecordType::kSystemFrame;
  std::vector<ContainerEntry> frames;
  for (const ContainerEntry& e : entries_) {
    if (e.type == want) frames.push_back(e);
  }
  return std::make_unique<ContainerSource>(path_, std::move(frames), counters_);
}

Result<media::Image> ContainerReader::ReadFrame(mocoder::StreamId id,
                                                size_t index) const {
  const std::vector<size_t>& records =
      id == mocoder::StreamId::kData ? data_records_ : system_records_;
  if (index >= records.size()) {
    return Status::OutOfRange(
        "frame " + std::to_string(index) + " out of range (stream has " +
        std::to_string(records.size()) + " frames): " + path_);
  }
  const ContainerEntry& e = entries_[records[index]];
  ULE_ASSIGN_OR_RETURN(Bytes payload, ReadPayloadUnchecked(e));
  counters_->Count(e.payload_len);
  return DecodeFramePayload(e.codec, payload);
}

Status ContainerReader::Verify() const {
  std::ifstream in(path_, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path_);
  for (size_t i = 0; i < entries_.size(); ++i) {
    const ContainerEntry& e = entries_[i];
    auto payload = ReadPayloadFrom(in, path_, e);
    if (!payload.ok()) {
      return Status(payload.status().code(),
                    RecordContext(i, e) + ": " + payload.status().message());
    }
    if (e.type == RecordType::kDataFrame ||
        e.type == RecordType::kSystemFrame) {
      auto frame = DecodeFramePayload(e.codec, payload.value());
      if (!frame.ok()) {
        return Status(frame.status().code(),
                      RecordContext(i, e) + " does not decode: " +
                          frame.status().message());
      }
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Append-resume: sequential record scan of an unfinished spool

Result<RecoveredSpool> ScanSpool(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open " + path);
  const uint64_t file_size = static_cast<uint64_t>(in.tellg());
  if (file_size < kHeaderBytes) {
    return Status::Corruption("not a ULE-C1 spool (too small): " + path);
  }

  RecoveredSpool out;
  Bytes header(kHeaderBytes);
  in.seekg(0);
  in.read(reinterpret_cast<char*>(header.data()),
          static_cast<std::streamsize>(header.size()));
  if (!in) return Status::IoError("short read in " + path);
  ULE_RETURN_IF_ERROR(ParseContainerHeader(header, path,
                                           &out.emblem_options));

  // A sealed container already knows its records; report it as such so
  // resume is a deliberate no-op instead of a rescan that would misparse
  // the trailing index as record bytes.
  if (auto sealed = ContainerReader::Open(path); sealed.ok()) {
    out.sealed = true;
    out.entries = sealed.value()->entries();
    out.recovered_bytes = file_size;
    return out;
  }

  // Walk records front to back. Each step trusts nothing beyond what it
  // just validated: a short header, an implausible type/codec, a payload
  // overrunning EOF, or a CRC mismatch all end the scan — everything
  // before that point is complete by the append-only construction.
  uint64_t offset = kHeaderBytes;
  while (offset + kRecordHeaderBytes <= file_size) {
    Bytes rec(kRecordHeaderBytes);
    in.clear();
    in.seekg(static_cast<std::streamoff>(offset));
    in.read(reinterpret_cast<char*>(rec.data()),
            static_cast<std::streamsize>(rec.size()));
    if (!in) break;
    ContainerEntry e;
    uint8_t type = 0, codec = 0;
    ByteReader r(rec);
    (void)r.GetU8(&type);
    (void)r.GetU8(&codec);
    (void)r.GetU16(&e.seq);
    (void)r.GetU32(&e.payload_len);
    (void)r.GetU32(&e.payload_crc);
    if (type > static_cast<uint8_t>(RecordType::kIndex) ||
        codec > static_cast<uint8_t>(FrameCodec::kPbm)) {
      break;  // not a record header (index bytes or a torn write)
    }
    e.type = static_cast<RecordType>(type);
    e.codec = static_cast<FrameCodec>(codec);
    e.offset = offset + kRecordHeaderBytes;
    if (e.offset + e.payload_len > file_size) break;  // partial payload
    auto payload = ReadPayloadFrom(in, path, e);
    if (!payload.ok()) break;  // torn or corrupt payload
    out.entries.push_back(e);
    offset = e.offset + e.payload_len;
  }
  out.recovered_bytes = offset;
  out.dropped_bytes = file_size - offset;
  return out;
}

Result<media::Image> ReadFrameRecord(const std::string& path,
                                     const ContainerEntry& entry) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  auto payload = ReadPayloadFrom(in, path, entry);
  if (!payload.ok()) {
    return Status(payload.status().code(),
                  "frame seq " + std::to_string(entry.seq) +
                      " (payload offset " + std::to_string(entry.offset) +
                      "): " + payload.status().message());
  }
  return DecodeFramePayload(entry.codec, payload.value());
}

}  // namespace filmstore
}  // namespace ule
