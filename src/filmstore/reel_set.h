/// \file reel_set.h
/// \brief Sharding one archive across many reels: the ULE-R1 reel-set
/// catalog (docs/FORMAT.md §10).
///
/// A physical reel has bounded capacity and fails independently of its
/// neighbors, so a production archive is a *set* of ULE-C1 containers
/// plus one small catalog describing how the frame stream was split:
///
///   set.uler            the ULE-R1 catalog (this file's format)
///   set-000.ulec        reel 0: the first shard of frames
///   set-001.ulec        reel 1: ...
///
/// `ReelSetWriter` is a `FrameSink`: `core::ArchiveDumpStreaming` spools
/// into it unchanged, and the writer rolls to a fresh reel whenever the
/// sharding policy (max frames and/or max projected file bytes per reel)
/// says the current one is full. Every reel is an ordinary sealed ULE-C1
/// container — each opens, verifies and restores on its own — and the
/// catalog records, per reel, its frame ranges in the global stream and
/// the CRC-32 of its sealed file bytes.
///
/// `ReelSetReader` is a `ReelReader`: `ulectl restore/inspect/verify`
/// walk a reel set exactly like a single reel. Reading fans out across
/// reels — record loads run in parallel on the shared pool via
/// `ParallelForOrdered` while frames are handed out strictly in stream
/// order, so restored output and `DecodeStats` are byte-identical to the
/// single-container path at any thread count and any shard size. A
/// damaged or missing reel degrades to a per-reel `Status`: the set
/// still opens, the surviving reels still restore every frame they own,
/// and the outer code (FORMAT.md §4) recovers what it can of the rest.

#ifndef ULE_FILMSTORE_REEL_SET_H_
#define ULE_FILMSTORE_REEL_SET_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "filmstore/container.h"
#include "filmstore/frame_store.h"
#include "filmstore/reel_reader.h"
#include "mocoder/mocoder.h"
#include "support/bytes.h"
#include "support/status.h"

namespace ule {
namespace filmstore {

/// \brief Version string of the ULE-R1 reel-set catalog format.
///
/// Documented in docs/FORMAT.md (§10), which records this exact string;
/// tools/check_docs.py fails the build when the two diverge — the same
/// contract `core::kUleFormatVersion` and `kUleContainerFormatVersion`
/// have for their layers.
inline constexpr char kUleReelSetFormatVersion[] = "ULE-R1";

/// Binary version byte written in the catalog header (the "1" in
/// ULE-R1). Readers reject anything else with Unimplemented.
inline constexpr uint8_t kReelSetBinaryVersion = 1;

/// \brief When to roll to the next reel. Zero means "unbounded" for that
/// axis; with both zero the set degenerates to a single reel. A reel
/// never splits a record: the first frame of a reel always fits.
struct ShardPolicy {
  size_t max_frames_per_reel = 0;   ///< frame records per reel
  uint64_t max_bytes_per_reel = 0;  ///< projected sealed file size cap
};

/// Size + CRC-32 of a sealed file, streamed in bounded chunks — a reel
/// can be far larger than RAM, and sealing/verifying/scrubbing it must
/// not break the bounded-memory story by slurping it whole.
struct FileDigest {
  uint64_t bytes = 0;
  uint32_t crc = 0;
};

Result<FileDigest> DigestFile(const std::string& path);

/// One reel's row in the catalog: where its records sit in the global
/// stream and what its sealed file must look like.
struct CatalogReel {
  std::string name;            ///< file name, relative to the catalog
  uint32_t first_record = 0;   ///< global index of its first record
  uint32_t records = 0;        ///< records in this reel (incl. bootstrap)
  uint32_t first_data_frame = 0;    ///< global data-frame index range...
  uint32_t data_frames = 0;         ///< ...[first, first + count)
  uint32_t first_system_frame = 0;  ///< same for the system stream
  uint32_t system_frames = 0;
  bool has_bootstrap = false;  ///< this reel carries the Bootstrap record
  uint64_t bytes = 0;          ///< sealed file size
  uint32_t file_crc = 0;       ///< CRC-32 of the sealed file bytes
};

/// One parity reel's row in the catalog's ULE-P1 section: its file name
/// and what the encoded file must look like (docs/FORMAT.md §10.1).
struct CatalogParityReel {
  std::string name;       ///< file name, relative to the catalog
  uint64_t bytes = 0;     ///< encoded file size (header + stripe)
  uint32_t file_crc = 0;  ///< CRC-32 of the encoded file bytes
};

/// \brief The catalog's optional ULE-P1 parity section: m RS(n+m, n)
/// parity reels striped across the data reels' sealed file bytes, so
/// any n of the n+m files reconstruct the set (docs/FORMAT.md §10.1).
struct ParityInfo {
  uint8_t parity_reels = 0;   ///< m; 0 = no parity section
  uint64_t stripe_bytes = 0;  ///< per-stream length (longest data reel)
  std::vector<CatalogParityReel> reels;

  bool present() const { return parity_reels > 0; }
};

/// \brief The ULE-R1 catalog: one archive's identity, geometry, and the
/// reels it was sharded across (docs/FORMAT.md §10).
struct ReelCatalog {
  uint64_t archive_id = 0;          ///< caller-chosen archive identity
  mocoder::Options emblem_options;  ///< recorded geometry (threads = 0)
  std::vector<CatalogReel> reels;
  ParityInfo parity;                ///< optional ULE-P1 section

  size_t frame_count(mocoder::StreamId id) const;

  /// Serializes to the ULE-R1 wire form (CRC-protected).
  Bytes Serialize() const;
  /// Parses and validates a serialized catalog: magic, binary version
  /// (Unimplemented when unknown), trailing CRC, geometry.
  static Result<ReelCatalog> Parse(BytesView bytes);
};

/// Reads and parses the catalog file at `path`.
Result<ReelCatalog> LoadCatalog(const std::string& path);

/// Reel file name within a set: "<catalog stem>-000.ulec", ... (shared
/// by the writer, reader and tests).
std::string ReelFileName(const std::string& catalog_path, size_t index);

/// \brief FrameSink that shards one archive across N ULE-C1 reels and
/// writes the ULE-R1 catalog on Finish. Plugs into
/// `core::ArchiveDumpStreaming` exactly like a single container; peak
/// memory stays O(1) frames.
class ReelSetWriter final : public ArchiveWriter {
 public:
  struct Options {
    ShardPolicy shard;
    ContainerWriter::Options container;  ///< per-reel options (bitonal)
    uint64_t archive_id = 0;             ///< recorded in the catalog
    /// ULE-P1 parity reels to encode on Finish (0 = none). Any
    /// `parity_reels` whole reels of the finished set can then be lost
    /// and reconstructed byte-identically.
    int parity_reels = 0;
  };

  /// Prepares a set whose catalog will live at `catalog_path`; reels are
  /// created lazily next to it (`ReelFileName`) as frames arrive.
  static Result<std::unique_ptr<ReelSetWriter>> Create(
      const std::string& catalog_path, const mocoder::Options& emblem_options,
      const Options& options);

  /// Spools one frame, rolling to a new reel when the policy says the
  /// current one is full (FrameSink). Serial, append-only.
  Status Append(mocoder::StreamId id, const mocoder::EncodedEmblem& emblem,
                media::Image&& frame) override;

  /// Appends the Bootstrap document to the current (last) reel. At most
  /// one per set; never triggers a roll — the Bootstrap rides with the
  /// final shard.
  Status AppendBootstrap(const std::string& text) override;

  /// Stores the ULE-S1 record-index section; Finish appends it as a
  /// kIndex record on the final reel (counted in that reel's catalog
  /// row), so the index rides with the shard a historian reads last.
  /// At most once, before Finish.
  Status SetIndexSection(Bytes section) override;

  /// Seals the last reel and writes the catalog. Required; appending
  /// after Finish (or finishing twice) is InvalidArgument.
  Status Finish() override;

  /// One entry per reel opened so far (sealed reels report their final
  /// size; the open reel its bytes written). Thread-safe: progress
  /// reporters may call this while the archiving thread appends.
  std::vector<ReelStats> CurrentReelStats() const override;

  size_t reel_count() const { return catalog_.reels.size(); }
  /// The catalog as built so far (complete and on disk after Finish).
  const ReelCatalog& catalog() const { return catalog_; }

 private:
  ReelSetWriter(std::string catalog_path, mocoder::Options emblem_options,
                Options options);

  /// Seals the open reel and records its sealed size + file CRC.
  Status SealCurrentReel();
  /// Rolls if appending `payload_bytes` more would overflow the policy,
  /// then makes sure a reel is open.
  Status EnsureRoomFor(uint64_t payload_bytes);

  std::string catalog_path_;
  mocoder::Options emblem_options_;
  Options options_;
  ReelCatalog catalog_;
  std::unique_ptr<ContainerWriter> current_;
  size_t current_frames_ = 0;   ///< frame records in the open reel
  size_t current_records_ = 0;  ///< all records in the open reel
  size_t total_records_ = 0;
  size_t data_frames_total_ = 0;
  size_t system_frames_total_ = 0;
  Bytes index_section_;
  bool has_index_section_ = false;
  bool finished_ = false;
  bool has_bootstrap_ = false;

  /// Guards what CurrentReelStats reads against the archiving thread:
  /// the `current_` pointer swaps (roll/seal) and the sealed-reel stats.
  /// The live reel's own counters are protected by ContainerWriter.
  mutable std::mutex stats_mu_;
  std::vector<ReelStats> sealed_stats_;
  std::string live_name_;  ///< catalog name of the open reel
};

/// \brief ReelReader over a ULE-R1 catalog and its reels. Opening
/// validates the catalog and tries every reel; a reel that is missing,
/// truncated or inconsistent with the catalog gets a per-reel error
/// Status instead of failing the whole set, and every surviving reel
/// still serves its frame ranges.
class ReelSetReader final : public ReelReader, public SeekableSource {
 public:
  struct OpenOptions {
    /// When the catalog carries a ULE-P1 section, digest every reel on
    /// open and transparently reconstruct up to m damaged data reels
    /// from parity (into temp files removed when the reader closes)
    /// before the per-emblem recovery ever sees a loss. Off: damage
    /// stays per-reel, as in a parity-less set.
    bool reconstruct = true;
  };

  /// Opens the catalog at `path`. Fails only when the catalog itself is
  /// unreadable/corrupt; per-reel damage is reported via reel_status().
  static Result<std::unique_ptr<ReelSetReader>> Open(const std::string& path);
  static Result<std::unique_ptr<ReelSetReader>> Open(const std::string& path,
                                                     const OpenOptions& opt);
  ~ReelSetReader() override;

  const std::string& path() const { return path_; }
  const ReelCatalog& catalog() const { return catalog_; }
  /// OK when reel `i` is *serviceable* — it opened and matches the
  /// catalog, possibly after parity reconstruction; the failure Status
  /// (naming the reel) otherwise.
  const Status& reel_status(size_t i) const { return reel_status_[i]; }
  /// OK when reel `i`'s file on disk is pristine (matches its catalog
  /// row byte-for-byte); the damage found otherwise — even when the
  /// reel was since reconstructed and serves frames again.
  const Status& reel_damage(size_t i) const { return reel_damage_[i]; }
  /// True when reel `i` is served from a parity-reconstructed copy.
  bool reel_reconstructed(size_t i) const { return reconstructed_[i]; }
  size_t reconstructed_reels() const;
  /// Per parity reel (ULE-P1 section order): OK when its file matches
  /// the catalog. Empty when the set has no parity.
  const Status& parity_status(size_t p) const { return parity_status_[p]; }
  size_t surviving_reels() const;

  /// Worker threads for the parallel reel-set source (0 = automatic).
  /// Output is byte-identical at any setting.
  void set_restore_threads(int threads) { restore_threads_ = threads; }

  const char* kind() const override { return "ULE-R1 reel set"; }
  const mocoder::Options& emblem_options() const override {
    return catalog_.emblem_options;
  }
  /// Catalog totals — what the archive owns, including frames whose reel
  /// is currently damaged (restoration then counts them as losses for
  /// the outer code to recover).
  size_t frame_count(mocoder::StreamId id) const override {
    return catalog_.frame_count(id);
  }
  bool has_bootstrap() const override;
  Result<std::string> ReadBootstrap() const override;
  /// Pull source over one stream's frames across every *surviving* reel,
  /// in global stream order. Record loads fan out over the shared pool
  /// (`set_restore_threads`); delivery order, and therefore restored
  /// bytes and DecodeStats, are identical at any thread count.
  std::unique_ptr<FrameSource> OpenFrames(
      mocoder::StreamId id) const override;
  /// Reads one frame by its *global* stream position: the catalog's
  /// per-reel frame ranges name the owning reel, the read lands on that
  /// reel's record. A frame whose reel is damaged reports the reel's
  /// failure Status (the outer code treats it as a loss).
  Result<media::Image> ReadFrame(mocoder::StreamId id,
                                 size_t index) const override;
  /// Scans the reels last-to-first for the ULE-S1 record; writers put it
  /// on the final reel, but any surviving copy is accepted.
  Result<Bytes> ReadIndexSection() const override;
  /// Streaming reads (the set's sources) plus seek reads served by the
  /// individual reels, combined.
  ReadCounters read_counters() const override;
  /// Validates the whole set *as stored*: every data and parity reel
  /// matches its catalog row (sealed size + file CRC) and every data
  /// reel passes the container integrity pass. Reconstruction does not
  /// mask damage here — a reel serving from a parity-rebuilt copy still
  /// fails Verify with the original damage, because the artifact on
  /// disk needs repair. The error names the failing reel (index + file)
  /// and record.
  Status Verify() const override;

 private:
  ReelSetReader() = default;

  std::string path_;  ///< the catalog file
  std::string dir_;   ///< reels live next to the catalog
  ReelCatalog catalog_;
  std::vector<std::unique_ptr<ContainerReader>> reels_;  ///< null when dead
  std::vector<Status> reel_status_;
  std::vector<Status> reel_damage_;    ///< pre-reconstruction, per data reel
  std::vector<Status> parity_status_;  ///< per parity reel
  std::vector<bool> reconstructed_;    ///< reel i serves a rebuilt copy
  std::vector<std::string> temp_files_;  ///< rebuilt copies, removed on close
  int restore_threads_ = 0;
  std::shared_ptr<ReadCounterCell> counters_ =
      std::make_shared<ReadCounterCell>();
};

}  // namespace filmstore
}  // namespace ule

#endif  // ULE_FILMSTORE_REEL_SET_H_
