/// \file scanner_source.h
/// \brief Scanner shim: a FrameSource that routes frames through the
/// print/scan degradation model on their way out.
///
/// End-to-end tests of the film path want "what a scanner hands back",
/// not the pristine rendered frames a reel stores. `ScannerSource` wraps
/// any inner `FrameSource` (a reel, a reel set, a vector of frames) and
/// applies `media::Scan` — optional bitonal printing, then geometric and
/// photometric distortion — to each frame as it is pulled, so a sharded
/// restore can exercise the realistic scanned-film path frame by frame
/// without ever materializing an intermediate image set.
///
/// Damage placement is deterministic *per frame index*: frame i is
/// scanned with `profile.seed + i`, so the same archive produces the
/// same scans no matter how it was sharded across reels or how many
/// threads pulled it.

#ifndef ULE_FILMSTORE_SCANNER_SOURCE_H_
#define ULE_FILMSTORE_SCANNER_SOURCE_H_

#include <memory>

#include "filmstore/frame_store.h"
#include "media/scanner.h"

namespace ule {
namespace filmstore {

class ScannerSource final : public FrameSource {
 public:
  struct Options {
    media::ScanProfile profile;  ///< distortion of every scan pass
    /// Threshold frames at 128 before scanning — the film recorder's
    /// bitonal write (media profiles with `bitonal_write`).
    bool bitonal_print = false;
  };

  /// Wraps `inner`; every frame it yields is printed/scanned on the way
  /// through. The shim owns the inner source.
  ScannerSource(std::unique_ptr<FrameSource> inner, const Options& options)
      : inner_(std::move(inner)), options_(options) {}

  Result<std::optional<media::Image>> Next() override;

 private:
  std::unique_ptr<FrameSource> inner_;
  Options options_;
  uint64_t index_ = 0;
};

}  // namespace filmstore
}  // namespace ule

#endif  // ULE_FILMSTORE_SCANNER_SOURCE_H_
