/// \file container.h
/// \brief The ULE-C1 single-file spool container (docs/FORMAT.md §9).
///
/// A film recorder consumes frames one at a time; an archive larger than
/// RAM must therefore be able to leave the machine the same way. The
/// ULE-C1 container is the append-only on-disk shape of one reel:
///
///   header | record* | index | footer
///
/// Records (frames, one per emblem, plus an optional Bootstrap-document
/// record) are written strictly append-only as `core::ArchiveDumpStreaming`
/// emits them, so the writer holds O(1) frames and peak archive RSS stays
/// O(threads × emblem). Every record carries a CRC-32 of its payload; the
/// trailing index (one fixed-size entry per record, itself CRC-protected)
/// lets a reader seek straight to any frame, and the fixed-size footer at
/// EOF locates the index. Frames are stored as PGM (lossless) or PBM
/// (bitonal reels) images — the same serialization every other artifact
/// in the repo uses.
///
/// A reader never loads the whole file: `FrameSource`s returned by
/// `ContainerReader::OpenFrames` seek record-at-a-time, so restoration
/// through `core::RestoreNativeStreaming` / `RestoreEmulatedStreaming` is
/// bounded-memory end to end. Corruption surfaces as Status: a truncated
/// file fails to open (no footer), a flipped payload byte fails its CRC on
/// read, and an unknown container version is rejected as Unimplemented.
///
/// An *unfinished* spool (the writer died before Finish) is not lost:
/// because records are append-only and individually CRC'd, a sequential
/// scan (`ScanSpool`) recovers every complete record, and
/// `ContainerWriter::Resume` reopens the spool to keep appending or to
/// seal it — losing at most the final partial record. `ulectl resume`
/// drives this from the shell.

#ifndef ULE_FILMSTORE_CONTAINER_H_
#define ULE_FILMSTORE_CONTAINER_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "filmstore/frame_store.h"
#include "filmstore/reel_reader.h"
#include "mocoder/mocoder.h"
#include "support/bytes.h"
#include "support/status.h"

namespace ule {
namespace filmstore {

/// \brief Version string of the ULE-C1 spool container format.
///
/// Documented in docs/FORMAT.md (§9), which records this exact string;
/// tools/check_docs.py fails the build when the two diverge — the same
/// contract `core::kUleFormatVersion` has for the on-film format. The
/// one-byte binary version in the container header is the wire form of
/// this string's trailing number.
inline constexpr char kUleContainerFormatVersion[] = "ULE-C1";

/// Binary version byte written in the container header (the "1" in
/// ULE-C1). Readers reject anything else with Unimplemented.
inline constexpr uint8_t kContainerBinaryVersion = 1;

/// Record types (first byte of every record and index entry).
enum class RecordType : uint8_t {
  kDataFrame = 0,    ///< one rendered emblem of the data stream
  kSystemFrame = 1,  ///< one rendered emblem of the system stream
  kBootstrap = 2,    ///< the printed Bootstrap document (UTF-8 text)
  kIndex = 3,        ///< the ULE-S1 record-index section (FORMAT.md §11)
};

/// Fixed sizes of the ULE-C1 framing (docs/FORMAT.md §9). Public so the
/// reel-set sharding policy can project a reel's sealed file size and so
/// tests/tools can compute record offsets without reverse-engineering.
inline constexpr size_t kContainerHeaderBytes = 16;
inline constexpr size_t kContainerRecordHeaderBytes = 12;
inline constexpr size_t kContainerIndexEntryBytes = 20;
inline constexpr size_t kContainerFooterBytes = 20;

/// Payload codecs for frame records.
enum class FrameCodec : uint8_t {
  kPgm = 0,  ///< binary PGM (P5): lossless for any grayscale frame
  kPbm = 1,  ///< binary PBM (P4): bitonal; exact for rendered 0/255 frames
};

/// One parsed index entry: where a record's payload lives and how to
/// validate and decode it.
struct ContainerEntry {
  uint64_t offset = 0;       ///< file offset of the payload bytes
  uint32_t payload_len = 0;  ///< payload size in bytes
  uint32_t payload_crc = 0;  ///< CRC-32 of the payload bytes
  RecordType type = RecordType::kDataFrame;
  FrameCodec codec = FrameCodec::kPgm;  ///< meaningful for frame records
  uint16_t seq = 0;          ///< emblem sequence slot (0 for bootstrap)
};

/// \brief What a sequential scan recovered from a ULE-C1 spool
/// (docs/FORMAT.md §9.1: append-resume scan rules).
struct RecoveredSpool {
  mocoder::Options emblem_options;      ///< from the spool header
  std::vector<ContainerEntry> entries;  ///< every complete record, in order
  uint64_t recovered_bytes = 0;  ///< header + complete records
  uint64_t dropped_bytes = 0;    ///< trailing partial/corrupt record bytes
  bool sealed = false;  ///< the file already has a valid index + footer
};

/// \brief Recovers the complete records of an unfinished spool by
/// sequential scan: validates the header, then walks record headers,
/// checking each payload's CRC, and stops at the first incomplete or
/// corrupt record (everything before it is intact by construction of the
/// append-only format). A sealed container is reported with
/// `sealed = true` and its index entries instead of being re-scanned.
/// Corruption when the header itself is damaged, Unimplemented for an
/// unknown container version.
Result<RecoveredSpool> ScanSpool(const std::string& path);

/// \brief Append-only ULE-C1 writer; plugs into `ArchiveDumpStreaming` as
/// its FrameSink so frames spool to disk as they are rendered.
///
/// Call `Finish()` to seal the container (writes the index + footer); a
/// writer destroyed without Finish leaves a file with no footer, which
/// readers reject — an aborted archive can never masquerade as a reel.
class ContainerWriter final : public ArchiveWriter {
 public:
  struct Options {
    /// Store frames as bitonal PBM (8x smaller; exact for rendered
    /// frames, lossy for grayscale scans) instead of PGM.
    bool bitonal = false;
  };

  /// Creates (truncates) `path` and writes the container header. The
  /// emblem geometry is recorded so the container is self-describing for
  /// restoration; its `threads` knob is not stored (never archival).
  static Result<std::unique_ptr<ContainerWriter>> Create(
      const std::string& path, const mocoder::Options& emblem_options,
      const Options& options);
  static Result<std::unique_ptr<ContainerWriter>> Create(
      const std::string& path, const mocoder::Options& emblem_options) {
    return Create(path, emblem_options, Options());
  }

  /// \brief Reopens an *unfinished* spool (a writer that died before
  /// Finish) for appending: recovers every complete record by sequential
  /// scan (ScanSpool), truncates the trailing partial record if any, and
  /// positions the writer after the last complete record. The recovered
  /// records keep their index entries, so a subsequent Finish seals the
  /// container exactly as if the original writer had never died.
  /// InvalidArgument when the container is already sealed (it opens
  /// normally; there is nothing to resume).
  static Result<std::unique_ptr<ContainerWriter>> Resume(
      const std::string& path, const Options& options);
  static Result<std::unique_ptr<ContainerWriter>> Resume(
      const std::string& path) {
    return Resume(path, Options());
  }
  /// Resume from an already-completed scan of `path` (the ScanSpool
  /// result), so callers that inspected the spool first don't pay the
  /// sequential CRC pass twice. The scan must be current and unsealed.
  static Result<std::unique_ptr<ContainerWriter>> Resume(
      const std::string& path, RecoveredSpool scan, const Options& options);

  ~ContainerWriter() override;

  ContainerWriter(const ContainerWriter&) = delete;
  ContainerWriter& operator=(const ContainerWriter&) = delete;

  /// Spools one rendered frame (FrameSink). Serial, append-only.
  Status Append(mocoder::StreamId id, const mocoder::EncodedEmblem& emblem,
                media::Image&& frame) override;

  /// Appends one already-serialized record. This is the primitive Append
  /// and AppendBootstrap build on; the reel-set writer uses it directly so
  /// it can serialize a frame once, size the record against the shard
  /// budget, and then spool those exact bytes.
  Status AppendRecord(RecordType type, FrameCodec codec, uint16_t seq,
                      BytesView payload);

  /// Appends the Bootstrap document so the reel restores (even emulated)
  /// from the container alone. At most one per container.
  Status AppendBootstrap(const std::string& text) override;

  /// Stores the ULE-S1 record-index section; Finish writes it as a
  /// `kIndex` record ahead of the trailing index + footer.
  Status SetIndexSection(Bytes section) override;

  /// Writes the index + footer and closes the file. Required; appending
  /// after Finish (or finishing twice) is InvalidArgument.
  Status Finish() override;

  /// Bytes written so far (records only until Finish adds the tail).
  /// Thread-safe: may be polled while another thread appends.
  uint64_t bytes_written() const;

  /// Frame records appended so far (bootstrap/index records excluded).
  /// Thread-safe: may be polled while another thread appends.
  size_t frames_written() const;

  /// One entry: this container is a single reel. Thread-safe — safe to
  /// poll (e.g. for progress display) while the archiving thread is
  /// mid-Append; the snapshot is consistent at record granularity.
  std::vector<ReelStats> CurrentReelStats() const override;

 private:
  ContainerWriter(const std::string& path, const Options& options,
                  bool truncate);

  Status WriteRaw(BytesView bytes);

  std::string path_;
  Options options_;
  std::ofstream out_;
  std::vector<ContainerEntry> entries_;
  Bytes index_section_;
  bool has_index_section_ = false;
  uint64_t offset_ = 0;
  bool finished_ = false;
  bool has_bootstrap_ = false;
  /// Guards the counters CurrentReelStats() snapshots (`offset_`,
  /// `frame_records_`) against a poll racing a mid-Append mutation.
  /// Append/Finish stay single-threaded; only the stats surface is
  /// concurrent.
  mutable std::mutex stats_mu_;
  size_t frame_records_ = 0;
};

/// \brief Random-access ULE-C1 reader. Open validates the header, footer
/// and index (structure + index CRC) without touching record payloads;
/// payload CRCs are checked on every read.
class ContainerReader final : public ReelReader, public SeekableSource {
 public:
  /// Opens and validates `path`. Corruption for a damaged or truncated
  /// container, Unimplemented for an unknown container version, IoError
  /// when the host cannot read the file.
  static Result<std::unique_ptr<ContainerReader>> Open(
      const std::string& path);

  const std::string& path() const { return path_; }
  const std::vector<ContainerEntry>& entries() const { return entries_; }

  const char* kind() const override { return "ULE-C1 container"; }
  const mocoder::Options& emblem_options() const override {
    return emblem_options_;
  }
  size_t frame_count(mocoder::StreamId id) const override;
  bool has_bootstrap() const override;
  Result<std::string> ReadBootstrap() const override;
  /// Pull source over one stream's frames, decoding record-at-a-time with
  /// CRC validation — O(1) frames in memory regardless of reel size.
  std::unique_ptr<FrameSource> OpenFrames(
      mocoder::StreamId id) const override;
  /// Seeks straight to one frame record via the trailing index and reads
  /// just that record (ReadPayload + codec decode). Thread-safe; safe to
  /// interleave with an open streaming source.
  Result<media::Image> ReadFrame(mocoder::StreamId id,
                                 size_t index) const override;
  /// Reads, CRC-validates and returns one record's payload bytes.
  /// OutOfRange when `entry` is not one of this container's index
  /// entries (by offset/length), so a stale or foreign entry cannot read
  /// arbitrary file bytes.
  Result<Bytes> ReadPayload(const ContainerEntry& entry) const;
  /// The ULE-S1 section of the `kIndex` record, when present.
  Result<Bytes> ReadIndexSection() const override;
  ReadCounters read_counters() const override { return counters_->Snapshot(); }
  /// Re-reads every record payload and validates its CRC (and that frame
  /// payloads decode as images).
  Status Verify() const override;

 private:
  ContainerReader() = default;

  Result<Bytes> ReadPayloadUnchecked(const ContainerEntry& entry) const;

  std::string path_;
  mocoder::Options emblem_options_;
  std::vector<ContainerEntry> entries_;
  /// Positions (into entries_) of each stream's frame records, in
  /// emitted order — the seek path's frame index → record map.
  std::vector<size_t> data_records_;
  std::vector<size_t> system_records_;
  std::shared_ptr<ReadCounterCell> counters_ =
      std::make_shared<ReadCounterCell>();
};

/// Decodes one frame payload with its recorded codec (shared by the
/// reader, Verify, and tests).
Result<media::Image> DecodeFramePayload(FrameCodec codec, BytesView payload);

/// Reads, CRC-validates and decodes one frame record of a sealed
/// container. Self-contained (opens `path` per call) and thread-safe, so
/// the reel-set source can fan record reads out across pool workers.
Result<media::Image> ReadFrameRecord(const std::string& path,
                                     const ContainerEntry& entry);


}  // namespace filmstore
}  // namespace ule

#endif  // ULE_FILMSTORE_CONTAINER_H_
