/// \file container.h
/// \brief The ULE-C1 single-file spool container (docs/FORMAT.md §9).
///
/// A film recorder consumes frames one at a time; an archive larger than
/// RAM must therefore be able to leave the machine the same way. The
/// ULE-C1 container is the append-only on-disk shape of one reel:
///
///   header | record* | index | footer
///
/// Records (frames, one per emblem, plus an optional Bootstrap-document
/// record) are written strictly append-only as `core::ArchiveDumpStreaming`
/// emits them, so the writer holds O(1) frames and peak archive RSS stays
/// O(threads × emblem). Every record carries a CRC-32 of its payload; the
/// trailing index (one fixed-size entry per record, itself CRC-protected)
/// lets a reader seek straight to any frame, and the fixed-size footer at
/// EOF locates the index. Frames are stored as PGM (lossless) or PBM
/// (bitonal reels) images — the same serialization every other artifact
/// in the repo uses.
///
/// A reader never loads the whole file: `FrameSource`s returned by
/// `ContainerReader::OpenFrames` seek record-at-a-time, so restoration
/// through `core::RestoreNativeStreaming` / `RestoreEmulatedStreaming` is
/// bounded-memory end to end. Corruption surfaces as Status: a truncated
/// file fails to open (no footer), a flipped payload byte fails its CRC on
/// read, and an unknown container version is rejected as Unimplemented.

#ifndef ULE_FILMSTORE_CONTAINER_H_
#define ULE_FILMSTORE_CONTAINER_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "filmstore/frame_store.h"
#include "filmstore/reel_reader.h"
#include "mocoder/mocoder.h"
#include "support/bytes.h"
#include "support/status.h"

namespace ule {
namespace filmstore {

/// \brief Version string of the ULE-C1 spool container format.
///
/// Documented in docs/FORMAT.md (§9), which records this exact string;
/// tools/check_docs.py fails the build when the two diverge — the same
/// contract `core::kUleFormatVersion` has for the on-film format. The
/// one-byte binary version in the container header is the wire form of
/// this string's trailing number.
inline constexpr char kUleContainerFormatVersion[] = "ULE-C1";

/// Binary version byte written in the container header (the "1" in
/// ULE-C1). Readers reject anything else with Unimplemented.
inline constexpr uint8_t kContainerBinaryVersion = 1;

/// Record types (first byte of every record and index entry).
enum class RecordType : uint8_t {
  kDataFrame = 0,    ///< one rendered emblem of the data stream
  kSystemFrame = 1,  ///< one rendered emblem of the system stream
  kBootstrap = 2,    ///< the printed Bootstrap document (UTF-8 text)
};

/// Payload codecs for frame records.
enum class FrameCodec : uint8_t {
  kPgm = 0,  ///< binary PGM (P5): lossless for any grayscale frame
  kPbm = 1,  ///< binary PBM (P4): bitonal; exact for rendered 0/255 frames
};

/// One parsed index entry: where a record's payload lives and how to
/// validate and decode it.
struct ContainerEntry {
  uint64_t offset = 0;       ///< file offset of the payload bytes
  uint32_t payload_len = 0;  ///< payload size in bytes
  uint32_t payload_crc = 0;  ///< CRC-32 of the payload bytes
  RecordType type = RecordType::kDataFrame;
  FrameCodec codec = FrameCodec::kPgm;  ///< meaningful for frame records
  uint16_t seq = 0;          ///< emblem sequence slot (0 for bootstrap)
};

/// \brief Append-only ULE-C1 writer; plugs into `ArchiveDumpStreaming` as
/// its FrameSink so frames spool to disk as they are rendered.
///
/// Call `Finish()` to seal the container (writes the index + footer); a
/// writer destroyed without Finish leaves a file with no footer, which
/// readers reject — an aborted archive can never masquerade as a reel.
class ContainerWriter final : public FrameSink {
 public:
  struct Options {
    /// Store frames as bitonal PBM (8x smaller; exact for rendered
    /// frames, lossy for grayscale scans) instead of PGM.
    bool bitonal = false;
  };

  /// Creates (truncates) `path` and writes the container header. The
  /// emblem geometry is recorded so the container is self-describing for
  /// restoration; its `threads` knob is not stored (never archival).
  static Result<std::unique_ptr<ContainerWriter>> Create(
      const std::string& path, const mocoder::Options& emblem_options,
      const Options& options);
  static Result<std::unique_ptr<ContainerWriter>> Create(
      const std::string& path, const mocoder::Options& emblem_options) {
    return Create(path, emblem_options, Options());
  }

  ~ContainerWriter() override;

  ContainerWriter(const ContainerWriter&) = delete;
  ContainerWriter& operator=(const ContainerWriter&) = delete;

  /// Spools one rendered frame (FrameSink). Serial, append-only.
  Status Append(mocoder::StreamId id, const mocoder::EncodedEmblem& emblem,
                media::Image&& frame) override;

  /// Appends the Bootstrap document so the reel restores (even emulated)
  /// from the container alone. At most one per container.
  Status AppendBootstrap(const std::string& text);

  /// Writes the index + footer and closes the file. Required; appending
  /// after Finish (or finishing twice) is InvalidArgument.
  Status Finish();

  /// Bytes written so far (records only until Finish adds the tail).
  uint64_t bytes_written() const { return offset_; }

 private:
  ContainerWriter(const std::string& path, const Options& options);

  Status WriteRaw(BytesView bytes);
  Status AppendRecord(RecordType type, FrameCodec codec, uint16_t seq,
                      BytesView payload);

  std::string path_;
  Options options_;
  std::ofstream out_;
  std::vector<ContainerEntry> entries_;
  uint64_t offset_ = 0;
  bool finished_ = false;
  bool has_bootstrap_ = false;
};

/// \brief Random-access ULE-C1 reader. Open validates the header, footer
/// and index (structure + index CRC) without touching record payloads;
/// payload CRCs are checked on every read.
class ContainerReader final : public ReelReader {
 public:
  /// Opens and validates `path`. Corruption for a damaged or truncated
  /// container, Unimplemented for an unknown container version, IoError
  /// when the host cannot read the file.
  static Result<std::unique_ptr<ContainerReader>> Open(
      const std::string& path);

  const std::string& path() const { return path_; }
  const std::vector<ContainerEntry>& entries() const { return entries_; }

  const char* kind() const override { return "ULE-C1 container"; }
  const mocoder::Options& emblem_options() const override {
    return emblem_options_;
  }
  size_t frame_count(mocoder::StreamId id) const override;
  bool has_bootstrap() const override;
  Result<std::string> ReadBootstrap() const override;
  /// Pull source over one stream's frames, decoding record-at-a-time with
  /// CRC validation — O(1) frames in memory regardless of reel size.
  std::unique_ptr<FrameSource> OpenFrames(
      mocoder::StreamId id) const override;
  /// Re-reads every record payload and validates its CRC (and that frame
  /// payloads decode as images).
  Status Verify() const override;

 private:
  ContainerReader() = default;

  Result<Bytes> ReadPayload(const ContainerEntry& entry) const;

  std::string path_;
  mocoder::Options emblem_options_;
  std::vector<ContainerEntry> entries_;
};

/// Decodes one frame payload with its recorded codec (shared by the
/// reader, Verify, and tests).
Result<media::Image> DecodeFramePayload(FrameCodec codec, BytesView payload);

}  // namespace filmstore
}  // namespace ule

#endif  // ULE_FILMSTORE_CONTAINER_H_
