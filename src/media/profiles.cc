#include "media/profiles.h"

namespace ule {
namespace media {

MediaProfile PaperA4Laser600() {
  MediaProfile p;
  p.name = "paper-a4-600dpi";
  p.frame_width = 4760;    // A4 at 600 dpi minus 5 mm unprintable margin
  p.frame_height = 6800;
  p.bitonal_write = false;
  p.dots_per_cell = 4;
  p.frame_pitch_mm = 297;  // one sheet
  p.reel_length_mm = 0;
  p.scan.scale = 1.0;
  p.scan.rotation_deg = 0.25;
  p.scan.barrel_k1 = 0.002;
  p.scan.jitter_amplitude = 0.4;
  p.scan.blur_sigma = 0.7;
  p.scan.noise_sigma = 6.0;
  p.scan.dust_per_megapixel = 1.5;
  p.scan.fade = 0.05;
  p.scan.vignette = 0.02;
  p.scan.seed = 600;
  return p;
}

MediaProfile Microfilm16mm() {
  MediaProfile p;
  p.name = "microfilm-16mm";
  p.frame_width = 3888;
  p.frame_height = 5498;
  p.bitonal_write = true;  // the IMAGELINK writer produces bitonal frames
  p.dots_per_cell = 5;   // conservative pitch: decodes with wide RS margin
  p.frame_pitch_mm = 24.0;  // ~22.6 mm frame + inter-frame gap
  p.reel_length_mm = 66000;
  p.scan.scale = 1.28;      // rescans at ~5000x7000
  p.scan.rotation_deg = 0.35;
  p.scan.barrel_k1 = 0.004;  // microfilm reader optics curve more
  p.scan.jitter_amplitude = 0.6;
  p.scan.blur_sigma = 0.9;
  p.scan.noise_sigma = 5.0;
  p.scan.dust_per_megapixel = 2.5;  // film + glass plates + screen dust
  p.scan.fade = 0.04;
  p.scan.bitonal = true;    // "the produced scans were also bitonal"
  p.scan.seed = 1600;
  return p;
}

MediaProfile CinemaFilm35mm() {
  MediaProfile p;
  p.name = "cinema-35mm-2k";
  p.frame_width = 2048;
  p.frame_height = 1556;
  p.bitonal_write = false;
  p.dots_per_cell = 3;
  p.frame_pitch_mm = 19.0;  // 4-perf 35 mm frame pitch
  p.reel_length_mm = 0;     // evaluated per-frame in the paper
  p.scan.scale = 2.0;       // 2K frames scanned at 4K grayscale
  p.scan.rotation_deg = 0.1;
  p.scan.barrel_k1 = 0.0008;  // "sharper, low-distortion images"
  p.scan.jitter_amplitude = 0.15;
  p.scan.blur_sigma = 0.5;
  p.scan.noise_sigma = 3.0;
  p.scan.dust_per_megapixel = 0.8;
  p.scan.fade = 0.02;
  p.scan.seed = 3500;
  return p;
}

std::vector<MediaProfile> AllProfiles() {
  return {PaperA4Laser600(), Microfilm16mm(), CinemaFilm35mm()};
}

}  // namespace media
}  // namespace ule
