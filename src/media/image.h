/// \file image.h
/// \brief 8-bit grayscale raster used by the analog-media simulation.
///
/// Scanned microform/paper/film arrives in the restore pipeline as plain
/// grayscale rasters ("the user converts the images containing emblems into
/// a linear flat array of pixel intensities", §3.3). PGM (P5) and PBM (P4)
/// round-tripping is provided so every intermediate artefact can be dumped
/// and inspected.

#ifndef ULE_MEDIA_IMAGE_H_
#define ULE_MEDIA_IMAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "support/bytes.h"
#include "support/status.h"

namespace ule {
namespace media {

/// \brief Row-major 8-bit grayscale image. 0 = black, 255 = white.
class Image {
 public:
  Image() = default;
  Image(int width, int height, uint8_t fill = 255)
      : width_(width), height_(height),
        pixels_(static_cast<size_t>(width) * height, fill) {}

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return pixels_.empty(); }

  uint8_t at(int x, int y) const {
    return pixels_[static_cast<size_t>(y) * width_ + x];
  }
  void set(int x, int y, uint8_t v) {
    pixels_[static_cast<size_t>(y) * width_ + x] = v;
  }
  /// at() with clamped coordinates (edge extension).
  uint8_t at_clamped(int x, int y) const;
  /// Bilinear sample at fractional coordinates, clamped at edges.
  double Sample(double x, double y) const;

  void FillRect(int x, int y, int w, int h, uint8_t v);

  const std::vector<uint8_t>& pixels() const { return pixels_; }
  std::vector<uint8_t>& mutable_pixels() { return pixels_; }

  /// Serialises as binary PGM (P5).
  Bytes ToPgm() const;
  static Result<Image> FromPgm(BytesView data);

  /// Serialises as bitonal PBM (P4); pixels < 128 become black. Microfilm
  /// writers produce bitonal TIFFs (§4); PBM is our equivalent container.
  Bytes ToPbm() const;
  static Result<Image> FromPbm(BytesView data);

  /// Writes/reads PGM files on the host filesystem (for examples/benches).
  Status SavePgm(const std::string& path) const;
  static Result<Image> LoadPgm(const std::string& path);

  /// Writes/reads bitonal PBM files (used by the film-store directory
  /// backend for microfilm-style bitonal reels). Lossy for grayscale
  /// content: pixels < 128 become black. Round-trips rendered (pure
  /// 0/255) frames exactly.
  Status SavePbm(const std::string& path) const;
  static Result<Image> LoadPbm(const std::string& path);

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<uint8_t> pixels_;
};

}  // namespace media
}  // namespace ule

#endif  // ULE_MEDIA_IMAGE_H_
