/// \file scanner.h
/// \brief Print/scan distortion simulation — the analog-media substrate.
///
/// The paper's robustness story (§3.1) enumerates what real film/paper
/// pipelines do to an image: media distortion and damage (fading, hot
/// spots, scratches), lens curvature "which can change straight lines into
/// curves, usually near the edge of the field of view", unsteady mechanical
/// motion in ADF/linear-array scanners, and dust on film, glass plates and
/// screens. The simulator implements each of those as an explicit,
/// parameterised stage so that the robustness experiments (E8, E12) can
/// sweep them independently. We do not have the Canon/Kodak/Arrilaser
/// hardware; DESIGN.md §2 documents this substitution.

#ifndef ULE_MEDIA_SCANNER_H_
#define ULE_MEDIA_SCANNER_H_

#include "media/image.h"
#include "support/random.h"

namespace ule {
namespace media {

/// \brief Distortion parameters of one scan pass. Defaults are the "clean
/// scanner" — each field models one physical effect.
struct ScanProfile {
  double scale = 1.0;          ///< rescan resolution (2.0 = scan at 2x dpi)
  double rotation_deg = 0.0;   ///< page/film skew
  double barrel_k1 = 0.0;      ///< radial lens distortion coefficient
                               ///< (positive = barrel; ~1e-2 is strong)
  double jitter_amplitude = 0.0;  ///< unsteady-feed row displacement, px
  double jitter_period = 40.0;    ///< rows per jitter oscillation
  double blur_sigma = 0.0;     ///< optics blur (Gaussian), px
  double noise_sigma = 0.0;    ///< sensor noise stddev, gray levels
  double dust_per_megapixel = 0.0;  ///< opaque specks per 10^6 px
  int dust_max_radius = 3;     ///< speck radius, px
  int scratch_count = 0;       ///< dark vertical scratches (film)
  double fade = 0.0;           ///< contrast loss toward mid-gray, 0..1
  double vignette = 0.0;       ///< corner illumination falloff, 0..1
  bool bitonal = false;        ///< output thresholded at 128 (microfilm)
  uint64_t seed = 1;           ///< deterministic damage placement
};

/// Runs the full scan simulation over a printed image.
Image Scan(const Image& printed, const ScanProfile& profile);

/// Damage-only pass (dust/scratches/fading without geometry change); used
/// to model media ageing between writing and scanning.
Image Age(const Image& stored, const ScanProfile& profile);

}  // namespace media
}  // namespace ule

#endif  // ULE_MEDIA_SCANNER_H_
