/// \file profiles.h
/// \brief Media profiles for the three analog backends evaluated in the
/// paper (§4): laser-printed A4 paper, 16 mm microfilm, and 35 mm cinema
/// film. Frame geometries and scan characteristics follow the equipment
/// the paper names; DESIGN.md §2 records the hardware→simulation mapping.

#ifndef ULE_MEDIA_PROFILES_H_
#define ULE_MEDIA_PROFILES_H_

#include <string>
#include <vector>

#include "media/scanner.h"

namespace ule {
namespace media {

/// \brief One analog backend: writable frame geometry + typical scanner.
struct MediaProfile {
  std::string name;
  int frame_width = 0;    ///< printable/writable dots per frame
  int frame_height = 0;
  bool bitonal_write = false;  ///< writer quantises to black/white
  int dots_per_cell = 4;       ///< nominal printed cell pitch
  ScanProfile scan;            ///< typical scan-back distortion

  /// Physical model for capacity reporting (experiment E5).
  double frame_pitch_mm = 0;   ///< media length consumed per frame
  double reel_length_mm = 0;   ///< 0 when not reel-based (paper sheets)
};

/// Canon ImageRunner 6255i laser printer + flatbed rescan, A4 at 600 dpi
/// (the paper-archive experiment E4; 26 emblems, ~50 KB/page).
MediaProfile PaperA4Laser600();

/// EPM/Kodak IMAGELINK 9600 archive writer: 3888x5498 bitonal frames on
/// 16 mm microfilm, rescanned at ~5000x7000 (experiment E5; 1.3 GB per
/// 66 m reel).
MediaProfile Microfilm16mm();

/// Arrilaser recorder: 2048x1556 (2K) full-aperture frames on 35 mm film,
/// scanned in grayscale 4K (4096x3120) on a DFT Scanity. The paper found
/// these scans "sharper, low-distortion" compared to microfilm — the
/// profile's blur/jitter/lens parameters encode exactly that observation
/// (experiment E6/E12).
MediaProfile CinemaFilm35mm();

/// All three profiles.
std::vector<MediaProfile> AllProfiles();

}  // namespace media
}  // namespace ule

#endif  // ULE_MEDIA_PROFILES_H_
