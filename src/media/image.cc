#include "media/image.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "support/io.h"

namespace ule {
namespace media {

uint8_t Image::at_clamped(int x, int y) const {
  x = std::clamp(x, 0, width_ - 1);
  y = std::clamp(y, 0, height_ - 1);
  return at(x, y);
}

double Image::Sample(double x, double y) const {
  const int x0 = static_cast<int>(std::floor(x));
  const int y0 = static_cast<int>(std::floor(y));
  const double fx = x - x0;
  const double fy = y - y0;
  const double a = at_clamped(x0, y0);
  const double b = at_clamped(x0 + 1, y0);
  const double c = at_clamped(x0, y0 + 1);
  const double d = at_clamped(x0 + 1, y0 + 1);
  return a * (1 - fx) * (1 - fy) + b * fx * (1 - fy) + c * (1 - fx) * fy +
         d * fx * fy;
}

void Image::FillRect(int x, int y, int w, int h, uint8_t v) {
  const int x1 = std::min(x + w, width_);
  const int y1 = std::min(y + h, height_);
  for (int yy = std::max(0, y); yy < y1; ++yy) {
    for (int xx = std::max(0, x); xx < x1; ++xx) set(xx, yy, v);
  }
}

Bytes Image::ToPgm() const {
  std::string header = "P5\n" + std::to_string(width_) + " " +
                       std::to_string(height_) + "\n255\n";
  Bytes out = ToBytes(header);
  out.insert(out.end(), pixels_.begin(), pixels_.end());
  return out;
}

namespace {

// Parses "P5\n<w> <h>\n<max>\n" style headers with arbitrary whitespace and
// '#' comments. Returns the offset of the first pixel byte.
Result<size_t> ParseNetpbmHeader(BytesView data, const char* magic, int* w,
                                 int* h, int* maxval, bool has_maxval) {
  size_t pos = 0;
  auto skip_space = [&]() {
    while (pos < data.size()) {
      if (std::isspace(data[pos])) {
        ++pos;
      } else if (data[pos] == '#') {
        while (pos < data.size() && data[pos] != '\n') ++pos;
      } else {
        break;
      }
    }
  };
  if (data.size() < 2 || data[0] != magic[0] || data[1] != magic[1]) {
    return Status::Corruption(std::string("not a ") + magic + " image");
  }
  pos = 2;
  auto read_int = [&]() -> Result<int> {
    skip_space();
    int v = 0;
    bool any = false;
    while (pos < data.size() && std::isdigit(data[pos])) {
      v = v * 10 + (data[pos] - '0');
      ++pos;
      any = true;
    }
    if (!any) return Status::Corruption("bad netpbm header");
    return v;
  };
  ULE_ASSIGN_OR_RETURN(*w, read_int());
  ULE_ASSIGN_OR_RETURN(*h, read_int());
  if (has_maxval) {
    ULE_ASSIGN_OR_RETURN(*maxval, read_int());
  }
  if (pos >= data.size() || !std::isspace(data[pos])) {
    return Status::Corruption("bad netpbm header terminator");
  }
  ++pos;  // single whitespace after header
  return pos;
}

}  // namespace

Result<Image> Image::FromPgm(BytesView data) {
  int w, h, maxval = 255;
  ULE_ASSIGN_OR_RETURN(size_t pos,
                       ParseNetpbmHeader(data, "P5", &w, &h, &maxval, true));
  if (w <= 0 || h <= 0 || maxval != 255) {
    return Status::Corruption("unsupported PGM geometry");
  }
  const size_t need = static_cast<size_t>(w) * h;
  if (data.size() - pos < need) return Status::Corruption("truncated PGM");
  Image img(w, h);
  std::copy(data.begin() + pos, data.begin() + pos + need,
            img.pixels_.begin());
  return img;
}

Bytes Image::ToPbm() const {
  std::string header = "P4\n" + std::to_string(width_) + " " +
                       std::to_string(height_) + "\n";
  Bytes out = ToBytes(header);
  const int row_bytes = (width_ + 7) / 8;
  for (int y = 0; y < height_; ++y) {
    for (int b = 0; b < row_bytes; ++b) {
      uint8_t byte = 0;
      for (int i = 0; i < 8; ++i) {
        const int x = b * 8 + i;
        const bool black = (x < width_) && at(x, y) < 128;
        byte = static_cast<uint8_t>((byte << 1) | (black ? 1 : 0));
      }
      out.push_back(byte);
    }
  }
  return out;
}

Result<Image> Image::FromPbm(BytesView data) {
  int w, h, unused = 0;
  ULE_ASSIGN_OR_RETURN(size_t pos,
                       ParseNetpbmHeader(data, "P4", &w, &h, &unused, false));
  if (w <= 0 || h <= 0) return Status::Corruption("bad PBM geometry");
  const int row_bytes = (w + 7) / 8;
  const size_t need = static_cast<size_t>(row_bytes) * h;
  if (data.size() - pos < need) return Status::Corruption("truncated PBM");
  Image img(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const uint8_t byte = data[pos + static_cast<size_t>(y) * row_bytes + x / 8];
      const bool black = (byte >> (7 - (x % 8))) & 1;
      img.set(x, y, black ? 0 : 255);
    }
  }
  return img;
}

Status Image::SavePgm(const std::string& path) const {
  return WriteFileBytes(path, ToPgm());
}

Result<Image> Image::LoadPgm(const std::string& path) {
  ULE_ASSIGN_OR_RETURN(Bytes data, ReadFileBytes(path));
  return FromPgm(data);
}

Status Image::SavePbm(const std::string& path) const {
  return WriteFileBytes(path, ToPbm());
}

Result<Image> Image::LoadPbm(const std::string& path) {
  ULE_ASSIGN_OR_RETURN(Bytes data, ReadFileBytes(path));
  return FromPbm(data);
}

}  // namespace media
}  // namespace ule
