#include "media/scanner.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace ule {
namespace media {
namespace {

constexpr double kPi = 3.14159265358979323846;

uint8_t ClampPixel(double v) {
  return static_cast<uint8_t>(std::clamp(v, 0.0, 255.0));
}

// Separable Gaussian blur with a compact kernel.
Image Blur(const Image& src, double sigma) {
  if (sigma <= 0.01) return src;
  const int radius = std::max(1, static_cast<int>(std::ceil(sigma * 3)));
  std::vector<double> kernel(static_cast<size_t>(2 * radius + 1));
  double sum = 0;
  for (int i = -radius; i <= radius; ++i) {
    kernel[static_cast<size_t>(i + radius)] =
        std::exp(-(i * i) / (2 * sigma * sigma));
    sum += kernel[static_cast<size_t>(i + radius)];
  }
  for (auto& k : kernel) k /= sum;

  Image tmp(src.width(), src.height());
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < src.width(); ++x) {
      double acc = 0;
      for (int i = -radius; i <= radius; ++i) {
        acc += kernel[static_cast<size_t>(i + radius)] * src.at_clamped(x + i, y);
      }
      tmp.set(x, y, ClampPixel(acc));
    }
  }
  Image out(src.width(), src.height());
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < src.width(); ++x) {
      double acc = 0;
      for (int i = -radius; i <= radius; ++i) {
        acc += kernel[static_cast<size_t>(i + radius)] * tmp.at_clamped(x, y + i);
      }
      out.set(x, y, ClampPixel(acc));
    }
  }
  return out;
}

void AddDustAndScratches(Image* img, const ScanProfile& p, Rng* rng) {
  const double megapixels =
      static_cast<double>(img->width()) * img->height() / 1e6;
  const int specks = static_cast<int>(p.dust_per_megapixel * megapixels);
  for (int i = 0; i < specks; ++i) {
    const int cx = static_cast<int>(rng->Below(static_cast<uint64_t>(img->width())));
    const int cy = static_cast<int>(rng->Below(static_cast<uint64_t>(img->height())));
    const int r = 1 + static_cast<int>(rng->Below(static_cast<uint64_t>(p.dust_max_radius)));
    // Dust is dark on paper scans, bright on negatives; alternate.
    const uint8_t shade = rng->Chance(0.7) ? 20 : 235;
    for (int dy = -r; dy <= r; ++dy) {
      for (int dx = -r; dx <= r; ++dx) {
        if (dx * dx + dy * dy > r * r) continue;
        const int x = cx + dx;
        const int y = cy + dy;
        if (x >= 0 && x < img->width() && y >= 0 && y < img->height()) {
          img->set(x, y, shade);
        }
      }
    }
  }
  for (int s = 0; s < p.scratch_count; ++s) {
    const int x0 = static_cast<int>(rng->Below(static_cast<uint64_t>(img->width())));
    double x = x0;
    const double drift = (rng->NextDouble() - 0.5) * 0.2;
    for (int y = 0; y < img->height(); ++y) {
      const int xi = static_cast<int>(x);
      if (xi >= 0 && xi < img->width()) img->set(xi, y, 30);
      x += drift;
    }
  }
}

void ApplyFadeAndVignette(Image* img, const ScanProfile& p, Rng* rng) {
  if (p.fade <= 0 && p.vignette <= 0) return;
  const double cx = img->width() / 2.0;
  const double cy = img->height() / 2.0;
  const double rmax = std::sqrt(cx * cx + cy * cy);
  // A couple of random "hot spots" accompany strong fading (paper §3.1).
  const int hotspots = p.fade > 0.2 ? 2 : 0;
  std::vector<std::array<double, 3>> spots;
  for (int i = 0; i < hotspots; ++i) {
    spots.push_back({rng->NextDouble() * img->width(),
                     rng->NextDouble() * img->height(),
                     rmax * 0.15});
  }
  for (int y = 0; y < img->height(); ++y) {
    for (int x = 0; x < img->width(); ++x) {
      double v = img->at(x, y);
      if (p.fade > 0) v = 128 + (v - 128) * (1 - p.fade);
      if (p.vignette > 0) {
        const double r = std::sqrt((x - cx) * (x - cx) + (y - cy) * (y - cy));
        v *= 1.0 - p.vignette * (r / rmax) * (r / rmax);
      }
      for (const auto& s : spots) {
        const double d2 = (x - s[0]) * (x - s[0]) + (y - s[1]) * (y - s[1]);
        if (d2 < s[2] * s[2]) {
          v = 128 + (v - 128) * 0.5;  // local contrast collapse
        }
      }
      img->set(x, y, ClampPixel(v));
    }
  }
}

}  // namespace

Image Age(const Image& stored, const ScanProfile& profile) {
  Image out = stored;
  Rng rng(profile.seed ^ 0xA6EDA6EDull);
  ApplyFadeAndVignette(&out, profile, &rng);
  AddDustAndScratches(&out, profile, &rng);
  return out;
}

Image Scan(const Image& printed, const ScanProfile& p) {
  Rng rng(p.seed);
  const int out_w = std::max(1, static_cast<int>(printed.width() * p.scale));
  const int out_h = std::max(1, static_cast<int>(printed.height() * p.scale));
  Image out(out_w, out_h);

  const double theta = p.rotation_deg * kPi / 180.0;
  const double cos_t = std::cos(theta);
  const double sin_t = std::sin(theta);
  const double cx = out_w / 2.0;
  const double cy = out_h / 2.0;
  const double norm = std::sqrt(cx * cx + cy * cy);

  // Per-row jitter: smooth oscillation plus a small random walk, modelling
  // unsteady mechanical feed in linear-array scanners.
  std::vector<double> row_jitter(static_cast<size_t>(out_h), 0.0);
  double walk = 0.0;
  for (int y = 0; y < out_h; ++y) {
    walk += (rng.NextDouble() - 0.5) * 0.1 * p.jitter_amplitude;
    walk *= 0.98;
    row_jitter[static_cast<size_t>(y)] =
        p.jitter_amplitude * std::sin(2 * kPi * y / p.jitter_period) * 0.5 +
        walk;
  }

  for (int y = 0; y < out_h; ++y) {
    for (int x = 0; x < out_w; ++x) {
      // Inverse geometric chain: jitter, then rotation, then lens, then
      // scale back into the printed image's coordinates.
      double sx = x - cx + row_jitter[static_cast<size_t>(y)];
      double sy = y - cy;
      // Barrel distortion: displace radially by k1 * (r/norm)^2.
      const double r2 = (sx * sx + sy * sy) / (norm * norm);
      const double lens = 1.0 + p.barrel_k1 * r2;
      sx *= lens;
      sy *= lens;
      // Rotation around the centre.
      const double rx = sx * cos_t - sy * sin_t;
      const double ry = sx * sin_t + sy * cos_t;
      const double px = (rx + cx) / p.scale;
      const double py = (ry + cy) / p.scale;
      double v = printed.Sample(px, py);
      if (p.noise_sigma > 0) v += rng.NextGaussian() * p.noise_sigma;
      out.set(x, y, ClampPixel(v));
    }
  }

  Image blurred = Blur(out, p.blur_sigma);
  ApplyFadeAndVignette(&blurred, p, &rng);
  AddDustAndScratches(&blurred, p, &rng);

  if (p.bitonal) {
    for (auto& px : blurred.mutable_pixels()) px = (px < 128) ? 0 : 255;
  }
  return blurred;
}

}  // namespace media
}  // namespace ule
