#include "rs/reed_solomon.h"

#include <algorithm>
#include <cassert>

#include "rs/gf256.h"

namespace ule {
namespace rs {
namespace {

using G = Gf256;

// First consecutive root: parity roots are alpha^1 .. alpha^(n-k).
constexpr int kFcr = 1;

// --- Ascending-order polynomial helpers (p[i] is the coefficient of x^i) ---

using Poly = std::vector<uint8_t>;

Poly MulAsc(const Poly& a, const Poly& b) {
  Poly out(a.size() + b.size() - 1, 0);
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0) continue;
    for (size_t j = 0; j < b.size(); ++j) {
      out[i + j] = static_cast<uint8_t>(out[i + j] ^ G::Mul(a[i], b[j]));
    }
  }
  return out;
}

uint8_t EvalAsc(const Poly& p, uint8_t z) {
  // Horner from the top coefficient down.
  uint8_t acc = 0;
  for (size_t i = p.size(); i-- > 0;) {
    acc = static_cast<uint8_t>(G::Mul(acc, z) ^ p[i]);
  }
  return acc;
}

// Product modulo x^limit.
Poly MulAscMod(const Poly& a, const Poly& b, size_t limit) {
  Poly out = MulAsc(a, b);
  if (out.size() > limit) out.resize(limit);
  return out;
}

// Formal derivative in characteristic 2: even-power terms vanish.
Poly DerivativeAsc(const Poly& p) {
  Poly out;
  for (size_t i = 1; i < p.size(); i += 2) {
    out.push_back(p[i]);      // coefficient of x^(i-1)
    if (i + 1 < p.size()) out.push_back(0);
  }
  if (out.empty()) out.push_back(0);
  return out;
}

size_t DegreeAsc(const Poly& p) {
  size_t d = 0;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] != 0) d = i;
  }
  return d;
}

}  // namespace

Codec::Codec(int n, int k) : n_(n), k_(k) {
  assert(n >= 2 && n <= 255 && k >= 1 && k < n);
  // Monic generator, descending powers: prod_{i=fcr}^{fcr+r-1} (x - alpha^i).
  generator_ = {1};
  for (int i = 0; i < n_ - k_; ++i) {
    const uint8_t root = G::Exp(kFcr + i);
    Bytes next(generator_.size() + 1, 0);
    for (size_t j = 0; j < generator_.size(); ++j) {
      next[j] ^= generator_[j];                       // * x
      next[j + 1] ^= G::Mul(generator_[j], root);     // * root (minus == plus)
    }
    generator_ = std::move(next);
  }
}

Result<Bytes> Codec::Encode(BytesView data) const {
  if (static_cast<int>(data.size()) != k_) {
    return Status::InvalidArgument("RS encode: expected " + std::to_string(k_) +
                                   " bytes, got " + std::to_string(data.size()));
  }
  // Polynomial long division of data * x^(n-k) by the generator; the
  // remainder is the parity. Classic LFSR formulation.
  Bytes work(data.begin(), data.end());
  work.resize(static_cast<size_t>(n_), 0);
  for (int i = 0; i < k_; ++i) {
    const uint8_t coef = work[i];
    if (coef == 0) continue;
    // work[i + j] ^= generator_[j] * coef for j in [1, r] — one bulk
    // multiply-accumulate over the generator tail per data symbol.
    G::MulSliceAccum(&work[static_cast<size_t>(i) + 1], generator_.data() + 1,
                     coef, generator_.size() - 1);
  }
  Bytes codeword(data.begin(), data.end());
  codeword.insert(codeword.end(), work.begin() + k_, work.end());
  return codeword;
}

std::vector<Bytes> Codec::ParityWeights() const {
  std::vector<Bytes> rows(static_cast<size_t>(k_));
  Bytes unit(static_cast<size_t>(k_), 0);
  for (int i = 0; i < k_; ++i) {
    unit[static_cast<size_t>(i)] = 1;
    Bytes cw = Encode(unit).TakeValue();  // size == k_: cannot fail
    rows[static_cast<size_t>(i)] = Bytes(cw.begin() + k_, cw.end());
    unit[static_cast<size_t>(i)] = 0;
  }
  return rows;
}

uint8_t Codec::SyndromeFactor(int i, int pos) const {
  assert(i >= 0 && i < n_ - k_ && pos >= 0 && pos < n_);
  return G::Exp(((kFcr + i) * (n_ - 1 - pos)) % 255);
}

Result<std::vector<std::vector<uint8_t>>> InvertGf256Matrix(
    std::vector<std::vector<uint8_t>> a) {
  const size_t n = a.size();
  std::vector<std::vector<uint8_t>> inv(n, std::vector<uint8_t>(n, 0));
  for (size_t i = 0; i < n; ++i) inv[i][i] = 1;
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    while (pivot < n && a[pivot][col] == 0) ++pivot;
    if (pivot == n) {
      return Status::ExecutionFault(
          "singular reconstruction matrix (RS code is MDS; this is a bug)");
    }
    std::swap(a[pivot], a[col]);
    std::swap(inv[pivot], inv[col]);
    const uint8_t inv_pivot = G::Inv(a[col][col]);
    for (size_t j = 0; j < n; ++j) {
      a[col][j] = G::Mul(a[col][j], inv_pivot);
      inv[col][j] = G::Mul(inv[col][j], inv_pivot);
    }
    for (size_t row = 0; row < n; ++row) {
      if (row == col || a[row][col] == 0) continue;
      const uint8_t factor = a[row][col];
      for (size_t j = 0; j < n; ++j) {
        a[row][j] =
            static_cast<uint8_t>(a[row][j] ^ G::Mul(factor, a[col][j]));
        inv[row][j] =
            static_cast<uint8_t>(inv[row][j] ^ G::Mul(factor, inv[col][j]));
      }
    }
  }
  return inv;
}

Result<Bytes> Codec::Decode(BytesView codeword, const std::vector<int>& erasures,
                            DecodeInfo* info) const {
  if (static_cast<int>(codeword.size()) != n_) {
    return Status::InvalidArgument("RS decode: expected " + std::to_string(n_) +
                                   " bytes, got " +
                                   std::to_string(codeword.size()));
  }
  std::vector<int> erasures_unique = erasures;
  std::sort(erasures_unique.begin(), erasures_unique.end());
  erasures_unique.erase(
      std::unique(erasures_unique.begin(), erasures_unique.end()),
      erasures_unique.end());

  const int r = n_ - k_;
  if (static_cast<int>(erasures_unique.size()) > r) {
    return Status::Corruption("RS decode: " + std::to_string(erasures.size()) +
                              " erasures exceed parity " + std::to_string(r));
  }
  for (int pos : erasures_unique) {
    if (pos < 0 || pos >= n_) {
      return Status::InvalidArgument("RS decode: erasure position out of range");
    }
  }

  Bytes received(codeword.begin(), codeword.end());

  // Syndromes S_i = C(alpha^(fcr+i)). Codeword index a has polynomial degree
  // n-1-a, so Horner over the array in transmission order is exactly the
  // descending-order evaluation.
  Poly synd(static_cast<size_t>(r), 0);
  bool all_zero = true;
  for (int i = 0; i < r; ++i) {
    uint8_t acc = 0;
    const uint8_t z = G::Exp(kFcr + i);
    for (int a = 0; a < n_; ++a) acc = static_cast<uint8_t>(G::Mul(acc, z) ^ received[a]);
    synd[static_cast<size_t>(i)] = acc;
    if (acc != 0) all_zero = false;
  }
  if (all_zero) {
    if (info) *info = DecodeInfo{};
    return Bytes(received.begin(), received.begin() + k_);
  }

  // Erasure locator Gamma(x) = prod (1 - X_m x), X_m = alpha^(n-1-pos).
  Poly gamma = {1};
  for (int pos : erasures_unique) {
    const uint8_t x_m = G::Exp(n_ - 1 - pos);
    gamma = MulAsc(gamma, Poly{1, x_m});  // (1 + X_m x): minus == plus
  }

  // Modified (Forney) syndromes T(x) = S(x) * Gamma(x) mod x^r.
  Poly t = MulAscMod(synd, gamma, static_cast<size_t>(r));

  // Berlekamp–Massey over the Forney syndrome sequence U_t = T[rho + t],
  // t in [0, r - rho): with the erasure contribution cancelled, those
  // coefficients obey the error-only LFSR generated by Lambda(x).
  Poly lambda = {1};
  Poly prev_b = {1};
  int big_l = 0;
  int m = 1;
  uint8_t b = 1;
  const int rho = static_cast<int>(erasures_unique.size());
  for (int step = 0; step < r - rho; ++step) {
    uint8_t delta = t[static_cast<size_t>(rho + step)];
    for (int i = 1; i <= big_l; ++i) {
      if (static_cast<size_t>(i) < lambda.size() && step - i >= 0) {
        delta ^= G::Mul(lambda[static_cast<size_t>(i)],
                        t[static_cast<size_t>(rho + step - i)]);
      }
    }
    if (delta == 0) {
      ++m;
      continue;
    }
    // lambda -= (delta/b) * x^m * prev_b
    Poly adjusted(prev_b.size() + static_cast<size_t>(m), 0);
    const uint8_t scale = G::Div(delta, b);
    for (size_t i = 0; i < prev_b.size(); ++i) {
      adjusted[i + static_cast<size_t>(m)] = G::Mul(prev_b[i], scale);
    }
    Poly next = lambda;
    if (next.size() < adjusted.size()) next.resize(adjusted.size(), 0);
    for (size_t i = 0; i < adjusted.size(); ++i) next[i] ^= adjusted[i];
    if (2 * big_l <= step) {
      prev_b = lambda;
      b = delta;
      big_l = step + 1 - big_l;
      m = 1;
    } else {
      ++m;
    }
    lambda = std::move(next);
  }
  const size_t nu = DegreeAsc(lambda);
  if (static_cast<int>(nu) != big_l || 2 * static_cast<int>(nu) + rho > r) {
    return Status::Corruption("RS decode: too many errors (locator degree " +
                              std::to_string(nu) + ", erasures " +
                              std::to_string(rho) + ")");
  }

  // Combined errata locator Psi = Lambda * Gamma.
  Poly psi = MulAsc(lambda, gamma);

  // Chien search: position a is errata iff Psi(X_a^{-1}) == 0.
  std::vector<int> positions;
  for (int a = 0; a < n_; ++a) {
    const int exp_pos = n_ - 1 - a;
    const uint8_t x_inv = G::Exp(255 - (exp_pos % 255));
    if (EvalAsc(psi, x_inv) == 0) positions.push_back(a);
  }
  if (positions.size() != DegreeAsc(psi)) {
    return Status::Corruption("RS decode: errata locator has wrong root count");
  }

  // Evaluator Omega = S * Psi mod x^r; Forney with fcr = 1:
  // e = X^(1-fcr) * Omega(X^{-1}) / Psi'(X^{-1}) = Omega(Xinv)/Psi'(Xinv).
  Poly omega = MulAscMod(synd, psi, static_cast<size_t>(r));
  Poly psi_prime = DerivativeAsc(psi);
  for (int a : positions) {
    const int exp_pos = n_ - 1 - a;
    const uint8_t x_inv = G::Exp(255 - (exp_pos % 255));
    const uint8_t denom = EvalAsc(psi_prime, x_inv);
    if (denom == 0) {
      return Status::Corruption("RS decode: Forney denominator is zero");
    }
    const uint8_t num = EvalAsc(omega, x_inv);
    received[a] ^= G::Div(num, denom);
  }

  // Verify: all syndromes must vanish after correction.
  for (int i = 0; i < r; ++i) {
    uint8_t acc = 0;
    const uint8_t z = G::Exp(kFcr + i);
    for (int a = 0; a < n_; ++a) acc = static_cast<uint8_t>(G::Mul(acc, z) ^ received[a]);
    if (acc != 0) {
      return Status::Corruption("RS decode: residual syndrome after correction");
    }
  }

  if (info) {
    info->erasures_corrected = rho;
    info->errors_corrected = static_cast<int>(positions.size()) - rho;
    if (info->errors_corrected < 0) info->errors_corrected = 0;
  }
  return Bytes(received.begin(), received.begin() + k_);
}

}  // namespace rs
}  // namespace ule
