#include "rs/gf256.h"

#include <array>
#include <cassert>

#include "support/kernels.h"

namespace ule {
namespace rs {
namespace {

struct Tables {
  std::array<uint8_t, 512> exp;
  std::array<uint8_t, 256> log;

  Tables() {
    uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[i] = static_cast<uint8_t>(x);
      log[x] = static_cast<uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11D;
    }
    for (int i = 255; i < 512; ++i) exp[i] = exp[i - 255];
    log[0] = 0;  // unused; Log(0) asserts
  }
};

const Tables& T() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint8_t Gf256::Exp(int i) {
  assert(i >= 0 && i < 512);
  return T().exp[i];
}

uint8_t Gf256::Log(uint8_t x) {
  assert(x != 0 && "log of zero");
  return T().log[x];
}

uint8_t Gf256::Mul(uint8_t a, uint8_t b) {
  if (a == 0 || b == 0) return 0;
  return T().exp[T().log[a] + T().log[b]];
}

uint8_t Gf256::Div(uint8_t a, uint8_t b) {
  assert(b != 0 && "division by zero in GF(256)");
  if (a == 0) return 0;
  return T().exp[T().log[a] + 255 - T().log[b]];
}

uint8_t Gf256::Pow(uint8_t x, int power) {
  if (x == 0) return power == 0 ? 1 : 0;
  int e = (T().log[x] * power) % 255;
  if (e < 0) e += 255;
  return T().exp[e];
}

uint8_t Gf256::Inv(uint8_t x) {
  assert(x != 0 && "inverse of zero");
  return T().exp[255 - T().log[x]];
}

void Gf256::MulSliceAccum(uint8_t* dst, const uint8_t* src, uint8_t factor,
                          size_t n) {
  kernels::Gf256MulAccum(dst, src, factor, n);
}

}  // namespace rs
}  // namespace ule
