/// \file reed_solomon.h
/// \brief Systematic Reed–Solomon codec over GF(256) with combined
/// error + erasure decoding.
///
/// This implements both layers of the paper's bidimensional protection
/// (§3.1):
///  * the **inner** code RS(255,223): each block carries 223 user bytes and
///    32 redundancy bytes and corrects up to 16 unknown byte errors —
///    "up to 7.2% damaged data within a single emblem";
///  * the **outer** code RS(20,17): per byte position across a group of
///    17 data emblems, 3 parity bytes allow full restoration when any
///    3 whole emblems of the 20 are missing (erasure decoding).
///
/// Decoder: Berlekamp–Massey over Forney-modified syndromes, Chien search,
/// Forney magnitude evaluation. First consecutive root fcr = 1.

#ifndef ULE_RS_REED_SOLOMON_H_
#define ULE_RS_REED_SOLOMON_H_

#include <vector>

#include "support/bytes.h"
#include "support/status.h"

namespace ule {
namespace rs {

/// Outcome details of a successful decode (how much correction happened).
struct DecodeInfo {
  int errors_corrected = 0;    ///< unknown-position corrections
  int erasures_corrected = 0;  ///< known-position corrections
};

/// \brief RS(n, k) codec, n <= 255. Codeword layout: [k data bytes][n-k
/// parity bytes]. Shortened codes (n < 255) are supported directly.
class Codec {
 public:
  /// \param n codeword length in bytes (2..255)
  /// \param k data length in bytes (1..n-1)
  Codec(int n, int k);

  int n() const { return n_; }
  int k() const { return k_; }
  /// Number of parity bytes (n - k).
  int parity() const { return n_ - k_; }
  /// Maximum number of correctable unknown errors (no erasures).
  int max_errors() const { return (n_ - k_) / 2; }

  /// Encodes exactly k data bytes into an n-byte codeword.
  Result<Bytes> Encode(BytesView data) const;

  /// Decodes an n-byte codeword (possibly corrupted) back to k data bytes.
  /// \param codeword received word, size must be n
  /// \param erasures positions (0-based codeword indices) known to be bad
  /// \param info optional: filled with correction counts on success
  /// Fails with Corruption when 2*errors + erasures exceeds n-k.
  Result<Bytes> Decode(BytesView codeword, const std::vector<int>& erasures = {},
                       DecodeInfo* info = nullptr) const;

  /// \brief Parity weight rows of the systematic code.
  ///
  /// Row i (k rows of parity() bytes each) is the parity of the i-th
  /// unit data vector; parity is linear in the data, so the parity of
  /// any word is `XOR_i data[i] * row_i`. Callers encoding many
  /// codewords that share byte positions (one codeword per byte column
  /// across a group of streams) can therefore produce whole parity
  /// *rows* with `Gf256::MulSliceAccum` — byte-identical to per-column
  /// Encode, k*parity() multiplies per row instead of per byte.
  std::vector<Bytes> ParityWeights() const;

  /// \brief The GF(256) weight of codeword byte `pos` in syndrome S_i,
  /// i.e. alpha^((fcr + i) * (n-1-pos)) for i in [0, parity()).
  ///
  /// Lets callers accumulate the syndromes of whole byte rows (one
  /// MulSliceAccum per present row) for bulk erasure reconstruction;
  /// matches exactly what Decode computes per codeword.
  uint8_t SyndromeFactor(int i, int pos) const;

 private:
  int n_;
  int k_;
  Bytes generator_;  // monic generator polynomial, descending powers
};

/// Inverts a square GF(256) matrix by Gauss–Jordan elimination. Every
/// matrix the erasure paths build from surviving streams of an MDS code
/// is invertible; a singular input fails with ExecutionFault (caller
/// bookkeeping bug, not data damage).
Result<std::vector<std::vector<uint8_t>>> InvertGf256Matrix(
    std::vector<std::vector<uint8_t>> a);

}  // namespace rs
}  // namespace ule

#endif  // ULE_RS_REED_SOLOMON_H_
