/// \file gf256.h
/// \brief GF(2^8) arithmetic for Reed–Solomon coding.
///
/// Field: GF(256) with primitive polynomial x^8+x^4+x^3+x^2+1 (0x11D) and
/// generator alpha = 2 — the conventional choice for RS(255,223), the inner
/// emblem code in the paper (223 data + 32 parity bytes per block).

#ifndef ULE_RS_GF256_H_
#define ULE_RS_GF256_H_

#include <cstddef>
#include <cstdint>

namespace ule {
namespace rs {

/// Table-driven GF(256) arithmetic. All operations are total; division by
/// zero is a programming error (asserted in debug builds).
class Gf256 {
 public:
  /// alpha^i for i in [0, 510) (doubled table avoids a modulo in Mul).
  static uint8_t Exp(int i);
  /// Discrete log base alpha; Log(0) is undefined (asserted).
  static uint8_t Log(uint8_t x);

  static uint8_t Mul(uint8_t a, uint8_t b);
  static uint8_t Div(uint8_t a, uint8_t b);
  static uint8_t Pow(uint8_t x, int power);
  static uint8_t Inv(uint8_t x);

  /// Bulk multiply-accumulate: `dst[i] ^= factor * src[i]` for i in
  /// [0, n). `dst` and `src` must not overlap. This is the one GF
  /// primitive worth vectorizing — RS encode, parity striping, and
  /// erasure reconstruction are all linear combinations of byte rows —
  /// and it routes through the runtime-dispatched SIMD kernel layer
  /// (support/kernels.h), byte-identical to `Mul` per element.
  static void MulSliceAccum(uint8_t* dst, const uint8_t* src, uint8_t factor,
                            size_t n);
};

}  // namespace rs
}  // namespace ule

#endif  // ULE_RS_GF256_H_
