#include "decoders/dbdecode.h"

#include <cassert>

#include "dynarisc/assembler.h"

namespace ule {
namespace decoders {
namespace {

/// DBDecode in DynaRisc assembly.
///
/// Register conventions:
///   R0       SYS I/O byte
///   R1       result/byte in flight
///   R2, R3   LZSS: bit buffer (left-aligned) + bits left
///            LZAC: range + code of the arithmetic decoder
///   R4, R5   tree node / loop counters
///   R6, R7   scratch
///   D2       memory pointer for variable/context access
///   D3       stack pointer
///
/// Memory map (.equ, beyond the loaded image — zero-initialised):
///   0x7000  variables (16-bit each)
///   0x7100  LZAC contexts, 355 bytes (runtime-initialised to 128)
///   0x8000  LZ77 window ring buffer, 8192 bytes
///   0xFF00  stack top
constexpr std::string_view kSource = R"(
; ---------------------------------------------------------------- layout
.equ REMLO,    0x7000      ; remaining output bytes, low word
.equ REMHI,    0x7002      ; remaining output bytes, high word
.equ WPOSV,    0x7004      ; window write counter
.equ DISTV,    0x7006      ; current match distance
.equ PREVM,    0x7008      ; LZAC: previous-token-was-match flag
.equ TREEB,    0x700A      ; LZAC: current bit-tree base
.equ SCHEMEV,  0x700C      ; container scheme byte
.equ CTX,      0x7100      ; LZAC context probabilities (355 bytes)
.equ CTXLIT,   0x7102      ; CTX + 2
.equ CTXDIST,  0x7202      ; CTX + 258
.equ CTXLEN,   0x7242      ; CTX + 322
.equ CTXDIRECT,0x7262      ; CTX + 354
.equ WINDOW,   0x8000      ; 8 KiB ring buffer (aligned: mask 0x1FFF)
.equ STACKTOP, 0xFF00

.entry main

; ------------------------------------------------------------------ main
main:
      LDI   R1, #STACKTOP
      MOVE  D3, R1
      ; initialise the 355 LZAC contexts to probability 128
      LDI   R6, #CTX
      MOVE  D2, R6
      LDI   R7, #355
      LDI   R1, #128
ctx_init:
      STM.B R1, [D2+]
      LDI   R6, #1
      SUB   R7, R6
      JNZ   ctx_init
      ; container magic "UDB1"
      SYS   #0
      LDI   R7, #'U'
      CMP   R0, R7
      JNZ   fail
      SYS   #0
      LDI   R7, #'D'
      CMP   R0, R7
      JNZ   fail
      SYS   #0
      LDI   R7, #'B'
      CMP   R0, R7
      JNZ   fail
      SYS   #0
      LDI   R7, #'1'
      CMP   R0, R7
      JNZ   fail
      ; scheme byte
      SYS   #0
      LDI   R6, #SCHEMEV
      MOVE  D2, R6
      STM.W R0, [D2]
      ; raw length, 4 bytes little-endian -> REMLO/REMHI
      SYS   #0
      MOVE  R6, R0
      SYS   #0
      MOVE  R7, R0
      LSL   R7, #8
      OR    R6, R7
      LDI   R7, #REMLO
      MOVE  D2, R7
      STM.W R6, [D2]
      SYS   #0
      MOVE  R6, R0
      SYS   #0
      MOVE  R7, R0
      LSL   R7, #8
      OR    R6, R7
      LDI   R7, #REMHI
      MOVE  D2, R7
      STM.W R6, [D2]
      ; payload CRC: 4 bytes, not rechecked here (the emblem layer already
      ; guarantees integrity; see DESIGN.md)
      SYS   #0
      SYS   #0
      SYS   #0
      SYS   #0
      ; dispatch on scheme
      LDI   R6, #SCHEMEV
      MOVE  D2, R6
      LDM.W R6, [D2]
      LDI   R7, #0
      CMP   R6, R7
      JZ    store_loop
      LDI   R7, #1
      CMP   R6, R7
      JZ    lzss_start
      LDI   R7, #2
      CMP   R6, R7
      JZ    lzac_start
fail:
      SYS   #2

done:
      SYS   #2

; --------------------------------------------------------------- helpers
; remzero: sets Z iff no output bytes remain. Clobbers R6, R7, D2.
remzero:
      LDI   R6, #REMLO
      MOVE  D2, R6
      LDM.W R6, [D2]
      LDI   R7, #REMHI
      MOVE  D2, R7
      LDM.W R7, [D2]
      OR    R6, R7
      RET

; emit: writes the byte in R1 to the output and the window, decrements the
; remaining count. Clobbers R0, R6, R7, D2. Preserves R1..R5.
emit:
      MOVE  R0, R1
      SYS   #1
      ; window[wpos & 0x1FFF] = byte
      LDI   R6, #WPOSV
      MOVE  D2, R6
      LDM.W R6, [D2]
      MOVE  R7, R6
      LDI   R0, #0x1FFF
      AND   R7, R0
      LDI   R0, #WINDOW
      ADD   R7, R0
      MOVE  D2, R7
      STM.B R1, [D2]
      ; wpos += 1
      LDI   R7, #WPOSV
      MOVE  D2, R7
      LDI   R7, #1
      ADD   R6, R7
      STM.W R6, [D2]
      ; remaining -= 1 (32-bit)
      LDI   R7, #REMLO
      MOVE  D2, R7
      LDM.W R6, [D2]
      LDI   R7, #1
      SUB   R6, R7
      STM.W R6, [D2]
      JNC   emit_ret
      LDI   R7, #REMHI
      MOVE  D2, R7
      LDM.W R6, [D2]
      LDI   R7, #1
      SUB   R6, R7
      STM.W R6, [D2]
emit_ret:
      RET

; copymatch: copies R4 bytes from distance DISTV back in the window,
; re-emitting them (overlap-correct: the read position is recomputed from
; the advancing write position each byte). Stops early when the output is
; complete. Clobbers R0, R1, R6, R7, D2, R4.
copymatch:
      CALL  remzero
      JZ    copym_ret
      LDI   R6, #WPOSV
      MOVE  D2, R6
      LDM.W R6, [D2]
      LDI   R7, #DISTV
      MOVE  D2, R7
      LDM.W R7, [D2]
      SUB   R6, R7
      LDI   R7, #0x1FFF
      AND   R6, R7
      LDI   R7, #WINDOW
      ADD   R6, R7
      MOVE  D2, R6
      LDM.B R1, [D2]
      CALL  emit
      LDI   R7, #1
      SUB   R4, R7
      JNZ   copymatch
copym_ret:
      RET

; ------------------------------------------------------------- scheme 0
store_loop:
      CALL  remzero
      JZ    done
      SYS   #0
      JC    done
      MOVE  R1, R0
      CALL  emit
      JUMP  store_loop

; ------------------------------------------------------------- scheme 1
; LZSS bit reader: R2 = buffer (current byte left-aligned in bits 15..8),
; R3 = bits left.
; getbit: returns the next stream bit in R1. Clobbers R0, R6, R7.
getbit:
      LDI   R7, #0
      CMP   R3, R7
      JNZ   getbit_have
      SYS   #0
      JNC   getbit_fill
      LDI   R0, #0           ; past end of stream: zero bits
getbit_fill:
      MOVE  R2, R0
      LSL   R2, #8
      LDI   R3, #8
getbit_have:
      LDI   R1, #0
      MOVE  R6, R2
      LDI   R7, #0x8000
      AND   R6, R7
      JZ    getbit_zero
      LDI   R1, #1
getbit_zero:
      LSL   R2, #1
      LDI   R7, #1
      SUB   R3, R7
      RET

; getbits: reads R5 bits MSB-first into R4. Clobbers R0, R1, R5, R6, R7.
getbits:
      LDI   R4, #0
getbits_loop:
      CALL  getbit
      LSL   R4, #1
      OR    R4, R1
      LDI   R7, #1
      SUB   R5, R7
      JNZ   getbits_loop
      RET

lzss_start:
      LDI   R3, #0           ; bit buffer empty
lzss_loop:
      CALL  remzero
      JZ    done
      CALL  getbit
      LDI   R7, #0
      CMP   R1, R7
      JZ    lzss_literal
      ; match token: 13-bit distance-1, 5-bit length-3
      LDI   R5, #13
      CALL  getbits
      LDI   R7, #1
      ADD   R4, R7
      LDI   R6, #DISTV
      MOVE  D2, R6
      STM.W R4, [D2]
      LDI   R5, #5
      CALL  getbits
      LDI   R7, #3
      ADD   R4, R7
      CALL  copymatch
      JUMP  lzss_loop
lzss_literal:
      LDI   R5, #8
      CALL  getbits
      MOVE  R1, R4
      CALL  emit
      JUMP  lzss_loop

; ------------------------------------------------------------- scheme 2
; Adaptive binary arithmetic decoder, 16-bit state (see
; src/dbcoder/rangecoder.h for the normative spec):
;   R2 = range, R3 = code.
; decodebit: context address in R6 -> bit in R1.
; Clobbers R0, R6, R7, D2. Preserves R4, R5.
decodebit:
      MOVE  D2, R6
      LDM.B R7, [D2]         ; prob
      MOVE  R6, R2
      LSR   R6, #8
      MUL   R6, R7           ; bound = (range >> 8) * prob
      CMP   R3, R6
      JC    decbit_zero      ; code < bound
      ; bit = 1
      SUB   R3, R6           ; code  -= bound
      SUB   R2, R6           ; range -= bound
      MOVE  R1, R7
      LSR   R1, #4
      SUB   R7, R1           ; prob -= prob >> 4
      STM.B R7, [D2]
      LDI   R1, #1
      JUMP  decbit_norm
decbit_zero:
      MOVE  R2, R6           ; range = bound
      LDI   R1, #256
      SUB   R1, R7
      LSR   R1, #4
      ADD   R7, R1           ; prob += (256 - prob) >> 4
      STM.B R7, [D2]
      LDI   R1, #0
decbit_norm:
      LDI   R6, #0x100
      CMP   R2, R6
      JNC   decbit_done      ; range >= 0x100
      LSL   R2, #8
      LSL   R3, #8
      SYS   #0
      JNC   decbit_byte
      LDI   R0, #0
decbit_byte:
      OR    R3, R0
      JUMP  decbit_norm
decbit_done:
      RET

; treedec: bit-tree decode. R6 = tree base address, R5 = bit count.
; Returns the raw node in R4 (caller subtracts 1 << bits).
; Clobbers R0, R1, R5, R6, R7, D2.
treedec:
      LDI   R7, #TREEB
      MOVE  D2, R7
      STM.W R6, [D2]
      LDI   R4, #1
treedec_loop:
      LDI   R7, #TREEB
      MOVE  D2, R7
      LDM.W R6, [D2]
      ADD   R6, R4
      LDI   R7, #1
      SUB   R6, R7           ; ctx = base + node - 1
      CALL  decodebit
      LSL   R4, #1
      OR    R4, R1
      LDI   R7, #1
      SUB   R5, R7
      JNZ   treedec_loop
      RET

lzac_start:
      LDI   R2, #0xFFFF      ; range
      SYS   #0               ; the spec's discarded first byte
      SYS   #0
      JNC   lzac_c1
      LDI   R0, #0
lzac_c1:
      MOVE  R3, R0
      LSL   R3, #8
      SYS   #0
      JNC   lzac_c2
      LDI   R0, #0
lzac_c2:
      OR    R3, R0           ; code = first two payload bytes
lzac_loop:
      CALL  remzero
      JZ    done
      ; flag context: CTX + prev_match
      LDI   R6, #PREVM
      MOVE  D2, R6
      LDM.W R7, [D2]
      LDI   R6, #CTX
      ADD   R6, R7
      CALL  decodebit
      LDI   R7, #0
      CMP   R1, R7
      JNZ   lzac_match
      ; literal: 8-bit tree
      LDI   R6, #CTXLIT
      LDI   R5, #8
      CALL  treedec
      LDI   R7, #256
      SUB   R4, R7
      MOVE  R1, R4
      CALL  emit
      LDI   R6, #PREVM
      MOVE  D2, R6
      LDI   R7, #0
      STM.W R7, [D2]
      JUMP  lzac_loop
lzac_match:
      ; distance: 6 tree bits then 7 direct bits, then +1
      LDI   R6, #CTXDIST
      LDI   R5, #6
      CALL  treedec
      LDI   R7, #64
      SUB   R4, R7
      LDI   R5, #7
lzac_direct:
      LDI   R6, #CTXDIRECT
      CALL  decodebit
      LSL   R4, #1
      OR    R4, R1
      LDI   R7, #1
      SUB   R5, R7
      JNZ   lzac_direct
      LDI   R7, #1
      ADD   R4, R7
      LDI   R6, #DISTV
      MOVE  D2, R6
      STM.W R4, [D2]
      ; length: 5 tree bits, then + kMinMatch
      LDI   R6, #CTXLEN
      LDI   R5, #5
      CALL  treedec
      LDI   R7, #32
      SUB   R4, R7
      LDI   R7, #3
      ADD   R4, R7
      CALL  copymatch
      LDI   R6, #PREVM
      MOVE  D2, R6
      LDI   R7, #1
      STM.W R7, [D2]
      JUMP  lzac_loop
)";

}  // namespace

std::string_view DbDecodeSource() { return kSource; }

const dynarisc::Program& DbDecodeProgram() {
  static const dynarisc::Program kProgram = [] {
    auto assembled = dynarisc::Assemble(kSource);
    assert(assembled.ok() && "DBDecode assembly failed");
    return assembled.TakeValue();
  }();
  return kProgram;
}

}  // namespace decoders
}  // namespace ule
