/// \file modecode.h
/// \brief MODecode: the MOCoder decoder written in DynaRisc assembly.
///
/// This program is archived *as text* in the Bootstrap document (letters,
/// Part III) because it is the decoder that turns scanned emblems back into
/// bytes — it cannot itself be stored as emblems (paper §3.2). It runs on
/// the (nested) Olonys emulator.
///
/// ## I/O protocol
/// Input: the cell-grid side N as two little-endian bytes, then the N*N
/// sampled data-area intensities (row-major, 0 = black) produced by the
/// host-side preprocessing step (mocoder::SampleEmblem or, in the future,
/// whatever image library the user has — the Bootstrap describes the
/// sampling).
/// Output: the emblem's RS-corrected container — blocks*223 bytes: the
/// 20-byte header followed by the payload (+ zero padding). Header parsing,
/// payload CRC verification and outer-code reassembly are host steps
/// documented in the Bootstrap.
///
/// On unrecoverable damage (an RS block beyond 16 errors) the program
/// halts early; truncated output signals the failure.
///
/// Implementation limit: N <= 1000 (blocks <= 226), so the interleaved
/// codeword buffer fits the 16-bit address space. Paper-scale emblems
/// (N = 942 on A4, N = 962 on microfilm) fit.

#ifndef ULE_DECODERS_MODECODE_H_
#define ULE_DECODERS_MODECODE_H_

#include <string_view>

#include "dynarisc/machine.h"
#include "support/bytes.h"

namespace ule {
namespace decoders {

/// The DynaRisc assembly source of MODecode.
std::string_view ModecodeSource();

/// The assembled program (cached).
const dynarisc::Program& ModecodeProgram();

/// Packs an intensity grid into the program's input format.
Bytes PackModecodeInput(BytesView intensities, int data_side);

}  // namespace decoders
}  // namespace ule

#endif  // ULE_DECODERS_MODECODE_H_
