/// \file dbdecode.h
/// \brief DBDecode: the DBCoder decoder written in DynaRisc assembly.
///
/// This is the program that gets archived as *system emblems* (paper §3.3,
/// step 5): at restoration time it runs inside the (nested) Olonys emulator
/// and converts the DBCoder container back into the textual archive. It
/// implements the `store`, `lzss` and `lzac` schemes — including the full
/// adaptive binary arithmetic decoder — in 16-bit assembly. The `columnar`
/// scheme is an archival-side experiment and is not part of the archived
/// decoder (DESIGN.md §7).
///
/// I/O protocol: the DBCoder container arrives on the SYS #0 input stream;
/// decompressed bytes leave through SYS #1. A malformed container (bad
/// magic or scheme) halts with no/partial output.

#ifndef ULE_DECODERS_DBDECODE_H_
#define ULE_DECODERS_DBDECODE_H_

#include <string_view>

#include "dynarisc/machine.h"

namespace ule {
namespace decoders {

/// The DynaRisc assembly source of DBDecode (embedded listing).
std::string_view DbDecodeSource();

/// The assembled program (cached; assembly is deterministic).
const dynarisc::Program& DbDecodeProgram();

}  // namespace decoders
}  // namespace ule

#endif  // ULE_DECODERS_DBDECODE_H_
