#include "decoders/modecode.h"

#include <cassert>

#include "dynarisc/assembler.h"

namespace ule {
namespace decoders {
namespace {

/// MODecode in DynaRisc assembly. See modecode.h for the I/O protocol and
/// dbdecode.cc for the register conventions shared by the archived
/// decoders.
///
/// Memory map (.equ addresses beyond the image are zero-initialised):
///   0x1400  GF(256) exp table, 510 bytes (doubled to avoid mod 255)
///   0x1600  GF(256) log table, 256 bytes
///   0x1700  RS scratch: synd[32] lambda[33] prevb[33] tmpp[33] omega[32]
///   0x1800  codeword buffer, 255 bytes
///   0x1900  variables
///   0x1A00  row buffer (<= 1000 bytes)
///   0x1E00  interleaved coded bytes (blocks*255, <= 57630)
///   0xFFF0  stack top
constexpr std::string_view kSource = R"(
; ---------------------------------------------------------------- layout
.equ GFEXP,    0x1400
.equ GFLOG,    0x1600
.equ SYND,     0x1700      ; 32 bytes
.equ LAMBDA,   0x1720      ; 33 bytes
.equ PREVB,    0x1748      ; 33 bytes
.equ TMPP,     0x1770      ; 33 bytes
.equ OMEGA,    0x1798      ; 32 bytes
.equ CWBUF,    0x1800      ; 255 bytes
; variables (16-bit words)
.equ NV,       0x1900      ; grid side N
.equ THRV,     0x1902      ; threshold (kept in R1 during demod)
.equ BLOCKSV,  0x1904
.equ CODEDLENV,0x1906      ; blocks*255
.equ CODEDPOSV,0x1908      ; bytes packed so far
.equ ROWV,     0x190A
.equ IVV,      0x190C      ; inner cell counter
.equ SALOV,    0x190E      ; 32-bit sum A (sync phase A)
.equ SAHIV,    0x1910
.equ SBLOV,    0x1912
.equ SBHIV,    0x1914
.equ CAV,      0x1916      ; phase A cell count
.equ CBV,      0x1918
.equ AZV,      0x191A      ; OR of all syndromes of current block
.equ SIV,      0x191C      ; syndrome index
.equ BLKV,     0x191E      ; current block
.equ BMLV,     0x1920      ; BM: L
.equ BMMV,     0x1922      ; BM: m
.equ BMBV,     0x1924      ; BM: b
.equ BMDV,     0x1926      ; BM: delta
.equ BMSV,     0x1928      ; BM: step
.equ DEGV,     0x192A      ; deg(lambda)
.equ ROOTSV,   0x192C      ; Chien root count
.equ XINVV,    0x192E      ; current X^-1
.equ POSAV,    0x1930      ; current position a
.equ MEANAV,   0x1932
.equ MEANBV,   0x1934
.equ ROWBUF,   0x1A00
.equ CODED,    0x1E00
.equ STACKTOP, 0xFFF0

.entry main

main:
      LDI   R1, #STACKTOP
      MOVE  D3, R1
      CALL  gf_init
      ; N (two bytes, little-endian)
      SYS   #0
      MOVE  R6, R0
      SYS   #0
      MOVE  R7, R0
      LSL   R7, #8
      OR    R6, R7
      LDI   R7, #NV
      MOVE  D2, R7
      STM.W R6, [D2]
      ; sanity: 8 <= N <= 1000
      LDI   R7, #8
      CMP   R6, R7
      JC    fail
      LDI   R7, #1001
      CMP   R6, R7
      JNC   fail
      ; bytes = (N * (N-1)) >> 4 ; blocks = bytes / 255
      MOVE  R4, R6
      LDI   R7, #1
      SUB   R4, R7           ; N-1
      MUL   R4, R6           ; product low in R4, high in HI
      MOVE  R5, HI
      LDI   R7, #4
shift16:
      LSR   R4, #1           ; 32-bit right shift by 1: low then carry-in
      MOVE  R6, R5
      LDI   R0, #1
      AND   R6, R0
      JZ    no_carry_bit
      LDI   R6, #0x8000
      OR    R4, R6
no_carry_bit:
      LSR   R5, #1
      LDI   R6, #1
      SUB   R7, R6
      JNZ   shift16
      ; R4 = bytes (R5 must now be zero for N <= 1000)
      LDI   R6, #0
      CMP   R5, R6
      JNZ   fail
      ; blocks = bytes / 255 by repeated subtraction
      LDI   R5, #0           ; quotient
div255:
      LDI   R7, #255
      CMP   R4, R7
      JC    div255_done
      SUB   R4, R7
      LDI   R7, #1
      ADD   R5, R7
      JUMP  div255
div255_done:
      LDI   R7, #0
      CMP   R5, R7
      JZ    fail             ; too small for one RS block
      LDI   R7, #227
      CMP   R5, R7
      JNC   fail             ; coded buffer would exceed the address space
      LDI   R6, #BLOCKSV
      MOVE  D2, R6
      STM.W R5, [D2]
      LDI   R7, #255
      MUL   R5, R7
      LDI   R6, #CODEDLENV
      MOVE  D2, R6
      STM.W R5, [D2]
      CALL  sync_row
      CALL  demod_rows
      CALL  rs_blocks
      SYS   #2

fail:
      SYS   #2

; ----------------------------------------------------------- GF tables
; exp[i] = alpha^i (doubled to 510 entries), log[exp[i]] = i.
gf_init:
      LDI   R4, #1           ; x
      LDI   R5, #0           ; i
gfi_loop:
      LDI   R6, #GFEXP
      ADD   R6, R5
      MOVE  D2, R6
      STM.B R4, [D2]
      LDI   R6, #GFLOG
      MOVE  R7, R4
      LDI   R0, #0xFF
      AND   R7, R0
      ADD   R6, R7
      MOVE  D2, R6
      STM.B R5, [D2]
      LSL   R4, #1
      MOVE  R6, R4
      LDI   R7, #0x100
      AND   R6, R7
      JZ    gfi_nored
      LDI   R7, #0x11D
      XOR   R4, R7
gfi_nored:
      LDI   R7, #1
      ADD   R5, R7
      LDI   R7, #255
      CMP   R5, R7
      JNZ   gfi_loop
      ; duplicate: exp[255+i] = exp[i]
      LDI   R5, #0
gfi_dup:
      LDI   R6, #GFEXP
      ADD   R6, R5
      MOVE  D2, R6
      LDM.B R4, [D2]
      LDI   R6, #GFEXP
      ADD   R6, R5
      LDI   R7, #255
      ADD   R6, R7
      MOVE  D2, R6
      STM.B R4, [D2]
      LDI   R7, #1
      ADD   R5, R7
      LDI   R7, #255
      CMP   R5, R7
      JNZ   gfi_dup
      RET

; gfmul: R6 = R6 * R7 in GF(256). Clobbers R0, R7, D2.
gfmul:
      LDI   R0, #0
      CMP   R6, R0
      JZ    gfmul_zero
      CMP   R7, R0
      JZ    gfmul_zero
      LDI   R0, #GFLOG
      ADD   R6, R0
      MOVE  D2, R6
      LDM.B R6, [D2]
      LDI   R0, #GFLOG
      ADD   R7, R0
      MOVE  D2, R7
      LDM.B R7, [D2]
      ADD   R6, R7
      LDI   R0, #GFEXP
      ADD   R6, R0
      MOVE  D2, R6
      LDM.B R6, [D2]
      RET
gfmul_zero:
      LDI   R6, #0
      RET

; gfdiv: R6 = R6 / R7 in GF(256), R7 != 0. Clobbers R0, R7, D2.
gfdiv:
      LDI   R0, #0
      CMP   R6, R0
      JZ    gfdiv_zero
      LDI   R0, #GFLOG
      ADD   R6, R0
      MOVE  D2, R6
      LDM.B R6, [D2]
      LDI   R0, #GFLOG
      ADD   R7, R0
      MOVE  D2, R7
      LDM.B R7, [D2]
      LDI   R0, #255
      ADD   R6, R0
      SUB   R6, R7
      LDI   R0, #GFEXP
      ADD   R6, R0
      MOVE  D2, R6
      LDM.B R6, [D2]
      RET
gfdiv_zero:
      LDI   R6, #0
      RET

; ------------------------------------------------------------- sync row
; Reads row 0, accumulates 32-bit sums per 2-cell phase, derives the
; demodulation threshold (meanA + meanB) / 2 into THRV.
sync_row:
      LDI   R6, #NV
      MOVE  D2, R6
      LDM.W R5, [D2]         ; N cells to read
      LDI   R4, #0           ; x
sync_cell:
      SYS   #0
      ; phase: ((x >> 1) & 1) == 0 -> A
      MOVE  R6, R4
      LSR   R6, #1
      LDI   R7, #1
      AND   R6, R7
      JZ    sync_a
      ; B: SB += v ; CB += 1
      LDI   R6, #SBLOV
      MOVE  D2, R6
      LDM.W R6, [D2]
      ADD   R6, R0
      STM.W R6, [D2]
      JNC   sync_b_nc
      LDI   R6, #SBHIV
      MOVE  D2, R6
      LDM.W R6, [D2]
      LDI   R7, #1
      ADD   R6, R7
      STM.W R6, [D2]
sync_b_nc:
      LDI   R6, #CBV
      MOVE  D2, R6
      LDM.W R6, [D2]
      LDI   R7, #1
      ADD   R6, R7
      STM.W R6, [D2]
      JUMP  sync_next
sync_a:
      LDI   R6, #SALOV
      MOVE  D2, R6
      LDM.W R6, [D2]
      ADD   R6, R0
      STM.W R6, [D2]
      JNC   sync_a_nc
      LDI   R6, #SAHIV
      MOVE  D2, R6
      LDM.W R6, [D2]
      LDI   R7, #1
      ADD   R6, R7
      STM.W R6, [D2]
sync_a_nc:
      LDI   R6, #CAV
      MOVE  D2, R6
      LDM.W R6, [D2]
      LDI   R7, #1
      ADD   R6, R7
      STM.W R6, [D2]
sync_next:
      LDI   R7, #1
      ADD   R4, R7
      SUB   R5, R7
      JNZ   sync_cell
      ; meanA = SA / CA ; meanB = SB / CB (32/16 division, quotient <= 255)
      LDI   R6, #SALOV
      MOVE  D2, R6
      LDM.W R2, [D2]
      LDI   R6, #SAHIV
      MOVE  D2, R6
      LDM.W R3, [D2]
      LDI   R6, #CAV
      MOVE  D2, R6
      LDM.W R5, [D2]
      CALL  div32
      LDI   R6, #MEANAV
      MOVE  D2, R6
      STM.W R4, [D2]
      LDI   R6, #SBLOV
      MOVE  D2, R6
      LDM.W R2, [D2]
      LDI   R6, #SBHIV
      MOVE  D2, R6
      LDM.W R3, [D2]
      LDI   R6, #CBV
      MOVE  D2, R6
      LDM.W R5, [D2]
      CALL  div32
      LDI   R6, #MEANAV
      MOVE  D2, R6
      LDM.W R6, [D2]
      ADD   R6, R4
      LSR   R6, #1
      LDI   R7, #THRV
      MOVE  D2, R7
      STM.W R6, [D2]
      ; zero contrast is undecodable
      LDI   R6, #MEANAV
      MOVE  D2, R6
      LDM.W R6, [D2]
      CMP   R6, R4
      JZ    fail
      RET

; div32: R4 = (R3:R2) / R5 for small quotients (repeated subtraction;
; quotient <= 255 because the dividend is a sum of <= N intensity bytes).
; Clobbers R2, R3, R6, R7.
div32:
      LDI   R4, #0
div32_loop:
      LDI   R7, #0
      CMP   R3, R7
      JNZ   div32_sub        ; high word nonzero -> definitely >= divisor
      CMP   R2, R5
      JC    div32_done       ; low < divisor
div32_sub:
      MOVE  R6, R2
      SUB   R2, R5
      JNC   div32_nb
      LDI   R7, #1
      SUB   R3, R7
div32_nb:
      LDI   R7, #1
      ADD   R4, R7
      JUMP  div32_loop
div32_done:
      RET

; ----------------------------------------------------------- demodulate
; Rows 1..N-1 arrive row-major; the serpentine alternates direction.
; R1 = threshold, R2 = packing byte, R3 = bit count in R2,
; R4 = half-flag, R5 = first-half level, D1 = coded write pointer.
demod_rows:
      LDI   R6, #THRV
      MOVE  D2, R6
      LDM.W R1, [D2]
      LDI   R2, #0
      LDI   R3, #0
      LDI   R4, #0
      LDI   R6, #CODED
      MOVE  D1, R6
      LDI   R6, #ROWV
      MOVE  D2, R6
      LDI   R7, #1
      STM.W R7, [D2]
drow_loop:
      ; read one row into ROWBUF
      LDI   R6, #ROWBUF
      MOVE  D0, R6
      LDI   R6, #NV
      MOVE  D2, R6
      LDM.W R7, [D2]
drow_read:
      SYS   #0
      STM.B R0, [D0+]
      LDI   R6, #1
      SUB   R7, R6
      JNZ   drow_read
      ; IV = N
      LDI   R6, #NV
      MOVE  D2, R6
      LDM.W R7, [D2]
      LDI   R6, #IVV
      MOVE  D2, R6
      STM.W R7, [D2]
      ; direction = (row - 1) & 1
      LDI   R6, #ROWV
      MOVE  D2, R6
      LDM.W R6, [D2]
      LDI   R7, #1
      SUB   R6, R7
      AND   R6, R7
      JZ    drow_forward
      ; ------- backward row: D0 = ROWBUF + N, pre-decrement
      LDI   R6, #NV
      MOVE  D2, R6
      LDM.W R6, [D2]
      LDI   R7, #ROWBUF
      ADD   R6, R7
      MOVE  D0, R6
bcell:
      MOVE  R6, D0
      LDI   R7, #1
      SUB   R6, R7
      MOVE  D0, R6
      LDM.B R6, [D0]
      CMP   R6, R1
      JC    bcell_black
      LDI   R6, #0
      JUMP  bcell_have
bcell_black:
      LDI   R6, #1
bcell_have:
      CALL  half_cell
      LDI   R6, #IVV
      MOVE  D2, R6
      LDM.W R7, [D2]
      LDI   R6, #1
      SUB   R7, R6
      LDI   R6, #IVV
      MOVE  D2, R6
      STM.W R7, [D2]
      LDI   R6, #0
      CMP   R7, R6           ; LDI/MOVE update Z; re-test the counter
      JNZ   bcell
      JUMP  drow_next
      ; ------- forward row
drow_forward:
      LDI   R6, #ROWBUF
      MOVE  D0, R6
fcell:
      LDM.B R6, [D0+]
      CMP   R6, R1
      JC    fcell_black
      LDI   R6, #0
      JUMP  fcell_have
fcell_black:
      LDI   R6, #1
fcell_have:
      CALL  half_cell
      LDI   R6, #IVV
      MOVE  D2, R6
      LDM.W R7, [D2]
      LDI   R6, #1
      SUB   R7, R6
      LDI   R6, #IVV
      MOVE  D2, R6
      STM.W R7, [D2]
      LDI   R6, #0
      CMP   R7, R6           ; LDI/MOVE update Z; re-test the counter
      JNZ   fcell
drow_next:
      ; ++row; stop when row == N
      LDI   R6, #ROWV
      MOVE  D2, R6
      LDM.W R6, [D2]
      LDI   R7, #1
      ADD   R6, R7
      LDI   R7, #ROWV
      MOVE  D2, R7
      STM.W R6, [D2]
      LDI   R7, #NV
      MOVE  D2, R7
      LDM.W R7, [D2]
      CMP   R6, R7
      JNZ   drow_loop
      RET

; half_cell: consumes one demodulated cell level in R6. Differential
; Manchester: a bit is the XOR of its two half-cells. Preserves R1;
; clobbers R0, R6, R7, D2.
half_cell:
      LDI   R7, #0
      CMP   R4, R7
      JNZ   half_second
      MOVE  R5, R6
      LDI   R4, #1
      RET
half_second:
      LDI   R4, #0
      XOR   R6, R5           ; bit
      ; drop bits beyond the coded stream
      LDI   R7, #CODEDPOSV
      MOVE  D2, R7
      LDM.W R7, [D2]
      LDI   R0, #CODEDLENV
      MOVE  D2, R0
      LDM.W R0, [D2]
      CMP   R7, R0
      JNC   half_ret         ; pos >= len
      LSL   R2, #1
      OR    R2, R6
      LDI   R7, #1
      ADD   R3, R7
      LDI   R7, #8
      CMP   R3, R7
      JNZ   half_ret
      STM.B R2, [D1+]
      LDI   R3, #0
      LDI   R7, #CODEDPOSV
      MOVE  D2, R7
      LDM.W R7, [D2]
      LDI   R6, #1
      ADD   R7, R6
      LDI   R6, #CODEDPOSV
      MOVE  D2, R6
      STM.W R7, [D2]
half_ret:
      RET

; ------------------------------------------------------------ RS blocks
rs_blocks:
      LDI   R6, #BLKV
      MOVE  D2, R6
      LDI   R7, #0
      STM.W R7, [D2]
blk_loop:
      ; gather codeword: cw[j] = coded[j*blocks + blk]
      LDI   R6, #BLKV
      MOVE  D2, R6
      LDM.W R4, [D2]         ; idx = blk
      LDI   R6, #BLOCKSV
      MOVE  D2, R6
      LDM.W R2, [D2]         ; step
      LDI   R6, #CWBUF
      MOVE  D0, R6
      LDI   R5, #255
gather:
      MOVE  R6, R4
      LDI   R7, #CODED
      ADD   R6, R7
      MOVE  D2, R6
      LDM.B R6, [D2]
      STM.B R6, [D0+]
      ADD   R4, R2
      LDI   R7, #1
      SUB   R5, R7
      JNZ   gather
      ; syndromes S_i = cw evaluated at alpha^(i+1), i = 0..31
      LDI   R6, #AZV
      MOVE  D2, R6
      LDI   R7, #0
      STM.W R7, [D2]
      LDI   R6, #SIV
      MOVE  D2, R6
      STM.W R7, [D2]
syn_loop:
      LDI   R6, #SIV
      MOVE  D2, R6
      LDM.W R6, [D2]
      LDI   R7, #GFEXP
      ADD   R6, R7
      LDI   R7, #1
      ADD   R6, R7
      MOVE  D2, R6
      LDM.B R5, [D2]         ; z = exp[i+1]
      LDI   R4, #0           ; acc
      LDI   R6, #CWBUF
      MOVE  D1, R6
      LDI   R3, #255
syn_j:
      MOVE  R6, R4
      MOVE  R7, R5
      CALL  gfmul
      LDM.B R1, [D1+]
      XOR   R6, R1
      MOVE  R4, R6
      LDI   R7, #1
      SUB   R3, R7
      JNZ   syn_j
      ; store synd[i], accumulate the all-zero check
      LDI   R6, #SIV
      MOVE  D2, R6
      LDM.W R6, [D2]
      LDI   R7, #SYND
      ADD   R6, R7
      MOVE  D2, R6
      STM.B R4, [D2]
      LDI   R6, #AZV
      MOVE  D2, R6
      LDM.W R6, [D2]
      OR    R6, R4
      STM.W R6, [D2]
      LDI   R6, #SIV
      MOVE  D2, R6
      LDM.W R6, [D2]
      LDI   R7, #1
      ADD   R6, R7
      LDI   R7, #SIV
      MOVE  D2, R7
      STM.W R6, [D2]
      LDI   R7, #32
      CMP   R6, R7
      JNZ   syn_loop
      ; clean block?
      LDI   R6, #AZV
      MOVE  D2, R6
      LDM.W R6, [D2]
      LDI   R7, #0
      CMP   R6, R7
      JZ    blk_emit
      CALL  berlekamp
      CALL  chien_forney
blk_emit:
      ; emit the 223 data bytes of this codeword
      LDI   R6, #CWBUF
      MOVE  D1, R6
      LDI   R5, #223
emit_j:
      LDM.B R0, [D1+]
      SYS   #1
      LDI   R7, #1
      SUB   R5, R7
      JNZ   emit_j
      ; next block
      LDI   R6, #BLKV
      MOVE  D2, R6
      LDM.W R6, [D2]
      LDI   R7, #1
      ADD   R6, R7
      LDI   R7, #BLKV
      MOVE  D2, R7
      STM.W R6, [D2]
      LDI   R7, #BLOCKSV
      MOVE  D2, R7
      LDM.W R7, [D2]
      CMP   R6, R7
      JNZ   blk_loop
      RET

; ----------------------------------------------------- Berlekamp-Massey
; Error-only BM over SYND[0..31]; lambda (ascending) in LAMBDA[0..32].
berlekamp:
      ; lambda = [1,0,..], prevb = [1,0,..]
      LDI   R5, #33
      LDI   R6, #LAMBDA
      MOVE  D0, R6
      LDI   R6, #PREVB
      MOVE  D1, R6
      LDI   R7, #0
bm_clear:
      STM.B R7, [D0+]
      STM.B R7, [D1+]
      LDI   R6, #1
      SUB   R5, R6
      JNZ   bm_clear
      LDI   R6, #LAMBDA
      MOVE  D2, R6
      LDI   R7, #1
      STM.B R7, [D2]
      LDI   R6, #PREVB
      MOVE  D2, R6
      STM.B R7, [D2]
      ; L = 0, m = 1, b = 1, step = 0
      LDI   R6, #BMLV
      MOVE  D2, R6
      LDI   R7, #0
      STM.W R7, [D2]
      LDI   R6, #BMSV
      MOVE  D2, R6
      STM.W R7, [D2]
      LDI   R6, #BMMV
      MOVE  D2, R6
      LDI   R7, #1
      STM.W R7, [D2]
      LDI   R6, #BMBV
      MOVE  D2, R6
      STM.W R7, [D2]
bm_step:
      ; delta = synd[step] + sum_{i=1..L} lambda[i]*synd[step-i]
      LDI   R6, #BMSV
      MOVE  D2, R6
      LDM.W R4, [D2]         ; step
      LDI   R6, #SYND
      ADD   R6, R4
      MOVE  D2, R6
      LDM.B R5, [D2]         ; delta
      LDI   R3, #1           ; i
bm_delta:
      LDI   R6, #BMLV
      MOVE  D2, R6
      LDM.W R6, [D2]
      CMP   R6, R3
      JC    bm_delta_done    ; L < i
      CMP   R4, R3
      JC    bm_delta_done    ; step < i (synd index would go negative)
      LDI   R6, #LAMBDA
      ADD   R6, R3
      MOVE  D2, R6
      LDM.B R6, [D2]
      MOVE  R2, R4
      SUB   R2, R3
      LDI   R7, #SYND
      ADD   R2, R7
      MOVE  D2, R2
      LDM.B R7, [D2]
      CALL  gfmul
      XOR   R5, R6
      LDI   R7, #1
      ADD   R3, R7
      JUMP  bm_delta
bm_delta_done:
      LDI   R6, #BMDV
      MOVE  D2, R6
      STM.W R5, [D2]
      LDI   R7, #0
      CMP   R5, R7
      JNZ   bm_update
      ; delta == 0: ++m
      LDI   R6, #BMMV
      MOVE  D2, R6
      LDM.W R6, [D2]
      LDI   R7, #1
      ADD   R6, R7
      LDI   R7, #BMMV
      MOVE  D2, R7
      STM.W R6, [D2]
      JUMP  bm_next
bm_update:
      ; tmpp = lambda
      LDI   R5, #33
      LDI   R6, #LAMBDA
      MOVE  D0, R6
      LDI   R6, #TMPP
      MOVE  D1, R6
bm_copy:
      LDM.B R6, [D0+]
      STM.B R6, [D1+]
      LDI   R7, #1
      SUB   R5, R7
      JNZ   bm_copy
      ; scale = delta / b
      LDI   R6, #BMDV
      MOVE  D2, R6
      LDM.W R6, [D2]
      LDI   R7, #BMBV
      MOVE  D2, R7
      LDM.W R7, [D2]
      CALL  gfdiv
      MOVE  R2, R6           ; scale
      ; lambda[i+m] ^= prevb[i] * scale for i = 0 .. 32-m
      LDI   R3, #0           ; i
bm_adj:
      LDI   R6, #BMMV
      MOVE  D2, R6
      LDM.W R6, [D2]
      MOVE  R4, R3
      ADD   R4, R6           ; i + m
      LDI   R7, #33
      CMP   R4, R7
      JNC   bm_adj_done
      LDI   R6, #PREVB
      ADD   R6, R3
      MOVE  D2, R6
      LDM.B R6, [D2]
      MOVE  R7, R2
      CALL  gfmul
      MOVE  R7, R6
      LDI   R6, #LAMBDA
      ADD   R6, R4
      MOVE  D2, R6
      LDM.B R6, [D2]
      XOR   R6, R7
      STM.B R6, [D2]
      LDI   R7, #1
      ADD   R3, R7
      JUMP  bm_adj
bm_adj_done:
      ; if 2L <= step: prevb = tmpp; b = delta; L = step+1-L; m = 1
      ; else ++m
      LDI   R6, #BMLV
      MOVE  D2, R6
      LDM.W R6, [D2]
      LSL   R6, #1
      LDI   R7, #BMSV
      MOVE  D2, R7
      LDM.W R7, [D2]
      CMP   R7, R6
      JC    bm_inc_m         ; step < 2L
      ; swap branch
      LDI   R5, #33
      LDI   R6, #TMPP
      MOVE  D0, R6
      LDI   R6, #PREVB
      MOVE  D1, R6
bm_copy2:
      LDM.B R6, [D0+]
      STM.B R6, [D1+]
      LDI   R7, #1
      SUB   R5, R7
      JNZ   bm_copy2
      LDI   R6, #BMDV
      MOVE  D2, R6
      LDM.W R6, [D2]
      LDI   R7, #BMBV
      MOVE  D2, R7
      STM.W R6, [D2]
      LDI   R6, #BMSV
      MOVE  D2, R6
      LDM.W R6, [D2]
      LDI   R7, #1
      ADD   R6, R7
      LDI   R7, #BMLV
      MOVE  D2, R7
      LDM.W R7, [D2]
      SUB   R6, R7
      LDI   R7, #BMLV
      MOVE  D2, R7
      STM.W R6, [D2]
      LDI   R6, #BMMV
      MOVE  D2, R6
      LDI   R7, #1
      STM.W R7, [D2]
      JUMP  bm_next
bm_inc_m:
      LDI   R6, #BMMV
      MOVE  D2, R6
      LDM.W R6, [D2]
      LDI   R7, #1
      ADD   R6, R7
      STM.W R6, [D2]
bm_next:
      LDI   R6, #BMSV
      MOVE  D2, R6
      LDM.W R6, [D2]
      LDI   R7, #1
      ADD   R6, R7
      LDI   R7, #BMSV
      MOVE  D2, R7
      STM.W R6, [D2]
      LDI   R7, #32
      CMP   R6, R7
      JNZ   bm_step
      ; deg(lambda)
      LDI   R4, #0           ; deg
      LDI   R3, #0           ; i
deg_loop:
      LDI   R6, #LAMBDA
      ADD   R6, R3
      MOVE  D2, R6
      LDM.B R6, [D2]
      LDI   R7, #0
      CMP   R6, R7
      JZ    deg_zero
      MOVE  R4, R3
deg_zero:
      LDI   R7, #1
      ADD   R3, R7
      LDI   R7, #33
      CMP   R3, R7
      JNZ   deg_loop
      LDI   R6, #DEGV
      MOVE  D2, R6
      STM.W R4, [D2]
      ; consistency: deg == L and 2*deg <= 32
      LDI   R6, #BMLV
      MOVE  D2, R6
      LDM.W R6, [D2]
      CMP   R4, R6
      JNZ   fail
      LSL   R4, #1
      LDI   R7, #33
      CMP   R4, R7
      JNC   fail
      RET

; -------------------------------------------------------- Chien/Forney
chien_forney:
      ; omega = (synd * lambda) mod x^32
      LDI   R3, #0           ; i
om_i:
      LDI   R4, #0           ; acc
      LDI   R5, #0           ; k
om_k:
      CMP   R3, R5
      JC    om_k_done        ; i < k
      LDI   R6, #DEGV
      MOVE  D2, R6
      LDM.W R6, [D2]
      CMP   R6, R5
      JC    om_k_done        ; deg < k
      LDI   R6, #LAMBDA
      ADD   R6, R5
      MOVE  D2, R6
      LDM.B R6, [D2]
      MOVE  R2, R3
      SUB   R2, R5
      LDI   R7, #SYND
      ADD   R2, R7
      MOVE  D2, R2
      LDM.B R7, [D2]
      CALL  gfmul
      XOR   R4, R6
      LDI   R7, #1
      ADD   R5, R7
      JUMP  om_k
om_k_done:
      LDI   R6, #OMEGA
      ADD   R6, R3
      MOVE  D2, R6
      STM.B R4, [D2]
      LDI   R7, #1
      ADD   R3, R7
      LDI   R7, #32
      CMP   R3, R7
      JNZ   om_i
      ; Chien search over positions a = 0..254
      LDI   R6, #ROOTSV
      MOVE  D2, R6
      LDI   R7, #0
      STM.W R7, [D2]
      LDI   R6, #POSAV
      MOVE  D2, R6
      STM.W R7, [D2]
ch_a:
      ; xinv = exp[255 - (254 - a)] = exp[a + 1]
      LDI   R6, #POSAV
      MOVE  D2, R6
      LDM.W R6, [D2]
      LDI   R7, #GFEXP
      ADD   R6, R7
      LDI   R7, #1
      ADD   R6, R7
      MOVE  D2, R6
      LDM.B R6, [D2]
      LDI   R7, #XINVV
      MOVE  D2, R7
      STM.W R6, [D2]
      ; eval lambda(xinv), Horner over 0..deg from the top
      LDI   R6, #DEGV
      MOVE  D2, R6
      LDM.W R3, [D2]         ; i = deg
      LDI   R4, #0           ; acc
ch_ev:
      MOVE  R6, R4
      LDI   R7, #XINVV
      MOVE  D2, R7
      LDM.W R7, [D2]
      CALL  gfmul
      MOVE  R4, R6
      LDI   R6, #LAMBDA
      ADD   R6, R3
      MOVE  D2, R6
      LDM.B R6, [D2]
      XOR   R4, R6
      LDI   R7, #0
      CMP   R3, R7
      JZ    ch_ev_done
      LDI   R7, #1
      SUB   R3, R7
      JUMP  ch_ev
ch_ev_done:
      LDI   R7, #0
      CMP   R4, R7
      JNZ   ch_next
      CALL  forney
ch_next:
      LDI   R6, #POSAV
      MOVE  D2, R6
      LDM.W R6, [D2]
      LDI   R7, #1
      ADD   R6, R7
      LDI   R7, #POSAV
      MOVE  D2, R7
      STM.W R6, [D2]
      LDI   R7, #255
      CMP   R6, R7
      JNZ   ch_a
      ; all errata found?
      LDI   R6, #ROOTSV
      MOVE  D2, R6
      LDM.W R6, [D2]
      LDI   R7, #DEGV
      MOVE  D2, R7
      LDM.W R7, [D2]
      CMP   R6, R7
      JNZ   fail
      RET

; forney: corrects cw[a] for the current root. magnitude =
; omega(xinv) / lambda'(xinv) (fcr = 1). Clobbers R0..R7 except R1? uses all.
forney:
      LDI   R6, #ROOTSV
      MOVE  D2, R6
      LDM.W R6, [D2]
      LDI   R7, #1
      ADD   R6, R7
      LDI   R7, #ROOTSV
      MOVE  D2, R7
      STM.W R6, [D2]
      ; num = omega(xinv), Horner over 0..31
      LDI   R3, #31
      LDI   R4, #0
fo_num:
      MOVE  R6, R4
      LDI   R7, #XINVV
      MOVE  D2, R7
      LDM.W R7, [D2]
      CALL  gfmul
      MOVE  R4, R6
      LDI   R6, #OMEGA
      ADD   R6, R3
      MOVE  D2, R6
      LDM.B R6, [D2]
      XOR   R4, R6
      LDI   R7, #0
      CMP   R3, R7
      JZ    fo_num_done
      LDI   R7, #1
      SUB   R3, R7
      JUMP  fo_num
fo_num_done:
      ; den = sum over odd i <= deg of lambda[i] * xinv^(i-1)
      LDI   R6, #XINVV
      MOVE  D2, R6
      LDM.W R6, [D2]
      MOVE  R7, R6
      CALL  gfmul            ; xinv^2
      MOVE  R2, R6           ; xi2
      LDI   R5, #1           ; pw = 1
      LDI   R3, #1           ; i
      LDI   R0, #0
      LDI   R6, #BMDV        ; reuse BMDV as den accumulator
      MOVE  D2, R6
      STM.W R0, [D2]
fo_den:
      LDI   R6, #DEGV
      MOVE  D2, R6
      LDM.W R6, [D2]
      CMP   R6, R3
      JC    fo_den_done      ; deg < i
      LDI   R6, #LAMBDA
      ADD   R6, R3
      MOVE  D2, R6
      LDM.B R6, [D2]
      MOVE  R7, R5
      CALL  gfmul
      MOVE  R7, R6
      LDI   R6, #BMDV
      MOVE  D2, R6
      LDM.W R6, [D2]
      XOR   R6, R7
      STM.W R6, [D2]
      ; pw *= xi2 ; i += 2
      MOVE  R6, R5
      MOVE  R7, R2
      CALL  gfmul
      MOVE  R5, R6
      LDI   R7, #2
      ADD   R3, R7
      JUMP  fo_den
fo_den_done:
      LDI   R6, #BMDV
      MOVE  D2, R6
      LDM.W R7, [D2]
      LDI   R6, #0
      CMP   R7, R6
      JZ    fail
      MOVE  R6, R4
      CALL  gfdiv            ; magnitude = num / den
      MOVE  R7, R6
      ; cw[a] ^= magnitude
      LDI   R6, #POSAV
      MOVE  D2, R6
      LDM.W R6, [D2]
      LDI   R0, #CWBUF
      ADD   R6, R0
      MOVE  D2, R6
      LDM.B R6, [D2]
      XOR   R6, R7
      STM.B R6, [D2]
      RET
)";

}  // namespace

std::string_view ModecodeSource() { return kSource; }

const dynarisc::Program& ModecodeProgram() {
  static const dynarisc::Program kProgram = [] {
    auto assembled = dynarisc::Assemble(kSource);
    assert(assembled.ok() && "MODecode assembly failed");
    return assembled.TakeValue();
  }();
  return kProgram;
}

Bytes PackModecodeInput(BytesView intensities, int data_side) {
  ByteWriter w;
  w.PutU16(static_cast<uint16_t>(data_side));
  w.PutBytes(intensities);
  return w.TakeBytes();
}

}  // namespace decoders
}  // namespace ule
