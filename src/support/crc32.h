/// \file crc32.h
/// \brief CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
///
/// Used to validate emblem payload headers and DBCoder containers. The same
/// table-free bitwise definition is specified in the Bootstrap document so a
/// future implementer can recompute it from four lines of pseudocode.

#ifndef ULE_SUPPORT_CRC32_H_
#define ULE_SUPPORT_CRC32_H_

#include <cstdint>

#include "support/bytes.h"

namespace ule {

/// Computes CRC-32 over `data`, optionally chaining from a previous value.
uint32_t Crc32(BytesView data, uint32_t seed = 0);

}  // namespace ule

#endif  // ULE_SUPPORT_CRC32_H_
