/// \file kernels.h
/// \brief Runtime-dispatched SIMD kernels for the byte-bashing hot paths.
///
/// Everything durability-related digests whole files: `ulectl scrub` and
/// parity assessment CRC every byte of every reel, and the ULE-P1 stripe
/// transform runs a GF(256) multiply-accumulate over entire reel images.
/// Those two primitives — CRC-32 (IEEE, reflected 0xEDB88320) and
/// `dst[i] ^= factor * src[i]` over GF(2^8)/0x11D — are therefore the
/// only places in the tree where instruction selection matters, and this
/// header is their single home.
///
/// Design:
///  * one `KernelSet` per ISA tier — `scalar` (portable, always
///    compiled), `ssse3` (PSHUFB split-nibble GF multiply, PCLMUL CRC
///    folding where the CPU has it) and `avx2` (the same at 32
///    bytes/op) — built in per-ISA translation units compiled with the
///    matching `-m` flags and *only ever called* after a CPUID check;
///  * selection happens once, at first use, via `Active()` (a
///    thread-safe magic static): best tier the CPU supports, or
///    whatever the `ULE_KERNELS` environment variable forces
///    (`scalar|ssse3|avx2|auto`; an unavailable choice falls back to
///    `auto` with a one-line stderr warning, never a crash);
///  * every variant is **byte-identical to scalar by contract** — this
///    is an archival format, so a kernel that is "almost right" writes
///    checksums and parity that a future reader cannot reproduce. The
///    differential suite (tests/kernels_test.cc) asserts identity over
///    all compiled variants at every length 0..1025 and offset 0..31,
///    and CI runs the whole test matrix again with ULE_KERNELS=scalar.
///
/// Callers generally go through the domain wrappers (`ule::Crc32`,
/// `rs::Gf256::MulSliceAccum`) rather than this header directly.

#ifndef ULE_SUPPORT_KERNELS_H_
#define ULE_SUPPORT_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ule {
namespace kernels {

/// Raw CRC-32 register update: processes `n` bytes into the *working
/// register* (no pre/post inversion — the Crc32() wrapper owns the
/// `^ 0xFFFFFFFF` convention at both ends).
using Crc32Fn = uint32_t (*)(uint32_t crc, const uint8_t* data, size_t n);

/// GF(256) bulk multiply-accumulate: `dst[i] ^= factor * src[i]` for
/// i in [0, n), field polynomial 0x11D. `dst` and `src` must not
/// overlap. `factor == 0` is a no-op (zeros contribute nothing to a
/// linear combination).
using Gf256MulAccumFn = void (*)(uint8_t* dst, const uint8_t* src,
                                 uint8_t factor, size_t n);

/// One ISA tier's kernels plus the names a human needs in a bug report.
struct KernelSet {
  const char* name = "";        ///< "scalar" | "ssse3" | "avx2"
  const char* crc32_name = "";  ///< "slice8" | "pclmul"
  const char* gf256_name = "";  ///< "scalar" | "pshufb128" | "pshufb256"
  Crc32Fn crc32_update = nullptr;
  Gf256MulAccumFn gf256_mul_accum = nullptr;
};

/// The portable baseline (slice-by-8 CRC, split-nibble table GF). Always
/// available; the reference every other variant is tested against.
const KernelSet& Scalar();

/// Every compiled variant the *current CPU* can run, in ascending tier
/// order starting with scalar. Variants compiled in but not runnable
/// here (e.g. an avx2 TU on a pre-AVX2 machine) are not listed.
const std::vector<const KernelSet*>& Available();

/// Looks `name` up in Available(); nullptr when unknown or unavailable.
const KernelSet* FindByName(std::string_view name);

/// \brief The process-wide kernel set, resolved once at first use.
///
/// Resolution order: `ULE_KERNELS` if set (`scalar|ssse3|avx2` forces
/// that tier, `auto` or unset picks the best available; a forced tier
/// this CPU lacks warns on stderr and degrades to auto), else the
/// highest tier in Available(). Thread-safe; concurrent first calls
/// resolve exactly once (magic static).
const KernelSet& Active();

/// What Active() would resolve to for a given ULE_KERNELS value —
/// pure lookup, no environment read, no global state. Lets tests cover
/// the override parsing without forking.
const KernelSet& Resolve(std::string_view setting);

/// One line for `ulectl version` / bug reports, e.g.
/// "avx2 (crc32=pclmul, gf256=pshufb256); available: scalar ssse3 avx2".
std::string Describe();

/// Convenience forwarders through Active().
inline uint32_t Crc32Update(uint32_t crc, const uint8_t* data, size_t n) {
  return Active().crc32_update(crc, data, n);
}
inline void Gf256MulAccum(uint8_t* dst, const uint8_t* src, uint8_t factor,
                          size_t n) {
  Active().gf256_mul_accum(dst, src, factor, n);
}

}  // namespace kernels
}  // namespace ule

#endif  // ULE_SUPPORT_KERNELS_H_
