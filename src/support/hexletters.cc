#include "support/hexletters.h"

#include <cctype>

namespace ule {
namespace {

// Letter for nibble n: 'A' encodes 0xF, ..., 'P' encodes 0x0.
char LetterFor(unsigned nibble) { return static_cast<char>('A' + (0xF - nibble)); }

// Nibble for letter c, or -1 if not in A..P.
int NibbleFor(char c) {
  if (c < 'A' || c > 'P') return -1;
  return 0xF - (c - 'A');
}

}  // namespace

std::string HexLettersEncode(BytesView data, int wrap) {
  std::string out;
  out.reserve(data.size() * 2 + (wrap > 0 ? data.size() * 2 / wrap + 1 : 0));
  int col = 0;
  auto emit = [&](char c) {
    out.push_back(c);
    if (wrap > 0 && ++col == wrap) {
      out.push_back('\n');
      col = 0;
    }
  };
  for (uint8_t b : data) {
    emit(LetterFor(b >> 4));
    emit(LetterFor(b & 0xF));
  }
  if (wrap > 0 && col != 0) out.push_back('\n');
  return out;
}

Result<Bytes> HexLettersDecode(std::string_view text) {
  Bytes out;
  out.reserve(text.size() / 2);
  int pending = -1;  // high nibble awaiting its partner
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    const int nibble = NibbleFor(c);
    if (nibble < 0) {
      return Status::Corruption("invalid Bootstrap letter '" +
                                std::string(1, c) + "' at offset " +
                                std::to_string(i));
    }
    if (pending < 0) {
      pending = nibble;
    } else {
      out.push_back(static_cast<uint8_t>((pending << 4) | nibble));
      pending = -1;
    }
  }
  if (pending >= 0) {
    return Status::Corruption("odd number of Bootstrap letters");
  }
  return out;
}

}  // namespace ule
