#include "support/parallel.h"

#include <atomic>
#include <cstdlib>
#include <exception>

namespace ule {

int DefaultThreadCount() {
  if (const char* env = std::getenv("ULE_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int ResolveThreadCount(int threads) {
  return threads > 0 ? threads : DefaultThreadCount();
}

int SplitThreads(int threads, int branches) {
  if (branches < 1) branches = 1;
  const int total = ResolveThreadCount(threads);
  return total / branches > 0 ? total / branches : 1;
}

ThreadPool::ThreadPool(int thread_count) {
  const int n = ResolveThreadCount(thread_count);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) all_done_.notify_all();
    }
  }
}

Status ParallelFor(size_t begin, size_t end,
                   const std::function<Status(size_t)>& fn, int threads) {
  if (begin >= end) return Status::OK();
  const size_t count = end - begin;
  int workers = ResolveThreadCount(threads);
  if (static_cast<size_t>(workers) > count) {
    workers = static_cast<int>(count);
  }
  if (workers <= 1) {
    for (size_t i = begin; i < end; ++i) ULE_RETURN_IF_ERROR(fn(i));
    return Status::OK();
  }

  std::atomic<size_t> next(begin);
  // Lowest failing index so far (`end` = none). Workers consult the atomic
  // on the fast path; the mutex orders updates of the index/status/
  // exception triple.
  std::atomic<size_t> first_bad(end);
  std::mutex fail_mu;
  Status first_status;
  std::exception_ptr first_exception;

  auto record_failure = [&](size_t i, Status status, std::exception_ptr ep) {
    std::unique_lock<std::mutex> lock(fail_mu);
    if (i < first_bad.load(std::memory_order_relaxed)) {
      first_bad.store(i, std::memory_order_relaxed);
      first_status = std::move(status);
      first_exception = ep;
    }
  };

  auto worker = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) return;
      // Once a failure is recorded, higher indices may be skipped (a
      // serial loop would not have reached them either) — but an index
      // below the recorded failure must still run: it could fail too and
      // is the one a serial loop would have reported.
      if (i > first_bad.load(std::memory_order_relaxed)) continue;
      try {
        Status s = fn(i);
        if (!s.ok()) record_failure(i, std::move(s), nullptr);
      } catch (...) {
        record_failure(i, Status::OK(), std::current_exception());
      }
    }
  };

  {
    ThreadPool pool(workers);
    for (int t = 0; t < workers; ++t) pool.Submit(worker);
    pool.Wait();
  }
  if (first_bad.load(std::memory_order_relaxed) < end) {
    if (first_exception) std::rethrow_exception(first_exception);
    return first_status;
  }
  return Status::OK();
}

Status ParallelTasks(const std::vector<std::function<Status()>>& tasks,
                     int threads) {
  return ParallelFor(
      0, tasks.size(), [&tasks](size_t i) { return tasks[i](); }, threads);
}

}  // namespace ule
