#include "support/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

namespace ule {

int DefaultThreadCount() {
  if (const char* env = std::getenv("ULE_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int ResolveThreadCount(int threads) {
  return threads > 0 ? threads : DefaultThreadCount();
}

int SplitThreads(int threads, int branches) {
  if (branches < 1) branches = 1;
  const int total = ResolveThreadCount(threads);
  return total / branches > 0 ? total / branches : 1;
}

ThreadPool::ThreadPool(int thread_count) {
  EnsureWorkers(ResolveThreadCount(thread_count));
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::EnsureWorkers(int thread_count) {
  thread_count = std::min(thread_count, kMaxThreads);
  std::unique_lock<std::mutex> lock(mu_);
  if (stopping_) return;
  while (static_cast<int>(workers_.size()) < thread_count) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

int ThreadPool::thread_count() const {
  std::unique_lock<std::mutex> lock(mu_);
  return static_cast<int>(workers_.size());
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPool& SharedPool() {
  // Function-local static: lazily built on first parallel call, workers
  // joined by the static destructor at process exit (graceful shutdown).
  static ThreadPool pool;
  return pool;
}

namespace {

/// State shared between a ParallelFor call and its helper tasks. Held by
/// shared_ptr because helpers that were queued but never started may run
/// after the call returned; they see the claim counter exhausted (or the
/// abort skip) and exit without touching the caller's stack.
struct ForState {
  size_t end = 0;
  std::atomic<size_t> next{0};
  /// Lowest failing index so far (`end` = none). Workers consult the
  /// atomic on the fast path; `mu` orders updates of the index/status/
  /// exception triple.
  std::atomic<size_t> first_bad{0};
  std::mutex mu;
  std::condition_variable cv;
  int active = 0;  ///< helpers currently executing the claim loop
  Status first_status;
  std::exception_ptr first_exception;
  /// Valid only while unclaimed indices remain; helpers never dereference
  /// it afterwards (every claim is bounds-checked first).
  const std::function<Status(size_t)>* fn = nullptr;

  void RecordFailure(size_t i, Status status, std::exception_ptr ep) {
    std::unique_lock<std::mutex> lock(mu);
    if (i < first_bad.load(std::memory_order_relaxed)) {
      first_bad.store(i, std::memory_order_relaxed);
      first_status = std::move(status);
      first_exception = ep;
    }
  }

  /// Claims and runs indices until the range is exhausted. Safe to call
  /// from any thread, any number of times, at any point in the call's
  /// lifetime.
  void DrainClaims() {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) return;
      // Once a failure is recorded, higher indices may be skipped (a
      // serial loop would not have reached them either) — but an index
      // below the recorded failure must still run: it could fail too and
      // is the one a serial loop would have reported.
      if (i > first_bad.load(std::memory_order_relaxed)) continue;
      try {
        Status s = (*fn)(i);
        if (!s.ok()) RecordFailure(i, std::move(s), nullptr);
      } catch (...) {
        RecordFailure(i, Status::OK(), std::current_exception());
      }
    }
  }
};

/// Submits `helpers` copies of the claim loop to the shared pool (State =
/// ForState or OrderedState; both expose mu/active/cv/DrainClaims). Each
/// helper registers as active before draining so the caller can wait for
/// every claimed index to complete; copies scheduled after the range is
/// exhausted return without registering work.
template <typename State>
void SubmitHelpers(const std::shared_ptr<State>& state, int helpers) {
  SharedPool().EnsureWorkers(helpers);
  for (int t = 0; t < helpers; ++t) {
    SharedPool().Submit([state] {
      {
        std::unique_lock<std::mutex> lock(state->mu);
        ++state->active;
      }
      state->DrainClaims();
      {
        std::unique_lock<std::mutex> lock(state->mu);
        --state->active;
      }
      state->cv.notify_all();
    });
  }
}

/// Blocks until every claimed index has completed, then resolves the
/// call's outcome (rethrowing the lowest-index exception if any).
Status FinishFor(const std::shared_ptr<ForState>& state) {
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] {
      return state->active == 0 &&
             state->next.load(std::memory_order_relaxed) >= state->end;
    });
  }
  if (state->first_bad.load(std::memory_order_relaxed) < state->end) {
    if (state->first_exception) std::rethrow_exception(state->first_exception);
    return state->first_status;
  }
  return Status::OK();
}

}  // namespace

Status ParallelFor(size_t begin, size_t end,
                   const std::function<Status(size_t)>& fn, int threads) {
  if (begin >= end) return Status::OK();
  const size_t count = end - begin;
  int workers = ResolveThreadCount(threads);
  if (static_cast<size_t>(workers) > count) {
    workers = static_cast<int>(count);
  }
  workers = std::min(workers, ThreadPool::kMaxThreads);
  if (workers <= 1) {
    for (size_t i = begin; i < end; ++i) ULE_RETURN_IF_ERROR(fn(i));
    return Status::OK();
  }

  auto state = std::make_shared<ForState>();
  state->end = end;
  state->next.store(begin, std::memory_order_relaxed);
  state->first_bad.store(end, std::memory_order_relaxed);
  state->fn = &fn;

  // The caller is one of the workers: even with the pool saturated (e.g.
  // nested fan-out from a pool worker) the call makes progress and the
  // degenerate outcome is the serial loop, never a deadlock.
  SubmitHelpers(state, workers - 1);
  state->DrainClaims();
  return FinishFor(state);
}

Status ParallelTasks(const std::vector<std::function<Status()>>& tasks,
                     int threads) {
  return ParallelFor(
      0, tasks.size(), [&tasks](size_t i) { return tasks[i](); }, threads);
}

namespace {

/// Shared state of one ParallelForOrdered call. Producers claim indices in
/// order and fill ring slots; the calling thread consumes the ring in
/// index order and doubles as a producer whenever the next index to
/// consume is not yet being produced.
struct OrderedState {
  size_t begin = 0;
  size_t end = 0;
  size_t window = 0;
  std::atomic<size_t> next{0};
  std::atomic<size_t> first_bad{0};
  std::mutex mu;
  std::condition_variable cv;
  size_t consumed = 0;           ///< next index to consume (guarded by mu)
  std::vector<uint8_t> done;     ///< ring of produced flags (guarded by mu)
  int active = 0;                ///< producers inside the claim loop
  Status first_status;
  std::exception_ptr first_exception;
  const std::function<Status(size_t)>* produce = nullptr;

  bool Done(size_t i) { return done[(i - begin) % window] != 0; }
  void SetDone(size_t i) { done[(i - begin) % window] = 1; }
  void ClearDone(size_t i) { done[(i - begin) % window] = 0; }

  void RecordFailure(size_t i, Status status, std::exception_ptr ep) {
    {
      std::unique_lock<std::mutex> lock(mu);
      if (i < first_bad.load(std::memory_order_relaxed)) {
        first_bad.store(i, std::memory_order_relaxed);
        first_status = std::move(status);
        first_exception = ep;
      }
    }
    cv.notify_all();
  }

  /// Runs produce(i) for one claimed index, honouring the window gate:
  /// produce(i) may not start before consume(i - window) has returned.
  /// The gate always opens — every claimed index below i is produced by a
  /// non-blocked producer and consumed by the caller — unless the call is
  /// aborting, in which case the index is skipped.
  void ProduceOne(size_t i) {
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] {
        return i < consumed + window ||
               first_bad.load(std::memory_order_relaxed) < i;
      });
      if (first_bad.load(std::memory_order_relaxed) < i) return;
    }
    try {
      Status s = (*produce)(i);
      if (!s.ok()) RecordFailure(i, std::move(s), nullptr);
    } catch (...) {
      RecordFailure(i, Status::OK(), std::current_exception());
    }
    {
      std::unique_lock<std::mutex> lock(mu);
      SetDone(i);
    }
    cv.notify_all();
  }

  /// Helper-task body: claim and produce until the range is exhausted.
  void DrainClaims() {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) return;
      if (i > first_bad.load(std::memory_order_relaxed)) continue;
      ProduceOne(i);
    }
  }
};

}  // namespace

Status ParallelForOrdered(size_t begin, size_t end,
                          const std::function<Status(size_t)>& produce,
                          const std::function<Status(size_t)>& consume,
                          int threads, int window) {
  if (begin >= end) return Status::OK();
  const size_t count = end - begin;
  int workers = ResolveThreadCount(threads);
  if (static_cast<size_t>(workers) > count) {
    workers = static_cast<int>(count);
  }
  workers = std::min(workers, ThreadPool::kMaxThreads);
  if (workers <= 1) {
    // Serial: the streaming contract (consume in index order, at most
    // `window` slots live) holds trivially with a window of one.
    for (size_t i = begin; i < end; ++i) {
      ULE_RETURN_IF_ERROR(produce(i));
      ULE_RETURN_IF_ERROR(consume(i));
    }
    return Status::OK();
  }
  if (window <= 0) window = 2 * workers;
  window = std::max(window, 2);

  auto state = std::make_shared<OrderedState>();
  state->begin = begin;
  state->end = end;
  state->window = static_cast<size_t>(window);
  state->next.store(begin, std::memory_order_relaxed);
  state->first_bad.store(end, std::memory_order_relaxed);
  state->consumed = begin;
  state->done.assign(state->window, 0);
  state->produce = &produce;

  SubmitHelpers(state, workers - 1);

  // The calling thread is the consumer and the producer of last resort: it
  // claims an index whenever the next index to consume is not yet claimed
  // (which is exactly the case where no running producer covers it). A
  // claim it cannot produce yet (window gate closed) is parked until
  // consumption reopens the gate, so the caller never blocks on work only
  // it could do.
  constexpr size_t kNoClaim = static_cast<size_t>(-1);
  size_t parked_claim = kNoClaim;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(state->mu);
      if (state->consumed >= end ||
          state->first_bad.load(std::memory_order_relaxed) <=
              state->consumed) {
        break;
      }
      if (!state->Done(state->consumed)) {
        const size_t claimed = state->next.load(std::memory_order_relaxed);
        if (parked_claim != kNoClaim || claimed > state->consumed) {
          // The next index is being produced (or the caller already holds
          // a parked claim above it): wait for production or for the
          // parked claim's gate to open.
          state->cv.wait(lock, [&] {
            return state->Done(state->consumed) ||
                   parked_claim < state->consumed + state->window ||
                   state->first_bad.load(std::memory_order_relaxed) <=
                       state->consumed;
          });
        }
      }
    }
    // Produce a parked claim once its gate is open.
    if (parked_claim != kNoClaim) {
      bool gate_open;
      {
        std::unique_lock<std::mutex> lock(state->mu);
        gate_open = parked_claim < state->consumed + state->window ||
                    state->first_bad.load(std::memory_order_relaxed) <
                        parked_claim;
      }
      if (gate_open) {
        state->ProduceOne(parked_claim);
        parked_claim = kNoClaim;
      }
    }
    bool consume_now = false;
    {
      std::unique_lock<std::mutex> lock(state->mu);
      if (state->consumed >= end ||
          state->first_bad.load(std::memory_order_relaxed) <=
              state->consumed) {
        break;
      }
      if (state->Done(state->consumed)) consume_now = true;
    }
    if (consume_now) {
      const size_t i = state->consumed;  // only this thread advances it
      try {
        Status s = consume(i);
        if (!s.ok()) {
          state->RecordFailure(i, std::move(s), nullptr);
          break;
        }
      } catch (...) {
        state->RecordFailure(i, Status::OK(), std::current_exception());
        break;
      }
      {
        std::unique_lock<std::mutex> lock(state->mu);
        state->ClearDone(i);
        state->consumed = i + 1;
      }
      state->cv.notify_all();  // reopen the window gate
      continue;
    }
    // Next index unclaimed and no parked claim: help produce. The claim
    // may land above the next-to-consume index (another producer claimed
    // it in the meantime); the gate logic above handles both cases.
    if (parked_claim == kNoClaim) {
      const size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i < end && i <= state->first_bad.load(std::memory_order_relaxed)) {
        parked_claim = i;
      }
    }
  }

  // Wind down. On normal exit every index was produced and consumed (a
  // parked claim cannot survive: its production gates consumption of the
  // indices above it). On abort a parked claim may remain unproduced —
  // nothing consumes past the failure, so it is simply dropped. Exhaust
  // the claim counter so helpers (gated, running, or scheduled later)
  // finish promptly, then wait for the running ones.
  state->next.fetch_add(count, std::memory_order_relaxed);
  state->cv.notify_all();
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] { return state->active == 0; });
  }
  if (state->first_bad.load(std::memory_order_relaxed) < end) {
    if (state->first_exception) std::rethrow_exception(state->first_exception);
    return state->first_status;
  }
  return Status::OK();
}

}  // namespace ule
