/// \file status.h
/// \brief Error-handling primitives used across the ULE library.
///
/// Public APIs in this library do not throw exceptions for recoverable
/// failures (corrupted archives, undecodable emblems, malformed programs...).
/// Instead they return ule::Status, or ule::Result<T> when a value is
/// produced. This follows the Arrow/RocksDB idiom for database C++.

#ifndef ULE_SUPPORT_STATUS_H_
#define ULE_SUPPORT_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace ule {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,  ///< caller passed something nonsensical
  kCorruption,       ///< data failed validation (CRC, magic, ECC beyond limit)
  kNotFound,         ///< a referenced entity does not exist
  kUnimplemented,    ///< feature is declared but not available
  kOutOfRange,       ///< index/address outside the valid domain
  kExecutionFault,   ///< emulated program performed an illegal operation
  kResourceExhausted,///< a bounded resource (memory, steps) ran out
  kIoError,          ///< host filesystem I/O failed
};

/// Human-readable name for a StatusCode ("Ok", "Corruption", ...).
const char* StatusCodeName(StatusCode code);

/// \brief Success-or-error result of an operation, with a message on error.
///
/// A default-constructed Status is OK. Statuses are cheap to copy on the OK
/// path (no allocation).
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ExecutionFault(std::string msg) {
    return Status(StatusCode::kExecutionFault, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
///
/// Access to the value of a non-OK Result is a programming error (asserts in
/// debug builds); callers must check ok() first.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value: `return some_t;`
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error: `return Status::Corruption(...);`
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Moves the value out; Result must be OK.
  T TakeValue() {
    assert(ok());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status from an expression (early return).
#define ULE_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::ule::Status _ule_status = (expr);        \
    if (!_ule_status.ok()) return _ule_status; \
  } while (false)

/// Evaluates a Result expression, propagating errors, else binds the value.
#define ULE_ASSIGN_OR_RETURN(lhs, expr)                     \
  auto ULE_CONCAT_(_ule_result_, __LINE__) = (expr);        \
  if (!ULE_CONCAT_(_ule_result_, __LINE__).ok())            \
    return ULE_CONCAT_(_ule_result_, __LINE__).status();    \
  lhs = std::move(ULE_CONCAT_(_ule_result_, __LINE__)).TakeValue()

#define ULE_CONCAT_INNER_(a, b) a##b
#define ULE_CONCAT_(a, b) ULE_CONCAT_INNER_(a, b)

}  // namespace ule

#endif  // ULE_SUPPORT_STATUS_H_
