/// \file kernels_avx2.cc
/// \brief AVX2-tier GF(256) multiply-accumulate: the same split-nibble
/// PSHUFB scheme as the ssse3 tier, 32 bytes per VPSHUFB pair.
///
/// Compiled with `-mavx2` on x86 (src/CMakeLists.txt); elsewhere the
/// guard compiles this file down to a null pointer and the dispatcher
/// never offers the tier. The CRC fold stays 128-bit (PCLMULQDQ), so
/// the avx2 KernelSet borrows the ssse3 tier's CRC in kernels.cc.

#include "support/kernels_internal.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace ule {
namespace kernels {
namespace internal {
namespace {

#if defined(__AVX2__)

void Gf256MulAccumAvx2(uint8_t* dst, const uint8_t* src, uint8_t factor,
                       size_t n) {
  if (factor == 0) return;
  const uint8_t* lo_row = kGfNib.lo[factor];
  const uint8_t* hi_row = kGfNib.hi[factor];
  // VPSHUFB shuffles within each 128-bit lane, so the 16-entry row is
  // broadcast to both lanes.
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(lo_row)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(hi_row)));
  const __m256i mask = _mm256_set1_epi8(0x0F);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i d = _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    const __m256i l = _mm256_shuffle_epi8(lo, _mm256_and_si256(s, mask));
    const __m256i h = _mm256_shuffle_epi8(
        hi, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask));
    d = _mm256_xor_si256(d, _mm256_xor_si256(l, h));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), d);
  }
  for (; i < n; ++i) {
    const uint8_t s = src[i];
    dst[i] ^= static_cast<uint8_t>(lo_row[s & 0x0F] ^ hi_row[s >> 4]);
  }
}

#endif  // __AVX2__

}  // namespace

const IsaKernels& Avx2Raw() {
  static const IsaKernels kernels = [] {
    IsaKernels k;
#if defined(__AVX2__)
    k.gf256_mul_accum = &Gf256MulAccumAvx2;
#endif
    return k;
  }();
  return kernels;
}

}  // namespace internal
}  // namespace kernels
}  // namespace ule
