#include "support/bytes.h"

namespace ule {

Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string ToString(BytesView b) {
  return std::string(b.begin(), b.end());
}

void ByteWriter::PutU16(uint16_t v) {
  PutU8(static_cast<uint8_t>(v & 0xff));
  PutU8(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::PutU32(uint32_t v) {
  PutU16(static_cast<uint16_t>(v & 0xffff));
  PutU16(static_cast<uint16_t>(v >> 16));
}

void ByteWriter::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v & 0xffffffffu));
  PutU32(static_cast<uint32_t>(v >> 32));
}

void ByteWriter::PutBytes(BytesView bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::PutString(std::string_view s) {
  buf_.insert(buf_.end(), s.begin(), s.end());
}

Status ByteReader::Need(size_t n) {
  if (pos_ + n > data_.size()) {
    return Status::Corruption("truncated input: need " + std::to_string(n) +
                              " bytes at offset " + std::to_string(pos_) +
                              " of " + std::to_string(data_.size()));
  }
  return Status::OK();
}

Status ByteReader::GetU8(uint8_t* out) {
  ULE_RETURN_IF_ERROR(Need(1));
  *out = data_[pos_++];
  return Status::OK();
}

Status ByteReader::GetU16(uint16_t* out) {
  ULE_RETURN_IF_ERROR(Need(2));
  *out = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
  pos_ += 2;
  return Status::OK();
}

Status ByteReader::GetU32(uint32_t* out) {
  uint16_t lo, hi;
  ULE_RETURN_IF_ERROR(GetU16(&lo));
  ULE_RETURN_IF_ERROR(GetU16(&hi));
  *out = static_cast<uint32_t>(lo) | (static_cast<uint32_t>(hi) << 16);
  return Status::OK();
}

Status ByteReader::GetU64(uint64_t* out) {
  uint32_t lo, hi;
  ULE_RETURN_IF_ERROR(GetU32(&lo));
  ULE_RETURN_IF_ERROR(GetU32(&hi));
  *out = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return Status::OK();
}

Status ByteReader::GetBytes(size_t n, Bytes* out) {
  ULE_RETURN_IF_ERROR(Need(n));
  out->assign(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return Status::OK();
}

void BitWriter::PutBit(int bit) {
  cur_ = static_cast<uint8_t>((cur_ << 1) | (bit & 1));
  if (++nbits_ == 8) {
    buf_.push_back(cur_);
    cur_ = 0;
    nbits_ = 0;
  }
  ++bit_count_;
}

void BitWriter::PutBits(uint32_t v, int count) {
  for (int i = count - 1; i >= 0; --i) PutBit((v >> i) & 1);
}

Bytes BitWriter::Finish() {
  while (nbits_ != 0) PutBit(0);
  return std::move(buf_);
}

int BitReader::GetBit() {
  if (pos_ >= data_.size() * 8) return -1;
  const uint8_t byte = data_[pos_ >> 3];
  const int bit = (byte >> (7 - (pos_ & 7))) & 1;
  ++pos_;
  return bit;
}

bool BitReader::GetBits(int count, uint32_t* out) {
  uint32_t v = 0;
  for (int i = 0; i < count; ++i) {
    const int b = GetBit();
    if (b < 0) return false;
    v = (v << 1) | static_cast<uint32_t>(b);
  }
  *out = v;
  return true;
}

}  // namespace ule
