/// \file hexletters.h
/// \brief The paper's Bootstrap text encoding: letters A..P encode
/// hexadecimal digits 0xF..0x0 (§3.2: "letters A to P are used to encode
/// hexadecimal values 0xF to 0x0 respectively").
///
/// Binary streams that cannot themselves be stored as emblems (the MOCoder
/// decoder and the DynaRisc emulator) are serialised with this alphabet into
/// the plain-text Bootstrap document.

#ifndef ULE_SUPPORT_HEXLETTERS_H_
#define ULE_SUPPORT_HEXLETTERS_H_

#include <string>
#include <string_view>

#include "support/bytes.h"
#include "support/status.h"

namespace ule {

/// Encodes bytes to the A..P alphabet, two letters per byte, high nibble
/// first. `wrap` > 0 inserts a newline every `wrap` letters (page layout).
std::string HexLettersEncode(BytesView data, int wrap = 0);

/// Decodes an A..P letter stream back to bytes. Whitespace is ignored;
/// any other character is Corruption. An odd number of letters is Corruption.
Result<Bytes> HexLettersDecode(std::string_view text);

}  // namespace ule

#endif  // ULE_SUPPORT_HEXLETTERS_H_
