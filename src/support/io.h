/// \file io.h
/// \brief Whole-file read/write helpers on the host filesystem.
///
/// The film-store backends (and the ulectl CLI) move byte buffers between
/// memory and disk; these helpers centralize the open/stream/close ritual
/// and turn every host failure into a Status instead of an exception or a
/// half-written artifact.

#ifndef ULE_SUPPORT_IO_H_
#define ULE_SUPPORT_IO_H_

#include <string>
#include <string_view>

#include "support/bytes.h"
#include "support/status.h"

namespace ule {

/// Reads an entire file into a byte buffer. IoError when the file cannot
/// be opened or read.
Result<Bytes> ReadFileBytes(const std::string& path);

/// Reads an entire file into a string (binary-safe).
Result<std::string> ReadFileText(const std::string& path);

/// Writes `data` to `path`, replacing any existing file.
Status WriteFileBytes(const std::string& path, BytesView data);

/// Writes `text` to `path`, replacing any existing file.
Status WriteFileText(const std::string& path, std::string_view text);

}  // namespace ule

#endif  // ULE_SUPPORT_IO_H_
