#include "support/io.h"

#include <fstream>
#include <iterator>

namespace ule {

Result<Bytes> ReadFileBytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IoError("cannot open " + path);
  Bytes data((std::istreambuf_iterator<char>(f)),
             std::istreambuf_iterator<char>());
  if (f.bad()) return Status::IoError("read failed: " + path);
  return data;
}

Result<std::string> ReadFileText(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IoError("cannot open " + path);
  std::string data((std::istreambuf_iterator<char>(f)),
                   std::istreambuf_iterator<char>());
  if (f.bad()) return Status::IoError("read failed: " + path);
  return data;
}

Status WriteFileBytes(const std::string& path, BytesView data) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return Status::IoError("cannot open " + path + " for writing");
  f.write(reinterpret_cast<const char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  f.flush();
  return f ? Status::OK() : Status::IoError("write failed: " + path);
}

Status WriteFileText(const std::string& path, std::string_view text) {
  return WriteFileBytes(
      path, BytesView(reinterpret_cast<const uint8_t*>(text.data()),
                      text.size()));
}

}  // namespace ule
