/// \file bytes.h
/// \brief Byte-buffer and bit-stream primitives shared by all codecs.

#ifndef ULE_SUPPORT_BYTES_H_
#define ULE_SUPPORT_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.h"

namespace ule {

/// Owning byte buffer used throughout the library.
using Bytes = std::vector<uint8_t>;
/// Non-owning read-only view of bytes.
using BytesView = std::span<const uint8_t>;

/// Converts a std::string payload into Bytes (copy).
Bytes ToBytes(std::string_view s);
/// Converts Bytes into a std::string (copy).
std::string ToString(BytesView b);

/// \brief Sequential little-endian writer into an owned buffer.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutBytes(BytesView bytes);
  void PutString(std::string_view s);

  size_t size() const { return buf_.size(); }
  const Bytes& bytes() const { return buf_; }
  Bytes TakeBytes() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// \brief Sequential little-endian reader over a byte view.
///
/// All getters return Status so that truncated inputs surface as Corruption
/// rather than UB; decoders use this for archive container parsing.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  Status GetU8(uint8_t* out);
  Status GetU16(uint16_t* out);
  Status GetU32(uint32_t* out);
  Status GetU64(uint64_t* out);
  /// Reads exactly n bytes into out (resized).
  Status GetBytes(size_t n, Bytes* out);

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Need(size_t n);

  BytesView data_;
  size_t pos_ = 0;
};

/// \brief MSB-first bit writer (used by LZSS/arith token streams and the
/// emblem modulator).
class BitWriter {
 public:
  void PutBit(int bit);
  /// Writes the low `count` bits of v, most-significant bit first.
  void PutBits(uint32_t v, int count);
  /// Pads with zero bits to a byte boundary and returns the buffer.
  Bytes Finish();

  size_t bit_count() const { return bit_count_; }

 private:
  Bytes buf_;
  uint8_t cur_ = 0;
  int nbits_ = 0;
  size_t bit_count_ = 0;
};

/// \brief MSB-first bit reader.
class BitReader {
 public:
  explicit BitReader(BytesView data) : data_(data) {}

  /// Returns 0/1, or -1 when the stream is exhausted.
  int GetBit();
  /// Reads `count` bits MSB-first; returns false on exhaustion.
  bool GetBits(int count, uint32_t* out);

  size_t bits_remaining() const { return data_.size() * 8 - pos_; }

 private:
  BytesView data_;
  size_t pos_ = 0;  // bit position
};

}  // namespace ule

#endif  // ULE_SUPPORT_BYTES_H_
