/// \file kernels_internal.h
/// \brief Shared plumbing between the kernel dispatcher (kernels.cc) and
/// the per-ISA translation units. Not part of the public surface.
///
/// The per-ISA files are compiled with their `-m` flags (see
/// src/CMakeLists.txt) and publish raw function pointers through
/// `Ssse3Raw()` / `Avx2Raw()`; a pointer is null when the TU was built
/// without the matching instruction set (non-x86 target, or a compiler
/// that takes no `-m` flags). kernels.cc combines them with CPUID
/// feature checks into the public KernelSet registry — so an unguarded
/// SIMD instruction can never execute on a CPU that lacks it.

#ifndef ULE_SUPPORT_KERNELS_INTERNAL_H_
#define ULE_SUPPORT_KERNELS_INTERNAL_H_

#include <cstddef>
#include <cstdint>

#include "support/kernels.h"

namespace ule {
namespace kernels {
namespace internal {

/// Raw kernels one ISA translation unit managed to compile. Each entry
/// is independently null when unavailable; kernels.cc fills the gaps
/// from lower tiers.
struct IsaKernels {
  Crc32Fn crc32_pclmul = nullptr;  ///< needs runtime PCLMULQDQ + SSE4.1
  Gf256MulAccumFn gf256_mul_accum = nullptr;
};

const IsaKernels& Ssse3Raw();
const IsaKernels& Avx2Raw();

/// Portable slice-by-8 CRC-32 register update; also the tail handler the
/// PCLMUL kernel borrows for head/tail bytes (identical table, so the
/// stitched result is bit-exact).
uint32_t Crc32Slice8(uint32_t crc, const uint8_t* data, size_t n);

/// GF(2^8) multiply, polynomial 0x11D — the same field rs::Gf256 exposes
/// via log/exp tables, computed carrylessly here so it is constexpr.
/// (rs_test's MulMatchesCarrylessReference pins the two together.)
constexpr uint8_t GfMul(uint8_t a, uint8_t b) {
  uint8_t r = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) r ^= a;
    const bool carry = (a & 0x80) != 0;
    a = static_cast<uint8_t>(a << 1);
    if (carry) a ^= 0x1D;  // x^8 ≡ x^4+x^3+x^2+1 (mod 0x11D)
    b >>= 1;
  }
  return r;
}

/// Split-nibble multiply tables for every factor: for a source byte
/// s = h·16 + l, factor·s = lo[f][l] ^ hi[f][h]. 16-entry rows are
/// exactly what PSHUFB consumes; the scalar kernel walks the same rows
/// so every tier reads one shared 8 KB constexpr blob (no first-call
/// table build anywhere on the digest path).
struct GfNibbleTables {
  alignas(16) uint8_t lo[256][16];
  alignas(16) uint8_t hi[256][16];
};

constexpr GfNibbleTables BuildGfNibbleTables() {
  GfNibbleTables t{};
  for (int f = 0; f < 256; ++f) {
    for (int x = 0; x < 16; ++x) {
      t.lo[f][x] = GfMul(static_cast<uint8_t>(f), static_cast<uint8_t>(x));
      t.hi[f][x] =
          GfMul(static_cast<uint8_t>(f), static_cast<uint8_t>(x << 4));
    }
  }
  return t;
}

inline constexpr GfNibbleTables kGfNib = BuildGfNibbleTables();

}  // namespace internal
}  // namespace kernels
}  // namespace ule

#endif  // ULE_SUPPORT_KERNELS_INTERNAL_H_
