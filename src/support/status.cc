#include "support/status.h"

namespace ule {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kExecutionFault:
      return "ExecutionFault";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kIoError:
      return "IoError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace ule
