/// \file random.h
/// \brief Deterministic PRNG (SplitMix64 + xoshiro256**) for workload
/// generation and fault injection.
///
/// std::mt19937 is avoided so that generated TPC-H data and injected scan
/// damage are bit-stable across standard library implementations.

#ifndef ULE_SUPPORT_RANDOM_H_
#define ULE_SUPPORT_RANDOM_H_

#include <cstdint>

#include "support/bytes.h"

namespace ule {

/// \brief xoshiro256** seeded via SplitMix64. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t x = seed;
    for (auto& s : s_) {
      // SplitMix64 step.
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// Approximately normal deviate (mean 0, stddev 1) via sum of uniforms.
  double NextGaussian() {
    double acc = 0;
    for (int i = 0; i < 12; ++i) acc += NextDouble();
    return acc - 6.0;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

/// `n` uniformly random bytes drawn from `*rng`. Shared by tests and
/// benches (it used to be pasted into each of them).
inline Bytes RandomBytes(Rng* rng, size_t n) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<uint8_t>(rng->Below(256));
  return out;
}

/// Convenience overload: fresh deterministic stream from `seed`.
inline Bytes RandomBytes(uint64_t seed, size_t n) {
  Rng rng(seed);
  return RandomBytes(&rng, n);
}

}  // namespace ule

#endif  // ULE_SUPPORT_RANDOM_H_
