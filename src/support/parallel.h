/// \file parallel.h
/// \brief Minimal data-parallel primitives for the archive/restore paths.
///
/// The emblem pipeline is embarrassingly parallel across frames, and the
/// archive/restore hot paths fan out across the data/system streams. This
/// header provides exactly what those call sites need — a plain
/// fixed-size thread pool (no work stealing) and index-based ParallelFor /
/// ParallelTasks helpers with deterministic error semantics — and nothing
/// more.
///
/// Determinism contract: workers claim indices from a shared counter, so
/// *scheduling* is nondeterministic, but callers write results into
/// per-index slots and merge them in index order afterwards, which makes
/// the observable output identical to a serial run. On failure, the
/// status (or exception) of the lowest failing index wins, matching what
/// a serial loop would have reported first; unstarted iterations above
/// the lowest recorded failing index may be skipped (indices below it
/// always still run — one of them could be the serial loop's failure).
///
/// Thread-count knobs, in priority order: an explicit `threads` argument
/// (> 0), the `ULE_THREADS` environment variable, then
/// std::thread::hardware_concurrency().

#ifndef ULE_SUPPORT_PARALLEL_H_
#define ULE_SUPPORT_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/status.h"

namespace ule {

/// Worker threads to use when the caller does not say: `ULE_THREADS` if
/// set to a positive integer, else std::thread::hardware_concurrency(),
/// never less than 1.
int DefaultThreadCount();

/// Resolves a thread-count knob: `threads` if positive, else
/// DefaultThreadCount().
int ResolveThreadCount(int threads);

/// \brief Splits a thread budget across `branches` concurrent subtasks.
///
/// Nested fan-out (e.g. two streams each encoding emblems in parallel)
/// passes the result as the inner level's thread knob so the tree's total
/// worker count stays near the resolved budget instead of multiplying by
/// the nesting depth. Never returns less than 1.
int SplitThreads(int threads, int branches);

/// \brief A fixed-size thread pool with a shared FIFO queue.
///
/// Deliberately simple (no work stealing, no priorities): tasks in the
/// archive pipeline are coarse — an emblem encode, a frame decode, a whole
/// stream — so a single mutex-protected queue is nowhere near contended.
class ThreadPool {
 public:
  /// Starts `thread_count` workers (<= 0 means ResolveThreadCount(0)).
  explicit ThreadPool(int thread_count = 0);
  /// Waits for queued tasks to finish, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw (wrap with your own capture —
  /// ParallelFor does); submitting after the destructor has begun is UB.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has completed. The pool
  /// remains usable afterwards.
  void Wait();

  int thread_count() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  int active_ = 0;
  bool stopping_ = false;
};

/// \brief Calls `fn(i)` for every i in [begin, end), on up to `threads`
/// workers, and blocks until all iterations finished.
///
/// Returns the Status of the lowest failing index (OK when none fail);
/// exceptions are captured and the lowest-index one is rethrown in the
/// caller. With an empty range this is a no-op; with one worker (or a
/// one-element range) it degenerates to the serial loop.
Status ParallelFor(size_t begin, size_t end,
                   const std::function<Status(size_t)>& fn, int threads = 0);

/// Runs each task once, concurrently; same error semantics as ParallelFor
/// (task order index = position in the vector).
Status ParallelTasks(const std::vector<std::function<Status()>>& tasks,
                     int threads = 0);

}  // namespace ule

#endif  // ULE_SUPPORT_PARALLEL_H_
