/// \file parallel.h
/// \brief Data-parallel primitives for the archive/restore paths.
///
/// The emblem pipeline is embarrassingly parallel across frames, and the
/// archive/restore hot paths fan out across the data/system streams. This
/// header provides what those call sites need and nothing more:
///
///   * `ThreadPool` — a plain FIFO-queue pool (growable, no work stealing);
///   * `SharedPool()` — the process-wide persistent instance every helper
///     below schedules onto, so pipeline stages reuse the same worker
///     threads (and their thread-local VeRisc scratch machines) instead of
///     constructing a pool per call;
///   * `ParallelFor` / `ParallelTasks` — index-based fan-out with
///     deterministic error semantics;
///   * `ParallelForOrdered` — the streaming variant: produce in parallel,
///     consume serially in index order through a bounded in-flight window;
///   * `BoundedChannel<T>` — a small blocking MPMC queue for push-driven
///     pipelines whose item count is not known up front.
///
/// Determinism contract: workers claim indices from a shared counter, so
/// *scheduling* is nondeterministic, but callers write results into
/// per-index slots (or receive them through the ordered consumer), which
/// makes the observable output identical to a serial run. On failure, the
/// status (or exception) of the lowest failing index wins, matching what
/// a serial loop would have reported first; unstarted iterations above
/// the lowest recorded failing index may be skipped (indices below it
/// always still run — one of them could be the serial loop's failure).
///
/// Deadlock freedom: the calling thread always participates in its own
/// call (consuming and/or claiming indices), so every helper completes
/// even when the shared pool is saturated — nested fan-out from inside a
/// pool worker degrades to the serial loop instead of waiting for workers
/// that will never come. Helper tasks submitted to the pool never block
/// indefinitely: they drain a finite claim counter and their only waits
/// (the ordered window gate) are released by their call's own consumer.
///
/// Thread-count knobs, in priority order: an explicit `threads` argument
/// (> 0), the `ULE_THREADS` environment variable, then
/// std::thread::hardware_concurrency().

#ifndef ULE_SUPPORT_PARALLEL_H_
#define ULE_SUPPORT_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "support/status.h"

namespace ule {

/// Worker threads to use when the caller does not say: `ULE_THREADS` if
/// set to a positive integer, else std::thread::hardware_concurrency(),
/// never less than 1.
int DefaultThreadCount();

/// Resolves a thread-count knob: `threads` if positive, else
/// DefaultThreadCount().
int ResolveThreadCount(int threads);

/// \brief Splits a thread budget across `branches` concurrent subtasks.
///
/// Nested fan-out (e.g. two streams each encoding emblems in parallel)
/// passes the result as the inner level's thread knob so the tree's total
/// worker count stays near the resolved budget instead of multiplying by
/// the nesting depth. Never returns less than 1.
int SplitThreads(int threads, int branches);

/// \brief A growable thread pool with a shared FIFO queue.
///
/// Deliberately simple (no work stealing, no priorities): tasks in the
/// archive pipeline are coarse — an emblem encode, a frame decode, a whole
/// stream — so a single mutex-protected queue is nowhere near contended.
class ThreadPool {
 public:
  /// Starts `thread_count` workers (<= 0 means ResolveThreadCount(0)).
  explicit ThreadPool(int thread_count = 0);
  /// Waits for queued tasks to finish, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw (wrap with your own capture —
  /// ParallelFor does); submitting after the destructor has begun is UB.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has completed. The pool
  /// remains usable afterwards.
  void Wait();

  /// \brief Grows the pool to at least `thread_count` workers.
  ///
  /// Workers are only ever added, never removed before destruction — the
  /// whole point of the shared pool is that the threads (and their
  /// thread-local scratch state, e.g. the 4 MiB VeRisc machines) persist
  /// across pipeline stages. Growth is capped at kMaxThreads.
  void EnsureWorkers(int thread_count);

  /// Hard cap on pool growth; explicit per-call thread knobs above this
  /// are clamped rather than spawning unbounded threads.
  static constexpr int kMaxThreads = 256;

  int thread_count() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::vector<std::thread> workers_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  int active_ = 0;
  bool stopping_ = false;
};

/// \brief The process-wide persistent pool used by ParallelFor,
/// ParallelForOrdered and the streaming emblem pipeline.
///
/// Lazily built on first use with DefaultThreadCount() workers and grown
/// on demand (EnsureWorkers) when a call requests more; destroyed (workers
/// joined gracefully) at process exit. Worker threads live across calls,
/// which keeps their thread-local `verisc::Machine` instances — and their
/// 4 MiB memory images — warm across pipeline stages.
ThreadPool& SharedPool();

/// \brief Calls `fn(i)` for every i in [begin, end), on up to `threads`
/// concurrent workers, and blocks until all iterations finished.
///
/// Scheduling: the calling thread claims indices itself and up to
/// `threads - 1` helper tasks are submitted to SharedPool() — no pool is
/// constructed per call. Returns the Status of the lowest failing index
/// (OK when none fail); exceptions are captured and the lowest-index one
/// is rethrown in the caller. With an empty range this is a no-op; with
/// one worker (or a one-element range) it degenerates to the serial loop.
Status ParallelFor(size_t begin, size_t end,
                   const std::function<Status(size_t)>& fn, int threads = 0);

/// Runs each task once, concurrently; same error semantics as ParallelFor
/// (task order index = position in the vector).
Status ParallelTasks(const std::vector<std::function<Status()>>& tasks,
                     int threads = 0);

/// \brief Streaming parallel-for: `produce(i)` runs on up to `threads`
/// concurrent workers, `consume(i)` runs on the calling thread in strictly
/// increasing index order, and at most `window` indices are in flight
/// (produced or producing but not yet consumed) at any moment.
///
/// This is the bounded channel between pipeline stages: callers keep a
/// ring of `window` result slots, `produce(i)` fills slot `i % window`,
/// `consume(i)` drains it. The framework guarantees produce(i) does not
/// start before consume(i - window) has returned, so slot reuse is safe
/// and peak memory is O(window) instead of O(range).
///
/// `window` <= 0 selects 2x the worker count (minimum 2). Error semantics
/// match ParallelFor: the lowest failing index (from either callback)
/// wins, consumption stops before the failing index, and the lowest-index
/// exception is rethrown in the caller. With one worker the call is the
/// serial `produce(i); consume(i)` loop.
Status ParallelForOrdered(size_t begin, size_t end,
                          const std::function<Status(size_t)>& produce,
                          const std::function<Status(size_t)>& consume,
                          int threads = 0, int window = 0);

/// \brief A bounded blocking MPMC channel.
///
/// Backpressure primitive for push-driven pipelines (e.g. scans arriving
/// one at a time from a scanner): producers block (or TryPush fails) when
/// `capacity` items are queued, consumers block in Pop until an item
/// arrives or the channel is closed and drained.
///
/// To stay deadlock-free on the shared pool, in-tree pipeline code never
/// blocks in Push from a thread that is also responsible for consuming —
/// it uses TryPush and drains one item itself when the channel is full
/// (see mocoder::StreamDecoder).
template <typename T>
class BoundedChannel {
 public:
  explicit BoundedChannel(size_t capacity)
      : capacity_(capacity > 0 ? capacity : 1) {}

  /// Enqueues if space is available; fails (returns false) when the
  /// channel is full or closed, leaving `item` untouched so the caller
  /// can retry or handle it locally. Never blocks.
  bool TryPush(T& item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until space is available; fails only when closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Dequeues without blocking; nullopt when currently empty.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Blocks until an item arrives; nullopt once closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Closes the channel: Push fails from now on, Pop drains what is left.
  void Close() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace ule

#endif  // ULE_SUPPORT_PARALLEL_H_
