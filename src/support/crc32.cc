#include "support/crc32.h"

#include "support/kernels.h"

namespace ule {

uint32_t Crc32(BytesView data, uint32_t seed) {
  // The wrapper owns the inversion convention; the kernel updates the
  // raw register. Tables are constexpr inside the kernel layer, so a
  // cold first call does no table build.
  return kernels::Crc32Update(seed ^ 0xFFFFFFFFu, data.data(), data.size()) ^
         0xFFFFFFFFu;
}

}  // namespace ule
