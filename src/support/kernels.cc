#include "support/kernels.h"

#include <array>
#include <cstdio>
#include <cstdlib>

#include "support/kernels_internal.h"

namespace ule {
namespace kernels {
namespace {

// ---------------------------------------------------------------------
// Scalar CRC-32: slice-by-8 over compile-time tables.
//
// Eight 256-entry tables let one iteration fold eight message bytes into
// the register with eight independent loads — about 4-6x the classic
// 1-byte loop. The tables are constexpr: a short-lived `ulectl` digest
// pays no first-call table build and no hidden init guard per call.
// ---------------------------------------------------------------------

struct Crc32Tables {
  uint32_t t[8][256];
};

constexpr Crc32Tables BuildCrc32Tables() {
  Crc32Tables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    tables.t[0][i] = c;
  }
  for (int k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      tables.t[k][i] =
          (tables.t[k - 1][i] >> 8) ^ tables.t[0][tables.t[k - 1][i] & 0xFF];
    }
  }
  return tables;
}

constexpr Crc32Tables kCrc32Tables = BuildCrc32Tables();

constexpr uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

// ---------------------------------------------------------------------
// Scalar GF(256) multiply-accumulate over the shared split-nibble
// tables (two 16-entry lookups per byte, no per-call table build).
// ---------------------------------------------------------------------

void Gf256MulAccumScalar(uint8_t* dst, const uint8_t* src, uint8_t factor,
                         size_t n) {
  if (factor == 0) return;
  if (factor == 1) {
    for (size_t i = 0; i < n; ++i) dst[i] ^= src[i];
    return;
  }
  const uint8_t* lo = internal::kGfNib.lo[factor];
  const uint8_t* hi = internal::kGfNib.hi[factor];
  for (size_t i = 0; i < n; ++i) {
    const uint8_t s = src[i];
    dst[i] ^= static_cast<uint8_t>(lo[s & 0x0F] ^ hi[s >> 4]);
  }
}

// ---------------------------------------------------------------------
// CPU feature detection. __builtin_cpu_supports handles the full dance
// (CPUID leaves plus the XGETBV/OS-state check AVX needs); everything
// is gated on x86 so other targets resolve straight to scalar.
// ---------------------------------------------------------------------

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define ULE_KERNELS_X86 1
#endif

bool CpuHas(const char* feature) {
#ifdef ULE_KERNELS_X86
  __builtin_cpu_init();
  if (feature[0] == 's' && feature[1] == 's') {
    return __builtin_cpu_supports("ssse3");
  }
  if (feature[0] == 'a') return __builtin_cpu_supports("avx2");
  if (feature[0] == 'p') {
    return __builtin_cpu_supports("pclmul") &&
           __builtin_cpu_supports("sse4.1");
  }
  return false;
#else
  (void)feature;
  return false;
#endif
}

// ---------------------------------------------------------------------
// Registry: the KernelSets this build + this CPU can actually run.
// ---------------------------------------------------------------------

struct Registry {
  KernelSet scalar;
  KernelSet ssse3;
  KernelSet avx2;
  std::vector<const KernelSet*> available;

  Registry() {
    scalar = KernelSet{"scalar", "slice8", "scalar", &internal::Crc32Slice8,
                       &Gf256MulAccumScalar};
    available.push_back(&scalar);

    const internal::IsaKernels& s3 = internal::Ssse3Raw();
    const bool pclmul_ok = s3.crc32_pclmul != nullptr && CpuHas("pclmul");
    if (s3.gf256_mul_accum != nullptr && CpuHas("ssse3")) {
      ssse3 = KernelSet{"ssse3", pclmul_ok ? "pclmul" : "slice8", "pshufb128",
                        pclmul_ok ? s3.crc32_pclmul : &internal::Crc32Slice8,
                        s3.gf256_mul_accum};
      available.push_back(&ssse3);
    }
    const internal::IsaKernels& a2 = internal::Avx2Raw();
    if (a2.gf256_mul_accum != nullptr && CpuHas("avx2")) {
      // The PCLMUL fold is 128-bit either way; the avx2 tier reuses it.
      avx2 = KernelSet{"avx2", pclmul_ok ? "pclmul" : "slice8", "pshufb256",
                       pclmul_ok ? s3.crc32_pclmul : &internal::Crc32Slice8,
                       a2.gf256_mul_accum};
      available.push_back(&avx2);
    }
  }
};

const Registry& TheRegistry() {
  static const Registry registry;
  return registry;
}

const KernelSet& ResolveOrWarn(const char* setting, bool warn) {
  const Registry& r = TheRegistry();
  const KernelSet& best = *r.available.back();
  if (setting == nullptr || setting[0] == '\0') return best;
  const std::string_view want(setting);
  if (want == "auto") return best;
  if (const KernelSet* found = FindByName(want)) return *found;
  if (warn) {
    std::fprintf(stderr,
                 "ule: ULE_KERNELS=%s is not available on this build/CPU "
                 "(have:", setting);
    for (const KernelSet* k : r.available) {
      std::fprintf(stderr, " %s", k->name);
    }
    std::fprintf(stderr, "); using %s\n", best.name);
  }
  return best;
}

}  // namespace

namespace internal {

uint32_t Crc32Slice8(uint32_t crc, const uint8_t* data, size_t n) {
  const auto& t = kCrc32Tables.t;
  while (n >= 8) {
    const uint32_t lo = crc ^ LoadLe32(data);
    const uint32_t hi = LoadLe32(data + 4);
    crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
          t[4][lo >> 24] ^ t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
          t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
    data += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = t[0][(crc ^ *data++) & 0xFF] ^ (crc >> 8);
  }
  return crc;
}

}  // namespace internal

const KernelSet& Scalar() { return TheRegistry().scalar; }

const std::vector<const KernelSet*>& Available() {
  return TheRegistry().available;
}

const KernelSet* FindByName(std::string_view name) {
  for (const KernelSet* k : TheRegistry().available) {
    if (name == k->name) return k;
  }
  return nullptr;
}

const KernelSet& Active() {
  // Resolved exactly once, first use; the magic static makes concurrent
  // first calls race-free (tests/kernels_test.cc covers this under TSan).
  static const KernelSet& active =
      ResolveOrWarn(std::getenv("ULE_KERNELS"), /*warn=*/true);
  return active;
}

const KernelSet& Resolve(std::string_view setting) {
  return ResolveOrWarn(std::string(setting).c_str(), /*warn=*/false);
}

std::string Describe() {
  const KernelSet& a = Active();
  std::string out = a.name;
  out += " (crc32=";
  out += a.crc32_name;
  out += ", gf256=";
  out += a.gf256_name;
  out += "); available:";
  for (const KernelSet* k : Available()) {
    out += ' ';
    out += k->name;
  }
  return out;
}

}  // namespace kernels
}  // namespace ule
