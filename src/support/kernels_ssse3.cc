/// \file kernels_ssse3.cc
/// \brief SSE-tier kernels: PSHUFB split-nibble GF(256) multiply and
/// PCLMULQDQ CRC-32 folding.
///
/// Compiled with `-mssse3 -msse4.1 -mpclmul` on x86 (src/CMakeLists.txt);
/// elsewhere the guards compile this file down to null pointers and the
/// dispatcher never offers the tier. Bodies run only after kernels.cc
/// has confirmed the matching CPUID bits.

#include "support/kernels_internal.h"

#if defined(__SSSE3__)
#include <tmmintrin.h>
#endif
#if defined(__PCLMUL__) && defined(__SSE4_1__)
#include <smmintrin.h>
#include <wmmintrin.h>
#endif

namespace ule {
namespace kernels {
namespace internal {
namespace {

#if defined(__SSSE3__)

// dst[i] ^= factor * src[i], 16 bytes per PSHUFB pair. The two 16-entry
// nibble rows for `factor` come from the shared constexpr kGfNib blob,
// so this computes exactly what the scalar kernel computes.
void Gf256MulAccumSsse3(uint8_t* dst, const uint8_t* src, uint8_t factor,
                        size_t n) {
  if (factor == 0) return;
  const uint8_t* lo_row = kGfNib.lo[factor];
  const uint8_t* hi_row = kGfNib.hi[factor];
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(lo_row));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(hi_row));
  const __m128i mask = _mm_set1_epi8(0x0F);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    __m128i d = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i));
    const __m128i l = _mm_shuffle_epi8(lo, _mm_and_si128(s, mask));
    const __m128i h =
        _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
    d = _mm_xor_si128(d, _mm_xor_si128(l, h));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), d);
  }
  for (; i < n; ++i) {
    const uint8_t s = src[i];
    dst[i] ^= static_cast<uint8_t>(lo_row[s & 0x0F] ^ hi_row[s >> 4]);
  }
}

#endif  // __SSSE3__

#if defined(__PCLMUL__) && defined(__SSE4_1__)

// CRC-32 (IEEE, reflected 0xEDB88320) by carry-less-multiply folding,
// after Gopal et al., "Fast CRC Computation for Generic Polynomials
// Using PCLMULQDQ" (Intel whitepaper, 2009) — the same constants and
// schedule zlib's crc32_simd uses. Folds 64 bytes per iteration into
// four 128-bit accumulators, reduces to one, then Barrett-reduces to
// the 32-bit register. Requires n >= 64 and n % 16 == 0; the exported
// wrapper below stitches arbitrary head/tail bytes with Crc32Slice8
// (same polynomial, so the composition is bit-exact).
alignas(16) const uint64_t kK1K2[2] = {0x0154442bd4, 0x01c6e41596};
alignas(16) const uint64_t kK3K4[2] = {0x01751997d0, 0x00ccaa009e};
alignas(16) const uint64_t kK5K0[2] = {0x0163cd6124, 0x0000000000};
alignas(16) const uint64_t kPoly[2] = {0x01db710641, 0x01f7011641};

uint32_t Crc32PclmulBlock(uint32_t crc, const uint8_t* buf, size_t len) {
  __m128i x0, x1, x2, x3, x4, x5, x6, x7, x8, y5, y6, y7, y8;

  x1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x00));
  x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x10));
  x3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x20));
  x4 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x30));

  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(crc)));
  x0 = _mm_load_si128(reinterpret_cast<const __m128i*>(kK1K2));

  buf += 64;
  len -= 64;

  while (len >= 64) {
    x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
    x6 = _mm_clmulepi64_si128(x2, x0, 0x00);
    x7 = _mm_clmulepi64_si128(x3, x0, 0x00);
    x8 = _mm_clmulepi64_si128(x4, x0, 0x00);

    x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
    x2 = _mm_clmulepi64_si128(x2, x0, 0x11);
    x3 = _mm_clmulepi64_si128(x3, x0, 0x11);
    x4 = _mm_clmulepi64_si128(x4, x0, 0x11);

    y5 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x00));
    y6 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x10));
    y7 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x20));
    y8 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x30));

    x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), y5);
    x2 = _mm_xor_si128(_mm_xor_si128(x2, x6), y6);
    x3 = _mm_xor_si128(_mm_xor_si128(x3, x7), y7);
    x4 = _mm_xor_si128(_mm_xor_si128(x4, x8), y8);

    buf += 64;
    len -= 64;
  }

  // Fold the four accumulators into one.
  x0 = _mm_load_si128(reinterpret_cast<const __m128i*>(kK3K4));

  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x2), x5);

  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x3), x5);

  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x4), x5);

  // Single 16-byte folds for the remainder.
  while (len >= 16) {
    x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf));
    x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
    x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x2), x5);
    buf += 16;
    len -= 16;
  }

  // 128 -> 64 bits.
  x2 = _mm_clmulepi64_si128(x1, x0, 0x10);
  x3 = _mm_setr_epi32(~0, 0, ~0, 0);
  x1 = _mm_srli_si128(x1, 8);
  x1 = _mm_xor_si128(x1, x2);

  x0 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(kK5K0));

  x2 = _mm_srli_si128(x1, 4);
  x1 = _mm_and_si128(x1, x3);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_xor_si128(x1, x2);

  // Barrett reduction to 32 bits.
  x0 = _mm_load_si128(reinterpret_cast<const __m128i*>(kPoly));

  x2 = _mm_and_si128(x1, x3);
  x2 = _mm_clmulepi64_si128(x2, x0, 0x10);
  x2 = _mm_and_si128(x2, x3);
  x2 = _mm_clmulepi64_si128(x2, x0, 0x00);
  x1 = _mm_xor_si128(x1, x2);

  return static_cast<uint32_t>(_mm_extract_epi32(x1, 1));
}

uint32_t Crc32Pclmul(uint32_t crc, const uint8_t* data, size_t n) {
  if (n < 64) return Crc32Slice8(crc, data, n);
  const size_t main = n & ~static_cast<size_t>(15);
  crc = Crc32PclmulBlock(crc, data, main);
  return Crc32Slice8(crc, data + main, n - main);
}

#endif  // __PCLMUL__ && __SSE4_1__

}  // namespace

const IsaKernels& Ssse3Raw() {
  static const IsaKernels kernels = [] {
    IsaKernels k;
#if defined(__SSSE3__)
    k.gf256_mul_accum = &Gf256MulAccumSsse3;
#endif
#if defined(__PCLMUL__) && defined(__SSE4_1__)
    k.crc32_pclmul = &Crc32Pclmul;
#endif
    return k;
  }();
  return kernels;
}

}  // namespace internal
}  // namespace kernels
}  // namespace ule
