/// \file outer.h
/// \brief The inter-emblem ("outer") protection layer (paper §3.1):
/// "three parity emblems with each set of 17 data emblems. This results in
/// the full bit-for-bit restoration of data contained within a series of
/// 20 emblems in which any three are missing altogether."
///
/// A byte stream is split across data emblems of equal capacity C. Emblems
/// are sequenced in groups of 20: slots 0..16 carry data, slots 17..19
/// carry parity (RS(20,17) column-wise over the 17 data payloads,
/// zero-padded virtual payloads for unused slots in the final group).
/// Any ≤3 missing emblems per group are recovered by erasure decoding.

#ifndef ULE_MOCODER_OUTER_H_
#define ULE_MOCODER_OUTER_H_

#include <map>
#include <optional>
#include <vector>

#include "mocoder/emblem.h"
#include "support/bytes.h"
#include "support/status.h"

namespace ule {
namespace mocoder {

/// Emblems per group and the split between data and parity slots.
inline constexpr int kGroupSize = 20;
inline constexpr int kGroupData = 17;
inline constexpr int kGroupParity = 3;

/// Number of data emblems needed for `stream_len` bytes at capacity C.
int DataEmblemCount(size_t stream_len, int capacity);
/// Total emitted emblems (data + parity) for `stream_len` bytes.
int TotalEmblemCount(size_t stream_len, int capacity);

/// True when sequence slot `seq` is a parity slot.
constexpr bool IsParitySlot(uint16_t seq) {
  return (seq % kGroupSize) >= kGroupData;
}
/// Index into the data stream for a data slot (undefined for parity slots).
constexpr int DataIndexOf(uint16_t seq) {
  return static_cast<int>(seq / kGroupSize) * kGroupData +
         static_cast<int>(seq % kGroupSize);
}
/// Sequence slot of data emblem `data_index` (the inverse of DataIndexOf).
constexpr uint16_t SeqOfDataIndex(int data_index) {
  return static_cast<uint16_t>((data_index / kGroupData) * kGroupSize +
                               data_index % kGroupData);
}

/// \brief Position of sequence slot `seq` in the *emitted* emblem
/// sequence (= frame index within one stream's reel records). Virtual
/// zero emblems are not emitted, so in the final group the parity slots
/// follow the last real data slot directly; everywhere else the frame
/// index equals the sequence number. Returns -1 for a virtual slot.
int FrameIndexOfSeq(uint16_t seq, size_t stream_len, int capacity);

/// \brief Recovers the data payloads of ONE group from whatever decoded
/// payloads of it are present (keyed by absolute sequence number;
/// payloads of other groups are ignored). Returns kGroupData payloads of
/// `capacity` bytes each — virtual tail slots come back zero-filled.
/// Corruption when more than kGroupParity real members are missing.
/// This is the per-group step ReassembleStream runs over every group;
/// the selective-restore path calls it directly when a needed emblem
/// fails its inner decode and must be rebuilt from its group's parity.
Result<std::vector<Bytes>> RecoverGroupData(
    int group, const std::map<uint16_t, Bytes>& payloads, size_t stream_len,
    int capacity);

/// \brief Splits `stream` into per-emblem payloads including parity
/// emblems. Element i of the result is the payload for sequence number i
/// (slots that would hold data beyond the end of the stream are omitted by
/// returning std::nullopt — they are "virtual" zero emblems).
std::vector<std::optional<Bytes>> BuildGroupPayloads(BytesView stream,
                                                     int capacity);

/// \brief Reassembles the stream from decoded emblem payloads.
/// \param payloads seq -> payload (exactly capacity bytes each); missing
///        emblems are simply absent
/// \param stream_len total stream length (from any emblem header)
/// \param capacity per-emblem payload bytes
/// Recovers up to 3 missing emblems per group; fails with Corruption when
/// a group is missing more.
Result<Bytes> ReassembleStream(const std::map<uint16_t, Bytes>& payloads,
                               size_t stream_len, int capacity);

}  // namespace mocoder
}  // namespace ule

#endif  // ULE_MOCODER_OUTER_H_
