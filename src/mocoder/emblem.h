/// \file emblem.h
/// \brief Emblems: Micr'Olonys' archival 2D barcodes (paper §3.1, Fig. 1).
///
/// Unlike QR codes, emblems have no separate clocking pattern: the bit
/// signal and clock signal are paired via differential Manchester encoding
/// (one bit = two cells; a guaranteed transition on every bit boundary
/// carries the clock; a mid-bit transition encodes the bit). The data area
/// is surrounded by a thick black square and a row of large-scale
/// alternating dots for "fast and robust initial detection of the emblem
/// geometry and type".
///
/// ## Cell geometry (side = data_side + 10 cells)
///
///     3 cells   black border ring
///     2 cells   white gap ring
///     N x N     data area; row 0 is the sync/type row (alternating
///               2-cell blocks, inverted for system emblems), rows 1..N-1
///               carry the Manchester-modulated, RS-protected payload in
///               serpentine order.
///
/// ## Payload protection
/// container = 20-byte header + capacity payload bytes, zero-padded to a
/// multiple of 223, split into RS(255,223) blocks ("each holding 223 bytes
/// of user data and 32 redundancy bytes"), byte-interleaved across the
/// emblem so localised damage spreads over all blocks (≤ 7.2% damage per
/// emblem is corrected).

#ifndef ULE_MOCODER_EMBLEM_H_
#define ULE_MOCODER_EMBLEM_H_

#include <cstdint>
#include <vector>

#include "media/image.h"
#include "support/bytes.h"
#include "support/status.h"

namespace ule {
namespace mocoder {

/// Ring widths around the data area.
inline constexpr int kBorderCells = 3;
inline constexpr int kGapCells = 2;
/// Extra cells on each side of the data area.
inline constexpr int kFrameCells = kBorderCells + kGapCells;  // 5
/// Header bytes inside the emblem container.
inline constexpr int kHeaderSize = 20;
inline constexpr uint8_t kEmblemVersion = 1;

/// Stream identifiers (which archive stream an emblem belongs to).
enum class StreamId : uint8_t {
  kData = 0,    ///< the DBCoder-compressed database archive
  kSystem = 1,  ///< the DBDecode DynaRisc program ("system emblems")
};

/// Parsed emblem header.
struct EmblemHeader {
  StreamId stream = StreamId::kData;
  uint16_t seq = 0;         ///< position in the emblem sequence (see outer.h)
  uint16_t total = 0;       ///< emitted emblems in this stream
  uint32_t stream_len = 0;  ///< total stream bytes (for tail trimming)
  uint32_t payload_crc = 0;
};

/// \brief Boolean cell matrix of a full emblem (true = black).
struct CellGrid {
  int side = 0;  // full side including border/gap
  std::vector<uint8_t> cells;  // row-major, 1 = black

  uint8_t at(int x, int y) const { return cells[static_cast<size_t>(y) * side + x]; }
  void set(int x, int y, uint8_t v) { cells[static_cast<size_t>(y) * side + x] = v; }
};

/// Number of payload bytes one emblem carries for a given data-area side.
/// Fails (returns 0) when the geometry is too small for one RS block.
int EmblemCapacity(int data_side);

/// Number of RS(255,223) blocks for a given data-area side.
int EmblemBlocks(int data_side);

/// Builds the cell grid for one emblem.
/// \param payload exactly EmblemCapacity(data_side) bytes
Result<CellGrid> BuildEmblem(const EmblemHeader& header, BytesView payload,
                             int data_side);

/// Statistics of a successful emblem decode.
struct EmblemDecodeInfo {
  int rs_errors_corrected = 0;  ///< byte errors fixed by the inner code
  int blocks = 0;
};

/// \brief Decodes the sampled data-area intensities of an emblem
/// (data_side x data_side bytes, 0 = black) back into header + payload.
///
/// This is the exact algorithm the archived DynaRisc MODecode implements:
/// sync-row thresholding, differential-Manchester demodulation along the
/// serpentine, block de-interleaving, RS correction, header validation.
Result<Bytes> DecodeEmblemIntensities(BytesView intensities, int data_side,
                                      EmblemHeader* header,
                                      EmblemDecodeInfo* info = nullptr);

/// Renders a cell grid to pixels at `dots_per_cell`, with a quiet zone.
media::Image RenderEmblem(const CellGrid& grid, int dots_per_cell,
                          int quiet_cells = 2);

/// Serialises a header into its 20-byte wire form (exposed for tests and
/// for the DynaRisc decoder's conformance suite).
Bytes SerializeHeader(const EmblemHeader& header);
Result<EmblemHeader> ParseHeader(BytesView bytes);

}  // namespace mocoder
}  // namespace ule

#endif  // ULE_MOCODER_EMBLEM_H_
