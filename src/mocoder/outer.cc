#include "mocoder/outer.h"

#include <algorithm>

#include "rs/gf256.h"
#include "rs/reed_solomon.h"

namespace ule {
namespace mocoder {

int DataEmblemCount(size_t stream_len, int capacity) {
  if (stream_len == 0) return 1;  // an empty stream still gets one emblem
  return static_cast<int>((stream_len + static_cast<size_t>(capacity) - 1) /
                          static_cast<size_t>(capacity));
}

int TotalEmblemCount(size_t stream_len, int capacity) {
  const int d = DataEmblemCount(stream_len, capacity);
  const int groups = (d + kGroupData - 1) / kGroupData;
  const int last_group_data = d - (groups - 1) * kGroupData;
  return (groups - 1) * kGroupSize + last_group_data + kGroupParity;
}

int FrameIndexOfSeq(uint16_t seq, size_t stream_len, int capacity) {
  const int d = DataEmblemCount(stream_len, capacity);
  const int groups = (d + kGroupData - 1) / kGroupData;
  const int g = seq / kGroupSize;
  const int s = seq % kGroupSize;
  if (g >= groups) return -1;
  // Full groups emit all 20 slots, so the frame index is the sequence
  // number itself; only the final group omits its virtual data slots.
  if (g + 1 < groups) return seq;
  const int last_group_data = d - g * kGroupData;  // real data slots
  if (s < kGroupData) {
    return s < last_group_data ? g * kGroupSize + s : -1;  // -1: virtual
  }
  return g * kGroupSize + last_group_data + (s - kGroupData);
}

std::vector<std::optional<Bytes>> BuildGroupPayloads(BytesView stream,
                                                     int capacity) {
  const int d = DataEmblemCount(stream.size(), capacity);
  const int groups = (d + kGroupData - 1) / kGroupData;
  static const rs::Codec outer(kGroupSize, kGroupData);

  std::vector<std::optional<Bytes>> out(
      static_cast<size_t>(groups) * kGroupSize);
  for (int g = 0; g < groups; ++g) {
    // Collect the 17 (possibly virtual/zero, possibly tail-padded) data
    // payloads of this group.
    std::vector<Bytes> data(kGroupData,
                            Bytes(static_cast<size_t>(capacity), 0));
    for (int s = 0; s < kGroupData; ++s) {
      const int idx = g * kGroupData + s;
      if (idx >= d) continue;  // virtual zero emblem (not emitted)
      const size_t begin = static_cast<size_t>(idx) * capacity;
      const size_t end =
          std::min(stream.size(), begin + static_cast<size_t>(capacity));
      if (begin < end) {
        std::copy(stream.begin() + begin, stream.begin() + end,
                  data[static_cast<size_t>(s)].begin());
      }
      out[static_cast<size_t>(g) * kGroupSize + s] =
          data[static_cast<size_t>(s)];
    }
    // RS(20,17), one codeword per byte position — but computed as whole
    // rows: parity row p is the GF(256) linear combination
    // `XOR_s weights[s][p] * data_row_s` (parity is linear in the data),
    // which the SIMD MulSliceAccum kernel walks 16/32 bytes at a time.
    // Byte-identical to the old per-column Encode loop.
    static const std::vector<Bytes> weights = outer.ParityWeights();
    std::vector<Bytes> parity(kGroupParity,
                              Bytes(static_cast<size_t>(capacity), 0));
    for (int s = 0; s < kGroupData; ++s) {
      for (int p = 0; p < kGroupParity; ++p) {
        rs::Gf256::MulSliceAccum(
            parity[static_cast<size_t>(p)].data(),
            data[static_cast<size_t>(s)].data(),
            weights[static_cast<size_t>(s)][static_cast<size_t>(p)],
            static_cast<size_t>(capacity));
      }
    }
    for (int p = 0; p < kGroupParity; ++p) {
      out[static_cast<size_t>(g) * kGroupSize + kGroupData + p] =
          parity[static_cast<size_t>(p)];
    }
  }
  return out;
}

Result<std::vector<Bytes>> RecoverGroupData(
    int group, const std::map<uint16_t, Bytes>& payloads, size_t stream_len,
    int capacity) {
  const int d = DataEmblemCount(stream_len, capacity);
  static const rs::Codec outer(kGroupSize, kGroupData);

  // Which slots are real in this group, which are present?
  std::vector<const Bytes*> slot(kGroupSize, nullptr);
  std::vector<int> missing_real;
  for (int s = 0; s < kGroupSize; ++s) {
    const uint16_t seq = static_cast<uint16_t>(group * kGroupSize + s);
    const bool is_virtual =
        s < kGroupData && (group * kGroupData + s) >= d;
    auto it = payloads.find(seq);
    if (it != payloads.end()) {
      if (static_cast<int>(it->second.size()) != capacity) {
        return Status::InvalidArgument("emblem payload has wrong size");
      }
      slot[static_cast<size_t>(s)] = &it->second;
    } else if (!is_virtual) {
      missing_real.push_back(s);
    }
  }
  if (static_cast<int>(missing_real.size()) > kGroupParity) {
    return Status::Corruption(
        "group " + std::to_string(group) + " lost " +
        std::to_string(missing_real.size()) +
        " emblems; only 3 of 20 are recoverable");
  }

  std::vector<Bytes> recovered(missing_real.size(),
                               Bytes(static_cast<size_t>(capacity), 0));
  if (!missing_real.empty()) {
    // Bulk erasure repair, whole rows at a time. Per byte column the
    // received word (zeros at the missing slots) is codeword + e with e
    // supported on the missing positions, so its syndromes reduce to
    // `S_i = XOR_m e_m * SyndromeFactor(i, pos_m)` — a rho×rho linear
    // system whose matrix depends only on the erasure *positions*.
    // Accumulate syndrome rows with one MulSliceAccum per present slot,
    // solve the little system once, and every missing row is a linear
    // combination of syndrome rows.
    const size_t rho = missing_real.size();
    std::vector<Bytes> synd(kGroupParity,
                            Bytes(static_cast<size_t>(capacity), 0));
    for (int i = 0; i < kGroupParity; ++i) {
      for (int s = 0; s < kGroupSize; ++s) {
        if (!slot[static_cast<size_t>(s)]) continue;  // zero row
        rs::Gf256::MulSliceAccum(synd[static_cast<size_t>(i)].data(),
                                 slot[static_cast<size_t>(s)]->data(),
                                 outer.SyndromeFactor(i, s),
                                 static_cast<size_t>(capacity));
      }
    }
    std::vector<std::vector<uint8_t>> a(rho, std::vector<uint8_t>(rho, 0));
    for (size_t i = 0; i < rho; ++i) {
      for (size_t m = 0; m < rho; ++m) {
        a[i][m] = outer.SyndromeFactor(static_cast<int>(i), missing_real[m]);
      }
    }
    ULE_ASSIGN_OR_RETURN(std::vector<std::vector<uint8_t>> inv,
                         rs::InvertGf256Matrix(std::move(a)));
    for (size_t m = 0; m < rho; ++m) {
      for (size_t i = 0; i < rho; ++i) {
        rs::Gf256::MulSliceAccum(recovered[m].data(),
                                 synd[static_cast<size_t>(i)].data(),
                                 inv[m][i], static_cast<size_t>(capacity));
      }
    }

    // The solve consumes rho of the 3 syndromes; when rho < 3 the spare
    // ones must also vanish for the repaired word to be a codeword.
    // Columns where they don't hold a byte *error* on top of the
    // erasures — exactly what the full decoder can still fix (or
    // reject) — so those fall back to the per-column path, ascending,
    // which keeps results and first-failure statuses identical to the
    // old all-columns Decode loop.
    Bytes residual(static_cast<size_t>(capacity), 0);
    for (int i = static_cast<int>(rho); i < kGroupParity; ++i) {
      Bytes check = synd[static_cast<size_t>(i)];
      for (size_t m = 0; m < rho; ++m) {
        rs::Gf256::MulSliceAccum(check.data(), recovered[m].data(),
                                 outer.SyndromeFactor(i, missing_real[m]),
                                 static_cast<size_t>(capacity));
      }
      for (int j = 0; j < capacity; ++j) {
        residual[static_cast<size_t>(j)] |= check[static_cast<size_t>(j)];
      }
    }
    Bytes column(kGroupSize, 0);
    for (int j = 0; j < capacity; ++j) {
      if (residual[static_cast<size_t>(j)] == 0) continue;
      for (int s = 0; s < kGroupSize; ++s) {
        column[static_cast<size_t>(s)] =
            slot[static_cast<size_t>(s)]
                ? (*slot[static_cast<size_t>(s)])[static_cast<size_t>(j)]
                : 0;
      }
      auto fixed = outer.Decode(column, missing_real);
      if (!fixed.ok()) return fixed.status();
      for (size_t m = 0; m < rho; ++m) {
        if (missing_real[m] < kGroupData) {
          recovered[m][static_cast<size_t>(j)] =
              fixed.value()[static_cast<size_t>(missing_real[m])];
        }
      }
    }
  }

  std::vector<Bytes> data(kGroupData, Bytes(static_cast<size_t>(capacity), 0));
  for (int s = 0; s < kGroupData; ++s) {
    if (slot[static_cast<size_t>(s)]) {
      data[static_cast<size_t>(s)] = *slot[static_cast<size_t>(s)];
    } else if (auto it = std::find(missing_real.begin(), missing_real.end(), s);
               it != missing_real.end()) {
      data[static_cast<size_t>(s)] =
          recovered[static_cast<size_t>(it - missing_real.begin())];
    }
    // else: a virtual tail slot — stays zero-filled.
  }
  return data;
}

Result<Bytes> ReassembleStream(const std::map<uint16_t, Bytes>& payloads,
                               size_t stream_len, int capacity) {
  const int d = DataEmblemCount(stream_len, capacity);
  const int groups = (d + kGroupData - 1) / kGroupData;

  Bytes stream;
  stream.reserve(stream_len);
  for (int g = 0; g < groups; ++g) {
    ULE_ASSIGN_OR_RETURN(std::vector<Bytes> data,
                         RecoverGroupData(g, payloads, stream_len, capacity));
    for (int s = 0; s < kGroupData; ++s) {
      if (g * kGroupData + s >= d) break;
      const size_t want = std::min(static_cast<size_t>(capacity),
                                   stream_len - stream.size());
      stream.insert(stream.end(), data[static_cast<size_t>(s)].begin(),
                    data[static_cast<size_t>(s)].begin() +
                        static_cast<std::ptrdiff_t>(want));
    }
  }
  return stream;
}

}  // namespace mocoder
}  // namespace ule
