#include "mocoder/outer.h"

#include <algorithm>

#include "rs/reed_solomon.h"

namespace ule {
namespace mocoder {

int DataEmblemCount(size_t stream_len, int capacity) {
  if (stream_len == 0) return 1;  // an empty stream still gets one emblem
  return static_cast<int>((stream_len + static_cast<size_t>(capacity) - 1) /
                          static_cast<size_t>(capacity));
}

int TotalEmblemCount(size_t stream_len, int capacity) {
  const int d = DataEmblemCount(stream_len, capacity);
  const int groups = (d + kGroupData - 1) / kGroupData;
  const int last_group_data = d - (groups - 1) * kGroupData;
  return (groups - 1) * kGroupSize + last_group_data + kGroupParity;
}

int FrameIndexOfSeq(uint16_t seq, size_t stream_len, int capacity) {
  const int d = DataEmblemCount(stream_len, capacity);
  const int groups = (d + kGroupData - 1) / kGroupData;
  const int g = seq / kGroupSize;
  const int s = seq % kGroupSize;
  if (g >= groups) return -1;
  // Full groups emit all 20 slots, so the frame index is the sequence
  // number itself; only the final group omits its virtual data slots.
  if (g + 1 < groups) return seq;
  const int last_group_data = d - g * kGroupData;  // real data slots
  if (s < kGroupData) {
    return s < last_group_data ? g * kGroupSize + s : -1;  // -1: virtual
  }
  return g * kGroupSize + last_group_data + (s - kGroupData);
}

std::vector<std::optional<Bytes>> BuildGroupPayloads(BytesView stream,
                                                     int capacity) {
  const int d = DataEmblemCount(stream.size(), capacity);
  const int groups = (d + kGroupData - 1) / kGroupData;
  static const rs::Codec outer(kGroupSize, kGroupData);

  std::vector<std::optional<Bytes>> out(
      static_cast<size_t>(groups) * kGroupSize);
  for (int g = 0; g < groups; ++g) {
    // Collect the 17 (possibly virtual/zero, possibly tail-padded) data
    // payloads of this group.
    std::vector<Bytes> data(kGroupData,
                            Bytes(static_cast<size_t>(capacity), 0));
    for (int s = 0; s < kGroupData; ++s) {
      const int idx = g * kGroupData + s;
      if (idx >= d) continue;  // virtual zero emblem (not emitted)
      const size_t begin = static_cast<size_t>(idx) * capacity;
      const size_t end =
          std::min(stream.size(), begin + static_cast<size_t>(capacity));
      if (begin < end) {
        std::copy(stream.begin() + begin, stream.begin() + end,
                  data[static_cast<size_t>(s)].begin());
      }
      out[static_cast<size_t>(g) * kGroupSize + s] =
          data[static_cast<size_t>(s)];
    }
    // Column-wise RS(20,17): three parity bytes per byte position.
    std::vector<Bytes> parity(kGroupParity,
                              Bytes(static_cast<size_t>(capacity), 0));
    Bytes column(kGroupData);
    for (int j = 0; j < capacity; ++j) {
      for (int s = 0; s < kGroupData; ++s) {
        column[static_cast<size_t>(s)] = data[static_cast<size_t>(s)][static_cast<size_t>(j)];
      }
      Bytes cw = outer.Encode(column).TakeValue();
      for (int p = 0; p < kGroupParity; ++p) {
        parity[static_cast<size_t>(p)][static_cast<size_t>(j)] =
            cw[static_cast<size_t>(kGroupData + p)];
      }
    }
    for (int p = 0; p < kGroupParity; ++p) {
      out[static_cast<size_t>(g) * kGroupSize + kGroupData + p] =
          parity[static_cast<size_t>(p)];
    }
  }
  return out;
}

Result<std::vector<Bytes>> RecoverGroupData(
    int group, const std::map<uint16_t, Bytes>& payloads, size_t stream_len,
    int capacity) {
  const int d = DataEmblemCount(stream_len, capacity);
  static const rs::Codec outer(kGroupSize, kGroupData);

  // Which slots are real in this group, which are present?
  std::vector<const Bytes*> slot(kGroupSize, nullptr);
  std::vector<int> missing_real;
  for (int s = 0; s < kGroupSize; ++s) {
    const uint16_t seq = static_cast<uint16_t>(group * kGroupSize + s);
    const bool is_virtual =
        s < kGroupData && (group * kGroupData + s) >= d;
    auto it = payloads.find(seq);
    if (it != payloads.end()) {
      if (static_cast<int>(it->second.size()) != capacity) {
        return Status::InvalidArgument("emblem payload has wrong size");
      }
      slot[static_cast<size_t>(s)] = &it->second;
    } else if (!is_virtual) {
      missing_real.push_back(s);
    }
  }
  if (static_cast<int>(missing_real.size()) > kGroupParity) {
    return Status::Corruption(
        "group " + std::to_string(group) + " lost " +
        std::to_string(missing_real.size()) +
        " emblems; only 3 of 20 are recoverable");
  }

  std::vector<Bytes> recovered(missing_real.size(),
                               Bytes(static_cast<size_t>(capacity), 0));
  if (!missing_real.empty()) {
    Bytes column(kGroupSize, 0);
    for (int j = 0; j < capacity; ++j) {
      for (int s = 0; s < kGroupSize; ++s) {
        column[static_cast<size_t>(s)] =
            slot[static_cast<size_t>(s)]
                ? (*slot[static_cast<size_t>(s)])[static_cast<size_t>(j)]
                : 0;
      }
      auto fixed = outer.Decode(column, missing_real);
      if (!fixed.ok()) return fixed.status();
      for (size_t m = 0; m < missing_real.size(); ++m) {
        recovered[m][static_cast<size_t>(j)] =
            fixed.value()[static_cast<size_t>(missing_real[m])];
      }
    }
  }

  std::vector<Bytes> data(kGroupData, Bytes(static_cast<size_t>(capacity), 0));
  for (int s = 0; s < kGroupData; ++s) {
    if (slot[static_cast<size_t>(s)]) {
      data[static_cast<size_t>(s)] = *slot[static_cast<size_t>(s)];
    } else if (auto it = std::find(missing_real.begin(), missing_real.end(), s);
               it != missing_real.end()) {
      data[static_cast<size_t>(s)] =
          recovered[static_cast<size_t>(it - missing_real.begin())];
    }
    // else: a virtual tail slot — stays zero-filled.
  }
  return data;
}

Result<Bytes> ReassembleStream(const std::map<uint16_t, Bytes>& payloads,
                               size_t stream_len, int capacity) {
  const int d = DataEmblemCount(stream_len, capacity);
  const int groups = (d + kGroupData - 1) / kGroupData;

  Bytes stream;
  stream.reserve(stream_len);
  for (int g = 0; g < groups; ++g) {
    ULE_ASSIGN_OR_RETURN(std::vector<Bytes> data,
                         RecoverGroupData(g, payloads, stream_len, capacity));
    for (int s = 0; s < kGroupData; ++s) {
      if (g * kGroupData + s >= d) break;
      const size_t want = std::min(static_cast<size_t>(capacity),
                                   stream_len - stream.size());
      stream.insert(stream.end(), data[static_cast<size_t>(s)].begin(),
                    data[static_cast<size_t>(s)].begin() +
                        static_cast<std::ptrdiff_t>(want));
    }
  }
  return stream;
}

}  // namespace mocoder
}  // namespace ule
