/// \file detect.h
/// \brief Emblem localisation in scanned images.
///
/// Implements the host-side preprocessing step of restoration (§3.3): the
/// scanned frame is reduced to "a linear flat array of pixel intensities"
/// on the emblem's cell lattice. The thick black border square provides
/// geometry: its four edges are line-fitted, corners intersected, and a
/// radial-distortion coefficient is calibrated from the edges' curvature
/// (microfilm scanner lenses "change straight lines into curves, usually
/// near the edge of the field of view", §3.1). Cell centres are then
/// sampled bilinearly.

#ifndef ULE_MOCODER_DETECT_H_
#define ULE_MOCODER_DETECT_H_

#include "media/image.h"
#include "support/bytes.h"
#include "support/status.h"

namespace ule {
namespace mocoder {

/// Diagnostics from a detection pass.
struct DetectInfo {
  double rotation_deg = 0;   ///< estimated skew
  double cell_pitch = 0;     ///< estimated pixels per cell
  double lens_k = 0;         ///< calibrated radial distortion
};

/// \brief Locates the emblem in `scan` and samples its data area.
/// \param data_side N, the data-area side in cells (known from the
///        Bootstrap / archive parameters)
/// \returns N*N intensities, row-major (0 = black), ready for
///          DecodeEmblemIntensities or the DynaRisc MODecode program.
Result<Bytes> SampleEmblem(const media::Image& scan, int data_side,
                           DetectInfo* info = nullptr);

}  // namespace mocoder
}  // namespace ule

#endif  // ULE_MOCODER_DETECT_H_
