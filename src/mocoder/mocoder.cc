#include "mocoder/mocoder.h"

#include "support/crc32.h"

namespace ule {
namespace mocoder {

Result<std::vector<EncodedEmblem>> EncodeStream(BytesView stream, StreamId id,
                                                const Options& options) {
  const int capacity = EmblemCapacity(options.data_side);
  if (capacity <= 0) {
    return Status::InvalidArgument("data_side too small for one RS block");
  }
  if (stream.size() > 0xFFFFFFFFull) {
    return Status::InvalidArgument("stream too large for emblem header");
  }
  const auto payloads = BuildGroupPayloads(stream, capacity);
  const int total = TotalEmblemCount(stream.size(), capacity);

  std::vector<EncodedEmblem> out;
  out.reserve(payloads.size());
  for (size_t seq = 0; seq < payloads.size(); ++seq) {
    if (!payloads[seq]) continue;  // virtual zero emblem
    EmblemHeader h;
    h.stream = id;
    h.seq = static_cast<uint16_t>(seq);
    h.total = static_cast<uint16_t>(total);
    h.stream_len = static_cast<uint32_t>(stream.size());
    h.payload_crc = Crc32(*payloads[seq]);
    ULE_ASSIGN_OR_RETURN(CellGrid grid,
                         BuildEmblem(h, *payloads[seq], options.data_side));
    out.push_back(EncodedEmblem{h, std::move(grid)});
  }
  return out;
}

media::Image Render(const EncodedEmblem& emblem, const Options& options) {
  return RenderEmblem(emblem.grid, options.dots_per_cell, options.quiet_cells);
}

Result<Bytes> DecodeSampledGrids(const std::vector<Bytes>& grids, StreamId id,
                                 const Options& options, DecodeStats* stats) {
  std::map<uint16_t, Bytes> payloads;
  uint32_t stream_len = 0;
  bool have_len = false;
  DecodeStats local;
  local.emblems_total = static_cast<int>(grids.size());

  for (const Bytes& grid : grids) {
    EmblemHeader h;
    EmblemDecodeInfo info;
    auto payload = DecodeEmblemIntensities(grid, options.data_side, &h, &info);
    if (!payload.ok()) continue;  // lost emblem; the outer code's problem
    if (h.stream != id) continue;
    local.emblems_decoded += 1;
    local.rs_errors_corrected += info.rs_errors_corrected;
    stream_len = h.stream_len;
    have_len = true;
    payloads[h.seq] = payload.TakeValue();
  }
  if (!have_len) {
    return Status::Corruption("no emblem of the requested stream decoded");
  }
  const int capacity = EmblemCapacity(options.data_side);
  const int data_count = DataEmblemCount(stream_len, capacity);
  int present_data = 0;
  for (const auto& [seq, payload] : payloads) {
    if (!IsParitySlot(seq) && DataIndexOf(seq) < data_count) ++present_data;
  }
  ULE_ASSIGN_OR_RETURN(Bytes stream,
                       ReassembleStream(payloads, stream_len, capacity));
  local.emblems_recovered = data_count - present_data;
  if (stats) *stats = local;
  return stream;
}

Result<Bytes> DecodeImages(const std::vector<media::Image>& scans, StreamId id,
                           const Options& options, DecodeStats* stats) {
  std::vector<Bytes> grids;
  grids.reserve(scans.size());
  for (const media::Image& scan : scans) {
    auto sampled = SampleEmblem(scan, options.data_side);
    if (sampled.ok()) grids.push_back(sampled.TakeValue());
  }
  return DecodeSampledGrids(grids, id, options, stats);
}

}  // namespace mocoder
}  // namespace ule
