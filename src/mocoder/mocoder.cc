#include "mocoder/mocoder.h"

#include <map>
#include <optional>

#include "support/crc32.h"
#include "support/parallel.h"

namespace ule {
namespace mocoder {

Status ValidateOptions(const Options& options) {
  if (options.data_side <= 0) {
    return Status::InvalidArgument("emblem data_side must be positive");
  }
  if (options.dots_per_cell <= 0) {
    return Status::InvalidArgument("emblem dots_per_cell must be positive");
  }
  if (options.quiet_cells < 0) {
    return Status::InvalidArgument("emblem quiet_cells must be >= 0");
  }
  if (options.threads < 0) {
    return Status::InvalidArgument("emblem threads must be >= 0");
  }
  return Status::OK();
}

Result<std::vector<EncodedEmblem>> EncodeStream(BytesView stream, StreamId id,
                                                const Options& options) {
  ULE_RETURN_IF_ERROR(ValidateOptions(options));
  const int capacity = EmblemCapacity(options.data_side);
  if (capacity <= 0) {
    return Status::InvalidArgument("data_side too small for one RS block");
  }
  if (stream.size() > 0xFFFFFFFFull) {
    return Status::InvalidArgument("stream too large for emblem header");
  }
  const auto payloads = BuildGroupPayloads(stream, capacity);
  const int total = TotalEmblemCount(stream.size(), capacity);

  // Per-emblem grid construction fans out across workers; each slot is
  // written by exactly one iteration and collected in sequence order, so
  // the result is identical to the serial loop.
  std::vector<std::optional<EncodedEmblem>> slots(payloads.size());
  ULE_RETURN_IF_ERROR(ParallelFor(
      0, payloads.size(),
      [&](size_t seq) -> Status {
        if (!payloads[seq]) return Status::OK();  // virtual zero emblem
        EmblemHeader h;
        h.stream = id;
        h.seq = static_cast<uint16_t>(seq);
        h.total = static_cast<uint16_t>(total);
        h.stream_len = static_cast<uint32_t>(stream.size());
        h.payload_crc = Crc32(*payloads[seq]);
        ULE_ASSIGN_OR_RETURN(
            CellGrid grid, BuildEmblem(h, *payloads[seq], options.data_side));
        slots[seq] = EncodedEmblem{h, std::move(grid)};
        return Status::OK();
      },
      options.threads));

  std::vector<EncodedEmblem> out;
  out.reserve(slots.size());
  for (auto& slot : slots) {
    if (slot) out.push_back(std::move(*slot));
  }
  return out;
}

media::Image Render(const EncodedEmblem& emblem, const Options& options) {
  return RenderEmblem(emblem.grid, options.dots_per_cell, options.quiet_cells);
}

std::vector<media::Image> RenderAll(const std::vector<EncodedEmblem>& emblems,
                                    const Options& options) {
  std::vector<media::Image> images(emblems.size());
  (void)ParallelFor(
      0, emblems.size(),
      [&](size_t i) -> Status {
        images[i] = Render(emblems[i], options);
        return Status::OK();
      },
      options.threads);
  return images;
}

Result<Bytes> DecodeSampledGrids(const std::vector<Bytes>& grids, StreamId id,
                                 const Options& options, DecodeStats* stats) {
  ULE_RETURN_IF_ERROR(ValidateOptions(options));

  // Stage 1 (parallel): independent per-emblem inner decode into
  // per-index slots.
  struct Decoded {
    bool ok = false;
    EmblemHeader header;
    Bytes payload;
    int rs_errors_corrected = 0;
  };
  std::vector<Decoded> decoded(grids.size());
  ULE_RETURN_IF_ERROR(ParallelFor(
      0, grids.size(),
      [&](size_t i) -> Status {
        EmblemHeader h;
        EmblemDecodeInfo info;
        auto payload =
            DecodeEmblemIntensities(grids[i], options.data_side, &h, &info);
        if (!payload.ok()) return Status::OK();  // lost emblem; outer code
        if (h.stream != id) return Status::OK();
        decoded[i] = Decoded{true, h, payload.TakeValue(),
                             info.rs_errors_corrected};
        return Status::OK();
      },
      options.threads));

  // Stage 2 (serial, index order): merge + stats aggregation. Later
  // duplicates of a sequence number overwrite earlier ones, exactly like
  // the serial loop did.
  std::map<uint16_t, Bytes> payloads;
  uint32_t stream_len = 0;
  bool have_len = false;
  DecodeStats local;
  local.emblems_total = static_cast<int>(grids.size());
  for (Decoded& d : decoded) {
    if (!d.ok) continue;
    local.emblems_decoded += 1;
    local.rs_errors_corrected += d.rs_errors_corrected;
    stream_len = d.header.stream_len;
    have_len = true;
    payloads[d.header.seq] = std::move(d.payload);
  }
  if (!have_len) {
    return Status::Corruption("no emblem of the requested stream decoded");
  }
  const int capacity = EmblemCapacity(options.data_side);
  const int data_count = DataEmblemCount(stream_len, capacity);
  int present_data = 0;
  for (const auto& [seq, payload] : payloads) {
    if (!IsParitySlot(seq) && DataIndexOf(seq) < data_count) ++present_data;
  }
  ULE_ASSIGN_OR_RETURN(Bytes stream,
                       ReassembleStream(payloads, stream_len, capacity));
  local.emblems_recovered = data_count - present_data;
  if (stats) *stats = local;
  return stream;
}

Result<Bytes> DecodeImages(const std::vector<media::Image>& scans, StreamId id,
                           const Options& options, DecodeStats* stats) {
  ULE_RETURN_IF_ERROR(ValidateOptions(options));

  // Sample each scan in parallel, then collect in scan order (failed
  // detections are dropped, as before).
  std::vector<std::optional<Bytes>> sampled(scans.size());
  ULE_RETURN_IF_ERROR(ParallelFor(
      0, scans.size(),
      [&](size_t i) -> Status {
        auto cells = SampleEmblem(scans[i], options.data_side);
        if (cells.ok()) sampled[i] = cells.TakeValue();
        return Status::OK();
      },
      options.threads));
  std::vector<Bytes> grids;
  grids.reserve(scans.size());
  for (auto& s : sampled) {
    if (s) grids.push_back(std::move(*s));
  }
  return DecodeSampledGrids(grids, id, options, stats);
}

}  // namespace mocoder
}  // namespace ule
