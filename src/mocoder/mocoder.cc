#include "mocoder/mocoder.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <map>
#include <mutex>

#include "support/crc32.h"
#include "support/parallel.h"

namespace ule {
namespace mocoder {

Status ValidateOptions(const Options& options) {
  if (options.data_side <= 0) {
    return Status::InvalidArgument("emblem data_side must be positive");
  }
  if (options.dots_per_cell <= 0) {
    return Status::InvalidArgument("emblem dots_per_cell must be positive");
  }
  if (options.quiet_cells < 0) {
    return Status::InvalidArgument("emblem quiet_cells must be >= 0");
  }
  if (options.threads < 0) {
    return Status::InvalidArgument("emblem threads must be >= 0");
  }
  return Status::OK();
}

Status EncodeToSink(BytesView stream, StreamId id, const Options& options,
                    bool render, const EmblemSink& sink) {
  ULE_RETURN_IF_ERROR(ValidateOptions(options));
  const int capacity = EmblemCapacity(options.data_side);
  if (capacity <= 0) {
    return Status::InvalidArgument("data_side too small for one RS block");
  }
  if (stream.size() > 0xFFFFFFFFull) {
    return Status::InvalidArgument("stream too large for emblem header");
  }
  const auto payloads = BuildGroupPayloads(stream, capacity);
  const int total = TotalEmblemCount(stream.size(), capacity);

  // The bounded channel between the construction stage and the sink: ring
  // slots reused modulo the window. ParallelForOrdered guarantees that
  // produce(seq) does not start before consume(seq - window) returned, so
  // at most `window` grids/frames are alive at once — O(threads × emblem)
  // instead of O(archive).
  int workers = ResolveThreadCount(options.threads);
  workers = std::min<int>(workers, ThreadPool::kMaxThreads);
  const int window = std::max(2, 2 * workers);
  struct Slot {
    std::optional<EncodedEmblem> emblem;  // nullopt: virtual zero emblem
    media::Image frame;
  };
  std::vector<Slot> ring(static_cast<size_t>(window));

  return ParallelForOrdered(
      0, payloads.size(),
      [&](size_t seq) -> Status {
        Slot& slot = ring[seq % static_cast<size_t>(window)];
        if (!payloads[seq]) return Status::OK();  // virtual zero emblem
        EmblemHeader h;
        h.stream = id;
        h.seq = static_cast<uint16_t>(seq);
        h.total = static_cast<uint16_t>(total);
        h.stream_len = static_cast<uint32_t>(stream.size());
        h.payload_crc = Crc32(*payloads[seq]);
        ULE_ASSIGN_OR_RETURN(
            CellGrid grid, BuildEmblem(h, *payloads[seq], options.data_side));
        slot.emblem = EncodedEmblem{h, std::move(grid)};
        if (render) slot.frame = Render(*slot.emblem, options);
        return Status::OK();
      },
      [&](size_t seq) -> Status {
        Slot& slot = ring[seq % static_cast<size_t>(window)];
        if (!slot.emblem) return Status::OK();
        Status s = sink(std::move(*slot.emblem), std::move(slot.frame));
        slot.emblem.reset();
        slot.frame = media::Image();
        return s;
      },
      options.threads, window);
}

Result<std::vector<EncodedEmblem>> EncodeStream(BytesView stream, StreamId id,
                                                const Options& options) {
  std::vector<EncodedEmblem> out;
  ULE_RETURN_IF_ERROR(EncodeToSink(
      stream, id, options, /*render=*/false,
      [&out](EncodedEmblem&& emblem, media::Image&&) -> Status {
        out.push_back(std::move(emblem));
        return Status::OK();
      }));
  return out;
}

media::Image Render(const EncodedEmblem& emblem, const Options& options) {
  return RenderEmblem(emblem.grid, options.dots_per_cell, options.quiet_cells);
}

std::vector<media::Image> RenderAll(const std::vector<EncodedEmblem>& emblems,
                                    const Options& options) {
  std::vector<media::Image> images(emblems.size());
  (void)ParallelFor(
      0, emblems.size(),
      [&](size_t i) -> Status {
        images[i] = Render(emblems[i], options);
        return Status::OK();
      },
      options.threads);
  return images;
}

// ---------------------------------------------------------------------------
// StreamDecoder
// ---------------------------------------------------------------------------

namespace {

/// The built-in GridDecodeFn: the contemporary C++ inner decode.
GridDecodeFn NativeGridDecode(int data_side) {
  return [data_side](BytesView grid) {
    GridDecodeResult out;
    EmblemHeader h;
    EmblemDecodeInfo info;
    auto payload = DecodeEmblemIntensities(grid, data_side, &h, &info);
    if (!payload.ok()) return out;  // lost emblem; the outer code recovers
    out.ok = true;
    out.header = h;
    out.payload = payload.TakeValue();
    out.rs_errors_corrected = info.rs_errors_corrected;
    return out;
  };
}

}  // namespace

struct StreamDecoder::Impl {
  StreamId id = StreamId::kData;
  Options options;
  GridDecodeFn decode;
  bool count_unsampled = false;
  Status init = Status::OK();
  int workers = 1;
  bool parallel = false;
  int helpers_spawned = 0;
  bool finished = false;

  /// Per-push outcome, written by exactly one processor. Deque: element
  /// addresses are stable under push_back, so workers hold plain pointers
  /// while the (single) pushing thread grows it.
  struct Record {
    bool sampled = false;
    GridDecodeResult r;
  };
  std::deque<Record> records;

  /// One queued unit of work: a scan (owned or borrowed) to sample, or an
  /// already-sampled grid view.
  struct Item {
    size_t index = 0;  ///< push order, for lowest-index exception reporting
    Record* rec = nullptr;
    media::Image scan_owned;  ///< used when scan_view is null and !is_grid
    const media::Image* scan_view = nullptr;
    BytesView grid_view;
    bool is_grid = false;
  };
  std::unique_ptr<BoundedChannel<Item>> channel;
  std::mutex mu;
  std::condition_variable cv;
  int active = 0;  ///< helper tasks currently draining the channel
  /// Lowest push index whose processing threw (SIZE_MAX = none) and the
  /// captured exception; Finish rethrows it, matching ParallelFor's
  /// lowest-index semantics. Guarded by mu.
  size_t first_thrown = static_cast<size_t>(-1);
  std::exception_ptr thrown;

  /// Samples (when needed) and decodes one item into its record. Runs on
  /// pool workers and, when the window is full or during Finish, on the
  /// pushing thread itself — that inline fallback is what keeps the
  /// decoder deadlock-free on a saturated shared pool. Never throws:
  /// pool tasks must not, and a throw on the pushing thread mid-Finish
  /// would let the destructor skip its drain-and-wait while helpers still
  /// hold borrowed scan views.
  void Process(Item& item) {
    try {
      ProcessOrThrow(item);
    } catch (...) {
      std::unique_lock<std::mutex> lock(mu);
      if (item.index < first_thrown) {
        first_thrown = item.index;
        thrown = std::current_exception();
      }
    }
  }

  void ProcessOrThrow(Item& item) {
    Bytes sampled_storage;
    BytesView grid;
    if (item.is_grid) {
      item.rec->sampled = true;
      grid = item.grid_view;
    } else {
      const media::Image& scan =
          item.scan_view != nullptr ? *item.scan_view : item.scan_owned;
      auto cells = SampleEmblem(scan, options.data_side);
      if (!cells.ok()) return;  // rec->sampled stays false
      item.rec->sampled = true;
      sampled_storage = cells.TakeValue();
      grid = sampled_storage;
    }
    GridDecodeResult r = decode(grid);
    // The stream-id filter is uniform across decode functions: an emblem
    // of the other stream is a valid decode but not part of this stream.
    if (r.ok && r.header.stream != id) r.ok = false;
    if (!r.ok) r.payload.clear();
    item.rec->r = std::move(r);
  }

  void HelperLoop() {
    {
      std::unique_lock<std::mutex> lock(mu);
      ++active;
    }
    while (auto item = channel->Pop()) Process(*item);
    {
      std::unique_lock<std::mutex> lock(mu);
      --active;
    }
    cv.notify_all();
  }
};

StreamDecoder::StreamDecoder(StreamId id, const Options& options,
                             GridDecodeFn decode, bool count_unsampled)
    : impl_(std::make_shared<Impl>()) {
  impl_->id = id;
  impl_->options = options;
  impl_->decode =
      decode ? std::move(decode) : NativeGridDecode(options.data_side);
  impl_->count_unsampled = count_unsampled;
  impl_->init = ValidateOptions(options);
  if (!impl_->init.ok()) return;
  impl_->workers =
      std::min(ResolveThreadCount(options.threads), ThreadPool::kMaxThreads);
  impl_->parallel = impl_->workers > 1;
  if (impl_->parallel) {
    impl_->channel = std::make_unique<BoundedChannel<Impl::Item>>(
        static_cast<size_t>(2 * impl_->workers));
  }
}

StreamDecoder::~StreamDecoder() {
  if (impl_ == nullptr || impl_->finished || !impl_->parallel) return;
  // Abandoned without Finish (e.g. an exception unwound the caller):
  // drain and wait exactly like Finish. Helpers may still be decoding
  // borrowed memory — PushShared scan views, a GridDecodeFn capturing the
  // caller's frame by reference — so returning before active == 0 would
  // leave them dereferencing a dead stack frame.
  impl_->channel->Close();
  while (auto item = impl_->channel->TryPop()) impl_->Process(*item);
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->cv.wait(lock, [&] { return impl_->active == 0; });
}

Status StreamDecoder::Push(media::Image scan) {
  Impl::Item item;
  item.scan_owned = std::move(scan);
  return PushItem(&item);
}

Status StreamDecoder::PushShared(const media::Image& scan) {
  Impl::Item item;
  item.scan_view = &scan;
  return PushItem(&item);
}

Status StreamDecoder::PushGrid(BytesView grid) {
  Impl::Item item;
  item.grid_view = grid;
  item.is_grid = true;
  return PushItem(&item);
}

Status StreamDecoder::PushItem(void* opaque) {
  Impl::Item& item = *static_cast<Impl::Item*>(opaque);
  Impl& impl = *impl_;
  if (!impl.init.ok()) return impl.init;
  if (impl.finished) {
    return Status::InvalidArgument("StreamDecoder: Push after Finish");
  }
  item.index = impl.records.size();
  impl.records.emplace_back();
  item.rec = &impl.records.back();
  if (!impl.parallel) {
    impl.Process(item);
    return Status::OK();
  }
  // Helpers are spawned lazily, one per pushed item up to workers - 1, so
  // a decode of two scans parks at most one pool worker in Pop instead of
  // a full fleet of idle drain loops.
  if (impl.helpers_spawned < impl.workers - 1) {
    ++impl.helpers_spawned;
    SharedPool().EnsureWorkers(impl.helpers_spawned);
    SharedPool().Submit([self = impl_] { self->HelperLoop(); });
  }
  // Bounded backpressure without blocking: when the window is full, the
  // pushing thread decodes one queued item itself instead of waiting for
  // pool workers that may never come (nested fan-out).
  while (!impl.channel->TryPush(item)) {
    if (auto queued = impl.channel->TryPop()) impl.Process(*queued);
  }
  return Status::OK();
}

Result<Bytes> StreamDecoder::Finish(DecodeStats* stats, uint64_t* steps) {
  Impl& impl = *impl_;
  if (!impl.init.ok()) return impl.init;
  if (impl.finished) {
    return Status::InvalidArgument("StreamDecoder: Finish called twice");
  }
  impl.finished = true;
  if (impl.parallel) {
    impl.channel->Close();
    while (auto item = impl.channel->TryPop()) impl.Process(*item);
    std::unique_lock<std::mutex> lock(impl.mu);
    impl.cv.wait(lock, [&] { return impl.active == 0; });
  }
  // All work is done and no helper is running: safe to surface a capture
  // from a decode callback (lowest push index wins, like ParallelFor).
  if (impl.thrown) std::rethrow_exception(impl.thrown);

  // Deterministic serial merge in push order: later duplicates of a
  // sequence number overwrite earlier ones and the last decoded header's
  // stream_len wins, exactly like the serial loop over a vector of scans.
  std::map<uint16_t, Bytes> payloads;
  uint32_t stream_len = 0;
  bool have_len = false;
  uint64_t total_steps = 0;
  DecodeStats local;
  for (Impl::Record& rec : impl.records) {
    total_steps += rec.r.steps;
    if (rec.sampled || impl.count_unsampled) local.emblems_total += 1;
    if (!rec.r.ok) continue;
    local.emblems_decoded += 1;
    local.rs_errors_corrected += rec.r.rs_errors_corrected;
    stream_len = rec.r.header.stream_len;
    have_len = true;
    payloads[rec.r.header.seq] = std::move(rec.r.payload);
  }
  if (steps) *steps = total_steps;
  if (!have_len) {
    return Status::Corruption("no emblem of the requested stream decoded");
  }
  const int capacity = EmblemCapacity(impl.options.data_side);
  const int data_count = DataEmblemCount(stream_len, capacity);
  int present_data = 0;
  for (const auto& [seq, payload] : payloads) {
    if (!IsParitySlot(seq) && DataIndexOf(seq) < data_count) ++present_data;
  }
  ULE_ASSIGN_OR_RETURN(Bytes stream,
                       ReassembleStream(payloads, stream_len, capacity));
  local.emblems_recovered = data_count - present_data;
  if (stats) *stats = local;
  return stream;
}

Result<Bytes> DecodeSampledGrids(const std::vector<Bytes>& grids, StreamId id,
                                 const Options& options, DecodeStats* stats) {
  StreamDecoder decoder(id, options);
  for (const Bytes& grid : grids) {
    ULE_RETURN_IF_ERROR(decoder.PushGrid(grid));
  }
  return decoder.Finish(stats);
}

Result<Bytes> DecodeImages(const std::vector<media::Image>& scans, StreamId id,
                           const Options& options, DecodeStats* stats) {
  StreamDecoder decoder(id, options);
  for (const media::Image& scan : scans) {
    ULE_RETURN_IF_ERROR(decoder.PushShared(scan));
  }
  return decoder.Finish(stats);
}

}  // namespace mocoder
}  // namespace ule
