/// \file mocoder.h
/// \brief MOCoder façade: byte streams ⇄ emblem images (paper §3.1).
///
/// Encoding: stream bytes → group payloads (outer parity) → emblem grids
/// (inner RS + differential-Manchester modulation) → printable images.
/// Decoding: scanned images → sampled intensity grids → per-emblem decode
/// → outer reassembly (erasure recovery of whole lost emblems).

#ifndef ULE_MOCODER_MOCODER_H_
#define ULE_MOCODER_MOCODER_H_

#include <vector>

#include "media/image.h"
#include "mocoder/detect.h"
#include "mocoder/emblem.h"
#include "mocoder/outer.h"
#include "support/bytes.h"
#include "support/status.h"

namespace ule {
namespace mocoder {

/// Format parameters shared by archival and restoration (recorded in the
/// Bootstrap document alongside the emblem geometry description).
struct Options {
  int data_side = 128;     ///< data-area cells per side (N)
  int dots_per_cell = 4;   ///< print pitch
  int quiet_cells = 2;     ///< white margin around the border
  /// Worker threads for per-emblem encode/render/decode fan-out.
  /// 0 = automatic (`ULE_THREADS` env or all hardware threads); 1 = serial.
  /// Not an archival parameter: output is byte-identical at any setting.
  int threads = 0;
};

/// Rejects nonsensical format parameters (non-positive data_side /
/// dots_per_cell, negative quiet_cells or threads) with InvalidArgument.
/// Every encode/decode entry point validates through this.
Status ValidateOptions(const Options& options);

/// One encoded emblem with its rendered image.
struct EncodedEmblem {
  EmblemHeader header;
  CellGrid grid;
};

/// Splits `stream` into emblems (with outer parity) for the given stream
/// id. The result is ordered by sequence number; virtual (all-zero tail)
/// slots are skipped, so sequence numbers may have gaps.
Result<std::vector<EncodedEmblem>> EncodeStream(BytesView stream, StreamId id,
                                                const Options& options);

/// Renders one encoded emblem to pixels.
media::Image Render(const EncodedEmblem& emblem, const Options& options);

/// Renders a batch of emblems (in parallel across emblems, deterministic
/// output order: result[i] is emblems[i] rendered).
std::vector<media::Image> RenderAll(const std::vector<EncodedEmblem>& emblems,
                                    const Options& options);

/// Per-run statistics of DecodeImages (experiment E8/E12 report these).
struct DecodeStats {
  int emblems_total = 0;      ///< images given
  int emblems_decoded = 0;    ///< emblems whose inner decode succeeded
  int emblems_recovered = 0;  ///< lost emblems rebuilt by the outer code
  int rs_errors_corrected = 0;
};

/// \brief Decodes a set of scanned emblem images back into the stream with
/// the given id. Tolerates missing/destroyed emblems up to the outer
/// code's budget (3 per group of 20).
Result<Bytes> DecodeImages(const std::vector<media::Image>& scans, StreamId id,
                           const Options& options,
                           DecodeStats* stats = nullptr);

/// Decodes already-sampled intensity grids (the interface shared with the
/// archived DynaRisc MODecode path).
Result<Bytes> DecodeSampledGrids(const std::vector<Bytes>& grids, StreamId id,
                                 const Options& options,
                                 DecodeStats* stats = nullptr);

}  // namespace mocoder
}  // namespace ule

#endif  // ULE_MOCODER_MOCODER_H_
