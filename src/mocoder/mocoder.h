/// \file mocoder.h
/// \brief MOCoder façade: byte streams ⇄ emblem images (paper §3.1).
///
/// Encoding: stream bytes → group payloads (outer parity) → emblem grids
/// (inner RS + differential-Manchester modulation) → printable images.
/// Decoding: scanned images → sampled intensity grids → per-emblem decode
/// → outer reassembly (erasure recovery of whole lost emblems).
///
/// Two API shapes cover the same pipeline (byte-identical results):
///
///   * Materialized (`EncodeStream`/`RenderAll`/`DecodeImages`): vectors
///     in, vectors out. Convenient; peak memory is O(archive).
///   * Streaming (`EncodeToSink` / `StreamDecoder`): emblems flow
///     stage-to-stage through a bounded window on the shared thread pool,
///     so peak memory for grids and frames is O(threads × emblem) — the
///     shape `core::ArchiveDumpStreaming` / `RestoreNativeStreaming` and
///     real scanners use. The on-film format is specified in
///     docs/FORMAT.md.

#ifndef ULE_MOCODER_MOCODER_H_
#define ULE_MOCODER_MOCODER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "media/image.h"
#include "mocoder/detect.h"
#include "mocoder/emblem.h"
#include "mocoder/outer.h"
#include "support/bytes.h"
#include "support/status.h"

namespace ule {
namespace mocoder {

/// Format parameters shared by archival and restoration (recorded in the
/// Bootstrap document alongside the emblem geometry description).
struct Options {
  int data_side = 128;     ///< data-area cells per side (N)
  int dots_per_cell = 4;   ///< print pitch
  int quiet_cells = 2;     ///< white margin around the border
  /// Worker threads for per-emblem encode/render/decode fan-out.
  /// 0 = automatic (`ULE_THREADS` env or all hardware threads); 1 = serial.
  /// Not an archival parameter: output is byte-identical at any setting.
  int threads = 0;
};

/// Rejects nonsensical format parameters (non-positive data_side /
/// dots_per_cell, negative quiet_cells or threads) with InvalidArgument.
/// Every encode/decode entry point validates through this.
Status ValidateOptions(const Options& options);

/// One encoded emblem with its rendered image.
struct EncodedEmblem {
  EmblemHeader header;
  CellGrid grid;
};

/// Splits `stream` into emblems (with outer parity) for the given stream
/// id. The result is ordered by sequence number; virtual (all-zero tail)
/// slots are skipped, so sequence numbers may have gaps.
Result<std::vector<EncodedEmblem>> EncodeStream(BytesView stream, StreamId id,
                                                const Options& options);

/// \brief Receives one encoded emblem (and, when rendering was requested,
/// its frame) in sequence order. A non-OK status aborts the encode.
using EmblemSink =
    std::function<Status(EncodedEmblem&& emblem, media::Image&& frame)>;

/// \brief Streaming encode: builds the same emblems as EncodeStream (and,
/// with `render`, the same frames as RenderAll) but hands each one to
/// `sink` in sequence order through a bounded window instead of
/// materializing the whole vector — peak grid/frame memory is
/// O(threads × emblem). Emblem construction and rendering for different
/// sequence numbers run fused on the shared pool workers; `sink` runs on
/// the calling thread. `frame` is an empty image when `render` is false.
Status EncodeToSink(BytesView stream, StreamId id, const Options& options,
                    bool render, const EmblemSink& sink);

/// Renders one encoded emblem to pixels.
media::Image Render(const EncodedEmblem& emblem, const Options& options);

/// Renders a batch of emblems (in parallel across emblems, deterministic
/// output order: result[i] is emblems[i] rendered).
std::vector<media::Image> RenderAll(const std::vector<EncodedEmblem>& emblems,
                                    const Options& options);

/// Per-run statistics of DecodeImages (experiment E8/E12 report these).
struct DecodeStats {
  int emblems_total = 0;      ///< images given
  int emblems_decoded = 0;    ///< emblems whose inner decode succeeded
  int emblems_recovered = 0;  ///< lost emblems rebuilt by the outer code
  int rs_errors_corrected = 0;
};

/// \brief Decodes a set of scanned emblem images back into the stream with
/// the given id. Tolerates missing/destroyed emblems up to the outer
/// code's budget (3 per group of 20).
Result<Bytes> DecodeImages(const std::vector<media::Image>& scans, StreamId id,
                           const Options& options,
                           DecodeStats* stats = nullptr);

/// Decodes already-sampled intensity grids (the interface shared with the
/// archived DynaRisc MODecode path).
Result<Bytes> DecodeSampledGrids(const std::vector<Bytes>& grids, StreamId id,
                                 const Options& options,
                                 DecodeStats* stats = nullptr);

/// Outcome of decoding one sampled intensity grid (see GridDecodeFn).
struct GridDecodeResult {
  bool ok = false;      ///< header+payload recovered (any stream id)
  EmblemHeader header;  ///< valid when ok
  Bytes payload;        ///< exactly EmblemCapacity(data_side) bytes when ok
  int rs_errors_corrected = 0;
  uint64_t steps = 0;   ///< VM instructions (emulated decoders; else 0)
};

/// \brief Decodes one data_side × data_side intensity grid into header +
/// payload. Must be thread-safe (called concurrently from pool workers).
/// The default is the native inner decode (DecodeEmblemIntensities); the
/// emulated restore path plugs in the archived MODecode program running
/// under nested emulation.
using GridDecodeFn = std::function<GridDecodeResult(BytesView grid)>;

/// \brief Push-driven streaming decoder for one emblem stream.
///
/// Scans (or pre-sampled grids) are pushed one at a time — from a vector,
/// a scanner, or a frame generator — and are sampled + inner-decoded
/// concurrently on the shared pool with a bounded number in flight, so
/// peak image/grid memory is O(threads × emblem) regardless of archive
/// size. Only the small per-emblem records (header + payload) accumulate.
/// `Finish` performs the deterministic serial merge (outer-code
/// reassembly) in push order, making output and DecodeStats byte-identical
/// to the materialized `DecodeImages`/`DecodeSampledGrids` at any thread
/// count.
///
/// Not thread-safe: Push*/Finish must be called from one thread.
class StreamDecoder {
 public:
  /// Native inner decode. `count_unsampled` controls whether scans whose
  /// emblem could not be sampled at all count into DecodeStats::
  /// emblems_total (DecodeImages excludes them; the emulated restore path
  /// counts every scan).
  StreamDecoder(StreamId id, const Options& options,
                GridDecodeFn decode = nullptr, bool count_unsampled = false);
  /// Drains outstanding work (discarding results) if Finish was not called.
  ~StreamDecoder();

  StreamDecoder(const StreamDecoder&) = delete;
  StreamDecoder& operator=(const StreamDecoder&) = delete;

  /// Queues one scan, transferring ownership. Blocks (by helping decode)
  /// when the bounded window is full.
  Status Push(media::Image scan);
  /// Queues one scan without copying; `scan` must stay alive until Finish.
  Status PushShared(const media::Image& scan);
  /// Queues one pre-sampled grid; the view must stay alive until Finish.
  Status PushGrid(BytesView grid);

  /// Completes all queued work and reassembles the stream. `steps`, when
  /// given, receives the summed VM step counts of every grid decode (in
  /// push order). An exception thrown by the decode function (or during
  /// sampling) is captured on the worker and rethrown here, lowest push
  /// index first — the ParallelFor contract. Call at most once.
  Result<Bytes> Finish(DecodeStats* stats = nullptr,
                       uint64_t* steps = nullptr);

 private:
  struct Impl;
  /// Common queueing path; `item` points at an Impl::Item (type-erased
  /// because Impl is private to the .cc).
  Status PushItem(void* item);

  std::shared_ptr<Impl> impl_;
};

}  // namespace mocoder
}  // namespace ule

#endif  // ULE_MOCODER_MOCODER_H_
