#include "mocoder/detect.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "mocoder/emblem.h"

namespace ule {
namespace mocoder {
namespace {

struct Point {
  double x = 0;
  double y = 0;
};

/// Otsu's threshold over the full image histogram.
uint8_t OtsuThreshold(const media::Image& img) {
  std::array<uint64_t, 256> hist{};
  for (uint8_t p : img.pixels()) ++hist[p];
  const uint64_t total = img.pixels().size();
  uint64_t sum_all = 0;
  for (int i = 0; i < 256; ++i) sum_all += static_cast<uint64_t>(i) * hist[i];
  uint64_t w0 = 0, sum0 = 0;
  double best_var = -1;
  uint8_t best_t = 128;
  for (int t = 0; t < 256; ++t) {
    w0 += hist[t];
    if (w0 == 0) continue;
    const uint64_t w1 = total - w0;
    if (w1 == 0) break;
    sum0 += static_cast<uint64_t>(t) * hist[t];
    const double m0 = static_cast<double>(sum0) / w0;
    const double m1 = static_cast<double>(sum_all - sum0) / w1;
    const double var = static_cast<double>(w0) * w1 * (m0 - m1) * (m0 - m1);
    if (var > best_var) {
      best_var = var;
      best_t = static_cast<uint8_t>(t);
    }
  }
  // Otsu's split puts [0..t] in the dark class; callers test `pixel < t`,
  // so return the first bright level.
  return static_cast<uint8_t>(std::min(best_t + 1, 255));
}

/// "Solid black": the pixel and its 4-neighbours are all below threshold.
/// Kills isolated dust without a full morphological pass.
bool SolidBlack(const media::Image& img, int x, int y, uint8_t t) {
  if (img.at(x, y) >= t) return false;
  return img.at_clamped(x - 1, y) < t && img.at_clamped(x + 1, y) < t &&
         img.at_clamped(x, y - 1) < t && img.at_clamped(x, y + 1) < t;
}

/// Least-squares line fit y = a + b*x over (xs, ys).
void FitLine(const std::vector<double>& xs, const std::vector<double>& ys,
             double* a, double* b) {
  const size_t n = xs.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double d = n * sxx - sx * sx;
  *b = (d == 0) ? 0 : (n * sxy - sx * sy) / d;
  *a = (sy - *b * sx) / n;
}

Point Intersect(double a1, double b1, bool horiz1, double a2, double b2,
                bool horiz2) {
  // horiz: y = a + b*x; vertical fit: x = a + b*y.
  if (horiz1 && !horiz2) {
    // y = a1 + b1*x ; x = a2 + b2*y
    const double y = (a1 + b1 * a2) / (1 - b1 * b2);
    const double x = a2 + b2 * y;
    return {x, y};
  }
  if (!horiz1 && horiz2) return Intersect(a2, b2, true, a1, b1, false);
  return {0, 0};
}

}  // namespace

Result<Bytes> SampleEmblem(const media::Image& scan, int data_side,
                           DetectInfo* info) {
  const uint8_t t = OtsuThreshold(scan);
  const int w = scan.width();
  const int h = scan.height();

  // 1. Bounding box of solid black pixels = outer border square.
  int x0 = w, x1 = -1, y0 = h, y1 = -1;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (SolidBlack(scan, x, y, t)) {
        x0 = std::min(x0, x);
        x1 = std::max(x1, x);
        y0 = std::min(y0, y);
        y1 = std::max(y1, y);
      }
    }
  }
  if (x1 < 0 || x1 - x0 < 8 || y1 - y0 < 8) {
    return Status::Corruption("no emblem border found in scan");
  }

  // 2. Edge point collection: first solid-black pixel scanning inward,
  // sampled over the middle 80% of each side (corners excluded).
  auto collect = [&](bool horizontal, bool from_low, std::vector<double>* ps,
                     std::vector<double>* qs) {
    const int lo = horizontal ? x0 : y0;
    const int hi = horizontal ? x1 : y1;
    const int margin = (hi - lo) / 10;
    for (int p = lo + margin; p <= hi - margin; p += 2) {
      if (horizontal) {
        // scan down (or up) column p
        if (from_low) {
          for (int y = std::max(0, y0 - 2); y <= y1; ++y) {
            if (SolidBlack(scan, p, y, t)) {
              ps->push_back(p);
              qs->push_back(y);
              break;
            }
          }
        } else {
          for (int y = std::min(h - 1, y1 + 2); y >= y0; --y) {
            if (SolidBlack(scan, p, y, t)) {
              ps->push_back(p);
              qs->push_back(y);
              break;
            }
          }
        }
      } else {
        if (from_low) {
          for (int x = std::max(0, x0 - 2); x <= x1; ++x) {
            if (SolidBlack(scan, x, p, t)) {
              ps->push_back(p);
              qs->push_back(x);
              break;
            }
          }
        } else {
          for (int x = std::min(w - 1, x1 + 2); x >= x0; --x) {
            if (SolidBlack(scan, x, p, t)) {
              ps->push_back(p);
              qs->push_back(x);
              break;
            }
          }
        }
      }
    }
  };

  std::vector<double> tx, ty, bx, by, ly, lx, ry, rx;
  collect(true, true, &tx, &ty);    // top edge: y(x)
  collect(true, false, &bx, &by);   // bottom edge: y(x)
  collect(false, true, &ly, &lx);   // left edge: x(y)
  collect(false, false, &ry, &rx);  // right edge: x(y)
  if (tx.size() < 8 || bx.size() < 8 || ly.size() < 8 || ry.size() < 8) {
    return Status::Corruption("emblem border edges too short to fit");
  }

  double ta, tb, ba, bb, la, lb, ra, rb;
  FitLine(tx, ty, &ta, &tb);
  FitLine(bx, by, &ba, &bb);
  FitLine(ly, lx, &la, &lb);
  FitLine(ry, rx, &ra, &rb);

  const Point tl = Intersect(ta, tb, true, la, lb, false);
  const Point tr = Intersect(ta, tb, true, ra, rb, false);
  const Point bl = Intersect(ba, bb, true, la, lb, false);
  const Point br = Intersect(ba, bb, true, ra, rb, false);

  const double cxc = (tl.x + tr.x + bl.x + br.x) / 4;
  const double cyc = (tl.y + tr.y + bl.y + br.y) / 4;
  const double norm = std::sqrt((tr.x - tl.x) * (tr.x - tl.x) +
                                (bl.y - tl.y) * (bl.y - tl.y)) /
                      std::sqrt(2.0);

  // 3. Lens calibration against a *known pattern*: the border ring is pure
  // black and the gap ring pure white, at the largest radii of the grid —
  // exactly where radial distortion hurts most. For each candidate k,
  // undistort the fitted corners, lay the lattice between them, map it
  // forward into the distorted scan, and score the contrast between the two
  // rings. The k that maximises contrast is the scanner's curvature.
  const int n = data_side;
  const int grid_side = n + 2 * kFrameCells;

  auto undistort = [&](Point p, double k) {
    const double dx = p.x - cxc;
    const double dy = p.y - cyc;
    const double r2 = (dx * dx + dy * dy) / (norm * norm);
    return Point{cxc + dx * (1 + k * r2), cyc + dy * (1 + k * r2)};
  };

  // Maps a lattice coordinate (cell units on the full grid) to scan pixels
  // for a given k, via the undistorted corner frame.
  struct Frame {
    Point tl, tr, bl, br;
  };
  auto make_frame = [&](double k) {
    return Frame{undistort(tl, k), undistort(tr, k), undistort(bl, k),
                 undistort(br, k)};
  };
  auto lattice_to_scan = [&](const Frame& f, double k, double cell_x,
                             double cell_y) {
    const double u = cell_x / grid_side;
    const double v = cell_y / grid_side;
    const double ux = f.tl.x * (1 - u) * (1 - v) + f.tr.x * u * (1 - v) +
                      f.bl.x * (1 - u) * v + f.br.x * u * v;
    const double uy = f.tl.y * (1 - u) * (1 - v) + f.tr.y * u * (1 - v) +
                      f.bl.y * (1 - u) * v + f.br.y * u * v;
    // Forward distortion: fixed-point of r_d * (1 + k r̂_d²) = r_u.
    double dx = ux - cxc;
    double dy = uy - cyc;
    for (int it = 0; it < 3; ++it) {
      const double r2 = (dx * dx + dy * dy) / (norm * norm);
      const double f2 = 1 + k * r2;
      dx = (ux - cxc) / f2;
      dy = (uy - cyc) / f2;
    }
    return Point{cxc + dx, cyc + dy};
  };

  auto calibration_score = [&](double k) {
    const Frame f = make_frame(k);
    // Term 1: contrast between the ring at cell index 1 (middle of the
    // border, black) and the inner gap ring (white), all four sides.
    double black_sum = 0, white_sum = 0;
    int count = 0;
    const double b = 1.5;
    const double g = kFrameCells - 0.5;
    for (int i = 2; i < grid_side - 2; i += 2) {
      const double c = i + 0.5;
      for (const auto& [px, py] :
           {std::pair<double, double>{c, b}, {c, grid_side - b},
            {b, c}, {grid_side - b, c}}) {
        const Point sp = lattice_to_scan(f, k, px, py);
        black_sum += scan.Sample(sp.x, sp.y);
        ++count;
      }
      for (const auto& [px, py] :
           {std::pair<double, double>{c, g}, {c, grid_side - g},
            {g, c}, {grid_side - g, c}}) {
        const Point sp = lattice_to_scan(f, k, px, py);
        white_sum += scan.Sample(sp.x, sp.y);
      }
    }
    const double ring = (white_sum - black_sum) / std::max(count, 1);
    // Term 2: correlation with the sync/type row's 2-cell alternation —
    // the sharpest known pattern in the emblem; |.| makes it type-agnostic.
    double sync = 0;
    for (int i = 0; i < n; ++i) {
      const Point sp = lattice_to_scan(f, k, i + kFrameCells + 0.5,
                                       kFrameCells + 0.5);
      const double v = scan.Sample(sp.x, sp.y);
      sync += (((i / 2) % 2) == 0) ? -v : v;
    }
    return ring + 2.0 * std::abs(sync) / n;
  };

  // Plain argmax over the physically plausible lens range; candidates
  // beyond it (the score can have spurious far-away optima on very large
  // emblems) are only accepted on a clear margin.
  double best_k = 0;
  double best_score = calibration_score(0);
  for (double k = -0.008; k <= 0.008001; k += 0.0004) {
    const double s = calibration_score(k);
    if (s > best_score) {
      best_score = s;
      best_k = k;
    }
  }
  for (double mag = 0.0088; mag <= 0.03001; mag += 0.0008) {
    for (double k : {mag, -mag}) {
      const double s = calibration_score(k);
      if (s > best_score * 1.02 + 1.0) {
        best_score = s;
        best_k = k;
      }
    }
  }

  // 4. Sample the data-area lattice with the calibrated frame.
  const Frame frame = make_frame(best_k);
  Bytes out(static_cast<size_t>(n) * n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      const Point sp = lattice_to_scan(frame, best_k, i + kFrameCells + 0.5,
                                       j + kFrameCells + 0.5);
      out[static_cast<size_t>(j) * n + i] =
          static_cast<uint8_t>(std::clamp(scan.Sample(sp.x, sp.y), 0.0, 255.0));
    }
  }
  const Point utl = frame.tl;
  const Point utr = frame.tr;

  if (info) {
    info->rotation_deg = std::atan2(utr.y - utl.y, utr.x - utl.x) * 180.0 /
                         3.14159265358979323846;
    info->cell_pitch = std::sqrt((utr.x - utl.x) * (utr.x - utl.x) +
                                 (utr.y - utl.y) * (utr.y - utl.y)) /
                       grid_side;
    info->lens_k = best_k;
  }
  return out;
}

}  // namespace mocoder
}  // namespace ule
