#include "mocoder/emblem.h"

#include <algorithm>

#include "rs/reed_solomon.h"
#include "support/crc32.h"

namespace ule {
namespace mocoder {
namespace {

constexpr uint8_t kMagic0 = 'E';
constexpr uint8_t kMagic1 = 'B';

/// Payload bits available in a data area of side N: rows 1..N-1, two cells
/// per bit.
int PayloadBits(int data_side) {
  return (data_side - 1) * data_side / 2;
}

/// The sync/type row pattern: alternating 2-cell blocks, black-first for
/// data-stream emblems and inverted for system emblems.
bool SyncCellBlack(int x, StreamId stream) {
  const bool base = ((x / 2) % 2) == 0;
  return stream == StreamId::kData ? base : !base;
}

/// Serpentine coordinates of the k-th data cell (rows 1..N-1).
/// Row r (1-based within the data area) runs left-to-right when odd,
/// right-to-left when even.
inline void SerpentineCell(int k, int n, int* x, int* y) {
  const int row = k / n;
  const int col = k % n;
  *y = 1 + row;
  *x = (row % 2 == 0) ? col : (n - 1 - col);
}

}  // namespace

int EmblemBlocks(int data_side) {
  const int bytes = PayloadBits(data_side) / 8;
  return bytes / 255;
}

int EmblemCapacity(int data_side) {
  const int blocks = EmblemBlocks(data_side);
  const int capacity = blocks * 223 - kHeaderSize;
  return capacity > 0 ? capacity : 0;
}

Bytes SerializeHeader(const EmblemHeader& header) {
  ByteWriter w;
  w.PutU8(kMagic0);
  w.PutU8(kMagic1);
  w.PutU8(kEmblemVersion);
  w.PutU8(static_cast<uint8_t>(header.stream));
  w.PutU16(header.seq);
  w.PutU16(header.total);
  w.PutU32(header.stream_len);
  w.PutU32(header.payload_crc);
  w.PutU32(0);  // reserved
  return w.TakeBytes();
}

Result<EmblemHeader> ParseHeader(BytesView bytes) {
  if (bytes.size() < kHeaderSize) {
    return Status::Corruption("emblem header too short");
  }
  ByteReader r(bytes);
  uint8_t m0, m1, version, stream;
  EmblemHeader h;
  uint32_t reserved;
  ULE_RETURN_IF_ERROR(r.GetU8(&m0));
  ULE_RETURN_IF_ERROR(r.GetU8(&m1));
  ULE_RETURN_IF_ERROR(r.GetU8(&version));
  ULE_RETURN_IF_ERROR(r.GetU8(&stream));
  ULE_RETURN_IF_ERROR(r.GetU16(&h.seq));
  ULE_RETURN_IF_ERROR(r.GetU16(&h.total));
  ULE_RETURN_IF_ERROR(r.GetU32(&h.stream_len));
  ULE_RETURN_IF_ERROR(r.GetU32(&h.payload_crc));
  ULE_RETURN_IF_ERROR(r.GetU32(&reserved));
  if (m0 != kMagic0 || m1 != kMagic1) {
    return Status::Corruption("emblem header: bad magic");
  }
  if (version != kEmblemVersion) {
    return Status::Corruption("emblem header: unsupported version");
  }
  if (stream > 1) return Status::Corruption("emblem header: bad stream id");
  h.stream = static_cast<StreamId>(stream);
  return h;
}

Result<CellGrid> BuildEmblem(const EmblemHeader& header, BytesView payload,
                             int data_side) {
  const int capacity = EmblemCapacity(data_side);
  if (capacity <= 0) {
    return Status::InvalidArgument("emblem data side " +
                                   std::to_string(data_side) +
                                   " too small for one RS block");
  }
  if (static_cast<int>(payload.size()) != capacity) {
    return Status::InvalidArgument(
        "emblem payload must be exactly " + std::to_string(capacity) +
        " bytes, got " + std::to_string(payload.size()));
  }

  // Container: header + payload, zero-padded to blocks*223.
  const int blocks = EmblemBlocks(data_side);
  Bytes container = SerializeHeader(header);
  container.insert(container.end(), payload.begin(), payload.end());
  container.resize(static_cast<size_t>(blocks) * 223, 0);

  // Inner RS encoding per block, then byte interleaving across blocks.
  static const rs::Codec codec(255, 223);
  std::vector<Bytes> codewords;
  codewords.reserve(static_cast<size_t>(blocks));
  for (int b = 0; b < blocks; ++b) {
    BytesView chunk(container.data() + static_cast<size_t>(b) * 223, 223);
    ULE_ASSIGN_OR_RETURN(Bytes cw, codec.Encode(chunk));
    codewords.push_back(std::move(cw));
  }
  Bytes coded;
  coded.reserve(static_cast<size_t>(blocks) * 255);
  for (int j = 0; j < 255; ++j) {
    for (int b = 0; b < blocks; ++b) {
      coded.push_back(codewords[static_cast<size_t>(b)][static_cast<size_t>(j)]);
    }
  }

  // Build the grid.
  const int n = data_side;
  CellGrid grid;
  grid.side = n + 2 * kFrameCells;
  grid.cells.assign(static_cast<size_t>(grid.side) * grid.side, 0);

  // Border ring (3 cells thick).
  for (int y = 0; y < grid.side; ++y) {
    for (int x = 0; x < grid.side; ++x) {
      const int d = std::min(std::min(x, y), std::min(grid.side - 1 - x,
                                                      grid.side - 1 - y));
      if (d < kBorderCells) grid.set(x, y, 1);
    }
  }

  const int o = kFrameCells;  // data-area origin
  // Sync/type row.
  for (int x = 0; x < n; ++x) {
    grid.set(o + x, o, SyncCellBlack(x, header.stream) ? 1 : 0);
  }

  // Differential Manchester modulation over the serpentine.
  // Level semantics: 1 = black. The level always flips at a bit boundary
  // (clock transition); a mid-bit flip encodes bit 1, no flip encodes 0.
  BitReader bits(coded);
  uint8_t level = 0;
  const int total_bits = PayloadBits(n);
  for (int k = 0; k < total_bits; ++k) {
    int bit = bits.GetBit();
    if (bit < 0) bit = 0;  // padding beyond the coded stream
    int x, y;
    level = static_cast<uint8_t>(!level);  // clock transition
    SerpentineCell(2 * k, n, &x, &y);
    grid.set(o + x, o + y, level);
    if (bit) level = static_cast<uint8_t>(!level);  // mid-bit transition = 1
    SerpentineCell(2 * k + 1, n, &x, &y);
    grid.set(o + x, o + y, level);
  }
  return grid;
}

Result<Bytes> DecodeEmblemIntensities(BytesView intensities, int data_side,
                                      EmblemHeader* header,
                                      EmblemDecodeInfo* info) {
  const int n = data_side;
  if (static_cast<int>(intensities.size()) != n * n) {
    return Status::InvalidArgument("expected " + std::to_string(n * n) +
                                   " intensities");
  }
  const int blocks = EmblemBlocks(n);
  if (blocks <= 0) return Status::InvalidArgument("data side too small");

  // 1. Threshold from the sync row: the two 2-cell phases of the pattern
  // are pure black and pure white; their means give the cut. The phase
  // ordering also reveals the stream type.
  uint64_t sum_a = 0, sum_b = 0;
  int count_a = 0, count_b = 0;
  for (int x = 0; x < n; ++x) {
    const uint8_t v = intensities[static_cast<size_t>(x)];
    if (((x / 2) % 2) == 0) {
      sum_a += v;
      ++count_a;
    } else {
      sum_b += v;
      ++count_b;
    }
  }
  const uint32_t mean_a = static_cast<uint32_t>(sum_a / std::max(count_a, 1));
  const uint32_t mean_b = static_cast<uint32_t>(sum_b / std::max(count_b, 1));
  if (mean_a == mean_b) {
    return Status::Corruption("emblem sync row has no contrast");
  }
  const uint32_t threshold = (mean_a + mean_b) / 2;
  const StreamId sync_stream =
      mean_a < mean_b ? StreamId::kData : StreamId::kSystem;

  // 2. Demodulate (differential Manchester): bit = (second half != first).
  BitWriter bitw;
  const int total_bits = (n - 1) * n / 2;
  const int coded_bytes = blocks * 255;
  for (int k = 0; k < total_bits && static_cast<int>(bitw.bit_count()) <
                                        coded_bytes * 8; ++k) {
    int x, y;
    SerpentineCell(2 * k, n, &x, &y);
    const bool first =
        intensities[static_cast<size_t>(y) * n + x] < threshold;
    SerpentineCell(2 * k + 1, n, &x, &y);
    const bool second =
        intensities[static_cast<size_t>(y) * n + x] < threshold;
    bitw.PutBit(first != second ? 1 : 0);
  }
  Bytes coded = bitw.Finish();
  coded.resize(static_cast<size_t>(coded_bytes), 0);

  // 3. De-interleave and RS-decode each block.
  static const rs::Codec codec(255, 223);
  Bytes container;
  container.reserve(static_cast<size_t>(blocks) * 223);
  int total_corrected = 0;
  std::vector<Bytes> block_data(static_cast<size_t>(blocks));
  for (int b = 0; b < blocks; ++b) {
    Bytes cw(255);
    for (int j = 0; j < 255; ++j) {
      cw[static_cast<size_t>(j)] =
          coded[static_cast<size_t>(j) * blocks + static_cast<size_t>(b)];
    }
    rs::DecodeInfo dinfo;
    auto decoded = codec.Decode(cw, {}, &dinfo);
    if (!decoded.ok()) {
      return Status::Corruption("emblem block " + std::to_string(b) +
                                " unrecoverable: " +
                                decoded.status().message());
    }
    total_corrected += dinfo.errors_corrected;
    block_data[static_cast<size_t>(b)] = decoded.TakeValue();
  }
  for (const Bytes& b : block_data) {
    container.insert(container.end(), b.begin(), b.end());
  }

  // 4. Header + payload CRC validation.
  ULE_ASSIGN_OR_RETURN(EmblemHeader h, ParseHeader(container));
  if (h.stream != sync_stream) {
    return Status::Corruption("emblem sync row contradicts header stream id");
  }
  const int capacity = blocks * 223 - kHeaderSize;
  Bytes payload(container.begin() + kHeaderSize,
                container.begin() + kHeaderSize + capacity);
  if (Crc32(payload) != h.payload_crc) {
    return Status::Corruption("emblem payload CRC mismatch");
  }
  if (header) *header = h;
  if (info) {
    info->rs_errors_corrected = total_corrected;
    info->blocks = blocks;
  }
  return payload;
}

media::Image RenderEmblem(const CellGrid& grid, int dots_per_cell,
                          int quiet_cells) {
  const int side_px = (grid.side + 2 * quiet_cells) * dots_per_cell;
  media::Image img(side_px, side_px, 255);
  for (int y = 0; y < grid.side; ++y) {
    for (int x = 0; x < grid.side; ++x) {
      if (grid.at(x, y)) {
        img.FillRect((x + quiet_cells) * dots_per_cell,
                     (y + quiet_cells) * dots_per_cell, dots_per_cell,
                     dots_per_cell, 0);
      }
    }
  }
  return img;
}

}  // namespace mocoder
}  // namespace ule
