/// \file csv.h
/// \brief CSV import/export for minidb tables.
///
/// CSV is the other "well-established, publicly-available standard" the
/// paper names for textual archives (§1, alongside XML). The writer quotes
/// per RFC 4180 (fields containing comma, quote or newline are quoted,
/// embedded quotes doubled); the reader accepts exactly what the writer
/// emits plus unquoted NULL as an empty field.

#ifndef ULE_MINIDB_CSV_H_
#define ULE_MINIDB_CSV_H_

#include <string>

#include "minidb/database.h"

namespace ule {
namespace minidb {

/// Serialises one table: header row of column names, then one row per
/// tuple. NULLs become empty fields; text is RFC 4180-quoted.
std::string ExportCsv(const Table& table);

/// Parses CSV into an existing (empty or compatible) table: the header must
/// match the schema's column names in order; values are parsed per column
/// type; empty unquoted fields become NULL. Quoted empty strings stay "".
Status ImportCsv(const std::string& csv, Table* table);

}  // namespace minidb
}  // namespace ule

#endif  // ULE_MINIDB_CSV_H_
