#include "minidb/database.h"

namespace ule {
namespace minidb {

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status Table::Insert(Row row) {
  if (row.size() != schema_.columns.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.columns.size()) + " for table " + name_);
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

void Table::Scan(const std::function<bool(const Row&)>& fn) const {
  for (const Row& row : rows_) {
    if (!fn(row)) return;
  }
}

size_t Table::CountWhere(const std::function<bool(const Row&)>& pred) const {
  if (!pred) return rows_.size();
  size_t n = 0;
  for (const Row& row : rows_) {
    if (pred(row)) ++n;
  }
  return n;
}

Result<int64_t> Table::SumWhere(
    const std::string& column,
    const std::function<bool(const Row&)>& pred) const {
  const int idx = schema_.FindColumn(column);
  if (idx < 0) return Status::NotFound("no column " + column);
  const Type t = schema_.columns[static_cast<size_t>(idx)].type;
  if (t == Type::kText) {
    return Status::InvalidArgument("cannot sum text column " + column);
  }
  int64_t acc = 0;
  for (const Row& row : rows_) {
    if (pred && !pred(row)) continue;
    const Value& v = row[static_cast<size_t>(idx)];
    if (!v.is_null()) acc += v.AsInt();
  }
  return acc;
}

Result<Table*> Database::CreateTable(const std::string& name, Schema schema) {
  if (tables_.count(name)) {
    return Status::InvalidArgument("table exists: " + name);
  }
  auto table = std::make_unique<Table>(name, std::move(schema));
  Table* ptr = table.get();
  tables_[name] = std::move(table);
  order_.push_back(name);
  return ptr;
}

Table* Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::TableNames() const { return order_; }

size_t Database::TotalRows() const {
  size_t n = 0;
  for (const auto& [name, table] : tables_) n += table->row_count();
  return n;
}

bool Database::SameContentAs(const Database& other) const {
  if (order_ != other.order_) return false;
  for (const auto& name : order_) {
    const Table* a = GetTable(name);
    const Table* b = other.GetTable(name);
    if (!a || !b) return false;
    if (a->schema().columns.size() != b->schema().columns.size()) return false;
    for (size_t i = 0; i < a->schema().columns.size(); ++i) {
      const Column& ca = a->schema().columns[i];
      const Column& cb = b->schema().columns[i];
      if (ca.name != cb.name || ca.type != cb.type || ca.scale != cb.scale) {
        return false;
      }
    }
    if (a->rows() != b->rows()) return false;
  }
  return true;
}

}  // namespace minidb
}  // namespace ule
