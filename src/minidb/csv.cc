#include "minidb/csv.h"

namespace ule {
namespace minidb {
namespace {

bool NeedsQuoting(const std::string& s) {
  if (s.empty()) return true;  // distinguish "" from NULL
  for (char c : s) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void AppendField(std::string* out, const std::string& field, bool force_text) {
  if (force_text ? NeedsQuoting(field) : false) {
    out->push_back('"');
    for (char c : field) {
      if (c == '"') out->push_back('"');
      out->push_back(c);
    }
    out->push_back('"');
  } else {
    *out += field;
  }
}

/// One parsed CSV record; `quoted[i]` records whether field i was quoted
/// (needed to tell NULL from the empty string).
struct Record {
  std::vector<std::string> fields;
  std::vector<bool> quoted;
};

Result<std::vector<Record>> ParseRecords(const std::string& csv) {
  std::vector<Record> records;
  Record cur;
  std::string field;
  bool in_quotes = false;
  bool was_quoted = false;
  bool any = false;

  auto end_field = [&]() {
    cur.fields.push_back(field);
    cur.quoted.push_back(was_quoted);
    field.clear();
    was_quoted = false;
  };
  auto end_record = [&]() {
    end_field();
    records.push_back(std::move(cur));
    cur = Record{};
  };

  for (size_t i = 0; i < csv.size(); ++i) {
    const char c = csv[i];
    any = true;
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < csv.size() && csv[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          return Status::Corruption("CSV: quote inside unquoted field near " +
                                    std::to_string(i));
        }
        in_quotes = true;
        was_quoted = true;
        break;
      case ',':
        end_field();
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_record();
        break;
      default:
        field.push_back(c);
    }
  }
  if (in_quotes) return Status::Corruption("CSV: unterminated quote");
  if (any && (!field.empty() || was_quoted || !cur.fields.empty())) {
    end_record();  // final record without trailing newline
  }
  return records;
}

}  // namespace

std::string ExportCsv(const Table& table) {
  std::string out;
  const auto& cols = table.schema().columns;
  for (size_t i = 0; i < cols.size(); ++i) {
    if (i) out.push_back(',');
    AppendField(&out, cols[i].name, /*force_text=*/true);
  }
  out.push_back('\n');
  table.Scan([&](const Row& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out.push_back(',');
      if (row[i].is_null()) continue;  // NULL = empty unquoted field
      if (cols[i].type == Type::kText) {
        AppendField(&out, row[i].AsText(), /*force_text=*/true);
      } else {
        out += row[i].ToDumpString(cols[i].type, cols[i].scale);
      }
    }
    out.push_back('\n');
    return true;
  });
  return out;
}

Status ImportCsv(const std::string& csv, Table* table) {
  ULE_ASSIGN_OR_RETURN(std::vector<Record> records, ParseRecords(csv));
  if (records.empty()) return Status::Corruption("CSV: missing header row");
  const auto& cols = table->schema().columns;
  const Record& header = records[0];
  if (header.fields.size() != cols.size()) {
    return Status::Corruption("CSV: header arity mismatch");
  }
  for (size_t i = 0; i < cols.size(); ++i) {
    if (header.fields[i] != cols[i].name) {
      return Status::Corruption("CSV: header column '" + header.fields[i] +
                                "' does not match schema column '" +
                                cols[i].name + "'");
    }
  }
  for (size_t r = 1; r < records.size(); ++r) {
    const Record& rec = records[r];
    if (rec.fields.size() != cols.size()) {
      return Status::Corruption("CSV: row " + std::to_string(r) +
                                " has wrong field count");
    }
    Row row;
    for (size_t i = 0; i < cols.size(); ++i) {
      if (rec.fields[i].empty() && !rec.quoted[i]) {
        row.push_back(Value::Null());
      } else if (cols[i].type == Type::kText) {
        row.push_back(Value::Text(rec.fields[i]));
      } else {
        ULE_ASSIGN_OR_RETURN(
            Value v, Value::FromDumpString(rec.fields[i], cols[i].type,
                                           cols[i].scale));
        row.push_back(std::move(v));
      }
    }
    ULE_RETURN_IF_ERROR(table->Insert(std::move(row)));
  }
  return Status::OK();
}

}  // namespace minidb
}  // namespace ule
