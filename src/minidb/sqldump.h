/// \file sqldump.h
/// \brief db_dump / db_load: the pg_dump-style textual archive interface.
///
/// "The typical approach is to use external tools that communicate with
/// the DBMS using well-established interfaces, and 'dump' a database into
/// a generic text file" (paper §1). This module writes/reads the same
/// shape pg_dump produces in plain format:
///
/// ```sql
/// -- ULE archive dump
/// CREATE TABLE nation (
///     n_nationkey bigint,
///     n_name varchar,
///     ...
/// );
/// COPY nation (n_nationkey, n_name, ...) FROM stdin;
/// 0	ALGERIA	0	 haggle...
/// \.
/// ```
///
/// The dump is the *software-independent format* of the whole pipeline:
/// DBCoder compresses exactly these bytes, and restoration reproduces them
/// byte-for-byte before db_load re-creates the database.

#ifndef ULE_MINIDB_SQLDUMP_H_
#define ULE_MINIDB_SQLDUMP_H_

#include <string>

#include "minidb/database.h"

namespace ule {
namespace minidb {

/// Serialises a database into the textual archive (deterministic).
std::string DumpSql(const Database& db);

/// Rebuilds a database from a dump produced by DumpSql (or a compatible
/// pg_dump plain-format subset).
Result<Database> LoadSql(const std::string& dump);

}  // namespace minidb
}  // namespace ule

#endif  // ULE_MINIDB_SQLDUMP_H_
