#include "minidb/sqldump.h"

#include <sstream>

namespace ule {
namespace minidb {
namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

Result<Column> ParseColumnDef(std::string_view def, int line) {
  def = Trim(def);
  const size_t sp = def.find(' ');
  if (sp == std::string_view::npos) {
    return Status::Corruption("dump line " + std::to_string(line) +
                              ": bad column definition");
  }
  Column col;
  col.name = std::string(def.substr(0, sp));
  std::string type(Trim(def.substr(sp + 1)));
  if (type == "bigint" || type == "integer" || type == "int") {
    col.type = Type::kInt;
  } else if (type.rfind("decimal", 0) == 0 || type.rfind("numeric", 0) == 0) {
    col.type = Type::kDecimal;
    const size_t comma = type.find(',');
    const size_t close = type.find(')');
    col.scale = 2;
    if (comma != std::string::npos && close != std::string::npos &&
        close > comma) {
      col.scale = std::atoi(type.substr(comma + 1, close - comma - 1).c_str());
    }
  } else if (type == "date") {
    col.type = Type::kDate;
  } else if (type == "varchar" || type == "text" ||
             type.rfind("varchar(", 0) == 0 || type.rfind("char(", 0) == 0) {
    col.type = Type::kText;
  } else {
    return Status::Corruption("dump line " + std::to_string(line) +
                              ": unknown type '" + type + "'");
  }
  return col;
}

}  // namespace

std::string DumpSql(const Database& db) {
  std::string out;
  out += "-- ULE archive dump\n";
  out += "-- format: plain SQL (CREATE TABLE + COPY), tab-separated rows\n\n";
  for (const std::string& name : db.TableNames()) {
    const Table* table = db.GetTable(name);
    out += "CREATE TABLE " + name + " (\n";
    const auto& cols = table->schema().columns;
    for (size_t i = 0; i < cols.size(); ++i) {
      out += "    " + cols[i].name + " " +
             SqlTypeName(cols[i].type, cols[i].scale);
      out += (i + 1 < cols.size()) ? ",\n" : "\n";
    }
    out += ");\n";
    out += "COPY " + name + " (";
    for (size_t i = 0; i < cols.size(); ++i) {
      if (i) out += ", ";
      out += cols[i].name;
    }
    out += ") FROM stdin;\n";
    table->Scan([&](const Row& row) {
      for (size_t i = 0; i < row.size(); ++i) {
        if (i) out.push_back('\t');
        out += row[i].ToDumpString(cols[i].type, cols[i].scale);
      }
      out.push_back('\n');
      return true;
    });
    out += "\\.\n\n";
  }
  return out;
}

Result<Database> LoadSql(const std::string& dump) {
  Database db;
  std::istringstream in(dump);
  std::string line;
  int line_no = 0;
  Table* copy_target = nullptr;

  // State for a CREATE TABLE block under construction.
  bool in_create = false;
  std::string create_name;
  Schema create_schema;

  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv = Trim(line);
    if (copy_target != nullptr) {
      if (line == "\\.") {
        copy_target = nullptr;
        continue;
      }
      // One data row, tab-separated (raw `line`, not trimmed: text fields
      // may begin/end with spaces). Field count must match exactly.
      const auto& cols = copy_target->schema().columns;
      std::vector<std::string> fields;
      size_t start = 0;
      while (true) {
        const size_t tab = line.find('\t', start);
        if (tab == std::string::npos) {
          fields.push_back(line.substr(start));
          break;
        }
        fields.push_back(line.substr(start, tab - start));
        start = tab + 1;
      }
      if (fields.size() != cols.size()) {
        return Status::Corruption("dump line " + std::to_string(line_no) +
                                  ": wrong column count");
      }
      Row row;
      for (size_t col = 0; col < cols.size(); ++col) {
        ULE_ASSIGN_OR_RETURN(
            Value v, Value::FromDumpString(fields[col], cols[col].type,
                                           cols[col].scale));
        row.push_back(std::move(v));
      }
      ULE_RETURN_IF_ERROR(copy_target->Insert(std::move(row)));
      continue;
    }

    if (in_create) {
      if (sv == ");") {
        in_create = false;
        ULE_RETURN_IF_ERROR(
            db.CreateTable(create_name, create_schema).status());
        create_schema = Schema{};
        continue;
      }
      std::string_view def = sv;
      if (!def.empty() && def.back() == ',') def.remove_suffix(1);
      ULE_ASSIGN_OR_RETURN(Column col, ParseColumnDef(def, line_no));
      create_schema.columns.push_back(std::move(col));
      continue;
    }

    if (sv.empty() || sv.substr(0, 2) == "--") continue;

    if (sv.rfind("CREATE TABLE ", 0) == 0) {
      std::string_view rest = Trim(sv.substr(13));
      const size_t paren = rest.find('(');
      create_name = std::string(
          Trim(paren == std::string_view::npos ? rest : rest.substr(0, paren)));
      in_create = true;
      // Inline single-line definition is not produced by DumpSql; reject.
      if (paren != std::string_view::npos &&
          rest.find(");") != std::string_view::npos) {
        return Status::Corruption("dump line " + std::to_string(line_no) +
                                  ": single-line CREATE TABLE unsupported");
      }
      continue;
    }

    if (sv.rfind("COPY ", 0) == 0) {
      std::string_view rest = Trim(sv.substr(5));
      const size_t sp = rest.find_first_of(" (");
      const std::string name(rest.substr(0, sp));
      copy_target = db.GetTable(name);
      if (copy_target == nullptr) {
        return Status::Corruption("dump line " + std::to_string(line_no) +
                                  ": COPY into unknown table " + name);
      }
      if (rest.find("FROM stdin;") == std::string_view::npos) {
        return Status::Corruption("dump line " + std::to_string(line_no) +
                                  ": COPY must read FROM stdin");
      }
      continue;
    }

    return Status::Corruption("dump line " + std::to_string(line_no) +
                              ": unrecognised statement '" +
                              std::string(sv.substr(0, 40)) + "'");
  }
  if (in_create || copy_target != nullptr) {
    return Status::Corruption("dump ended inside a block");
  }
  return db;
}

}  // namespace minidb
}  // namespace ule
