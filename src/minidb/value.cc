#include "minidb/value.h"

#include <cstdio>

namespace ule {
namespace minidb {

const char* TypeName(Type t) {
  switch (t) {
    case Type::kInt:
      return "int";
    case Type::kDecimal:
      return "decimal";
    case Type::kText:
      return "text";
    case Type::kDate:
      return "date";
  }
  return "?";
}

std::string SqlTypeName(Type t, int scale) {
  switch (t) {
    case Type::kInt:
      return "bigint";
    case Type::kDecimal:
      return "decimal(15," + std::to_string(scale) + ")";
    case Type::kText:
      return "varchar";
    case Type::kDate:
      return "date";
  }
  return "unknown";
}

Value Value::Int(int64_t v) {
  Value out;
  out.null_ = false;
  out.v_ = v;
  return out;
}

Value Value::Decimal(int64_t scaled) { return Int(scaled); }

Value Value::Text(std::string v) {
  Value out;
  out.null_ = false;
  out.v_ = std::move(v);
  return out;
}

Value Value::Date(int64_t days) { return Int(days); }

int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(d) - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097LL + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* y, int* m, int* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  *m = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  *y = static_cast<int>(yy + (*m <= 2));
}

std::string FormatDate(int64_t days) {
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

Result<int64_t> ParseDate(const std::string& s) {
  if (s.size() != 10 || s[4] != '-' || s[7] != '-') {
    return Status::InvalidArgument("bad date '" + s + "'");
  }
  const int y = std::atoi(s.substr(0, 4).c_str());
  const int m = std::atoi(s.substr(5, 2).c_str());
  const int d = std::atoi(s.substr(8, 2).c_str());
  if (m < 1 || m > 12 || d < 1 || d > 31) {
    return Status::InvalidArgument("bad date '" + s + "'");
  }
  return DaysFromCivil(y, m, d);
}

namespace {

std::string FormatDecimal(int64_t v, int scale) {
  const bool neg = v < 0;
  uint64_t a = neg ? static_cast<uint64_t>(-v) : static_cast<uint64_t>(v);
  uint64_t pow10 = 1;
  for (int i = 0; i < scale; ++i) pow10 *= 10;
  std::string frac = std::to_string(a % pow10);
  frac.insert(0, static_cast<size_t>(scale) - frac.size(), '0');
  return (neg ? "-" : "") + std::to_string(a / pow10) + "." + frac;
}

std::string EscapeText(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

Result<std::string> UnescapeText(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out.push_back(s[i]);
      continue;
    }
    if (++i >= s.size()) return Status::Corruption("dangling escape");
    switch (s[i]) {
      case 't':
        out.push_back('\t');
        break;
      case 'n':
        out.push_back('\n');
        break;
      case '\\':
        out.push_back('\\');
        break;
      default:
        return Status::Corruption("unknown escape \\" + std::string(1, s[i]));
    }
  }
  return out;
}

}  // namespace

std::string Value::ToDumpString(Type type, int scale) const {
  if (null_) return "\\N";
  switch (type) {
    case Type::kInt:
      return std::to_string(AsInt());
    case Type::kDecimal:
      return FormatDecimal(AsInt(), scale);
    case Type::kDate:
      return FormatDate(AsInt());
    case Type::kText:
      return EscapeText(AsText());
  }
  return "";
}

Result<Value> Value::FromDumpString(const std::string& s, Type type,
                                    int scale) {
  if (s == "\\N") return Null();
  switch (type) {
    case Type::kInt: {
      try {
        return Int(std::stoll(s));
      } catch (...) {
        return Status::Corruption("bad int '" + s + "'");
      }
    }
    case Type::kDecimal: {
      const size_t dot = s.find('.');
      try {
        if (dot == std::string::npos) {
          int64_t pow10 = 1;
          for (int i = 0; i < scale; ++i) pow10 *= 10;
          return Decimal(std::stoll(s) * pow10);
        }
        const std::string ip = s.substr(0, dot);
        std::string fp = s.substr(dot + 1);
        if (static_cast<int>(fp.size()) > scale) {
          return Status::Corruption("decimal overflow '" + s + "'");
        }
        fp.resize(static_cast<size_t>(scale), '0');
        int64_t pow10 = 1;
        for (int i = 0; i < scale; ++i) pow10 *= 10;
        const int64_t intpart = std::stoll(ip.empty() || ip == "-" ? ip + "0" : ip);
        const int64_t frac = fp.empty() ? 0 : std::stoll(fp);
        const bool neg = !ip.empty() && ip[0] == '-';
        const int64_t mag = (neg ? -intpart : intpart) * pow10 + frac;
        return Decimal(neg ? -mag : mag);
      } catch (...) {
        return Status::Corruption("bad decimal '" + s + "'");
      }
    }
    case Type::kDate: {
      ULE_ASSIGN_OR_RETURN(int64_t days, ParseDate(s));
      return Date(days);
    }
    case Type::kText: {
      ULE_ASSIGN_OR_RETURN(std::string t, UnescapeText(s));
      return Text(std::move(t));
    }
  }
  return Status::InvalidArgument("unknown type");
}

}  // namespace minidb
}  // namespace ule
