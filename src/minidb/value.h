/// \file value.h
/// \brief Typed values for the mini relational DBMS (the PostgreSQL
/// substitute of the evaluation pipeline; DESIGN.md §2).

#ifndef ULE_MINIDB_VALUE_H_
#define ULE_MINIDB_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "support/status.h"

namespace ule {
namespace minidb {

/// Column types. Decimal values carry a fixed scale in the column schema.
enum class Type {
  kInt,      ///< 64-bit signed integer
  kDecimal,  ///< fixed-point decimal, stored as scaled int64
  kText,     ///< UTF-8 string (tab/newline-escaped in dumps)
  kDate,     ///< days since 1970-01-01
};

const char* TypeName(Type t);
/// SQL type name used in dumps ("bigint", "decimal(15,2)", ...).
std::string SqlTypeName(Type t, int scale);

/// \brief One cell: a typed value or NULL.
class Value {
 public:
  Value() : null_(true) {}
  static Value Null() { return Value(); }
  static Value Int(int64_t v);
  static Value Decimal(int64_t scaled);  ///< scale lives in the column
  static Value Text(std::string v);
  static Value Date(int64_t days);

  bool is_null() const { return null_; }
  int64_t AsInt() const { return std::get<int64_t>(v_); }
  const std::string& AsText() const { return std::get<std::string>(v_); }

  /// Renders the dump representation ("\\N" for NULL; dates ISO; decimals
  /// with exactly `scale` fraction digits; text with \t \n \\ escaped).
  std::string ToDumpString(Type type, int scale) const;

  /// Parses the dump representation.
  static Result<Value> FromDumpString(const std::string& s, Type type,
                                      int scale);

  bool operator==(const Value& o) const { return null_ == o.null_ && v_ == o.v_; }

 private:
  bool null_ = false;
  std::variant<int64_t, std::string> v_;
};

/// Civil-date helpers shared with the dump formats.
int64_t DaysFromCivil(int y, int m, int d);
void CivilFromDays(int64_t days, int* y, int* m, int* d);
std::string FormatDate(int64_t days);
Result<int64_t> ParseDate(const std::string& iso);

}  // namespace minidb
}  // namespace ule

#endif  // ULE_MINIDB_VALUE_H_
