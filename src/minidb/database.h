/// \file database.h
/// \brief Tables and catalog of the mini relational DBMS.
///
/// The paper's pipeline touches the DBMS only through its dump/load tools
/// (Fig. 2: `db_dump` / `db_load`), so this engine implements exactly what
/// the experiments exercise: schemas, row storage, scans with predicates,
/// simple aggregation (used by the "bare-metal queries after restore"
/// claim, E11), plus CSV import/export.

#ifndef ULE_MINIDB_DATABASE_H_
#define ULE_MINIDB_DATABASE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "minidb/value.h"
#include "support/status.h"

namespace ule {
namespace minidb {

/// One column definition.
struct Column {
  std::string name;
  Type type = Type::kText;
  int scale = 0;  ///< decimal fraction digits
};

/// Table schema.
struct Schema {
  std::vector<Column> columns;

  int FindColumn(const std::string& name) const;  ///< -1 when absent
};

using Row = std::vector<Value>;

/// \brief Row-store table.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t row_count() const { return rows_.size(); }
  const std::vector<Row>& rows() const { return rows_; }

  /// Appends a row; fails when the arity does not match the schema.
  Status Insert(Row row);

  /// Sequential scan; the callback returns false to stop early.
  void Scan(const std::function<bool(const Row&)>& fn) const;

  /// Counts rows matching a predicate (nullptr counts all rows).
  size_t CountWhere(const std::function<bool(const Row&)>& pred) const;

  /// Sums an int/decimal column over rows matching `pred` (nullptr = all).
  /// NULLs are skipped. Fails on text columns.
  Result<int64_t> SumWhere(const std::string& column,
                           const std::function<bool(const Row&)>& pred) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
};

/// \brief Catalog of tables.
class Database {
 public:
  /// Creates a table; fails on duplicate names.
  Result<Table*> CreateTable(const std::string& name, Schema schema);
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;
  /// Table names in creation order.
  std::vector<std::string> TableNames() const;
  size_t TotalRows() const;

  /// Structural + content equality (used by archive round-trip tests).
  bool SameContentAs(const Database& other) const;

 private:
  std::vector<std::string> order_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace minidb
}  // namespace ule

#endif  // ULE_MINIDB_DATABASE_H_
