#include "tpch/tpch.h"

#include <algorithm>
#include <cmath>

#include "minidb/sqldump.h"
#include "support/random.h"

namespace ule {
namespace tpch {
namespace {

using minidb::Column;
using minidb::Database;
using minidb::Row;
using minidb::Schema;
using minidb::Table;
using minidb::Type;
using minidb::Value;

const char* kRegions[5] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                           "MIDDLE EAST"};
// TPC-H nation -> region mapping (nation key order per the spec).
const char* kNations[25] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN",
    "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};
const int kNationRegion[25] = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                               4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};

const char* kWords[] = {
    "furiously", "quickly", "carefully", "blithely", "slyly",  "regular",
    "express",   "special", "pending",   "final",    "ironic", "bold",
    "deposits",  "requests", "accounts", "packages", "asymptotes", "pinto",
    "beans",     "theodolites", "instructions", "foxes", "dependencies",
    "platelets", "sleep", "haggle", "nag", "wake", "cajole", "engage",
    "integrate", "use", "boost", "across", "the", "above", "against"};
constexpr int kWordCount = static_cast<int>(sizeof(kWords) / sizeof(char*));

const char* kSegments[5] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                            "HOUSEHOLD", "MACHINERY"};
const char* kPriorities[5] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                              "4-NOT SPECIFIED", "5-LOW"};
const char* kShipModes[7] = {"AIR", "FOB", "MAIL", "RAIL",
                             "REG AIR", "SHIP", "TRUCK"};
const char* kShipInstr[4] = {"COLLECT COD", "DELIVER IN PERSON", "NONE",
                             "TAKE BACK RETURN"};
const char* kPartTypes[6] = {"ECONOMY ANODIZED", "LARGE BRUSHED",
                             "MEDIUM BURNISHED", "PROMO PLATED",
                             "SMALL POLISHED", "STANDARD PLATED"};
const char* kMaterials[5] = {"STEEL", "BRASS", "TIN", "NICKEL", "COPPER"};
const char* kContainers[8] = {"SM CASE", "SM BOX", "MED BAG", "MED BOX",
                              "LG CASE", "LG BOX", "JUMBO PACK", "WRAP JAR"};

std::string Comment(Rng* rng, int min_words, int max_words) {
  const int n = static_cast<int>(rng->Range(min_words, max_words));
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i) out.push_back(' ');
    out += kWords[rng->Below(kWordCount)];
  }
  return out;
}

std::string Phone(Rng* rng, int nation) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%02d-%03d-%03d-%04d", 10 + nation,
                static_cast<int>(rng->Range(100, 999)),
                static_cast<int>(rng->Range(100, 999)),
                static_cast<int>(rng->Range(1000, 9999)));
  return buf;
}

// Date window per the TPC-H spec: orders span 1992-01-01 .. 1998-08-02.
const int64_t kStartDate = minidb::DaysFromCivil(1992, 1, 1);
const int64_t kEndDate = minidb::DaysFromCivil(1998, 8, 2);

Schema MakeSchema(std::initializer_list<Column> cols) {
  Schema s;
  s.columns = cols;
  return s;
}

}  // namespace

Result<Database> Generate(const Options& options) {
  if (options.scale_factor <= 0 || options.scale_factor > 1.0) {
    return Status::InvalidArgument("scale factor must be in (0, 1]");
  }
  const double sf = options.scale_factor;
  const auto scaled = [&](int base) {
    return std::max<int64_t>(1, static_cast<int64_t>(std::llround(base * sf)));
  };
  const int64_t n_supplier = scaled(10000);
  const int64_t n_part = scaled(200000);
  const int64_t n_customer = scaled(150000);
  const int64_t n_orders = scaled(1500000);

  Rng rng(options.seed);
  Database db;

  // ---- region ----
  {
    ULE_ASSIGN_OR_RETURN(
        Table * t,
        db.CreateTable("region",
                       MakeSchema({{"r_regionkey", Type::kInt, 0},
                                   {"r_name", Type::kText, 0},
                                   {"r_comment", Type::kText, 0}})));
    for (int i = 0; i < 5; ++i) {
      ULE_RETURN_IF_ERROR(t->Insert({Value::Int(i), Value::Text(kRegions[i]),
                                     Value::Text(Comment(&rng, 4, 12))}));
    }
  }
  // ---- nation ----
  {
    ULE_ASSIGN_OR_RETURN(
        Table * t,
        db.CreateTable("nation",
                       MakeSchema({{"n_nationkey", Type::kInt, 0},
                                   {"n_name", Type::kText, 0},
                                   {"n_regionkey", Type::kInt, 0},
                                   {"n_comment", Type::kText, 0}})));
    for (int i = 0; i < 25; ++i) {
      ULE_RETURN_IF_ERROR(
          t->Insert({Value::Int(i), Value::Text(kNations[i]),
                     Value::Int(kNationRegion[i]),
                     Value::Text(Comment(&rng, 4, 12))}));
    }
  }
  // ---- supplier ----
  {
    ULE_ASSIGN_OR_RETURN(
        Table * t,
        db.CreateTable("supplier",
                       MakeSchema({{"s_suppkey", Type::kInt, 0},
                                   {"s_name", Type::kText, 0},
                                   {"s_address", Type::kText, 0},
                                   {"s_nationkey", Type::kInt, 0},
                                   {"s_phone", Type::kText, 0},
                                   {"s_acctbal", Type::kDecimal, 2},
                                   {"s_comment", Type::kText, 0}})));
    for (int64_t i = 1; i <= n_supplier; ++i) {
      const int nation = static_cast<int>(rng.Below(25));
      char name[32];
      std::snprintf(name, sizeof(name), "Supplier#%09lld",
                    static_cast<long long>(i));
      ULE_RETURN_IF_ERROR(t->Insert(
          {Value::Int(i), Value::Text(name),
           Value::Text(Comment(&rng, 2, 4)), Value::Int(nation),
           Value::Text(Phone(&rng, nation)),
           Value::Decimal(rng.Range(-99999, 999999)),
           Value::Text(Comment(&rng, 6, 14))}));
    }
  }
  // ---- part ----
  {
    ULE_ASSIGN_OR_RETURN(
        Table * t,
        db.CreateTable("part", MakeSchema({{"p_partkey", Type::kInt, 0},
                                           {"p_name", Type::kText, 0},
                                           {"p_mfgr", Type::kText, 0},
                                           {"p_brand", Type::kText, 0},
                                           {"p_type", Type::kText, 0},
                                           {"p_size", Type::kInt, 0},
                                           {"p_container", Type::kText, 0},
                                           {"p_retailprice", Type::kDecimal, 2},
                                           {"p_comment", Type::kText, 0}})));
    for (int64_t i = 1; i <= n_part; ++i) {
      const int m = static_cast<int>(rng.Range(1, 5));
      char mfgr[32], brand[32];
      std::snprintf(mfgr, sizeof(mfgr), "Manufacturer#%d", m);
      std::snprintf(brand, sizeof(brand), "Brand#%d%d", m,
                    static_cast<int>(rng.Range(1, 5)));
      std::string type = std::string(kPartTypes[rng.Below(6)]) + " " +
                         kMaterials[rng.Below(5)];
      // Retail price formula per the spec: 90000 + key/10 + 100*(key mod 1000)
      const int64_t price = (90000 + (i % 20001) / 10 + 100 * (i % 1000)) / 10;
      ULE_RETURN_IF_ERROR(t->Insert(
          {Value::Int(i), Value::Text(Comment(&rng, 3, 5)), Value::Text(mfgr),
           Value::Text(brand), Value::Text(type),
           Value::Int(rng.Range(1, 50)), Value::Text(kContainers[rng.Below(8)]),
           Value::Decimal(price), Value::Text(Comment(&rng, 2, 8))}));
    }
  }
  // ---- partsupp (4 suppliers per part) ----
  {
    ULE_ASSIGN_OR_RETURN(
        Table * t,
        db.CreateTable("partsupp",
                       MakeSchema({{"ps_partkey", Type::kInt, 0},
                                   {"ps_suppkey", Type::kInt, 0},
                                   {"ps_availqty", Type::kInt, 0},
                                   {"ps_supplycost", Type::kDecimal, 2},
                                   {"ps_comment", Type::kText, 0}})));
    for (int64_t p = 1; p <= n_part; ++p) {
      for (int s = 0; s < 4; ++s) {
        const int64_t supp =
            1 + (p + s * ((n_supplier / 4) + 1)) % n_supplier;
        ULE_RETURN_IF_ERROR(
            t->Insert({Value::Int(p), Value::Int(supp),
                       Value::Int(rng.Range(1, 9999)),
                       Value::Decimal(rng.Range(100, 100000)),
                       Value::Text(Comment(&rng, 8, 20))}));
      }
    }
  }
  // ---- customer ----
  {
    ULE_ASSIGN_OR_RETURN(
        Table * t,
        db.CreateTable("customer",
                       MakeSchema({{"c_custkey", Type::kInt, 0},
                                   {"c_name", Type::kText, 0},
                                   {"c_address", Type::kText, 0},
                                   {"c_nationkey", Type::kInt, 0},
                                   {"c_phone", Type::kText, 0},
                                   {"c_acctbal", Type::kDecimal, 2},
                                   {"c_mktsegment", Type::kText, 0},
                                   {"c_comment", Type::kText, 0}})));
    for (int64_t i = 1; i <= n_customer; ++i) {
      const int nation = static_cast<int>(rng.Below(25));
      char name[32];
      std::snprintf(name, sizeof(name), "Customer#%09lld",
                    static_cast<long long>(i));
      ULE_RETURN_IF_ERROR(t->Insert(
          {Value::Int(i), Value::Text(name), Value::Text(Comment(&rng, 2, 4)),
           Value::Int(nation), Value::Text(Phone(&rng, nation)),
           Value::Decimal(rng.Range(-99999, 999999)),
           Value::Text(kSegments[rng.Below(5)]),
           Value::Text(Comment(&rng, 6, 16))}));
    }
  }
  // ---- orders + lineitem ----
  {
    ULE_ASSIGN_OR_RETURN(
        Table * orders,
        db.CreateTable("orders",
                       MakeSchema({{"o_orderkey", Type::kInt, 0},
                                   {"o_custkey", Type::kInt, 0},
                                   {"o_orderstatus", Type::kText, 0},
                                   {"o_totalprice", Type::kDecimal, 2},
                                   {"o_orderdate", Type::kDate, 0},
                                   {"o_orderpriority", Type::kText, 0},
                                   {"o_clerk", Type::kText, 0},
                                   {"o_shippriority", Type::kInt, 0},
                                   {"o_comment", Type::kText, 0}})));
    ULE_ASSIGN_OR_RETURN(
        Table * lineitem,
        db.CreateTable("lineitem",
                       MakeSchema({{"l_orderkey", Type::kInt, 0},
                                   {"l_partkey", Type::kInt, 0},
                                   {"l_suppkey", Type::kInt, 0},
                                   {"l_linenumber", Type::kInt, 0},
                                   {"l_quantity", Type::kInt, 0},
                                   {"l_extendedprice", Type::kDecimal, 2},
                                   {"l_discount", Type::kDecimal, 2},
                                   {"l_tax", Type::kDecimal, 2},
                                   {"l_returnflag", Type::kText, 0},
                                   {"l_linestatus", Type::kText, 0},
                                   {"l_shipdate", Type::kDate, 0},
                                   {"l_commitdate", Type::kDate, 0},
                                   {"l_receiptdate", Type::kDate, 0},
                                   {"l_shipinstruct", Type::kText, 0},
                                   {"l_shipmode", Type::kText, 0},
                                   {"l_comment", Type::kText, 0}})));
    const int64_t current_date = minidb::DaysFromCivil(1995, 6, 17);
    for (int64_t o = 1; o <= n_orders; ++o) {
      // Sparse order keys (the spec leaves gaps): key = o*4 - 3.
      const int64_t okey = o * 4 - 3;
      const int64_t cust = 1 + static_cast<int64_t>(rng.Below(
                                   static_cast<uint64_t>(n_customer)));
      const int64_t odate =
          kStartDate + rng.Range(0, kEndDate - kStartDate - 151);
      const int nlines = static_cast<int>(rng.Range(1, 7));
      int64_t total = 0;
      int all_f = 1, any_f = 0;
      for (int ln = 1; ln <= nlines; ++ln) {
        const int64_t part =
            1 + static_cast<int64_t>(rng.Below(static_cast<uint64_t>(n_part)));
        const int64_t supp = 1 + static_cast<int64_t>(rng.Below(
                                     static_cast<uint64_t>(n_supplier)));
        const int64_t qty = rng.Range(1, 50);
        const int64_t eprice = qty * rng.Range(90000, 210000) / 100;
        const int64_t discount = rng.Range(0, 10);
        const int64_t tax = rng.Range(0, 8);
        const int64_t ship = odate + rng.Range(1, 121);
        const int64_t commit = odate + rng.Range(30, 90);
        const int64_t receipt = ship + rng.Range(1, 30);
        const bool filled = receipt <= current_date;
        const char* rflag = !filled ? "N" : (rng.Chance(0.5) ? "R" : "A");
        const char* lstatus = filled ? "F" : "O";
        all_f &= filled ? 1 : 0;
        any_f |= filled ? 1 : 0;
        total += eprice * (100 - discount) / 100 * (100 + tax) / 100;
        ULE_RETURN_IF_ERROR(lineitem->Insert(
            {Value::Int(okey), Value::Int(part), Value::Int(supp),
             Value::Int(ln), Value::Int(qty), Value::Decimal(eprice),
             Value::Decimal(discount), Value::Decimal(tax),
             Value::Text(rflag), Value::Text(lstatus), Value::Date(ship),
             Value::Date(commit), Value::Date(receipt),
             Value::Text(kShipInstr[rng.Below(4)]),
             Value::Text(kShipModes[rng.Below(7)]),
             Value::Text(Comment(&rng, 3, 8))}));
      }
      const char* status = all_f ? "F" : (any_f ? "P" : "O");
      char clerk[24];
      std::snprintf(clerk, sizeof(clerk), "Clerk#%09d",
                    static_cast<int>(rng.Range(1, 1000)));
      ULE_RETURN_IF_ERROR(orders->Insert(
          {Value::Int(okey), Value::Int(cust), Value::Text(status),
           Value::Decimal(total), Value::Date(odate),
           Value::Text(kPriorities[rng.Below(5)]), Value::Text(clerk),
           Value::Int(0), Value::Text(Comment(&rng, 4, 12))}));
    }
  }
  return db;
}

Result<Database> GenerateForDumpSize(size_t target_bytes, uint64_t seed) {
  // The dump size is nearly linear in SF; one calibration generation at a
  // small SF predicts the right one, then a second pass refines.
  Options opt;
  opt.seed = seed;
  opt.scale_factor = 0.0005;
  ULE_ASSIGN_OR_RETURN(Database probe, Generate(opt));
  const size_t probe_size = minidb::DumpSql(probe).size();
  double sf = opt.scale_factor * static_cast<double>(target_bytes) /
              static_cast<double>(probe_size);
  sf = std::clamp(sf, 1e-5, 1.0);
  opt.scale_factor = sf;
  ULE_ASSIGN_OR_RETURN(Database db, Generate(opt));
  return db;
}

}  // namespace tpch
}  // namespace ule
