/// \file tpch.h
/// \brief Deterministic TPC-H data generator (dbgen substitute).
///
/// The paper's first experiment loads a TPC-H dataset into PostgreSQL and
/// dumps it with pg_dump, scaled so the dump is ~1.2 MB (§4, "Paper
/// archive"). This generator produces all eight TPC-H tables with the
/// standard schemas at fractional scale factors, deterministically (same
/// SF + seed -> identical bytes), into a minidb::Database.
///
/// Cardinalities follow the TPC-H specification (per SF 1): supplier 10k,
/// part 200k, partsupp 800k, customer 150k, orders 1.5M, lineitem ~6M,
/// nation 25, region 5. Value distributions are simplified but shaped like
/// the spec's (key ranges, date windows, comment text pools); DESIGN.md §2
/// documents the substitution.

#ifndef ULE_TPCH_TPCH_H_
#define ULE_TPCH_TPCH_H_

#include "minidb/database.h"
#include "support/status.h"

namespace ule {
namespace tpch {

/// Generation parameters.
struct Options {
  double scale_factor = 0.001;  ///< fraction of TPC-H SF 1
  uint64_t seed = 19920101;     ///< PRNG seed (dates start 1992 in TPC-H)
};

/// Generates the full 8-table TPC-H database.
Result<minidb::Database> Generate(const Options& options);

/// Convenience: picks a scale factor whose SQL dump is close to
/// `target_bytes` (used by the paper-archive experiment to hit ~1.2 MB).
Result<minidb::Database> GenerateForDumpSize(size_t target_bytes,
                                             uint64_t seed = 19920101);

}  // namespace tpch
}  // namespace ule

#endif  // ULE_TPCH_TPCH_H_
