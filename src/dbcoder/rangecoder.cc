#include "dbcoder/rangecoder.h"

namespace ule {
namespace dbcoder {

void RangeEncoder::ShiftLow() {
  // low_ is a 16-bit window plus a carry bit at bit 16 (the LZMA shift-low
  // construction scaled from 32-bit range to 16-bit range). A byte can be
  // emitted once no future carry can change it: either the outgoing byte is
  // below 0xFF, or a carry has just resolved the pending run.
  if ((low_ & 0xFFFFull) < 0xFF00ull || (low_ >> 16) != 0) {
    const uint8_t carry = static_cast<uint8_t>(low_ >> 16);
    if (!first_) {
      out_.push_back(static_cast<uint8_t>(cache_ + carry));
    } else {
      // The very first shifted byte is the initial cache (zero); emit it so
      // the decoder can discard exactly one byte.
      out_.push_back(carry);
      first_ = false;
    }
    while (pending_ > 0) {
      out_.push_back(static_cast<uint8_t>(0xFF + carry));
      --pending_;
    }
    cache_ = static_cast<uint8_t>((low_ >> 8) & 0xFF);
  } else {
    ++pending_;
  }
  low_ = (low_ & 0xFFull) << 8;
}

void RangeEncoder::EncodeBit(uint8_t* prob, int bit) {
  const uint32_t bound = (range_ >> 8) * (*prob);
  if (bit == 0) {
    range_ = bound;
    *prob = static_cast<uint8_t>(*prob + ((256 - *prob) >> kProbShift));
  } else {
    low_ += bound;
    range_ -= bound;
    *prob = static_cast<uint8_t>(*prob - (*prob >> kProbShift));
  }
  while (range_ < 0x100) {
    range_ <<= 8;
    ShiftLow();
  }
}

Bytes RangeEncoder::Finish() {
  for (int i = 0; i < 4; ++i) ShiftLow();
  return std::move(out_);
}

RangeDecoder::RangeDecoder(BytesView data) : data_(data) {
  NextByte();  // the spec's discarded leading byte
  code_ = NextByte();
  code_ = (code_ << 8) | NextByte();
}

int RangeDecoder::DecodeBit(uint8_t* prob) {
  const uint32_t bound = (range_ >> 8) * (*prob);
  int bit;
  if (code_ < bound) {
    bit = 0;
    range_ = bound;
    *prob = static_cast<uint8_t>(*prob + ((256 - *prob) >> kProbShift));
  } else {
    bit = 1;
    code_ -= bound;
    range_ -= bound;
    *prob = static_cast<uint8_t>(*prob - (*prob >> kProbShift));
  }
  while (range_ < 0x100) {
    range_ <<= 8;
    code_ = ((code_ << 8) | NextByte()) & 0xFFFF;
  }
  return bit;
}

}  // namespace dbcoder
}  // namespace ule
