/// \file rangecoder.h
/// \brief Adaptive binary arithmetic (range) coder used by the LZAC scheme.
///
/// The coder is deliberately specified with 16-bit state and 8-bit
/// probabilities so that the archived DynaRisc decoder (a 16-bit machine)
/// can implement it without multi-precision arithmetic:
///
///   state: range (16-bit, init 0xFFFF), code (16-bit)
///   prob:  per-context P(bit = 0) scaled to 0..255, init 128
///   decode bit with context p:
///     bound = (range >> 8) * p
///     if code < bound:  bit = 0; range = bound;          p += (256 - p) >> 4
///     else:             bit = 1; code -= bound;
///                       range -= bound;                  p -= p >> 4
///     while range < 0x100: range <<= 8; code = (code << 8) | next byte
///   decoder init: discard one byte (always zero), then read two bytes
///   into code.
///
/// The encoder is the standard carry-counting construction (LZMA-style,
/// scaled down); it only ever runs at archival time, on a contemporary
/// machine, so it is implemented in C++ only.

#ifndef ULE_DBCODER_RANGECODER_H_
#define ULE_DBCODER_RANGECODER_H_

#include <cstdint>

#include "support/bytes.h"
#include "support/status.h"

namespace ule {
namespace dbcoder {

/// Probability update shift (adaptation rate).
inline constexpr int kProbShift = 4;
/// Initial probability (P(bit=0) = 0.5).
inline constexpr uint8_t kProbInit = 128;

/// \brief Encoder half of the range coder. Append bits, then Finish().
class RangeEncoder {
 public:
  /// Encodes `bit` under the adaptive context probability `*prob`.
  void EncodeBit(uint8_t* prob, int bit);
  /// Flushes the remaining state; returns the byte stream (first byte is
  /// always zero, as the decoder spec requires).
  Bytes Finish();

 private:
  void ShiftLow();

  uint64_t low_ = 0;
  uint32_t range_ = 0xFFFF;
  uint8_t cache_ = 0;
  uint64_t pending_ = 0;  // count of 0xFF bytes awaiting carry resolution
  bool first_ = true;
  Bytes out_;
};

/// \brief Decoder half. Mirrors the archived DynaRisc implementation
/// bit-for-bit (the conformance tests in tests/decoders_test.cc rely on
/// that).
class RangeDecoder {
 public:
  /// \param data encoded stream (from RangeEncoder::Finish)
  explicit RangeDecoder(BytesView data);

  /// Decodes one bit under `*prob`. Reading past the end of the stream
  /// supplies zero bytes (the encoder's flush guarantees enough data for
  /// all encoded bits).
  int DecodeBit(uint8_t* prob);

  size_t position() const { return pos_; }

 private:
  uint8_t NextByte() { return pos_ < data_.size() ? data_[pos_++] : 0; }

  BytesView data_;
  size_t pos_ = 0;
  uint32_t range_ = 0xFFFF;
  uint32_t code_ = 0;
};

}  // namespace dbcoder
}  // namespace ule

#endif  // ULE_DBCODER_RANGECODER_H_
