/// \file dbcoder.h
/// \brief DBCoder: the database layout encoder/decoder (paper §3.1).
///
/// DBCoder "manages compression of archived databases from their textual,
/// software-independent format into a compressed binary layout". The
/// container wraps one of several schemes:
///
///   * kStore     — no compression (baseline).
///   * kLzss      — byte/bit-oriented LZ77 (no entropy coding): simplest
///                  archived decoder; robustness baseline.
///   * kLzac      — LZ77 + adaptive binary arithmetic coding: the paper's
///                  generic scheme ("close to 7-Zip's LZMA"). This is the
///                  default archival scheme; its decoder is archived as
///                  DynaRisc assembly.
///   * kColumnar  — the paper's future-work scheme (§5): parses the SQL
///                  dump's COPY blocks and applies typed, per-column
///                  encodings (dictionary/delta/run-length); used by the
///                  compression experiment (E10).
///
/// Container layout ("UDB1"): magic, scheme byte, u32 raw length, u32
/// CRC-32 of the raw payload, then the scheme's stream. The archived
/// DynaRisc DBDecode program parses this same container.

#ifndef ULE_DBCODER_DBCODER_H_
#define ULE_DBCODER_DBCODER_H_

#include <string>

#include "support/bytes.h"
#include "support/status.h"

namespace ule {
namespace dbcoder {

/// Compression scheme identifiers (byte 4 of the container).
enum class Scheme : uint8_t {
  kStore = 0,
  kLzss = 1,
  kLzac = 2,
  kColumnar = 3,
};

/// Human-readable scheme name.
const char* SchemeName(Scheme scheme);

/// Compresses `raw` into a DBCoder container with the given scheme.
Result<Bytes> Encode(BytesView raw, Scheme scheme);

/// Decodes a DBCoder container produced by Encode (any scheme; the scheme
/// byte in the container decides). Validates the payload CRC.
Result<Bytes> Decode(BytesView container);

/// Peeks the scheme byte of a container without decoding.
Result<Scheme> PeekScheme(BytesView container);

}  // namespace dbcoder
}  // namespace ule

#endif  // ULE_DBCODER_DBCODER_H_
