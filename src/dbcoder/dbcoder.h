/// \file dbcoder.h
/// \brief DBCoder: the database layout encoder/decoder (paper §3.1).
///
/// DBCoder "manages compression of archived databases from their textual,
/// software-independent format into a compressed binary layout". The
/// container wraps one of several schemes:
///
///   * kStore     — no compression (baseline).
///   * kLzss      — byte/bit-oriented LZ77 (no entropy coding): simplest
///                  archived decoder; robustness baseline.
///   * kLzac      — LZ77 + adaptive binary arithmetic coding: the paper's
///                  generic scheme ("close to 7-Zip's LZMA"). This is the
///                  default archival scheme; its decoder is archived as
///                  DynaRisc assembly.
///   * kColumnar  — the paper's future-work scheme (§5): parses the SQL
///                  dump's COPY blocks and applies typed, per-column
///                  encodings (dictionary/delta/run-length); used by the
///                  compression experiment (E10).
///
/// Container layout ("UDB1"): magic, scheme byte, u32 raw length, u32
/// CRC-32 of the raw payload, then the scheme's stream. The archived
/// DynaRisc DBDecode program parses this same container.
///
/// ## Segmented streams ("UDBS", docs/FORMAT.md §11.1)
///
/// The adaptive schemes (kLzac in particular) carry stream-long decoder
/// state, so a plain UDB1 container has no random access: restoring one
/// table means decompressing everything before it. When an archive is
/// built with a record index (ULE-S1), the raw dump is instead cut into
/// chunks and each chunk becomes its *own* UDB1 container; the "UDBS"
/// wrapper frames them with a CRC-protected length table. Each segment
/// decodes independently, so a selective restore decompresses only the
/// chunks a predicate touches. `Decode` understands both shapes.

#ifndef ULE_DBCODER_DBCODER_H_
#define ULE_DBCODER_DBCODER_H_

#include <string>
#include <vector>

#include "support/bytes.h"
#include "support/status.h"

namespace ule {
namespace dbcoder {

/// Compression scheme identifiers (byte 4 of the container).
enum class Scheme : uint8_t {
  kStore = 0,
  kLzss = 1,
  kLzac = 2,
  kColumnar = 3,
};

/// Human-readable scheme name.
const char* SchemeName(Scheme scheme);

/// Compresses `raw` into a DBCoder container with the given scheme.
Result<Bytes> Encode(BytesView raw, Scheme scheme);

/// Decodes a DBCoder container produced by Encode (any scheme; the scheme
/// byte in the container decides). Validates the payload CRC.
Result<Bytes> Decode(BytesView container);

/// Peeks the scheme byte of a container without decoding (UDB1 or UDBS).
Result<Scheme> PeekScheme(BytesView container);

/// One independently decodable span of a segmented ("UDBS") stream:
/// which raw bytes it reproduces and where its UDB1 container sits in
/// the stream. All offsets are absolute (raw side: into the original
/// input; stream side: into the full UDBS stream).
struct SegmentSpan {
  uint64_t raw_offset = 0;
  uint64_t raw_len = 0;
  uint64_t stream_offset = 0;
  uint64_t stream_len = 0;
};

/// \brief Compresses `raw` into a segmented "UDBS" stream. `segments`
/// is in-out: the caller pre-fills `raw_offset`/`raw_len` with a
/// contiguous, gap-free partition of `raw` (the record-index chunk
/// plan); EncodeSegmented fills in each segment's `stream_offset`/
/// `stream_len`. Every segment is a complete, self-contained UDB1
/// container, so `Decode(stream.substr(seg))` yields exactly that
/// segment's raw bytes.
Result<Bytes> EncodeSegmented(BytesView raw, Scheme scheme,
                              std::vector<SegmentSpan>* segments);

/// True when `stream` starts with the "UDBS" segmented magic.
bool IsSegmented(BytesView stream);

/// Parses a segmented stream's header + length table (CRC-checked) and
/// reconstructs every span, raw side included (each segment container
/// records its own raw length). Fails on a plain UDB1 container.
Result<std::vector<SegmentSpan>> ListSegments(BytesView stream);

}  // namespace dbcoder
}  // namespace ule

#endif  // ULE_DBCODER_DBCODER_H_
