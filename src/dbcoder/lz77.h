/// \file lz77.h
/// \brief LZ77 parsing shared by the LZSS and LZAC schemes of DBCoder.
///
/// DBCoder's generic scheme is "based on LZ77 and arithmetic coding" (§3.1).
/// This module produces the token stream (literals and back-references);
/// the two schemes differ only in how tokens are entropy-coded.
///
/// Format parameters are fixed for the archival format (they are baked into
/// the archived DynaRisc decoder, so they can never change — that is the
/// point of ULE):
///   * window: 8192 bytes (13-bit offsets)
///   * match length: 3..34 (5-bit length field, bias 3)

#ifndef ULE_DBCODER_LZ77_H_
#define ULE_DBCODER_LZ77_H_

#include <cstdint>
#include <vector>

#include "support/bytes.h"

namespace ule {
namespace dbcoder {

/// Archival-format constants (frozen; see file comment).
inline constexpr int kWindowBits = 13;
inline constexpr uint32_t kWindowSize = 1u << kWindowBits;  // 8192
inline constexpr int kLengthBits = 5;
inline constexpr uint32_t kMinMatch = 3;
inline constexpr uint32_t kMaxMatch = kMinMatch + (1u << kLengthBits) - 1;  // 34

/// One LZ77 token: either a literal byte or a (distance, length) match.
struct Token {
  bool is_match = false;
  uint8_t literal = 0;    ///< when !is_match
  uint16_t distance = 0;  ///< 1..kWindowSize, when is_match
  uint8_t length = 0;     ///< kMinMatch..kMaxMatch, when is_match
};

/// Greedy hash-chain parse of `input` into tokens (with one-step lazy
/// matching, zlib-style). Deterministic.
std::vector<Token> Parse(BytesView input);

/// Reconstructs the original bytes from a token stream (reference
/// expansion used by tests and by the C++ decoders).
Bytes Expand(const std::vector<Token>& tokens);

}  // namespace dbcoder
}  // namespace ule

#endif  // ULE_DBCODER_LZ77_H_
