#include "dbcoder/columnar.h"

#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ule {
namespace dbcoder {

// The verbatim fallback reuses LZAC through the public container API.
Result<Bytes> LzacEncodeForColumnar(BytesView raw);
Result<Bytes> LzacDecodeForColumnar(BytesView stream, size_t raw_len);

namespace {

// ---- varint / zigzag ----

void PutVarint(Bytes* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

Status GetVarint(ByteReader* r, uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    uint8_t b;
    ULE_RETURN_IF_ERROR(r->GetU8(&b));
    v |= static_cast<uint64_t>(b & 0x7F) << shift;
    if (!(b & 0x80)) break;
    shift += 7;
    if (shift > 63) return Status::Corruption("varint too long");
  }
  *out = v;
  return Status::OK();
}

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

// ---- value parsing with exact-reconstruction guarantees ----

// Plain integer with no leading zeros (except "0"), optional '-'.
std::optional<int64_t> ParseExactInt(const std::string& s) {
  if (s.empty() || s.size() > 18) return std::nullopt;
  size_t i = (s[0] == '-') ? 1 : 0;
  if (i == s.size()) return std::nullopt;
  if (s[i] == '0' && s.size() > i + 1) return std::nullopt;
  int64_t v = 0;
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return std::nullopt;
    v = v * 10 + (s[i] - '0');
  }
  return (s[0] == '-') ? -v : v;
}

// Decimal "intpart.frac" with exactly `scale` fraction digits.
std::optional<int64_t> ParseExactDecimal(const std::string& s, int scale) {
  const size_t dot = s.find('.');
  if (dot == std::string::npos) return std::nullopt;
  if (static_cast<int>(s.size() - dot - 1) != scale) return std::nullopt;
  const std::string ip = s.substr(0, dot);
  const std::string fp = s.substr(dot + 1);
  const bool neg = !ip.empty() && ip[0] == '-';
  const std::string ip_digits = neg ? ip.substr(1) : ip;
  if (ip_digits.empty()) return std::nullopt;
  if (ip_digits[0] == '0' && ip_digits.size() > 1) return std::nullopt;
  int64_t intpart = 0;
  for (char c : ip_digits) {
    if (c < '0' || c > '9') return std::nullopt;
    intpart = intpart * 10 + (c - '0');
  }
  int64_t frac = 0;
  for (char c : fp) {
    if (c < '0' || c > '9') return std::nullopt;
    frac = frac * 10 + (c - '0');
  }
  int64_t pow10 = 1;
  for (int i = 0; i < scale; ++i) pow10 *= 10;
  const int64_t v = intpart * pow10 + frac;
  return neg ? -v : v;
}

std::string FormatDecimal(int64_t v, int scale) {
  const bool neg = v < 0;
  uint64_t a = neg ? static_cast<uint64_t>(-v) : static_cast<uint64_t>(v);
  uint64_t pow10 = 1;
  for (int i = 0; i < scale; ++i) pow10 *= 10;
  std::string frac = std::to_string(a % pow10);
  frac.insert(0, static_cast<size_t>(scale) - frac.size(), '0');
  return (neg ? "-" : "") + std::to_string(a / pow10) + "." + frac;
}

// Civil-date <-> days since 1970-01-01 (Howard Hinnant's algorithm).
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2) / 5 + static_cast<unsigned>(d) - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097LL + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* y, int* m, int* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  *m = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  *y = static_cast<int>(yy + (*m <= 2));
}

std::optional<int64_t> ParseExactDate(const std::string& s) {
  if (s.size() != 10 || s[4] != '-' || s[7] != '-') return std::nullopt;
  for (size_t i : {0u, 1u, 2u, 3u, 5u, 6u, 8u, 9u}) {
    if (s[i] < '0' || s[i] > '9') return std::nullopt;
  }
  const int y = std::stoi(s.substr(0, 4));
  const int m = std::stoi(s.substr(5, 2));
  const int d = std::stoi(s.substr(8, 2));
  if (m < 1 || m > 12 || d < 1 || d > 31) return std::nullopt;
  const int64_t days = DaysFromCivil(y, m, d);
  // verify round trip (rejects e.g. Feb 30)
  int yy, mm, dd;
  CivilFromDays(days, &yy, &mm, &dd);
  if (yy != y || mm != m || dd != d) return std::nullopt;
  return days;
}

std::string FormatDate(int64_t days) {
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

// ---- column encodings ----

enum ColumnKind : uint8_t {
  kColInt = 0,
  kColDecimal = 1,
  kColDate = 2,
  kColDict = 3,
  kColBlob = 4,
};

// Section tags of the stream.
enum SectionTag : uint8_t { kSectionText = 0, kSectionCopy = 1, kSectionEnd = 2 };

struct CopyBlock {
  std::string header;                            // the COPY ... line, with \n
  std::vector<std::vector<std::string>> rows;    // [row][col]
  size_t columns = 0;
};

// Scans `text` from `pos`: if a well-formed COPY block starts there, parses
// it (header line through the "\." line) and returns it.
std::optional<CopyBlock> TryParseCopy(const std::string& text, size_t pos,
                                      size_t* end_pos) {
  if (text.compare(pos, 5, "COPY ") != 0) return std::nullopt;
  const size_t hdr_end = text.find('\n', pos);
  if (hdr_end == std::string::npos) return std::nullopt;
  CopyBlock block;
  block.header = text.substr(pos, hdr_end - pos + 1);
  if (block.header.find("FROM stdin;") == std::string::npos) return std::nullopt;

  size_t p = hdr_end + 1;
  while (true) {
    const size_t line_end = text.find('\n', p);
    if (line_end == std::string::npos) return std::nullopt;  // unterminated
    const std::string line = text.substr(p, line_end - p);
    p = line_end + 1;
    if (line == "\\.") break;
    std::vector<std::string> fields;
    size_t start = 0;
    while (true) {
      const size_t tab = line.find('\t', start);
      if (tab == std::string::npos) {
        fields.push_back(line.substr(start));
        break;
      }
      fields.push_back(line.substr(start, tab - start));
      start = tab + 1;
    }
    if (block.rows.empty()) {
      block.columns = fields.size();
    } else if (fields.size() != block.columns) {
      return std::nullopt;  // ragged rows: not reconstructible columnarly
    }
    block.rows.push_back(std::move(fields));
  }
  *end_pos = p;
  return block;
}

std::string ReassembleCopy(const CopyBlock& block) {
  std::string out = block.header;
  for (const auto& row : block.rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out.push_back('\t');
      out += row[c];
    }
    out.push_back('\n');
  }
  out += "\\.\n";
  return out;
}

// Encodes one column; chooses the cheapest applicable kind.
void EncodeColumn(const std::vector<std::vector<std::string>>& rows, size_t col,
                  Bytes* out) {
  std::vector<const std::string*> vals;
  vals.reserve(rows.size());
  for (const auto& r : rows) vals.push_back(&r[col]);

  // Integers?
  {
    std::vector<int64_t> ints;
    ints.reserve(vals.size());
    bool ok = true;
    for (const auto* v : vals) {
      auto p = ParseExactInt(*v);
      if (!p) {
        ok = false;
        break;
      }
      ints.push_back(*p);
    }
    if (ok) {
      out->push_back(kColInt);
      int64_t prev = 0;
      for (int64_t v : ints) {
        PutVarint(out, ZigZag(v - prev));
        prev = v;
      }
      return;
    }
  }
  // Decimals with a uniform scale?
  {
    const size_t dot = vals[0]->find('.');
    if (dot != std::string::npos) {
      const int scale = static_cast<int>(vals[0]->size() - dot - 1);
      if (scale >= 1 && scale <= 9) {
        std::vector<int64_t> decs;
        decs.reserve(vals.size());
        bool ok = true;
        for (const auto* v : vals) {
          auto p = ParseExactDecimal(*v, scale);
          if (!p) {
            ok = false;
            break;
          }
          decs.push_back(*p);
        }
        if (ok) {
          out->push_back(kColDecimal);
          out->push_back(static_cast<uint8_t>(scale));
          int64_t prev = 0;
          for (int64_t v : decs) {
            PutVarint(out, ZigZag(v - prev));
            prev = v;
          }
          return;
        }
      }
    }
  }
  // Dates?
  {
    std::vector<int64_t> days;
    days.reserve(vals.size());
    bool ok = true;
    for (const auto* v : vals) {
      auto p = ParseExactDate(*v);
      if (!p) {
        ok = false;
        break;
      }
      days.push_back(*p);
    }
    if (ok) {
      out->push_back(kColDate);
      int64_t prev = 0;
      for (int64_t v : days) {
        PutVarint(out, ZigZag(v - prev));
        prev = v;
      }
      return;
    }
  }
  // Small-cardinality dictionary?
  {
    std::map<std::string, size_t> dict;
    for (const auto* v : vals) {
      if (dict.size() > 255) break;
      dict.emplace(*v, 0);
    }
    if (dict.size() <= 255 && dict.size() * 4 < vals.size() * 3) {
      out->push_back(kColDict);
      PutVarint(out, dict.size());
      size_t next = 0;
      for (auto& [key, id] : dict) {
        id = next++;
        PutVarint(out, key.size());
        out->insert(out->end(), key.begin(), key.end());
      }
      for (const auto* v : vals) {
        out->push_back(static_cast<uint8_t>(dict[*v]));
      }
      return;
    }
  }
  // Fallback: newline-joined blob, LZAC-compressed.
  {
    std::string joined;
    for (const auto* v : vals) {
      joined += *v;
      joined.push_back('\n');
    }
    out->push_back(kColBlob);
    const Bytes raw = ToBytes(joined);
    const Bytes packed = LzacEncodeForColumnar(raw).TakeValue();
    PutVarint(out, raw.size());
    PutVarint(out, packed.size());
    out->insert(out->end(), packed.begin(), packed.end());
  }
}

Status DecodeColumn(ByteReader* r, size_t row_count,
                    std::vector<std::string>* out) {
  out->clear();
  out->reserve(row_count);
  uint8_t kind;
  ULE_RETURN_IF_ERROR(r->GetU8(&kind));
  switch (kind) {
    case kColInt:
    case kColDate: {
      int64_t prev = 0;
      for (size_t i = 0; i < row_count; ++i) {
        uint64_t zz;
        ULE_RETURN_IF_ERROR(GetVarint(r, &zz));
        prev += UnZigZag(zz);
        out->push_back(kind == kColInt ? std::to_string(prev)
                                       : FormatDate(prev));
      }
      return Status::OK();
    }
    case kColDecimal: {
      uint8_t scale;
      ULE_RETURN_IF_ERROR(r->GetU8(&scale));
      int64_t prev = 0;
      for (size_t i = 0; i < row_count; ++i) {
        uint64_t zz;
        ULE_RETURN_IF_ERROR(GetVarint(r, &zz));
        prev += UnZigZag(zz);
        out->push_back(FormatDecimal(prev, scale));
      }
      return Status::OK();
    }
    case kColDict: {
      uint64_t dict_size;
      ULE_RETURN_IF_ERROR(GetVarint(r, &dict_size));
      std::vector<std::string> dict;
      dict.reserve(dict_size);
      for (uint64_t i = 0; i < dict_size; ++i) {
        uint64_t len;
        ULE_RETURN_IF_ERROR(GetVarint(r, &len));
        Bytes s;
        ULE_RETURN_IF_ERROR(r->GetBytes(len, &s));
        dict.push_back(ToString(s));
      }
      for (size_t i = 0; i < row_count; ++i) {
        uint8_t id;
        ULE_RETURN_IF_ERROR(r->GetU8(&id));
        if (id >= dict.size()) return Status::Corruption("dict id range");
        out->push_back(dict[id]);
      }
      return Status::OK();
    }
    case kColBlob: {
      uint64_t raw_len, packed_len;
      ULE_RETURN_IF_ERROR(GetVarint(r, &raw_len));
      ULE_RETURN_IF_ERROR(GetVarint(r, &packed_len));
      Bytes packed;
      ULE_RETURN_IF_ERROR(r->GetBytes(packed_len, &packed));
      ULE_ASSIGN_OR_RETURN(Bytes joined,
                           LzacDecodeForColumnar(packed, raw_len));
      const std::string text = ToString(joined);
      size_t pos = 0;
      for (size_t i = 0; i < row_count; ++i) {
        const size_t nl = text.find('\n', pos);
        if (nl == std::string::npos) return Status::Corruption("blob rows");
        out->push_back(text.substr(pos, nl - pos));
        pos = nl + 1;
      }
      return Status::OK();
    }
    default:
      return Status::Corruption("unknown column kind");
  }
}

void EmitTextSection(const std::string& text, Bytes* out) {
  if (text.empty()) return;
  out->push_back(kSectionText);
  const Bytes raw = ToBytes(text);
  const Bytes packed = LzacEncodeForColumnar(raw).TakeValue();
  PutVarint(out, raw.size());
  PutVarint(out, packed.size());
  out->insert(out->end(), packed.begin(), packed.end());
}

}  // namespace

Result<Bytes> ColumnarEncode(BytesView raw) {
  const std::string text = ToString(raw);
  Bytes out;
  std::string pending_text;
  size_t pos = 0;
  while (pos < text.size()) {
    // COPY blocks start at a line beginning.
    const bool at_line_start = (pos == 0) || (text[pos - 1] == '\n');
    std::optional<CopyBlock> block;
    size_t end_pos = pos;
    if (at_line_start) block = TryParseCopy(text, pos, &end_pos);
    if (block) {
      // Verify exact reconstruction before committing to columnar form.
      const std::string original = text.substr(pos, end_pos - pos);
      Bytes encoded;
      encoded.push_back(kSectionCopy);
      PutVarint(&encoded, ToBytes(block->header).size());
      encoded.insert(encoded.end(), block->header.begin(), block->header.end());
      PutVarint(&encoded, block->rows.size());
      PutVarint(&encoded, block->columns);
      for (size_t c = 0; c < block->columns; ++c) {
        EncodeColumn(block->rows, c, &encoded);
      }
      if (ReassembleCopy(*block) == original) {
        EmitTextSection(pending_text, &out);
        pending_text.clear();
        out.insert(out.end(), encoded.begin(), encoded.end());
        pos = end_pos;
        continue;
      }
    }
    // Accumulate one line of plain text.
    const size_t nl = text.find('\n', pos);
    const size_t line_end = (nl == std::string::npos) ? text.size() : nl + 1;
    pending_text += text.substr(pos, line_end - pos);
    pos = line_end;
  }
  EmitTextSection(pending_text, &out);
  out.push_back(kSectionEnd);
  return out;
}

Result<Bytes> ColumnarDecode(BytesView stream, size_t raw_len) {
  ByteReader r(stream);
  std::string out;
  out.reserve(raw_len);
  while (true) {
    uint8_t tag;
    ULE_RETURN_IF_ERROR(r.GetU8(&tag));
    if (tag == kSectionEnd) break;
    if (tag == kSectionText) {
      uint64_t text_len, packed_len;
      ULE_RETURN_IF_ERROR(GetVarint(&r, &text_len));
      ULE_RETURN_IF_ERROR(GetVarint(&r, &packed_len));
      Bytes packed;
      ULE_RETURN_IF_ERROR(r.GetBytes(packed_len, &packed));
      ULE_ASSIGN_OR_RETURN(Bytes text, LzacDecodeForColumnar(packed, text_len));
      out += ToString(text);
    } else if (tag == kSectionCopy) {
      uint64_t header_len, row_count, col_count;
      ULE_RETURN_IF_ERROR(GetVarint(&r, &header_len));
      Bytes header;
      ULE_RETURN_IF_ERROR(r.GetBytes(header_len, &header));
      ULE_RETURN_IF_ERROR(GetVarint(&r, &row_count));
      ULE_RETURN_IF_ERROR(GetVarint(&r, &col_count));
      std::vector<std::vector<std::string>> cols(col_count);
      for (size_t c = 0; c < col_count; ++c) {
        ULE_RETURN_IF_ERROR(DecodeColumn(&r, row_count, &cols[c]));
      }
      out += ToString(header);
      for (size_t i = 0; i < row_count; ++i) {
        for (size_t c = 0; c < col_count; ++c) {
          if (c) out.push_back('\t');
          out += cols[c][i];
        }
        out.push_back('\n');
      }
      out += "\\.\n";
    } else {
      return Status::Corruption("columnar: unknown section tag");
    }
  }
  return ToBytes(out);
}

}  // namespace dbcoder
}  // namespace ule
