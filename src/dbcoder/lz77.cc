#include "dbcoder/lz77.h"

#include <algorithm>

namespace ule {
namespace dbcoder {
namespace {

constexpr int kHashBits = 15;
constexpr uint32_t kHashSize = 1u << kHashBits;
constexpr int kMaxChainLength = 64;  // match-finder effort bound

uint32_t Hash3(const uint8_t* p) {
  const uint32_t v = p[0] | (p[1] << 8) | (p[2] << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

std::vector<Token> Parse(BytesView input) {
  std::vector<Token> tokens;
  const size_t n = input.size();
  tokens.reserve(n / 2);

  // head[h]: most recent position with hash h; prev[i & mask]: chain.
  std::vector<int32_t> head(kHashSize, -1);
  std::vector<int32_t> prev(kWindowSize, -1);

  auto find_match = [&](size_t pos, uint32_t* best_dist) -> uint32_t {
    if (pos + kMinMatch > n) return 0;
    const uint32_t max_len =
        static_cast<uint32_t>(std::min<size_t>(kMaxMatch, n - pos));
    uint32_t best_len = 0;
    int32_t cand = head[Hash3(&input[pos])];
    int chain = 0;
    while (cand >= 0 && chain++ < kMaxChainLength) {
      const size_t dist = pos - static_cast<size_t>(cand);
      if (dist > kWindowSize) break;
      uint32_t len = 0;
      while (len < max_len && input[cand + len] == input[pos + len]) ++len;
      if (len > best_len) {
        best_len = len;
        *best_dist = static_cast<uint32_t>(dist);
        if (len == max_len) break;
      }
      cand = prev[cand & (kWindowSize - 1)];
    }
    return best_len >= kMinMatch ? best_len : 0;
  };

  auto insert = [&](size_t pos) {
    if (pos + kMinMatch > n) return;
    const uint32_t h = Hash3(&input[pos]);
    prev[pos & (kWindowSize - 1)] = head[h];
    head[h] = static_cast<int32_t>(pos);
  };

  size_t pos = 0;
  while (pos < n) {
    uint32_t dist = 0;
    uint32_t len = find_match(pos, &dist);
    if (len >= kMinMatch) {
      // One-step lazy evaluation: prefer a longer match starting at pos+1.
      uint32_t next_dist = 0;
      uint32_t next_len = 0;
      if (pos + 1 < n) {
        insert(pos);
        next_len = find_match(pos + 1, &next_dist);
      }
      if (next_len > len) {
        Token lit;
        lit.is_match = false;
        lit.literal = input[pos];
        tokens.push_back(lit);
        pos += 1;  // pos already inserted above
        len = next_len;
        dist = next_dist;
      }
      Token m;
      m.is_match = true;
      m.distance = static_cast<uint16_t>(dist);
      m.length = static_cast<uint8_t>(len);
      tokens.push_back(m);
      // Insert every covered position (first may already be inserted; the
      // chain tolerates duplicates).
      for (uint32_t i = 0; i < len; ++i) insert(pos + i);
      pos += len;
    } else {
      Token lit;
      lit.is_match = false;
      lit.literal = input[pos];
      tokens.push_back(lit);
      insert(pos);
      ++pos;
    }
  }
  return tokens;
}

Bytes Expand(const std::vector<Token>& tokens) {
  Bytes out;
  for (const Token& t : tokens) {
    if (!t.is_match) {
      out.push_back(t.literal);
    } else {
      const size_t start = out.size() - t.distance;
      for (uint32_t i = 0; i < t.length; ++i) {
        out.push_back(out[start + i]);  // may overlap; byte-by-byte is correct
      }
    }
  }
  return out;
}

}  // namespace dbcoder
}  // namespace ule
