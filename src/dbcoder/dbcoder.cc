#include "dbcoder/dbcoder.h"

#include "dbcoder/columnar.h"
#include "dbcoder/lz77.h"
#include "dbcoder/rangecoder.h"
#include "support/crc32.h"

namespace ule {
namespace dbcoder {
namespace {

constexpr std::string_view kMagic = "UDB1";

// Segmented-stream framing (docs/FORMAT.md §11.1): magic, binary
// version, the shared scheme byte, the segment length table, and a
// CRC-32 over all of it, followed by the segment containers themselves.
constexpr std::string_view kSegmentedMagic = "UDBS";
constexpr uint8_t kSegmentedBinaryVersion = 1;
// magic(4) + version(1) + scheme(1) + reserved(2) + count(4) + raw_total(8)
constexpr size_t kSegmentedHeaderBytes = 20;

// ---- LZSS bit stream: flag bit, then literal byte or 13-bit distance-1 +
// 5-bit length-kMinMatch. MSB-first. ----

Bytes LzssEncode(BytesView raw) {
  BitWriter w;
  for (const Token& t : Parse(raw)) {
    if (t.is_match) {
      w.PutBit(1);
      w.PutBits(t.distance - 1u, kWindowBits);
      w.PutBits(t.length - kMinMatch, kLengthBits);
    } else {
      w.PutBit(0);
      w.PutBits(t.literal, 8);
    }
  }
  return w.Finish();
}

Result<Bytes> LzssDecode(BytesView stream, size_t raw_len) {
  BitReader r(stream);
  Bytes out;
  out.reserve(raw_len);
  while (out.size() < raw_len) {
    const int flag = r.GetBit();
    if (flag < 0) return Status::Corruption("LZSS: truncated stream");
    if (flag == 0) {
      uint32_t lit;
      if (!r.GetBits(8, &lit)) return Status::Corruption("LZSS: bad literal");
      out.push_back(static_cast<uint8_t>(lit));
    } else {
      uint32_t dist, len;
      if (!r.GetBits(kWindowBits, &dist) || !r.GetBits(kLengthBits, &len)) {
        return Status::Corruption("LZSS: bad match");
      }
      dist += 1;
      len += kMinMatch;
      if (dist > out.size()) return Status::Corruption("LZSS: bad distance");
      const size_t start = out.size() - dist;
      for (uint32_t i = 0; i < len && out.size() < raw_len; ++i) {
        out.push_back(out[start + i]);
      }
    }
  }
  return out;
}

// ---- LZAC: the same token structure, every bit arithmetic-coded. Context
// layout (mirrored by the DynaRisc decoder, decoders/dbdecode.cc):
//   [0]         flag (after literal)
//   [1]         flag (after match)
//   [2..257]    literal bit-tree (256 nodes)
//   [258..321]  distance high bit-tree (first 6 of 13 bits, 64 nodes)
//   [322..353]  length bit-tree (32 nodes)
//   [354]       direct-bit context (for the low 7 distance bits; fixed use)
constexpr int kCtxFlagLit = 0;
constexpr int kCtxFlagMatch = 1;
constexpr int kCtxLiteral = 2;      // 256
constexpr int kCtxDistHigh = 258;   // 64
constexpr int kCtxLength = 322;     // 32
constexpr int kCtxDirect = 354;     // 1 (re-adapting shared context)
constexpr int kCtxCount = 355;

class LzacContexts {
 public:
  LzacContexts() { probs_.assign(kCtxCount, kProbInit); }
  uint8_t* at(int i) { return &probs_[static_cast<size_t>(i)]; }

 private:
  std::vector<uint8_t> probs_;
};

// Encodes `bits` of `value` MSB-first through a bit tree rooted at `base`
// with 2^bits-1 usable nodes (classic LZMA bit-tree: node index doubles).
void TreeEncode(RangeEncoder* enc, LzacContexts* ctx, int base, uint32_t value,
                int bits) {
  uint32_t node = 1;
  for (int i = bits - 1; i >= 0; --i) {
    const int bit = (value >> i) & 1;
    enc->EncodeBit(ctx->at(base + static_cast<int>(node) - 1), bit);
    node = (node << 1) | static_cast<uint32_t>(bit);
  }
}

uint32_t TreeDecode(RangeDecoder* dec, LzacContexts* ctx, int base, int bits) {
  uint32_t node = 1;
  for (int i = 0; i < bits; ++i) {
    const int bit = dec->DecodeBit(ctx->at(base + static_cast<int>(node) - 1));
    node = (node << 1) | static_cast<uint32_t>(bit);
  }
  return node - (1u << bits);
}

Bytes LzacEncode(BytesView raw) {
  RangeEncoder enc;
  LzacContexts ctx;
  bool prev_match = false;
  for (const Token& t : Parse(raw)) {
    uint8_t* flag_ctx = ctx.at(prev_match ? kCtxFlagMatch : kCtxFlagLit);
    if (t.is_match) {
      enc.EncodeBit(flag_ctx, 1);
      const uint32_t dist = t.distance - 1u;  // 13 bits
      TreeEncode(&enc, &ctx, kCtxDistHigh, dist >> 7, 6);
      for (int i = 6; i >= 0; --i) {
        enc.EncodeBit(ctx.at(kCtxDirect), (dist >> i) & 1);
      }
      TreeEncode(&enc, &ctx, kCtxLength, t.length - kMinMatch, kLengthBits);
      prev_match = true;
    } else {
      enc.EncodeBit(flag_ctx, 0);
      TreeEncode(&enc, &ctx, kCtxLiteral, t.literal, 8);
      prev_match = false;
    }
  }
  return enc.Finish();
}

Result<Bytes> LzacDecode(BytesView stream, size_t raw_len) {
  RangeDecoder dec(stream);
  LzacContexts ctx;
  Bytes out;
  out.reserve(raw_len);
  bool prev_match = false;
  while (out.size() < raw_len) {
    uint8_t* flag_ctx = ctx.at(prev_match ? kCtxFlagMatch : kCtxFlagLit);
    if (dec.DecodeBit(flag_ctx) == 0) {
      out.push_back(static_cast<uint8_t>(TreeDecode(&dec, &ctx, kCtxLiteral, 8)));
      prev_match = false;
    } else {
      uint32_t dist = TreeDecode(&dec, &ctx, kCtxDistHigh, 6);
      for (int i = 0; i < 7; ++i) {
        dist = (dist << 1) |
               static_cast<uint32_t>(dec.DecodeBit(ctx.at(kCtxDirect)));
      }
      dist += 1;
      const uint32_t len = TreeDecode(&dec, &ctx, kCtxLength, kLengthBits) +
                           kMinMatch;
      if (dist > out.size()) return Status::Corruption("LZAC: bad distance");
      const size_t start = out.size() - dist;
      for (uint32_t i = 0; i < len && out.size() < raw_len; ++i) {
        out.push_back(out[start + i]);
      }
      prev_match = true;
    }
  }
  return out;
}

}  // namespace

// Bridges for columnar.cc, which compresses its text sections and string
// blobs with the same LZAC stream format.
Result<Bytes> LzacEncodeForColumnar(BytesView raw) { return LzacEncode(raw); }
Result<Bytes> LzacDecodeForColumnar(BytesView stream, size_t raw_len) {
  return LzacDecode(stream, raw_len);
}

const char* SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kStore:
      return "store";
    case Scheme::kLzss:
      return "lzss";
    case Scheme::kLzac:
      return "lzac";
    case Scheme::kColumnar:
      return "columnar";
  }
  return "unknown";
}

Result<Bytes> Encode(BytesView raw, Scheme scheme) {
  Bytes stream;
  switch (scheme) {
    case Scheme::kStore:
      stream.assign(raw.begin(), raw.end());
      break;
    case Scheme::kLzss:
      stream = LzssEncode(raw);
      break;
    case Scheme::kLzac:
      stream = LzacEncode(raw);
      break;
    case Scheme::kColumnar: {
      ULE_ASSIGN_OR_RETURN(stream, ColumnarEncode(raw));
      break;
    }
    default:
      return Status::InvalidArgument("unknown DBCoder scheme");
  }
  ByteWriter w;
  w.PutString(kMagic);
  w.PutU8(static_cast<uint8_t>(scheme));
  w.PutU32(static_cast<uint32_t>(raw.size()));
  w.PutU32(Crc32(raw));
  w.PutBytes(stream);
  return w.TakeBytes();
}

Result<Scheme> PeekScheme(BytesView container) {
  if (IsSegmented(container)) {
    if (container.size() < kSegmentedHeaderBytes) {
      return Status::Corruption("DBCoder: segmented stream too short");
    }
    return static_cast<Scheme>(container[5]);
  }
  if (container.size() < 13) return Status::Corruption("DBCoder: too short");
  if (ToString(BytesView(container.data(), 4)) != kMagic) {
    return Status::Corruption("DBCoder: bad magic");
  }
  return static_cast<Scheme>(container[4]);
}

bool IsSegmented(BytesView stream) {
  return stream.size() >= 4 &&
         ToString(BytesView(stream.data(), 4)) == kSegmentedMagic;
}

Result<Bytes> EncodeSegmented(BytesView raw, Scheme scheme,
                              std::vector<SegmentSpan>* segments) {
  if (segments == nullptr || segments->empty()) {
    return Status::InvalidArgument(
        "EncodeSegmented needs a non-empty segment plan");
  }
  // The plan must tile the input exactly: segment boundaries ARE the
  // random-access boundaries, so a gap or overlap would silently decode
  // to something other than `raw`.
  uint64_t expect = 0;
  for (const SegmentSpan& seg : *segments) {
    if (seg.raw_offset != expect) {
      return Status::InvalidArgument(
          "segment plan has a gap/overlap at raw offset " +
          std::to_string(seg.raw_offset));
    }
    expect += seg.raw_len;
  }
  if (expect != raw.size()) {
    return Status::InvalidArgument("segment plan does not cover the input");
  }

  std::vector<Bytes> containers;
  containers.reserve(segments->size());
  for (const SegmentSpan& seg : *segments) {
    ULE_ASSIGN_OR_RETURN(
        Bytes container,
        Encode(raw.subspan(static_cast<size_t>(seg.raw_offset),
                           static_cast<size_t>(seg.raw_len)),
               scheme));
    containers.push_back(std::move(container));
  }

  ByteWriter w;
  w.PutString(kSegmentedMagic);
  w.PutU8(kSegmentedBinaryVersion);
  w.PutU8(static_cast<uint8_t>(scheme));
  w.PutU16(0);  // reserved
  w.PutU32(static_cast<uint32_t>(segments->size()));
  w.PutU64(raw.size());
  for (const Bytes& container : containers) {
    w.PutU32(static_cast<uint32_t>(container.size()));
  }
  w.PutU32(Crc32(w.bytes()));

  uint64_t stream_offset = w.size();
  for (size_t i = 0; i < containers.size(); ++i) {
    (*segments)[i].stream_offset = stream_offset;
    (*segments)[i].stream_len = containers[i].size();
    stream_offset += containers[i].size();
    w.PutBytes(containers[i]);
  }
  return w.TakeBytes();
}

Result<std::vector<SegmentSpan>> ListSegments(BytesView stream) {
  if (!IsSegmented(stream)) {
    return Status::InvalidArgument("not a segmented (UDBS) stream");
  }
  if (stream.size() < kSegmentedHeaderBytes + 4) {
    return Status::Corruption("DBCoder: segmented stream too short");
  }
  if (stream[4] != kSegmentedBinaryVersion) {
    return Status::Unimplemented("unsupported UDBS version " +
                                 std::to_string(stream[4]));
  }
  ByteReader r(stream.subspan(8));
  uint32_t count = 0;
  uint64_t raw_total = 0;
  ULE_RETURN_IF_ERROR(r.GetU32(&count));
  ULE_RETURN_IF_ERROR(r.GetU64(&raw_total));
  const size_t table_end = kSegmentedHeaderBytes +
                           static_cast<size_t>(count) * 4 + 4;
  if (count == 0 || stream.size() < table_end) {
    return Status::Corruption("UDBS segment table does not fit the stream");
  }
  uint32_t stored_crc = 0;
  {
    ByteReader c(stream.subspan(table_end - 4));
    ULE_RETURN_IF_ERROR(c.GetU32(&stored_crc));
  }
  if (Crc32(stream.subspan(0, table_end - 4)) != stored_crc) {
    return Status::Corruption("UDBS segment table CRC mismatch");
  }

  std::vector<SegmentSpan> segments;
  segments.reserve(count);
  uint64_t stream_offset = table_end;
  uint64_t raw_offset = 0;
  ByteReader lens(stream.subspan(kSegmentedHeaderBytes));
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t len = 0;
    ULE_RETURN_IF_ERROR(lens.GetU32(&len));
    if (len < 13 || stream_offset + len > stream.size()) {
      return Status::Corruption("UDBS segment " + std::to_string(i) +
                                " overruns the stream");
    }
    // Each segment is a full UDB1 container; its raw length sits at
    // container offset 5 (after magic + scheme byte).
    uint32_t seg_raw = 0;
    ByteReader h(stream.subspan(static_cast<size_t>(stream_offset) + 5));
    ULE_RETURN_IF_ERROR(h.GetU32(&seg_raw));
    SegmentSpan seg;
    seg.raw_offset = raw_offset;
    seg.raw_len = seg_raw;
    seg.stream_offset = stream_offset;
    seg.stream_len = len;
    segments.push_back(seg);
    stream_offset += len;
    raw_offset += seg_raw;
  }
  if (stream_offset != stream.size()) {
    return Status::Corruption("UDBS stream has trailing bytes");
  }
  if (raw_offset != raw_total) {
    return Status::Corruption("UDBS raw total disagrees with its segments");
  }
  return segments;
}

Result<Bytes> Decode(BytesView container) {
  if (IsSegmented(container)) {
    ULE_ASSIGN_OR_RETURN(std::vector<SegmentSpan> segments,
                         ListSegments(container));
    Bytes raw;
    for (const SegmentSpan& seg : segments) {
      ULE_ASSIGN_OR_RETURN(
          Bytes part,
          Decode(container.subspan(static_cast<size_t>(seg.stream_offset),
                                   static_cast<size_t>(seg.stream_len))));
      raw.insert(raw.end(), part.begin(), part.end());
    }
    return raw;
  }
  ULE_ASSIGN_OR_RETURN(Scheme scheme, PeekScheme(container));
  ByteReader r(container);
  Bytes magic;
  uint8_t scheme_byte;
  uint32_t raw_len, crc;
  ULE_RETURN_IF_ERROR(r.GetBytes(4, &magic));
  ULE_RETURN_IF_ERROR(r.GetU8(&scheme_byte));
  ULE_RETURN_IF_ERROR(r.GetU32(&raw_len));
  ULE_RETURN_IF_ERROR(r.GetU32(&crc));
  const BytesView stream(container.data() + 13, container.size() - 13);

  Bytes raw;
  switch (scheme) {
    case Scheme::kStore:
      if (stream.size() < raw_len) {
        return Status::Corruption("store: truncated");
      }
      raw.assign(stream.begin(), stream.begin() + raw_len);
      break;
    case Scheme::kLzss: {
      ULE_ASSIGN_OR_RETURN(raw, LzssDecode(stream, raw_len));
      break;
    }
    case Scheme::kLzac: {
      ULE_ASSIGN_OR_RETURN(raw, LzacDecode(stream, raw_len));
      break;
    }
    case Scheme::kColumnar: {
      ULE_ASSIGN_OR_RETURN(raw, ColumnarDecode(stream, raw_len));
      break;
    }
    default:
      return Status::Corruption("DBCoder: unknown scheme byte " +
                                std::to_string(container[4]));
  }
  if (raw.size() != raw_len) {
    return Status::Corruption("DBCoder: length mismatch after decode");
  }
  if (Crc32(raw) != crc) {
    return Status::Corruption("DBCoder: payload CRC mismatch");
  }
  return raw;
}

}  // namespace dbcoder
}  // namespace ule
