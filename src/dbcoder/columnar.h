/// \file columnar.h
/// \brief The paper's future-work scheme (§5): "compressed, columnar layout
/// encoding ... well-known to provide an order of magnitude reduction to
/// storage utilization over the generic compression support available
/// today."
///
/// The scheme understands the textual SQL-dump format (CREATE TABLE +
/// `COPY ... FROM stdin;` blocks, tab-separated rows, `\.` terminator —
/// the format minidb's dump writer and PostgreSQL's pg_dump share). COPY
/// blocks are split into columns; each column is typed by inference and
/// encoded as
///
///   * int64   — zigzag delta varints
///   * decimal — scaled int64 delta varints (fixed fraction width)
///   * date    — days-since-epoch delta varints
///   * dict    — small-cardinality strings as dictionary + 1-byte codes
///   * blob    — remaining strings, newline-joined, LZAC-compressed
///
/// Non-COPY text between blocks is LZAC-compressed verbatim. Every encoded
/// block is verified against its source during encoding; any block that
/// would not reconstruct byte-exactly falls back to the verbatim path, so
/// ColumnarDecode(ColumnarEncode(x)) == x holds for arbitrary input.

#ifndef ULE_DBCODER_COLUMNAR_H_
#define ULE_DBCODER_COLUMNAR_H_

#include "support/bytes.h"
#include "support/status.h"

namespace ule {
namespace dbcoder {

/// Encodes `raw` (typically an SQL dump) into the columnar stream format.
Result<Bytes> ColumnarEncode(BytesView raw);

/// Decodes a columnar stream back to the original bytes.
/// \param raw_len expected output size (from the DBCoder container header)
Result<Bytes> ColumnarDecode(BytesView stream, size_t raw_len);

}  // namespace dbcoder
}  // namespace ule

#endif  // ULE_DBCODER_COLUMNAR_H_
