#include "dynarisc/machine.h"

#include <optional>

#include "support/crc32.h"

namespace ule {
namespace dynarisc {

Bytes Program::Serialize() const {
  ByteWriter w;
  w.PutString("DRX1");
  w.PutU16(entry);
  w.PutU32(static_cast<uint32_t>(image.size()));
  w.PutBytes(image);
  w.PutU32(Crc32(w.bytes()));
  return w.TakeBytes();
}

Result<Program> Program::Deserialize(BytesView bytes) {
  ByteReader r(bytes);
  Bytes magic;
  ULE_RETURN_IF_ERROR(r.GetBytes(4, &magic));
  if (ToString(magic) != "DRX1") {
    return Status::Corruption("DynaRisc image: bad magic");
  }
  Program p;
  uint32_t len;
  ULE_RETURN_IF_ERROR(r.GetU16(&p.entry));
  ULE_RETURN_IF_ERROR(r.GetU32(&len));
  if (len > kMemorySize) {
    return Status::Corruption("DynaRisc image larger than address space");
  }
  ULE_RETURN_IF_ERROR(r.GetBytes(len, &p.image));
  uint32_t stored;
  ULE_RETURN_IF_ERROR(r.GetU32(&stored));
  if (stored != Crc32(BytesView(bytes.data(), bytes.size() - 4))) {
    return Status::Corruption("DynaRisc image: CRC mismatch");
  }
  return p;
}

const char* OpcodeName(uint8_t op) {
  static const char* kNames[kOpcodeCount] = {
      "ADD", "ADC", "SUB", "SBB", "CMP", "MUL", "AND", "OR",
      "XOR", "LSL", "LSR", "ASR", "ROR", "MOVE", "LDI", "LDM",
      "STM", "JUMP", "JZ", "JC", "CALL", "RET", "SYS"};
  return op < kOpcodeCount ? kNames[op] : "???";
}

Machine::Machine(const Program& program, BytesView input) : input_(input) {
  const size_t n = std::min<size_t>(program.image.size(), kMemorySize);
  std::copy(program.image.begin(), program.image.begin() + n, mem_.begin());
  state_.pc = program.entry;
}

uint16_t Machine::ReadWord(uint16_t addr) const {
  return static_cast<uint16_t>(mem_[addr] |
                               (mem_[static_cast<uint16_t>(addr + 1)] << 8));
}

void Machine::WriteWord(uint16_t addr, uint16_t v) {
  mem_[addr] = static_cast<uint8_t>(v & 0xFF);
  mem_[static_cast<uint16_t>(addr + 1)] = static_cast<uint8_t>(v >> 8);
}

uint16_t Machine::FetchWord() {
  const uint16_t w = ReadWord(state_.pc);
  state_.pc = static_cast<uint16_t>(state_.pc + 2);
  return w;
}

std::optional<StopReason> Machine::Step() {
  if (stopped_) return stopped_;
  ++steps_;

  const uint16_t w = FetchWord();
  const uint8_t op = DecodeOp(w);
  const uint8_t rd = DecodeRd(w);
  const uint8_t rs = DecodeRs(w);
  const uint8_t mode = DecodeMode(w);

  auto& st = state_;
  switch (op) {
    case kAdd:
    case kAdc: {
      const uint32_t carry_in = (op == kAdc && st.c) ? 1 : 0;
      const uint32_t sum = static_cast<uint32_t>(st.r[rd]) + st.r[rs] + carry_in;
      st.c = (sum >> 16) != 0;
      st.r[rd] = static_cast<uint16_t>(sum);
      SetZ(st.r[rd]);
      break;
    }
    case kSub:
    case kSbb:
    case kCmp: {
      const uint32_t borrow_in = (op == kSbb && st.c) ? 1 : 0;
      const uint32_t lhs = st.r[rd];
      const uint32_t rhs = static_cast<uint32_t>(st.r[rs]) + borrow_in;
      const uint16_t diff = static_cast<uint16_t>(lhs - rhs);
      st.c = lhs < rhs;
      SetZ(diff);
      if (op != kCmp) st.r[rd] = diff;
      break;
    }
    case kMul: {
      const uint32_t p = static_cast<uint32_t>(st.r[rd]) * st.r[rs];
      st.r[rd] = static_cast<uint16_t>(p);
      st.hi = static_cast<uint16_t>(p >> 16);
      SetZ(st.r[rd]);
      st.c = st.hi != 0;
      break;
    }
    case kAnd:
      st.r[rd] &= st.r[rs];
      SetZ(st.r[rd]);
      break;
    case kOr:
      st.r[rd] |= st.r[rs];
      SetZ(st.r[rd]);
      break;
    case kXor:
      st.r[rd] ^= st.r[rs];
      SetZ(st.r[rd]);
      break;
    case kLsl:
    case kLsr:
    case kAsr:
    case kRor: {
      const unsigned amount = (mode & kShiftImm)
                                  ? (rs | ((mode & kShiftImm8) ? 8 : 0))
                                  : (st.r[rs] & 15);
      uint16_t v = st.r[rd];
      for (unsigned i = 0; i < amount; ++i) {
        switch (op) {
          case kLsl:
            st.c = (v & 0x8000) != 0;
            v = static_cast<uint16_t>(v << 1);
            break;
          case kLsr:
            st.c = (v & 1) != 0;
            v = static_cast<uint16_t>(v >> 1);
            break;
          case kAsr:
            st.c = (v & 1) != 0;
            v = static_cast<uint16_t>((v >> 1) | (v & 0x8000));
            break;
          case kRor:
            st.c = (v & 1) != 0;
            v = static_cast<uint16_t>((v >> 1) | ((v & 1) << 15));
            break;
        }
      }
      st.r[rd] = v;
      SetZ(v);
      break;
    }
    case kMove: {
      uint16_t val;
      if (mode & kMoveSrcHi) {
        val = st.hi;
      } else if (mode & kMoveSrcD) {
        val = st.d[rs & 3];
      } else {
        val = st.r[rs];
      }
      if (mode & kMoveDstD) {
        st.d[rd & 3] = val;
      } else {
        st.r[rd] = val;
      }
      SetZ(val);
      break;
    }
    case kLdi: {
      const uint16_t imm = FetchWord();
      st.r[rd] = imm;
      SetZ(imm);
      break;
    }
    case kLdm: {
      const uint16_t ptr = st.d[rs & 3];
      uint16_t val;
      if (mode & kModeWord) {
        val = ReadWord(ptr);
      } else {
        val = mem_[ptr];
      }
      if (mode & kModePostInc) {
        st.d[rs & 3] =
            static_cast<uint16_t>(ptr + ((mode & kModeWord) ? 2 : 1));
      }
      st.r[rd] = val;
      SetZ(val);
      break;
    }
    case kStm: {
      const uint16_t ptr = st.d[rd & 3];
      const uint16_t val = st.r[rs];
      if (mode & kModeWord) {
        WriteWord(ptr, val);
      } else {
        mem_[ptr] = static_cast<uint8_t>(val & 0xFF);
      }
      if (mode & kModePostInc) {
        st.d[rd & 3] =
            static_cast<uint16_t>(ptr + ((mode & kModeWord) ? 2 : 1));
      }
      break;
    }
    case kJump: {
      const uint16_t addr = FetchWord();
      st.pc = addr;
      break;
    }
    case kJz: {
      const uint16_t addr = FetchWord();
      if (st.z) st.pc = addr;
      break;
    }
    case kJc: {
      const uint16_t addr = FetchWord();
      if (st.c) st.pc = addr;
      break;
    }
    case kCall: {
      const uint16_t addr = FetchWord();
      st.d[3] = static_cast<uint16_t>(st.d[3] - 2);
      WriteWord(st.d[3], st.pc);
      st.pc = addr;
      break;
    }
    case kRet: {
      st.pc = ReadWord(st.d[3]);
      st.d[3] = static_cast<uint16_t>(st.d[3] + 2);
      break;
    }
    case kSys: {
      switch (mode) {
        case kSysReadByte:
          if (in_pos_ < input_.size()) {
            st.r[0] = input_[in_pos_++];
            st.c = false;
          } else {
            st.c = true;
          }
          break;
        case kSysWriteByte:
          output_.push_back(static_cast<uint8_t>(st.r[0] & 0xFF));
          break;
        case kSysHalt:
          stopped_ = StopReason::kHalted;
          return stopped_;
        default:
          stopped_ = StopReason::kFault;
          return stopped_;
      }
      break;
    }
    default:
      stopped_ = StopReason::kFault;
      return stopped_;
  }
  return std::nullopt;
}

RunResult Machine::Run(const RunOptions& options) {
  RunResult result;
  while (steps_ < options.max_steps) {
    if (auto stop = Step()) {
      result.reason = *stop;
      result.steps = steps_;
      result.output = output_;
      return result;
    }
  }
  result.reason = StopReason::kStepLimit;
  result.steps = steps_;
  result.output = output_;
  return result;
}

Result<Bytes> RunProgram(const Program& program, BytesView input,
                         const RunOptions& options) {
  Machine machine(program, input);
  RunResult r = machine.Run(options);
  switch (r.reason) {
    case StopReason::kHalted:
      return std::move(r.output);
    case StopReason::kFault:
      return Status::ExecutionFault("DynaRisc fault at PC=" +
                                    std::to_string(machine.state().pc) +
                                    " after " + std::to_string(r.steps) +
                                    " steps");
    case StopReason::kStepLimit:
      return Status::ResourceExhausted("DynaRisc step limit exceeded");
  }
  return Status::ExecutionFault("unreachable");
}

}  // namespace dynarisc
}  // namespace ule
