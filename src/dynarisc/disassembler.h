/// \file disassembler.h
/// \brief DynaRisc disassembler — used by tests, debugging tools and the
/// DESIGN.md decoder listings.

#ifndef ULE_DYNARISC_DISASSEMBLER_H_
#define ULE_DYNARISC_DISASSEMBLER_H_

#include <string>

#include "dynarisc/machine.h"

namespace ule {
namespace dynarisc {

/// Disassembles one instruction at `addr` in `image`.
/// \param[out] length bytes consumed (2 or 4)
std::string DisassembleOne(BytesView image, uint16_t addr, int* length);

/// Disassembles `[start, end)` as an address-annotated listing.
std::string Disassemble(const Program& program, uint16_t start, uint16_t end);

}  // namespace dynarisc
}  // namespace ule

#endif  // ULE_DYNARISC_DISASSEMBLER_H_
