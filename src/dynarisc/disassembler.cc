#include "dynarisc/disassembler.h"

#include <cstdio>

namespace ule {
namespace dynarisc {
namespace {

std::string Hex16(uint16_t v) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "0x%04X", v);
  return buf;
}

}  // namespace

std::string DisassembleOne(BytesView image, uint16_t addr, int* length) {
  auto word_at = [&](uint16_t a) -> uint16_t {
    const uint8_t lo = a < image.size() ? image[a] : 0;
    const uint8_t hi = (a + 1u) < image.size() ? image[a + 1u] : 0;
    return static_cast<uint16_t>(lo | (hi << 8));
  };
  const uint16_t w = word_at(addr);
  const uint8_t op = DecodeOp(w);
  const uint8_t rd = DecodeRd(w);
  const uint8_t rs = DecodeRs(w);
  const uint8_t mode = DecodeMode(w);
  *length = 2;

  auto reg = [](int i) { return "R" + std::to_string(i); };
  auto ptr = [](int i) { return "D" + std::to_string(i); };

  switch (op) {
    case kAdd:
    case kAdc:
    case kSub:
    case kSbb:
    case kCmp:
    case kMul:
    case kAnd:
    case kOr:
    case kXor:
      return std::string(OpcodeName(op)) + " " + reg(rd) + ", " + reg(rs);
    case kLsl:
    case kLsr:
    case kAsr:
    case kRor:
      if (mode & kShiftImm) {
        const int amt = rs | ((mode & kShiftImm8) ? 8 : 0);
        return std::string(OpcodeName(op)) + " " + reg(rd) + ", #" +
               std::to_string(amt);
      }
      return std::string(OpcodeName(op)) + " " + reg(rd) + ", " + reg(rs);
    case kMove: {
      const std::string dst = (mode & kMoveDstD) ? ptr(rd & 3) : reg(rd);
      std::string src;
      if (mode & kMoveSrcHi) {
        src = "HI";
      } else if (mode & kMoveSrcD) {
        src = ptr(rs & 3);
      } else {
        src = reg(rs);
      }
      return "MOVE " + dst + ", " + src;
    }
    case kLdi:
      *length = 4;
      return "LDI " + reg(rd) + ", #" + Hex16(word_at(addr + 2));
    case kLdm:
    case kStm: {
      const std::string suffix = (mode & kModeWord) ? ".W" : ".B";
      const std::string inc = (mode & kModePostInc) ? "+" : "";
      if (op == kLdm) {
        return "LDM" + suffix + " " + reg(rd) + ", [" + ptr(rs & 3) + inc + "]";
      }
      return "STM" + suffix + " " + reg(rs) + ", [" + ptr(rd & 3) + inc + "]";
    }
    case kJump:
    case kJz:
    case kJc:
    case kCall:
      *length = 4;
      return std::string(OpcodeName(op)) + " " + Hex16(word_at(addr + 2));
    case kRet:
      return "RET";
    case kSys:
      return "SYS #" + std::to_string(mode);
    default:
      return ".word " + Hex16(w) + " ; illegal opcode";
  }
}

std::string Disassemble(const Program& program, uint16_t start, uint16_t end) {
  std::string out;
  uint32_t addr = start;
  while (addr < end) {
    int len = 2;
    const std::string text =
        DisassembleOne(program.image, static_cast<uint16_t>(addr), &len);
    out += Hex16(static_cast<uint16_t>(addr)) + ":  " + text + "\n";
    addr += static_cast<uint32_t>(len);
  }
  return out;
}

}  // namespace dynarisc
}  // namespace ule
