/// \file machine.h
/// \brief Native (host C++) DynaRisc emulator.
///
/// This is the *archival-time* emulator: it is used by Olonys developers to
/// test decoders before they are archived, and by the library's fast restore
/// path. The *restoration-time* emulator is the one written in VeRisc (see
/// src/olonys/dynarisc_in_verisc.h); both must implement the semantics in
/// isa.h bit-for-bit, and the test suite cross-checks them instruction by
/// instruction.

#ifndef ULE_DYNARISC_MACHINE_H_
#define ULE_DYNARISC_MACHINE_H_

#include <array>
#include <cstdint>

#include "dynarisc/isa.h"
#include "support/bytes.h"
#include "support/status.h"

namespace ule {
namespace dynarisc {

/// \brief A loadable DynaRisc program: raw memory image plus entry point.
struct Program {
  Bytes image;         ///< copied to address 0 at load time
  uint16_t entry = 0;  ///< initial PC

  /// Archival container: magic "DRX1", u16 entry, u32 length, image bytes,
  /// CRC32 of all preceding bytes.
  Bytes Serialize() const;
  static Result<Program> Deserialize(BytesView bytes);
};

/// Why a run stopped.
enum class StopReason {
  kHalted,     ///< SYS #2
  kStepLimit,  ///< exceeded max_steps
  kFault,      ///< illegal opcode or SYS port
};

struct RunOptions {
  uint64_t max_steps = 2'000'000'000ull;
};

struct RunResult {
  StopReason reason = StopReason::kHalted;
  uint64_t steps = 0;
  Bytes output;
};

/// \brief Complete architectural state; exposed so tests can assert on
/// registers and flags after single-stepping.
struct MachineState {
  std::array<uint16_t, 8> r{};
  std::array<uint16_t, 4> d{};
  uint16_t hi = 0;
  bool z = false;
  bool c = false;
  uint16_t pc = 0;
};

/// \brief A stepping DynaRisc machine with streaming byte I/O.
class Machine {
 public:
  /// Loads `program.image` at address 0 and sets PC to the entry point.
  /// `input` backs SYS #0 reads; it must outlive the machine.
  Machine(const Program& program, BytesView input);

  /// Executes one instruction. Returns the stop reason if the machine
  /// stopped on this step (halt/fault), or nothing when it keeps running.
  /// Calling Step after a stop keeps returning the stop reason.
  std::optional<StopReason> Step();

  /// Runs until halt, fault, or step limit.
  RunResult Run(const RunOptions& options = {});

  const MachineState& state() const { return state_; }
  MachineState& mutable_state() { return state_; }
  const Bytes& output() const { return output_; }
  uint64_t steps_executed() const { return steps_; }

  /// Direct memory access for tests.
  uint8_t ReadByte(uint16_t addr) const { return mem_[addr]; }
  void WriteByte(uint16_t addr, uint8_t v) { mem_[addr] = v; }

 private:
  uint16_t FetchWord();
  uint16_t ReadWord(uint16_t addr) const;
  void WriteWord(uint16_t addr, uint16_t v);
  void SetZ(uint16_t v) { state_.z = (v == 0); }

  std::array<uint8_t, kMemorySize> mem_{};
  MachineState state_;
  BytesView input_;
  size_t in_pos_ = 0;
  Bytes output_;
  uint64_t steps_ = 0;
  std::optional<StopReason> stopped_;
};

/// Convenience: load, run, return output. Faults become ExecutionFault,
/// step-limit becomes ResourceExhausted.
Result<Bytes> RunProgram(const Program& program, BytesView input,
                         const RunOptions& options = {});

}  // namespace dynarisc
}  // namespace ule

#endif  // ULE_DYNARISC_MACHINE_H_
