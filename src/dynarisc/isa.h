/// \file isa.h
/// \brief DynaRisc: the paper's 23-instruction, 16-bit RISC software
/// processor (§3.2, Table 1).
///
/// Table 1 of the paper lists 17 instructions as "a sample" of the 23-ISA
/// processor; the full ISA is only described in a patent. This header is our
/// normative completion (documented as design decision 2 in DESIGN.md): the
/// 17 sampled instructions plus ADD, JZ, JC, CALL, RET and SYS — the minimum
/// a decoder needs for plain arithmetic, conditional control flow,
/// subroutines and streaming I/O.
///
/// ## Machine model
///  * Eight 16-bit data registers R0..R7.
///  * Four 16-bit pointer registers D0..D3 (memory operands of LDM/STM).
///    D3 is the stack pointer by calling convention (CALL/RET use it).
///  * HI: 16-bit register receiving the high half of MUL.
///  * Flags: Z (zero), C (carry out of ADD/ADC; borrow of SUB/SBB/CMP; last
///    bit shifted out; EOF indicator of SYS 0; HI != 0 after MUL).
///  * 64 KiB byte-addressed memory, 16-bit words stored little-endian.
///  * PC: 16-bit, word-aligned instruction stream.
///
/// ## Encoding
/// Every instruction is one 16-bit word, optionally followed by one 16-bit
/// immediate/address word (LDI, JUMP, JZ, JC, CALL).
///
///     [15:11] opcode   [10:8] rd   [7:5] rs   [4:0] mode
///
///  * ALU ops (`op Rd, Rs`): Rd <- Rd op Rs.
///  * Shifts: mode bit0 = 1 -> immediate amount = rs | (mode bit1 << 3)
///    (0..15); mode bit0 = 0 -> amount = R[rs] & 15.
///  * MOVE: mode bit0 = destination is D[rd & 3]; mode bit1 = source is
///    D[rs & 3]; mode bit2 = source is HI (overrides bit1).
///  * LDM Rd, [Ds]: rs = pointer index; mode bit0 = word access (0 = byte),
///    mode bit1 = post-increment pointer by access size.
///  * STM Rs, [Dd]: rd field = pointer index, rs field = source register;
///    mode as LDM.
///  * SYS #port: port in the mode field (0..31).
///
/// ## Flag semantics (normative, shared by the native emulator and the
/// VeRisc-hosted interpreter)
///  * ADD/ADC: C = carry out of bit 15; Z from the 16-bit result.
///  * SUB/SBB/CMP: C = 1 iff an unsigned borrow occurred; Z from result
///    (CMP discards the result).
///  * MUL: Rd <- low 16 bits, HI <- high 16 bits, Z from low half,
///    C = (HI != 0).
///  * AND/OR/XOR: Z updated, C unchanged.
///  * LSL/LSR/ASR/ROR: executed as `amount` single-bit steps; each step sets
///    C to the bit shifted out; amount 0 leaves C unchanged. Z updated.
///  * MOVE/LDI/LDM: Z updated, C unchanged.
///  * SYS 0 (read byte): success -> R0 <- byte, C = 0; end of input ->
///    C = 1, R0 unchanged. Z unchanged.
///  * STM/JUMP/JZ/JC/CALL/RET/SYS 1..2: flags unchanged.
///
/// ## SYS ports
///  * 0: read one byte from the archive input stream into R0 (C = EOF).
///  * 1: write R0's low byte to the output stream.
///  * 2: halt.
/// Other ports halt the machine (reserved).

#ifndef ULE_DYNARISC_ISA_H_
#define ULE_DYNARISC_ISA_H_

#include <cstdint>

namespace ule {
namespace dynarisc {

/// The 23 DynaRisc opcodes.
enum Opcode : uint8_t {
  kAdd = 0,
  kAdc = 1,
  kSub = 2,
  kSbb = 3,
  kCmp = 4,
  kMul = 5,
  kAnd = 6,
  kOr = 7,
  kXor = 8,
  kLsl = 9,
  kLsr = 10,
  kAsr = 11,
  kRor = 12,
  kMove = 13,
  kLdi = 14,
  kLdm = 15,
  kStm = 16,
  kJump = 17,
  kJz = 18,
  kJc = 19,
  kCall = 20,
  kRet = 21,
  kSys = 22,
};

/// Number of defined opcodes ("23-ISA software processor", paper §3.2).
inline constexpr int kOpcodeCount = 23;

/// Memory size in bytes (16-bit address space).
inline constexpr uint32_t kMemorySize = 1u << 16;

/// Mode-field bits for LDM/STM.
inline constexpr uint8_t kModeWord = 1;      ///< bit0: 16-bit access
inline constexpr uint8_t kModePostInc = 2;   ///< bit1: pointer post-increment

/// Mode-field bits for MOVE.
inline constexpr uint8_t kMoveDstD = 1;   ///< bit0: destination is D register
inline constexpr uint8_t kMoveSrcD = 2;   ///< bit1: source is D register
inline constexpr uint8_t kMoveSrcHi = 4;  ///< bit2: source is HI

/// Mode-field bit for shifts: immediate amount.
inline constexpr uint8_t kShiftImm = 1;
inline constexpr uint8_t kShiftImm8 = 2;  ///< bit1: add 8 to the rs amount

/// SYS ports.
inline constexpr uint8_t kSysReadByte = 0;
inline constexpr uint8_t kSysWriteByte = 1;
inline constexpr uint8_t kSysHalt = 2;

/// Encodes the fixed word of an instruction.
constexpr uint16_t Encode(Opcode op, unsigned rd = 0, unsigned rs = 0,
                          unsigned mode = 0) {
  return static_cast<uint16_t>((static_cast<unsigned>(op) << 11) |
                               ((rd & 7) << 8) | ((rs & 7) << 5) |
                               (mode & 31));
}

/// Field accessors for a fetched instruction word.
constexpr uint8_t DecodeOp(uint16_t w) { return static_cast<uint8_t>(w >> 11); }
constexpr uint8_t DecodeRd(uint16_t w) { return (w >> 8) & 7; }
constexpr uint8_t DecodeRs(uint16_t w) { return (w >> 5) & 7; }
constexpr uint8_t DecodeMode(uint16_t w) { return w & 31; }

/// True for instructions followed by a 16-bit immediate/address word.
constexpr bool HasImmediate(uint8_t op) {
  return op == kLdi || op == kJump || op == kJz || op == kJc || op == kCall;
}

/// Mnemonic for an opcode ("ADD", "MOVE", ...), or "???" if out of range.
const char* OpcodeName(uint8_t op);

}  // namespace dynarisc
}  // namespace ule

#endif  // ULE_DYNARISC_ISA_H_
