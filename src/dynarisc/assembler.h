/// \file assembler.h
/// \brief Two-pass text assembler for DynaRisc.
///
/// The paper's decoders (DBDecode, MODecode) are "implemented in DynaRisc
/// assembly" (§3.2); this assembler turns that assembly into the instruction
/// streams that get archived. Syntax:
///
/// ```
/// ; comment until end of line
/// start:                     ; label definition
///     LDI   R0, #0x1F        ; immediate: decimal, 0x hex, 'c', or symbol
///     ADD   R0, R1           ; ALU: Rd <- Rd op Rs
///     LSL   R0, #3           ; shift by immediate 0..15
///     LSR   R0, R2           ; shift by register (amount = R2 & 15)
///     MOVE  D0, R1           ; unified move across R / D / HI
///     MOVE  R5, HI
///     LDM.B R0, [D1+]        ; byte load, post-increment pointer
///     LDM.W R2, [D0]         ; word load (little-endian)
///     STM.B R0, [D2+]
///     JUMP  start
///     JZ    done             ; conditional on Z flag
///     JNZ   loop             ; pseudo: JZ skip / JUMP loop
///     JC    on_carry
///     JNC   no_carry         ; pseudo
///     CALL  subroutine       ; pushes return address on the D3 stack
///     RET
///     SYS   #0               ; I/O (see isa.h ports)
/// .org    0x100              ; advance location counter (forward only)
/// .word   1, 0xABC, label+2  ; 16-bit little-endian data
/// .byte   1, 2, 'x'
/// .ascii  "text"
/// .space  32                 ; or .space 32, 0xFF
/// .equ    NAME, 123          ; assembly-time constant
/// .entry  start              ; program entry point (default 0)
/// ```
///
/// Size suffixes on LDM/STM are mandatory (.B or .W) — explicit access width
/// avoids the classic byte/word confusion in hand-written decoders.
/// Expressions support symbols, numeric literals and left-to-right +/-.

#ifndef ULE_DYNARISC_ASSEMBLER_H_
#define ULE_DYNARISC_ASSEMBLER_H_

#include <string_view>

#include "dynarisc/machine.h"
#include "support/status.h"

namespace ule {
namespace dynarisc {

/// Assembles DynaRisc assembly text into a loadable Program.
/// Errors carry 1-based line numbers.
Result<Program> Assemble(std::string_view source);

}  // namespace dynarisc
}  // namespace ule

#endif  // ULE_DYNARISC_ASSEMBLER_H_
