#include "dynarisc/assembler.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ule {
namespace dynarisc {
namespace {

std::string Upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// One source line reduced to label / mnemonic / raw operand text.
struct Line {
  int number = 0;
  std::vector<std::string> labels;
  std::string mnemonic;  // upper-cased, may be a directive starting with '.'
  std::string operands;  // untrimmed remainder (original case for strings)
};

struct Operand {
  enum Kind { kDataReg, kPtrReg, kHiReg, kImmediate, kMemory, kSymbolic };
  Kind kind;
  int reg = 0;          // register index for kDataReg/kPtrReg/kMemory
  bool post_inc = false;  // for kMemory
  std::string expr;     // for kImmediate (after '#') and kSymbolic
};

class Assembler {
 public:
  Result<Program> Run(std::string_view source) {
    ULE_RETURN_IF_ERROR(SplitLines(source));
    ULE_RETURN_IF_ERROR(Pass(/*emit=*/false));
    image_.clear();
    ULE_RETURN_IF_ERROR(Pass(/*emit=*/true));
    Program p;
    p.image = std::move(image_);
    if (!entry_expr_.empty()) {
      ULE_ASSIGN_OR_RETURN(uint32_t e, Eval(entry_expr_, entry_line_));
      p.entry = static_cast<uint16_t>(e);
    }
    return p;
  }

 private:
  Status Error(int line, const std::string& msg) {
    return Status::InvalidArgument("asm line " + std::to_string(line) + ": " +
                                   msg);
  }

  Status SplitLines(std::string_view source) {
    int number = 0;
    size_t pos = 0;
    while (pos <= source.size()) {
      const size_t nl = source.find('\n', pos);
      std::string_view raw = source.substr(
          pos, nl == std::string_view::npos ? std::string_view::npos
                                            : nl - pos);
      ++number;
      pos = (nl == std::string_view::npos) ? source.size() + 1 : nl + 1;

      // Strip comments; a ';' inside a string or char literal is content.
      std::string text;
      bool in_string = false;
      bool in_char = false;
      for (char c : raw) {
        if (c == '"' && !in_char) in_string = !in_string;
        if (c == '\'' && !in_string) in_char = !in_char;
        if (c == ';' && !in_string && !in_char) break;
        text.push_back(c);
      }
      std::string_view body = Trim(text);
      if (body.empty()) continue;

      Line line;
      line.number = number;
      // Leading labels: IDENT ':'
      while (true) {
        size_t i = 0;
        while (i < body.size() &&
               (std::isalnum(static_cast<unsigned char>(body[i])) ||
                body[i] == '_')) {
          ++i;
        }
        if (i > 0 && i < body.size() && body[i] == ':') {
          line.labels.emplace_back(body.substr(0, i));
          body = Trim(body.substr(i + 1));
        } else {
          break;
        }
      }
      if (!body.empty()) {
        size_t i = 0;
        while (i < body.size() &&
               !std::isspace(static_cast<unsigned char>(body[i]))) {
          ++i;
        }
        line.mnemonic = Upper(body.substr(0, i));
        line.operands = std::string(Trim(body.substr(i)));
      }
      if (!line.labels.empty() || !line.mnemonic.empty()) {
        lines_.push_back(std::move(line));
      }
    }
    return Status::OK();
  }

  // Splits operand text on top-level commas (not inside quotes).
  static std::vector<std::string> SplitOperands(const std::string& text) {
    std::vector<std::string> out;
    std::string cur;
    bool in_string = false, in_char = false;
    for (char c : text) {
      if (c == '"' && !in_char) in_string = !in_string;
      if (c == '\'' && !in_string) in_char = !in_char;
      if (c == ',' && !in_string && !in_char) {
        out.emplace_back(Trim(cur));
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    if (!Trim(cur).empty() || !out.empty()) out.emplace_back(Trim(cur));
    return out;
  }

  Result<Operand> ParseOperand(const std::string& text, int line) {
    if (text.empty()) return Error(line, "empty operand");
    const std::string up = Upper(text);
    if (up.size() == 2 && up[0] == 'R' && up[1] >= '0' && up[1] <= '7') {
      Operand o;
      o.kind = Operand::kDataReg;
      o.reg = up[1] - '0';
      return o;
    }
    if (up.size() == 2 && up[0] == 'D' && up[1] >= '0' && up[1] <= '3') {
      Operand o;
      o.kind = Operand::kPtrReg;
      o.reg = up[1] - '0';
      return o;
    }
    if (up == "HI") {
      Operand o;
      o.kind = Operand::kHiReg;
      return o;
    }
    if (text[0] == '#') {
      Operand o;
      o.kind = Operand::kImmediate;
      o.expr = std::string(Trim(std::string_view(text).substr(1)));
      return o;
    }
    if (text.front() == '[') {
      if (text.back() != ']') return Error(line, "unterminated memory operand");
      std::string inner(Trim(std::string_view(text).substr(1, text.size() - 2)));
      Operand o;
      o.kind = Operand::kMemory;
      if (!inner.empty() && inner.back() == '+') {
        o.post_inc = true;
        inner = std::string(Trim(std::string_view(inner).substr(0, inner.size() - 1)));
      }
      const std::string iu = Upper(inner);
      if (iu.size() == 2 && iu[0] == 'D' && iu[1] >= '0' && iu[1] <= '3') {
        o.reg = iu[1] - '0';
        return o;
      }
      return Error(line, "memory operand must be [D0..D3] or [Dx+]");
    }
    Operand o;
    o.kind = Operand::kSymbolic;
    o.expr = text;
    return o;
  }

  // --- expression evaluation (pass 2 only; pass 1 uses fixed sizes) ---

  Result<uint32_t> EvalTerm(std::string_view term, int line) {
    term = Trim(term);
    if (term.empty()) return Error(line, "empty expression term");
    if (term.size() >= 3 && term.front() == '\'' && term.back() == '\'') {
      if (term.size() == 3) return static_cast<uint32_t>(term[1]);
      if (term.size() == 4 && term[1] == '\\') {
        switch (term[2]) {
          case 'n':
            return static_cast<uint32_t>('\n');
          case 't':
            return static_cast<uint32_t>('\t');
          case '0':
            return 0u;
          case '\\':
            return static_cast<uint32_t>('\\');
          default:
            break;
        }
      }
      return Error(line, "bad character literal");
    }
    const std::string s(term);
    const bool negative = s[0] == '-';
    const std::string digits = negative ? s.substr(1) : s;
    if (!digits.empty() &&
        std::isdigit(static_cast<unsigned char>(digits[0]))) {
      try {
        const uint32_t v = static_cast<uint32_t>(std::stoul(digits, nullptr, 0));
        return negative ? static_cast<uint32_t>(0) - v : v;
      } catch (...) {
        return Error(line, "bad numeric literal '" + s + "'");
      }
    }
    auto it = symbols_.find(s);
    if (it == symbols_.end()) {
      return Error(line, "undefined symbol '" + s + "'");
    }
    return it->second;
  }

  Result<uint32_t> Eval(std::string_view expr, int line) {
    expr = Trim(expr);
    // Left-to-right + / - on terms. Leading '-' allowed.
    uint32_t acc = 0;
    char pending = '+';
    size_t start = 0;
    for (size_t i = 0; i <= expr.size(); ++i) {
      const bool split =
          i == expr.size() ||
          ((expr[i] == '+' || expr[i] == '-') && i != start);
      if (!split) continue;
      std::string_view term = expr.substr(start, i - start);
      if (Trim(term).empty() && i == expr.size() && pending != '+') {
        return Error(line, "dangling operator in expression");
      }
      if (!Trim(term).empty()) {
        ULE_ASSIGN_OR_RETURN(uint32_t v, EvalTerm(term, line));
        acc = (pending == '+') ? acc + v : acc - v;
      } else if (i == start && pending == '+' && i < expr.size() &&
                 expr[i] == '-') {
        // leading minus handled by treating acc=0, pending='-'
      }
      if (i < expr.size()) pending = expr[i];
      start = i + 1;
    }
    return acc;
  }

  // --- emission helpers ---

  void EmitByte(uint8_t b) { image_.push_back(b); }
  void EmitWord(uint16_t w) {
    EmitByte(static_cast<uint8_t>(w & 0xFF));
    EmitByte(static_cast<uint8_t>(w >> 8));
  }

  size_t pc() const { return image_.size(); }

  Result<uint16_t> EvalWord(const std::string& expr, int line, bool emit) {
    if (!emit) return static_cast<uint16_t>(0);
    ULE_ASSIGN_OR_RETURN(uint32_t v, Eval(expr, line));
    if (v > 0xFFFF && v < 0xFFFF0000u) {
      return Error(line, "value " + std::to_string(v) + " out of 16-bit range");
    }
    return static_cast<uint16_t>(v);
  }

  // --- the unified pass (sizes in pass 1, code in pass 2) ---

  Status Pass(bool emit) {
    image_.clear();
    for (const Line& line : lines_) {
      for (const std::string& label : line.labels) {
        if (!emit) {
          if (symbols_.count(label)) {
            return Error(line.number, "duplicate label '" + label + "'");
          }
          symbols_[label] = static_cast<uint32_t>(pc());
        }
      }
      if (line.mnemonic.empty()) continue;
      ULE_RETURN_IF_ERROR(HandleStatement(line, emit));
      if (pc() > kMemorySize) {
        return Error(line.number, "program exceeds 64 KiB address space");
      }
    }
    return Status::OK();
  }

  Status HandleStatement(const Line& line, bool emit) {
    const std::string& m = line.mnemonic;
    const std::vector<std::string> ops = SplitOperands(line.operands);
    const int ln = line.number;

    // ---- directives ----
    if (m[0] == '.') {
      if (m == ".ORG") {
        if (ops.size() != 1) return Error(ln, ".org needs one operand");
        // .org must be evaluable in pass 1 (no forward labels).
        ULE_ASSIGN_OR_RETURN(uint32_t target, Eval(ops[0], ln));
        if (target < pc()) return Error(ln, ".org cannot move backwards");
        if (target > kMemorySize) return Error(ln, ".org beyond 64 KiB");
        while (pc() < target) EmitByte(0);
        return Status::OK();
      }
      if (m == ".WORD") {
        for (const auto& e : ops) {
          ULE_ASSIGN_OR_RETURN(uint16_t v, EvalWord(e, ln, emit));
          EmitWord(v);
        }
        return Status::OK();
      }
      if (m == ".BYTE") {
        for (const auto& e : ops) {
          ULE_ASSIGN_OR_RETURN(uint16_t v, EvalWord(e, ln, emit));
          EmitByte(static_cast<uint8_t>(v & 0xFF));
        }
        return Status::OK();
      }
      if (m == ".ASCII") {
        std::string_view t = Trim(line.operands);
        if (t.size() < 2 || t.front() != '"' || t.back() != '"') {
          return Error(ln, ".ascii needs a quoted string");
        }
        for (char c : t.substr(1, t.size() - 2)) {
          EmitByte(static_cast<uint8_t>(c));
        }
        return Status::OK();
      }
      if (m == ".SPACE") {
        if (ops.empty() || ops.size() > 2) {
          return Error(ln, ".space needs 1 or 2 operands");
        }
        ULE_ASSIGN_OR_RETURN(uint32_t n, Eval(ops[0], ln));
        uint32_t fill = 0;
        if (ops.size() == 2) {
          ULE_ASSIGN_OR_RETURN(fill, Eval(ops[1], ln));
        }
        for (uint32_t i = 0; i < n; ++i) {
          EmitByte(static_cast<uint8_t>(fill));
        }
        return Status::OK();
      }
      if (m == ".EQU") {
        if (ops.size() != 2) return Error(ln, ".equ needs name, value");
        if (!emit) {
          ULE_ASSIGN_OR_RETURN(uint32_t v, Eval(ops[1], ln));
          if (symbols_.count(ops[0])) {
            return Error(ln, "duplicate symbol '" + ops[0] + "'");
          }
          symbols_[ops[0]] = v;
        }
        return Status::OK();
      }
      if (m == ".ENTRY") {
        if (ops.size() != 1) return Error(ln, ".entry needs one operand");
        entry_expr_ = ops[0];
        entry_line_ = ln;
        return Status::OK();
      }
      return Error(ln, "unknown directive " + m);
    }

    // ---- instructions ----
    auto need = [&](size_t n) -> Status {
      if (ops.size() != n) {
        return Error(ln, m + " needs " + std::to_string(n) + " operand(s)");
      }
      return Status::OK();
    };
    auto parse = [&](size_t i) { return ParseOperand(ops[i], ln); };

    // Strip .B/.W suffix for LDM/STM.
    std::string base = m;
    int size_suffix = -1;  // -1 none, 0 byte, 1 word
    if (base.size() > 2 && base[base.size() - 2] == '.') {
      const char s = base.back();
      if (s == 'B') size_suffix = 0;
      if (s == 'W') size_suffix = 1;
      if (size_suffix >= 0) base = base.substr(0, base.size() - 2);
    }

    static const std::map<std::string, Opcode> kAlu = {
        {"ADD", kAdd}, {"ADC", kAdc}, {"SUB", kSub}, {"SBB", kSbb},
        {"CMP", kCmp}, {"MUL", kMul}, {"AND", kAnd}, {"OR", kOr},
        {"XOR", kXor}};
    if (auto it = kAlu.find(base); it != kAlu.end()) {
      ULE_RETURN_IF_ERROR(need(2));
      ULE_ASSIGN_OR_RETURN(Operand a, parse(0));
      ULE_ASSIGN_OR_RETURN(Operand b, parse(1));
      if (a.kind != Operand::kDataReg || b.kind != Operand::kDataReg) {
        return Error(ln, base + " operands must be data registers");
      }
      EmitWord(Encode(it->second, a.reg, b.reg));
      return Status::OK();
    }

    static const std::map<std::string, Opcode> kShifts = {
        {"LSL", kLsl}, {"LSR", kLsr}, {"ASR", kAsr}, {"ROR", kRor}};
    if (auto it = kShifts.find(base); it != kShifts.end()) {
      ULE_RETURN_IF_ERROR(need(2));
      ULE_ASSIGN_OR_RETURN(Operand a, parse(0));
      ULE_ASSIGN_OR_RETURN(Operand b, parse(1));
      if (a.kind != Operand::kDataReg) {
        return Error(ln, "shift destination must be a data register");
      }
      if (b.kind == Operand::kDataReg) {
        EmitWord(Encode(it->second, a.reg, b.reg, 0));
        return Status::OK();
      }
      if (b.kind == Operand::kImmediate) {
        ULE_ASSIGN_OR_RETURN(uint16_t amt, EvalWord(b.expr, ln, emit));
        if (emit && amt > 15) return Error(ln, "shift amount must be 0..15");
        const unsigned mode =
            kShiftImm | ((amt & 8) ? kShiftImm8 : 0);
        EmitWord(Encode(it->second, a.reg, amt & 7, mode));
        return Status::OK();
      }
      return Error(ln, "shift amount must be register or #imm");
    }

    if (base == "MOVE") {
      ULE_RETURN_IF_ERROR(need(2));
      ULE_ASSIGN_OR_RETURN(Operand a, parse(0));
      ULE_ASSIGN_OR_RETURN(Operand b, parse(1));
      unsigned mode = 0;
      unsigned rd = 0, rs = 0;
      if (a.kind == Operand::kDataReg) {
        rd = a.reg;
      } else if (a.kind == Operand::kPtrReg) {
        rd = a.reg;
        mode |= kMoveDstD;
      } else {
        return Error(ln, "MOVE destination must be Rx or Dx");
      }
      if (b.kind == Operand::kDataReg) {
        rs = b.reg;
      } else if (b.kind == Operand::kPtrReg) {
        rs = b.reg;
        mode |= kMoveSrcD;
      } else if (b.kind == Operand::kHiReg) {
        mode |= kMoveSrcHi;
      } else {
        return Error(ln, "MOVE source must be Rx, Dx or HI");
      }
      EmitWord(Encode(kMove, rd, rs, mode));
      return Status::OK();
    }

    if (base == "LDI") {
      ULE_RETURN_IF_ERROR(need(2));
      ULE_ASSIGN_OR_RETURN(Operand a, parse(0));
      ULE_ASSIGN_OR_RETURN(Operand b, parse(1));
      if (a.kind != Operand::kDataReg || b.kind != Operand::kImmediate) {
        return Error(ln, "LDI needs Rd, #imm");
      }
      ULE_ASSIGN_OR_RETURN(uint16_t imm, EvalWord(b.expr, ln, emit));
      EmitWord(Encode(kLdi, a.reg));
      EmitWord(imm);
      return Status::OK();
    }

    if (base == "LDM" || base == "STM") {
      if (size_suffix < 0) {
        return Error(ln, base + " requires a .B or .W size suffix");
      }
      ULE_RETURN_IF_ERROR(need(2));
      ULE_ASSIGN_OR_RETURN(Operand a, parse(0));
      ULE_ASSIGN_OR_RETURN(Operand b, parse(1));
      if (a.kind != Operand::kDataReg || b.kind != Operand::kMemory) {
        return Error(ln, base + " needs Rx, [Dx] operands");
      }
      unsigned mode = (size_suffix == 1 ? kModeWord : 0) |
                      (b.post_inc ? kModePostInc : 0);
      if (base == "LDM") {
        EmitWord(Encode(kLdm, a.reg, b.reg, mode));
      } else {
        EmitWord(Encode(kStm, b.reg, a.reg, mode));
      }
      return Status::OK();
    }

    static const std::map<std::string, Opcode> kBranches = {
        {"JUMP", kJump}, {"JZ", kJz}, {"JC", kJc}, {"CALL", kCall}};
    if (auto it = kBranches.find(base); it != kBranches.end()) {
      ULE_RETURN_IF_ERROR(need(1));
      ULE_ASSIGN_OR_RETURN(uint16_t addr, EvalWord(ops[0], ln, emit));
      EmitWord(Encode(it->second));
      EmitWord(addr);
      return Status::OK();
    }

    // Pseudo-instructions: JNZ/JNC expand to a skip over an absolute jump.
    if (base == "JNZ" || base == "JNC") {
      ULE_RETURN_IF_ERROR(need(1));
      ULE_ASSIGN_OR_RETURN(uint16_t addr, EvalWord(ops[0], ln, emit));
      const uint16_t skip = static_cast<uint16_t>(pc() + 8);
      EmitWord(Encode(base == "JNZ" ? kJz : kJc));
      EmitWord(skip);
      EmitWord(Encode(kJump));
      EmitWord(addr);
      return Status::OK();
    }

    if (base == "RET") {
      ULE_RETURN_IF_ERROR(need(0));
      EmitWord(Encode(kRet));
      return Status::OK();
    }

    if (base == "SYS") {
      ULE_RETURN_IF_ERROR(need(1));
      ULE_ASSIGN_OR_RETURN(Operand a, parse(0));
      if (a.kind != Operand::kImmediate) return Error(ln, "SYS needs #port");
      ULE_ASSIGN_OR_RETURN(uint16_t port, EvalWord(a.expr, ln, emit));
      if (emit && port > 31) return Error(ln, "SYS port must be 0..31");
      EmitWord(Encode(kSys, 0, 0, port & 31));
      return Status::OK();
    }

    return Error(ln, "unknown mnemonic '" + base + "'");
  }

  std::vector<Line> lines_;
  std::map<std::string, uint32_t> symbols_;
  Bytes image_;
  std::string entry_expr_;
  int entry_line_ = 0;
};

}  // namespace

Result<Program> Assemble(std::string_view source) {
  Assembler assembler;
  return assembler.Run(source);
}

}  // namespace dynarisc
}  // namespace ule
