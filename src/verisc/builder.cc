#include "verisc/builder.h"

#include <cassert>

namespace ule {
namespace verisc {

Builder::Builder() {
  for (auto& t : t_) t = NewCell(0);
}

Builder::Cell Builder::NewCell(uint32_t initial) {
  cells_.push_back(CellInit{initial, -1});
  return Cell{static_cast<uint32_t>(cells_.size() - 1)};
}

Builder::Cell Builder::NewArray(uint32_t size, uint32_t fill) {
  assert(size > 0);
  const Cell first = NewCell(fill);
  for (uint32_t i = 1; i < size; ++i) NewCell(fill);
  return first;
}

Builder::Cell Builder::NewLabelCell(Label l) {
  cells_.push_back(CellInit{0, static_cast<int>(l.id)});
  return Cell{static_cast<uint32_t>(cells_.size() - 1)};
}

Builder::Cell Builder::NewJumpTable(const std::vector<Label>& targets) {
  assert(!targets.empty());
  const Cell first = NewLabelCell(targets[0]);
  for (size_t i = 1; i < targets.size(); ++i) NewLabelCell(targets[i]);
  return first;
}

Builder::Label Builder::NewLabel() {
  label_pos_.push_back(-1);
  return Label{static_cast<uint32_t>(label_pos_.size() - 1)};
}

void Builder::Bind(Label l) {
  assert(label_pos_[l.id] == -1 && "label bound twice");
  label_pos_[l.id] = static_cast<int64_t>(code_.size());
  last_bind_pos_ = code_.size();
}

void Builder::Emit(Opcode op, OperandRef ref) {
  // Peephole: `ST c; LD c` — the LD is a no-op (ST leaves R == mem[c] and
  // neither touches borrow). Dropping it is only legal when no label is
  // bound here (a jump could land on the LD alone).
  if (op == kLd && ref.kind == OperandRef::kCellRef && !code_.empty() &&
      last_bind_pos_ != code_.size()) {
    const Emitted& prev = code_.back();
    if (prev.op == kSt && prev.ref.kind == OperandRef::kCellRef &&
        prev.ref.index == ref.index) {
      return;
    }
  }
  code_.push_back({op, ref});
}

Builder::Fn Builder::DeclareFn() { return Fn{NewLabel(), NewCell(0)}; }

void Builder::BeginFn(Fn f) { Bind(f.entry); }

void Builder::Call(Fn f) {
  Label after = NewLabel();
  Ld(PoolConst(ConstSpec{0, static_cast<int>(after.id), -1, false}));
  St(f.ret_slot);
  Jmp(f.entry);
  Bind(after);
}

void Builder::Ret(Fn f) { JmpCell(f.ret_slot); }

void Builder::Ld(Cell c) { Emit(kLd, CellOp(c)); }
void Builder::St(Cell c) { Emit(kSt, CellOp(c)); }
void Builder::Sbb(Cell c) { Emit(kSbb, CellOp(c)); }
void Builder::And(Cell c) { Emit(kAnd, CellOp(c)); }
void Builder::LdMapped(uint32_t addr) {
  assert(addr < kProgramOrigin);
  Emit(kLd, OperandRef{OperandRef::kMappedAddr, addr});
}
void Builder::StMapped(uint32_t addr) {
  assert(addr < kProgramOrigin);
  Emit(kSt, OperandRef{OperandRef::kMappedAddr, addr});
}

Builder::Cell Builder::PoolConst(ConstSpec spec) {
  auto it = const_pool_.find(spec);
  if (it != const_pool_.end()) return Cell{it->second};
  cells_.push_back(CellInit{0, -1});
  const uint32_t id = static_cast<uint32_t>(cells_.size() - 1);
  const_pool_[spec] = id;
  pool_cells_.push_back({id, spec});
  return Cell{id};
}

void Builder::LdImm(uint32_t v) {
  if (v == 0) {
    LdMapped(0);
    return;
  }
  Ld(PoolConst(ConstSpec{v, -1, -1, false}));
}

void Builder::Clc() {
  LdMapped(0);   // R <- 0
  StMapped(2);   // borrow <- R & 1 = 0
}

void Builder::AddSpec(ConstSpec spec) {
  // R <- R + value(spec), implemented as R - (-value). Clobbers t0.
  spec.negate = !spec.negate;
  const Cell neg = PoolConst(spec);
  St(t_[0]);
  Clc();
  Ld(t_[0]);
  Sbb(neg);
}

void Builder::AddCell(Cell a) {
  // R <- R + mem[a]; clobbers t0, t1.
  St(t_[0]);
  Clc();         // R = 0, borrow = 0
  Sbb(a);        // R = -mem[a]
  St(t_[1]);
  Clc();
  Ld(t_[0]);
  Sbb(t_[1]);    // R = t0 + mem[a]
}

void Builder::AddImm(uint32_t v) {
  if (v == 0) return;
  AddSpec(ConstSpec{v, -1, -1, false});
}

void Builder::SubCell(Cell a) {
  St(t_[0]);
  Clc();
  Ld(t_[0]);
  Sbb(a);
}

void Builder::SubImm(uint32_t v) {
  St(t_[0]);
  Clc();
  Ld(t_[0]);
  Sbb(PoolConst(ConstSpec{v, -1, -1, false}));
}

void Builder::AndImm(uint32_t v) { And(PoolConst(ConstSpec{v, -1, -1, false})); }

void Builder::Not() {
  // ~R = 0xFFFFFFFF - R (never borrows).
  St(t_[0]);
  Clc();
  LdImm(0xFFFFFFFFu);
  Sbb(t_[0]);
}

void Builder::Jmp(Label l) {
  Ld(PoolConst(ConstSpec{0, static_cast<int>(l.id), -1, false}));
  StMapped(1);
}

void Builder::JmpCell(Cell c) {
  Ld(c);
  StMapped(1);
}

void Builder::BorrowSelectJump(Label taken) {
  // PC <- borrow ? taken : fallthrough, via the arithmetic select
  //   PC = fall - (mask & (fall - taken)),
  // which is `taken` when the mask is all-ones and `fall` when it is zero
  // (exact under mod-2^32 wraparound). 8 instructions; clobbers t1.
  Label fall = NewLabel();
  const Cell diff_c = PoolConst(ConstSpec{0, static_cast<int>(fall.id), -1,
                                          false, static_cast<int>(taken.id)});
  const Cell fall_c =
      PoolConst(ConstSpec{0, static_cast<int>(fall.id), -1, false});
  LdMapped(2);     // R = mask (all-ones when borrow)
  And(diff_c);     // R = mask & (fall - taken)
  St(t_[1]);
  Clc();
  Ld(fall_c);
  Sbb(t_[1]);      // R = fall - (mask & (fall - taken)); borrow was 0
  StMapped(1);
  Bind(fall);
}

void Builder::Jc(Label l) { BorrowSelectJump(l); }

void Builder::Jnc(Label l) {
  // Mirror of BorrowSelectJump: PC = l - (mask & (l - fall)), i.e. stay on
  // borrow, jump to l when the mask is zero. Clobbers t1.
  Label fall = NewLabel();
  const Cell diff_c = PoolConst(ConstSpec{0, static_cast<int>(l.id), -1,
                                          false, static_cast<int>(fall.id)});
  const Cell l_c = PoolConst(ConstSpec{0, static_cast<int>(l.id), -1, false});
  LdMapped(2);
  And(diff_c);     // R = mask & (l - fall)
  St(t_[1]);
  Clc();
  Ld(l_c);
  Sbb(t_[1]);      // R = l - (mask & (l - fall))
  StMapped(1);
  Bind(fall);
}

void Builder::Jz(Label l) {
  // borrow <- (R == 0): R - 1 borrows only for R == 0.
  St(t_[4]);
  Clc();
  Ld(t_[4]);
  Sbb(PoolConst(ConstSpec{1, -1, -1, false}));
  BorrowSelectJump(l);
}

void Builder::Jnz(Label l) {
  St(t_[4]);
  Clc();
  Ld(t_[4]);
  Sbb(PoolConst(ConstSpec{1, -1, -1, false}));
  Jnc(l);
}

void Builder::Halt() { StMapped(5); }

void Builder::PatchSlot(Label l) {
  Bind(l);
  // Placeholder word; always overwritten before execution. Recorded so the
  // fusion pass never pairs across a word whose opcode is decided at run
  // time (StIndexed patches an ST word over this LD template).
  patch_slots_.push_back(static_cast<uint32_t>(code_.size()));
  Emit(kLd, OperandRef{OperandRef::kMappedAddr, 0});
}

void Builder::LdIndexed(Cell base, Cell index) {
  Label slot = NewLabel();
  Ld(index);
  AddSpec(ConstSpec{0, -1, static_cast<int>(base.id), false});  // + addr(base)
  Emit(kSt, LabelOp(slot));  // patch the next word: "LD base+index"
  PatchSlot(slot);
}

void Builder::StIndexed(Cell base, Cell index) {
  Label slot = NewLabel();
  St(t_[6]);  // save the value to store
  Ld(index);
  AddSpec(ConstSpec{1u << 28, -1, static_cast<int>(base.id), false});
  Emit(kSt, LabelOp(slot));
  Ld(t_[6]);
  PatchSlot(slot);
}

void Builder::LdIndexedAbs(uint32_t abs_base, Cell index) {
  Label slot = NewLabel();
  Ld(index);
  AddSpec(ConstSpec{abs_base, -1, -1, false});
  Emit(kSt, LabelOp(slot));
  PatchSlot(slot);
}

void Builder::StIndexedAbs(uint32_t abs_base, Cell index) {
  Label slot = NewLabel();
  St(t_[6]);
  Ld(index);
  AddSpec(ConstSpec{(1u << 28) + abs_base, -1, -1, false});
  Emit(kSt, LabelOp(slot));
  Ld(t_[6]);
  PatchSlot(slot);
}

Result<Program> Builder::Build() {
  const uint32_t data_base =
      kProgramOrigin + static_cast<uint32_t>(code_.size());

  auto label_addr = [&](uint32_t id) -> Result<uint32_t> {
    if (label_pos_[id] < 0) {
      return Status::InvalidArgument("VeRisc builder: unbound label " +
                                     std::to_string(id));
    }
    return kProgramOrigin + static_cast<uint32_t>(label_pos_[id]);
  };
  auto cell_addr = [&](uint32_t id) { return data_base + id; };

  Program p;
  p.words.reserve(code_.size() + cells_.size());
  for (const Emitted& e : code_) {
    uint32_t addr = 0;
    switch (e.ref.kind) {
      case OperandRef::kMappedAddr:
        addr = e.ref.index;
        break;
      case OperandRef::kCellRef:
        addr = cell_addr(e.ref.index);
        break;
      case OperandRef::kLabelRef: {
        ULE_ASSIGN_OR_RETURN(uint32_t a, label_addr(e.ref.index));
        addr = a;
        break;
      }
    }
    p.words.push_back(Instr(static_cast<Opcode>(e.op), addr));
  }

  // Data segment: plain cells first (label cells resolved), then patch the
  // pooled constants (which may reference cell addresses).
  std::vector<uint32_t> data(cells_.size(), 0);
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].label_id >= 0) {
      ULE_ASSIGN_OR_RETURN(uint32_t a,
                           label_addr(static_cast<uint32_t>(cells_[i].label_id)));
      data[i] = a;
    } else {
      data[i] = cells_[i].literal;
    }
  }
  for (const auto& [id, spec] : pool_cells_) {
    uint32_t v = spec.literal;
    if (spec.label_id >= 0) {
      ULE_ASSIGN_OR_RETURN(uint32_t a,
                           label_addr(static_cast<uint32_t>(spec.label_id)));
      v += a;
    }
    if (spec.cell_id >= 0) v += cell_addr(static_cast<uint32_t>(spec.cell_id));
    if (spec.sub_label_id >= 0) {
      ULE_ASSIGN_OR_RETURN(
          uint32_t a, label_addr(static_cast<uint32_t>(spec.sub_label_id)));
      v -= a;
    }
    if (spec.negate) v = 0u - v;
    data[id] = v;
  }
  p.words.insert(p.words.end(), data.begin(), data.end());

  if (kProgramOrigin + p.words.size() > (1u << 16)) {
    return Status::ResourceExhausted(
        "VeRisc program overlaps the fixed table/guest regions (size " +
        std::to_string(p.words.size()) + " words)");
  }
  AppendFusionPlan(p);
  return p;
}

void Builder::AppendFusionPlan(Program& p) const {
  // Greedy left-to-right scan for fusible 2-3 instruction sequences. The
  // plan is advisory metadata: the engine rewrites only the *first* word of
  // a sequence, so jumping into the middle of one still executes the plain
  // tail words. Patch-slot words are excluded on either side — their opcode
  // is decided at run time (StIndexed patches an ST over the LD template),
  // so no static pairing across them is sound.
  std::vector<char> is_slot(code_.size(), 0);
  for (uint32_t s : patch_slots_) is_slot[s] = 1;
  // Cell and label operands both resolve to addresses >= kProgramOrigin, so
  // any non-mapped operand is a plain memory access.
  auto plain = [&](size_t i, Opcode op) {
    return !is_slot[i] && code_[i].op == op &&
           code_[i].ref.kind != OperandRef::kMappedAddr;
  };
  auto mapped = [&](size_t i, Opcode op, uint32_t addr) {
    return !is_slot[i] && code_[i].op == op &&
           code_[i].ref.kind == OperandRef::kMappedAddr &&
           code_[i].ref.index == addr;
  };
  for (size_t i = 0; i + 1 < code_.size();) {
    uint8_t nibble = 0;
    size_t len = 2;
    if (i + 2 < code_.size() && plain(i, kSt) && mapped(i + 1, kLd, 0) &&
        mapped(i + 2, kSt, 2)) {
      nibble = kFusedStClc;
      len = 3;
    } else if (mapped(i, kLd, 0) && mapped(i + 1, kSt, 2)) {
      nibble = kFusedClc;
    } else if (mapped(i, kLd, 2) && plain(i + 1, kAnd)) {
      nibble = kFusedMaskAnd;
    } else if (plain(i, kLd) && plain(i + 1, kSbb)) {
      nibble = kFusedLdSbb;
    } else if (plain(i, kLd) && plain(i + 1, kSt)) {
      nibble = kFusedLdSt;
    } else if (plain(i, kLd) && plain(i + 1, kAnd)) {
      nibble = kFusedLdAnd;
    } else if (plain(i, kLd) && mapped(i + 1, kSt, 1)) {
      nibble = kFusedLdJmp;
    } else if (plain(i, kSbb) && plain(i + 1, kSt)) {
      nibble = kFusedSbbSt;
    } else if (plain(i, kSbb) && mapped(i + 1, kSt, 1)) {
      nibble = kFusedSbbJmp;
    } else if (plain(i, kAnd) && plain(i + 1, kSt)) {
      nibble = kFusedAndSt;
    } else if (plain(i, kSt) && plain(i + 1, kLd)) {
      nibble = kFusedStLd;
    } else if (plain(i, kSt) && plain(i + 1, kSt)) {
      nibble = kFusedStSt;
    }
    if (nibble != 0) {
      p.fusion_plan.push_back(
          Program::Fusion{static_cast<uint32_t>(i), nibble});
      i += len;
    } else {
      ++i;
    }
  }
}

}  // namespace verisc
}  // namespace ule
