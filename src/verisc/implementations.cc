#include "verisc/implementations.h"

#include <cstring>
#include <functional>
#include <memory>

namespace ule {
namespace verisc {
namespace {

// ---------------------------------------------------------------------------
// Implementation 1: "student" — a plain, procedural transliteration of the
// Bootstrap pseudocode, the way a first-year undergraduate would write it.
// Everything is a local variable; no helpers; one big loop.
// ---------------------------------------------------------------------------
constexpr int kStudentBegin = __LINE__;
Result<RunResult> RunStudent(const Program& program, BytesView input,
                             const RunOptions& options) {
  std::unique_ptr<uint32_t[]> mem(new uint32_t[kMemoryWords]());
  for (size_t i = 0; i < program.words.size(); i++) {
    if (16 + i >= kMemoryWords) return Status::InvalidArgument("too big");
    mem[16 + i] = program.words[i];
  }
  uint32_t R = 0;
  uint32_t B = 0;
  uint32_t PC = 16;
  size_t next_in = 0;
  RunResult res;
  uint64_t count = 0;
  while (count < options.max_steps) {
    if (PC >= kMemoryWords) {
      res.reason = StopReason::kFault;
      res.steps = count;
      return res;
    }
    uint32_t word = mem[PC];
    PC = PC + 1;
    count = count + 1;
    uint32_t code = word >> 28;
    uint32_t a = word & 0x0FFFFFFF;
    if (code > 3 || a >= kMemoryWords) {
      res.reason = StopReason::kFault;
      res.steps = count;
      return res;
    }
    // what does address "a" read as? (only LD/SBB/AND actually read, so the
    // input port must not be consumed by a ST)
    uint32_t v = 0;
    if (code != 1) {
      if (a == 0) {
        v = 0;
      } else if (a == 1) {
        v = PC;
      } else if (a == 2) {
        if (B == 1) {
          v = 0xFFFFFFFF;
        } else {
          v = 0;
        }
      } else if (a == 3) {
        if (next_in < input.size()) {
          v = input[next_in];
          next_in = next_in + 1;
        } else {
          v = 0xFFFFFFFF;
        }
      } else if (a < 16) {
        v = 0;
      } else {
        v = mem[a];
      }
    }
    if (code == 0) {  // LD
      R = v;
    } else if (code == 1) {  // ST
      if (a == 1) {
        PC = R % kMemoryWords;
      } else if (a == 2) {
        B = R & 1;
      } else if (a == 4) {
        res.output.push_back(R & 0xFF);
      } else if (a == 5) {
        res.reason = StopReason::kHalted;
        res.steps = count;
        return res;
      } else if (a >= 16) {
        mem[a] = R;
      }
    } else if (code == 2) {  // SBB
      // careful with wrap-around: do it in 64 bits like the Bootstrap says
      uint64_t take = (uint64_t)v + (uint64_t)B;
      if ((uint64_t)R < take) {
        B = 1;
      } else {
        B = 0;
      }
      R = (uint32_t)((uint64_t)R - take);
    } else {  // AND
      R = R & v;
    }
  }
  res.reason = StopReason::kStepLimit;
  res.steps = options.max_steps;
  return res;
}
constexpr int kStudentEnd = __LINE__;

// ---------------------------------------------------------------------------
// Implementation 2: "engineer" — table-dispatched, state in a struct,
// the way a systems engineer at a space agency might structure it.
// ---------------------------------------------------------------------------
constexpr int kEngineerBegin = __LINE__;
struct EngineState {
  std::vector<uint32_t> mem;
  uint32_t r = 0, borrow = 0, pc = kProgramOrigin;
  BytesView in;
  size_t in_pos = 0;
  RunResult out;
  bool stopped = false;

  uint32_t Read(uint32_t a) {
    switch (a) {
      case 1: return pc;
      case 2: return borrow ? ~0u : 0u;
      case 3: return in_pos < in.size() ? in[in_pos++] : ~0u;
      default: return a < 16 ? 0u : mem[a];
    }
  }
  void Write(uint32_t a) {
    switch (a) {
      case 1: pc = r & (kMemoryWords - 1); break;
      case 2: borrow = r & 1; break;
      case 4: out.output.push_back(static_cast<uint8_t>(r)); break;
      case 5: out.reason = StopReason::kHalted; stopped = true; break;
      default: if (a >= 16) mem[a] = r;
    }
  }
};

void EngineLd(EngineState* s, uint32_t a) { s->r = s->Read(a); }
void EngineSt(EngineState* s, uint32_t a) { s->Write(a); }
void EngineSbb(EngineState* s, uint32_t a) {
  const uint64_t rhs = static_cast<uint64_t>(s->Read(a)) + s->borrow;
  s->borrow = s->r < rhs ? 1 : 0;
  s->r = static_cast<uint32_t>(s->r - rhs);
}
void EngineAnd(EngineState* s, uint32_t a) { s->r &= s->Read(a); }

Result<RunResult> RunEngineer(const Program& program, BytesView input,
                              const RunOptions& options) {
  static void (*const kDispatch[4])(EngineState*, uint32_t) = {
      EngineLd, EngineSt, EngineSbb, EngineAnd};
  EngineState s;
  s.mem.assign(kMemoryWords, 0);
  if (program.words.size() > kMemoryWords - kProgramOrigin) {
    return Status::InvalidArgument("program exceeds memory");
  }
  std::copy(program.words.begin(), program.words.end(),
            s.mem.begin() + kProgramOrigin);
  s.in = input;
  for (uint64_t step = 0; step < options.max_steps; ++step) {
    if (s.pc >= kMemoryWords) {
      s.out.reason = StopReason::kFault;
      s.out.steps = step;
      return s.out;
    }
    const uint32_t word = s.mem[s.pc++];
    const uint32_t op = word >> 28;
    const uint32_t addr = word & 0x0FFFFFFFu;
    if (op > 3 || addr >= kMemoryWords) {
      s.out.reason = StopReason::kFault;
      s.out.steps = step + 1;
      return s.out;
    }
    kDispatch[op](&s, addr);
    if (s.stopped) {
      s.out.steps = step + 1;
      return s.out;
    }
  }
  s.out.reason = StopReason::kStepLimit;
  s.out.steps = options.max_steps;
  return s.out;
}
constexpr int kEngineerEnd = __LINE__;

// ---------------------------------------------------------------------------
// Implementation 3: "archivist" — optimised for auditability: every mapped
// address handled in one exhaustive, comment-per-case switch so that a
// reviewer can match it line by line against the Bootstrap document.
// ---------------------------------------------------------------------------
constexpr int kArchivistBegin = __LINE__;
Result<RunResult> RunArchivist(const Program& program, BytesView input,
                               const RunOptions& options) {
  // Bootstrap step 1: allocate 2^20 words, all zero.
  std::vector<uint32_t> memory(kMemoryWords, 0);
  // Bootstrap step 2: copy the program image to word 16.
  if (program.words.size() > kMemoryWords - kProgramOrigin) {
    return Status::InvalidArgument("program exceeds memory");
  }
  for (size_t i = 0; i < program.words.size(); ++i) {
    memory[kProgramOrigin + i] = program.words[i];
  }
  // Bootstrap step 3: R = 0, borrow = 0, PC = 16.
  uint32_t accumulator = 0;
  uint32_t borrow_flag = 0;
  uint32_t program_counter = kProgramOrigin;
  size_t input_cursor = 0;
  RunResult result;

  for (uint64_t executed = 0; executed < options.max_steps; ++executed) {
    // Bootstrap step 4a: fetch, then advance PC.
    const uint32_t instruction = memory[program_counter];
    program_counter += 1;
    // Bootstrap step 4b: split into operation (top 4 bits) and address.
    const uint32_t operation = instruction >> 28;
    const uint32_t address = instruction & 0x0FFFFFFFu;
    if (operation > 3 || address >= kMemoryWords ||
        program_counter >= kMemoryWords) {
      result.reason = StopReason::kFault;
      result.steps = executed + 1;
      return result;
    }
    // Bootstrap step 4c: resolve the read value of `address`.
    uint32_t value = 0;
    switch (address) {
      case 0:  // constant zero
        value = 0;
        break;
      case 1:  // program counter (already advanced)
        value = program_counter;
        break;
      case 2:  // borrow mask: all ones iff borrow
        value = borrow_flag ? 0xFFFFFFFFu : 0u;
        break;
      case 3:  // input port: next byte, or all ones at end of input
        value = input_cursor < input.size() ? input[input_cursor] : 0xFFFFFFFFu;
        break;
      case 4:   // output port reads zero
      case 5:   // halt port reads zero
        value = 0;
        break;
      default:
        value = address < 16 ? 0u : memory[address];
        break;
    }
    // Bootstrap step 4d: execute.
    switch (operation) {
      case 0:  // LD: accumulator <- value
        if (address == 3 && value != 0xFFFFFFFFu) ++input_cursor;
        accumulator = value;
        break;
      case 1:  // ST: write accumulator to address
        switch (address) {
          case 1:  // jump
            program_counter = accumulator % kMemoryWords;
            break;
          case 2:  // set borrow from bit 0
            borrow_flag = accumulator & 1u;
            break;
          case 4:  // emit low byte
            result.output.push_back(static_cast<uint8_t>(accumulator & 0xFFu));
            break;
          case 5:  // halt
            result.reason = StopReason::kHalted;
            result.steps = executed + 1;
            return result;
          default:  // plain memory; writes below 16 are ignored
            if (address >= 16) memory[address] = accumulator;
            break;
        }
        break;
      case 2: {  // SBB: subtract value and borrow, 32-bit wrap-around
        if (address == 3 && value != 0xFFFFFFFFu) ++input_cursor;
        const uint64_t subtrahend =
            static_cast<uint64_t>(value) + static_cast<uint64_t>(borrow_flag);
        borrow_flag = static_cast<uint64_t>(accumulator) < subtrahend ? 1u : 0u;
        accumulator = static_cast<uint32_t>(accumulator - subtrahend);
        break;
      }
      case 3:  // AND
        if (address == 3 && value != 0xFFFFFFFFu) ++input_cursor;
        accumulator &= value;
        break;
    }
  }
  result.reason = StopReason::kStepLimit;
  result.steps = options.max_steps;
  return result;
}
constexpr int kArchivistEnd = __LINE__;

}  // namespace

const std::vector<Implementation>& AllImplementations() {
  static const std::vector<Implementation> kAll = {
      {"reference",
       "the execution engine (machine.cc): reusable memory, pluggable "
       "ports, opcode x address-class threaded dispatch",
       &Run, 210},
      {"student", "plain procedural transliteration, local variables only",
       &RunStudent, kStudentEnd - kStudentBegin},
      {"engineer", "struct state + function-pointer dispatch table",
       &RunEngineer, kEngineerEnd - kEngineerBegin},
      {"archivist", "exhaustive switch annotated against the Bootstrap",
       &RunArchivist, kArchivistEnd - kArchivistBegin},
  };
  return kAll;
}

}  // namespace verisc
}  // namespace ule
