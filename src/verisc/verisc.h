/// \file verisc.h
/// \brief VeRisc: the paper's 4-instruction universal virtual machine (§3.2).
///
/// VeRisc is the machine a future user implements from the Bootstrap
/// document. The paper specifies exactly four instructions — LD, ST, SBB,
/// AND — operating on a single general-purpose register R. Everything else
/// (control flow, I/O, conditionals) is obtained through memory-mapped
/// special addresses and self-modifying code. The paper defers ISA details
/// to a patent; this header *is* our normative spec, and the generated
/// Bootstrap document restates it in pseudocode.
///
/// ## Normative specification (mirrors the Bootstrap text)
///
///  * Memory: 2^20 words of 32 bits, addresses 0 .. 0xFFFFF.
///  * State: accumulator R (32-bit), borrow flag B (0/1), program counter
///    PC (word address).
///  * Instruction word: top 4 bits = opcode (0 LD, 1 ST, 2 SBB, 3 AND),
///    low 28 bits = absolute word address (must be < 2^20).
///  * Cycle: fetch word at PC; PC <- PC + 1; execute.
///      - LD a  : R <- read(a)
///      - ST a  : write(a, R)
///      - SBB a : R <- R - read(a) - B  (mod 2^32); B <- 1 on unsigned
///                underflow, else 0
///      - AND a : R <- R & read(a)
///  * Mapped addresses (reads/writes intercept memory):
///      - [0] reads 0; writes ignored.
///      - [1] PC: read -> address of the next instruction; write -> jump.
///      - [2] borrow mask: read -> B ? 0xFFFFFFFF : 0; write -> B <- R & 1.
///      - [3] input port: read pops the next input byte (0..255); reads
///            0xFFFFFFFF at end of input. Writes ignored.
///      - [4] output port: write appends (R & 0xFF) to the output stream.
///            Reads 0.
///      - [5] halt: any write stops the machine. Reads 0.
///      - [6..15] reserved: read 0, writes ignored.
///  * Program text is ordinary memory (loaded at word 16, entry PC = 16);
///    programs may overwrite their own instruction words — this is the
///    intended mechanism for indexed addressing and computed jumps.
///
/// Executing an instruction with opcode bits >= 4 (impossible: 2 bits...
/// opcode is 4 bits wide) — opcodes 4..15 — or an out-of-range address
/// halts the machine with an execution fault.

#ifndef ULE_VERISC_VERISC_H_
#define ULE_VERISC_VERISC_H_

#include <cstdint>
#include <vector>

#include "support/bytes.h"
#include "support/status.h"

namespace ule {
namespace verisc {

/// Number of 32-bit words in VeRisc memory (2^20).
inline constexpr uint32_t kMemoryWords = 1u << 20;
/// Word address where programs are loaded and execution starts.
inline constexpr uint32_t kProgramOrigin = 16;

/// Opcodes (top 4 bits of an instruction word).
enum Opcode : uint32_t { kLd = 0, kSt = 1, kSbb = 2, kAnd = 3 };

/// Builds an instruction word.
constexpr uint32_t Instr(Opcode op, uint32_t addr) {
  return (static_cast<uint32_t>(op) << 28) | (addr & 0x0FFFFFFF);
}

/// Superinstruction ids (top 4 bits of a *quickened* instruction word).
///
/// These are an engine-side acceleration, not part of the archival spec:
/// opcodes 4..15 stay illegal in every serialized/archived image, and a
/// future implementer never sees them. The builder detects hot adjacent
/// instruction sequences at Build() time and records them in
/// `Program::fusion_plan`; `Machine::Load` may then rewrite the *first*
/// word of each sequence to one of these fused opcodes (the tail words
/// stay intact, so jumps into the middle of a sequence and runtime
/// patches of operand words behave exactly as in the unfused program).
enum FusedOp : uint8_t {
  kFusedClc = 4,      ///< LD [0]; ST [2]            (the Clc idiom)
  kFusedStClc = 5,    ///< ST a;  LD [0]; ST [2]     (macro prologue)
  kFusedLdSbb = 6,    ///< LD a;  SBB b
  kFusedLdSt = 7,     ///< LD a;  ST b
  kFusedSbbSt = 8,    ///< SBB a; ST b
  kFusedLdAnd = 9,    ///< LD a;  AND b
  kFusedAndSt = 10,   ///< AND a; ST b
  kFusedStLd = 11,    ///< ST a;  LD b
  kFusedMaskAnd = 12, ///< LD [2]; AND a             (borrow-select prologue)
  kFusedLdJmp = 13,   ///< LD a;  ST [1]             (indirect jump)
  kFusedSbbJmp = 14,  ///< SBB a; ST [1]             (borrow-select epilogue)
  kFusedStSt = 15,    ///< ST a;  ST b
};

/// \brief An executable VeRisc image: instruction/data words placed at
/// kProgramOrigin.
struct Program {
  std::vector<uint32_t> words;

  /// One fusible sequence: `words[index]` starts a 2-3 instruction run the
  /// engine may quicken to the fused opcode `nibble` (see FusedOp).
  struct Fusion {
    uint32_t index = 0;
    uint8_t nibble = 0;
  };
  /// Builder-derived quickening plan. Deliberately *not* serialized: the
  /// archival byte format stays pure 4-instruction VeRisc, and foreign VM
  /// implementations never observe fused opcodes.
  std::vector<Fusion> fusion_plan;

  /// Serialises to the archival byte format: magic "VRX1", u32 word count,
  /// then each word little-endian, then CRC32 of everything before it.
  Bytes Serialize() const;
  /// Parses the archival byte format (validates magic and CRC).
  static Result<Program> Deserialize(BytesView bytes);
};

/// Why a run stopped.
enum class StopReason {
  kHalted,        ///< program wrote to the halt port
  kStepLimit,     ///< exceeded RunOptions::max_steps
  kFault,         ///< illegal opcode or address
};

/// Execution limits and instrumentation switches.
struct RunOptions {
  /// Maximum instructions to execute before giving up.
  uint64_t max_steps = 4'000'000'000ull;
};

/// Result of a completed run.
struct RunResult {
  StopReason reason = StopReason::kHalted;
  uint64_t steps = 0;   ///< instructions executed
  Bytes output;         ///< bytes written to the output port
};

/// \brief Runs `program` with `input` available on the input port until halt,
/// fault, or step limit. This is the library's reference implementation —
/// the same semantics the Bootstrap document describes in pseudocode. It is
/// a thin adapter over the reusable execution engine (machine.h); callers
/// that need incremental execution or pluggable I/O ports should use
/// `verisc::Machine` directly.
Result<RunResult> Run(const Program& program, BytesView input,
                      const RunOptions& options = {});

/// Signature shared by all in-tree VeRisc implementations (see
/// implementations.h); used by the portability experiment (paper §4).
using VmFunction = Result<RunResult> (*)(const Program&, BytesView,
                                         const RunOptions&);

}  // namespace verisc
}  // namespace ule

#endif  // ULE_VERISC_VERISC_H_
