#include "verisc/verisc.h"

#include "support/crc32.h"

namespace ule {
namespace verisc {

Bytes Program::Serialize() const {
  ByteWriter w;
  w.PutString("VRX1");
  w.PutU32(static_cast<uint32_t>(words.size()));
  for (uint32_t word : words) w.PutU32(word);
  const uint32_t crc = Crc32(w.bytes());
  w.PutU32(crc);
  return w.TakeBytes();
}

Result<Program> Program::Deserialize(BytesView bytes) {
  if (bytes.size() < 12) return Status::Corruption("VeRisc image too short");
  ByteReader r(bytes);
  Bytes magic;
  ULE_RETURN_IF_ERROR(r.GetBytes(4, &magic));
  if (ToString(magic) != "VRX1") {
    return Status::Corruption("VeRisc image: bad magic");
  }
  uint32_t count;
  ULE_RETURN_IF_ERROR(r.GetU32(&count));
  if (count > kMemoryWords - kProgramOrigin) {
    return Status::Corruption("VeRisc image: word count exceeds memory");
  }
  Program p;
  p.words.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t word;
    ULE_RETURN_IF_ERROR(r.GetU32(&word));
    p.words.push_back(word);
  }
  uint32_t stored_crc;
  ULE_RETURN_IF_ERROR(r.GetU32(&stored_crc));
  const uint32_t actual =
      Crc32(BytesView(bytes.data(), bytes.size() - 4));
  if (stored_crc != actual) {
    return Status::Corruption("VeRisc image: CRC mismatch");
  }
  return p;
}

Result<RunResult> Run(const Program& program, BytesView input,
                      const RunOptions& options) {
  if (program.words.size() > kMemoryWords - kProgramOrigin) {
    return Status::InvalidArgument("VeRisc program exceeds memory");
  }

  // Flat memory; mapped addresses are intercepted below.
  std::vector<uint32_t> mem(kMemoryWords, 0);
  std::copy(program.words.begin(), program.words.end(),
            mem.begin() + kProgramOrigin);

  uint32_t r = 0;
  uint32_t borrow = 0;
  uint32_t pc = kProgramOrigin;
  size_t in_pos = 0;

  RunResult result;

  auto read = [&](uint32_t addr) -> uint32_t {
    switch (addr) {
      case 0:
        return 0;
      case 1:
        return pc;
      case 2:
        return borrow ? 0xFFFFFFFFu : 0u;
      case 3:
        return in_pos < input.size() ? input[in_pos++] : 0xFFFFFFFFu;
      case 4:
      case 5:
        return 0;
      default:
        if (addr < 16) return 0;
        return mem[addr];
    }
  };

  for (uint64_t step = 0; step < options.max_steps; ++step) {
    if (pc >= kMemoryWords) {
      result.reason = StopReason::kFault;
      result.steps = step;
      return result;
    }
    const uint32_t word = mem[pc];
    ++pc;
    const uint32_t op = word >> 28;
    const uint32_t addr = word & 0x0FFFFFFFu;
    if (op > 3 || addr >= kMemoryWords) {
      result.reason = StopReason::kFault;
      result.steps = step + 1;
      return result;
    }
    switch (op) {
      case kLd:
        r = read(addr);
        break;
      case kSt:
        if (addr == 1) {
          pc = r & (kMemoryWords - 1);
        } else if (addr == 2) {
          borrow = r & 1;
        } else if (addr == 4) {
          result.output.push_back(static_cast<uint8_t>(r & 0xFF));
        } else if (addr == 5) {
          result.reason = StopReason::kHalted;
          result.steps = step + 1;
          return result;
        } else if (addr >= 16) {
          mem[addr] = r;
        }
        // writes to 0, 3, 6..15 ignored
        break;
      case kSbb: {
        const uint64_t rhs =
            static_cast<uint64_t>(read(addr)) + static_cast<uint64_t>(borrow);
        const uint64_t lhs = r;
        borrow = lhs < rhs ? 1u : 0u;
        r = static_cast<uint32_t>(lhs - rhs);
        break;
      }
      case kAnd:
        r &= read(addr);
        break;
    }
  }
  result.reason = StopReason::kStepLimit;
  result.steps = options.max_steps;
  return result;
}

}  // namespace verisc
}  // namespace ule
