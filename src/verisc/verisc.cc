#include "verisc/verisc.h"

#include "support/crc32.h"
#include "verisc/machine.h"

namespace ule {
namespace verisc {

Bytes Program::Serialize() const {
  ByteWriter w;
  w.PutString("VRX1");
  w.PutU32(static_cast<uint32_t>(words.size()));
  for (uint32_t word : words) w.PutU32(word);
  const uint32_t crc = Crc32(w.bytes());
  w.PutU32(crc);
  return w.TakeBytes();
}

Result<Program> Program::Deserialize(BytesView bytes) {
  if (bytes.size() < 12) return Status::Corruption("VeRisc image too short");
  ByteReader r(bytes);
  Bytes magic;
  ULE_RETURN_IF_ERROR(r.GetBytes(4, &magic));
  if (ToString(magic) != "VRX1") {
    return Status::Corruption("VeRisc image: bad magic");
  }
  uint32_t count;
  ULE_RETURN_IF_ERROR(r.GetU32(&count));
  if (count > kMemoryWords - kProgramOrigin) {
    return Status::Corruption("VeRisc image: word count exceeds memory");
  }
  Program p;
  p.words.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t word;
    ULE_RETURN_IF_ERROR(r.GetU32(&word));
    p.words.push_back(word);
  }
  uint32_t stored_crc;
  ULE_RETURN_IF_ERROR(r.GetU32(&stored_crc));
  const uint32_t actual =
      Crc32(BytesView(bytes.data(), bytes.size() - 4));
  if (stored_crc != actual) {
    return Status::Corruption("VeRisc image: CRC mismatch");
  }
  return p;
}

Result<RunResult> Run(const Program& program, BytesView input,
                      const RunOptions& options) {
  // Thin adapter over the engine: the per-thread Machine keeps the 4 MiB
  // memory image alive across calls, so repeated runs neither reallocate
  // nor zero-fill the whole address space.
  return ThreadLocalMachine().RunProgram(program, input, options);
}

}  // namespace verisc
}  // namespace ule
