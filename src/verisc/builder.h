/// \file builder.h
/// \brief Macro-assembler for VeRisc programs.
///
/// VeRisc has four instructions and no branch, no add, no index register.
/// Real programs for it (most importantly the DynaRisc interpreter that
/// Olonys archives, §3.2) are written against this builder, which provides
/// the classic one-instruction-set-computer toolkit:
///
///  * `ADD` is synthesised from two subtractions (a + b = a - (0 - b));
///  * conditionals select between two target addresses with the borrow
///    mask at mapped word [2] and jump by storing to the PC at [1];
///  * indexed loads/stores patch the address field of the *next*
///    instruction word (self-modifying code, which the VeRisc spec makes
///    legal precisely for this purpose);
///  * calls store a return address into a per-function return slot
///    (non-reentrant, which is sufficient for decoders).
///
/// All macros clobber R, the borrow flag and the shared temp cells; code
/// written with the builder treats VeRisc cells, not R, as its variables.

#ifndef ULE_VERISC_BUILDER_H_
#define ULE_VERISC_BUILDER_H_

#include <cassert>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "support/status.h"
#include "verisc/verisc.h"

namespace ule {
namespace verisc {

/// \brief Emits VeRisc code + data and resolves labels/constants at Build().
class Builder {
 public:
  /// Handle to one data word (cells are the builder's "variables").
  struct Cell {
    uint32_t id = 0;
  };
  /// Handle to a code position.
  struct Label {
    uint32_t id = 0;
  };
  /// A non-reentrant function: entry label plus return-address slot.
  struct Fn {
    Label entry;
    Cell ret_slot;
  };

  Builder();

  // ---- data allocation ----

  /// Allocates one data word with an initial value.
  Cell NewCell(uint32_t initial = 0);
  /// Allocates `size` contiguous words; index with At().
  Cell NewArray(uint32_t size, uint32_t fill = 0);
  /// Allocates one word whose initial value is the address of `l`.
  Cell NewLabelCell(Label l);
  /// Allocates a table of code addresses (e.g. an opcode dispatch table).
  Cell NewJumpTable(const std::vector<Label>& targets);
  /// Handle to `base[offset]` of an array allocated with NewArray.
  static Cell At(Cell base, uint32_t offset) { return Cell{base.id + offset}; }

  // ---- labels & functions ----

  Label NewLabel();
  void Bind(Label l);
  Fn DeclareFn();
  /// Binds the function entry; emit its body next, ending with Ret(f).
  void BeginFn(Fn f);
  void Call(Fn f);
  void Ret(Fn f);

  // ---- raw instructions ----

  void Ld(Cell c);
  void St(Cell c);
  void Sbb(Cell c);
  void And(Cell c);
  void LdMapped(uint32_t addr);
  void StMapped(uint32_t addr);

  // ---- macros: register loads and arithmetic ----

  void LdImm(uint32_t v);         ///< R <- v
  void Clc();                     ///< borrow <- 0 (R <- 0)
  void AddCell(Cell a);           ///< R <- R + mem[a]
  void AddImm(uint32_t v);        ///< R <- R + v
  void SubCell(Cell a);           ///< R <- R - mem[a]; borrow = underflow
  void SubImm(uint32_t v);        ///< R <- R - v; borrow = underflow
  void AndImm(uint32_t v);        ///< R <- R & v
  void Not();                     ///< R <- ~R

  // ---- macros: control flow ----

  void Jmp(Label l);
  void JmpCell(Cell c);           ///< PC <- mem[c]
  void Jz(Label l);               ///< jump when R == 0
  void Jnz(Label l);              ///< jump when R != 0
  void Jc(Label l);               ///< jump when borrow == 1
  void Jnc(Label l);              ///< jump when borrow == 0
  void Halt();

  // ---- macros: indexed memory (self-modifying) ----

  /// R <- mem[base_addr_of(base) + mem[index]]
  void LdIndexed(Cell base, Cell index);
  /// mem[base_addr_of(base) + mem[index]] <- R
  void StIndexed(Cell base, Cell index);
  /// R <- mem[abs_base + mem[index]] for a fixed region (e.g. guest memory).
  void LdIndexedAbs(uint32_t abs_base, Cell index);
  /// mem[abs_base + mem[index]] <- R
  void StIndexedAbs(uint32_t abs_base, Cell index);

  // ---- macros: I/O ----

  void InByte() { LdMapped(3); }   ///< R <- next input byte / 0xFFFFFFFF
  void OutByte() { StMapped(4); }  ///< output <- R & 0xFF

  /// Number of instruction words emitted so far.
  size_t code_size() const { return code_.size(); }

  /// Absolute address of a cell in the built image. Only meaningful once
  /// all code has been emitted (layout places data after the code words);
  /// call after Build() succeeded. Used by hosts that poke machine state
  /// directly (e.g. the warm-start nested interpreter).
  uint32_t CellAddress(Cell c) const {
    return kProgramOrigin + static_cast<uint32_t>(code_.size()) + c.id;
  }
  /// Absolute address of a bound label in the built image.
  uint32_t LabelAddress(Label l) const {
    assert(label_pos_[l.id] >= 0 && "label not bound");
    return kProgramOrigin + static_cast<uint32_t>(label_pos_[l.id]);
  }

  /// Lays out code then data, resolves labels/constants, computes the
  /// superinstruction fusion plan (Program::fusion_plan), and returns the
  /// program. Fails if a label was never bound or the image exceeds the
  /// fixed data regions (see dynarisc_in_verisc.h layout).
  Result<Program> Build();

 private:
  // Operand of an emitted instruction, resolved at Build() time.
  struct OperandRef {
    enum Kind { kMappedAddr, kCellRef, kLabelRef } kind = kMappedAddr;
    uint32_t index = 0;  // mapped address / cell id / label id
  };
  struct Emitted {
    Opcode op;
    OperandRef ref;
  };
  // Initial value of a data word; exactly one source applies.
  struct CellInit {
    uint32_t literal = 0;
    int label_id = -1;  // if >= 0, value = address of that label
  };
  // Constant-pool key:
  //   value = sign * (literal + addr(label) + addr(cell) - addr(sub_label)).
  // The subtracted label lets macros pool label-difference constants
  // (BorrowSelectJump needs `fallthrough - taken`).
  struct ConstSpec {
    uint32_t literal = 0;
    int label_id = -1;
    int cell_id = -1;
    bool negate = false;
    int sub_label_id = -1;
    bool operator<(const ConstSpec& o) const {
      return std::tie(literal, label_id, cell_id, negate, sub_label_id) <
             std::tie(o.literal, o.label_id, o.cell_id, o.negate,
                      o.sub_label_id);
    }
  };

  void Emit(Opcode op, OperandRef ref);
  void AppendFusionPlan(Program& p) const;
  OperandRef CellOp(Cell c) { return {OperandRef::kCellRef, c.id}; }
  OperandRef LabelOp(Label l) { return {OperandRef::kLabelRef, l.id}; }
  Cell PoolConst(ConstSpec spec);
  /// R <- R + (lit + addr(label) + addr(cell)); clobbers t0.
  void AddSpec(ConstSpec spec);
  /// Emits mask-select jump: PC <- borrow ? addr(taken) : addr(fallthrough).
  void BorrowSelectJump(Label taken);
  /// Emits a placeholder word that preceding code patches, then binds l there.
  void PatchSlot(Label l);

  std::vector<Emitted> code_;
  std::vector<CellInit> cells_;
  std::vector<int64_t> label_pos_;          // code index or -1
  std::map<ConstSpec, uint32_t> const_pool_;  // spec -> cell id
  std::vector<std::pair<uint32_t, ConstSpec>> pool_cells_;
  std::vector<uint32_t> patch_slots_;       // code indices of PatchSlot words
  size_t last_bind_pos_ = SIZE_MAX;         // code_.size() at the last Bind()
  Cell t_[8];                                // shared macro temps
};

}  // namespace verisc
}  // namespace ule

#endif  // ULE_VERISC_BUILDER_H_
