/// \file implementations.h
/// \brief Independent VeRisc emulator implementations (portability study).
///
/// Paper §4, "Portability and user friendliness": people with diverse
/// backgrounds (first-year students, CNES engineers, EURECOM researchers)
/// implemented the VeRisc emulator from the Bootstrap alone, in JavaScript,
/// Python, C++ and C#, all "in under a week". We reproduce the *claim under
/// test* — that the spec is small enough for independent implementations to
/// agree — with several in-tree emulators written in deliberately different
/// styles, cross-checked by a conformance corpus (tests/verisc_test.cc) and
/// measured by bench/bench_portability.cc.
///
/// Each implementation is written only against the spec in verisc.h /
/// the Bootstrap pseudocode, not against the reference implementation.

#ifndef ULE_VERISC_IMPLEMENTATIONS_H_
#define ULE_VERISC_IMPLEMENTATIONS_H_

#include <string>
#include <vector>

#include "verisc/verisc.h"

namespace ule {
namespace verisc {

/// Descriptor of one in-tree VeRisc implementation.
struct Implementation {
  std::string name;        ///< short id, e.g. "reference"
  std::string style;       ///< how it is written (persona of the implementer)
  VmFunction run;          ///< entry point
  int lines_of_code;       ///< measured size of the implementation function
};

/// All in-tree implementations, reference first.
const std::vector<Implementation>& AllImplementations();

}  // namespace verisc
}  // namespace ule

#endif  // ULE_VERISC_IMPLEMENTATIONS_H_
