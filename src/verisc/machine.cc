#include "verisc/machine.h"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace ule {
namespace verisc {
namespace {

/// An instruction word is legal iff its opcode (top 4 bits) is <= 3 and its
/// address (low 28 bits) is < 2^20: both conditions collapse into "none of
/// bits 31,30 (opcode >= 4) or 27..20 (address >= 2^20) are set".
inline constexpr uint32_t kIllegalMask = 0xCFF00000u;
/// Address-range check alone (bits 27..20): the computed-goto core routes
/// the opcode nibble through a 32-entry dispatch table instead, where the
/// nibbles 4..15 either fault (plain programs) or execute a quickened
/// superinstruction (fused words installed by Machine::Load). The guard
/// word 0xFFFFFFFF has bits 27..20 set, so the out-of-range-PC fault is
/// still caught here, before the table is consulted.
inline constexpr uint32_t kBadAddrMask = 0x0FF00000u;
/// With the masks above checked, the address fits in the low 20 bits.
inline constexpr uint32_t kAddrMask = 0x000FFFFFu;

#if defined(__GNUC__) || defined(__clang__)
#define ULE_UNLIKELY(x) __builtin_expect(!!(x), 0)
#else
#define ULE_UNLIKELY(x) (x)
#endif

/// Read interception for the mapped addresses 0..15. Only LD/SBB/AND reach
/// this (ST never reads its operand), so the input port is consumed exactly
/// once per reading instruction, as the spec requires.
inline uint32_t ReadMapped(uint32_t addr, uint32_t pc, uint32_t borrow,
                           InputPort* in) {
  switch (addr) {
    case 1:
      return pc;  // address of the next instruction (PC already advanced)
    case 2:
      return borrow ? 0xFFFFFFFFu : 0u;
    case 3:
      return in->ReadByte();
    default:
      return 0;  // 0, 4, 5, 6..15
  }
}

}  // namespace

// One guard word past the end of memory. PC only leaves [0, kMemoryWords)
// by incrementing past the last word (stores to PC are masked), so fetching
// the guard — an illegal instruction — is exactly the out-of-range-PC fault,
// and the dispatch core needs no per-instruction PC bounds check.
namespace {
std::atomic<uint64_t> g_machines_constructed{0};
}  // namespace

Machine::Machine() : mem_(kMemoryWords + 1, 0) {
  mem_[kMemoryWords] = 0xFFFFFFFFu;
  g_machines_constructed.fetch_add(1, std::memory_order_relaxed);
}

uint64_t Machine::TotalConstructed() {
  return g_machines_constructed.load(std::memory_order_relaxed);
}

#if defined(ULE_THREADED_DISPATCH) && (defined(__GNUC__) || defined(__clang__))
#define ULE_USE_COMPUTED_GOTO 1
#else
#define ULE_USE_COMPUTED_GOTO 0
#endif

#if ULE_USE_COMPUTED_GOTO
namespace {

// Word predicates mirroring the builder's fusion pass. Re-checked against
// the actual program words at Load time as defense in depth: a plan entry
// that does not match (stale index, foreign plan) is skipped, never
// mis-quickened.
inline bool IsPlainWord(uint32_t w, Opcode op) {
  const uint32_t addr = w & 0x0FFFFFFFu;
  return (w >> 28) == static_cast<uint32_t>(op) && addr >= kProgramOrigin &&
         addr < kMemoryWords;
}
inline bool IsMappedWord(uint32_t w, Opcode op, uint32_t addr) {
  return w == Instr(op, addr);
}

bool FusionMatches(const uint32_t* w, uint8_t nibble) {
  switch (nibble) {
    case kFusedClc:
      return IsMappedWord(w[0], kLd, 0) && IsMappedWord(w[1], kSt, 2);
    case kFusedStClc:
      return IsPlainWord(w[0], kSt) && IsMappedWord(w[1], kLd, 0) &&
             IsMappedWord(w[2], kSt, 2);
    case kFusedLdSbb:
      return IsPlainWord(w[0], kLd) && IsPlainWord(w[1], kSbb);
    case kFusedLdSt:
      return IsPlainWord(w[0], kLd) && IsPlainWord(w[1], kSt);
    case kFusedSbbSt:
      return IsPlainWord(w[0], kSbb) && IsPlainWord(w[1], kSt);
    case kFusedLdAnd:
      return IsPlainWord(w[0], kLd) && IsPlainWord(w[1], kAnd);
    case kFusedAndSt:
      return IsPlainWord(w[0], kAnd) && IsPlainWord(w[1], kSt);
    case kFusedStLd:
      return IsPlainWord(w[0], kSt) && IsPlainWord(w[1], kLd);
    case kFusedMaskAnd:
      return IsMappedWord(w[0], kLd, 2) && IsPlainWord(w[1], kAnd);
    case kFusedLdJmp:
      return IsPlainWord(w[0], kLd) && IsMappedWord(w[1], kSt, 1);
    case kFusedSbbJmp:
      return IsPlainWord(w[0], kSbb) && IsMappedWord(w[1], kSt, 1);
    case kFusedStSt:
      return IsPlainWord(w[0], kSt) && IsPlainWord(w[1], kSt);
    default:
      return false;
  }
}

}  // namespace
#endif  // ULE_USE_COMPUTED_GOTO

Status Machine::LoadImpl(const Program& program, bool zero_dirty) {
  if (program.words.size() > kMemoryWords - kProgramOrigin) {
    return Status::InvalidArgument("VeRisc program exceeds memory");
  }
  const uint32_t program_end =
      kProgramOrigin + static_cast<uint32_t>(program.words.size());
  std::copy(program.words.begin(), program.words.end(),
            mem_.begin() + kProgramOrigin);
  if (zero_dirty) {
    if (dirty_end_ > program_end) {
      std::fill(mem_.begin() + program_end, mem_.begin() + dirty_end_, 0u);
    }
    dirty_end_ = program_end;
  } else if (dirty_end_ < program_end) {
    dirty_end_ = program_end;
  }
#if ULE_USE_COMPUTED_GOTO
  // Quicken fusible sequences in machine memory (the Program is untouched:
  // serialization and foreign VMs keep seeing pure 4-instruction words).
  for (const Program::Fusion& f : program.fusion_plan) {
    const size_t len = f.nibble == kFusedStClc ? 3 : 2;
    if (f.index > program.words.size() || program.words.size() - f.index < len) {
      continue;
    }
    const uint32_t* w = program.words.data() + f.index;
    if (!FusionMatches(w, f.nibble)) continue;
    mem_[kProgramOrigin + f.index] =
        (static_cast<uint32_t>(f.nibble) << 28) | (w[0] & 0x0FFFFFFFu);
  }
#endif
  r_ = 0;
  borrow_ = 0;
  pc_ = kProgramOrigin;
  steps_ = 0;
  fused_ = 0;
  slices_ = 0;
  ++load_seq_;
  state_ = MachineState::kReady;
  default_in_.Reset({});
  default_out_.Clear();
  in_ = &default_in_;
  out_ = &default_out_;
  return Status::OK();
}

Status Machine::Load(const Program& program) { return LoadImpl(program, true); }

Status Machine::LoadNoZero(const Program& program) {
  return LoadImpl(program, false);
}

void Machine::WriteWords(uint32_t addr, const uint32_t* words, size_t count) {
  assert(addr <= kMemoryWords && count <= kMemoryWords - addr);
  std::copy(words, words + count, mem_.begin() + addr);
  const uint32_t end = addr + static_cast<uint32_t>(count);
  if (end > dirty_end_) dirty_end_ = end;
}

void Machine::SetInput(BytesView input) {
  default_in_.Reset(input);
  in_ = &default_in_;
}

void Machine::SetPorts(InputPort* input, OutputPort* output) {
  in_ = input != nullptr ? input : &default_in_;
  out_ = output != nullptr ? output : &default_out_;
}

MachineState Machine::RunFor(uint64_t budget) {
  if (state_ == MachineState::kHalted || state_ == MachineState::kFault) {
    return state_;
  }
  ++slices_;
  uint32_t* const mem = mem_.data();
  InputPort* const in = in_;
  OutputPort* const out = out_;
  uint32_t r = r_;
  uint32_t borrow = borrow_;
  uint32_t pc = pc_;
  // Bitwise-OR accumulator over store addresses: one ALU op per store, and
  // `dirty_top + 1` still bounds every dirtied index from above (the OR of
  // a set of values is >= each of them).
  uint32_t dirty_top = dirty_end_ - 1;
  uint64_t remaining = budget;
  uint64_t fused_acc = 0;
  MachineState state;
  uint32_t word;
  uint32_t addr;

#if ULE_USE_COMPUTED_GOTO
  // Direct-threaded core: each handler re-dispatches itself, so there is
  // no central loop branch to mispredict and the plain-memory handlers
  // never touch the mapped-address logic.
  //
  // Dispatch key: with bits 27..20 checked zero, `word >> 27` is exactly
  // nibble*2; the address-class bit ((addr + 0xFFFF0) >> 20 is 1 iff
  // addr >= 16) selects the mapped or plain-memory handler. Nibbles 4..15
  // are superinstructions installed by Load-time quickening (only ever at
  // the operand class their first constituent uses); every other slot
  // faults, preserving the spec's illegal-opcode semantics for plain
  // programs.
  //
  // Fused handlers charge budget per *constituent* instruction, so step
  // accounting is identical to the unfused program. When the budget runs
  // out mid-sequence they pause with PC on the next constituent — a real
  // instruction word (quickening only rewrites the first word of a
  // sequence), so the resumed slice executes the tail unfused and the
  // architectural state stays exactly that of the plain program.
  static const void* const kTargets[32] = {
      &&op_ld_mapped,      &&op_ld_mem,       // 0 LD
      &&op_st_mapped,      &&op_st_mem,       // 1 ST
      &&op_sbb_mapped,     &&op_sbb_mem,      // 2 SBB
      &&op_and_mapped,     &&op_and_mem,      // 3 AND
      &&op_fused_clc,      &&op_illegal,      // 4 LD[0];ST[2]
      &&op_illegal,        &&op_fused_st_clc, // 5 ST a;LD[0];ST[2]
      &&op_illegal,        &&op_fused_ld_sbb, // 6 LD a;SBB b
      &&op_illegal,        &&op_fused_ld_st,  // 7 LD a;ST b
      &&op_illegal,        &&op_fused_sbb_st, // 8 SBB a;ST b
      &&op_illegal,        &&op_fused_ld_and, // 9 LD a;AND b
      &&op_illegal,        &&op_fused_and_st, // 10 AND a;ST b
      &&op_illegal,        &&op_fused_st_ld,  // 11 ST a;LD b
      &&op_fused_mask_and, &&op_illegal,      // 12 LD[2];AND a
      &&op_illegal,        &&op_fused_ld_jmp, // 13 LD a;ST[1]
      &&op_illegal,        &&op_fused_sbb_jmp,// 14 SBB a;ST[1]
      &&op_illegal,        &&op_fused_st_st,  // 15 ST a;ST b
  };
  // Pin the table base in a register: without the barrier GCC re-forms the
  // rip-relative address at every dispatch site.
  const void* const* targets = kTargets;
  asm("" : "+r"(targets));

#define ULE_DISPATCH()                                                \
  do {                                                                \
    if (ULE_UNLIKELY(remaining == 0)) goto out_paused;                \
    word = mem[pc];                                                   \
    ++pc;                                                             \
    --remaining;                                                      \
    if (ULE_UNLIKELY((word & kBadAddrMask) != 0)) goto out_fault;     \
    addr = word & kAddrMask;                                          \
    goto* targets[(word >> 27) + ((addr + 0xFFFF0u) >> 20)];          \
  } while (0)

// Charges and fetches the second (or third) constituent of a fused
// sequence; pauses on the architectural boundary when the budget is gone.
#define ULE_FUSE_NEXT(consumed)                                       \
  do {                                                                \
    if (ULE_UNLIKELY(remaining == 0)) {                               \
      fused_acc += (consumed);                                        \
      goto out_paused;                                                \
    }                                                                 \
    --remaining;                                                      \
    word = mem[pc];                                                   \
    ++pc;                                                             \
    addr = word & kAddrMask;                                          \
  } while (0)

  ULE_DISPATCH();

op_ld_mem:
  r = mem[addr];
  ULE_DISPATCH();
op_ld_mapped:
  r = ReadMapped(addr, pc, borrow, in);
  ULE_DISPATCH();
op_st_mem:
  mem[addr] = r;
  dirty_top |= addr;
  ULE_DISPATCH();
op_st_mapped:
  switch (addr) {
    case 1:
      pc = r & (kMemoryWords - 1);
      break;
    case 2:
      borrow = r & 1u;
      break;
    case 4:
      out->WriteByte(static_cast<uint8_t>(r & 0xFFu));
      break;
    case 5:
      goto out_halted;
    default:
      break;  // writes to 0, 3, 6..15 ignored
  }
  ULE_DISPATCH();
op_sbb_mem: {
  const uint64_t rhs = static_cast<uint64_t>(mem[addr]) + borrow;
  borrow = r < rhs ? 1u : 0u;
  r = static_cast<uint32_t>(r - rhs);
  ULE_DISPATCH();
}
op_sbb_mapped: {
  const uint64_t rhs =
      static_cast<uint64_t>(ReadMapped(addr, pc, borrow, in)) + borrow;
  borrow = r < rhs ? 1u : 0u;
  r = static_cast<uint32_t>(r - rhs);
  ULE_DISPATCH();
}
op_and_mem:
  r &= mem[addr];
  ULE_DISPATCH();
op_and_mapped:
  r &= ReadMapped(addr, pc, borrow, in);
  ULE_DISPATCH();

  // ---- fused superinstructions (Load-time quickening) ----
  // Second/third operands are fetched live from the intact tail words, so
  // self-modification of operand fields behaves exactly as unfused.

op_fused_clc:  // LD [0]; ST [2]
  r = 0;
  if (ULE_UNLIKELY(remaining == 0)) {
    ++fused_acc;
    goto out_paused;
  }
  --remaining;
  ++pc;
  borrow = 0;
  fused_acc += 2;
  ULE_DISPATCH();
op_fused_st_clc:  // ST a; LD [0]; ST [2]
  mem[addr] = r;
  dirty_top |= addr;
  if (ULE_UNLIKELY(remaining == 0)) {
    ++fused_acc;
    goto out_paused;
  }
  --remaining;
  ++pc;
  r = 0;
  if (ULE_UNLIKELY(remaining == 0)) {
    fused_acc += 2;
    goto out_paused;
  }
  --remaining;
  ++pc;
  borrow = 0;
  fused_acc += 3;
  ULE_DISPATCH();
op_fused_ld_sbb: {  // LD a; SBB b
  r = mem[addr];
  ULE_FUSE_NEXT(1);
  const uint64_t rhs = static_cast<uint64_t>(mem[addr]) + borrow;
  borrow = r < rhs ? 1u : 0u;
  r = static_cast<uint32_t>(r - rhs);
  fused_acc += 2;
  ULE_DISPATCH();
}
op_fused_ld_st:  // LD a; ST b
  r = mem[addr];
  ULE_FUSE_NEXT(1);
  mem[addr] = r;
  dirty_top |= addr;
  fused_acc += 2;
  ULE_DISPATCH();
op_fused_sbb_st: {  // SBB a; ST b
  const uint64_t rhs = static_cast<uint64_t>(mem[addr]) + borrow;
  borrow = r < rhs ? 1u : 0u;
  r = static_cast<uint32_t>(r - rhs);
  ULE_FUSE_NEXT(1);
  mem[addr] = r;
  dirty_top |= addr;
  fused_acc += 2;
  ULE_DISPATCH();
}
op_fused_ld_and:  // LD a; AND b
  r = mem[addr];
  ULE_FUSE_NEXT(1);
  r &= mem[addr];
  fused_acc += 2;
  ULE_DISPATCH();
op_fused_and_st:  // AND a; ST b
  r &= mem[addr];
  ULE_FUSE_NEXT(1);
  mem[addr] = r;
  dirty_top |= addr;
  fused_acc += 2;
  ULE_DISPATCH();
op_fused_st_ld:  // ST a; LD b
  mem[addr] = r;
  dirty_top |= addr;
  ULE_FUSE_NEXT(1);
  r = mem[addr];
  fused_acc += 2;
  ULE_DISPATCH();
op_fused_mask_and:  // LD [2]; AND a
  r = borrow ? 0xFFFFFFFFu : 0u;
  ULE_FUSE_NEXT(1);
  r &= mem[addr];
  fused_acc += 2;
  ULE_DISPATCH();
op_fused_ld_jmp:  // LD a; ST [1]
  r = mem[addr];
  if (ULE_UNLIKELY(remaining == 0)) {
    ++fused_acc;
    goto out_paused;
  }
  --remaining;
  pc = r & (kMemoryWords - 1);
  fused_acc += 2;
  ULE_DISPATCH();
op_fused_sbb_jmp: {  // SBB a; ST [1]
  const uint64_t rhs = static_cast<uint64_t>(mem[addr]) + borrow;
  borrow = r < rhs ? 1u : 0u;
  r = static_cast<uint32_t>(r - rhs);
  if (ULE_UNLIKELY(remaining == 0)) {
    ++fused_acc;
    goto out_paused;
  }
  --remaining;
  pc = r & (kMemoryWords - 1);
  fused_acc += 2;
  ULE_DISPATCH();
}
op_fused_st_st:  // ST a; ST b
  mem[addr] = r;
  dirty_top |= addr;
  ULE_FUSE_NEXT(1);
  mem[addr] = r;
  dirty_top |= addr;
  fused_acc += 2;
  ULE_DISPATCH();

op_illegal:
  goto out_fault;

#undef ULE_FUSE_NEXT
#undef ULE_DISPATCH

#else  // !ULE_USE_COMPUTED_GOTO

  // Portable core: same opcode×address-class specialization, one switch.
  for (;;) {
    if (ULE_UNLIKELY(remaining == 0)) goto out_paused;
    word = mem[pc];
    ++pc;
    --remaining;
    if (ULE_UNLIKELY((word & kIllegalMask) != 0)) goto out_fault;
    addr = word & kAddrMask;
    // For a legal word bit 27 is zero, so `word >> 27` is exactly op*2.
    switch ((word >> 27) | (addr >= 16u ? 1u : 0u)) {
      case 0:  // LD mapped
        r = ReadMapped(addr, pc, borrow, in);
        break;
      case 1:  // LD memory
        r = mem[addr];
        break;
      case 2:  // ST mapped
        switch (addr) {
          case 1:
            pc = r & (kMemoryWords - 1);
            break;
          case 2:
            borrow = r & 1u;
            break;
          case 4:
            out->WriteByte(static_cast<uint8_t>(r & 0xFFu));
            break;
          case 5:
            goto out_halted;
          default:
            break;  // writes to 0, 3, 6..15 ignored
        }
        break;
      case 3:  // ST memory
        mem[addr] = r;
        dirty_top |= addr;
        break;
      case 4: {  // SBB mapped
        const uint64_t rhs =
            static_cast<uint64_t>(ReadMapped(addr, pc, borrow, in)) + borrow;
        borrow = r < rhs ? 1u : 0u;
        r = static_cast<uint32_t>(r - rhs);
        break;
      }
      case 5: {  // SBB memory
        const uint64_t rhs = static_cast<uint64_t>(mem[addr]) + borrow;
        borrow = r < rhs ? 1u : 0u;
        r = static_cast<uint32_t>(r - rhs);
        break;
      }
      case 6:  // AND mapped
        r &= ReadMapped(addr, pc, borrow, in);
        break;
      case 7:  // AND memory
        r &= mem[addr];
        break;
    }
  }

#endif  // ULE_USE_COMPUTED_GOTO

out_paused:
  state = MachineState::kPaused;
  goto out_done;
out_halted:
  state = MachineState::kHalted;
  goto out_done;
out_fault:
  state = MachineState::kFault;
  // A fault from fetching the guard word is the out-of-range-PC fault; the
  // reference semantics do not count that attempted fetch as a step.
  if (pc == kMemoryWords + 1) {
    ++remaining;
    pc = kMemoryWords;
  }
  goto out_done;
out_done:
  r_ = r;
  borrow_ = borrow;
  pc_ = pc;
  dirty_end_ = dirty_top + 1;
  steps_ += budget - remaining;
  fused_ += fused_acc;
  state_ = state;
  return state;
}

Result<RunResult> Machine::RunProgram(const Program& program, BytesView input,
                                      const RunOptions& options) {
  ULE_RETURN_IF_ERROR(Load(program));
  SetInput(input);
  const MachineState st = RunFor(options.max_steps);
  RunResult result;
  result.output = TakeOutput();
  switch (st) {
    case MachineState::kHalted:
      result.reason = StopReason::kHalted;
      result.steps = steps_;
      break;
    case MachineState::kFault:
      result.reason = StopReason::kFault;
      result.steps = steps_;
      break;
    default:
      result.reason = StopReason::kStepLimit;
      result.steps = options.max_steps;
      break;
  }
  return result;
}

Machine& ThreadLocalMachine() {
  thread_local Machine machine;
  return machine;
}

}  // namespace verisc
}  // namespace ule
