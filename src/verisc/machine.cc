#include "verisc/machine.h"

#include <algorithm>
#include <atomic>

namespace ule {
namespace verisc {
namespace {

/// An instruction word is legal iff its opcode (top 4 bits) is <= 3 and its
/// address (low 28 bits) is < 2^20: both conditions collapse into "none of
/// bits 31,30 (opcode >= 4) or 27..20 (address >= 2^20) are set".
inline constexpr uint32_t kIllegalMask = 0xCFF00000u;
/// With kIllegalMask checked, the address fits in the low 20 bits.
inline constexpr uint32_t kAddrMask = 0x000FFFFFu;

#if defined(__GNUC__) || defined(__clang__)
#define ULE_UNLIKELY(x) __builtin_expect(!!(x), 0)
#else
#define ULE_UNLIKELY(x) (x)
#endif

/// Read interception for the mapped addresses 0..15. Only LD/SBB/AND reach
/// this (ST never reads its operand), so the input port is consumed exactly
/// once per reading instruction, as the spec requires.
inline uint32_t ReadMapped(uint32_t addr, uint32_t pc, uint32_t borrow,
                           InputPort* in) {
  switch (addr) {
    case 1:
      return pc;  // address of the next instruction (PC already advanced)
    case 2:
      return borrow ? 0xFFFFFFFFu : 0u;
    case 3:
      return in->ReadByte();
    default:
      return 0;  // 0, 4, 5, 6..15
  }
}

}  // namespace

// One guard word past the end of memory. PC only leaves [0, kMemoryWords)
// by incrementing past the last word (stores to PC are masked), so fetching
// the guard — an illegal instruction — is exactly the out-of-range-PC fault,
// and the dispatch core needs no per-instruction PC bounds check.
namespace {
std::atomic<uint64_t> g_machines_constructed{0};
}  // namespace

Machine::Machine() : mem_(kMemoryWords + 1, 0) {
  mem_[kMemoryWords] = 0xFFFFFFFFu;
  g_machines_constructed.fetch_add(1, std::memory_order_relaxed);
}

uint64_t Machine::TotalConstructed() {
  return g_machines_constructed.load(std::memory_order_relaxed);
}

Status Machine::Load(const Program& program) {
  if (program.words.size() > kMemoryWords - kProgramOrigin) {
    return Status::InvalidArgument("VeRisc program exceeds memory");
  }
  const uint32_t program_end =
      kProgramOrigin + static_cast<uint32_t>(program.words.size());
  std::copy(program.words.begin(), program.words.end(),
            mem_.begin() + kProgramOrigin);
  if (dirty_end_ > program_end) {
    std::fill(mem_.begin() + program_end, mem_.begin() + dirty_end_, 0u);
  }
  dirty_end_ = program_end;
  r_ = 0;
  borrow_ = 0;
  pc_ = kProgramOrigin;
  steps_ = 0;
  state_ = MachineState::kReady;
  default_in_.Reset({});
  default_out_.Clear();
  in_ = &default_in_;
  out_ = &default_out_;
  return Status::OK();
}

void Machine::SetInput(BytesView input) {
  default_in_.Reset(input);
  in_ = &default_in_;
}

void Machine::SetPorts(InputPort* input, OutputPort* output) {
  in_ = input != nullptr ? input : &default_in_;
  out_ = output != nullptr ? output : &default_out_;
}

#if defined(ULE_THREADED_DISPATCH) && (defined(__GNUC__) || defined(__clang__))
#define ULE_USE_COMPUTED_GOTO 1
#else
#define ULE_USE_COMPUTED_GOTO 0
#endif

MachineState Machine::RunFor(uint64_t budget) {
  if (state_ == MachineState::kHalted || state_ == MachineState::kFault) {
    return state_;
  }
  uint32_t* const mem = mem_.data();
  InputPort* const in = in_;
  OutputPort* const out = out_;
  uint32_t r = r_;
  uint32_t borrow = borrow_;
  uint32_t pc = pc_;
  // Bitwise-OR accumulator over store addresses: one ALU op per store, and
  // `dirty_top + 1` still bounds every dirtied index from above (the OR of
  // a set of values is >= each of them).
  uint32_t dirty_top = dirty_end_ - 1;
  uint64_t remaining = budget;
  MachineState state;
  uint32_t word;
  uint32_t addr;

#if ULE_USE_COMPUTED_GOTO
  // Direct-threaded core: each handler re-dispatches itself, so there is
  // no central loop branch to mispredict and the plain-memory handlers
  // never touch the mapped-address logic.
  //
  // Dispatch key: for a legal word bit 27 is zero, so `word >> 27` is
  // exactly opcode*2; the address-class bit ((addr + 0xFFFF0) >> 20 is 1
  // iff addr >= 16) selects the mapped or plain-memory handler.
  static const void* const kTargets[8] = {
      &&op_ld_mapped,  &&op_ld_mem,  &&op_st_mapped,  &&op_st_mem,
      &&op_sbb_mapped, &&op_sbb_mem, &&op_and_mapped, &&op_and_mem};
  // Pin the table base in a register: without the barrier GCC re-forms the
  // rip-relative address at every dispatch site.
  const void* const* targets = kTargets;
  asm("" : "+r"(targets));

#define ULE_DISPATCH()                                                \
  do {                                                                \
    if (ULE_UNLIKELY(remaining == 0)) goto out_paused;                \
    word = mem[pc];                                                   \
    ++pc;                                                             \
    --remaining;                                                      \
    if (ULE_UNLIKELY((word & kIllegalMask) != 0)) goto out_fault;     \
    addr = word & kAddrMask;                                          \
    goto* targets[(word >> 27) + ((addr + 0xFFFF0u) >> 20)];          \
  } while (0)

  ULE_DISPATCH();

op_ld_mem:
  r = mem[addr];
  ULE_DISPATCH();
op_ld_mapped:
  r = ReadMapped(addr, pc, borrow, in);
  ULE_DISPATCH();
op_st_mem:
  mem[addr] = r;
  dirty_top |= addr;
  ULE_DISPATCH();
op_st_mapped:
  switch (addr) {
    case 1:
      pc = r & (kMemoryWords - 1);
      break;
    case 2:
      borrow = r & 1u;
      break;
    case 4:
      out->WriteByte(static_cast<uint8_t>(r & 0xFFu));
      break;
    case 5:
      goto out_halted;
    default:
      break;  // writes to 0, 3, 6..15 ignored
  }
  ULE_DISPATCH();
op_sbb_mem: {
  const uint64_t rhs = static_cast<uint64_t>(mem[addr]) + borrow;
  borrow = r < rhs ? 1u : 0u;
  r = static_cast<uint32_t>(r - rhs);
  ULE_DISPATCH();
}
op_sbb_mapped: {
  const uint64_t rhs =
      static_cast<uint64_t>(ReadMapped(addr, pc, borrow, in)) + borrow;
  borrow = r < rhs ? 1u : 0u;
  r = static_cast<uint32_t>(r - rhs);
  ULE_DISPATCH();
}
op_and_mem:
  r &= mem[addr];
  ULE_DISPATCH();
op_and_mapped:
  r &= ReadMapped(addr, pc, borrow, in);
  ULE_DISPATCH();

#undef ULE_DISPATCH

#else  // !ULE_USE_COMPUTED_GOTO

  // Portable core: same opcode×address-class specialization, one switch.
  for (;;) {
    if (ULE_UNLIKELY(remaining == 0)) goto out_paused;
    word = mem[pc];
    ++pc;
    --remaining;
    if (ULE_UNLIKELY((word & kIllegalMask) != 0)) goto out_fault;
    addr = word & kAddrMask;
    // For a legal word bit 27 is zero, so `word >> 27` is exactly op*2.
    switch ((word >> 27) | (addr >= 16u ? 1u : 0u)) {
      case 0:  // LD mapped
        r = ReadMapped(addr, pc, borrow, in);
        break;
      case 1:  // LD memory
        r = mem[addr];
        break;
      case 2:  // ST mapped
        switch (addr) {
          case 1:
            pc = r & (kMemoryWords - 1);
            break;
          case 2:
            borrow = r & 1u;
            break;
          case 4:
            out->WriteByte(static_cast<uint8_t>(r & 0xFFu));
            break;
          case 5:
            goto out_halted;
          default:
            break;  // writes to 0, 3, 6..15 ignored
        }
        break;
      case 3:  // ST memory
        mem[addr] = r;
        dirty_top |= addr;
        break;
      case 4: {  // SBB mapped
        const uint64_t rhs =
            static_cast<uint64_t>(ReadMapped(addr, pc, borrow, in)) + borrow;
        borrow = r < rhs ? 1u : 0u;
        r = static_cast<uint32_t>(r - rhs);
        break;
      }
      case 5: {  // SBB memory
        const uint64_t rhs = static_cast<uint64_t>(mem[addr]) + borrow;
        borrow = r < rhs ? 1u : 0u;
        r = static_cast<uint32_t>(r - rhs);
        break;
      }
      case 6:  // AND mapped
        r &= ReadMapped(addr, pc, borrow, in);
        break;
      case 7:  // AND memory
        r &= mem[addr];
        break;
    }
  }

#endif  // ULE_USE_COMPUTED_GOTO

out_paused:
  state = MachineState::kPaused;
  goto out_done;
out_halted:
  state = MachineState::kHalted;
  goto out_done;
out_fault:
  state = MachineState::kFault;
  // A fault from fetching the guard word is the out-of-range-PC fault; the
  // reference semantics do not count that attempted fetch as a step.
  if (pc == kMemoryWords + 1) {
    ++remaining;
    pc = kMemoryWords;
  }
  goto out_done;
out_done:
  r_ = r;
  borrow_ = borrow;
  pc_ = pc;
  dirty_end_ = dirty_top + 1;
  steps_ += budget - remaining;
  state_ = state;
  return state;
}

Result<RunResult> Machine::RunProgram(const Program& program, BytesView input,
                                      const RunOptions& options) {
  ULE_RETURN_IF_ERROR(Load(program));
  SetInput(input);
  const MachineState st = RunFor(options.max_steps);
  RunResult result;
  result.output = TakeOutput();
  switch (st) {
    case MachineState::kHalted:
      result.reason = StopReason::kHalted;
      result.steps = steps_;
      break;
    case MachineState::kFault:
      result.reason = StopReason::kFault;
      result.steps = steps_;
      break;
    default:
      result.reason = StopReason::kStepLimit;
      result.steps = options.max_steps;
      break;
  }
  return result;
}

Machine& ThreadLocalMachine() {
  thread_local Machine machine;
  return machine;
}

}  // namespace verisc
}  // namespace ule
