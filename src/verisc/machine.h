/// \file machine.h
/// \brief The reusable VeRisc execution engine.
///
/// `verisc::Run` (verisc.h) is the library's one-shot reference entry
/// point; this header is the engine underneath it. A `Machine` owns the
/// 2^20-word memory image once and reuses it across `Load` calls (only the
/// dirtied region is re-zeroed), exposes the input/output ports as
/// pluggable interfaces, and executes through a specialized
/// opcode×address-class dispatch core: every instruction is routed to one
/// of eight handlers (LD/ST/SBB/AND × mapped/plain-memory), so the
/// per-instruction mapped-address interception of the naive interpreter
/// disappears from the plain-memory fast path. When the library is built
/// with `ULE_THREADED_DISPATCH` (default on GNU/Clang, see the CMake
/// option), the core additionally uses computed-goto direct threading.
///
/// Callers that only need the paper semantics should keep using
/// `verisc::Run`; it is a thin adapter over a per-thread Machine. Callers
/// that drive long emulations (the nested DynaRisc-in-VeRisc pipeline)
/// use `RunFor` to execute in bounded slices and observe progress between
/// slices.

#ifndef ULE_VERISC_MACHINE_H_
#define ULE_VERISC_MACHINE_H_

#include <cstdint>
#include <vector>

#include "support/bytes.h"
#include "support/status.h"
#include "verisc/verisc.h"

namespace ule {
namespace verisc {

/// Source of bytes for the memory-mapped input port (address 3).
class InputPort {
 public:
  virtual ~InputPort() = default;
  /// Returns the next byte (0..255), or 0xFFFFFFFF at end of input.
  virtual uint32_t ReadByte() = 0;
};

/// Sink for bytes written to the memory-mapped output port (address 4).
class OutputPort {
 public:
  virtual ~OutputPort() = default;
  virtual void WriteByte(uint8_t byte) = 0;
};

/// InputPort over a non-owned byte view (the spec's default behaviour).
class BytesInputPort final : public InputPort {
 public:
  BytesInputPort() = default;
  explicit BytesInputPort(BytesView bytes) : bytes_(bytes) {}
  void Reset(BytesView bytes) {
    bytes_ = bytes;
    pos_ = 0;
  }
  uint32_t ReadByte() override {
    return pos_ < bytes_.size() ? bytes_[pos_++] : 0xFFFFFFFFu;
  }

 private:
  BytesView bytes_;
  size_t pos_ = 0;
};

/// OutputPort that appends into an owned buffer.
class BytesOutputPort final : public OutputPort {
 public:
  void WriteByte(uint8_t byte) override { bytes_.push_back(byte); }
  const Bytes& bytes() const { return bytes_; }
  Bytes TakeBytes() { return std::move(bytes_); }
  void Clear() { bytes_.clear(); }

 private:
  Bytes bytes_;
};

/// Machine status after a `RunFor` slice.
enum class MachineState {
  kReady,   ///< loaded, no instruction executed yet
  kPaused,  ///< slice budget exhausted; call RunFor again to continue
  kHalted,  ///< program wrote the halt port
  kFault,   ///< illegal opcode/address or PC out of range
};

/// \brief A VeRisc machine with reusable memory and pluggable ports.
///
/// Not thread-safe; use one Machine per thread (see ThreadLocalMachine).
class Machine {
 public:
  /// Allocates (and zeroes) the 4 MiB memory image once.
  Machine();

  /// Machines constructed process-wide since start. Each construction is a
  /// 4 MiB allocate-and-zero, so the pipeline keeps this flat: the pool
  /// persistence tests assert that consecutive parallel stages reuse the
  /// per-thread machines instead of building new ones.
  static uint64_t TotalConstructed();

  /// \brief Loads `program` at kProgramOrigin and resets R/B/PC/steps.
  ///
  /// Memory is reused: only the region dirtied by previous loads/stores is
  /// re-zeroed, which makes repeated (e.g. nested-emulation) runs cheap.
  /// Ports are reset to the built-in byte-buffer ports with empty input.
  /// When the program carries a fusion plan and the engine was built with
  /// computed-goto dispatch, fusible sequences are quickened in place (in
  /// machine memory only — `program` itself is never modified).
  Status Load(const Program& program);

  /// \brief Load variant that skips the dirty-region re-zero.
  ///
  /// The caller promises to overwrite — or not depend on — every word it
  /// previously dirtied beyond the program image. Used by the warm-start
  /// nested interpreter, which re-pokes its guest image and decode tables
  /// each frame and keeps its large static tables across frames.
  Status LoadNoZero(const Program& program);

  /// Monotonic count of Load/LoadNoZero calls on this machine. Lets a
  /// caller detect whether anyone else re-loaded the machine since it last
  /// set up resident state (e.g. the warm interpreter's static tables).
  uint64_t load_seq() const { return load_seq_; }

  /// \brief Writes `count` words at absolute address `addr`.
  ///
  /// Host-side state injection (decode tables, guest images, entry-point
  /// cells); extends the dirty region so a later Load re-zeroes it.
  void WriteWords(uint32_t addr, const uint32_t* words, size_t count);

  /// Feeds `input` to the built-in input port. The view is not copied and
  /// must outlive the run.
  void SetInput(BytesView input);

  /// Plugs caller-owned ports (not owned; nullptr restores the built-in
  /// port). Allows streaming I/O without materialising buffers.
  void SetPorts(InputPort* input, OutputPort* output);

  /// \brief Executes up to `budget` further instructions.
  ///
  /// Returns kPaused when the budget ran out (the machine can continue),
  /// kHalted/kFault when the program stopped. Calling RunFor again after
  /// kHalted/kFault returns the same state without executing anything.
  MachineState RunFor(uint64_t budget);

  /// Instructions executed since the last Load.
  uint64_t steps() const { return steps_; }
  /// Current machine state (kReady until the first RunFor).
  MachineState state() const { return state_; }

  /// Per-run execution statistics (reset by Load/LoadNoZero).
  struct RunStats {
    uint64_t retired = 0;  ///< instructions executed (== steps())
    uint64_t fused = 0;    ///< of those, retired inside fused handlers
    uint64_t slices = 0;   ///< RunFor calls that entered the core
    uint64_t faults = 0;   ///< 1 when the run ended in kFault
  };
  /// Statistics for the run since the last Load — the dispatch-core
  /// instrumentation benches use to report fusion coverage.
  RunStats LastRunStats() const {
    return RunStats{steps_, fused_, slices_,
                    state_ == MachineState::kFault ? 1ull : 0ull};
  }

  /// Bytes written to the built-in output port since the last Load.
  const Bytes& output() const { return default_out_.bytes(); }
  Bytes TakeOutput() { return default_out_.TakeBytes(); }

  /// One-shot convenience preserving the exact `verisc::Run` contract
  /// (reason/step accounting); reuses this machine's memory.
  Result<RunResult> RunProgram(const Program& program, BytesView input,
                               const RunOptions& options);

 private:
  Status LoadImpl(const Program& program, bool zero_dirty);

  std::vector<uint32_t> mem_;
  uint32_t r_ = 0;
  uint32_t borrow_ = 0;
  uint32_t pc_ = kProgramOrigin;
  uint64_t steps_ = 0;
  uint64_t fused_ = 0;
  uint64_t slices_ = 0;
  uint64_t load_seq_ = 0;
  /// One past the highest word that may be non-zero (for cheap re-zeroing).
  uint32_t dirty_end_ = kProgramOrigin;
  MachineState state_ = MachineState::kReady;

  BytesInputPort default_in_;
  BytesOutputPort default_out_;
  InputPort* in_ = &default_in_;
  OutputPort* out_ = &default_out_;
};

/// \brief Per-thread scratch Machine.
///
/// The 4 MiB memory image is allocated once per thread and reused by every
/// `verisc::Run` / nested-emulation call on that thread — the engine-level
/// fix for the "zero-fill and reallocate 4 MiB per nested Run" cost. Do
/// not hold the reference across calls that may themselves run VeRisc
/// programs (the machine is not reentrant).
Machine& ThreadLocalMachine();

}  // namespace verisc
}  // namespace ule

#endif  // ULE_VERISC_MACHINE_H_
