#include "core/micr_olonys.h"

#include <map>

#include "decoders/dbdecode.h"
#include "decoders/modecode.h"
#include "mocoder/detect.h"
#include "mocoder/outer.h"
#include "olonys/bootstrap.h"
#include "olonys/dynarisc_in_verisc.h"
#include "support/crc32.h"

namespace ule {
namespace core {

Result<Archive> ArchiveDump(const std::string& sql_dump,
                            const ArchiveOptions& options) {
  Archive archive;
  archive.emblem_options = options.emblem;
  archive.dump_bytes = sql_dump.size();

  // Step 2: DBCoder.
  ULE_ASSIGN_OR_RETURN(Bytes container,
                       dbcoder::Encode(ToBytes(sql_dump), options.scheme));
  archive.compressed_bytes = container.size();

  // Step 3: data emblems.
  ULE_ASSIGN_OR_RETURN(
      archive.data_emblems,
      mocoder::EncodeStream(container, mocoder::StreamId::kData,
                            options.emblem));

  // Steps 4-5: the DBDecode instruction stream becomes system emblems.
  const Bytes dbdecode_stream = decoders::DbDecodeProgram().Serialize();
  ULE_ASSIGN_OR_RETURN(
      archive.system_emblems,
      mocoder::EncodeStream(dbdecode_stream, mocoder::StreamId::kSystem,
                            options.emblem));

  // Step 6: Bootstrap document (MODecode + the DynaRisc emulator as text).
  archive.bootstrap_text = olonys::GenerateBootstrapText(
      olonys::DynaRiscInterpreter(), decoders::ModecodeProgram());

  // Step 7: render frames.
  if (options.render_images) {
    for (const auto& e : archive.data_emblems) {
      archive.data_images.push_back(mocoder::Render(e, options.emblem));
    }
    for (const auto& e : archive.system_emblems) {
      archive.system_images.push_back(mocoder::Render(e, options.emblem));
    }
  }
  return archive;
}

Result<std::string> RestoreNative(const std::vector<media::Image>& data_scans,
                                  const std::vector<media::Image>& system_scans,
                                  const mocoder::Options& emblem_options,
                                  RestoreStats* stats) {
  RestoreStats local;
  // The system stream is decoded too (it must match the in-tree decoder,
  // which the emulated path actually runs).
  if (!system_scans.empty()) {
    auto system = mocoder::DecodeImages(system_scans, mocoder::StreamId::kSystem,
                                        emblem_options, &local.system_stream);
    ULE_RETURN_IF_ERROR(system.status());
  }
  ULE_ASSIGN_OR_RETURN(
      Bytes container,
      mocoder::DecodeImages(data_scans, mocoder::StreamId::kData,
                            emblem_options, &local.data_stream));
  ULE_ASSIGN_OR_RETURN(Bytes dump, dbcoder::Decode(container));
  if (stats) *stats = local;
  return ToString(dump);
}

namespace {

/// Runs a DynaRisc program under nested emulation via the *parsed
/// Bootstrap* interpreter (not the in-tree one), accumulating step counts.
Result<Bytes> RunViaBootstrap(const verisc::Program& interpreter,
                              const dynarisc::Program& guest, BytesView input,
                              verisc::VmFunction vm, uint64_t* steps) {
  const Bytes packed = olonys::PackNestedInput(guest, input);
  verisc::RunOptions opts;
  opts.max_steps = 200'000'000'000ull;
  ULE_ASSIGN_OR_RETURN(verisc::RunResult r, vm(interpreter, packed, opts));
  if (steps) *steps += r.steps;
  if (r.reason != verisc::StopReason::kHalted) {
    return Status::ExecutionFault("nested emulation did not halt cleanly");
  }
  return std::move(r.output);
}

/// Decodes one stream of emblem scans with the archived MODecode program
/// (under nested emulation), then reassembles it with the outer code.
Result<Bytes> DecodeStreamEmulated(const std::vector<media::Image>& scans,
                                   mocoder::StreamId id,
                                   const mocoder::Options& emblem_options,
                                   const verisc::Program& interpreter,
                                   const dynarisc::Program& modecode,
                                   verisc::VmFunction vm,
                                   mocoder::DecodeStats* stats,
                                   uint64_t* steps) {
  const int n = emblem_options.data_side;
  const int blocks = mocoder::EmblemBlocks(n);
  const int capacity = mocoder::EmblemCapacity(n);
  std::map<uint16_t, Bytes> payloads;
  uint32_t stream_len = 0;
  bool have_len = false;
  mocoder::DecodeStats local;
  local.emblems_total = static_cast<int>(scans.size());

  for (const media::Image& scan : scans) {
    // Host-side preprocessing (Bootstrap step 5): sample the cell lattice.
    auto cells = mocoder::SampleEmblem(scan, n);
    if (!cells.ok()) continue;
    // Archived MODecode under nested emulation.
    const Bytes input = decoders::PackModecodeInput(cells.value(), n);
    auto container = RunViaBootstrap(interpreter, modecode, input, vm, steps);
    if (!container.ok()) continue;
    if (container.value().size() !=
        static_cast<size_t>(blocks) * 223) {
      continue;  // MODecode halted early: unrecoverable emblem
    }
    // Bootstrap-documented header parse + CRC check.
    auto header = mocoder::ParseHeader(container.value());
    if (!header.ok()) continue;
    if (header.value().stream != id) continue;
    Bytes payload(container.value().begin() + mocoder::kHeaderSize,
                  container.value().begin() + mocoder::kHeaderSize + capacity);
    if (Crc32(payload) != header.value().payload_crc) continue;
    local.emblems_decoded += 1;
    stream_len = header.value().stream_len;
    have_len = true;
    payloads[header.value().seq] = std::move(payload);
  }
  if (!have_len) {
    return Status::Corruption("no emblem of the requested stream decoded");
  }
  const int data_count = mocoder::DataEmblemCount(stream_len, capacity);
  int present = 0;
  for (const auto& [seq, payload] : payloads) {
    if (!mocoder::IsParitySlot(seq) && mocoder::DataIndexOf(seq) < data_count) {
      ++present;
    }
  }
  ULE_ASSIGN_OR_RETURN(
      Bytes stream, mocoder::ReassembleStream(payloads, stream_len, capacity));
  local.emblems_recovered = data_count - present;
  if (stats) *stats = local;
  return stream;
}

}  // namespace

Result<std::string> RestoreEmulated(
    const std::vector<media::Image>& data_scans,
    const std::vector<media::Image>& system_scans,
    const std::string& bootstrap_text, const mocoder::Options& emblem_options,
    RestoreStats* stats, verisc::VmFunction vm) {
  RestoreStats local;

  // Step 1-2 (Fig. 2b): parse the Bootstrap; it yields the DynaRisc
  // emulator (a VeRisc program) and the MODecode program.
  ULE_ASSIGN_OR_RETURN(olonys::ParsedBootstrap bootstrap,
                       olonys::ParseBootstrapText(bootstrap_text));

  // Step 4: system emblems -> the DBDecode program.
  ULE_ASSIGN_OR_RETURN(
      Bytes dbdecode_stream,
      DecodeStreamEmulated(system_scans, mocoder::StreamId::kSystem,
                           emblem_options, bootstrap.dynarisc_emulator,
                           bootstrap.mocoder, vm, &local.system_stream,
                           &local.emulated_steps));
  ULE_ASSIGN_OR_RETURN(dynarisc::Program dbdecode,
                       dynarisc::Program::Deserialize(dbdecode_stream));

  // Step 5: data emblems -> DBCoder container -> DBDecode -> SQL text.
  ULE_ASSIGN_OR_RETURN(
      Bytes container,
      DecodeStreamEmulated(data_scans, mocoder::StreamId::kData,
                           emblem_options, bootstrap.dynarisc_emulator,
                           bootstrap.mocoder, vm, &local.data_stream,
                           &local.emulated_steps));
  ULE_ASSIGN_OR_RETURN(Bytes dump,
                       RunViaBootstrap(bootstrap.dynarisc_emulator, dbdecode,
                                       container, vm, &local.emulated_steps));
  if (stats) *stats = local;
  return ToString(dump);
}

}  // namespace core
}  // namespace ule
