#include "core/micr_olonys.h"

#include <map>

#include "decoders/dbdecode.h"
#include "decoders/modecode.h"
#include "mocoder/detect.h"
#include "mocoder/outer.h"
#include "olonys/bootstrap.h"
#include "olonys/dynarisc_in_verisc.h"
#include "support/crc32.h"
#include "support/parallel.h"

namespace ule {
namespace core {

Result<Archive> ArchiveDump(const std::string& sql_dump,
                            const ArchiveOptions& options) {
  ULE_RETURN_IF_ERROR(mocoder::ValidateOptions(options.emblem));
  Archive archive;
  archive.emblem_options = options.emblem;
  // The recorded options describe the archived *geometry*; the archiving
  // machine's thread count is not an archival parameter and must not leak
  // into (and silently serialize) a future restorer's environment.
  archive.emblem_options.threads = 0;
  archive.dump_bytes = sql_dump.size();

  // Step 2: DBCoder (sequential: everything downstream needs it).
  ULE_ASSIGN_OR_RETURN(Bytes container,
                       dbcoder::Encode(ToBytes(sql_dump), options.scheme));
  archive.compressed_bytes = container.size();

  // Steps 3-6 fan out across the two emblem streams and the Bootstrap
  // document; each task writes its own archive field. Emblem construction
  // inside each stream fans out further (mocoder::EncodeStream) on a
  // split thread budget, so the nesting does not oversubscribe the CPUs.
  const Bytes dbdecode_stream = decoders::DbDecodeProgram().Serialize();
  mocoder::Options inner_emblem = options.emblem;
  inner_emblem.threads = SplitThreads(options.emblem.threads, 2);
  ULE_RETURN_IF_ERROR(ParallelTasks(
      {
          // Step 3: data emblems.
          [&]() -> Status {
            ULE_ASSIGN_OR_RETURN(
                archive.data_emblems,
                mocoder::EncodeStream(container, mocoder::StreamId::kData,
                                      inner_emblem));
            return Status::OK();
          },
          // Steps 4-5: DBDecode instruction stream -> system emblems.
          [&]() -> Status {
            ULE_ASSIGN_OR_RETURN(
                archive.system_emblems,
                mocoder::EncodeStream(dbdecode_stream,
                                      mocoder::StreamId::kSystem,
                                      inner_emblem));
            return Status::OK();
          },
          // Step 6: Bootstrap document (MODecode + DynaRisc emulator).
          [&]() -> Status {
            archive.bootstrap_text = olonys::GenerateBootstrapText(
                olonys::DynaRiscInterpreter(), decoders::ModecodeProgram());
            return Status::OK();
          },
      },
      options.emblem.threads));

  // Step 7: render frames (parallel across emblems, deterministic order).
  if (options.render_images) {
    archive.data_images =
        mocoder::RenderAll(archive.data_emblems, options.emblem);
    archive.system_images =
        mocoder::RenderAll(archive.system_emblems, options.emblem);
  }
  return archive;
}

Result<std::string> RestoreNative(const std::vector<media::Image>& data_scans,
                                  const std::vector<media::Image>& system_scans,
                                  const mocoder::Options& emblem_options,
                                  RestoreStats* stats) {
  ULE_RETURN_IF_ERROR(mocoder::ValidateOptions(emblem_options));
  RestoreStats local;
  Bytes container;
  // The two streams decode concurrently; each decode parallelizes further
  // across its scans on a split thread budget. Stats land in per-stream
  // slots (no shared counters).
  mocoder::Options inner_options = emblem_options;
  inner_options.threads = SplitThreads(emblem_options.threads, 2);
  ULE_RETURN_IF_ERROR(ParallelTasks(
      {
          // The system stream is decoded too (it must match the in-tree
          // decoder, which the emulated path actually runs).
          [&]() -> Status {
            if (system_scans.empty()) return Status::OK();
            auto system = mocoder::DecodeImages(
                system_scans, mocoder::StreamId::kSystem, inner_options,
                &local.system_stream);
            return system.status();
          },
          [&]() -> Status {
            ULE_ASSIGN_OR_RETURN(
                container,
                mocoder::DecodeImages(data_scans, mocoder::StreamId::kData,
                                      inner_options, &local.data_stream));
            return Status::OK();
          },
      },
      emblem_options.threads));
  ULE_ASSIGN_OR_RETURN(Bytes dump, dbcoder::Decode(container));
  if (stats) *stats = local;
  return ToString(dump);
}

namespace {

/// Runs a DynaRisc program under nested emulation via the *parsed
/// Bootstrap* interpreter (not the in-tree one), accumulating step counts.
Result<Bytes> RunViaBootstrap(const verisc::Program& interpreter,
                              const dynarisc::Program& guest, BytesView input,
                              verisc::VmFunction vm, uint64_t* steps) {
  const Bytes packed = olonys::PackNestedInput(guest, input);
  verisc::RunOptions opts;
  opts.max_steps = 200'000'000'000ull;
  ULE_ASSIGN_OR_RETURN(verisc::RunResult r, vm(interpreter, packed, opts));
  if (steps) *steps += r.steps;
  if (r.reason != verisc::StopReason::kHalted) {
    return Status::ExecutionFault("nested emulation did not halt cleanly");
  }
  return std::move(r.output);
}

/// Decodes one stream of emblem scans with the archived MODecode program
/// (under nested emulation), then reassembles it with the outer code.
/// Per-scan nested decodes fan out across workers (each worker has its own
/// per-thread VeRisc machine); results merge serially in scan order.
Result<Bytes> DecodeStreamEmulated(const std::vector<media::Image>& scans,
                                   mocoder::StreamId id,
                                   const mocoder::Options& emblem_options,
                                   const verisc::Program& interpreter,
                                   const dynarisc::Program& modecode,
                                   verisc::VmFunction vm,
                                   mocoder::DecodeStats* stats,
                                   uint64_t* steps) {
  const int n = emblem_options.data_side;
  const int blocks = mocoder::EmblemBlocks(n);
  const int capacity = mocoder::EmblemCapacity(n);

  struct Decoded {
    bool ok = false;
    mocoder::EmblemHeader header;
    Bytes payload;
    uint64_t steps = 0;
  };
  std::vector<Decoded> decoded(scans.size());
  ULE_RETURN_IF_ERROR(ParallelFor(
      0, scans.size(),
      [&](size_t i) -> Status {
        Decoded& d = decoded[i];
        // Host-side preprocessing (Bootstrap step 5): sample the lattice.
        auto cells = mocoder::SampleEmblem(scans[i], n);
        if (!cells.ok()) return Status::OK();
        // Archived MODecode under nested emulation.
        const Bytes input = decoders::PackModecodeInput(cells.value(), n);
        auto container =
            RunViaBootstrap(interpreter, modecode, input, vm, &d.steps);
        if (!container.ok()) return Status::OK();
        if (container.value().size() != static_cast<size_t>(blocks) * 223) {
          return Status::OK();  // MODecode halted early: unrecoverable
        }
        // Bootstrap-documented header parse + CRC check.
        auto header = mocoder::ParseHeader(container.value());
        if (!header.ok()) return Status::OK();
        if (header.value().stream != id) return Status::OK();
        Bytes payload(
            container.value().begin() + mocoder::kHeaderSize,
            container.value().begin() + mocoder::kHeaderSize + capacity);
        if (Crc32(payload) != header.value().payload_crc) return Status::OK();
        d.ok = true;
        d.header = header.value();
        d.payload = std::move(payload);
        return Status::OK();
      },
      emblem_options.threads));

  std::map<uint16_t, Bytes> payloads;
  uint32_t stream_len = 0;
  bool have_len = false;
  mocoder::DecodeStats local;
  local.emblems_total = static_cast<int>(scans.size());
  for (Decoded& d : decoded) {
    if (steps) *steps += d.steps;
    if (!d.ok) continue;
    local.emblems_decoded += 1;
    stream_len = d.header.stream_len;
    have_len = true;
    payloads[d.header.seq] = std::move(d.payload);
  }
  if (!have_len) {
    return Status::Corruption("no emblem of the requested stream decoded");
  }
  const int data_count = mocoder::DataEmblemCount(stream_len, capacity);
  int present = 0;
  for (const auto& [seq, payload] : payloads) {
    if (!mocoder::IsParitySlot(seq) && mocoder::DataIndexOf(seq) < data_count) {
      ++present;
    }
  }
  ULE_ASSIGN_OR_RETURN(
      Bytes stream, mocoder::ReassembleStream(payloads, stream_len, capacity));
  local.emblems_recovered = data_count - present;
  if (stats) *stats = local;
  return stream;
}

}  // namespace

Result<std::string> RestoreEmulated(
    const std::vector<media::Image>& data_scans,
    const std::vector<media::Image>& system_scans,
    const std::string& bootstrap_text, const mocoder::Options& emblem_options,
    RestoreStats* stats, verisc::VmFunction vm) {
  ULE_RETURN_IF_ERROR(mocoder::ValidateOptions(emblem_options));
  RestoreStats local;

  // Step 1-2 (Fig. 2b): parse the Bootstrap; it yields the DynaRisc
  // emulator (a VeRisc program) and the MODecode program.
  ULE_ASSIGN_OR_RETURN(olonys::ParsedBootstrap bootstrap,
                       olonys::ParseBootstrapText(bootstrap_text));

  // Steps 4-5 fan out: the system and data streams decode concurrently,
  // each further parallelized per scan on a split thread budget. Step
  // counters are per-task and summed afterwards, so the aggregate is
  // race-free and deterministic.
  Bytes dbdecode_stream;
  Bytes container;
  uint64_t system_steps = 0;
  uint64_t data_steps = 0;
  mocoder::Options inner_options = emblem_options;
  inner_options.threads = SplitThreads(emblem_options.threads, 2);
  ULE_RETURN_IF_ERROR(ParallelTasks(
      {
          [&]() -> Status {
            ULE_ASSIGN_OR_RETURN(
                dbdecode_stream,
                DecodeStreamEmulated(system_scans, mocoder::StreamId::kSystem,
                                     inner_options,
                                     bootstrap.dynarisc_emulator,
                                     bootstrap.mocoder, vm,
                                     &local.system_stream, &system_steps));
            return Status::OK();
          },
          [&]() -> Status {
            ULE_ASSIGN_OR_RETURN(
                container,
                DecodeStreamEmulated(data_scans, mocoder::StreamId::kData,
                                     inner_options,
                                     bootstrap.dynarisc_emulator,
                                     bootstrap.mocoder, vm,
                                     &local.data_stream, &data_steps));
            return Status::OK();
          },
      },
      emblem_options.threads));
  local.emulated_steps += system_steps + data_steps;

  // Step 5 (tail): the recovered DBDecode decompresses the data stream.
  ULE_ASSIGN_OR_RETURN(dynarisc::Program dbdecode,
                       dynarisc::Program::Deserialize(dbdecode_stream));
  ULE_ASSIGN_OR_RETURN(Bytes dump,
                       RunViaBootstrap(bootstrap.dynarisc_emulator, dbdecode,
                                       container, vm, &local.emulated_steps));
  if (stats) *stats = local;
  return ToString(dump);
}

}  // namespace core
}  // namespace ule
