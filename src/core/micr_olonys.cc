#include "core/micr_olonys.h"

#include <algorithm>
#include <map>

#include "decoders/dbdecode.h"
#include "decoders/modecode.h"
#include "mocoder/detect.h"
#include "mocoder/outer.h"
#include "olonys/bootstrap.h"
#include "olonys/dynarisc_in_verisc.h"
#include "support/crc32.h"
#include "support/parallel.h"

namespace ule {
namespace core {

Result<Archive> ArchiveDump(const std::string& sql_dump,
                            const ArchiveOptions& options) {
  ULE_RETURN_IF_ERROR(mocoder::ValidateOptions(options.emblem));
  Archive archive;
  archive.emblem_options = options.emblem;
  // The recorded options describe the archived *geometry*; the archiving
  // machine's thread count is not an archival parameter and must not leak
  // into (and silently serialize) a future restorer's environment.
  archive.emblem_options.threads = 0;
  archive.dump_bytes = sql_dump.size();

  // Step 2: DBCoder (sequential: everything downstream needs it).
  ULE_ASSIGN_OR_RETURN(Bytes container,
                       dbcoder::Encode(ToBytes(sql_dump), options.scheme));
  archive.compressed_bytes = container.size();

  // Steps 3-7 fan out across the two emblem streams and the Bootstrap
  // document; each task writes its own archive field. Within each stream,
  // emblem construction and frame rendering run fused per emblem through
  // the streaming encoder (on a split thread budget, so the nesting does
  // not oversubscribe the CPUs) — the materialized Archive is just the
  // streaming pipeline with vector sinks.
  const Bytes dbdecode_stream = decoders::DbDecodeProgram().Serialize();
  mocoder::Options inner_emblem = options.emblem;
  inner_emblem.threads = SplitThreads(options.emblem.threads, 2);
  auto encode_into = [&](BytesView stream, mocoder::StreamId id,
                         std::vector<mocoder::EncodedEmblem>* emblems,
                         std::vector<media::Image>* images) -> Status {
    return mocoder::EncodeToSink(
        stream, id, inner_emblem, options.render_images,
        [&](mocoder::EncodedEmblem&& emblem, media::Image&& frame) -> Status {
          emblems->push_back(std::move(emblem));
          if (options.render_images) images->push_back(std::move(frame));
          return Status::OK();
        });
  };
  ULE_RETURN_IF_ERROR(ParallelTasks(
      {
          // Steps 3 + 7: data emblems and their frames.
          [&]() -> Status {
            return encode_into(container, mocoder::StreamId::kData,
                               &archive.data_emblems, &archive.data_images);
          },
          // Steps 4-5 + 7: DBDecode instruction stream -> system emblems.
          [&]() -> Status {
            return encode_into(dbdecode_stream, mocoder::StreamId::kSystem,
                               &archive.system_emblems,
                               &archive.system_images);
          },
          // Step 6: Bootstrap document (MODecode + DynaRisc emulator).
          [&]() -> Status {
            archive.bootstrap_text = olonys::GenerateBootstrapText(
                olonys::DynaRiscInterpreter(), decoders::ModecodeProgram());
            return Status::OK();
          },
      },
      options.emblem.threads));
  return archive;
}

Result<ArchiveSummary> ArchiveDumpStreaming(const std::string& sql_dump,
                                            const ArchiveOptions& options,
                                            filmstore::FrameSink& sink) {
  ULE_RETURN_IF_ERROR(mocoder::ValidateOptions(options.emblem));
  ArchiveSummary summary;
  summary.emblem_options = options.emblem;
  summary.emblem_options.threads = 0;  // geometry only; see ArchiveDump
  // The machine's actual parallelism is still worth reporting (benches,
  // ulectl) — it just lives outside the recorded archival options. The
  // pipeline clamps worker counts at the pool's hard cap, so the report
  // must too.
  summary.threads_used = std::min(ResolveThreadCount(options.emblem.threads),
                                  ThreadPool::kMaxThreads);
  summary.dump_bytes = sql_dump.size();

  // With build_index the stream is written segmented (UDBS) along the
  // dump's chunk plan, so a selective restore can decode one chunk
  // without its neighbors; the finished index is handed to the sink
  // below, once the frame layout it describes is actually on the reel.
  Bytes container;
  Bytes index_section;
  if (options.build_index) {
    ULE_ASSIGN_OR_RETURN(
        std::vector<IndexChunk> chunks,
        PlanDumpChunks(sql_dump, options.index_chunk_bytes));
    std::vector<dbcoder::SegmentSpan> segments(chunks.size());
    for (size_t i = 0; i < chunks.size(); ++i) {
      segments[i].raw_offset = chunks[i].raw_offset;
      segments[i].raw_len = chunks[i].raw_len;
    }
    ULE_ASSIGN_OR_RETURN(container,
                         dbcoder::EncodeSegmented(ToBytes(sql_dump),
                                                  options.scheme, &segments));
    for (size_t i = 0; i < chunks.size(); ++i) {
      chunks[i].stream_offset = segments[i].stream_offset;
      chunks[i].stream_len = segments[i].stream_len;
    }
    RecordIndex index;
    index.scheme = options.scheme;
    index.segmented = true;
    index.dump_len = sql_dump.size();
    index.stream_len = container.size();
    index.chunks = std::move(chunks);
    index_section = index.Serialize();
  } else {
    ULE_ASSIGN_OR_RETURN(container,
                         dbcoder::Encode(ToBytes(sql_dump), options.scheme));
  }
  summary.compressed_bytes = container.size();
  summary.bootstrap_text = olonys::GenerateBootstrapText(
      olonys::DynaRiscInterpreter(), decoders::ModecodeProgram());

  // The two streams are emitted back to back (data first) so the sink
  // sees frames in reel order; each stream parallelizes internally with
  // the full thread budget. Only O(threads) frames exist at any moment.
  const Bytes dbdecode_stream = decoders::DbDecodeProgram().Serialize();
  auto stream_out = [&](BytesView stream, mocoder::StreamId id,
                        size_t* frames) -> Status {
    return mocoder::EncodeToSink(
        stream, id, options.emblem, /*render=*/true,
        [&](mocoder::EncodedEmblem&& emblem, media::Image&& frame) -> Status {
          *frames += 1;
          return sink.Append(id, emblem, std::move(frame));
        });
  };
  ULE_RETURN_IF_ERROR(stream_out(container, mocoder::StreamId::kData,
                                 &summary.data_frames));
  ULE_RETURN_IF_ERROR(stream_out(dbdecode_stream, mocoder::StreamId::kSystem,
                                 &summary.system_frames));
  if (options.build_index) {
    // Persisting the index needs the full writer contract; a sink with no
    // finalization half (memory, ad-hoc callbacks) has nowhere durable to
    // put it, and such archives are restored from RAM anyway.
    if (auto* writer = dynamic_cast<filmstore::ArchiveWriter*>(&sink)) {
      ULE_RETURN_IF_ERROR(writer->SetIndexSection(std::move(index_section)));
    }
  }
  // Per-reel accounting comes from the sink: a sharding backend knows how
  // it split the stream, core does not. (The byte counts grow a little
  // more when the caller appends the Bootstrap and finishes the reels.)
  summary.reels = sink.CurrentReelStats();
  return summary;
}

Result<std::string> RestoreNative(const std::vector<media::Image>& data_scans,
                                  const std::vector<media::Image>& system_scans,
                                  const mocoder::Options& emblem_options,
                                  RestoreStats* stats) {
  ULE_RETURN_IF_ERROR(mocoder::ValidateOptions(emblem_options));
  RestoreStats local;
  Bytes container;
  // The two streams decode concurrently; each decode parallelizes further
  // across its scans on a split thread budget. Stats land in per-stream
  // slots (no shared counters).
  mocoder::Options inner_options = emblem_options;
  inner_options.threads = SplitThreads(emblem_options.threads, 2);
  ULE_RETURN_IF_ERROR(ParallelTasks(
      {
          // The system stream is decoded too (it must match the in-tree
          // decoder, which the emulated path actually runs).
          [&]() -> Status {
            if (system_scans.empty()) return Status::OK();
            auto system = mocoder::DecodeImages(
                system_scans, mocoder::StreamId::kSystem, inner_options,
                &local.system_stream);
            return system.status();
          },
          [&]() -> Status {
            ULE_ASSIGN_OR_RETURN(
                container,
                mocoder::DecodeImages(data_scans, mocoder::StreamId::kData,
                                      inner_options, &local.data_stream));
            return Status::OK();
          },
      },
      emblem_options.threads));
  ULE_ASSIGN_OR_RETURN(Bytes dump, dbcoder::Decode(container));
  if (stats) *stats = local;
  return ToString(dump);
}

namespace {

/// Pull-decodes one stream: frames go straight from `source` into the
/// streaming decoder, which keeps at most O(threads) of them alive.
/// `decode` (when set) replaces the native inner decode — the emulated
/// path plugs in the archived MODecode under nested emulation, and also
/// counts unsampled scans (the historian's stats are about the reel).
/// With `skip_if_empty`, a source yielding nothing returns empty bytes
/// (the "no system reel to verify" case).
Result<Bytes> DecodeSourceStream(filmstore::FrameSource& source,
                                 mocoder::StreamId id,
                                 const mocoder::Options& emblem_options,
                                 mocoder::GridDecodeFn decode,
                                 bool count_unsampled, bool skip_if_empty,
                                 mocoder::DecodeStats* stats,
                                 uint64_t* steps = nullptr) {
  mocoder::StreamDecoder decoder(id, emblem_options, std::move(decode),
                                 count_unsampled);
  size_t pushed = 0;
  for (;;) {
    ULE_ASSIGN_OR_RETURN(std::optional<media::Image> frame, source.Next());
    if (!frame.has_value()) break;
    ++pushed;
    ULE_RETURN_IF_ERROR(decoder.Push(std::move(*frame)));
  }
  if (skip_if_empty && pushed == 0) return Bytes();
  return decoder.Finish(stats, steps);
}

}  // namespace

Result<std::string> RestoreNativeStreaming(
    filmstore::FrameSource& data_frames,
    filmstore::FrameSource* system_frames,
    const mocoder::Options& emblem_options, RestoreStats* stats) {
  ULE_RETURN_IF_ERROR(mocoder::ValidateOptions(emblem_options));
  RestoreStats local;

  // The streams are decoded back to back (reel order), each with the full
  // thread budget.
  if (system_frames != nullptr) {
    // Decoded for the same reason RestoreNative decodes it: the system
    // stream must match the in-tree decoder the emulated path runs. An
    // empty source is skipped, like an empty system_scans vector.
    ULE_RETURN_IF_ERROR(
        DecodeSourceStream(*system_frames, mocoder::StreamId::kSystem,
                           emblem_options, nullptr, /*count_unsampled=*/false,
                           /*skip_if_empty=*/true, &local.system_stream)
            .status());
  }
  ULE_ASSIGN_OR_RETURN(
      Bytes container,
      DecodeSourceStream(data_frames, mocoder::StreamId::kData,
                         emblem_options, nullptr, /*count_unsampled=*/false,
                         /*skip_if_empty=*/false, &local.data_stream));
  ULE_ASSIGN_OR_RETURN(Bytes dump, dbcoder::Decode(container));
  if (stats) *stats = local;
  return ToString(dump);
}

namespace {

/// Runs a DynaRisc program under nested emulation via the *parsed
/// Bootstrap* interpreter (not the in-tree one), accumulating step counts.
Result<Bytes> RunViaBootstrap(const verisc::Program& interpreter,
                              const dynarisc::Program& guest, BytesView input,
                              verisc::VmFunction vm, uint64_t* steps) {
  verisc::RunOptions opts;
  opts.max_steps = 200'000'000'000ull;
  // When the parsed Bootstrap's emulator is word-for-word the in-tree
  // interpreter (the round-trip guarantee olonys_test pins down) and the
  // caller runs the reference engine, route through RunNested so the
  // shared translation cache and the warm-start interpreter apply across
  // every frame of the restore. Output bytes are unchanged; `steps`
  // counts the VeRisc instructions the engine actually retired.
  if ((vm == nullptr || vm == &verisc::Run) &&
      interpreter.words == olonys::DynaRiscInterpreter().words) {
    olonys::NestedRunStats nested_stats;
    Result<Bytes> out =
        olonys::RunNested(guest, input, opts, &verisc::Run,
                          olonys::NestedMode::kAuto, &nested_stats);
    if (steps) *steps += nested_stats.steps;
    return out;
  }
  const Bytes packed = olonys::PackNestedInput(guest, input);
  ULE_ASSIGN_OR_RETURN(verisc::RunResult r, vm(interpreter, packed, opts));
  if (steps) *steps += r.steps;
  if (r.reason != verisc::StopReason::kHalted) {
    return Status::ExecutionFault("nested emulation did not halt cleanly");
  }
  return std::move(r.output);
}

/// Builds the archived decode of one sampled grid (Bootstrap steps 5-7):
/// pack the lattice, run MODecode under nested emulation, then apply the
/// Bootstrap-documented header parse + CRC check. Thread-safe: each call
/// uses only local state plus the caller thread's scratch machine. The
/// interpreter/modecode programs are captured by reference and must
/// outlive the returned function.
mocoder::GridDecodeFn MakeNestedGridDecode(const verisc::Program& interpreter,
                                           const dynarisc::Program& modecode,
                                           int data_side,
                                           verisc::VmFunction vm) {
  const int blocks = mocoder::EmblemBlocks(data_side);
  const int capacity = mocoder::EmblemCapacity(data_side);
  return [&interpreter, &modecode, vm, data_side, blocks,
          capacity](BytesView grid) {
    mocoder::GridDecodeResult out;
    const Bytes input = decoders::PackModecodeInput(grid, data_side);
    auto container =
        RunViaBootstrap(interpreter, modecode, input, vm, &out.steps);
    if (!container.ok()) return out;
    if (container.value().size() != static_cast<size_t>(blocks) * 223) {
      return out;  // MODecode halted early: unrecoverable
    }
    auto header = mocoder::ParseHeader(container.value());
    if (!header.ok()) return out;
    Bytes payload(container.value().begin() + mocoder::kHeaderSize,
                  container.value().begin() + mocoder::kHeaderSize + capacity);
    if (Crc32(payload) != header.value().payload_crc) return out;
    out.ok = true;
    out.header = header.value();
    out.payload = std::move(payload);
    return out;
  };
}

/// Runs the archived DBDecode over the recovered DBCoder stream. A
/// segmented stream (UDBS, docs/FORMAT.md §11.1) is *framing* only: the
/// contemporary driver walks the segment table and runs the archived
/// decoder once per UDB1 segment, concatenating the outputs — the
/// Bootstrap-documented decoder itself never sees the framing.
Result<Bytes> RunDbDecode(const verisc::Program& interpreter,
                          const dynarisc::Program& dbdecode, BytesView stream,
                          verisc::VmFunction vm, uint64_t* steps) {
  if (!dbcoder::IsSegmented(stream)) {
    return RunViaBootstrap(interpreter, dbdecode, stream, vm, steps);
  }
  ULE_ASSIGN_OR_RETURN(std::vector<dbcoder::SegmentSpan> segments,
                       dbcoder::ListSegments(stream));
  Bytes out;
  for (const dbcoder::SegmentSpan& seg : segments) {
    ULE_ASSIGN_OR_RETURN(
        Bytes piece,
        RunViaBootstrap(interpreter, dbdecode,
                        stream.subspan(seg.stream_offset, seg.stream_len), vm,
                        steps));
    out.insert(out.end(), piece.begin(), piece.end());
  }
  return out;
}

/// Decodes one stream of emblem scans with the archived MODecode program
/// (under nested emulation), then reassembles it with the outer code.
/// The scans flow through the streaming decoder: per-scan nested decodes
/// fan out across pool workers (each reusing its thread-local VeRisc
/// machine across emblems and stages); the merge is serial in scan order.
Result<Bytes> DecodeStreamEmulated(const std::vector<media::Image>& scans,
                                   mocoder::StreamId id,
                                   const mocoder::Options& emblem_options,
                                   const verisc::Program& interpreter,
                                   const dynarisc::Program& modecode,
                                   verisc::VmFunction vm,
                                   mocoder::DecodeStats* stats,
                                   uint64_t* steps) {
  // Every scan counts into emblems_total here (unlike DecodeImages): the
  // historian's stats are about the reel, not about what sampled cleanly.
  mocoder::StreamDecoder decoder(
      id, emblem_options,
      MakeNestedGridDecode(interpreter, modecode, emblem_options.data_side,
                           vm),
      /*count_unsampled=*/true);
  for (const media::Image& scan : scans) {
    ULE_RETURN_IF_ERROR(decoder.PushShared(scan));
  }
  return decoder.Finish(stats, steps);
}

}  // namespace

Result<std::string> RestoreEmulated(
    const std::vector<media::Image>& data_scans,
    const std::vector<media::Image>& system_scans,
    const std::string& bootstrap_text, const mocoder::Options& emblem_options,
    RestoreStats* stats, verisc::VmFunction vm) {
  ULE_RETURN_IF_ERROR(mocoder::ValidateOptions(emblem_options));
  RestoreStats local;

  // Step 1-2 (Fig. 2b): parse the Bootstrap; it yields the DynaRisc
  // emulator (a VeRisc program) and the MODecode program.
  ULE_ASSIGN_OR_RETURN(olonys::ParsedBootstrap bootstrap,
                       olonys::ParseBootstrapText(bootstrap_text));

  // Steps 4-5 fan out: the system and data streams decode concurrently,
  // each further parallelized per scan on a split thread budget. Step
  // counters are per-task and summed afterwards, so the aggregate is
  // race-free and deterministic.
  Bytes dbdecode_stream;
  Bytes container;
  uint64_t system_steps = 0;
  uint64_t data_steps = 0;
  mocoder::Options inner_options = emblem_options;
  inner_options.threads = SplitThreads(emblem_options.threads, 2);
  ULE_RETURN_IF_ERROR(ParallelTasks(
      {
          [&]() -> Status {
            ULE_ASSIGN_OR_RETURN(
                dbdecode_stream,
                DecodeStreamEmulated(system_scans, mocoder::StreamId::kSystem,
                                     inner_options,
                                     bootstrap.dynarisc_emulator,
                                     bootstrap.mocoder, vm,
                                     &local.system_stream, &system_steps));
            return Status::OK();
          },
          [&]() -> Status {
            ULE_ASSIGN_OR_RETURN(
                container,
                DecodeStreamEmulated(data_scans, mocoder::StreamId::kData,
                                     inner_options,
                                     bootstrap.dynarisc_emulator,
                                     bootstrap.mocoder, vm,
                                     &local.data_stream, &data_steps));
            return Status::OK();
          },
      },
      emblem_options.threads));
  local.emulated_steps += system_steps + data_steps;

  // Step 5 (tail): the recovered DBDecode decompresses the data stream.
  ULE_ASSIGN_OR_RETURN(dynarisc::Program dbdecode,
                       dynarisc::Program::Deserialize(dbdecode_stream));
  ULE_ASSIGN_OR_RETURN(Bytes dump,
                       RunDbDecode(bootstrap.dynarisc_emulator, dbdecode,
                                   container, vm, &local.emulated_steps));
  if (stats) *stats = local;
  return ToString(dump);
}

Result<std::string> RestoreEmulatedStreaming(
    filmstore::FrameSource& data_frames,
    filmstore::FrameSource& system_frames,
    const std::string& bootstrap_text, const mocoder::Options& emblem_options,
    RestoreStats* stats, verisc::VmFunction vm) {
  ULE_RETURN_IF_ERROR(mocoder::ValidateOptions(emblem_options));
  RestoreStats local;

  // Step 1-2 (Fig. 2b): parse the Bootstrap; it yields the DynaRisc
  // emulator (a VeRisc program) and the MODecode program.
  ULE_ASSIGN_OR_RETURN(olonys::ParsedBootstrap bootstrap,
                       olonys::ParseBootstrapText(bootstrap_text));

  // Steps 4-5, reel order: the system stream first (it yields the
  // archived DBDecode program), then the data stream. Unlike the
  // materialized RestoreEmulated the two reels are pulled back to back —
  // a spool reader hands us one frame at a time — so each decode gets the
  // full thread budget; per-scan nested decodes still fan out across pool
  // workers. Step counters are summed in the same order as the
  // materialized path, keeping the aggregate deterministic and identical.
  uint64_t system_steps = 0;
  uint64_t data_steps = 0;
  ULE_ASSIGN_OR_RETURN(
      Bytes dbdecode_stream,
      DecodeSourceStream(system_frames, mocoder::StreamId::kSystem,
                         emblem_options,
                         MakeNestedGridDecode(bootstrap.dynarisc_emulator,
                                              bootstrap.mocoder,
                                              emblem_options.data_side, vm),
                         /*count_unsampled=*/true, /*skip_if_empty=*/false,
                         &local.system_stream, &system_steps));
  ULE_ASSIGN_OR_RETURN(
      Bytes container,
      DecodeSourceStream(data_frames, mocoder::StreamId::kData,
                         emblem_options,
                         MakeNestedGridDecode(bootstrap.dynarisc_emulator,
                                              bootstrap.mocoder,
                                              emblem_options.data_side, vm),
                         /*count_unsampled=*/true, /*skip_if_empty=*/false,
                         &local.data_stream, &data_steps));
  local.emulated_steps += system_steps + data_steps;

  // Step 5 (tail): the recovered DBDecode decompresses the data stream.
  ULE_ASSIGN_OR_RETURN(dynarisc::Program dbdecode,
                       dynarisc::Program::Deserialize(dbdecode_stream));
  ULE_ASSIGN_OR_RETURN(Bytes dump,
                       RunDbDecode(bootstrap.dynarisc_emulator, dbdecode,
                                   container, vm, &local.emulated_steps));
  if (stats) *stats = local;
  return ToString(dump);
}

}  // namespace core
}  // namespace ule
