#include "core/micr_olonys.h"

#include <map>

#include "decoders/dbdecode.h"
#include "decoders/modecode.h"
#include "mocoder/detect.h"
#include "mocoder/outer.h"
#include "olonys/bootstrap.h"
#include "olonys/dynarisc_in_verisc.h"
#include "support/crc32.h"
#include "support/parallel.h"

namespace ule {
namespace core {

Result<Archive> ArchiveDump(const std::string& sql_dump,
                            const ArchiveOptions& options) {
  ULE_RETURN_IF_ERROR(mocoder::ValidateOptions(options.emblem));
  Archive archive;
  archive.emblem_options = options.emblem;
  // The recorded options describe the archived *geometry*; the archiving
  // machine's thread count is not an archival parameter and must not leak
  // into (and silently serialize) a future restorer's environment.
  archive.emblem_options.threads = 0;
  archive.dump_bytes = sql_dump.size();

  // Step 2: DBCoder (sequential: everything downstream needs it).
  ULE_ASSIGN_OR_RETURN(Bytes container,
                       dbcoder::Encode(ToBytes(sql_dump), options.scheme));
  archive.compressed_bytes = container.size();

  // Steps 3-7 fan out across the two emblem streams and the Bootstrap
  // document; each task writes its own archive field. Within each stream,
  // emblem construction and frame rendering run fused per emblem through
  // the streaming encoder (on a split thread budget, so the nesting does
  // not oversubscribe the CPUs) — the materialized Archive is just the
  // streaming pipeline with vector sinks.
  const Bytes dbdecode_stream = decoders::DbDecodeProgram().Serialize();
  mocoder::Options inner_emblem = options.emblem;
  inner_emblem.threads = SplitThreads(options.emblem.threads, 2);
  auto encode_into = [&](BytesView stream, mocoder::StreamId id,
                         std::vector<mocoder::EncodedEmblem>* emblems,
                         std::vector<media::Image>* images) -> Status {
    return mocoder::EncodeToSink(
        stream, id, inner_emblem, options.render_images,
        [&](mocoder::EncodedEmblem&& emblem, media::Image&& frame) -> Status {
          emblems->push_back(std::move(emblem));
          if (options.render_images) images->push_back(std::move(frame));
          return Status::OK();
        });
  };
  ULE_RETURN_IF_ERROR(ParallelTasks(
      {
          // Steps 3 + 7: data emblems and their frames.
          [&]() -> Status {
            return encode_into(container, mocoder::StreamId::kData,
                               &archive.data_emblems, &archive.data_images);
          },
          // Steps 4-5 + 7: DBDecode instruction stream -> system emblems.
          [&]() -> Status {
            return encode_into(dbdecode_stream, mocoder::StreamId::kSystem,
                               &archive.system_emblems,
                               &archive.system_images);
          },
          // Step 6: Bootstrap document (MODecode + DynaRisc emulator).
          [&]() -> Status {
            archive.bootstrap_text = olonys::GenerateBootstrapText(
                olonys::DynaRiscInterpreter(), decoders::ModecodeProgram());
            return Status::OK();
          },
      },
      options.emblem.threads));
  return archive;
}

Result<ArchiveSummary> ArchiveDumpStreaming(const std::string& sql_dump,
                                            const ArchiveOptions& options,
                                            const FrameSink& sink) {
  ULE_RETURN_IF_ERROR(mocoder::ValidateOptions(options.emblem));
  ArchiveSummary summary;
  summary.emblem_options = options.emblem;
  summary.emblem_options.threads = 0;  // geometry only; see ArchiveDump
  summary.dump_bytes = sql_dump.size();

  ULE_ASSIGN_OR_RETURN(Bytes container,
                       dbcoder::Encode(ToBytes(sql_dump), options.scheme));
  summary.compressed_bytes = container.size();
  summary.bootstrap_text = olonys::GenerateBootstrapText(
      olonys::DynaRiscInterpreter(), decoders::ModecodeProgram());

  // The two streams are emitted back to back (data first) so the sink
  // sees frames in reel order; each stream parallelizes internally with
  // the full thread budget. Only O(threads) frames exist at any moment.
  const Bytes dbdecode_stream = decoders::DbDecodeProgram().Serialize();
  auto stream_out = [&](BytesView stream, mocoder::StreamId id,
                        size_t* frames) -> Status {
    return mocoder::EncodeToSink(
        stream, id, options.emblem, /*render=*/true,
        [&](mocoder::EncodedEmblem&& emblem, media::Image&& frame) -> Status {
          *frames += 1;
          return sink(id, emblem, std::move(frame));
        });
  };
  ULE_RETURN_IF_ERROR(stream_out(container, mocoder::StreamId::kData,
                                 &summary.data_frames));
  ULE_RETURN_IF_ERROR(stream_out(dbdecode_stream, mocoder::StreamId::kSystem,
                                 &summary.system_frames));
  return summary;
}

Result<std::string> RestoreNative(const std::vector<media::Image>& data_scans,
                                  const std::vector<media::Image>& system_scans,
                                  const mocoder::Options& emblem_options,
                                  RestoreStats* stats) {
  ULE_RETURN_IF_ERROR(mocoder::ValidateOptions(emblem_options));
  RestoreStats local;
  Bytes container;
  // The two streams decode concurrently; each decode parallelizes further
  // across its scans on a split thread budget. Stats land in per-stream
  // slots (no shared counters).
  mocoder::Options inner_options = emblem_options;
  inner_options.threads = SplitThreads(emblem_options.threads, 2);
  ULE_RETURN_IF_ERROR(ParallelTasks(
      {
          // The system stream is decoded too (it must match the in-tree
          // decoder, which the emulated path actually runs).
          [&]() -> Status {
            if (system_scans.empty()) return Status::OK();
            auto system = mocoder::DecodeImages(
                system_scans, mocoder::StreamId::kSystem, inner_options,
                &local.system_stream);
            return system.status();
          },
          [&]() -> Status {
            ULE_ASSIGN_OR_RETURN(
                container,
                mocoder::DecodeImages(data_scans, mocoder::StreamId::kData,
                                      inner_options, &local.data_stream));
            return Status::OK();
          },
      },
      emblem_options.threads));
  ULE_ASSIGN_OR_RETURN(Bytes dump, dbcoder::Decode(container));
  if (stats) *stats = local;
  return ToString(dump);
}

Result<std::string> RestoreNativeStreaming(
    const FrameSource& data_frames, const FrameSource& system_frames,
    const mocoder::Options& emblem_options, RestoreStats* stats) {
  ULE_RETURN_IF_ERROR(mocoder::ValidateOptions(emblem_options));
  RestoreStats local;

  // Pull-decode one stream: frames go straight into the streaming decoder,
  // which keeps at most O(threads) of them alive. The streams are decoded
  // back to back (reel order), each with the full thread budget.
  auto decode_stream = [&](const FrameSource& source, mocoder::StreamId id,
                           mocoder::DecodeStats* st,
                           bool skip_if_empty) -> Result<Bytes> {
    mocoder::StreamDecoder decoder(id, emblem_options);
    size_t pushed = 0;
    while (auto frame = source()) {
      ++pushed;
      ULE_RETURN_IF_ERROR(decoder.Push(std::move(*frame)));
    }
    if (skip_if_empty && pushed == 0) return Bytes();
    return decoder.Finish(st);
  };

  if (system_frames) {
    // Decoded for the same reason RestoreNative decodes it: the system
    // stream must match the in-tree decoder the emulated path runs. An
    // empty source is skipped, like an empty system_scans vector.
    ULE_RETURN_IF_ERROR(decode_stream(system_frames, mocoder::StreamId::kSystem,
                                      &local.system_stream,
                                      /*skip_if_empty=*/true)
                            .status());
  }
  ULE_ASSIGN_OR_RETURN(Bytes container,
                       decode_stream(data_frames, mocoder::StreamId::kData,
                                     &local.data_stream,
                                     /*skip_if_empty=*/false));
  ULE_ASSIGN_OR_RETURN(Bytes dump, dbcoder::Decode(container));
  if (stats) *stats = local;
  return ToString(dump);
}

namespace {

/// Runs a DynaRisc program under nested emulation via the *parsed
/// Bootstrap* interpreter (not the in-tree one), accumulating step counts.
Result<Bytes> RunViaBootstrap(const verisc::Program& interpreter,
                              const dynarisc::Program& guest, BytesView input,
                              verisc::VmFunction vm, uint64_t* steps) {
  const Bytes packed = olonys::PackNestedInput(guest, input);
  verisc::RunOptions opts;
  opts.max_steps = 200'000'000'000ull;
  ULE_ASSIGN_OR_RETURN(verisc::RunResult r, vm(interpreter, packed, opts));
  if (steps) *steps += r.steps;
  if (r.reason != verisc::StopReason::kHalted) {
    return Status::ExecutionFault("nested emulation did not halt cleanly");
  }
  return std::move(r.output);
}

/// Decodes one stream of emblem scans with the archived MODecode program
/// (under nested emulation), then reassembles it with the outer code.
/// The scans flow through the streaming decoder: per-scan nested decodes
/// fan out across pool workers (each reusing its thread-local VeRisc
/// machine across emblems and stages); the merge is serial in scan order.
Result<Bytes> DecodeStreamEmulated(const std::vector<media::Image>& scans,
                                   mocoder::StreamId id,
                                   const mocoder::Options& emblem_options,
                                   const verisc::Program& interpreter,
                                   const dynarisc::Program& modecode,
                                   verisc::VmFunction vm,
                                   mocoder::DecodeStats* stats,
                                   uint64_t* steps) {
  const int n = emblem_options.data_side;
  const int blocks = mocoder::EmblemBlocks(n);
  const int capacity = mocoder::EmblemCapacity(n);

  // The archived decode of one sampled grid (Bootstrap steps 5-7): pack
  // the lattice, run MODecode under nested emulation, then apply the
  // Bootstrap-documented header parse + CRC check. Thread-safe: each call
  // uses only local state plus the caller thread's scratch machine.
  mocoder::GridDecodeFn nested_decode =
      [&, n, blocks, capacity](BytesView grid) {
        mocoder::GridDecodeResult out;
        const Bytes input = decoders::PackModecodeInput(grid, n);
        auto container =
            RunViaBootstrap(interpreter, modecode, input, vm, &out.steps);
        if (!container.ok()) return out;
        if (container.value().size() != static_cast<size_t>(blocks) * 223) {
          return out;  // MODecode halted early: unrecoverable
        }
        auto header = mocoder::ParseHeader(container.value());
        if (!header.ok()) return out;
        Bytes payload(
            container.value().begin() + mocoder::kHeaderSize,
            container.value().begin() + mocoder::kHeaderSize + capacity);
        if (Crc32(payload) != header.value().payload_crc) return out;
        out.ok = true;
        out.header = header.value();
        out.payload = std::move(payload);
        return out;
      };

  // Every scan counts into emblems_total here (unlike DecodeImages): the
  // historian's stats are about the reel, not about what sampled cleanly.
  mocoder::StreamDecoder decoder(id, emblem_options, nested_decode,
                                 /*count_unsampled=*/true);
  for (const media::Image& scan : scans) {
    ULE_RETURN_IF_ERROR(decoder.PushShared(scan));
  }
  return decoder.Finish(stats, steps);
}

}  // namespace

Result<std::string> RestoreEmulated(
    const std::vector<media::Image>& data_scans,
    const std::vector<media::Image>& system_scans,
    const std::string& bootstrap_text, const mocoder::Options& emblem_options,
    RestoreStats* stats, verisc::VmFunction vm) {
  ULE_RETURN_IF_ERROR(mocoder::ValidateOptions(emblem_options));
  RestoreStats local;

  // Step 1-2 (Fig. 2b): parse the Bootstrap; it yields the DynaRisc
  // emulator (a VeRisc program) and the MODecode program.
  ULE_ASSIGN_OR_RETURN(olonys::ParsedBootstrap bootstrap,
                       olonys::ParseBootstrapText(bootstrap_text));

  // Steps 4-5 fan out: the system and data streams decode concurrently,
  // each further parallelized per scan on a split thread budget. Step
  // counters are per-task and summed afterwards, so the aggregate is
  // race-free and deterministic.
  Bytes dbdecode_stream;
  Bytes container;
  uint64_t system_steps = 0;
  uint64_t data_steps = 0;
  mocoder::Options inner_options = emblem_options;
  inner_options.threads = SplitThreads(emblem_options.threads, 2);
  ULE_RETURN_IF_ERROR(ParallelTasks(
      {
          [&]() -> Status {
            ULE_ASSIGN_OR_RETURN(
                dbdecode_stream,
                DecodeStreamEmulated(system_scans, mocoder::StreamId::kSystem,
                                     inner_options,
                                     bootstrap.dynarisc_emulator,
                                     bootstrap.mocoder, vm,
                                     &local.system_stream, &system_steps));
            return Status::OK();
          },
          [&]() -> Status {
            ULE_ASSIGN_OR_RETURN(
                container,
                DecodeStreamEmulated(data_scans, mocoder::StreamId::kData,
                                     inner_options,
                                     bootstrap.dynarisc_emulator,
                                     bootstrap.mocoder, vm,
                                     &local.data_stream, &data_steps));
            return Status::OK();
          },
      },
      emblem_options.threads));
  local.emulated_steps += system_steps + data_steps;

  // Step 5 (tail): the recovered DBDecode decompresses the data stream.
  ULE_ASSIGN_OR_RETURN(dynarisc::Program dbdecode,
                       dynarisc::Program::Deserialize(dbdecode_stream));
  ULE_ASSIGN_OR_RETURN(Bytes dump,
                       RunViaBootstrap(bootstrap.dynarisc_emulator, dbdecode,
                                       container, vm, &local.emulated_steps));
  if (stats) *stats = local;
  return ToString(dump);
}

}  // namespace core
}  // namespace ule
