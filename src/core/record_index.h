/// \file record_index.h
/// \brief The ULE-S1 record index: the logical→physical map behind
/// selective restoration (docs/FORMAT.md §11).
///
/// A full restore decodes every frame; answering "give me table
/// `lineitem`" that way reads the whole archive. The record index closes
/// the gap with one small, optional section written at archive time:
///
///   dump chunks     the SQL dump partitioned along its own structure —
///                   prologue, per-table schema text, then row runs of
///                   roughly `target_chunk_bytes` each (whole lines);
///   stream spans    when the DBCoder stream is segmented (UDBS,
///                   FORMAT.md §11.1) each chunk records the byte range
///                   of its own independently-decodable segment;
///   identity        dump length, stream length, compression scheme —
///                   enough to refuse an index that does not match the
///                   archive it is read from.
///
/// Frame-level resolution needs no extra state: stream byte ranges map
/// to data-emblem sequence numbers arithmetically (mocoder/outer.h), so
/// the index stays small — O(tables + dump/chunk_size) entries — and the
/// physical side cannot drift from the emblem layout.
///
/// The section is versioned, CRC-protected, and *derivable*: an archive
/// written before (or without) indexing yields the same logical chunking
/// through `DeriveRecordIndex` after a one-pass full decode — selective
/// reads then save decode work only if the stream was segmented, but the
/// predicate surface is identical.

#ifndef ULE_CORE_RECORD_INDEX_H_
#define ULE_CORE_RECORD_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dbcoder/dbcoder.h"
#include "support/bytes.h"
#include "support/status.h"

namespace ule {
namespace core {

/// \brief Version string of the ULE-S1 record-index section format.
///
/// Documented in docs/FORMAT.md (§11), which records this exact string;
/// tools/check_docs.py fails the build when the two diverge — the same
/// contract the other layer versions have.
inline constexpr char kUleIndexFormatVersion[] = "ULE-S1";

/// Binary version byte written in the section header (the "1" in
/// ULE-S1). Parsers reject anything else with Unimplemented.
inline constexpr uint8_t kIndexBinaryVersion = 1;

/// Default row-run size for PlanDumpChunks: small enough that a
/// single-table read skips most of a multi-table archive, large enough
/// that the index and the per-segment framing stay negligible.
inline constexpr size_t kDefaultIndexChunkBytes = 64 * 1024;

/// One contiguous piece of the dump and (when the stream is segmented)
/// the stream bytes that decode to exactly it.
struct IndexChunk {
  /// Owning table; "" for structural text between tables (the dump
  /// prologue). Schema chunks carry the CREATE TABLE + COPY header and
  /// have row_count == 0; row chunks carry whole data rows.
  std::string table;
  uint64_t row_begin = 0;  ///< first data row in this chunk (per table)
  uint64_t row_count = 0;  ///< data rows in this chunk (0: schema/filler)
  uint64_t raw_offset = 0;  ///< dump byte range [raw_offset,
  uint64_t raw_len = 0;     ///<                  raw_offset + raw_len)
  uint64_t stream_offset = 0;  ///< DBCoder stream range decoding to it
  uint64_t stream_len = 0;     ///< (the whole stream when unsegmented)
};

/// \brief The parsed ULE-S1 section: what the archive contains and where.
struct RecordIndex {
  dbcoder::Scheme scheme = dbcoder::Scheme::kStore;
  bool segmented = false;   ///< stream is UDBS; chunks decode independently
  uint64_t dump_len = 0;    ///< total dump bytes (chunks cover exactly this)
  uint64_t stream_len = 0;  ///< total DBCoder stream bytes
  std::vector<IndexChunk> chunks;

  /// Chunk indices of `table`, in dump order (schema chunk first).
  std::vector<size_t> ChunksOfTable(const std::string& table) const;
  /// Distinct table names, in dump order.
  std::vector<std::string> Tables() const;
  /// Total data rows of `table` across its row chunks.
  uint64_t RowsOfTable(const std::string& table) const;

  /// Serializes to the ULE-S1 wire form (CRC-protected).
  Bytes Serialize() const;
  /// Parses and validates a serialized section: magic, binary version
  /// (Unimplemented when unknown), trailing CRC, chunk contiguity.
  static Result<RecordIndex> Parse(BytesView bytes);
};

/// \brief Partitions a DumpSql-shaped dump into IndexChunks along its
/// structure: prologue, then per table a schema chunk (CREATE TABLE
/// through the COPY header) and row chunks of at most ~`target_bytes`
/// whole rows; the `\.` terminator rides with the table's last chunk.
/// Deterministic, covers the dump exactly and contiguously; only the
/// raw_* / table / row fields are filled (stream spans come from the
/// encoder). InvalidArgument when the dump does not follow the shape.
Result<std::vector<IndexChunk>> PlanDumpChunks(const std::string& dump,
                                               size_t target_bytes);

/// \brief Rebuilds the index of an archive written without one, from its
/// fully-decoded dump and its DBCoder stream (one-pass scan). The chunk
/// plan is the same as archive time; stream spans are per-segment when
/// the stream is segmented (UDBS) and the segments align with the plan,
/// otherwise every chunk points at the whole stream — selective restores
/// then still read only the needed tables' text, they just decode the
/// stream once.
Result<RecordIndex> DeriveRecordIndex(const std::string& dump,
                                      BytesView stream,
                                      size_t target_bytes);

}  // namespace core
}  // namespace ule

#endif  // ULE_CORE_RECORD_INDEX_H_
