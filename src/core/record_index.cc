#include "core/record_index.h"

#include <algorithm>
#include <string_view>

#include "support/crc32.h"

namespace ule {
namespace core {

// ULE-S1 section wire form (docs/FORMAT.md §11; integers little-endian):
//
//   header (28 bytes):
//     0   4  magic "ULES"
//     4   1  binary version (kIndexBinaryVersion)
//     5   1  DBCoder scheme byte
//     6   1  flags (bit 0: stream is segmented / UDBS)
//     7   1  reserved (0)
//     8   8  dump length
//     16  8  DBCoder stream length
//     24  4  chunk count
//   per chunk:
//     u16 table name length | name bytes ("" for structural text)
//     u64 row_begin | u64 row_count
//     u64 raw_offset | u64 raw_len
//     u64 stream_offset | u64 stream_len
//   trailer (8 bytes at EOF):
//     u32 CRC-32 of all preceding bytes | magic "SIDX"

namespace {

constexpr char kIndexMagic[4] = {'U', 'L', 'E', 'S'};
constexpr char kIndexTrailerMagic[4] = {'S', 'I', 'D', 'X'};
constexpr size_t kIndexHeaderBytes = 28;
constexpr size_t kIndexTrailerBytes = 8;
constexpr size_t kMinChunkRowBytes = 2 + 6 * 8;

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace

std::vector<size_t> RecordIndex::ChunksOfTable(const std::string& table) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < chunks.size(); ++i) {
    if (chunks[i].table == table) out.push_back(i);
  }
  return out;
}

std::vector<std::string> RecordIndex::Tables() const {
  std::vector<std::string> out;
  for (const IndexChunk& c : chunks) {
    if (c.table.empty()) continue;
    if (std::find(out.begin(), out.end(), c.table) == out.end()) {
      out.push_back(c.table);
    }
  }
  return out;
}

uint64_t RecordIndex::RowsOfTable(const std::string& table) const {
  uint64_t rows = 0;
  for (const IndexChunk& c : chunks) {
    if (c.table == table) rows += c.row_count;
  }
  return rows;
}

Bytes RecordIndex::Serialize() const {
  ByteWriter w;
  w.PutBytes(BytesView(reinterpret_cast<const uint8_t*>(kIndexMagic), 4));
  w.PutU8(kIndexBinaryVersion);
  w.PutU8(static_cast<uint8_t>(scheme));
  w.PutU8(segmented ? 1 : 0);
  w.PutU8(0);  // reserved
  w.PutU64(dump_len);
  w.PutU64(stream_len);
  w.PutU32(static_cast<uint32_t>(chunks.size()));
  for (const IndexChunk& c : chunks) {
    w.PutU16(static_cast<uint16_t>(c.table.size()));
    w.PutBytes(ToBytes(c.table));
    w.PutU64(c.row_begin);
    w.PutU64(c.row_count);
    w.PutU64(c.raw_offset);
    w.PutU64(c.raw_len);
    w.PutU64(c.stream_offset);
    w.PutU64(c.stream_len);
  }
  const uint32_t crc = Crc32(w.bytes());
  w.PutU32(crc);
  w.PutBytes(
      BytesView(reinterpret_cast<const uint8_t*>(kIndexTrailerMagic), 4));
  return w.TakeBytes();
}

Result<RecordIndex> RecordIndex::Parse(BytesView bytes) {
  if (bytes.size() < kIndexHeaderBytes + kIndexTrailerBytes) {
    return Status::Corruption("not a ULE-S1 record index (too small)");
  }
  if (!std::equal(kIndexMagic, kIndexMagic + 4, bytes.begin())) {
    return Status::Corruption("bad record-index magic (not ULE-S1)");
  }
  if (bytes[4] != kIndexBinaryVersion) {
    return Status::Unimplemented(
        "unsupported ULE-S1 record-index version " + std::to_string(bytes[4]) +
        " (this reader understands version " +
        std::to_string(kIndexBinaryVersion) + ")");
  }
  const BytesView trailer = bytes.subspan(bytes.size() - kIndexTrailerBytes);
  if (!std::equal(kIndexTrailerMagic, kIndexTrailerMagic + 4,
                  trailer.begin() + 4)) {
    return Status::Corruption(
        "record-index trailer magic missing (truncated?)");
  }
  const BytesView body = bytes.subspan(0, bytes.size() - kIndexTrailerBytes);
  uint32_t stored_crc = 0;
  {
    ByteReader r(trailer);
    ULE_RETURN_IF_ERROR(r.GetU32(&stored_crc));
  }
  if (Crc32(body) != stored_crc) {
    return Status::Corruption("record-index CRC mismatch");
  }

  RecordIndex index;
  if (bytes[5] > static_cast<uint8_t>(dbcoder::Scheme::kColumnar)) {
    return Status::Corruption("record index names an unknown DBCoder scheme " +
                              std::to_string(bytes[5]));
  }
  index.scheme = static_cast<dbcoder::Scheme>(bytes[5]);
  index.segmented = (bytes[6] & 1) != 0;
  ByteReader r(body.subspan(8));
  uint32_t chunk_count = 0;
  ULE_RETURN_IF_ERROR(r.GetU64(&index.dump_len));
  ULE_RETURN_IF_ERROR(r.GetU64(&index.stream_len));
  ULE_RETURN_IF_ERROR(r.GetU32(&chunk_count));
  if (chunk_count > r.remaining() / kMinChunkRowBytes) {
    return Status::Corruption("record-index chunk count " +
                              std::to_string(chunk_count) +
                              " does not fit the section");
  }
  index.chunks.reserve(chunk_count);
  uint64_t next_raw = 0;
  for (uint32_t i = 0; i < chunk_count; ++i) {
    IndexChunk c;
    uint16_t name_len = 0;
    ULE_RETURN_IF_ERROR(r.GetU16(&name_len));
    if (name_len > r.remaining()) {
      return Status::Corruption("record-index chunk " + std::to_string(i) +
                                " has an implausible table name length");
    }
    c.table.resize(name_len);
    for (uint16_t j = 0; j < name_len; ++j) {
      uint8_t ch = 0;
      ULE_RETURN_IF_ERROR(r.GetU8(&ch));
      c.table[j] = static_cast<char>(ch);
    }
    ULE_RETURN_IF_ERROR(r.GetU64(&c.row_begin));
    ULE_RETURN_IF_ERROR(r.GetU64(&c.row_count));
    ULE_RETURN_IF_ERROR(r.GetU64(&c.raw_offset));
    ULE_RETURN_IF_ERROR(r.GetU64(&c.raw_len));
    ULE_RETURN_IF_ERROR(r.GetU64(&c.stream_offset));
    ULE_RETURN_IF_ERROR(r.GetU64(&c.stream_len));
    if (c.raw_offset != next_raw) {
      return Status::Corruption("record-index chunk " + std::to_string(i) +
                                " is not contiguous with its predecessor");
    }
    if (c.stream_offset + c.stream_len > index.stream_len) {
      return Status::Corruption("record-index chunk " + std::to_string(i) +
                                " points outside the DBCoder stream");
    }
    next_raw += c.raw_len;
    index.chunks.push_back(std::move(c));
  }
  if (next_raw != index.dump_len) {
    return Status::Corruption("record-index chunks cover " +
                              std::to_string(next_raw) +
                              " bytes of a " + std::to_string(index.dump_len) +
                              "-byte dump");
  }
  if (r.remaining() != 0) {
    return Status::Corruption("record index has trailing bytes");
  }
  return index;
}

Result<std::vector<IndexChunk>> PlanDumpChunks(const std::string& dump,
                                               size_t target_bytes) {
  if (target_bytes == 0) target_bytes = kDefaultIndexChunkBytes;
  std::vector<IndexChunk> chunks;

  enum class Mode { kFiller, kSchema, kRows };
  Mode mode = Mode::kFiller;
  IndexChunk cur;
  bool open = false;
  std::string table;
  uint64_t row_next = 0;

  const auto flush = [&]() {
    if (open && cur.raw_len > 0) chunks.push_back(cur);
    open = false;
  };
  const auto begin_chunk = [&](const std::string& t, uint64_t row_begin,
                               uint64_t offset) {
    cur = IndexChunk{};
    cur.table = t;
    cur.row_begin = row_begin;
    cur.raw_offset = offset;
    open = true;
  };

  size_t pos = 0;
  const size_t n = dump.size();
  while (pos < n) {
    const size_t eol = dump.find('\n', pos);
    size_t line_end = eol == std::string::npos ? n : eol + 1;
    const std::string_view line(dump.data() + pos,
                                (eol == std::string::npos ? n : eol) - pos);
    switch (mode) {
      case Mode::kFiller: {
        if (StartsWith(line, "CREATE TABLE ")) {
          flush();
          std::string_view name = line.substr(13);
          const size_t cut = name.find_first_of(" (");
          if (cut != std::string_view::npos) name = name.substr(0, cut);
          if (name.empty()) {
            return Status::InvalidArgument(
                "dump has a CREATE TABLE with no table name at byte " +
                std::to_string(pos));
          }
          table = std::string(name);
          row_next = 0;
          begin_chunk(table, 0, pos);
          mode = Mode::kSchema;
        } else if (!open) {
          begin_chunk("", 0, pos);
        }
        cur.raw_len += line_end - pos;
        break;
      }
      case Mode::kSchema: {
        cur.raw_len += line_end - pos;
        if (StartsWith(line, "COPY ") && EndsWith(line, "FROM stdin;")) {
          flush();  // schema chunk ends with the COPY header line
          mode = Mode::kRows;
        }
        break;
      }
      case Mode::kRows: {
        if (line == "\\.") {
          // The terminator (and the blank line after it) ride with the
          // table's last chunk, so a table's chunks concatenate to an
          // exact, re-loadable slice of the dump.
          if (!open) begin_chunk(table, row_next, pos);
          cur.raw_len += line_end - pos;
          if (line_end < n && dump[line_end] == '\n') {
            cur.raw_len += 1;
            line_end += 1;
          }
          flush();
          mode = Mode::kFiller;
        } else {
          if (!open) begin_chunk(table, row_next, pos);
          cur.raw_len += line_end - pos;
          cur.row_count += 1;
          row_next += 1;
          if (cur.raw_len >= target_bytes) flush();
        }
        break;
      }
    }
    pos = line_end;
  }
  if (mode != Mode::kFiller) {
    return Status::InvalidArgument("dump ends inside table '" + table +
                                   "' (no \\. terminator)");
  }
  flush();
  return chunks;
}

Result<RecordIndex> DeriveRecordIndex(const std::string& dump,
                                      BytesView stream,
                                      size_t target_bytes) {
  RecordIndex index;
  ULE_ASSIGN_OR_RETURN(index.scheme, dbcoder::PeekScheme(stream));
  index.dump_len = dump.size();
  index.stream_len = stream.size();
  ULE_ASSIGN_OR_RETURN(index.chunks, PlanDumpChunks(dump, target_bytes));

  if (dbcoder::IsSegmented(stream)) {
    ULE_ASSIGN_OR_RETURN(std::vector<dbcoder::SegmentSpan> segments,
                         dbcoder::ListSegments(stream));
    bool aligned = segments.size() == index.chunks.size();
    for (size_t i = 0; aligned && i < segments.size(); ++i) {
      aligned = segments[i].raw_offset == index.chunks[i].raw_offset &&
                segments[i].raw_len == index.chunks[i].raw_len;
    }
    if (aligned) {
      for (size_t i = 0; i < segments.size(); ++i) {
        index.chunks[i].stream_offset = segments[i].stream_offset;
        index.chunks[i].stream_len = segments[i].stream_len;
      }
      index.segmented = true;
      return index;
    }
    // A segmented stream whose segments do not match this chunk plan
    // (different archive-time target size): fall through to whole-stream
    // spans — correct, just without per-chunk decode savings.
  }
  for (IndexChunk& c : index.chunks) {
    c.stream_offset = 0;
    c.stream_len = stream.size();
  }
  return index;
}

}  // namespace core
}  // namespace ule
