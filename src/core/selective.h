/// \file selective.h
/// \brief Selective restoration: read only the frames a predicate needs.
///
/// A full restore (micr_olonys.h) pulls every frame off the reel; this
/// module answers "restore table `orders`" (optionally a row range and a
/// column subset) by resolving the predicate through the ULE-S1 record
/// index (record_index.h):
///
///   predicate → dump chunks → stream byte ranges → data emblem
///   sequence numbers → frame records (outer.h arithmetic) → seek reads
///   (filmstore::SeekableSource)
///
/// Only the touched frame records are read and only the touched emblems
/// are decoded; a decoded-payload LRU cache (bounded by
/// `SelectiveOptions::cache_bytes`) keeps chunk overlaps and group
/// recovery from re-reading. An emblem whose inner decode fails falls
/// back to fetching its whole group (including parity frames) and
/// erasure-decoding it, exactly like the streaming path.
///
/// Whole-table selections return the *exact byte slice* of the full dump
/// (schema + rows + terminator); row-range and column selections return a
/// well-formed dump projection (schema text, the selected rows, a
/// synthesized terminator) that `minidb::LoadSql` loads directly.

#ifndef ULE_CORE_SELECTIVE_H_
#define ULE_CORE_SELECTIVE_H_

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/record_index.h"
#include "filmstore/reel_reader.h"
#include "mocoder/mocoder.h"
#include "support/status.h"

namespace ule {
namespace core {

/// What to restore. `table` is required; an empty column list means every
/// column; the default row range means every row.
struct RestorePredicate {
  std::string table;
  std::vector<std::string> columns;  ///< table order is preserved
  uint64_t row_begin = 0;
  uint64_t row_count = UINT64_MAX;

  bool all_rows() const { return row_begin == 0 && row_count == UINT64_MAX; }
  bool all_columns() const { return columns.empty(); }
};

struct SelectiveOptions {
  /// Worker threads for the fan-out over needed frame records (0 =
  /// automatic, same convention as the rest of the pipeline).
  int threads = 0;
  /// Budget of the decoded-payload LRU cache in bytes.
  size_t cache_bytes = 32u << 20;
};

/// What one selective restore cost (reader-level reads come from
/// `ReelReader::read_counters`, so they cover exactly what hit storage).
struct SelectiveStats {
  uint64_t records_read = 0;    ///< frame records fetched from the reel
  uint64_t bytes_read = 0;      ///< payload bytes of those records
  size_t emblems_decoded = 0;   ///< inner decodes run (cache misses)
  size_t emblems_recovered = 0; ///< emblems rebuilt by the outer code
  size_t chunks_decoded = 0;    ///< dump chunks materialized
  size_t cache_hits = 0;        ///< payloads served from the LRU cache
};

/// \brief Resolves predicates against one archive through its record
/// index. Open once, restore many predicates — the payload cache and the
/// (lazily) decoded whole stream persist across calls. Not thread-safe;
/// one restorer per thread.
class SelectiveRestorer {
 public:
  /// Opens `reader`'s own ULE-S1 section. The reader must implement
  /// filmstore::SeekableSource (containers, directories and reel sets
  /// all do); NotFound when the archive carries no index — derive one
  /// with DeriveRecordIndex after a full restore and use the overload.
  static Result<SelectiveRestorer> Open(const filmstore::ReelReader& reader,
                                        const SelectiveOptions& options = {});
  /// Same, with an externally supplied (e.g. derived) index. The index
  /// must describe this archive; stream length and frame counts are
  /// cross-checked.
  static Result<SelectiveRestorer> Open(const filmstore::ReelReader& reader,
                                        RecordIndex index,
                                        const SelectiveOptions& options = {});

  const RecordIndex& index() const { return index_; }

  /// Lifetime counters of the decoded-payload LRU cache, across every
  /// Restore on this restorer (SelectiveStats is per-call and only counts
  /// the chunk-assembly probes; these gauge the cache itself, including
  /// group-recovery lookups — bench_microfilm records them).
  struct CacheCounters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };
  CacheCounters cache_counters() const;

  /// Restores the dump text selected by `pred` (see file comment for the
  /// exact shape). NotFound names the available tables when `pred.table`
  /// is not in the archive; a row range reaching past the table's end is
  /// clipped.
  Result<std::string> Restore(const RestorePredicate& pred,
                              SelectiveStats* stats = nullptr);

 private:
  SelectiveRestorer() = default;

  Result<std::string> ChunkText(size_t chunk_index);
  Result<Bytes> StreamSlice(uint64_t offset, uint64_t len);
  /// Seek-reads and inner-decodes the emblem with sequence number `seq`.
  /// Pure (no cache/stats mutation): safe to fan out across workers.
  Result<Bytes> FetchEmblem(uint16_t seq) const;
  Status RecoverGroup(int group);
  Status EnsureWholeDump();

  /// Bounded LRU over decoded emblem payloads, keyed by sequence number.
  class PayloadCache {
   public:
    explicit PayloadCache(size_t budget) : budget_(budget) {}
    const Bytes* Get(uint16_t seq);
    void Put(uint16_t seq, Bytes payload);
    const CacheCounters& counters() const { return counters_; }

   private:
    size_t budget_;
    size_t bytes_ = 0;
    std::list<uint16_t> lru_;  ///< front = most recently used
    std::unordered_map<uint16_t,
                       std::pair<Bytes, std::list<uint16_t>::iterator>>
        entries_;
    CacheCounters counters_;
  };

  const filmstore::ReelReader* reader_ = nullptr;
  const filmstore::SeekableSource* seek_ = nullptr;
  RecordIndex index_;
  SelectiveOptions options_;
  int capacity_ = 0;  ///< payload bytes per emblem
  std::optional<PayloadCache> cache_;
  std::optional<std::string> whole_dump_;  ///< unsegmented fallback
  SelectiveStats run_;  ///< accumulator of the restore in progress
};

/// One-shot convenience over SelectiveRestorer: open the reader's index
/// and restore a single predicate.
Result<std::string> RestoreSelective(const filmstore::ReelReader& reader,
                                     const RestorePredicate& pred,
                                     const SelectiveOptions& options = {},
                                     SelectiveStats* stats = nullptr);

}  // namespace core
}  // namespace ule

#endif  // ULE_CORE_SELECTIVE_H_
