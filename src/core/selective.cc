#include "core/selective.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <string_view>

#include "mocoder/detect.h"
#include "mocoder/outer.h"
#include "support/parallel.h"

namespace ule {
namespace core {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// The schema chunk, re-parsed for column projection: table name plus
/// the column definitions in dump order.
struct SchemaParts {
  std::string table;
  std::vector<std::string> names;
  std::vector<std::string> defs;  ///< "name type", no trailing comma
};

Result<SchemaParts> ParseSchemaChunk(const std::string& text) {
  SchemaParts parts;
  size_t pos = 0;
  bool in_columns = false;
  while (pos < text.size()) {
    const size_t eol = text.find('\n', pos);
    const std::string_view line(
        text.data() + pos, (eol == std::string::npos ? text.size() : eol) - pos);
    if (line.rfind("CREATE TABLE ", 0) == 0) {
      std::string_view name = line.substr(13);
      const size_t cut = name.find_first_of(" (");
      if (cut != std::string_view::npos) name = name.substr(0, cut);
      parts.table = std::string(name);
      in_columns = true;
    } else if (in_columns) {
      std::string_view def = Trim(line);
      if (def == ");") {
        in_columns = false;
      } else if (!def.empty()) {
        if (def.back() == ',') def.remove_suffix(1);
        const size_t sp = def.find(' ');
        if (sp == std::string_view::npos) {
          return Status::Corruption("schema chunk has a malformed column "
                                    "definition: " + std::string(def));
        }
        parts.names.emplace_back(def.substr(0, sp));
        parts.defs.emplace_back(def);
      }
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  if (parts.table.empty() || parts.names.empty()) {
    return Status::Corruption("schema chunk has no CREATE TABLE block");
  }
  return parts;
}

std::string BuildProjectedSchema(const SchemaParts& parts,
                                 const std::vector<size_t>& keep) {
  std::string out = "CREATE TABLE " + parts.table + " (\n";
  for (size_t i = 0; i < keep.size(); ++i) {
    out += "    " + parts.defs[keep[i]];
    out += i + 1 < keep.size() ? ",\n" : "\n";
  }
  out += ");\n";
  out += "COPY " + parts.table + " (";
  for (size_t i = 0; i < keep.size(); ++i) {
    if (i) out += ", ";
    out += parts.names[keep[i]];
  }
  out += ") FROM stdin;\n";
  return out;
}

/// Keeps the selected tab-separated fields of one row line (positions
/// ascending). Corruption when the row has fewer fields than the schema.
Result<std::string> ProjectRow(std::string_view line, size_t field_count,
                               const std::vector<size_t>& keep) {
  std::vector<std::string_view> fields;
  fields.reserve(field_count);
  size_t start = 0;
  for (;;) {
    const size_t tab = line.find('\t', start);
    if (tab == std::string_view::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
  if (fields.size() != field_count) {
    return Status::Corruption("row has " + std::to_string(fields.size()) +
                              " fields where the schema has " +
                              std::to_string(field_count));
  }
  std::string out;
  for (size_t i = 0; i < keep.size(); ++i) {
    if (i) out += '\t';
    out.append(fields[keep[i]].data(), fields[keep[i]].size());
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// PayloadCache

const Bytes* SelectiveRestorer::PayloadCache::Get(uint16_t seq) {
  auto it = entries_.find(seq);
  if (it == entries_.end()) {
    ++counters_.misses;
    return nullptr;
  }
  ++counters_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.second);
  return &it->second.first;
}

void SelectiveRestorer::PayloadCache::Put(uint16_t seq, Bytes payload) {
  auto it = entries_.find(seq);
  if (it != entries_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.second);
    bytes_ -= it->second.first.size();
    bytes_ += payload.size();
    it->second.first = std::move(payload);
  } else {
    bytes_ += payload.size();
    lru_.push_front(seq);
    entries_.emplace(seq, std::make_pair(std::move(payload), lru_.begin()));
  }
  while (bytes_ > budget_ && entries_.size() > 1) {
    const uint16_t victim = lru_.back();
    lru_.pop_back();
    auto v = entries_.find(victim);
    bytes_ -= v->second.first.size();
    entries_.erase(v);
    ++counters_.evictions;
  }
}

// ---------------------------------------------------------------------------
// SelectiveRestorer

SelectiveRestorer::CacheCounters SelectiveRestorer::cache_counters() const {
  return cache_.has_value() ? cache_->counters() : CacheCounters{};
}

Result<SelectiveRestorer> SelectiveRestorer::Open(
    const filmstore::ReelReader& reader, const SelectiveOptions& options) {
  ULE_ASSIGN_OR_RETURN(Bytes section, reader.ReadIndexSection());
  ULE_ASSIGN_OR_RETURN(RecordIndex index, RecordIndex::Parse(section));
  return Open(reader, std::move(index), options);
}

Result<SelectiveRestorer> SelectiveRestorer::Open(
    const filmstore::ReelReader& reader, RecordIndex index,
    const SelectiveOptions& options) {
  const auto* seek = dynamic_cast<const filmstore::SeekableSource*>(&reader);
  if (seek == nullptr) {
    return Status::InvalidArgument(
        std::string("reel backend '") + reader.kind() +
        "' does not support seek reads (selective restore needs a "
        "filmstore::SeekableSource)");
  }
  const int capacity =
      mocoder::EmblemCapacity(reader.emblem_options().data_side);
  if (capacity <= 0) {
    return Status::InvalidArgument("emblem geometry too small");
  }
  // Cross-check that the index describes *this* archive before trusting
  // its byte ranges: the emblem arithmetic over its stream length must
  // reproduce the reel's data-frame count exactly.
  const size_t want = static_cast<size_t>(
      mocoder::TotalEmblemCount(index.stream_len, capacity));
  const size_t have = reader.frame_count(mocoder::StreamId::kData);
  if (want != have) {
    return Status::InvalidArgument(
        "record index describes a " + std::to_string(want) +
        "-frame data stream but the reel has " + std::to_string(have) +
        " data frames");
  }
  SelectiveRestorer r;
  r.reader_ = &reader;
  r.seek_ = seek;
  r.index_ = std::move(index);
  r.options_ = options;
  r.capacity_ = capacity;
  // Group recovery caches a whole group's data payloads at once; a budget
  // below that would evict its own results mid-recovery.
  r.options_.cache_bytes =
      std::max(r.options_.cache_bytes,
               static_cast<size_t>(mocoder::kGroupSize) * capacity * 2);
  r.cache_.emplace(r.options_.cache_bytes);
  return r;
}

Result<Bytes> SelectiveRestorer::FetchEmblem(uint16_t seq) const {
  const int frame =
      mocoder::FrameIndexOfSeq(seq, index_.stream_len, capacity_);
  if (frame < 0) {
    return Status::InvalidArgument("emblem seq " + std::to_string(seq) +
                                   " is virtual (never emitted)");
  }
  ULE_ASSIGN_OR_RETURN(
      media::Image scan,
      seek_->ReadFrame(mocoder::StreamId::kData, static_cast<size_t>(frame)));
  ULE_ASSIGN_OR_RETURN(
      Bytes grid,
      mocoder::SampleEmblem(scan, reader_->emblem_options().data_side));
  mocoder::EmblemHeader header;
  ULE_ASSIGN_OR_RETURN(
      Bytes payload,
      mocoder::DecodeEmblemIntensities(
          grid, reader_->emblem_options().data_side, &header));
  if (header.stream != mocoder::StreamId::kData || header.seq != seq) {
    return Status::Corruption(
        "data frame " + std::to_string(frame) + " carries emblem seq " +
        std::to_string(header.seq) + ", expected " + std::to_string(seq));
  }
  return payload;
}

Status SelectiveRestorer::RecoverGroup(int group) {
  // Pull everything the group still has — data slots and parity — and let
  // the outer code rebuild the rest (up to 3 losses per group, FORMAT.md
  // §4). Failed inner decodes are exactly the losses recovery exists for.
  std::map<uint16_t, Bytes> payloads;
  for (int s = 0; s < mocoder::kGroupSize; ++s) {
    const uint16_t seq =
        static_cast<uint16_t>(group * mocoder::kGroupSize + s);
    if (const Bytes* cached = cache_->Get(seq)) {
      payloads.emplace(seq, *cached);
      continue;
    }
    if (mocoder::FrameIndexOfSeq(seq, index_.stream_len, capacity_) < 0) {
      continue;  // virtual slot: RecoverGroupData zero-fills it
    }
    auto fetched = FetchEmblem(seq);
    if (fetched.ok()) {
      run_.emblems_decoded += 1;
      payloads.emplace(seq, std::move(fetched).TakeValue());
    }
  }
  ULE_ASSIGN_OR_RETURN(
      std::vector<Bytes> data,
      mocoder::RecoverGroupData(group, payloads, index_.stream_len,
                                capacity_));
  const int data_count =
      mocoder::DataEmblemCount(index_.stream_len, capacity_);
  for (int s = 0; s < mocoder::kGroupData; ++s) {
    const int d = group * mocoder::kGroupData + s;
    if (d >= data_count) break;
    const uint16_t seq = mocoder::SeqOfDataIndex(d);
    if (payloads.find(seq) == payloads.end()) run_.emblems_recovered += 1;
    cache_->Put(seq, std::move(data[s]));
  }
  return Status::OK();
}

Result<Bytes> SelectiveRestorer::StreamSlice(uint64_t offset, uint64_t len) {
  Bytes out;
  out.reserve(len);
  if (len == 0) return out;
  if (offset + len > index_.stream_len) {
    return Status::InvalidArgument("stream slice past the end");
  }
  const uint64_t cap = static_cast<uint64_t>(capacity_);
  const int first = static_cast<int>(offset / cap);
  const int last = static_cast<int>((offset + len + cap - 1) / cap);

  // Payloads already decoded stay in the cache; the rest fan out across
  // workers (seek reads and inner decodes are pure), then land in the
  // cache serially. `local` pins this slice's payloads against eviction.
  std::map<int, Bytes> local;
  std::vector<int> missing;
  for (int d = first; d < last; ++d) {
    if (const Bytes* p = cache_->Get(mocoder::SeqOfDataIndex(d))) {
      run_.cache_hits += 1;
      local.emplace(d, *p);
    } else {
      missing.push_back(d);
    }
  }
  if (!missing.empty()) {
    std::vector<std::optional<Result<Bytes>>> fetched(missing.size());
    ULE_RETURN_IF_ERROR(ParallelFor(
        0, missing.size(),
        [&](size_t i) -> Status {
          fetched[i] = FetchEmblem(mocoder::SeqOfDataIndex(missing[i]));
          return Status::OK();
        },
        options_.threads));
    for (size_t i = 0; i < missing.size(); ++i) {
      const int d = missing[i];
      Result<Bytes>& r = *fetched[i];
      if (r.ok()) {
        run_.emblems_decoded += 1;
        cache_->Put(mocoder::SeqOfDataIndex(d), r.value());
        local.emplace(d, std::move(r).TakeValue());
        continue;
      }
      // Lost emblem: rebuild its whole group through the outer code.
      ULE_RETURN_IF_ERROR(RecoverGroup(d / mocoder::kGroupData));
      const Bytes* p = cache_->Get(mocoder::SeqOfDataIndex(d));
      if (p == nullptr) {
        return Status::Corruption("group recovery did not yield emblem " +
                                  std::to_string(d));
      }
      local.emplace(d, *p);
    }
  }
  for (int d = first; d < last; ++d) {
    const Bytes& payload = local.at(d);
    const uint64_t emblem_begin = static_cast<uint64_t>(d) * cap;
    const uint64_t begin = std::max(offset, emblem_begin);
    const uint64_t end = std::min(offset + len, emblem_begin + cap);
    out.insert(out.end(), payload.begin() + (begin - emblem_begin),
               payload.begin() + (end - emblem_begin));
  }
  return out;
}

Result<std::string> SelectiveRestorer::ChunkText(size_t chunk_index) {
  const IndexChunk& c = index_.chunks[chunk_index];
  run_.chunks_decoded += 1;
  if (!index_.segmented) {
    // Unsegmented stream: everything decodes in one piece. Decode once,
    // slice many — later predicates hit the materialized dump.
    ULE_RETURN_IF_ERROR(EnsureWholeDump());
    return whole_dump_->substr(c.raw_offset, c.raw_len);
  }
  ULE_ASSIGN_OR_RETURN(Bytes slice, StreamSlice(c.stream_offset,
                                                c.stream_len));
  ULE_ASSIGN_OR_RETURN(Bytes raw, dbcoder::Decode(slice));
  if (raw.size() != c.raw_len) {
    return Status::Corruption(
        "dump chunk " + std::to_string(chunk_index) + " decoded to " +
        std::to_string(raw.size()) + " bytes, index records " +
        std::to_string(c.raw_len));
  }
  return ToString(raw);
}

Status SelectiveRestorer::EnsureWholeDump() {
  if (whole_dump_.has_value()) return Status::OK();
  ULE_ASSIGN_OR_RETURN(Bytes stream, StreamSlice(0, index_.stream_len));
  ULE_ASSIGN_OR_RETURN(Bytes raw, dbcoder::Decode(stream));
  if (raw.size() != index_.dump_len) {
    return Status::Corruption("archive decoded to " +
                              std::to_string(raw.size()) +
                              " bytes, index records " +
                              std::to_string(index_.dump_len));
  }
  whole_dump_ = ToString(raw);
  return Status::OK();
}

Result<std::string> SelectiveRestorer::Restore(const RestorePredicate& pred,
                                               SelectiveStats* stats) {
  run_ = SelectiveStats{};
  const filmstore::ReadCounters before = reader_->read_counters();
  if (pred.table.empty()) {
    return Status::InvalidArgument("selective restore needs a table");
  }
  const std::vector<size_t> chunks = index_.ChunksOfTable(pred.table);
  if (chunks.empty()) {
    std::string tables;
    for (const std::string& t : index_.Tables()) {
      if (!tables.empty()) tables += ", ";
      tables += t;
    }
    return Status::NotFound("table '" + pred.table +
                            "' is not in the archive (tables: " + tables +
                            ")");
  }

  std::string out;
  if (pred.all_rows() && pred.all_columns()) {
    // Whole table: the exact byte slice of the full dump.
    for (size_t i : chunks) {
      ULE_ASSIGN_OR_RETURN(std::string text, ChunkText(i));
      out += text;
    }
  } else {
    // Projection: schema text (column-filtered when asked), the selected
    // rows, then a synthesized terminator — a well-formed dump of its own.
    ULE_ASSIGN_OR_RETURN(std::string schema_text, ChunkText(chunks.front()));
    ULE_ASSIGN_OR_RETURN(SchemaParts schema, ParseSchemaChunk(schema_text));
    std::vector<size_t> keep;
    if (pred.all_columns()) {
      out += schema_text;
    } else {
      for (size_t i = 0; i < schema.names.size(); ++i) {
        if (std::find(pred.columns.begin(), pred.columns.end(),
                      schema.names[i]) != pred.columns.end()) {
          keep.push_back(i);
        }
      }
      for (const std::string& want : pred.columns) {
        if (std::find(schema.names.begin(), schema.names.end(), want) ==
            schema.names.end()) {
          return Status::InvalidArgument(
              "table '" + pred.table + "' has no column '" + want + "'");
        }
      }
      out += BuildProjectedSchema(schema, keep);
    }

    const uint64_t total_rows = index_.RowsOfTable(pred.table);
    const uint64_t row_begin = std::min(pred.row_begin, total_rows);
    const uint64_t row_end =
        row_begin + std::min(pred.row_count, total_rows - row_begin);
    for (size_t ci : chunks) {
      const IndexChunk& c = index_.chunks[ci];
      if (c.row_count == 0) continue;
      if (c.row_begin >= row_end || c.row_begin + c.row_count <= row_begin) {
        continue;
      }
      ULE_ASSIGN_OR_RETURN(std::string text, ChunkText(ci));
      size_t pos = 0;
      for (uint64_t r = c.row_begin; r < c.row_begin + c.row_count; ++r) {
        const size_t eol = text.find('\n', pos);
        if (eol == std::string::npos) {
          return Status::Corruption("dump chunk decodes to fewer rows than "
                                    "the index records");
        }
        if (r >= row_begin && r < row_end) {
          const std::string_view line(text.data() + pos, eol - pos);
          if (pred.all_columns()) {
            out.append(line.data(), line.size());
          } else {
            ULE_ASSIGN_OR_RETURN(
                std::string projected,
                ProjectRow(line, schema.names.size(), keep));
            out += projected;
          }
          out += '\n';
        }
        pos = eol + 1;
      }
    }
    out += "\\.\n\n";
  }

  const filmstore::ReadCounters after = reader_->read_counters();
  run_.records_read = after.records - before.records;
  run_.bytes_read = after.bytes - before.bytes;
  if (stats != nullptr) *stats = run_;
  return out;
}

Result<std::string> RestoreSelective(const filmstore::ReelReader& reader,
                                     const RestorePredicate& pred,
                                     const SelectiveOptions& options,
                                     SelectiveStats* stats) {
  ULE_ASSIGN_OR_RETURN(SelectiveRestorer restorer,
                       SelectiveRestorer::Open(reader, options));
  return restorer.Restore(pred, stats);
}

}  // namespace core
}  // namespace ule
