/// \file micr_olonys.h
/// \brief Micr'Olonys: the end-to-end ULE archival system (paper §3.3).
///
/// Archival (Fig. 2a):
///   1. db_dump extracts the database as text        (minidb::DumpSql)
///   2. DBCoder compresses it                        (dbcoder::Encode)
///   3. MOCoder turns it into data emblems           (mocoder)
///   4. the decoders are written in DynaRisc         (src/decoders)
///   5. DBDecode's instruction stream becomes system emblems
///   6. MODecode + the DynaRisc emulator become the Bootstrap letters
///   7. everything is rendered to media frames       (media)
///
/// Restoration (Fig. 2b) — two paths through the same scanned frames:
///   * RestoreNative: contemporary C++ decoders (the archival-time check);
///   * RestoreEmulated: the future user's path — only the Bootstrap
///     document and the scans are used: the VeRisc emulator is
///     instantiated, the DynaRisc emulator is loaded from the Bootstrap
///     letters, MODecode decodes the system emblems to recover DBDecode,
///     and DBDecode decodes the data stream back into the SQL dump.

#ifndef ULE_CORE_MICR_OLONYS_H_
#define ULE_CORE_MICR_OLONYS_H_

#include <string>
#include <vector>

#include "core/record_index.h"
#include "dbcoder/dbcoder.h"
#include "filmstore/frame_store.h"
#include "media/image.h"
#include "media/profiles.h"
#include "mocoder/mocoder.h"
#include "support/status.h"
#include "verisc/verisc.h"

namespace ule {
namespace core {

/// \brief Version string of the complete on-film archival format.
///
/// Covers every layer a future historian must understand: the emblem
/// geometry and header, the outer RS(20,17) grouping, the DBCoder
/// container, and the Bootstrap document chain. The normative,
/// human-readable specification lives in docs/FORMAT.md, which records
/// this exact string; the docs check (tools/check_docs.py) fails the
/// build when the two diverge. Bump only with a documented, decodable
/// migration path — archived media cannot be re-written.
inline constexpr char kUleFormatVersion[] = "ULE-F1";

/// Archival parameters.
///
/// `emblem.threads` is the pipeline-wide parallelism knob: emblem
/// encode/render/decode and the data/system stream fan-out all honour it
/// (0 = automatic via `ULE_THREADS`/hardware threads, 1 = fully serial).
/// Output is byte-identical at any thread count.
struct ArchiveOptions {
  dbcoder::Scheme scheme = dbcoder::Scheme::kLzac;  ///< DBCoder scheme
  mocoder::Options emblem;                          ///< emblem geometry
  bool render_images = true;  ///< produce printable frames (else grids only)
  /// Build the ULE-S1 record index (docs/FORMAT.md §11): the dump is
  /// chunked along its table structure, the DBCoder stream is written
  /// segmented (UDBS, §11.1) so each chunk decodes independently, and
  /// ArchiveDumpStreaming hands the serialized index to the sink when it
  /// is an ArchiveWriter (Finish persists it). Costs a little
  /// compression ratio (per-chunk contexts); enables RestoreSelective.
  bool build_index = false;
  /// Target dump bytes per index chunk (0 = kDefaultIndexChunkBytes).
  size_t index_chunk_bytes = 0;
};

/// A complete physical archive: what gets written to the analog medium.
struct Archive {
  std::vector<mocoder::EncodedEmblem> data_emblems;
  std::vector<mocoder::EncodedEmblem> system_emblems;
  std::string bootstrap_text;            ///< the seven-page document
  std::vector<media::Image> data_images;    ///< rendered frames
  std::vector<media::Image> system_images;
  mocoder::Options emblem_options;       ///< recorded for restoration
  size_t dump_bytes = 0;                 ///< size of the textual archive
  size_t compressed_bytes = 0;           ///< DBCoder container size
};

/// Steps 1-7: archives a textual database dump.
Result<Archive> ArchiveDump(const std::string& sql_dump,
                            const ArchiveOptions& options);

/// What remains of a streaming archive after the frames have been written
/// out: the Bootstrap document and the numbers the benches report.
struct ArchiveSummary {
  std::string bootstrap_text;       ///< the seven-page document
  mocoder::Options emblem_options;  ///< recorded for restoration (threads=0:
                                    ///< parallelism is never archival)
  /// Worker threads the archiving machine actually used (the resolved
  /// value of ArchiveOptions::emblem.threads) — reporting only, not part
  /// of the archived format.
  int threads_used = 0;
  size_t dump_bytes = 0;
  size_t compressed_bytes = 0;
  size_t data_frames = 0;
  size_t system_frames = 0;
  /// How the sink split the archive across physical reels (one entry per
  /// reel for sharding/spooling backends, empty for sinks with no reel
  /// notion). Reported by the sink itself after the last frame lands, so
  /// benches and ulectl can account per reel without knowing the backend.
  std::vector<filmstore::ReelStats> reels;
};

/// \brief Steps 1-7 with bounded memory: frames flow to `sink` (any
/// filmstore backend — an in-memory store, a directory of scans, the
/// ULE-C1 spool container, or a sharding reel set) through the
/// shared-pool streaming pipeline instead of materializing in an
/// Archive, so peak frame memory is O(threads × emblem) — the shape a
/// film recorder consumes, even when the archive is much larger than
/// RAM. The emblems and frames handed to `sink` are byte-identical to
/// ArchiveDump's at any thread count.
Result<ArchiveSummary> ArchiveDumpStreaming(const std::string& sql_dump,
                                            const ArchiveOptions& options,
                                            filmstore::FrameSink& sink);

/// Restoration statistics (reported by the benches).
struct RestoreStats {
  mocoder::DecodeStats data_stream;
  mocoder::DecodeStats system_stream;
  uint64_t emulated_steps = 0;  ///< VeRisc instructions (emulated path)
};

/// Fast restoration path with contemporary (C++) decoders.
Result<std::string> RestoreNative(const std::vector<media::Image>& data_scans,
                                  const std::vector<media::Image>& system_scans,
                                  const mocoder::Options& emblem_options,
                                  RestoreStats* stats = nullptr);

/// \brief RestoreNative with bounded memory: frames are pulled one at a
/// time from any filmstore::FrameSource (a scanner shim, a directory of
/// scans, a ULE-C1 container) and decoded concurrently with at most
/// O(threads) frames in flight, instead of requiring every scan in a
/// vector up front. Output and per-stream DecodeStats are byte-identical
/// to RestoreNative over the same frames. A null `system_frames` (or one
/// yielding nothing) skips the system-stream verification, like an empty
/// `system_scans` vector.
Result<std::string> RestoreNativeStreaming(
    filmstore::FrameSource& data_frames,
    filmstore::FrameSource* system_frames,
    const mocoder::Options& emblem_options, RestoreStats* stats = nullptr);

/// \brief The full ULE path: restores using ONLY the Bootstrap text and the
/// scans. `vm` is the user's VeRisc implementation (any of
/// verisc::AllImplementations, default the reference).
///
/// The system emblems are decoded by the archived MODecode running under
/// nested emulation, which recovers the archived DBDecode program; DBDecode
/// (again under nested emulation) then decompresses the data stream.
/// Per-emblem nested decodes run on `emblem_options.threads` workers; `vm`
/// must therefore be reentrant (true for all of AllImplementations — each
/// run uses only local state).
Result<std::string> RestoreEmulated(
    const std::vector<media::Image>& data_scans,
    const std::vector<media::Image>& system_scans,
    const std::string& bootstrap_text, const mocoder::Options& emblem_options,
    RestoreStats* stats = nullptr,
    verisc::VmFunction vm = &verisc::Run);

/// \brief RestoreEmulated with bounded memory: the full ULE path (only
/// the Bootstrap text and the scans), pulling frames one at a time from
/// filmstore sources instead of materialized scan vectors. The system
/// stream is decoded first (it yields the archived DBDecode program),
/// then the data stream — reel order, each with the full thread budget;
/// per-scan nested decodes fan out across pool workers with O(threads)
/// frames in flight. Output, per-stream DecodeStats and the emulated
/// step count are byte-identical to RestoreEmulated over the same frames
/// at any thread count.
Result<std::string> RestoreEmulatedStreaming(
    filmstore::FrameSource& data_frames,
    filmstore::FrameSource& system_frames,
    const std::string& bootstrap_text, const mocoder::Options& emblem_options,
    RestoreStats* stats = nullptr,
    verisc::VmFunction vm = &verisc::Run);

}  // namespace core
}  // namespace ule

#endif  // ULE_CORE_MICR_OLONYS_H_
