/// \file micr_olonys.h
/// \brief Micr'Olonys: the end-to-end ULE archival system (paper §3.3).
///
/// Archival (Fig. 2a):
///   1. db_dump extracts the database as text        (minidb::DumpSql)
///   2. DBCoder compresses it                        (dbcoder::Encode)
///   3. MOCoder turns it into data emblems           (mocoder)
///   4. the decoders are written in DynaRisc         (src/decoders)
///   5. DBDecode's instruction stream becomes system emblems
///   6. MODecode + the DynaRisc emulator become the Bootstrap letters
///   7. everything is rendered to media frames       (media)
///
/// Restoration (Fig. 2b) — two paths through the same scanned frames:
///   * RestoreNative: contemporary C++ decoders (the archival-time check);
///   * RestoreEmulated: the future user's path — only the Bootstrap
///     document and the scans are used: the VeRisc emulator is
///     instantiated, the DynaRisc emulator is loaded from the Bootstrap
///     letters, MODecode decodes the system emblems to recover DBDecode,
///     and DBDecode decodes the data stream back into the SQL dump.

#ifndef ULE_CORE_MICR_OLONYS_H_
#define ULE_CORE_MICR_OLONYS_H_

#include <string>
#include <vector>

#include "dbcoder/dbcoder.h"
#include "media/image.h"
#include "media/profiles.h"
#include "mocoder/mocoder.h"
#include "support/status.h"
#include "verisc/verisc.h"

namespace ule {
namespace core {

/// Archival parameters.
///
/// `emblem.threads` is the pipeline-wide parallelism knob: emblem
/// encode/render/decode and the data/system stream fan-out all honour it
/// (0 = automatic via `ULE_THREADS`/hardware threads, 1 = fully serial).
/// Output is byte-identical at any thread count.
struct ArchiveOptions {
  dbcoder::Scheme scheme = dbcoder::Scheme::kLzac;  ///< DBCoder scheme
  mocoder::Options emblem;                          ///< emblem geometry
  bool render_images = true;  ///< produce printable frames (else grids only)
};

/// A complete physical archive: what gets written to the analog medium.
struct Archive {
  std::vector<mocoder::EncodedEmblem> data_emblems;
  std::vector<mocoder::EncodedEmblem> system_emblems;
  std::string bootstrap_text;            ///< the seven-page document
  std::vector<media::Image> data_images;    ///< rendered frames
  std::vector<media::Image> system_images;
  mocoder::Options emblem_options;       ///< recorded for restoration
  size_t dump_bytes = 0;                 ///< size of the textual archive
  size_t compressed_bytes = 0;           ///< DBCoder container size
};

/// Steps 1-7: archives a textual database dump.
Result<Archive> ArchiveDump(const std::string& sql_dump,
                            const ArchiveOptions& options);

/// Restoration statistics (reported by the benches).
struct RestoreStats {
  mocoder::DecodeStats data_stream;
  mocoder::DecodeStats system_stream;
  uint64_t emulated_steps = 0;  ///< VeRisc instructions (emulated path)
};

/// Fast restoration path with contemporary (C++) decoders.
Result<std::string> RestoreNative(const std::vector<media::Image>& data_scans,
                                  const std::vector<media::Image>& system_scans,
                                  const mocoder::Options& emblem_options,
                                  RestoreStats* stats = nullptr);

/// \brief The full ULE path: restores using ONLY the Bootstrap text and the
/// scans. `vm` is the user's VeRisc implementation (any of
/// verisc::AllImplementations, default the reference).
///
/// The system emblems are decoded by the archived MODecode running under
/// nested emulation, which recovers the archived DBDecode program; DBDecode
/// (again under nested emulation) then decompresses the data stream.
/// Per-emblem nested decodes run on `emblem_options.threads` workers; `vm`
/// must therefore be reentrant (true for all of AllImplementations — each
/// run uses only local state).
Result<std::string> RestoreEmulated(
    const std::vector<media::Image>& data_scans,
    const std::vector<media::Image>& system_scans,
    const std::string& bootstrap_text, const mocoder::Options& emblem_options,
    RestoreStats* stats = nullptr,
    verisc::VmFunction vm = &verisc::Run);

}  // namespace core
}  // namespace ule

#endif  // ULE_CORE_MICR_OLONYS_H_
