/// \file filmstore_testutil.h
/// \brief Shared helpers for suites that build film-store reels on disk
/// (reel_set_test, scrub_test): deterministic encoded streams, sharded
/// reel sets with optional ULE-P1 parity, and frame comparisons.

#ifndef ULE_TESTS_FILMSTORE_TESTUTIL_H_
#define ULE_TESTS_FILMSTORE_TESTUTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "filmstore/frame_store.h"
#include "filmstore/reel_set.h"
#include "media/image.h"
#include "mocoder/mocoder.h"
#include "support/bytes.h"
#include "support/random.h"

namespace ule {
namespace filmstore {
namespace testutil {

inline mocoder::Options SmallOptions() {
  mocoder::Options opt;
  opt.data_side = 65;  // smallest geometry: fast encodes
  opt.dots_per_cell = 2;
  return opt;
}

/// A small deterministic payload encoded + rendered into frames of one
/// stream (the shape ArchiveDumpStreaming hands a sink).
struct EncodedStream {
  Bytes payload;
  std::vector<mocoder::EncodedEmblem> emblems;
  std::vector<media::Image> frames;
};

inline EncodedStream MakeStream(mocoder::StreamId id, size_t payload_bytes,
                                uint32_t seed) {
  EncodedStream out;
  out.payload = RandomBytes(seed, payload_bytes);
  Status st = mocoder::EncodeToSink(
      out.payload, id, SmallOptions(), /*render=*/true,
      [&](mocoder::EncodedEmblem&& emblem, media::Image&& frame) -> Status {
        out.emblems.push_back(std::move(emblem));
        out.frames.push_back(std::move(frame));
        return Status::OK();
      });
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

/// Drains a source into a vector, failing the test on any error.
inline std::vector<media::Image> Drain(FrameSource& source) {
  std::vector<media::Image> frames;
  for (;;) {
    auto next = source.Next();
    EXPECT_TRUE(next.ok()) << next.status().ToString();
    if (!next.ok() || !next.value().has_value()) break;
    frames.push_back(std::move(*next.value()));
  }
  return frames;
}

inline void ExpectSameFrames(const std::vector<media::Image>& a,
                             const std::vector<media::Image>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pixels(), b[i].pixels()) << "frame " << i;
  }
}

inline void FillSink(FrameSink& sink, const EncodedStream& data,
                     const EncodedStream& system) {
  for (size_t i = 0; i < data.frames.size(); ++i) {
    media::Image frame = data.frames[i];
    ASSERT_TRUE(sink.Append(mocoder::StreamId::kData, data.emblems[i],
                            std::move(frame))
                    .ok());
  }
  for (size_t i = 0; i < system.frames.size(); ++i) {
    media::Image frame = system.frames[i];
    ASSERT_TRUE(sink.Append(mocoder::StreamId::kSystem, system.emblems[i],
                            std::move(frame))
                    .ok());
  }
}

inline ShardPolicy ByFrames(size_t n) {
  ShardPolicy p;
  p.max_frames_per_reel = n;
  return p;
}

/// Builds a sharded reel set (optionally with ULE-P1 parity) at `path`.
inline void WriteSetAt(const std::string& path, const EncodedStream& data,
                       const EncodedStream& system, const ShardPolicy& shard,
                       int parity_reels = 0) {
  ReelSetWriter::Options opt;
  opt.shard = shard;
  opt.archive_id = 0x1DB2026;
  opt.parity_reels = parity_reels;
  auto writer = ReelSetWriter::Create(path, SmallOptions(), opt);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  FillSink(*writer.value(), data, system);
  ASSERT_TRUE(writer.value()->AppendBootstrap("THE BOOTSTRAP\n").ok());
  Status finished = writer.value()->Finish();
  ASSERT_TRUE(finished.ok()) << finished.ToString();
}

}  // namespace testutil
}  // namespace filmstore
}  // namespace ule

#endif  // ULE_TESTS_FILMSTORE_TESTUTIL_H_
