// The scrub engine behind `ulectl scrub`: fleet discovery, per-archive
// verdicts, parity repair, and checkpointed resume. The heart of the
// suite is a reel-loss fault-injection matrix — {shard size} × {whole
// reels deleted, truncations at three ratios, silent bit flips in data
// and parity, a corrupted catalog parity section} — asserting that
// repair restores every file byte-identically when the damage is within
// the parity budget, and that anything beyond it degrades to a clean,
// named data-loss verdict, never a crash or a silently wrong repair.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "filmstore/container.h"
#include "filmstore/parity.h"
#include "filmstore/reel_set.h"
#include "filmstore/scrub.h"
#include "mocoder/mocoder.h"
#include "support/io.h"
#include "tests/filmstore_testutil.h"

namespace ule {
namespace filmstore {
namespace {

using testutil::ByFrames;
using testutil::Drain;
using testutil::EncodedStream;
using testutil::ExpectSameFrames;
using testutil::FillSink;
using testutil::MakeStream;
using testutil::SmallOptions;
using testutil::WriteSetAt;

/// Fresh directory under the test temp dir (shared by concurrently
/// running test processes, so every name carries the test's own tag).
std::string FreshDir(const std::string& tag) {
  const std::string dir = testing::TempDir() + tag + "/";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Byte snapshot of every regular file under `dir` (relative name →
/// contents) — the ground truth a repair must reproduce exactly.
std::map<std::string, Bytes> SnapshotDir(const std::string& dir) {
  std::map<std::string, Bytes> files;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    auto bytes = ReadFileBytes(entry.path().string());
    EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
    files[std::filesystem::relative(entry.path(), dir).string()] =
        std::move(bytes).TakeValue();
  }
  return files;
}

/// Writes a standalone single-container archive holding `data`.
void WriteContainerAt(const std::string& path, const EncodedStream& data) {
  auto writer = ContainerWriter::Create(path, SmallOptions());
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  FillSink(*writer.value(), data, EncodedStream());
  ASSERT_TRUE(writer.value()->Finish().ok());
}

// ---------------------------------------------------------------------------
// Fault-injection matrix

enum class FaultKind {
  kNone,                  // untouched archive
  kDeleteOne,             // 1 whole reel removed (≤ m)
  kDeleteTwo,             // 2 whole reels removed (= m)
  kDeleteThree,           // 3 whole reels removed (> m)
  kTruncateQuarter,       // one reel cut to 25% of its bytes
  kTruncateHalf,          //                 50%
  kTruncateNinety,        //                 90%
  kFlipDataByte,          // silent corruption inside a record payload
  kFlipParityByte,        // silent corruption inside a parity stripe
  kCorruptCatalogParity,  // flipped byte in the catalog's ULE-P1 section
};

struct FaultCase {
  const char* name;
  FaultKind kind;
  ArchiveState unrepaired;  ///< scrub verdict without repair
  ArchiveState repaired;    ///< scrub verdict with repair
};

constexpr FaultCase kFaultCases[] = {
    {"none", FaultKind::kNone, ArchiveState::kHealthy, ArchiveState::kHealthy},
    {"delete_one", FaultKind::kDeleteOne, ArchiveState::kRepairable,
     ArchiveState::kRepaired},
    {"delete_two", FaultKind::kDeleteTwo, ArchiveState::kRepairable,
     ArchiveState::kRepaired},
    {"delete_three", FaultKind::kDeleteThree, ArchiveState::kDataLoss,
     ArchiveState::kDataLoss},
    {"truncate_quarter", FaultKind::kTruncateQuarter, ArchiveState::kRepairable,
     ArchiveState::kRepaired},
    {"truncate_half", FaultKind::kTruncateHalf, ArchiveState::kRepairable,
     ArchiveState::kRepaired},
    {"truncate_ninety", FaultKind::kTruncateNinety, ArchiveState::kRepairable,
     ArchiveState::kRepaired},
    {"flip_data_byte", FaultKind::kFlipDataByte, ArchiveState::kRepairable,
     ArchiveState::kRepaired},
    {"flip_parity_byte", FaultKind::kFlipParityByte, ArchiveState::kRepairable,
     ArchiveState::kRepaired},
    {"corrupt_catalog_parity", FaultKind::kCorruptCatalogParity,
     ArchiveState::kDataLoss, ArchiveState::kDataLoss},
};

/// Matrix axis 2: frames per reel, which sets how many data reels the
/// fixed stream shards into (m = 2 parity reels throughout).
class ScrubMatrixTest
    : public ::testing::TestWithParam<std::tuple<size_t, FaultCase>> {};

void FlipByteAt(const std::string& path, size_t offset, uint8_t mask) {
  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  Bytes mutated = std::move(bytes).TakeValue();
  ASSERT_LT(offset, mutated.size());
  mutated[offset] ^= mask;
  ASSERT_TRUE(WriteFileBytes(path, mutated).ok());
}

TEST_P(ScrubMatrixTest, VerdictAndRepairMatchTheInjectedFault) {
  const size_t shard_frames = std::get<0>(GetParam());
  const FaultCase& fault = std::get<1>(GetParam());
  const std::string dir = FreshDir(
      "scrubm_" + std::to_string(shard_frames) + "_" + fault.name);
  const std::string catalog_path = dir + "arch.uler";

  const EncodedStream data = MakeStream(mocoder::StreamId::kData, 2200, 80);
  const EncodedStream system = MakeStream(mocoder::StreamId::kSystem, 400, 81);
  WriteSetAt(catalog_path, data, system, ByFrames(shard_frames),
             /*parity_reels=*/2);
  auto catalog = LoadCatalog(catalog_path);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  const std::vector<CatalogReel>& reels = catalog.value().reels;
  ASSERT_GE(reels.size(), 3u);
  const std::map<std::string, Bytes> pristine = SnapshotDir(dir);

  std::vector<std::string> expect_damaged;
  switch (fault.kind) {
    case FaultKind::kNone:
      break;
    case FaultKind::kDeleteOne:
    case FaultKind::kDeleteTwo:
    case FaultKind::kDeleteThree: {
      const size_t count = fault.kind == FaultKind::kDeleteOne   ? 1
                           : fault.kind == FaultKind::kDeleteTwo ? 2
                                                                 : 3;
      for (size_t i = 0; i < count; ++i) {
        ASSERT_TRUE(std::filesystem::remove(dir + reels[i].name));
        expect_damaged.push_back(reels[i].name);
      }
      break;
    }
    case FaultKind::kTruncateQuarter:
    case FaultKind::kTruncateHalf:
    case FaultKind::kTruncateNinety: {
      const double ratio = fault.kind == FaultKind::kTruncateQuarter ? 0.25
                           : fault.kind == FaultKind::kTruncateHalf  ? 0.5
                                                                     : 0.9;
      const uint64_t keep = static_cast<uint64_t>(reels[1].bytes * ratio);
      std::filesystem::resize_file(dir + reels[1].name, keep);
      expect_damaged.push_back(reels[1].name);
      break;
    }
    case FaultKind::kFlipDataByte:
      FlipByteAt(dir + reels[1].name,
                 kContainerHeaderBytes + kContainerRecordHeaderBytes + 40,
                 0xFF);
      expect_damaged.push_back(reels[1].name);
      break;
    case FaultKind::kFlipParityByte:
      FlipByteAt(dir + catalog.value().parity.reels[1].name,
                 kParityReelHeaderBytes + 3, 0x10);
      expect_damaged.push_back(catalog.value().parity.reels[1].name);
      break;
    case FaultKind::kCorruptCatalogParity: {
      // Flip the first byte of the catalog's ULE-P1 section magic: the
      // catalog no longer parses (its own CRC seals the section), which
      // is data loss for the scrub — parity lives in that section.
      auto bytes = ReadFileBytes(catalog_path);
      ASSERT_TRUE(bytes.ok());
      size_t section = 0;
      for (size_t i = 8; i + 4 <= bytes.value().size(); ++i) {
        if (bytes.value()[i] == 'U' && bytes.value()[i + 1] == 'L' &&
            bytes.value()[i + 2] == 'E' && bytes.value()[i + 3] == 'P') {
          section = i;
          break;
        }
      }
      ASSERT_GT(section, 0u);
      FlipByteAt(catalog_path, section, 0x08);
      expect_damaged.push_back("arch.uler");
      break;
    }
  }

  // --- Scrub without repair: a verdict, never a write. -------------------
  auto dry = ScrubArchive(catalog_path, /*repair=*/false);
  ASSERT_TRUE(dry.ok()) << dry.status().ToString();
  EXPECT_EQ(dry.value().state, fault.unrepaired)
      << ArchiveStateName(dry.value().state) << " detail: "
      << dry.value().detail;
  EXPECT_EQ(dry.value().kind, "reel-set");
  EXPECT_EQ(dry.value().damaged, expect_damaged);
  EXPECT_TRUE(dry.value().repaired.empty());
  if (fault.kind == FaultKind::kNone) {
    EXPECT_GE(dry.value().records, data.frames.size() + system.frames.size());
  }
  if (fault.kind == FaultKind::kDeleteThree) {
    // The loss report names a dead reel and the record range it owned.
    EXPECT_NE(dry.value().detail.find(reels[0].name), std::string::npos)
        << dry.value().detail;
    EXPECT_NE(dry.value().detail.find("records"), std::string::npos);
  }
  // Surviving files are untouched by a dry scrub.
  for (const auto& [name, bytes] : SnapshotDir(dir)) {
    auto it = pristine.find(name);
    ASSERT_NE(it, pristine.end()) << "dry scrub created " << name;
    if (name == "arch.uler" &&
        fault.kind == FaultKind::kCorruptCatalogParity) {
      continue;  // our own injected damage
    }
    if (!expect_damaged.empty() && name == expect_damaged.front()) continue;
    EXPECT_EQ(bytes, it->second) << "dry scrub modified " << name;
  }

  // --- Scrub with repair. ------------------------------------------------
  auto fixed = ScrubArchive(catalog_path, /*repair=*/true);
  ASSERT_TRUE(fixed.ok()) << fixed.status().ToString();
  EXPECT_EQ(fixed.value().state, fault.repaired)
      << ArchiveStateName(fixed.value().state) << " detail: "
      << fixed.value().detail;

  if (fault.repaired == ArchiveState::kRepaired) {
    EXPECT_EQ(fixed.value().repaired, expect_damaged);
    EXPECT_GT(fixed.value().repaired_bytes, 0u);
    // Every file in the archive is byte-identical to the pristine set —
    // whole-reel reconstruction, not approximate recovery.
    const std::map<std::string, Bytes> now = SnapshotDir(dir);
    ASSERT_EQ(now.size(), pristine.size());
    for (const auto& [name, bytes] : pristine) {
      auto it = now.find(name);
      ASSERT_NE(it, now.end()) << name << " missing after repair";
      EXPECT_EQ(it->second, bytes) << name << " differs after repair";
    }
    // And the repaired set opens clean end to end.
    auto reader = ReelSetReader::Open(catalog_path);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    EXPECT_EQ(reader.value()->reconstructed_reels(), 0u);
    EXPECT_TRUE(reader.value()->Verify().ok());
    auto source = reader.value()->OpenFrames(mocoder::StreamId::kData);
    ExpectSameFrames(Drain(*source), data.frames);
  } else if (fault.repaired == ArchiveState::kHealthy) {
    EXPECT_TRUE(fixed.value().damaged.empty());
  } else {
    // Beyond the parity budget nothing may be "repaired" — and the
    // survivors must not have been touched by the failed attempt.
    EXPECT_TRUE(fixed.value().repaired.empty());
    for (const auto& [name, bytes] : SnapshotDir(dir)) {
      if (name == "arch.uler" &&
          fault.kind == FaultKind::kCorruptCatalogParity) {
        continue;
      }
      EXPECT_EQ(bytes, pristine.at(name)) << name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ReelLossMatrix, ScrubMatrixTest,
    ::testing::Combine(::testing::Values(size_t{3}, size_t{5}),
                       ::testing::ValuesIn(kFaultCases)),
    [](const ::testing::TestParamInfo<ScrubMatrixTest::ParamType>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_" +
             std::get<1>(info.param).name;
    });

// ---------------------------------------------------------------------------
// Discovery, fleet sweeps, checkpointed resume

TEST(ScrubDiscoverTest, FindsSetsAndUnclaimedContainersOnly) {
  const std::string root = FreshDir("scrub_discover");
  const EncodedStream data = MakeStream(mocoder::StreamId::kData, 900, 82);
  const EncodedStream system = MakeStream(mocoder::StreamId::kSystem, 0, 83);
  WriteSetAt(root + "arch.uler", data, system, ByFrames(3),
             /*parity_reels=*/1);
  WriteContainerAt(root + "standalone.ulec", data);
  std::filesystem::create_directories(root + "nested");
  WriteContainerAt(root + "nested/deep.ulec", data);
  ASSERT_TRUE(WriteFileText(root + "note.txt", "not an archive\n").ok());

  auto found = DiscoverArchives(root);
  ASSERT_TRUE(found.ok()) << found.status().ToString();
  // Member reels (arch-*.ulec) and parity files belong to the catalog
  // and must not be listed as archives of their own.
  EXPECT_EQ(found.value(),
            (std::vector<std::string>{"arch.uler", "nested/deep.ulec",
                                      "standalone.ulec"}));
}

TEST(ScrubFleetTest, RepairsAcrossMixedArchivesAndReportsJson) {
  const std::string root = FreshDir("scrub_fleet");
  const EncodedStream data = MakeStream(mocoder::StreamId::kData, 1400, 84);
  const EncodedStream system = MakeStream(mocoder::StreamId::kSystem, 0, 85);
  // healthy set / repairable set / data-loss set / healthy container.
  WriteSetAt(root + "good.uler", data, system, ByFrames(3), 2);
  WriteSetAt(root + "hurt.uler", data, system, ByFrames(3), 2);
  WriteSetAt(root + "lost.uler", data, system, ByFrames(3), 2);
  WriteContainerAt(root + "solo.ulec", data);
  auto hurt = LoadCatalog(root + "hurt.uler");
  ASSERT_TRUE(hurt.ok());
  ASSERT_TRUE(std::filesystem::remove(root + hurt.value().reels[1].name));
  auto lost = LoadCatalog(root + "lost.uler");
  ASSERT_TRUE(lost.ok());
  ASSERT_GE(lost.value().reels.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(std::filesystem::remove(root + lost.value().reels[i].name));
  }

  ScrubOptions options;
  options.repair = true;
  auto report = ScrubFleet(root, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().archives.size(), 4u);
  EXPECT_EQ(report.value().healthy, 2u);
  EXPECT_EQ(report.value().repaired, 1u);
  EXPECT_EQ(report.value().repairable, 0u);
  EXPECT_EQ(report.value().data_loss, 1u);
  EXPECT_EQ(report.value().errors, 0u);
  EXPECT_GT(report.value().repaired_bytes, 0u);
  EXPECT_EQ(report.value().ExitCode(), 2);  // the lost set is gone
  // Verdicts are sorted by path and the JSON carries every archive.
  const std::string json = report.value().ToJson();
  for (const char* path : {"good.uler", "hurt.uler", "lost.uler", "solo.ulec"}) {
    EXPECT_NE(json.find(path), std::string::npos) << json;
  }
  EXPECT_NE(json.find("\"repaired_bytes\""), std::string::npos);
  EXPECT_EQ(json.find("resumed"), std::string::npos);
  // The repaired set verifies clean now.
  auto reader = ReelSetReader::Open(root + "hurt.uler");
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader.value()->Verify().ok());
}

TEST(ScrubFleetTest, CheckpointResumeMatchesUninterruptedSweep) {
  const std::string root = FreshDir("scrub_ckpt");
  const std::string journal = testing::TempDir() + "scrub_ckpt_journal.tsv";
  std::filesystem::remove(journal);
  const EncodedStream data = MakeStream(mocoder::StreamId::kData, 1400, 86);
  const EncodedStream system = MakeStream(mocoder::StreamId::kSystem, 0, 87);
  WriteSetAt(root + "a.uler", data, system, ByFrames(3), 2);
  WriteSetAt(root + "b.uler", data, system, ByFrames(3), 2);
  WriteSetAt(root + "c.uler", data, system, ByFrames(3), 2);
  WriteSetAt(root + "d.uler", data, system, ByFrames(3), 2);
  WriteContainerAt(root + "e.ulec", data);
  // One repairable, one beyond repair (scrubbed read-only throughout, so
  // the sweeps are repeatable).
  auto b = LoadCatalog(root + "b.uler");
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(std::filesystem::remove(root + b.value().reels[0].name));
  auto c = LoadCatalog(root + "c.uler");
  ASSERT_TRUE(c.ok());
  ASSERT_GE(c.value().reels.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(std::filesystem::remove(root + c.value().reels[i].name));
  }

  ScrubOptions plain;
  auto uninterrupted = ScrubFleet(root, plain);
  ASSERT_TRUE(uninterrupted.ok()) << uninterrupted.status().ToString();
  ASSERT_EQ(uninterrupted.value().archives.size(), 5u);
  EXPECT_EQ(uninterrupted.value().repairable, 1u);
  EXPECT_EQ(uninterrupted.value().data_loss, 1u);
  EXPECT_EQ(uninterrupted.value().ExitCode(), 2);

  // The same sweep killed twice: each bounded run scrubs only what the
  // journal doesn't already hold.
  ScrubOptions staged;
  staged.checkpoint_path = journal;
  staged.max_archives = 2;
  auto run1 = ScrubFleet(root, staged);
  ASSERT_TRUE(run1.ok());
  EXPECT_EQ(run1.value().archives.size(), 2u);
  EXPECT_EQ(run1.value().resumed, 0u);
  auto run2 = ScrubFleet(root, staged);
  ASSERT_TRUE(run2.ok());
  EXPECT_EQ(run2.value().archives.size(), 4u);
  EXPECT_EQ(run2.value().resumed, 2u);
  staged.max_archives = 0;
  auto run3 = ScrubFleet(root, staged);
  ASSERT_TRUE(run3.ok());
  EXPECT_EQ(run3.value().archives.size(), 5u);
  EXPECT_EQ(run3.value().resumed, 4u);

  // Every archive was scrubbed exactly once across the three runs...
  size_t fresh = 0;
  for (const auto* run : {&run1.value(), &run2.value(), &run3.value()}) {
    fresh += run->archives.size() - run->resumed;
  }
  EXPECT_EQ(fresh, 5u);
  auto journal_bytes = ReadFileBytes(journal);
  ASSERT_TRUE(journal_bytes.ok());
  const std::string journal_text(journal_bytes.value().begin(),
                                 journal_bytes.value().end());
  std::map<std::string, int> seen;
  size_t lines = 0;
  for (size_t pos = 0; pos < journal_text.size();) {
    size_t end = journal_text.find('\n', pos);
    if (end == std::string::npos) end = journal_text.size();
    const std::string line = journal_text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty() || line[0] == '#') continue;
    ++lines;
    ++seen[line.substr(0, line.find('\t'))];
  }
  EXPECT_EQ(lines, 5u);
  for (const auto& [path, count] : seen) {
    EXPECT_EQ(count, 1) << path << " scrubbed more than once";
  }

  // ...and the resumed report is byte-identical to the uninterrupted one.
  EXPECT_EQ(run3.value().ToJson(), uninterrupted.value().ToJson());

  // A sweep resumed from a complete journal re-scrubs nothing.
  auto run4 = ScrubFleet(root, staged);
  ASSERT_TRUE(run4.ok());
  EXPECT_EQ(run4.value().resumed, 5u);
  EXPECT_EQ(run4.value().ToJson(), uninterrupted.value().ToJson());
}

// TSan coverage: the CI sanitizer job runs every fast suite with
// ULE_THREADS=4, so eight archives scrubbed on four workers exercise the
// journal mutex and the shared-pool fan-out under the race detector.
TEST(ScrubFleetTest, ParallelSweepAcrossEightArchivesTalliesExactly) {
  const std::string root = FreshDir("scrub_par8");
  const EncodedStream data = MakeStream(mocoder::StreamId::kData, 900, 88);
  const EncodedStream system = MakeStream(mocoder::StreamId::kSystem, 0, 89);
  for (int i = 0; i < 4; ++i) {
    WriteSetAt(root + "set" + std::to_string(i) + ".uler", data, system,
               ByFrames(3), 1);
    WriteContainerAt(root + "box" + std::to_string(i) + ".ulec", data);
  }
  // Two sets lose a reel (repairable); two containers take a silent
  // payload flip (data loss — a lone container has no parity).
  for (int i = 0; i < 2; ++i) {
    auto catalog = LoadCatalog(root + "set" + std::to_string(i) + ".uler");
    ASSERT_TRUE(catalog.ok());
    ASSERT_TRUE(
        std::filesystem::remove(root + catalog.value().reels[0].name));
    FlipByteAt(root + "box" + std::to_string(i) + ".ulec",
               kContainerHeaderBytes + kContainerRecordHeaderBytes + 21, 0xFF);
  }

  ScrubOptions options;
  options.repair = true;
  options.threads = 4;
  auto report = ScrubFleet(root, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().archives.size(), 8u);
  EXPECT_EQ(report.value().healthy, 4u);
  EXPECT_EQ(report.value().repaired, 2u);
  EXPECT_EQ(report.value().data_loss, 2u);
  EXPECT_EQ(report.value().errors, 0u);
  EXPECT_EQ(report.value().ExitCode(), 2);
  for (int i = 0; i < 2; ++i) {
    auto reader =
        ReelSetReader::Open(root + "set" + std::to_string(i) + ".uler");
    ASSERT_TRUE(reader.ok());
    EXPECT_TRUE(reader.value()->Verify().ok());
  }
}

}  // namespace
}  // namespace filmstore
}  // namespace ule
