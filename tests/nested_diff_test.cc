// Differential tests for the nested-emulation fast paths. The archived
// cold interpreter (boot-from-ports, fetch/decode every guest
// instruction) is the semantic reference; the cached-translation warm
// path and the fused dispatch core underneath it are engine
// accelerations that must be byte-identical on every program — including
// self-modifying ones, jumps into immediate words, illegal opcodes,
// pauses that land mid-slice, and step-limit faults.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <string>

#include "dynarisc/assembler.h"
#include "dynarisc/isa.h"
#include "dynarisc/machine.h"
#include "olonys/dynarisc_in_verisc.h"
#include "olonys/translation_cache.h"
#include "support/random.h"
#include "verisc/implementations.h"

namespace ule {
namespace olonys {
namespace {

dynarisc::Program Asm(const std::string& src) {
  auto r = dynarisc::Assemble(src);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r.TakeValue() : dynarisc::Program{};
}

// Hand-encoded programs for cases the assembler cannot express (jumps
// into immediate words, instruction words built to be overwritten).
uint16_t Enc(uint8_t op, uint8_t rd, uint8_t rs, uint8_t mode) {
  return static_cast<uint16_t>((op << 11) | (rd << 8) | (rs << 5) | mode);
}

dynarisc::Program FromWords(std::initializer_list<uint16_t> words,
                            uint16_t entry = 0) {
  dynarisc::Program p;
  p.entry = entry;
  for (uint16_t w : words) {
    p.image.push_back(static_cast<uint8_t>(w & 0xFF));
    p.image.push_back(static_cast<uint8_t>(w >> 8));
  }
  return p;
}

// Runs one program through the cold archival path and through the warm
// translated path twice (cache miss, then cache hit), requiring
// byte-identical output everywhere and the expected cache behaviour.
// Returns the agreed output.
Bytes ExpectPathsAgree(const dynarisc::Program& p, BytesView input) {
  TranslationCache::Global().Clear();
  auto cold = RunNested(p, input, {}, &verisc::Run, NestedMode::kCold);
  EXPECT_TRUE(cold.ok()) << cold.status().ToString();
  if (!cold.ok()) return {};

  NestedRunStats miss, hit;
  auto warm1 =
      RunNested(p, input, {}, &verisc::Run, NestedMode::kTranslated, &miss);
  EXPECT_TRUE(warm1.ok()) << warm1.status().ToString();
  auto warm2 =
      RunNested(p, input, {}, &verisc::Run, NestedMode::kTranslated, &hit);
  EXPECT_TRUE(warm2.ok()) << warm2.status().ToString();
  if (!warm1.ok() || !warm2.ok()) return {};

  EXPECT_TRUE(miss.translated);
  EXPECT_FALSE(miss.cache_hit);
  EXPECT_TRUE(hit.translated);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(warm1.value(), cold.value());
  EXPECT_EQ(warm2.value(), cold.value());
  return cold.TakeValue();
}

// Same, also pinned against the native DynaRisc emulator.
void ExpectPathsMatchNative(const dynarisc::Program& p, BytesView input) {
  auto native = dynarisc::RunProgram(p, input);
  ASSERT_TRUE(native.ok()) << native.status().ToString();
  EXPECT_EQ(ExpectPathsAgree(p, input), native.value());
}

// Restores the default engine slice size even when a test fails.
struct SliceOverride {
  explicit SliceOverride(uint64_t steps) { SetNestedSliceStepsForTest(steps); }
  ~SliceOverride() { SetNestedSliceStepsForTest(0); }
};

// The guest overwrites an upcoming instruction word with SYS #2 via
// STM.W and then falls through into it: the predecoded handler table
// must be invalidated by the store, or the warm path would still run
// the stale LDI and emit a byte the other paths never produce.
TEST(NestedDiffTest, SelfModifyingStoreInvalidatesTranslation) {
  using namespace dynarisc;
  const uint16_t halt_word = Enc(kSys, 0, 0, kSysHalt);
  auto patched = FromWords({
      Enc(kLdi, 0, 0, 0), halt_word,     // R0 = encoded SYS #2 (bytes 0-3)
      Enc(kLdi, 1, 0, 0), 12,            // R1 = target address  (bytes 4-7)
      Enc(kMove, 0, 1, kMoveDstD),       // D0 = R1              (bytes 8-9)
      Enc(kStm, 0, 0, kModeWord),        // mem[12..13] = R0     (bytes 10-11)
      Enc(kLdi, 0, 0, 0), 0x41,          // target: overwritten  (bytes 12-15)
      Enc(kSys, 0, 0, kSysWriteByte),    // never reached once patched
      Enc(kSys, 0, 0, kSysHalt),
  });
  ExpectPathsMatchNative(patched, {});
  EXPECT_TRUE(ExpectPathsAgree(patched, {}).empty());

  // Control: the identical program with the store turned into a no-op
  // ALU instruction reaches the LDI and emits 0x41 — proving the
  // self-modifying variant actually exercised the patch.
  auto control = patched;
  const uint16_t nop = Enc(kAdd, 2, 2, 0);
  control.image[10] = static_cast<uint8_t>(nop & 0xFF);
  control.image[11] = static_cast<uint8_t>(nop >> 8);
  ExpectPathsMatchNative(control, {});
  EXPECT_EQ(ExpectPathsAgree(control, {}), Bytes({0x41}));
}

// DynaRisc allows jumping into the middle of an instruction: the
// immediate word of the LDI doubles as a SYS #2 when entered at its own
// address. Translation predecodes *every* guest address as a potential
// instruction start, so all paths must halt without output.
TEST(NestedDiffTest, JumpIntoImmediateWord) {
  using namespace dynarisc;
  auto p = FromWords({
      Enc(kJump, 0, 0, 0), 6,                      // jump to byte 6
      Enc(kLdi, 1, 0, 0), Enc(kSys, 0, 0, kSysHalt),  // imm bytes 6-7
      Enc(kLdi, 0, 0, 0), 0x05,                    // unreachable
      Enc(kSys, 0, 0, kSysWriteByte),
      Enc(kSys, 0, 0, kSysHalt),
  });
  ExpectPathsMatchNative(p, {});
  EXPECT_TRUE(ExpectPathsAgree(p, {}).empty());
}

// The archived interpreter defines illegal opcodes as halt; the warm
// path must agree (the native emulator faults instead, so it is not
// compared here).
TEST(NestedDiffTest, IllegalOpcodeHaltsOnEveryPath) {
  dynarisc::Program p;
  p.image = {0xFF, 0xFF};
  p.entry = 0;
  EXPECT_TRUE(ExpectPathsAgree(p, {}).empty());
}

// Pauses that land mid-slice (and, with an odd slice size, between the
// constituents of fused pairs) must not be observable in the output.
TEST(NestedDiffTest, MidSlicePausesAreInvisible) {
  SliceOverride slice(777);
  ExpectPathsMatchNative(
      Asm("loop: SYS #0\nJC done\nSYS #1\nJUMP loop\ndone: SYS #2"),
      Bytes{9, 8, 7, 0, 255, 1});
  ExpectPathsMatchNative(Asm(R"(
      LDI R5,#0x8000
      MOVE D3,R5
      LDI R0,#11
      CALL fib
      MOVE R0,R1
      SYS #1
      SYS #2
fib:  LDI R1,#1
      LDI R2,#1
      CMP R0,R2
      JC ret
      JZ ret
      MOVE R4,R0
      SUB R0,R2
      CALL fib
      MOVE R3,R1
      MOVE R0,R4
      LDI R2,#2
      SUB R0,R2
      CALL fib
      ADD R1,R3
ret:  RET
)"),
                         {});
}

// A guest that never halts must exhaust the step budget with the same
// status code on the cold and translated paths (the translated path
// retires fewer VeRisc instructions, but the failure mode is identical).
TEST(NestedDiffTest, StepLimitFaultsIdentically) {
  auto p = Asm("loop: JUMP loop");
  verisc::RunOptions opts;
  opts.max_steps = 300'000'000;  // past cold boot, nowhere near a halt
  auto cold = RunNested(p, {}, opts, &verisc::Run, NestedMode::kCold);
  auto warm = RunNested(p, {}, opts, &verisc::Run, NestedMode::kTranslated);
  ASSERT_FALSE(cold.ok());
  ASSERT_FALSE(warm.ok());
  EXPECT_EQ(cold.status().code(), warm.status().code());
}

// The translated path is an engine acceleration of the reference VeRisc
// machine only; demanding it on a portability implementation is an error.
TEST(NestedDiffTest, TranslatedModeRequiresReferenceEngine) {
  auto p = Asm("SYS #2");
  for (const auto& impl : verisc::AllImplementations()) {
    if (impl.run == &verisc::Run) continue;
    auto r = RunNested(p, {}, {}, impl.run, NestedMode::kTranslated);
    EXPECT_FALSE(r.ok()) << impl.name;
  }
}

// Shared-cache bookkeeping: misses insert, hits splice, capacity evicts,
// and eviction never affects correctness.
TEST(NestedDiffTest, TranslationCacheStatsAndEviction) {
  auto& cache = TranslationCache::Global();
  cache.Clear();
  auto a = Asm("LDI R0,#1\nSYS #1\nSYS #2");
  auto b = Asm("LDI R0,#2\nSYS #1\nSYS #2");

  NestedRunStats s;
  ASSERT_TRUE(RunNested(a, {}, {}, &verisc::Run, NestedMode::kTranslated, &s)
                  .ok());
  EXPECT_FALSE(s.cache_hit);
  ASSERT_TRUE(RunNested(a, {}, {}, &verisc::Run, NestedMode::kTranslated, &s)
                  .ok());
  EXPECT_TRUE(s.cache_hit);
  auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);

  // Capacity 1: alternating programs evict each other every run.
  cache.set_capacity(1);
  for (int round = 0; round < 3; ++round) {
    auto ra = RunNested(a, {}, {}, &verisc::Run, NestedMode::kTranslated, &s);
    ASSERT_TRUE(ra.ok());
    EXPECT_EQ(ra.value(), Bytes({1}));
    auto rb = RunNested(b, {}, {}, &verisc::Run, NestedMode::kTranslated, &s);
    ASSERT_TRUE(rb.ok());
    EXPECT_EQ(rb.value(), Bytes({2}));
  }
  stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GE(stats.evictions, 5u);
  cache.set_capacity(8);
  cache.Clear();
}

// Randomized straight-line programs over the ALU, shifts, moves and
// pointer memory ops, checked against the native emulator on all paths.
// Pointers are confined to a scratch window far above the code so the
// deterministic self-modification test above stays the only writer of
// instruction bytes.
class NestedDiffFuzz : public ::testing::TestWithParam<int> {};

TEST_P(NestedDiffFuzz, RandomProgramsAgreeOnEveryPath) {
  Rng rng(0xD1FF0000u + static_cast<uint32_t>(GetParam()));
  std::string src;
  src += "LDI R5,#0x8000\nMOVE D3,R5\n";
  src += "LDI R6,#0x4000\nMOVE D0,R6\n";  // scratch pointer
  const int n = 12 + static_cast<int>(rng.Below(28));
  for (int i = 0; i < n; ++i) {
    const char* kAlu[] = {"ADD", "ADC", "SUB", "SBB", "CMP",
                          "MUL", "AND", "OR",  "XOR"};
    const char* kShift[] = {"LSL", "LSR", "ASR", "ROR"};
    char buf[64];
    const int rd = static_cast<int>(rng.Below(5));
    const int rs = static_cast<int>(rng.Below(5));
    switch (rng.Below(6)) {
      case 0:
        std::snprintf(buf, sizeof buf, "LDI R%d,#%u\n", rd,
                      static_cast<unsigned>(rng.Below(0x10000)));
        break;
      case 1:
        std::snprintf(buf, sizeof buf, "%s R%d,R%d\n",
                      kAlu[rng.Below(9)], rd, rs);
        break;
      case 2:
        std::snprintf(buf, sizeof buf, "%s R%d,#%u\n",
                      kShift[rng.Below(4)], rd,
                      static_cast<unsigned>(rng.Below(16)));
        break;
      case 3:
        std::snprintf(buf, sizeof buf, "MOVE R%d,R%d\n", rd, rs);
        break;
      case 4:
        std::snprintf(buf, sizeof buf, "STM.%c R%d,[D0+]\n",
                      rng.Below(2) ? 'W' : 'B', rd);
        break;
      default:
        std::snprintf(buf, sizeof buf, "LDM.%c R%d,[D0]\n",
                      rng.Below(2) ? 'W' : 'B', rd);
        break;
    }
    src += buf;
  }
  // Dump the registers so every computed bit reaches the output.
  for (int r = 0; r < 5; ++r) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "MOVE R0,R%d\nSYS #1\n", r);
    src += buf;
  }
  src += "SYS #2\n";

  Bytes input;
  const size_t input_len = 4 + rng.Below(12);
  for (size_t i = 0; i < input_len; ++i) {
    input.push_back(static_cast<uint8_t>(rng.Below(256)));
  }
  ExpectPathsMatchNative(Asm(src), input);
}

INSTANTIATE_TEST_SUITE_P(Sweep, NestedDiffFuzz, ::testing::Range(0, 10));

}  // namespace
}  // namespace olonys
}  // namespace ule
