// Unit tests for src/support: Status/Result, byte/bit streams, CRC32,
// hex-letter Bootstrap codec, deterministic PRNG.

#include <gtest/gtest.h>

#include <string>

#include "support/bytes.h"
#include "support/crc32.h"
#include "support/hexletters.h"
#include "support/random.h"
#include "support/status.h"

namespace ule {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Corruption("bad magic");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_EQ(s.message(), "bad magic");
  EXPECT_EQ(s.ToString(), "Corruption: bad magic");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "Ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kExecutionFault), "ExecutionFault");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, TakeValueMoves) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string v = r.TakeValue();
  EXPECT_EQ(v, "payload");
}

Result<int> Doubler(Result<int> in) {
  ULE_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubler(21).value(), 42);
  Result<int> err = Doubler(Status::Corruption("x"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kCorruption);
}

TEST(ByteWriterTest, LittleEndianLayout) {
  ByteWriter w;
  w.PutU8(0x01);
  w.PutU16(0x2345);
  w.PutU32(0x6789ABCD);
  w.PutU64(0x1122334455667788ull);
  const Bytes b = w.TakeBytes();
  ASSERT_EQ(b.size(), 15u);
  EXPECT_EQ(b[0], 0x01);
  EXPECT_EQ(b[1], 0x45);
  EXPECT_EQ(b[2], 0x23);
  EXPECT_EQ(b[3], 0xCD);
  EXPECT_EQ(b[6], 0x67);
  EXPECT_EQ(b[7], 0x88);
  EXPECT_EQ(b[14], 0x11);
}

TEST(ByteReaderTest, RoundTrip) {
  ByteWriter w;
  w.PutU8(7);
  w.PutU16(1234);
  w.PutU32(567890);
  w.PutU64(0xDEADBEEFCAFEBABEull);
  w.PutString("hello");
  const Bytes b = w.TakeBytes();

  ByteReader r(b);
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  Bytes s;
  ASSERT_TRUE(r.GetU8(&u8).ok());
  ASSERT_TRUE(r.GetU16(&u16).ok());
  ASSERT_TRUE(r.GetU32(&u32).ok());
  ASSERT_TRUE(r.GetU64(&u64).ok());
  ASSERT_TRUE(r.GetBytes(5, &s).ok());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u16, 1234);
  EXPECT_EQ(u32, 567890u);
  EXPECT_EQ(u64, 0xDEADBEEFCAFEBABEull);
  EXPECT_EQ(ToString(s), "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(ByteReaderTest, TruncationIsCorruption) {
  Bytes b = {1, 2};
  ByteReader r(b);
  uint32_t v;
  Status s = r.GetU32(&v);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(BitStreamTest, RoundTripBits) {
  BitWriter w;
  w.PutBits(0b10110, 5);
  w.PutBit(1);
  w.PutBits(0xABCD, 16);
  const Bytes b = w.Finish();

  BitReader r(b);
  uint32_t v;
  ASSERT_TRUE(r.GetBits(5, &v));
  EXPECT_EQ(v, 0b10110u);
  EXPECT_EQ(r.GetBit(), 1);
  ASSERT_TRUE(r.GetBits(16, &v));
  EXPECT_EQ(v, 0xABCDu);
}

TEST(BitStreamTest, ExhaustionReturnsMinusOne) {
  Bytes b = {0xFF};
  BitReader r(b);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(r.GetBit(), 1);
  EXPECT_EQ(r.GetBit(), -1);
  uint32_t v;
  EXPECT_FALSE(r.GetBits(1, &v));
}

TEST(BitStreamTest, MsbFirstByteLayout) {
  BitWriter w;
  w.PutBit(1);  // becomes bit 7 of byte 0
  const Bytes b = w.Finish();
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0], 0x80);
}

TEST(Crc32Test, KnownVectors) {
  // Standard test vector: CRC32("123456789") = 0xCBF43926.
  const std::string s = "123456789";
  EXPECT_EQ(Crc32(ToBytes(s)), 0xCBF43926u);
  EXPECT_EQ(Crc32(BytesView{}), 0u);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  Bytes data(100, 0x5A);
  const uint32_t clean = Crc32(data);
  data[50] ^= 0x01;
  EXPECT_NE(Crc32(data), clean);
}

TEST(HexLettersTest, AlphabetMapping) {
  // 0xF0 -> 'A' (0xF) then 'P' (0x0).
  Bytes one = {0xF0};
  EXPECT_EQ(HexLettersEncode(one), "AP");
  // 0x00 -> "PP", 0xFF -> "AA".
  EXPECT_EQ(HexLettersEncode(Bytes{0x00}), "PP");
  EXPECT_EQ(HexLettersEncode(Bytes{0xFF}), "AA");
}

TEST(HexLettersTest, RoundTripAllBytes) {
  Bytes all(256);
  for (int i = 0; i < 256; ++i) all[i] = static_cast<uint8_t>(i);
  const std::string text = HexLettersEncode(all, 64);
  auto back = HexLettersDecode(text);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), all);
}

TEST(HexLettersTest, RejectsForeignCharacters) {
  EXPECT_FALSE(HexLettersDecode("AZ").ok());   // Z out of alphabet
  EXPECT_FALSE(HexLettersDecode("ab").ok());   // lowercase rejected
  EXPECT_FALSE(HexLettersDecode("APA").ok());  // odd letter count
}

TEST(HexLettersTest, WhitespaceIgnored) {
  auto r = HexLettersDecode("A P\nAP");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (Bytes{0xF0, 0xF0}));
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, RangeStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.Range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace ule
