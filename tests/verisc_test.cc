// Tests for the VeRisc machine (4-instruction universal VM), its builder
// (macro-assembler) and the conformance of all independent implementations.

#include <gtest/gtest.h>

#include "support/random.h"
#include "verisc/builder.h"
#include "verisc/implementations.h"
#include "verisc/machine.h"
#include "verisc/verisc.h"

namespace ule {
namespace verisc {
namespace {

RunResult MustRun(const Program& p, BytesView input = {},
                  const RunOptions& opts = {}) {
  auto r = Run(p, input, opts);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r.TakeValue() : RunResult{};
}

// ---------------- raw machine semantics ----------------

TEST(VeriscTest, HaltStops) {
  // ST 5 halts regardless of R.
  Program p;
  p.words = {Instr(kSt, 5)};
  RunResult r = MustRun(p);
  EXPECT_EQ(r.reason, StopReason::kHalted);
  EXPECT_EQ(r.steps, 1u);
}

TEST(VeriscTest, OutputPortEmitsLowByte) {
  // R starts 0; load a constant word stored in the program, emit it.
  Program p;
  p.words = {Instr(kLd, 16 + 3), Instr(kSt, 4), Instr(kSt, 5), 0x1ABCu};
  RunResult r = MustRun(p);
  ASSERT_EQ(r.output.size(), 1u);
  EXPECT_EQ(r.output[0], 0xBC);
}

TEST(VeriscTest, InputPortReadsAndEofIsAllOnes) {
  // Echo two bytes then write the EOF marker's low byte (0xFF).
  Program p;
  p.words = {
      Instr(kLd, 3), Instr(kSt, 4),  // echo byte 1
      Instr(kLd, 3), Instr(kSt, 4),  // echo byte 2
      Instr(kLd, 3), Instr(kSt, 4),  // EOF -> 0xFFFFFFFF -> low byte 0xFF
      Instr(kSt, 5),
  };
  RunResult r = MustRun(p, Bytes{7, 8});
  EXPECT_EQ(r.output, (Bytes{7, 8, 0xFF}));
}

TEST(VeriscTest, SbbComputesBorrow) {
  // R=0; SBB of constant 1 -> R=0xFFFFFFFF, borrow=1; SBB of 0 subtracts
  // the borrow -> R=0xFFFFFFFE; emit low byte.
  Program p;
  p.words = {
      Instr(kSbb, 16 + 4),  // R = 0 - 1 = 0xFFFFFFFF, B=1
      Instr(kSbb, 0),       // R = R - 0 - 1 = 0xFFFFFFFE, B=0
      Instr(kSt, 4),
      Instr(kSt, 5),
      1u,
  };
  RunResult r = MustRun(p);
  ASSERT_EQ(r.output.size(), 1u);
  EXPECT_EQ(r.output[0], 0xFE);
}

TEST(VeriscTest, BorrowMaskReadsAllOnesOrZero) {
  // Set borrow via SBB, AND the mask with a constant, emit; then clear the
  // borrow through a store to [2] and emit the (now zero) mask again.
  Program p;
  p.words = {
      Instr(kSbb, 16 + 10),  // R = 0 - 1 -> borrow set
      Instr(kLd, 2),         // mask = 0xFFFFFFFF
      Instr(kAnd, 16 + 11),  // & 0x55
      Instr(kSt, 4),         // emits 0x55
      Instr(kLd, 0),         // R = 0
      Instr(kSt, 2),         // borrow <- R & 1 = 0
      Instr(kLd, 2),         // mask = 0
      Instr(kSt, 4),         // emits 0x00
      Instr(kSt, 5),         // halt
      0u,                    // padding so the constants land at +10/+11
      1u,
      0x55u,
  };
  RunResult r = MustRun(p);
  EXPECT_EQ(r.output, (Bytes{0x55, 0x00}));
}

TEST(VeriscTest, StToPcJumps) {
  // Load the address of the halt instruction and store it to PC, skipping
  // the two instructions that would emit a byte.
  Program p;
  p.words = {
      Instr(kLd, 16 + 6),  // R = jump target (address of word 4)
      Instr(kSt, 1),       // PC <- R
      Instr(kLd, 16 + 7),  // skipped
      Instr(kSt, 4),       // skipped
      Instr(kSt, 5),       // halt
      0u,
      16u + 4u,            // the target constant
      1u,
  };
  RunResult r = MustRun(p);
  EXPECT_EQ(r.output.size(), 0u);
  EXPECT_EQ(r.reason, StopReason::kHalted);
}

TEST(VeriscTest, SelfModificationExecutes) {
  // The program plants an "ST 4" instruction word over a placeholder before
  // reaching it: writes to code must be live (the spec forbids caching).
  Program p;
  p.words = {
      Instr(kLd, 16 + 6),   // R = encoded "ST 4" instruction word
      Instr(kSt, 16 + 4),   // patch the placeholder at word index 4
      Instr(kLd, 16 + 7),   // R = 0xAA
      Instr(kLd, 16 + 7),   // (repeat; keeps the layout simple)
      Instr(kLd, 0),        // placeholder: becomes "ST 4" at run time
      Instr(kSt, 5),        // halt
      Instr(kSt, 4),        // data: the instruction word to plant
      0xAAu,
  };
  RunResult r = MustRun(p);
  ASSERT_EQ(r.output.size(), 1u);
  EXPECT_EQ(r.output[0], 0xAA);
}

TEST(VeriscTest, IllegalOpcodeFaults) {
  Program p;
  p.words = {0x40000000u};  // opcode 4
  auto r = MustRun(p);
  EXPECT_EQ(r.reason, StopReason::kFault);
}

TEST(VeriscTest, StepLimit) {
  // Tight infinite loop: jump to self.
  Program p;
  p.words = {Instr(kLd, 16 + 2), Instr(kSt, 1), 16u};
  RunOptions opts;
  opts.max_steps = 5000;
  auto r = MustRun(p, {}, opts);
  EXPECT_EQ(r.reason, StopReason::kStepLimit);
  EXPECT_EQ(r.steps, 5000u);
}

TEST(VeriscTest, ProgramSerializationRoundTrip) {
  Program p;
  p.words = {Instr(kLd, 3), Instr(kSt, 4), Instr(kSt, 5), 0xDEADBEEFu};
  auto back = Program::Deserialize(p.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().words, p.words);
}

TEST(VeriscTest, SerializationCorruptionDetected) {
  Program p;
  p.words = {Instr(kSt, 5)};
  Bytes blob = p.Serialize();
  blob[9] ^= 0x40;
  EXPECT_FALSE(Program::Deserialize(blob).ok());
}

// ---------------- builder macros ----------------

// Builds a program with the builder, runs it, returns output.
template <typename F>
Bytes BuildAndRun(F&& body, BytesView input = {}) {
  Builder b;
  body(b);
  auto p = b.Build();
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  if (!p.ok()) return {};
  auto r = Run(p.value(), input);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.value().reason, StopReason::kHalted);
  return r.value().output;
}

TEST(BuilderTest, LdImmAndOut) {
  Bytes out = BuildAndRun([](Builder& b) {
    b.LdImm(0x12345678);
    b.OutByte();
    b.Halt();
  });
  EXPECT_EQ(out, (Bytes{0x78}));
}

TEST(BuilderTest, AddSubImm) {
  Bytes out = BuildAndRun([](Builder& b) {
    b.LdImm(40);
    b.AddImm(2);
    b.OutByte();
    b.SubImm(12);
    b.OutByte();
    b.Halt();
  });
  EXPECT_EQ(out, (Bytes{42, 30}));
}

TEST(BuilderTest, AddCellAndCells) {
  Bytes out = BuildAndRun([](Builder& b) {
    auto x = b.NewCell(100);
    auto y = b.NewCell(55);
    b.Ld(x);
    b.AddCell(y);
    b.OutByte();
    b.Halt();
  });
  EXPECT_EQ(out, (Bytes{155}));
}

TEST(BuilderTest, NotAndAndImm) {
  Bytes out = BuildAndRun([](Builder& b) {
    b.LdImm(0x0F);
    b.Not();          // 0xFFFFFFF0
    b.AndImm(0xFF);   // 0xF0
    b.OutByte();
    b.Halt();
  });
  EXPECT_EQ(out, (Bytes{0xF0}));
}

TEST(BuilderTest, JumpAndLabels) {
  Bytes out = BuildAndRun([](Builder& b) {
    auto skip = b.NewLabel();
    b.Jmp(skip);
    b.LdImm(1);
    b.OutByte();  // skipped
    b.Bind(skip);
    b.LdImm(2);
    b.OutByte();
    b.Halt();
  });
  EXPECT_EQ(out, (Bytes{2}));
}

TEST(BuilderTest, ConditionalJz) {
  Bytes out = BuildAndRun([](Builder& b) {
    auto zero_path = b.NewLabel();
    auto end = b.NewLabel();
    b.LdImm(0);
    b.Jz(zero_path);
    b.LdImm(9);
    b.OutByte();
    b.Jmp(end);
    b.Bind(zero_path);
    b.LdImm(1);
    b.OutByte();
    b.Bind(end);
    // non-zero must not jump
    auto zero_path2 = b.NewLabel();
    auto end2 = b.NewLabel();
    b.LdImm(5);
    b.Jz(zero_path2);
    b.LdImm(2);
    b.OutByte();
    b.Jmp(end2);
    b.Bind(zero_path2);
    b.LdImm(9);
    b.OutByte();
    b.Bind(end2);
    b.Halt();
  });
  EXPECT_EQ(out, (Bytes{1, 2}));
}

TEST(BuilderTest, ConditionalJcJnc) {
  Bytes out = BuildAndRun([](Builder& b) {
    auto borrow_path = b.NewLabel();
    auto end = b.NewLabel();
    b.LdImm(3);
    b.SubImm(5);  // borrow set
    b.Jc(borrow_path);
    b.LdImm(9);
    b.OutByte();
    b.Jmp(end);
    b.Bind(borrow_path);
    b.LdImm(1);
    b.OutByte();
    b.Bind(end);
    auto no_borrow = b.NewLabel();
    auto end2 = b.NewLabel();
    b.LdImm(9);
    b.SubImm(4);  // no borrow
    b.Jnc(no_borrow);
    b.LdImm(9);
    b.OutByte();
    b.Jmp(end2);
    b.Bind(no_borrow);
    b.LdImm(2);
    b.OutByte();
    b.Bind(end2);
    b.Halt();
  });
  EXPECT_EQ(out, (Bytes{1, 2}));
}

TEST(BuilderTest, LoopWithCounter) {
  // Sum 1..10 = 55 via a cell-based loop.
  Bytes out = BuildAndRun([](Builder& b) {
    auto i = b.NewCell(10);
    auto acc = b.NewCell(0);
    auto loop = b.NewLabel();
    b.Bind(loop);
    b.Ld(acc);
    b.AddCell(i);
    b.St(acc);
    b.Ld(i);
    b.SubImm(1);
    b.St(i);
    b.Jnz(loop);
    b.Ld(acc);
    b.OutByte();
    b.Halt();
  });
  EXPECT_EQ(out, (Bytes{55}));
}

TEST(BuilderTest, IndexedLoadStore) {
  Bytes out = BuildAndRun([](Builder& b) {
    auto arr = b.NewArray(5, 0);
    auto idx = b.NewCell(0);
    // arr[i] = i * 3 for i in 0..4, then emit arr[0..4].
    auto fill_loop = b.NewLabel();
    auto emit_loop = b.NewLabel();
    auto val = b.NewCell(0);
    b.Bind(fill_loop);
    b.Ld(val);
    b.StIndexed(arr, idx);
    b.AddImm(3);
    b.St(val);
    b.Ld(idx);
    b.AddImm(1);
    b.St(idx);
    b.SubImm(5);
    b.Jnz(fill_loop);
    b.LdImm(0);
    b.St(idx);
    b.Bind(emit_loop);
    b.LdIndexed(arr, idx);
    b.OutByte();
    b.Ld(idx);
    b.AddImm(1);
    b.St(idx);
    b.SubImm(5);
    b.Jnz(emit_loop);
    b.Halt();
  });
  EXPECT_EQ(out, (Bytes{0, 3, 6, 9, 12}));
}

TEST(BuilderTest, FunctionsCallRet) {
  Bytes out = BuildAndRun([](Builder& b) {
    auto fn = b.DeclareFn();
    auto x = b.NewCell(0);
    auto start = b.NewLabel();
    b.Jmp(start);
    b.BeginFn(fn);  // doubles cell x
    b.Ld(x);
    b.AddCell(x);
    b.St(x);
    b.Ret(fn);
    b.Bind(start);
    b.LdImm(5);
    b.St(x);
    b.Call(fn);
    b.Call(fn);
    b.Ld(x);
    b.OutByte();  // 20
    b.Halt();
  });
  EXPECT_EQ(out, (Bytes{20}));
}

TEST(BuilderTest, InByteEofDetection) {
  // Echo input until EOF using SubImm(0xFFFFFFFF)+Jz as EOF test.
  Bytes out = BuildAndRun(
      [](Builder& b) {
        auto loop = b.NewLabel();
        auto done = b.NewLabel();
        auto v = b.NewCell(0);
        b.Bind(loop);
        b.InByte();
        b.St(v);
        b.SubImm(0xFFFFFFFFu);
        b.Jz(done);
        b.Ld(v);
        b.OutByte();
        b.Jmp(loop);
        b.Bind(done);
        b.Halt();
      },
      Bytes{1, 2, 3, 255});
  EXPECT_EQ(out, (Bytes{1, 2, 3, 255}));
}

TEST(BuilderTest, UnboundLabelFailsBuild) {
  Builder b;
  auto l = b.NewLabel();
  b.Jmp(l);
  b.Halt();
  EXPECT_FALSE(b.Build().ok());
}

// ---------------- the execution engine (machine.h) ----------------

// Echo-until-EOF program used by several engine tests.
Program EchoProgram() {
  Builder b;
  auto loop = b.NewLabel();
  auto done = b.NewLabel();
  auto v = b.NewCell(0);
  b.Bind(loop);
  b.InByte();
  b.St(v);
  b.SubImm(0xFFFFFFFFu);
  b.Jz(done);
  b.Ld(v);
  b.OutByte();
  b.Jmp(loop);
  b.Bind(done);
  b.Halt();
  return b.Build().TakeValue();
}

TEST(MachineTest, IncrementalSlicesMatchMonolithicRun) {
  const Program p = EchoProgram();
  const Bytes input{10, 20, 30, 40, 50};
  auto mono = ::ule::verisc::Run(p, input, {});
  ASSERT_TRUE(mono.ok());

  Machine m;
  ASSERT_TRUE(m.Load(p).ok());
  m.SetInput(input);
  int slices = 0;
  MachineState st = MachineState::kReady;
  while ((st = m.RunFor(7)) == MachineState::kPaused) ++slices;
  EXPECT_EQ(st, MachineState::kHalted);
  EXPECT_GT(slices, 1);  // the run really was sliced
  EXPECT_EQ(m.output(), mono.value().output);
  EXPECT_EQ(m.steps(), mono.value().steps);
}

TEST(MachineTest, RunForAfterHaltIsIdempotent) {
  Program p;
  p.words = {Instr(kSt, 5)};
  Machine m;
  ASSERT_TRUE(m.Load(p).ok());
  EXPECT_EQ(m.RunFor(100), MachineState::kHalted);
  const uint64_t steps = m.steps();
  EXPECT_EQ(m.RunFor(100), MachineState::kHalted);
  EXPECT_EQ(m.steps(), steps);
}

TEST(MachineTest, MemoryReuseIsolatesConsecutivePrograms) {
  // Program A dirties a far cell; after reloading, program B must read 0
  // from it (the engine re-zeroes the dirtied region, not 4 MiB).
  const uint32_t far_cell = 0x80000;
  Program a;
  a.words = {Instr(kLd, 16 + 3), Instr(kSt, far_cell), Instr(kSt, 5), 0xAB};
  Program b;
  b.words = {Instr(kLd, far_cell), Instr(kSt, 4), Instr(kSt, 5)};
  Machine m;
  ASSERT_TRUE(m.Load(a).ok());
  EXPECT_EQ(m.RunFor(10), MachineState::kHalted);
  ASSERT_TRUE(m.Load(b).ok());
  EXPECT_EQ(m.RunFor(10), MachineState::kHalted);
  ASSERT_EQ(m.output().size(), 1u);
  EXPECT_EQ(m.output()[0], 0);
}

TEST(MachineTest, ReloadShrinkingProgramClearsOldTail) {
  // A longer program followed by a shorter one: the tail words of the old
  // image must not shine through into the new run.
  Program longer;
  longer.words = {Instr(kSt, 5), 0u, 0u, 0u, 0xDEADu};
  Program shorter;
  // Reads the word where `longer` had 0xDEAD (index 16+4).
  shorter.words = {Instr(kLd, 16 + 4), Instr(kSt, 4), Instr(kSt, 5)};
  Machine m;
  ASSERT_TRUE(m.Load(longer).ok());
  EXPECT_EQ(m.RunFor(10), MachineState::kHalted);
  ASSERT_TRUE(m.Load(shorter).ok());
  EXPECT_EQ(m.RunFor(10), MachineState::kHalted);
  ASSERT_EQ(m.output().size(), 1u);
  EXPECT_EQ(m.output()[0], 0);
}

namespace {
class CountingOutput final : public OutputPort {
 public:
  void WriteByte(uint8_t byte) override {
    ++writes;
    last = byte;
  }
  int writes = 0;
  uint8_t last = 0;
};
}  // namespace

TEST(MachineTest, PluggablePortsReceiveTraffic) {
  const Program p = EchoProgram();
  const Bytes input{1, 2, 3};  // must outlive the run (the port holds a view)
  BytesInputPort in(input);
  CountingOutput out;
  Machine m;
  ASSERT_TRUE(m.Load(p).ok());
  m.SetPorts(&in, &out);
  EXPECT_EQ(m.RunFor(1'000'000), MachineState::kHalted);
  EXPECT_EQ(out.writes, 3);
  EXPECT_EQ(out.last, 3);
  EXPECT_TRUE(m.output().empty());  // built-in sink unused
}

TEST(MachineTest, PausedExactlyAtBudget) {
  // Tight infinite loop; the engine must execute exactly the budget.
  Program p;
  p.words = {Instr(kLd, 16 + 2), Instr(kSt, 1), 16u};
  Machine m;
  ASSERT_TRUE(m.Load(p).ok());
  EXPECT_EQ(m.RunFor(12345), MachineState::kPaused);
  EXPECT_EQ(m.steps(), 12345u);
  EXPECT_EQ(m.RunFor(55), MachineState::kPaused);
  EXPECT_EQ(m.steps(), 12400u);
}

TEST(MachineTest, PcRunOffEndFaults) {
  // No halt: execution runs off the loaded words into zeroed memory (LD 0
  // all the way) and must fault at the end of the address space, counting
  // only executed instructions.
  Program p;
  p.words = {Instr(kLd, 0)};
  Machine m;
  ASSERT_TRUE(m.Load(p).ok());
  EXPECT_EQ(m.RunFor(2 * kMemoryWords), MachineState::kFault);
  EXPECT_EQ(m.steps(), static_cast<uint64_t>(kMemoryWords - kProgramOrigin));
}

TEST(MachineTest, ProgramTooLargeRejected) {
  Program p;
  p.words.assign(kMemoryWords, 0);
  Machine m;
  EXPECT_FALSE(m.Load(p).ok());
}

TEST(MachineTest, WriteWordsInjectsAndLoadRezeroes) {
  // Program emits the low byte of a far cell; the host injects the value
  // after Load. WriteWords must extend the dirty region so a plain reload
  // reads zero again.
  const uint32_t far_cell = 0x40000;
  Program p;
  p.words = {Instr(kLd, far_cell), Instr(kSt, 4), Instr(kSt, 5)};
  Machine m;
  ASSERT_TRUE(m.Load(p).ok());
  const uint32_t v = 0x5A;
  m.WriteWords(far_cell, &v, 1);
  EXPECT_EQ(m.RunFor(10), MachineState::kHalted);
  ASSERT_EQ(m.output().size(), 1u);
  EXPECT_EQ(m.output()[0], 0x5A);
  ASSERT_TRUE(m.Load(p).ok());
  EXPECT_EQ(m.RunFor(10), MachineState::kHalted);
  ASSERT_EQ(m.output().size(), 1u);
  EXPECT_EQ(m.output()[0], 0);
}

TEST(MachineTest, LoadNoZeroKeepsResidentState) {
  const uint32_t far_cell = 0x40000;
  Program p;
  p.words = {Instr(kLd, far_cell), Instr(kSt, 4), Instr(kSt, 5)};
  Machine m;
  ASSERT_TRUE(m.Load(p).ok());
  const uint32_t v = 0x77;
  m.WriteWords(far_cell, &v, 1);
  const uint64_t seq = m.load_seq();
  ASSERT_TRUE(m.LoadNoZero(p).ok());
  EXPECT_EQ(m.load_seq(), seq + 1);
  EXPECT_EQ(m.RunFor(10), MachineState::kHalted);
  ASSERT_EQ(m.output().size(), 1u);
  EXPECT_EQ(m.output()[0], 0x77);  // resident word survived the reload
}

// ---------------- superinstruction fusion (engine acceleration) ----------------

TEST(FusionTest, ClearingThePlanIsInvisible) {
  const Program fused = EchoProgram();
  ASSERT_FALSE(fused.fusion_plan.empty());  // the peephole found pairs
  Program plain = fused;
  plain.fusion_plan.clear();

  const Bytes input{1, 2, 3, 4, 0xFF, 0};
  Machine mf, mp;
  ASSERT_TRUE(mf.Load(fused).ok());
  ASSERT_TRUE(mp.Load(plain).ok());
  mf.SetInput(input);
  mp.SetInput(input);
  EXPECT_EQ(mf.RunFor(1'000'000), MachineState::kHalted);
  EXPECT_EQ(mp.RunFor(1'000'000), MachineState::kHalted);
  EXPECT_EQ(mf.output(), mp.output());
  // Per-constituent accounting: a fused pair retires as two instructions,
  // so the step count is dispatch-strategy invariant.
  EXPECT_EQ(mf.steps(), mp.steps());
}

TEST(FusionTest, PlanIsNotSerialized) {
  // Archival purity: the byte format stays pure 4-instruction VeRisc.
  const Program p = EchoProgram();
  ASSERT_FALSE(p.fusion_plan.empty());
  auto rt = Program::Deserialize(p.Serialize());
  ASSERT_TRUE(rt.ok());
  EXPECT_EQ(rt.value().words, p.words);
  EXPECT_TRUE(rt.value().fusion_plan.empty());
}

TEST(FusionTest, MidPairPausesAreInvisible) {
  // Budget 1 forces a pause between the constituents of every fused pair;
  // output and step accounting must match the monolithic run exactly.
  const Program p = EchoProgram();
  const Bytes input{5, 6, 7, 8, 9, 0xAA};
  const RunResult mono = MustRun(p, input);
  Machine m;
  ASSERT_TRUE(m.Load(p).ok());
  m.SetInput(input);
  MachineState st = MachineState::kReady;
  while ((st = m.RunFor(1)) == MachineState::kPaused) {
  }
  EXPECT_EQ(st, MachineState::kHalted);
  EXPECT_EQ(m.output(), mono.output);
  EXPECT_EQ(m.steps(), mono.steps);
}

TEST(FusionTest, LastRunStatsCountTheRun) {
  const Program p = EchoProgram();
  const Bytes input{1, 2, 3, 0};
  Machine m;
  ASSERT_TRUE(m.Load(p).ok());
  m.SetInput(input);
  uint64_t slices = 0;
  MachineState st = MachineState::kReady;
  do {
    st = m.RunFor(7);
    ++slices;
  } while (st == MachineState::kPaused);
  EXPECT_EQ(st, MachineState::kHalted);
  const Machine::RunStats rs = m.LastRunStats();
  EXPECT_EQ(rs.retired, m.steps());
  EXPECT_EQ(rs.slices, slices);
  EXPECT_EQ(rs.faults, 0u);
  EXPECT_LE(rs.fused, rs.retired);
  // With threaded dispatch the echo loop retires fused pairs; the
  // portable switch engine never quickens and reports zero.
  if (rs.fused > 0) {
    EXPECT_LT(rs.fused, rs.retired);
  }

  // A faulting run flips the fault counter, and Load resets the stats.
  Program runoff;
  runoff.words = {Instr(kLd, 0)};
  ASSERT_TRUE(m.Load(runoff).ok());
  EXPECT_EQ(m.LastRunStats().retired, 0u);
  EXPECT_EQ(m.RunFor(2 * kMemoryWords), MachineState::kFault);
  EXPECT_EQ(m.LastRunStats().faults, 1u);
}

TEST(FusionTest, FusedNibblesOutsideTheirAddressClassFault) {
  // Each fused opcode is only dispatchable in the one address class the
  // quickener emits it for (4 and 12 start with a mapped access, the rest
  // with a memory access). A word carrying the nibble in the *other*
  // class is an illegal instruction and must fault on the first step —
  // the spec's fault semantics survive the fused dispatch table.
  for (uint32_t nibble = 4; nibble <= 15; ++nibble) {
    const bool mapped_class = (nibble == 4 || nibble == 12);
    const uint32_t addr = mapped_class ? 100u : 5u;  // the wrong class
    Program p;
    p.words = {(nibble << 28) | addr, Instr(kSt, 5)};
    Machine m;
    ASSERT_TRUE(m.Load(p).ok());
    EXPECT_EQ(m.RunFor(10), MachineState::kFault) << nibble;
    EXPECT_EQ(m.steps(), 1u) << nibble;
  }
}

// ---------------- implementation conformance (portability, E7) ----------------

struct ConformanceCase {
  std::string name;
  Program program;
  Bytes input;
};

std::vector<ConformanceCase> ConformanceCorpus() {
  std::vector<ConformanceCase> cases;
  {
    // Echo program via builder.
    Builder b;
    auto loop = b.NewLabel();
    auto done = b.NewLabel();
    auto v = b.NewCell(0);
    b.Bind(loop);
    b.InByte();
    b.St(v);
    b.SubImm(0xFFFFFFFFu);
    b.Jz(done);
    b.Ld(v);
    b.OutByte();
    b.Jmp(loop);
    b.Bind(done);
    b.Halt();
    Bytes input(97);
    Rng rng(11);
    for (auto& x : input) x = static_cast<uint8_t>(rng.Below(256));
    cases.push_back({"echo", b.Build().TakeValue(), input});
  }
  {
    // Checksum: sum of all input bytes mod 256, emitted once.
    Builder b;
    auto loop = b.NewLabel();
    auto done = b.NewLabel();
    auto v = b.NewCell(0);
    auto acc = b.NewCell(0);
    b.Bind(loop);
    b.InByte();
    b.St(v);
    b.SubImm(0xFFFFFFFFu);
    b.Jz(done);
    b.Ld(acc);
    b.AddCell(v);
    b.St(acc);
    b.Jmp(loop);
    b.Bind(done);
    b.Ld(acc);
    b.OutByte();
    b.Halt();
    cases.push_back({"checksum", b.Build().TakeValue(), Bytes{1, 2, 3, 250}});
  }
  {
    // Fibonacci bytes: emit fib(0..12) mod 256.
    Builder b;
    auto a = b.NewCell(0);
    auto c = b.NewCell(1);
    auto n = b.NewCell(13);
    auto t = b.NewCell(0);
    auto loop = b.NewLabel();
    b.Bind(loop);
    b.Ld(a);
    b.OutByte();
    b.Ld(a);
    b.AddCell(c);
    b.AndImm(0xFF);
    b.St(t);
    b.Ld(c);
    b.St(a);
    b.Ld(t);
    b.St(c);
    b.Ld(n);
    b.SubImm(1);
    b.St(n);
    b.Jnz(loop);
    b.Halt();
    cases.push_back({"fibonacci", b.Build().TakeValue(), {}});
  }
  return cases;
}

class ImplementationConformance
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ImplementationConformance, MatchesReference) {
  const auto [impl_idx, case_idx] = GetParam();
  const auto& impls = AllImplementations();
  const auto corpus = ConformanceCorpus();
  const auto& impl = impls[static_cast<size_t>(impl_idx)];
  const auto& c = corpus[static_cast<size_t>(case_idx)];

  auto expected = ::ule::verisc::Run(c.program, c.input, {});
  ASSERT_TRUE(expected.ok());
  auto actual = impl.run(c.program, c.input, {});
  ASSERT_TRUE(actual.ok()) << impl.name;
  EXPECT_EQ(actual.value().output, expected.value().output)
      << impl.name << " diverges on " << c.name;
  EXPECT_EQ(actual.value().reason, expected.value().reason) << impl.name;
  EXPECT_EQ(actual.value().steps, expected.value().steps)
      << impl.name << " step count differs on " << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllImplsAllCases, ImplementationConformance,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Range(0, 3)));

TEST(ImplementationsTest, RegistryShape) {
  const auto& impls = AllImplementations();
  ASSERT_EQ(impls.size(), 4u);
  EXPECT_EQ(impls[0].name, "reference");
  for (const auto& impl : impls) {
    EXPECT_GT(impl.lines_of_code, 0) << impl.name;
    // The paper's claim: an afternoon's worth of code, not a project.
    EXPECT_LT(impl.lines_of_code, 300) << impl.name;
  }
}

}  // namespace
}  // namespace verisc
}  // namespace ule
