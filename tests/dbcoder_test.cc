// Tests for DBCoder: LZ77 parsing, the range coder, all container schemes
// (store / lzss / lzac / columnar), and compression-ratio orderings that
// experiment E10 relies on.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dbcoder/columnar.h"
#include "dbcoder/dbcoder.h"
#include "dbcoder/lz77.h"
#include "dbcoder/rangecoder.h"
#include "support/random.h"

namespace ule {
namespace dbcoder {
namespace {

Bytes CompressibleText(Rng* rng, size_t approx) {
  static const char* kWords[] = {"SELECT", "INSERT", "customer", "order",
                                 "lineitem", "1995-03-15", "0.04", "FRANCE",
                                 "shipping", "instructions"};
  std::string s;
  while (s.size() < approx) {
    s += kWords[rng->Below(10)];
    s += (rng->Below(8) == 0) ? "\n" : "\t";
  }
  return ToBytes(s);
}

// ---------------- LZ77 ----------------

TEST(Lz77Test, ParseExpandRoundTripText) {
  Rng rng(1);
  const Bytes data = CompressibleText(&rng, 20000);
  EXPECT_EQ(Expand(Parse(data)), data);
}

TEST(Lz77Test, ParseExpandRoundTripRandom) {
  Rng rng(2);
  const Bytes data = RandomBytes(&rng, 10000);
  EXPECT_EQ(Expand(Parse(data)), data);
}

TEST(Lz77Test, EmptyInput) {
  EXPECT_TRUE(Parse({}).empty());
  EXPECT_TRUE(Expand({}).empty());
}

TEST(Lz77Test, FindsLongRuns) {
  Bytes data(1000, 'a');
  const auto tokens = Parse(data);
  // A run should compress to a handful of tokens, not 1000 literals.
  EXPECT_LT(tokens.size(), 50u);
  EXPECT_EQ(Expand(tokens), data);
}

TEST(Lz77Test, TokensRespectFormatLimits) {
  Rng rng(3);
  const Bytes data = CompressibleText(&rng, 30000);
  for (const Token& t : Parse(data)) {
    if (t.is_match) {
      EXPECT_GE(t.distance, 1u);
      EXPECT_LE(t.distance, kWindowSize);
      EXPECT_GE(t.length, kMinMatch);
      EXPECT_LE(t.length, kMaxMatch);
    }
  }
}

TEST(Lz77Test, OverlappingMatchExpansion) {
  // "abcabcabc..." exercises distance < length copies.
  std::string s;
  for (int i = 0; i < 300; ++i) s += "abc";
  const Bytes data = ToBytes(s);
  EXPECT_EQ(Expand(Parse(data)), data);
}

// ---------------- range coder ----------------

TEST(RangeCoderTest, SingleContextRoundTrip) {
  Rng rng(4);
  std::vector<int> bits(5000);
  for (auto& b : bits) b = rng.Chance(0.8) ? 0 : 1;  // biased source

  RangeEncoder enc;
  uint8_t p = kProbInit;
  for (int b : bits) enc.EncodeBit(&p, b);
  const Bytes stream = enc.Finish();

  RangeDecoder dec(stream);
  uint8_t q = kProbInit;
  for (size_t i = 0; i < bits.size(); ++i) {
    ASSERT_EQ(dec.DecodeBit(&q), bits[i]) << "bit " << i;
  }
}

TEST(RangeCoderTest, BiasedSourceCompresses) {
  Rng rng(5);
  const int n = 80000;
  RangeEncoder enc;
  uint8_t p = kProbInit;
  for (int i = 0; i < n; ++i) enc.EncodeBit(&p, rng.Chance(0.95) ? 0 : 1);
  const Bytes stream = enc.Finish();
  // ~0.286 bits/bit entropy at p=0.95; allow generous slack for the 8-bit
  // probability resolution, but demand clear compression (< 0.6 bits/bit).
  EXPECT_LT(stream.size() * 8.0, n * 0.6);
}

TEST(RangeCoderTest, MultiContextRoundTrip) {
  Rng rng(6);
  std::vector<uint8_t> enc_probs(16, kProbInit);
  std::vector<uint8_t> dec_probs(16, kProbInit);
  std::vector<std::pair<int, int>> trace;  // (context, bit)
  RangeEncoder enc;
  for (int i = 0; i < 20000; ++i) {
    const int ctx = static_cast<int>(rng.Below(16));
    const int bit = rng.Chance(0.1 + 0.05 * ctx) ? 1 : 0;
    enc.EncodeBit(&enc_probs[ctx], bit);
    trace.emplace_back(ctx, bit);
  }
  const Bytes stream = enc.Finish();
  RangeDecoder dec(stream);
  for (auto [ctx, bit] : trace) {
    ASSERT_EQ(dec.DecodeBit(&dec_probs[ctx]), bit);
  }
}

TEST(RangeCoderTest, FirstByteIsZero) {
  RangeEncoder enc;
  uint8_t p = kProbInit;
  enc.EncodeBit(&p, 1);
  const Bytes stream = enc.Finish();
  ASSERT_FALSE(stream.empty());
  EXPECT_EQ(stream[0], 0);  // the Bootstrap decoder spec discards one byte
}

// ---------------- LZ77 + range coder combined ----------------

// Entropy-codes an LZ77 token stream through the range coder and back,
// exactly the composition the LZAC scheme is built on: every token field
// is sent bit-by-bit under its own adaptive context family.
TEST(Lz77RangeCoderTest, TokenStreamRoundTripOnRandomBuffers) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    for (size_t n : {size_t{1}, size_t{37}, size_t{4096}, size_t{50000}}) {
      Rng rng(seed);
      // Half-random, half-repetitive so both literals and matches occur.
      Bytes data = RandomBytes(&rng, n);
      const Bytes prefix(data.begin(), data.begin() + n / 2);
      data.insert(data.end(), prefix.begin(), prefix.end());
      const auto tokens = Parse(data);

      // One context per bit position of each field keeps the model tiny
      // but adaptive, like the archived decoder's layout.
      std::vector<uint8_t> kind(1, kProbInit), lit(8, kProbInit),
          dist(kWindowBits, kProbInit), len(kLengthBits, kProbInit);
      RangeEncoder enc;
      auto put = [&enc](std::vector<uint8_t>& ctx, uint32_t v, int bits) {
        for (int i = bits - 1; i >= 0; --i) {
          enc.EncodeBit(&ctx[static_cast<size_t>(i)],
                        static_cast<int>((v >> i) & 1));
        }
      };
      for (const Token& t : tokens) {
        put(kind, t.is_match ? 1 : 0, 1);
        if (t.is_match) {
          put(dist, static_cast<uint32_t>(t.distance - 1), kWindowBits);
          put(len, static_cast<uint32_t>(t.length - kMinMatch), kLengthBits);
        } else {
          put(lit, t.literal, 8);
        }
      }
      const Bytes stream = enc.Finish();

      std::vector<uint8_t> dkind(1, kProbInit), dlit(8, kProbInit),
          ddist(kWindowBits, kProbInit), dlen(kLengthBits, kProbInit);
      RangeDecoder dec(stream);
      auto get = [&dec](std::vector<uint8_t>& ctx, int bits) {
        uint32_t v = 0;
        for (int i = bits - 1; i >= 0; --i) {
          v |= static_cast<uint32_t>(
                   dec.DecodeBit(&ctx[static_cast<size_t>(i)]))
               << i;
        }
        return v;
      };
      std::vector<Token> decoded;
      decoded.reserve(tokens.size());
      for (size_t i = 0; i < tokens.size(); ++i) {
        Token t;
        t.is_match = get(dkind, 1) != 0;
        if (t.is_match) {
          t.distance = static_cast<uint16_t>(get(ddist, kWindowBits) + 1);
          t.length = static_cast<uint8_t>(get(dlen, kLengthBits) + kMinMatch);
        } else {
          t.literal = static_cast<uint8_t>(get(dlit, 8));
        }
        decoded.push_back(t);
      }
      ASSERT_EQ(Expand(decoded), data) << "seed " << seed << " n " << n;
    }
  }
}

// Full LZAC container pipeline (Parse + range coder inside Encode) across a
// sweep of random buffer sizes, including boundary sizes around the LZ77
// window.
TEST(Lz77RangeCoderTest, LzacContainerSweepOnRandomBuffers) {
  const size_t sizes[] = {0,    1,    2,    3,    255,   256,
                          4095, 8192, 8193, 16384, 40000};
  for (uint64_t seed : {31u, 32u}) {
    for (size_t n : sizes) {
      const Bytes data = RandomBytes(seed * 1000 + n, n);
      auto packed = Encode(data, Scheme::kLzac);
      ASSERT_TRUE(packed.ok()) << packed.status().ToString();
      auto unpacked = Decode(packed.value());
      ASSERT_TRUE(unpacked.ok()) << unpacked.status().ToString();
      EXPECT_EQ(unpacked.value(), data) << "seed " << seed << " n " << n;
    }
  }
}

// ---------------- container schemes ----------------

class SchemeRoundTrip : public ::testing::TestWithParam<Scheme> {};

TEST_P(SchemeRoundTrip, TextPayload) {
  Rng rng(7);
  const Bytes data = CompressibleText(&rng, 50000);
  auto packed = Encode(data, GetParam());
  ASSERT_TRUE(packed.ok()) << packed.status().ToString();
  auto back = Decode(packed.value());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), data);
}

TEST_P(SchemeRoundTrip, RandomPayload) {
  Rng rng(8);
  const Bytes data = RandomBytes(&rng, 20000);
  auto packed = Encode(data, GetParam());
  ASSERT_TRUE(packed.ok());
  auto back = Decode(packed.value());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), data);
}

TEST_P(SchemeRoundTrip, EmptyPayload) {
  auto packed = Encode({}, GetParam());
  ASSERT_TRUE(packed.ok());
  auto back = Decode(packed.value());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back.value().empty());
}

TEST_P(SchemeRoundTrip, OneByte) {
  const Bytes data = {0x42};
  auto packed = Encode(data, GetParam());
  ASSERT_TRUE(packed.ok());
  auto back = Decode(packed.value());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), data);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeRoundTrip,
                         ::testing::Values(Scheme::kStore, Scheme::kLzss,
                                           Scheme::kLzac, Scheme::kColumnar),
                         [](const auto& info) {
                           return SchemeName(info.param);
                         });

TEST(ContainerTest, PeekScheme) {
  auto packed = Encode(ToBytes("hello"), Scheme::kLzss);
  ASSERT_TRUE(packed.ok());
  auto scheme = PeekScheme(packed.value());
  ASSERT_TRUE(scheme.ok());
  EXPECT_EQ(scheme.value(), Scheme::kLzss);
}

TEST(ContainerTest, BadMagicRejected) {
  Bytes junk = ToBytes("XXXXjunkjunkjunkjunk");
  EXPECT_FALSE(Decode(junk).ok());
}

TEST(ContainerTest, PayloadCorruptionDetected) {
  Rng rng(9);
  const Bytes data = CompressibleText(&rng, 5000);
  auto packed = Encode(data, Scheme::kLzac);
  ASSERT_TRUE(packed.ok());
  Bytes tampered = packed.TakeValue();
  tampered[tampered.size() / 2] ^= 0x01;
  auto back = Decode(tampered);
  // Either an explicit decode failure or a CRC mismatch; never wrong bytes.
  EXPECT_FALSE(back.ok());
}

TEST(ContainerTest, TruncationDetected) {
  auto packed = Encode(ToBytes("some text to compress"), Scheme::kLzss);
  ASSERT_TRUE(packed.ok());
  Bytes t = packed.TakeValue();
  t.resize(t.size() / 2);
  EXPECT_FALSE(Decode(t).ok());
}

// ---------------- compression behaviour (shape of E10) ----------------

std::string MakeCopyBlock(Rng* rng, int rows) {
  std::string s = "COPY public.orders (o_id, o_price, o_date, o_status) "
                  "FROM stdin;\n";
  int64_t id = 1000;
  for (int i = 0; i < rows; ++i) {
    id += static_cast<int64_t>(rng->Below(5)) + 1;
    const int64_t cents = 10000 + static_cast<int64_t>(rng->Below(900000));
    const int day = 1 + static_cast<int>(rng->Below(28));
    char date[16];
    std::snprintf(date, sizeof(date), "1995-%02d-%02d",
                  1 + static_cast<int>(rng->Below(12)), day);
    const char* status = (rng->Below(3) == 0) ? "O" : "F";
    s += std::to_string(id) + "\t" + std::to_string(cents / 100) + "." +
         (cents % 100 < 10 ? "0" : "") + std::to_string(cents % 100) + "\t" +
         date + "\t" + status + "\n";
  }
  s += "\\.\n";
  return s;
}

TEST(CompressionShapeTest, LzacBeatsLzssBeatsStore) {
  Rng rng(10);
  const Bytes data = ToBytes(
      "-- archive preamble\n" + MakeCopyBlock(&rng, 3000) + "-- trailer\n");
  const size_t store = Encode(data, Scheme::kStore).value().size();
  const size_t lzss = Encode(data, Scheme::kLzss).value().size();
  const size_t lzac = Encode(data, Scheme::kLzac).value().size();
  EXPECT_LT(lzss, store);
  EXPECT_LT(lzac, lzss);  // arithmetic coding must add real value
}

TEST(CompressionShapeTest, ColumnarBeatsLzacOnTabularData) {
  // The paper's §5 claim: typed columnar encoding beats generic compression
  // on database dumps.
  Rng rng(11);
  const Bytes data = ToBytes(MakeCopyBlock(&rng, 5000));
  const size_t lzac = Encode(data, Scheme::kLzac).value().size();
  const size_t columnar = Encode(data, Scheme::kColumnar).value().size();
  EXPECT_LT(columnar, lzac);
}

TEST(ColumnarTest, NonSqlInputStillRoundTrips) {
  Rng rng(12);
  const Bytes data = RandomBytes(&rng, 4096);
  auto enc = ColumnarEncode(data);
  ASSERT_TRUE(enc.ok());
  auto dec = ColumnarDecode(enc.value(), data.size());
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec.value(), data);
}

TEST(ColumnarTest, RaggedCopyBlockFallsBack) {
  // Rows with inconsistent column counts must still round-trip (verbatim
  // fallback path).
  const std::string text =
      "COPY t (a, b) FROM stdin;\n1\t2\n3\n4\t5\t6\n\\.\n";
  const Bytes data = ToBytes(text);
  auto enc = ColumnarEncode(data);
  ASSERT_TRUE(enc.ok());
  auto dec = ColumnarDecode(enc.value(), data.size());
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(ToString(dec.value()), text);
}

TEST(ColumnarTest, LeadingZerosNotMangled) {
  // "007" must not be re-emitted as "7": int inference rejects it.
  const std::string text = "COPY t (a) FROM stdin;\n007\n008\n\\.\n";
  const Bytes data = ToBytes(text);
  auto enc = ColumnarEncode(data);
  ASSERT_TRUE(enc.ok());
  auto dec = ColumnarDecode(enc.value(), data.size());
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(ToString(dec.value()), text);
}

TEST(ColumnarTest, UnterminatedCopyIsPlainText) {
  const std::string text = "COPY t (a) FROM stdin;\n1\n2\n";  // no \.
  const Bytes data = ToBytes(text);
  auto enc = ColumnarEncode(data);
  ASSERT_TRUE(enc.ok());
  auto dec = ColumnarDecode(enc.value(), data.size());
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(ToString(dec.value()), text);
}

TEST(ColumnarTest, DatesAndNullsRoundTrip) {
  const std::string text =
      "COPY t (d, v) FROM stdin;\n"
      "1992-01-31\t\\N\n1992-02-29\t10\n2024-12-31\t\\N\n\\.\n";
  const Bytes data = ToBytes(text);
  auto enc = ColumnarEncode(data);
  ASSERT_TRUE(enc.ok());
  auto dec = ColumnarDecode(enc.value(), data.size());
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(ToString(dec.value()), text);
}

// ---------------- UDBS segmented streams ----------------

TEST(SegmentedTest, RoundTripsWholeAndPerSegment) {
  Rng rng(40);
  const Bytes raw = CompressibleText(&rng, 30000);
  std::vector<SegmentSpan> plan(3);
  plan[0] = {0, 10000, 0, 0};
  plan[1] = {10000, 15000, 0, 0};
  plan[2] = {25000, raw.size() - 25000, 0, 0};
  auto stream = EncodeSegmented(raw, Scheme::kLzac, &plan);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  EXPECT_TRUE(IsSegmented(stream.value()));
  auto scheme = PeekScheme(stream.value());
  ASSERT_TRUE(scheme.ok());
  EXPECT_EQ(scheme.value(), Scheme::kLzac);

  // The whole stream decodes transparently to the original input.
  auto whole = Decode(stream.value());
  ASSERT_TRUE(whole.ok()) << whole.status().ToString();
  EXPECT_EQ(whole.value(), raw);

  // Every segment is a self-contained UDB1 container reproducing
  // exactly its raw span — the property selective restore builds on.
  auto listed = ListSegments(stream.value());
  ASSERT_TRUE(listed.ok()) << listed.status().ToString();
  ASSERT_EQ(listed.value().size(), plan.size());
  for (size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(listed.value()[i].raw_offset, plan[i].raw_offset);
    EXPECT_EQ(listed.value()[i].raw_len, plan[i].raw_len);
    EXPECT_EQ(listed.value()[i].stream_offset, plan[i].stream_offset);
    EXPECT_EQ(listed.value()[i].stream_len, plan[i].stream_len);
    auto piece = Decode(BytesView(stream.value())
                            .subspan(static_cast<size_t>(plan[i].stream_offset),
                                     static_cast<size_t>(plan[i].stream_len)));
    ASSERT_TRUE(piece.ok()) << piece.status().ToString();
    EXPECT_EQ(piece.value(),
              Bytes(raw.begin() + static_cast<long>(plan[i].raw_offset),
                    raw.begin() + static_cast<long>(plan[i].raw_offset +
                                                    plan[i].raw_len)));
  }
}

TEST(SegmentedTest, RejectsGappyOrShortPlans) {
  Rng rng(41);
  const Bytes raw = CompressibleText(&rng, 5000);
  std::vector<SegmentSpan> gap(2);
  gap[0] = {0, 1000, 0, 0};
  gap[1] = {1500, raw.size() - 1500, 0, 0};  // 500-byte hole
  EXPECT_EQ(EncodeSegmented(raw, Scheme::kLzss, &gap).status().code(),
            StatusCode::kInvalidArgument);
  std::vector<SegmentSpan> quick(1);
  quick[0] = {0, 1000, 0, 0};  // does not cover the input
  EXPECT_EQ(EncodeSegmented(raw, Scheme::kLzss, &quick).status().code(),
            StatusCode::kInvalidArgument);
  std::vector<SegmentSpan> none;
  EXPECT_EQ(EncodeSegmented(raw, Scheme::kLzss, &none).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SegmentedTest, HeaderCorruptionIsCaught) {
  Rng rng(42);
  const Bytes raw = CompressibleText(&rng, 8000);
  std::vector<SegmentSpan> plan(2);
  plan[0] = {0, 4000, 0, 0};
  plan[1] = {4000, raw.size() - 4000, 0, 0};
  auto stream = EncodeSegmented(raw, Scheme::kLzac, &plan);
  ASSERT_TRUE(stream.ok());
  Bytes mutated = stream.value();
  mutated[12] ^= 0xFF;  // inside the segment length table
  EXPECT_FALSE(ListSegments(mutated).ok());
  EXPECT_FALSE(Decode(mutated).ok());
}

TEST(SegmentedTest, ListSegmentsRejectsPlainContainers) {
  auto plain = Encode(ToBytes(std::string("plain old container")),
                      Scheme::kStore);
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(IsSegmented(plain.value()));
  EXPECT_FALSE(ListSegments(plain.value()).ok());
  // ...while Decode keeps handling both forms transparently.
  auto decoded = Decode(plain.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), ToBytes(std::string("plain old container")));
}

}  // namespace
}  // namespace dbcoder
}  // namespace ule
