// The ULE-R1 reel-set layer: sharding one archive across many ULE-C1
// reels under a catalog, restoring them in parallel with byte-identical
// output at any thread count and shard size, and degrading cleanly —
// a deleted reel, a truncated reel, or a flipped catalog byte must cost
// exactly the frames involved (surfaced as Status), never a crash or a
// silently wrong restore.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/micr_olonys.h"
#include "filmstore/container.h"
#include "filmstore/parity.h"
#include "filmstore/reel_reader.h"
#include "filmstore/reel_set.h"
#include "filmstore/scanner_source.h"
#include "media/scanner.h"
#include "mocoder/mocoder.h"
#include "support/crc32.h"
#include "support/io.h"
#include "support/random.h"
#include "tests/filmstore_testutil.h"

namespace ule {
namespace filmstore {
namespace {

using testutil::ByFrames;
using testutil::Drain;
using testutil::EncodedStream;
using testutil::ExpectSameFrames;
using testutil::FillSink;
using testutil::MakeStream;
using testutil::SmallOptions;

/// Builds a sharded reel set on disk and returns its catalog path.
std::string WriteSet(const std::string& name, const EncodedStream& data,
                     const EncodedStream& system, const ShardPolicy& shard,
                     int parity_reels = 0) {
  const std::string path = testing::TempDir() + name;
  testutil::WriteSetAt(path, data, system, shard, parity_reels);
  return path;
}

TEST(ReelSetTest, ShardsByFramesAndRoundTripsAtAnyThreadCount) {
  const EncodedStream data = MakeStream(mocoder::StreamId::kData, 3000, 31);
  const EncodedStream system = MakeStream(mocoder::StreamId::kSystem, 700, 32);
  const std::string path =
      WriteSet("reelset_frames.uler", data, system, ByFrames(5));

  auto reader = ReelSetReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_STREQ(reader.value()->kind(), "ULE-R1 reel set");
  EXPECT_GE(reader.value()->catalog().reels.size(), 3u);
  EXPECT_EQ(reader.value()->surviving_reels(),
            reader.value()->catalog().reels.size());
  EXPECT_EQ(reader.value()->catalog().archive_id, 0x1DB2026u);
  EXPECT_EQ(reader.value()->frame_count(mocoder::StreamId::kData),
            data.frames.size());
  EXPECT_EQ(reader.value()->frame_count(mocoder::StreamId::kSystem),
            system.frames.size());
  EXPECT_TRUE(reader.value()->has_bootstrap());
  auto bootstrap = reader.value()->ReadBootstrap();
  ASSERT_TRUE(bootstrap.ok());
  EXPECT_EQ(bootstrap.value(), "THE BOOTSTRAP\n");

  // Every reel honors the policy; ranges tile the stream contiguously.
  size_t expect_first_data = 0, expect_first_record = 0;
  for (const CatalogReel& row : reader.value()->catalog().reels) {
    EXPECT_LE(row.data_frames + row.system_frames, 5u);
    EXPECT_EQ(row.first_record, expect_first_record);
    EXPECT_EQ(row.first_data_frame, expect_first_data);
    expect_first_record += row.records;
    expect_first_data += row.data_frames;
  }

  // Byte-identical frame delivery regardless of restore fan-out.
  for (const int threads : {1, 4}) {
    reader.value()->set_restore_threads(threads);
    auto data_source = reader.value()->OpenFrames(mocoder::StreamId::kData);
    ExpectSameFrames(Drain(*data_source), data.frames);
    auto system_source =
        reader.value()->OpenFrames(mocoder::StreamId::kSystem);
    ExpectSameFrames(Drain(*system_source), system.frames);
  }
  EXPECT_TRUE(reader.value()->Verify().ok());
}

TEST(ReelSetTest, ShardsByBytesKeepsEveryReelUnderTheCap) {
  const EncodedStream data = MakeStream(mocoder::StreamId::kData, 2500, 33);
  const EncodedStream system = MakeStream(mocoder::StreamId::kSystem, 400, 34);
  ShardPolicy shard;
  shard.max_bytes_per_reel = 80 * 1000;
  const std::string path =
      WriteSet("reelset_bytes.uler", data, system, shard);

  auto reader = ReelSetReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  const ReelCatalog& catalog = reader.value()->catalog();
  EXPECT_GE(catalog.reels.size(), 3u);
  for (size_t i = 0; i < catalog.reels.size(); ++i) {
    // The cap binds the *sealed file*, except the final reel which also
    // carries the Bootstrap document unconditionally.
    if (!catalog.reels[i].has_bootstrap) {
      EXPECT_LE(catalog.reels[i].bytes, shard.max_bytes_per_reel)
          << "reel " << i;
    }
    std::error_code ec;
    EXPECT_EQ(std::filesystem::file_size(
                  testing::TempDir() + catalog.reels[i].name, ec),
              catalog.reels[i].bytes)
        << "reel " << i;
  }
  auto source = reader.value()->OpenFrames(mocoder::StreamId::kData);
  ExpectSameFrames(Drain(*source), data.frames);
}

TEST(ReelSetTest, OpenReelPicksTheCatalogBackend) {
  const EncodedStream data = MakeStream(mocoder::StreamId::kData, 600, 35);
  const EncodedStream system = MakeStream(mocoder::StreamId::kSystem, 0, 36);
  const std::string path =
      WriteSet("reelset_openreel.uler", data, system, ByFrames(2));
  auto reel = OpenReel(path);
  ASSERT_TRUE(reel.ok()) << reel.status().ToString();
  EXPECT_STREQ(reel.value()->kind(), "ULE-R1 reel set");
  auto source = reel.value()->OpenFrames(mocoder::StreamId::kData);
  ExpectSameFrames(Drain(*source), data.frames);
}

TEST(ReelSetTest, CatalogSerializationRoundTrips) {
  const EncodedStream data = MakeStream(mocoder::StreamId::kData, 900, 37);
  const EncodedStream system = MakeStream(mocoder::StreamId::kSystem, 300, 38);
  const std::string path =
      WriteSet("reelset_catalog.uler", data, system, ByFrames(4));
  auto catalog = LoadCatalog(path);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  auto reparsed = ReelCatalog::Parse(catalog.value().Serialize());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed.value().archive_id, catalog.value().archive_id);
  ASSERT_EQ(reparsed.value().reels.size(), catalog.value().reels.size());
  for (size_t i = 0; i < catalog.value().reels.size(); ++i) {
    EXPECT_EQ(reparsed.value().reels[i].name, catalog.value().reels[i].name);
    EXPECT_EQ(reparsed.value().reels[i].file_crc,
              catalog.value().reels[i].file_crc);
    EXPECT_EQ(reparsed.value().reels[i].first_record,
              catalog.value().reels[i].first_record);
  }
}

class ReelSetFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // ctest runs each case as its own process, concurrently, against the
    // same TempDir — every file name must carry the test name.
    test_name_ = ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name();
    data_ = MakeStream(mocoder::StreamId::kData, 2200, 40);
    system_ = MakeStream(mocoder::StreamId::kSystem, 500, 41);
    path_ = WriteSet("fault_" + test_name_ + ".uler", data_, system_,
                     ByFrames(4));
    auto catalog = LoadCatalog(path_);
    ASSERT_TRUE(catalog.ok());
    catalog_ = std::move(catalog).TakeValue();
    ASSERT_GE(catalog_.reels.size(), 3u);
  }

  std::string ReelPath(size_t i) const {
    return testing::TempDir() + catalog_.reels[i].name;
  }

  /// The data frames every reel except `dead` owns, in stream order —
  /// what a degraded restore must still deliver, exactly.
  std::vector<media::Image> SurvivingDataFrames(size_t dead) const {
    std::vector<media::Image> expected;
    for (size_t i = 0; i < catalog_.reels.size(); ++i) {
      if (i == dead) continue;
      const CatalogReel& row = catalog_.reels[i];
      for (uint32_t j = 0; j < row.data_frames; ++j) {
        expected.push_back(data_.frames[row.first_data_frame + j]);
      }
    }
    return expected;
  }

  std::string test_name_;
  EncodedStream data_;
  EncodedStream system_;
  std::string path_;
  ReelCatalog catalog_;
};

TEST_F(ReelSetFaultTest, DeletedReelDegradesToItsFrameRange) {
  const size_t dead = 1;
  ASSERT_TRUE(std::filesystem::remove(ReelPath(dead)));
  auto reader = ReelSetReader::Open(path_);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader.value()->surviving_reels(), catalog_.reels.size() - 1);
  EXPECT_FALSE(reader.value()->reel_status(dead).ok());
  EXPECT_NE(reader.value()->reel_status(dead).message().find("reel 1"),
            std::string::npos);
  // The surviving reels still serve exactly their frame ranges, at any
  // fan-out.
  for (const int threads : {1, 4}) {
    reader.value()->set_restore_threads(threads);
    auto source = reader.value()->OpenFrames(mocoder::StreamId::kData);
    ExpectSameFrames(Drain(*source), SurvivingDataFrames(dead));
  }
  // Verify refuses the set and names the missing reel.
  Status verify = reader.value()->Verify();
  ASSERT_FALSE(verify.ok());
  EXPECT_NE(verify.message().find(catalog_.reels[dead].name),
            std::string::npos);
}

TEST_F(ReelSetFaultTest, TruncatedReelDegradesToItsFrameRange) {
  const size_t dead = 2;
  // Cut the reel mid-record: it loses its footer, so it no longer opens,
  // and the set degrades exactly as with a missing file.
  auto bytes = ReadFileBytes(ReelPath(dead));
  ASSERT_TRUE(bytes.ok());
  Bytes cut(bytes.value().begin(),
            bytes.value().begin() + bytes.value().size() / 2);
  ASSERT_TRUE(WriteFileBytes(ReelPath(dead), cut).ok());

  auto reader = ReelSetReader::Open(path_);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader.value()->surviving_reels(), catalog_.reels.size() - 1);
  EXPECT_EQ(reader.value()->reel_status(dead).code(),
            StatusCode::kCorruption);
  auto source = reader.value()->OpenFrames(mocoder::StreamId::kData);
  ExpectSameFrames(Drain(*source), SurvivingDataFrames(dead));
  EXPECT_FALSE(reader.value()->Verify().ok());
}

TEST_F(ReelSetFaultTest, FlippedCatalogByteIsRejected) {
  auto bytes = ReadFileBytes(path_);
  ASSERT_TRUE(bytes.ok());
  Bytes mutated = std::move(bytes).TakeValue();
  mutated[mutated.size() / 2] ^= 0x20;
  ASSERT_TRUE(WriteFileBytes(path_, mutated).ok());
  auto reader = ReelSetReader::Open(path_);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruption)
      << reader.status().ToString();
}

TEST_F(ReelSetFaultTest, UnknownCatalogVersionIsUnimplemented) {
  auto bytes = ReadFileBytes(path_);
  ASSERT_TRUE(bytes.ok());
  Bytes mutated = std::move(bytes).TakeValue();
  mutated[4] = 9;  // catalog binary version
  // Re-seal the CRC so only the version is "wrong" — a future catalog
  // must be rejected as unimplemented, not misread as corrupt.
  const uint32_t crc = Crc32(BytesView(mutated).subspan(0, mutated.size() - 8));
  for (int i = 0; i < 4; ++i) {
    mutated[mutated.size() - 8 + i] = static_cast<uint8_t>(crc >> (8 * i));
  }
  ASSERT_TRUE(WriteFileBytes(path_, mutated).ok());
  auto reader = ReelSetReader::Open(path_);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kUnimplemented)
      << reader.status().ToString();
}

TEST_F(ReelSetFaultTest, FlippedRecordByteSurfacesMidStreamWithContext) {
  // Flip one payload byte inside reel 1's record region. The reel still
  // opens (its index is intact), so the error must surface exactly at
  // that frame during the parallel read — as a Status naming the offset,
  // never as wrong pixels.
  auto bytes = ReadFileBytes(ReelPath(1));
  ASSERT_TRUE(bytes.ok());
  Bytes mutated = std::move(bytes).TakeValue();
  mutated[kContainerHeaderBytes + kContainerRecordHeaderBytes + 40] ^= 0xFF;
  ASSERT_TRUE(WriteFileBytes(ReelPath(1), mutated).ok());

  auto reader = ReelSetReader::Open(path_);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_TRUE(reader.value()->reel_status(1).ok());  // index is intact
  reader.value()->set_restore_threads(4);
  auto source = reader.value()->OpenFrames(mocoder::StreamId::kData);
  // Frames before the bad record still arrive (reel 0's full range).
  const uint32_t good = catalog_.reels[0].data_frames;
  for (uint32_t i = 0; i < good; ++i) {
    auto next = source->Next();
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    ASSERT_TRUE(next.value().has_value());
    EXPECT_EQ(next.value()->pixels(), data_.frames[i].pixels());
  }
  auto bad = source->Next();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);
  EXPECT_NE(bad.status().message().find("offset"), std::string::npos)
      << bad.status().message();

  Status verify = reader.value()->Verify();
  ASSERT_FALSE(verify.ok());
  EXPECT_NE(verify.message().find(catalog_.reels[1].name),
            std::string::npos);
}

TEST(ReelSetTest, SeekReadsInterleaveWithStreamingAcrossReels) {
  // ReadFrame resolves a *global* frame position through the catalog to
  // the owning reel; interleaving it with an open streaming source must
  // disturb neither, even when consecutive seeks hop reels.
  const EncodedStream data = MakeStream(mocoder::StreamId::kData, 3000, 50);
  const EncodedStream system = MakeStream(mocoder::StreamId::kSystem, 600, 51);
  const std::string path =
      WriteSet("reelset_interleave.uler", data, system, ByFrames(4));
  auto reader = ReelSetReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  ASSERT_GE(reader.value()->catalog().reels.size(), 3u);
  const SeekableSource& seek = *reader.value();

  auto source = reader.value()->OpenFrames(mocoder::StreamId::kData);
  std::vector<media::Image> streamed;
  for (size_t i = 0; i < data.frames.size(); ++i) {
    // Seek to the mirror-image position before every streamed pull.
    const size_t mirror = data.frames.size() - 1 - i;
    auto seeked = seek.ReadFrame(mocoder::StreamId::kData, mirror);
    ASSERT_TRUE(seeked.ok()) << seeked.status().ToString();
    EXPECT_EQ(seeked.value().pixels(), data.frames[mirror].pixels());
    auto next = source->Next();
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    ASSERT_TRUE(next.value().has_value());
    streamed.push_back(std::move(*next.value()));
  }
  ExpectSameFrames(streamed, data.frames);
  auto sys = seek.ReadFrame(mocoder::StreamId::kSystem, 0);
  ASSERT_TRUE(sys.ok());
  EXPECT_EQ(sys.value().pixels(), system.frames.front().pixels());
  auto past_end =
      seek.ReadFrame(mocoder::StreamId::kData, data.frames.size());
  ASSERT_FALSE(past_end.ok());
  EXPECT_EQ(past_end.status().code(), StatusCode::kOutOfRange);
}

TEST(ReelSetTest, SeekIntoDamagedReelNamesTheFrame) {
  const EncodedStream data = MakeStream(mocoder::StreamId::kData, 2200, 52);
  const EncodedStream system = MakeStream(mocoder::StreamId::kSystem, 0, 53);
  const std::string path =
      WriteSet("reelset_seek_dead.uler", data, system, ByFrames(4));
  auto catalog = LoadCatalog(path);
  ASSERT_TRUE(catalog.ok());
  ASSERT_GE(catalog.value().reels.size(), 3u);
  const CatalogReel& dead = catalog.value().reels[1];
  ASSERT_GT(dead.data_frames, 0u);
  ASSERT_TRUE(std::filesystem::remove(testing::TempDir() + dead.name));

  auto reader = ReelSetReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  // Frames on live reels still seek fine.
  auto live = reader.value()->ReadFrame(mocoder::StreamId::kData, 0);
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  // A frame on the dead reel fails with the frame named, not a crash.
  auto lost = reader.value()->ReadFrame(mocoder::StreamId::kData,
                                        dead.first_data_frame);
  ASSERT_FALSE(lost.ok());
  EXPECT_NE(lost.status().message().find("damaged reel"), std::string::npos)
      << lost.status().ToString();
}

TEST(ReelSetTest, CurrentReelStatsIsSafeDuringAppendsAndRollovers) {
  // One thread archives across several reel rollovers while another
  // polls CurrentReelStats (a progress UI); TSan (the CI job runs every
  // fast suite) must see no race, and each snapshot must be internally
  // consistent: total frames never decrease.
  const std::string path = testing::TempDir() + "reelset_stats_race.uler";
  const EncodedStream data = MakeStream(mocoder::StreamId::kData, 4000, 54);
  ReelSetWriter::Options opt;
  opt.shard = ByFrames(3);
  auto writer = ReelSetWriter::Create(path, SmallOptions(), opt);
  ASSERT_TRUE(writer.ok());

  std::atomic<bool> done{false};
  size_t last_total = 0;
  std::thread poller([&] {
    while (!done.load(std::memory_order_acquire)) {
      size_t total = 0;
      for (const ReelStats& s : writer.value()->CurrentReelStats()) {
        total += s.frames;
      }
      EXPECT_GE(total, last_total);
      last_total = total;
    }
  });
  for (size_t i = 0; i < data.frames.size(); ++i) {
    media::Image frame = data.frames[i];
    ASSERT_TRUE(writer.value()
                    ->Append(mocoder::StreamId::kData, data.emblems[i],
                             std::move(frame))
                    .ok());
  }
  done.store(true, std::memory_order_release);
  poller.join();
  ASSERT_TRUE(writer.value()->Finish().ok());
  ASSERT_GE(writer.value()->reel_count(), 3u);
  size_t final_total = 0;
  for (const ReelStats& s : writer.value()->CurrentReelStats()) {
    final_total += s.frames;
  }
  EXPECT_GE(final_total, data.frames.size());
}

// ---------------------------------------------------------------------------
// ULE-P1 parity: catalog section round trip, rejection of a corrupted
// section, and transparent whole-reel reconstruction on open.

TEST(ReelSetParityTest, ParityCatalogSectionRoundTripsThroughSerializeParse) {
  const EncodedStream data = MakeStream(mocoder::StreamId::kData, 2200, 60);
  const EncodedStream system = MakeStream(mocoder::StreamId::kSystem, 400, 61);
  const std::string path = WriteSet("parity_catalog.uler", data, system,
                                    ByFrames(4), /*parity_reels=*/2);
  auto catalog = LoadCatalog(path);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  ASSERT_TRUE(catalog.value().parity.present());
  EXPECT_EQ(catalog.value().parity.parity_reels, 2u);
  ASSERT_EQ(catalog.value().parity.reels.size(), 2u);
  // The stripe spans the longest data reel; every parity file adds its
  // 16-byte header on top and really exists with those exact bytes.
  uint64_t longest = 0;
  for (const CatalogReel& row : catalog.value().reels) {
    longest = std::max(longest, row.bytes);
  }
  EXPECT_EQ(catalog.value().parity.stripe_bytes, longest);
  for (size_t p = 0; p < 2; ++p) {
    const CatalogParityReel& row = catalog.value().parity.reels[p];
    EXPECT_EQ(row.name, std::filesystem::path(ParityReelFileName(path, p))
                            .filename()
                            .string());
    EXPECT_EQ(row.bytes, kParityReelHeaderBytes + longest);
    auto digest = DigestFile(testing::TempDir() + row.name);
    ASSERT_TRUE(digest.ok()) << digest.status().ToString();
    EXPECT_EQ(digest.value().bytes, row.bytes);
    EXPECT_EQ(digest.value().crc, row.file_crc);
  }

  auto reparsed = ReelCatalog::Parse(catalog.value().Serialize());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed.value().parity.parity_reels,
            catalog.value().parity.parity_reels);
  EXPECT_EQ(reparsed.value().parity.stripe_bytes,
            catalog.value().parity.stripe_bytes);
  ASSERT_EQ(reparsed.value().parity.reels.size(), 2u);
  for (size_t p = 0; p < 2; ++p) {
    EXPECT_EQ(reparsed.value().parity.reels[p].name,
              catalog.value().parity.reels[p].name);
    EXPECT_EQ(reparsed.value().parity.reels[p].file_crc,
              catalog.value().parity.reels[p].file_crc);
  }
}

TEST(ReelSetParityTest, CorruptedParityCatalogSectionIsRejected) {
  const EncodedStream data = MakeStream(mocoder::StreamId::kData, 1400, 62);
  const EncodedStream system = MakeStream(mocoder::StreamId::kSystem, 0, 63);
  const std::string path = WriteSet("parity_badsection.uler", data, system,
                                    ByFrames(4), /*parity_reels=*/1);
  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  Bytes mutated = std::move(bytes).TakeValue();
  // Break the parity section's magic (past the header, so the reel rows
  // still parse) and re-seal the catalog CRC: the section itself must be
  // rejected as corrupt, not masked by the file checksum.
  size_t section = 0;
  for (size_t i = 8; i + 4 <= mutated.size(); ++i) {
    if (mutated[i] == 'U' && mutated[i + 1] == 'L' && mutated[i + 2] == 'E' &&
        mutated[i + 3] == 'P') {
      section = i;
      break;
    }
  }
  ASSERT_GT(section, 0u) << "catalog carries no ULE-P1 section";
  mutated[section] = 'X';
  const uint32_t crc = Crc32(BytesView(mutated).subspan(0, mutated.size() - 8));
  for (int i = 0; i < 4; ++i) {
    mutated[mutated.size() - 8 + i] = static_cast<uint8_t>(crc >> (8 * i));
  }
  ASSERT_TRUE(WriteFileBytes(path, mutated).ok());
  auto reader = ReelSetReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruption)
      << reader.status().ToString();
  EXPECT_NE(reader.status().message().find("trailing bytes"),
            std::string::npos)
      << reader.status().ToString();
}

TEST(ReelSetParityTest, ParityHealsLostReelsTransparently) {
  const EncodedStream data = MakeStream(mocoder::StreamId::kData, 2200, 64);
  const EncodedStream system = MakeStream(mocoder::StreamId::kSystem, 500, 65);
  const std::string path = WriteSet("parity_heal.uler", data, system,
                                    ByFrames(4), /*parity_reels=*/2);
  auto catalog = LoadCatalog(path);
  ASSERT_TRUE(catalog.ok());
  const size_t reels = catalog.value().reels.size();
  ASSERT_GE(reels, 3u);
  // Lose two whole reels — exactly the parity budget.
  ASSERT_TRUE(std::filesystem::remove(testing::TempDir() +
                                      catalog.value().reels[0].name));
  ASSERT_TRUE(std::filesystem::remove(testing::TempDir() +
                                      catalog.value().reels[reels - 1].name));

  auto reader = ReelSetReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  // Every reel is serviceable again; the set remembers which two were
  // rebuilt, and that their files on disk are still damaged.
  EXPECT_EQ(reader.value()->surviving_reels(), reels);
  EXPECT_EQ(reader.value()->reconstructed_reels(), 2u);
  EXPECT_TRUE(reader.value()->reel_reconstructed(0));
  EXPECT_TRUE(reader.value()->reel_reconstructed(reels - 1));
  EXPECT_FALSE(reader.value()->reel_reconstructed(1));
  EXPECT_TRUE(reader.value()->reel_status(0).ok());
  EXPECT_FALSE(reader.value()->reel_damage(0).ok());

  // Frame delivery is byte-identical to the undamaged archive, and the
  // Bootstrap (lost with the final reel) is back.
  auto source = reader.value()->OpenFrames(mocoder::StreamId::kData);
  ExpectSameFrames(Drain(*source), data.frames);
  auto sys = reader.value()->OpenFrames(mocoder::StreamId::kSystem);
  ExpectSameFrames(Drain(*sys), system.frames);
  auto bootstrap = reader.value()->ReadBootstrap();
  ASSERT_TRUE(bootstrap.ok()) << bootstrap.status().ToString();
  EXPECT_EQ(bootstrap.value(), "THE BOOTSTRAP\n");

  // Verify judges the artifact as stored: the reconstruction does not
  // mask the damage, and the report names a lost reel.
  Status verify = reader.value()->Verify();
  ASSERT_FALSE(verify.ok());
  EXPECT_NE(verify.message().find(catalog.value().reels[0].name),
            std::string::npos)
      << verify.ToString();

  // reconstruct=false opens the set as a parity-less reader would: two
  // reels dead, no recovery temp files written.
  ReelSetReader::OpenOptions opt;
  opt.reconstruct = false;
  auto raw = ReelSetReader::Open(path, opt);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  EXPECT_EQ(raw.value()->surviving_reels(), reels - 2);
  EXPECT_EQ(raw.value()->reconstructed_reels(), 0u);
}

TEST(ReelSetParityTest, LossBeyondParityBudgetDegradesLikeParityless) {
  const EncodedStream data = MakeStream(mocoder::StreamId::kData, 2200, 66);
  const EncodedStream system = MakeStream(mocoder::StreamId::kSystem, 0, 67);
  const std::string path = WriteSet("parity_beyond.uler", data, system,
                                    ByFrames(4), /*parity_reels=*/1);
  auto catalog = LoadCatalog(path);
  ASSERT_TRUE(catalog.ok());
  ASSERT_GE(catalog.value().reels.size(), 3u);
  for (size_t i : {size_t{0}, size_t{1}}) {
    ASSERT_TRUE(std::filesystem::remove(testing::TempDir() +
                                        catalog.value().reels[i].name));
  }
  auto reader = ReelSetReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  // Two losses, one parity reel: no reconstruction, per-reel degradation
  // exactly as in a parity-less set.
  EXPECT_EQ(reader.value()->reconstructed_reels(), 0u);
  EXPECT_EQ(reader.value()->surviving_reels(),
            catalog.value().reels.size() - 2);
  EXPECT_FALSE(reader.value()->reel_status(0).ok());
  EXPECT_FALSE(reader.value()->Verify().ok());
}

TEST(ReelSetParityTest, VerifyNamesDamagedParityReel) {
  const EncodedStream data = MakeStream(mocoder::StreamId::kData, 1400, 68);
  const EncodedStream system = MakeStream(mocoder::StreamId::kSystem, 300, 69);
  const std::string path = WriteSet("parity_flip.uler", data, system,
                                    ByFrames(4), /*parity_reels=*/2);
  auto catalog = LoadCatalog(path);
  ASSERT_TRUE(catalog.ok());
  const std::string parity_name = catalog.value().parity.reels[1].name;
  const std::string parity_path = testing::TempDir() + parity_name;
  auto bytes = ReadFileBytes(parity_path);
  ASSERT_TRUE(bytes.ok());
  Bytes mutated = std::move(bytes).TakeValue();
  mutated[kParityReelHeaderBytes + 7] ^= 0x40;
  ASSERT_TRUE(WriteFileBytes(parity_path, mutated).ok());

  auto reader = ReelSetReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  // Data reels are untouched — nothing to reconstruct, frames intact —
  // but the silent parity damage is on record and Verify names the file
  // (this used to be skipped entirely).
  EXPECT_EQ(reader.value()->reconstructed_reels(), 0u);
  EXPECT_TRUE(reader.value()->parity_status(0).ok());
  EXPECT_FALSE(reader.value()->parity_status(1).ok());
  auto source = reader.value()->OpenFrames(mocoder::StreamId::kData);
  ExpectSameFrames(Drain(*source), data.frames);
  Status verify = reader.value()->Verify();
  ASSERT_FALSE(verify.ok());
  EXPECT_NE(verify.message().find(parity_name), std::string::npos)
      << verify.ToString();
}

// ---------------------------------------------------------------------------
// Full pipeline: core::ArchiveDumpStreaming onto a reel set

core::ArchiveOptions TestArchiveOptions(int threads) {
  core::ArchiveOptions options;
  options.emblem = SmallOptions();
  options.emblem.threads = threads;
  return options;
}

std::string TestDump() {
  std::string dump;
  for (int i = 0; i < 40; ++i) {
    dump += "INSERT INTO lineitem VALUES (" + std::to_string(i * 37) +
            ", 'part-" + std::to_string(i) + "', 'supplier-" +
            std::to_string(i % 7) + "', 4.25, 'archival layout emulation');\n";
  }
  return dump;
}

TEST(ReelSetPipelineTest, ShardedArchiveRestoresIdenticallyToSingleReel) {
  const std::string dump = TestDump();
  const std::string single_path = testing::TempDir() + "pipe_single.ulec";
  const std::string set_path = testing::TempDir() + "pipe_set.uler";

  // One archive, two shapes: a single container and a ≥3-reel set.
  auto single = ContainerWriter::Create(single_path, SmallOptions());
  ASSERT_TRUE(single.ok());
  auto single_summary = core::ArchiveDumpStreaming(
      dump, TestArchiveOptions(2), *single.value());
  ASSERT_TRUE(single_summary.ok()) << single_summary.status().ToString();
  ASSERT_TRUE(single.value()
                  ->AppendBootstrap(single_summary.value().bootstrap_text)
                  .ok());
  ASSERT_TRUE(single.value()->Finish().ok());
  ASSERT_EQ(single_summary.value().reels.size(), 1u);

  ReelSetWriter::Options sopt;
  sopt.shard.max_frames_per_reel = 3;
  auto set = ReelSetWriter::Create(set_path, SmallOptions(), sopt);
  ASSERT_TRUE(set.ok());
  auto set_summary =
      core::ArchiveDumpStreaming(dump, TestArchiveOptions(2), *set.value());
  ASSERT_TRUE(set_summary.ok()) << set_summary.status().ToString();
  ASSERT_TRUE(
      set.value()->AppendBootstrap(set_summary.value().bootstrap_text).ok());
  ASSERT_TRUE(set.value()->Finish().ok());
  EXPECT_GE(set.value()->reel_count(), 3u);
  // The summary's per-reel stats came from the sink mid-stream: one row
  // per reel, frames summing to the stream totals.
  size_t stat_frames = 0;
  for (const ReelStats& s : set_summary.value().reels) {
    stat_frames += s.frames;
  }
  EXPECT_EQ(stat_frames, set_summary.value().data_frames +
                             set_summary.value().system_frames);

  // Restores are byte-identical across backend, thread count, and stats.
  auto single_reel = OpenReel(single_path);
  ASSERT_TRUE(single_reel.ok());
  core::RestoreStats single_stats;
  auto single_data = single_reel.value()->OpenFrames(mocoder::StreamId::kData);
  auto single_system =
      single_reel.value()->OpenFrames(mocoder::StreamId::kSystem);
  auto single_restored = core::RestoreNativeStreaming(
      *single_data, single_system.get(),
      single_reel.value()->emblem_options(), &single_stats);
  ASSERT_TRUE(single_restored.ok()) << single_restored.status().ToString();
  EXPECT_EQ(single_restored.value(), dump);

  for (const int threads : {1, 4}) {
    auto set_reel = ReelSetReader::Open(set_path);
    ASSERT_TRUE(set_reel.ok());
    set_reel.value()->set_restore_threads(threads);
    mocoder::Options restore_options = set_reel.value()->emblem_options();
    restore_options.threads = threads;
    core::RestoreStats set_stats;
    auto set_data = set_reel.value()->OpenFrames(mocoder::StreamId::kData);
    auto set_system = set_reel.value()->OpenFrames(mocoder::StreamId::kSystem);
    auto set_restored = core::RestoreNativeStreaming(
        *set_data, set_system.get(), restore_options, &set_stats);
    ASSERT_TRUE(set_restored.ok()) << set_restored.status().ToString();
    EXPECT_EQ(set_restored.value(), single_restored.value());
    EXPECT_EQ(set_stats.data_stream.emblems_total,
              single_stats.data_stream.emblems_total);
    EXPECT_EQ(set_stats.data_stream.emblems_decoded,
              single_stats.data_stream.emblems_decoded);
    EXPECT_EQ(set_stats.data_stream.emblems_recovered,
              single_stats.data_stream.emblems_recovered);
    EXPECT_EQ(set_stats.system_stream.emblems_decoded,
              single_stats.system_stream.emblems_decoded);
  }
}

TEST(ReelSetPipelineTest, LostReelWithinOuterBudgetStillRestoresExactly) {
  const std::string dump = TestDump();
  const std::string set_path = testing::TempDir() + "pipe_lost.uler";
  ReelSetWriter::Options sopt;
  // ≤3 frames per reel: losing one whole reel stays inside the outer
  // code's 3-erasures-per-group budget.
  sopt.shard.max_frames_per_reel = 3;
  auto set = ReelSetWriter::Create(set_path, SmallOptions(), sopt);
  ASSERT_TRUE(set.ok());
  auto summary =
      core::ArchiveDumpStreaming(dump, TestArchiveOptions(2), *set.value());
  ASSERT_TRUE(summary.ok());
  ASSERT_TRUE(
      set.value()->AppendBootstrap(summary.value().bootstrap_text).ok());
  ASSERT_TRUE(set.value()->Finish().ok());
  ASSERT_GE(set.value()->reel_count(), 3u);
  // Reel 0 always owns the first data emblems (frames arrive data
  // stream first), so losing it forces real outer-code recovery.
  ASSERT_GT(set.value()->catalog().reels[0].data_frames, 0u);
  ASSERT_TRUE(std::filesystem::remove(testing::TempDir() +
                                      set.value()->catalog().reels[0].name));

  auto reader = ReelSetReader::Open(set_path);
  ASSERT_TRUE(reader.ok());
  reader.value()->set_restore_threads(4);
  core::RestoreStats stats;
  auto data = reader.value()->OpenFrames(mocoder::StreamId::kData);
  auto system = reader.value()->OpenFrames(mocoder::StreamId::kSystem);
  auto restored = core::RestoreNativeStreaming(
      *data, system.get(), reader.value()->emblem_options(), &stats);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value(), dump);
  EXPECT_GT(stats.data_stream.emblems_recovered, 0);
}

TEST(ReelSetPipelineTest, ScannerShimRestoresThroughSimulatedScans) {
  const std::string dump = TestDump();
  const std::string set_path = testing::TempDir() + "pipe_scan.uler";
  // The scan simulation needs decode margin: 4 dots per cell (the same
  // pitch end_to_end_test scans at), not the 2 the fast tests render.
  mocoder::Options emblem = SmallOptions();
  emblem.dots_per_cell = 4;
  core::ArchiveOptions archive_options;
  archive_options.emblem = emblem;
  archive_options.emblem.threads = 2;
  ReelSetWriter::Options sopt;
  sopt.shard.max_frames_per_reel = 4;
  auto set = ReelSetWriter::Create(set_path, emblem, sopt);
  ASSERT_TRUE(set.ok());
  auto summary =
      core::ArchiveDumpStreaming(dump, archive_options, *set.value());
  ASSERT_TRUE(summary.ok());
  ASSERT_TRUE(set.value()->Finish().ok());
  ASSERT_GE(set.value()->reel_count(), 3u);

  auto reader = ReelSetReader::Open(set_path);
  ASSERT_TRUE(reader.ok());
  reader.value()->set_restore_threads(2);

  // The realistic path: every frame leaves the reels through the scanner
  // simulation (the same distortion end_to_end_test survives), one at a
  // time — no intermediate scan vector exists.
  ScannerSource::Options scan;
  scan.profile.rotation_deg = 0.4;
  scan.profile.blur_sigma = 0.6;
  scan.profile.noise_sigma = 6;
  scan.profile.seed = 321;
  auto data_scans = std::make_unique<ScannerSource>(
      reader.value()->OpenFrames(mocoder::StreamId::kData), scan);
  auto system_scans = std::make_unique<ScannerSource>(
      reader.value()->OpenFrames(mocoder::StreamId::kSystem), scan);
  auto restored = core::RestoreNativeStreaming(
      *data_scans, system_scans.get(), reader.value()->emblem_options());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value(), dump);
}

}  // namespace
}  // namespace filmstore
}  // namespace ule
