// Tests for MOCoder: emblem geometry/capacity, modulation round trips,
// inner RS protection (7.2% claim), detection under scan distortion, the
// outer 17+3 group code, and full stream round trips through each media
// profile.

#include <gtest/gtest.h>

#include "media/profiles.h"
#include "media/scanner.h"
#include "mocoder/detect.h"
#include "mocoder/emblem.h"
#include "mocoder/mocoder.h"
#include "mocoder/outer.h"
#include "support/crc32.h"
#include "support/random.h"

namespace ule {
namespace mocoder {
namespace {

Bytes RandomPayload(Rng* rng, int n) {
  return RandomBytes(rng, static_cast<size_t>(n));
}

EmblemHeader MakeHeader(StreamId stream, uint16_t seq, BytesView payload) {
  EmblemHeader h;
  h.stream = stream;
  h.seq = seq;
  h.total = 1;
  h.stream_len = static_cast<uint32_t>(payload.size());
  h.payload_crc = Crc32(payload);
  return h;
}

// Converts a clean cell grid directly into the intensity array the decoder
// expects (no print/scan in between).
Bytes GridToIntensities(const CellGrid& grid, int data_side) {
  Bytes out(static_cast<size_t>(data_side) * data_side);
  const int o = kFrameCells;
  for (int y = 0; y < data_side; ++y) {
    for (int x = 0; x < data_side; ++x) {
      out[static_cast<size_t>(y) * data_side + x] =
          grid.at(o + x, o + y) ? 10 : 245;
    }
  }
  return out;
}

// ---------------- geometry & capacity ----------------

TEST(EmblemTest, CapacityFormula) {
  // N=65: 65*64/2 = 2080 bits = 260 bytes -> 1 block -> 223-20 payload.
  EXPECT_EQ(EmblemBlocks(65), 1);
  EXPECT_EQ(EmblemCapacity(65), 203);
  // N=128: 8128 bits = 1016 bytes -> 3 blocks.
  EXPECT_EQ(EmblemBlocks(128), 3);
  EXPECT_EQ(EmblemCapacity(128), 3 * 223 - 20);
  // Too small for one block:
  EXPECT_EQ(EmblemCapacity(20), 0);
}

TEST(EmblemTest, HeaderRoundTrip) {
  EmblemHeader h;
  h.stream = StreamId::kSystem;
  h.seq = 1234;
  h.total = 4321;
  h.stream_len = 0xDEADBEEF;
  h.payload_crc = 0xCAFEBABE;
  const Bytes wire = SerializeHeader(h);
  ASSERT_EQ(wire.size(), static_cast<size_t>(kHeaderSize));
  auto back = ParseHeader(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().stream, StreamId::kSystem);
  EXPECT_EQ(back.value().seq, 1234);
  EXPECT_EQ(back.value().total, 4321);
  EXPECT_EQ(back.value().stream_len, 0xDEADBEEFu);
  EXPECT_EQ(back.value().payload_crc, 0xCAFEBABEu);
}

TEST(EmblemTest, HeaderRejectsBadMagicAndVersion) {
  EmblemHeader h;
  Bytes wire = SerializeHeader(h);
  Bytes bad = wire;
  bad[0] = 'X';
  EXPECT_FALSE(ParseHeader(bad).ok());
  bad = wire;
  bad[2] = 99;
  EXPECT_FALSE(ParseHeader(bad).ok());
}

TEST(EmblemTest, BuildRejectsWrongPayloadSize) {
  EmblemHeader h;
  EXPECT_FALSE(BuildEmblem(h, Bytes(10), 65).ok());
  EXPECT_FALSE(BuildEmblem(h, Bytes(1000), 20).ok());
}

TEST(EmblemTest, GridHasBorderAndSyncRow) {
  Rng rng(1);
  const Bytes payload = RandomPayload(&rng, EmblemCapacity(65));
  auto grid = BuildEmblem(MakeHeader(StreamId::kData, 0, payload), payload, 65);
  ASSERT_TRUE(grid.ok());
  const CellGrid& g = grid.value();
  EXPECT_EQ(g.side, 65 + 2 * kFrameCells);
  // Border ring black, gap ring white.
  for (int i = 0; i < g.side; ++i) {
    EXPECT_EQ(g.at(i, 0), 1);
    EXPECT_EQ(g.at(i, 2), 1);
    EXPECT_EQ(g.at(0, i), 1);
    EXPECT_EQ(g.at(g.side - 1, i), 1);
  }
  for (int i = kBorderCells; i < g.side - kBorderCells; ++i) {
    EXPECT_EQ(g.at(i, kBorderCells), 0) << i;
    EXPECT_EQ(g.at(i, kBorderCells + 1), 0) << i;
  }
  // Sync row: data emblems start with two black cells.
  EXPECT_EQ(g.at(kFrameCells + 0, kFrameCells), 1);
  EXPECT_EQ(g.at(kFrameCells + 1, kFrameCells), 1);
  EXPECT_EQ(g.at(kFrameCells + 2, kFrameCells), 0);
  EXPECT_EQ(g.at(kFrameCells + 3, kFrameCells), 0);
}

TEST(EmblemTest, SystemEmblemsInvertSyncRow) {
  Rng rng(2);
  const Bytes payload = RandomPayload(&rng, EmblemCapacity(65));
  auto grid =
      BuildEmblem(MakeHeader(StreamId::kSystem, 0, payload), payload, 65);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid.value().at(kFrameCells + 0, kFrameCells), 0);
  EXPECT_EQ(grid.value().at(kFrameCells + 2, kFrameCells), 1);
}

TEST(EmblemTest, ManchesterClockTransitionEveryBit) {
  // In the data rows, every bit occupies two cells and the level always
  // changes at the bit boundary; verify no run of 4 equal cells exists
  // along the serpentine (max run is 3: X | !X !X | X... wait — levels:
  // runs can be at most 2 within a bit plus continuation; assert <= 4
  // conservatively and that long runs are absent).
  Rng rng(3);
  const Bytes payload = RandomPayload(&rng, EmblemCapacity(65));
  auto grid = BuildEmblem(MakeHeader(StreamId::kData, 0, payload), payload, 65);
  ASSERT_TRUE(grid.ok());
  const CellGrid& g = grid.value();
  const int n = 65;
  const int o = kFrameCells;
  int run = 1;
  int max_run = 1;
  int prev = -1;
  const int total_cells = (n - 1) * n;
  for (int k = 0; k < total_cells; ++k) {
    const int row = k / n;
    const int col = k % n;
    const int x = (row % 2 == 0) ? col : (n - 1 - col);
    const int y = 1 + row;
    const int cell = g.at(o + x, o + y);
    if (cell == prev) {
      ++run;
      max_run = std::max(max_run, run);
    } else {
      run = 1;
    }
    prev = cell;
  }
  // Differential Manchester bounds runs to 3 cells (one half + a full bit
  // without mid transition... the guaranteed boundary transition caps it).
  EXPECT_LE(max_run, 3);
}

// ---------------- clean round trip ----------------

class EmblemRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(EmblemRoundTrip, CleanIntensities) {
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(n));
  const Bytes payload = RandomPayload(&rng, EmblemCapacity(n));
  const EmblemHeader h = MakeHeader(StreamId::kData, 7, payload);
  auto grid = BuildEmblem(h, payload, n);
  ASSERT_TRUE(grid.ok());
  EmblemHeader out_h;
  EmblemDecodeInfo info;
  auto back = DecodeEmblemIntensities(GridToIntensities(grid.value(), n), n,
                                      &out_h, &info);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), payload);
  EXPECT_EQ(out_h.seq, 7);
  EXPECT_EQ(info.rs_errors_corrected, 0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EmblemRoundTrip,
                         ::testing::Values(65, 80, 128, 200));

TEST(EmblemTest, IntensityDamageWithinBudgetCorrected) {
  // Flip cells corresponding to ~5% of the coded bytes: the inner RS code
  // must absorb it (paper: up to 7.2% per emblem).
  const int n = 128;
  Rng rng(5);
  const Bytes payload = RandomPayload(&rng, EmblemCapacity(n));
  auto grid = BuildEmblem(MakeHeader(StreamId::kData, 0, payload), payload, n);
  ASSERT_TRUE(grid.ok());
  Bytes cells = GridToIntensities(grid.value(), n);
  // Damage a contiguous horizontal band (localised damage; interleaving
  // spreads it across blocks).
  const int band_rows = 3;
  for (int y = 40; y < 40 + band_rows; ++y) {
    for (int x = 0; x < n; ++x) {
      cells[static_cast<size_t>(y) * n + x] = 128;  // destroyed: mid-gray
    }
  }
  EmblemDecodeInfo info;
  auto back = DecodeEmblemIntensities(cells, n, nullptr, &info);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), payload);
  EXPECT_GT(info.rs_errors_corrected, 0);
}

TEST(EmblemTest, ExcessDamageFailsCleanly) {
  const int n = 65;
  Rng rng(6);
  const Bytes payload = RandomPayload(&rng, EmblemCapacity(n));
  auto grid = BuildEmblem(MakeHeader(StreamId::kData, 0, payload), payload, n);
  ASSERT_TRUE(grid.ok());
  Bytes cells = GridToIntensities(grid.value(), n);
  // Destroy half the data area.
  for (int y = 1; y < n / 2; ++y) {
    for (int x = 0; x < n; ++x) {
      cells[static_cast<size_t>(y) * n + x] =
          static_cast<uint8_t>(rng.Below(256));
    }
  }
  auto back = DecodeEmblemIntensities(cells, n, nullptr);
  EXPECT_FALSE(back.ok());
}

// ---------------- detection through print & scan ----------------

TEST(DetectTest, CleanRenderAndSample) {
  const int n = 80;
  Rng rng(7);
  const Bytes payload = RandomPayload(&rng, EmblemCapacity(n));
  auto grid = BuildEmblem(MakeHeader(StreamId::kData, 0, payload), payload, n);
  ASSERT_TRUE(grid.ok());
  const media::Image img = RenderEmblem(grid.value(), 4);
  DetectInfo dinfo;
  auto cells = SampleEmblem(img, n, &dinfo);
  ASSERT_TRUE(cells.ok()) << cells.status().ToString();
  EXPECT_NEAR(dinfo.cell_pitch, 4.0, 0.1);
  EXPECT_NEAR(dinfo.rotation_deg, 0.0, 0.2);
  auto back = DecodeEmblemIntensities(cells.value(), n, nullptr);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), payload);
}

struct ScanCase {
  const char* name;
  double rotation;
  double barrel;
  double jitter;
  double blur;
  double noise;
  double dust;
};

class DetectUnderDistortion : public ::testing::TestWithParam<ScanCase> {};

TEST_P(DetectUnderDistortion, DecodesThroughScan) {
  const ScanCase& c = GetParam();
  const int n = 80;
  Rng rng(8);
  const Bytes payload = RandomPayload(&rng, EmblemCapacity(n));
  auto grid = BuildEmblem(MakeHeader(StreamId::kData, 3, payload), payload, n);
  ASSERT_TRUE(grid.ok());
  const media::Image printed = RenderEmblem(grid.value(), 5);

  media::ScanProfile sp;
  sp.rotation_deg = c.rotation;
  sp.barrel_k1 = c.barrel;
  sp.jitter_amplitude = c.jitter;
  sp.blur_sigma = c.blur;
  sp.noise_sigma = c.noise;
  sp.dust_per_megapixel = c.dust;
  sp.seed = 77;
  const media::Image scanned = media::Scan(printed, sp);

  auto cells = SampleEmblem(scanned, n);
  ASSERT_TRUE(cells.ok()) << c.name << ": " << cells.status().ToString();
  EmblemHeader h;
  auto back = DecodeEmblemIntensities(cells.value(), n, &h);
  ASSERT_TRUE(back.ok()) << c.name << ": " << back.status().ToString();
  EXPECT_EQ(back.value(), payload) << c.name;
  EXPECT_EQ(h.seq, 3);
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, DetectUnderDistortion,
    ::testing::Values(
        ScanCase{"clean", 0, 0, 0, 0, 0, 0},
        ScanCase{"rotated", 1.0, 0, 0, 0.3, 3, 0},
        ScanCase{"lens", 0.2, 0.004, 0, 0.3, 3, 0},
        ScanCase{"jitter", 0.2, 0, 0.5, 0.3, 3, 0},
        ScanCase{"noisy", 0.3, 0.001, 0.3, 0.8, 10, 2},
        ScanCase{"dusty", 0.2, 0.001, 0.2, 0.5, 5, 20}),
    [](const auto& info) { return info.param.name; });

TEST(DetectTest, FailsWithoutEmblem) {
  media::Image blank(200, 200, 255);
  EXPECT_FALSE(SampleEmblem(blank, 65).ok());
}

// ---------------- outer code ----------------

TEST(OuterTest, EmblemCounts) {
  // 100 bytes at capacity 50 -> 2 data emblems -> 1 group -> 2+3 total.
  EXPECT_EQ(DataEmblemCount(100, 50), 2);
  EXPECT_EQ(TotalEmblemCount(100, 50), 5);
  // 18 data emblems -> 2 groups -> 18 + 6.
  EXPECT_EQ(TotalEmblemCount(18 * 50, 50), 24);
  // Empty stream still ships one emblem + parity.
  EXPECT_EQ(DataEmblemCount(0, 50), 1);
  EXPECT_EQ(TotalEmblemCount(0, 50), 4);
}

TEST(OuterTest, RoundTripNoLoss) {
  Rng rng(9);
  const Bytes stream = RandomPayload(&rng, 1000);
  const int cap = 64;
  auto payloads = BuildGroupPayloads(stream, cap);
  std::map<uint16_t, Bytes> present;
  for (size_t i = 0; i < payloads.size(); ++i) {
    if (payloads[i]) present[static_cast<uint16_t>(i)] = *payloads[i];
  }
  auto back = ReassembleStream(present, stream.size(), cap);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), stream);
}

class OuterLossSweep : public ::testing::TestWithParam<int> {};

TEST_P(OuterLossSweep, RecoversUpToThreeLostPerGroup) {
  const int losses = GetParam();
  Rng rng(static_cast<uint64_t>(10 + losses));
  const Bytes stream = RandomPayload(&rng, 40 * 64);  // 40 data emblems
  const int cap = 64;
  auto payloads = BuildGroupPayloads(stream, cap);
  std::map<uint16_t, Bytes> present;
  for (size_t i = 0; i < payloads.size(); ++i) {
    if (payloads[i]) present[static_cast<uint16_t>(i)] = *payloads[i];
  }
  // Drop `losses` emblems from each group.
  const int groups = static_cast<int>(payloads.size()) / kGroupSize;
  for (int g = 0; g < groups; ++g) {
    int dropped = 0;
    while (dropped < losses) {
      const uint16_t seq = static_cast<uint16_t>(
          g * kGroupSize + static_cast<int>(rng.Below(kGroupSize)));
      if (present.erase(seq)) ++dropped;
    }
  }
  auto back = ReassembleStream(present, stream.size(), cap);
  if (losses <= kGroupParity) {
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back.value(), stream);
  } else {
    EXPECT_FALSE(back.ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Losses, OuterLossSweep, ::testing::Range(0, 6));

// ---------------- full stream round trips ----------------

TEST(MocoderTest, OptionsValidationRejectsNonsense) {
  const Bytes stream{1, 2, 3};
  Options bad_side;
  bad_side.data_side = 0;
  EXPECT_EQ(EncodeStream(stream, StreamId::kData, bad_side).status().code(),
            StatusCode::kInvalidArgument);
  bad_side.data_side = -128;
  EXPECT_EQ(EncodeStream(stream, StreamId::kData, bad_side).status().code(),
            StatusCode::kInvalidArgument);

  Options bad_dots;
  bad_dots.dots_per_cell = 0;
  EXPECT_EQ(EncodeStream(stream, StreamId::kData, bad_dots).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(DecodeImages({}, StreamId::kData, bad_dots).status().code(),
            StatusCode::kInvalidArgument);

  Options bad_quiet;
  bad_quiet.quiet_cells = -1;
  EXPECT_EQ(DecodeSampledGrids({}, StreamId::kData, bad_quiet).status().code(),
            StatusCode::kInvalidArgument);

  Options bad_threads;
  bad_threads.threads = -4;
  EXPECT_EQ(EncodeStream(stream, StreamId::kData, bad_threads).status().code(),
            StatusCode::kInvalidArgument);

  EXPECT_TRUE(ValidateOptions(Options{}).ok());
}

TEST(MocoderTest, ParallelEncodeDecodeMatchesSerial) {
  Rng rng(77);
  const Bytes stream = RandomPayload(&rng, 9000);
  Options serial;
  serial.data_side = 80;
  serial.threads = 1;
  Options parallel = serial;
  parallel.threads = 4;

  auto a = EncodeStream(stream, StreamId::kData, serial);
  auto b = EncodeStream(stream, StreamId::kData, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().size(), b.value().size());
  for (size_t i = 0; i < a.value().size(); ++i) {
    EXPECT_EQ(a.value()[i].header.seq, b.value()[i].header.seq);
    EXPECT_EQ(a.value()[i].grid.cells, b.value()[i].grid.cells);
  }
  const auto images_a = RenderAll(a.value(), serial);
  const auto images_b = RenderAll(b.value(), parallel);
  ASSERT_EQ(images_a.size(), images_b.size());
  for (size_t i = 0; i < images_a.size(); ++i) {
    EXPECT_EQ(images_a[i].pixels(), images_b[i].pixels());
  }
  DecodeStats stats_a, stats_b;
  auto dec_a = DecodeImages(images_a, StreamId::kData, serial, &stats_a);
  auto dec_b = DecodeImages(images_b, StreamId::kData, parallel, &stats_b);
  ASSERT_TRUE(dec_a.ok());
  ASSERT_TRUE(dec_b.ok());
  EXPECT_EQ(dec_a.value(), stream);
  EXPECT_EQ(dec_b.value(), dec_a.value());
  EXPECT_EQ(stats_b.emblems_decoded, stats_a.emblems_decoded);
  EXPECT_EQ(stats_b.rs_errors_corrected, stats_a.rs_errors_corrected);
}

TEST(MocoderTest, StreamRoundTripSampledGrids) {
  Rng rng(11);
  const Bytes stream = RandomPayload(&rng, 5000);
  Options opt;
  opt.data_side = 80;
  auto emblems = EncodeStream(stream, StreamId::kData, opt);
  ASSERT_TRUE(emblems.ok());
  std::vector<Bytes> grids;
  for (const auto& e : emblems.value()) {
    grids.push_back(Bytes());
    const int o = kFrameCells;
    grids.back().resize(static_cast<size_t>(opt.data_side) * opt.data_side);
    for (int y = 0; y < opt.data_side; ++y) {
      for (int x = 0; x < opt.data_side; ++x) {
        grids.back()[static_cast<size_t>(y) * opt.data_side + x] =
            e.grid.at(o + x, o + y) ? 0 : 255;
      }
    }
  }
  DecodeStats stats;
  auto back = DecodeSampledGrids(grids, StreamId::kData, opt, &stats);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), stream);
  EXPECT_EQ(stats.emblems_decoded, stats.emblems_total);
}

class MediaProfileRoundTrip
    : public ::testing::TestWithParam<media::MediaProfile> {};

TEST_P(MediaProfileRoundTrip, PrintScanDecode) {
  const media::MediaProfile profile = GetParam();
  Rng rng(12);
  const Bytes stream = RandomPayload(&rng, 2000);
  Options opt;
  opt.data_side = 80;
  opt.dots_per_cell = profile.dots_per_cell;
  auto emblems = EncodeStream(stream, StreamId::kData, opt);
  ASSERT_TRUE(emblems.ok());

  std::vector<media::Image> scans;
  for (const auto& e : emblems.value()) {
    media::Image printed = Render(e, opt);
    if (profile.bitonal_write) {
      for (auto& px : printed.mutable_pixels()) px = px < 128 ? 0 : 255;
    }
    scans.push_back(media::Scan(printed, profile.scan));
  }
  DecodeStats stats;
  auto back = DecodeImages(scans, StreamId::kData, opt, &stats);
  ASSERT_TRUE(back.ok()) << profile.name << ": " << back.status().ToString();
  EXPECT_EQ(back.value(), stream) << profile.name;
}

INSTANTIATE_TEST_SUITE_P(AllMedia, MediaProfileRoundTrip,
                         ::testing::ValuesIn(media::AllProfiles()),
                         [](const auto& info) {
                           std::string n = info.param.name;
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(MocoderTest, LostEmblemsRecoveredThroughImages) {
  Rng rng(13);
  const Bytes stream = RandomPayload(&rng, 4000);
  Options opt;
  opt.data_side = 80;
  auto emblems = EncodeStream(stream, StreamId::kData, opt);
  ASSERT_TRUE(emblems.ok());
  std::vector<media::Image> scans;
  size_t skipped = 0;
  for (const auto& e : emblems.value()) {
    if (skipped < 2 && e.header.seq % 5 == 1) {
      ++skipped;  // simulate two destroyed frames
      continue;
    }
    scans.push_back(Render(e, opt));
  }
  ASSERT_EQ(skipped, 2u);
  DecodeStats stats;
  auto back = DecodeImages(scans, StreamId::kData, opt, &stats);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), stream);
  EXPECT_GT(stats.emblems_recovered, 0);
}

TEST(MocoderTest, WrongStreamIdRejected) {
  Rng rng(14);
  const Bytes stream = RandomPayload(&rng, 100);
  Options opt;
  opt.data_side = 65;
  auto emblems = EncodeStream(stream, StreamId::kSystem, opt);
  ASSERT_TRUE(emblems.ok());
  std::vector<media::Image> scans;
  for (const auto& e : emblems.value()) scans.push_back(Render(e, opt));
  EXPECT_FALSE(DecodeImages(scans, StreamId::kData, opt).ok());
}

}  // namespace
}  // namespace mocoder
}  // namespace ule
