// Tests for the media substrate: image container, PGM/PBM round trips,
// scan distortion model determinism and effect sizes.

#include <gtest/gtest.h>

#include "media/image.h"
#include "media/profiles.h"
#include "media/scanner.h"

namespace ule {
namespace media {
namespace {

Image Checkerboard(int w, int h, int square) {
  Image img(w, h, 255);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (((x / square) + (y / square)) % 2 == 0) img.set(x, y, 0);
    }
  }
  return img;
}

TEST(ImageTest, BasicAccess) {
  Image img(10, 5, 200);
  EXPECT_EQ(img.width(), 10);
  EXPECT_EQ(img.height(), 5);
  EXPECT_EQ(img.at(3, 2), 200);
  img.set(3, 2, 7);
  EXPECT_EQ(img.at(3, 2), 7);
}

TEST(ImageTest, ClampedAccess) {
  Image img(4, 4, 100);
  img.set(0, 0, 1);
  img.set(3, 3, 2);
  EXPECT_EQ(img.at_clamped(-5, -5), 1);
  EXPECT_EQ(img.at_clamped(10, 10), 2);
}

TEST(ImageTest, BilinearSample) {
  Image img(2, 1);
  img.set(0, 0, 0);
  img.set(1, 0, 100);
  EXPECT_NEAR(img.Sample(0.5, 0.0), 50.0, 1e-9);
  EXPECT_NEAR(img.Sample(0.25, 0.0), 25.0, 1e-9);
}

TEST(ImageTest, FillRectClips) {
  Image img(8, 8, 255);
  img.FillRect(6, 6, 10, 10, 0);
  EXPECT_EQ(img.at(7, 7), 0);
  EXPECT_EQ(img.at(5, 5), 255);
}

TEST(ImageTest, PgmRoundTrip) {
  Image img = Checkerboard(33, 17, 3);
  auto back = Image::FromPgm(img.ToPgm());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().pixels(), img.pixels());
}

TEST(ImageTest, PbmRoundTripBitonal) {
  Image img = Checkerboard(30, 12, 2);
  auto back = Image::FromPbm(img.ToPbm());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().pixels(), img.pixels());  // already bitonal
}

TEST(ImageTest, PbmThresholdsGray) {
  Image img(3, 1);
  img.set(0, 0, 10);
  img.set(1, 0, 127);
  img.set(2, 0, 128);
  auto back = Image::FromPbm(img.ToPbm());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().at(0, 0), 0);
  EXPECT_EQ(back.value().at(1, 0), 0);
  EXPECT_EQ(back.value().at(2, 0), 255);
}

TEST(ImageTest, RejectsGarbage) {
  EXPECT_FALSE(Image::FromPgm(ToBytes("not an image")).ok());
  EXPECT_FALSE(Image::FromPbm(ToBytes("P4")).ok());
  EXPECT_FALSE(Image::FromPgm(ToBytes("P5\n10 10\n255\n")).ok());  // truncated
}

TEST(ScannerTest, IdentityProfileIsNearLossless) {
  Image img = Checkerboard(100, 100, 5);
  ScanProfile clean;  // all defaults
  Image out = Scan(img, clean);
  ASSERT_EQ(out.width(), 100);
  int diffs = 0;
  for (int y = 2; y < 98; ++y) {
    for (int x = 2; x < 98; ++x) {
      if (std::abs(int(out.at(x, y)) - int(img.at(x, y))) > 30) ++diffs;
    }
  }
  EXPECT_LT(diffs, 100);
}

TEST(ScannerTest, Deterministic) {
  Image img = Checkerboard(80, 80, 4);
  ScanProfile p;
  p.noise_sigma = 10;
  p.dust_per_megapixel = 50;
  p.seed = 99;
  Image a = Scan(img, p);
  Image b = Scan(img, p);
  EXPECT_EQ(a.pixels(), b.pixels());
  p.seed = 100;
  Image c = Scan(img, p);
  EXPECT_NE(c.pixels(), a.pixels());
}

TEST(ScannerTest, ScaleChangesDimensions) {
  Image img(50, 40);
  ScanProfile p;
  p.scale = 2.0;
  Image out = Scan(img, p);
  EXPECT_EQ(out.width(), 100);
  EXPECT_EQ(out.height(), 80);
}

TEST(ScannerTest, RotationMovesContent) {
  // An interior patch (clear of the clamped image edges) must move under a
  // 10-degree skew: the patch centre sits ~71 px from the rotation centre,
  // so it displaces by ~12 px.
  Image img(200, 200, 255);
  img.FillRect(40, 40, 20, 20, 0);
  ScanProfile p;
  p.rotation_deg = 10.0;
  Image out = Scan(img, p);
  int black_in_place = 0;
  for (int y = 40; y < 60; ++y) {
    for (int x = 40; x < 60; ++x) {
      if (out.at(x, y) < 128) ++black_in_place;
    }
  }
  EXPECT_LT(black_in_place, 360);  // fully stationary would be 400
  int black_total = 0;
  for (uint8_t v : out.pixels()) {
    if (v < 128) ++black_total;
  }
  EXPECT_GT(black_total, 300);  // the patch still exists somewhere
}

TEST(ScannerTest, NoiseRaisesVariance) {
  Image img(64, 64, 128);
  ScanProfile p;
  p.noise_sigma = 20;
  Image out = Scan(img, p);
  double mean = 0;
  for (uint8_t v : out.pixels()) mean += v;
  mean /= out.pixels().size();
  double var = 0;
  for (uint8_t v : out.pixels()) var += (v - mean) * (v - mean);
  var /= out.pixels().size();
  EXPECT_GT(var, 100.0);  // sigma 20 -> variance ~400 before clamping
}

TEST(ScannerTest, DustCreatesSpecks) {
  Image img(256, 256, 255);
  ScanProfile p;
  p.dust_per_megapixel = 500;
  Image out = Scan(img, p);
  int dark = 0;
  for (uint8_t v : out.pixels()) {
    if (v < 100) ++dark;
  }
  EXPECT_GT(dark, 20);
}

TEST(ScannerTest, BitonalOutputIsBinary) {
  Image img = Checkerboard(60, 60, 3);
  ScanProfile p;
  p.noise_sigma = 15;
  p.bitonal = true;
  Image out = Scan(img, p);
  for (uint8_t v : out.pixels()) {
    EXPECT_TRUE(v == 0 || v == 255);
  }
}

TEST(ScannerTest, FadeCompressesContrast) {
  Image img = Checkerboard(40, 40, 4);
  ScanProfile p;
  p.fade = 0.5;
  Image out = Age(img, p);
  uint8_t lo = 255, hi = 0;
  for (uint8_t v : out.pixels()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(lo, 40);
  EXPECT_LT(hi, 215);
}

TEST(ProfilesTest, PaperGeometryMatchesPaper) {
  const auto p = PaperA4Laser600();
  // A4 at 600 dpi, inside margins.
  EXPECT_GT(p.frame_width, 4000);
  EXPECT_LT(p.frame_width, 4960);
  EXPECT_FALSE(p.bitonal_write);
}

TEST(ProfilesTest, MicrofilmGeometryMatchesPaper) {
  const auto p = Microfilm16mm();
  EXPECT_EQ(p.frame_width, 3888);   // §4: 3888 x 5498 bitonal frames
  EXPECT_EQ(p.frame_height, 5498);
  EXPECT_TRUE(p.bitonal_write);
  EXPECT_TRUE(p.scan.bitonal);
  EXPECT_EQ(p.reel_length_mm, 66000);
}

TEST(ProfilesTest, CinemaGeometryMatchesPaper) {
  const auto p = CinemaFilm35mm();
  EXPECT_EQ(p.frame_width, 2048);   // §4: 2K full aperture
  EXPECT_EQ(p.frame_height, 1556);
  EXPECT_EQ(p.scan.scale, 2.0);     // scanned at 4K
  // "sharper, low-distortion" than microfilm:
  EXPECT_LT(p.scan.blur_sigma, Microfilm16mm().scan.blur_sigma);
  EXPECT_LT(p.scan.barrel_k1, Microfilm16mm().scan.barrel_k1);
}

TEST(ProfilesTest, AllProfilesListed) {
  EXPECT_EQ(AllProfiles().size(), 3u);
}

}  // namespace
}  // namespace media
}  // namespace ule
