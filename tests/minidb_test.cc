// Tests for the mini relational DBMS substrate: values, tables, queries,
// and the pg_dump-style textual archive round trip.

#include <gtest/gtest.h>

#include "minidb/csv.h"
#include "minidb/database.h"
#include "minidb/sqldump.h"
#include "minidb/value.h"

namespace ule {
namespace minidb {
namespace {

Schema TestSchema() {
  Schema s;
  s.columns = {{"id", Type::kInt, 0},
               {"price", Type::kDecimal, 2},
               {"name", Type::kText, 0},
               {"day", Type::kDate, 0}};
  return s;
}

TEST(ValueTest, IntDump) {
  EXPECT_EQ(Value::Int(42).ToDumpString(Type::kInt, 0), "42");
  EXPECT_EQ(Value::Int(-7).ToDumpString(Type::kInt, 0), "-7");
  EXPECT_EQ(Value::Null().ToDumpString(Type::kInt, 0), "\\N");
}

TEST(ValueTest, DecimalDump) {
  EXPECT_EQ(Value::Decimal(12345).ToDumpString(Type::kDecimal, 2), "123.45");
  EXPECT_EQ(Value::Decimal(-50).ToDumpString(Type::kDecimal, 2), "-0.50");
  EXPECT_EQ(Value::Decimal(7).ToDumpString(Type::kDecimal, 3), "0.007");
}

TEST(ValueTest, DateDump) {
  EXPECT_EQ(Value::Date(0).ToDumpString(Type::kDate, 0), "1970-01-01");
  EXPECT_EQ(Value::Date(DaysFromCivil(1995, 3, 15)).ToDumpString(Type::kDate, 0),
            "1995-03-15");
}

TEST(ValueTest, TextEscaping) {
  const Value v = Value::Text("a\tb\nc\\d");
  const std::string dumped = v.ToDumpString(Type::kText, 0);
  EXPECT_EQ(dumped, "a\\tb\\nc\\\\d");
  auto back = Value::FromDumpString(dumped, Type::kText, 0);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().AsText(), "a\tb\nc\\d");
}

TEST(ValueTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Value::FromDumpString("not-a-number", Type::kInt, 0).ok());
  EXPECT_FALSE(Value::FromDumpString("1995-13-99", Type::kDate, 0).ok());
  EXPECT_FALSE(Value::FromDumpString("1.234", Type::kDecimal, 2).ok());
}

TEST(ValueTest, DateRoundTripSweep) {
  for (int64_t days : {-100000LL, -1LL, 0LL, 1LL, 10000LL, 20000LL}) {
    const std::string s = FormatDate(days);
    auto back = ParseDate(s);
    ASSERT_TRUE(back.ok()) << s;
    EXPECT_EQ(back.value(), days) << s;
  }
}

TEST(TableTest, InsertAndScan) {
  Table t("t", TestSchema());
  ASSERT_TRUE(t.Insert({Value::Int(1), Value::Decimal(100), Value::Text("a"),
                        Value::Date(10)})
                  .ok());
  ASSERT_TRUE(t.Insert({Value::Int(2), Value::Decimal(250), Value::Text("b"),
                        Value::Null()})
                  .ok());
  EXPECT_EQ(t.row_count(), 2u);
  int seen = 0;
  t.Scan([&](const Row&) {
    ++seen;
    return true;
  });
  EXPECT_EQ(seen, 2);
}

TEST(TableTest, ArityEnforced) {
  Table t("t", TestSchema());
  EXPECT_FALSE(t.Insert({Value::Int(1)}).ok());
}

TEST(TableTest, CountAndSum) {
  Table t("t", TestSchema());
  for (int i = 1; i <= 10; ++i) {
    ASSERT_TRUE(t.Insert({Value::Int(i), Value::Decimal(i * 100),
                          Value::Text("x"), Value::Date(i)})
                    .ok());
  }
  EXPECT_EQ(t.CountWhere(nullptr), 10u);
  EXPECT_EQ(t.CountWhere([](const Row& r) { return r[0].AsInt() > 5; }), 5u);
  auto sum = t.SumWhere("price", nullptr);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum.value(), 5500);
  EXPECT_FALSE(t.SumWhere("name", nullptr).ok());
  EXPECT_FALSE(t.SumWhere("missing", nullptr).ok());
}

TEST(DatabaseTest, CatalogBasics) {
  Database db;
  ASSERT_TRUE(db.CreateTable("a", TestSchema()).ok());
  ASSERT_TRUE(db.CreateTable("b", TestSchema()).ok());
  EXPECT_FALSE(db.CreateTable("a", TestSchema()).ok());
  EXPECT_NE(db.GetTable("a"), nullptr);
  EXPECT_EQ(db.GetTable("zzz"), nullptr);
  EXPECT_EQ(db.TableNames(), (std::vector<std::string>{"a", "b"}));
}

Database SampleDb() {
  Database db;
  Table* t = db.CreateTable("items", TestSchema()).TakeValue();
  t->Insert({Value::Int(1), Value::Decimal(999), Value::Text("plain"),
             Value::Date(9000)})
      .ok();
  t->Insert({Value::Int(2), Value::Null(), Value::Text("tab\there"),
             Value::Null()})
      .ok();
  t->Insert({Value::Int(-3), Value::Decimal(-12345),
             Value::Text(" spaces kept "), Value::Date(0)})
      .ok();
  Schema s2;
  s2.columns = {{"k", Type::kInt, 0}};
  Table* t2 = db.CreateTable("tiny", s2).TakeValue();
  t2->Insert({Value::Int(7)}).ok();
  return db;
}

TEST(SqlDumpTest, DumpShape) {
  const std::string dump = DumpSql(SampleDb());
  EXPECT_NE(dump.find("CREATE TABLE items ("), std::string::npos);
  EXPECT_NE(dump.find("price decimal(15,2)"), std::string::npos);
  EXPECT_NE(dump.find("COPY items (id, price, name, day) FROM stdin;"),
            std::string::npos);
  EXPECT_NE(dump.find("\\.\n"), std::string::npos);
  EXPECT_NE(dump.find("1\t9.99\tplain\t1994-08-23"), std::string::npos);
}

TEST(SqlDumpTest, RoundTrip) {
  const Database db = SampleDb();
  const std::string dump = DumpSql(db);
  auto back = LoadSql(dump);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back.value().SameContentAs(db));
  // Dump again: byte-identical (determinism matters for archival).
  EXPECT_EQ(DumpSql(back.value()), dump);
}

TEST(SqlDumpTest, LoadRejectsMalformed) {
  EXPECT_FALSE(LoadSql("DROP TABLE x;").ok());
  EXPECT_FALSE(LoadSql("COPY nowhere (a) FROM stdin;\n\\.\n").ok());
  EXPECT_FALSE(LoadSql("CREATE TABLE t (\n  a bigint\n").ok());  // unterminated
  const std::string bad_row =
      "CREATE TABLE t (\n    a bigint\n);\nCOPY t (a) FROM stdin;\n1\t2\n\\.\n";
  EXPECT_FALSE(LoadSql(bad_row).ok());
}

TEST(SqlDumpTest, EmptyTablesSurvive) {
  Database db;
  db.CreateTable("empty", TestSchema()).ok();
  auto back = LoadSql(DumpSql(db));
  ASSERT_TRUE(back.ok());
  ASSERT_NE(back.value().GetTable("empty"), nullptr);
  EXPECT_EQ(back.value().GetTable("empty")->row_count(), 0u);
}


TEST(CsvTest, ExportShape) {
  const std::string csv = ExportCsv(*SampleDb().GetTable("items"));
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "id,price,name,day");
  EXPECT_NE(csv.find("1,9.99,plain,1994-08-23"), std::string::npos);
  // NULLs are empty fields.
  EXPECT_NE(csv.find("2,,"), std::string::npos);
}

TEST(CsvTest, RoundTrip) {
  const Database db = SampleDb();
  const Table* src = db.GetTable("items");
  const std::string csv = ExportCsv(*src);
  Table copy("items", src->schema());
  ASSERT_TRUE(ImportCsv(csv, &copy).ok());
  EXPECT_EQ(copy.rows(), src->rows());
}

TEST(CsvTest, QuotingRoundTrip) {
  Schema s;
  s.columns = {{"t", Type::kText, 0}};
  Table t("q", s);
  ASSERT_TRUE(t.Insert({Value::Text("a,b")}).ok());
  ASSERT_TRUE(t.Insert({Value::Text("say \"hi\"")}).ok());
  ASSERT_TRUE(t.Insert({Value::Text("line\nbreak")}).ok());
  ASSERT_TRUE(t.Insert({Value::Text("")}).ok());      // empty string
  ASSERT_TRUE(t.Insert({Value::Null()}).ok());         // vs NULL
  const std::string csv = ExportCsv(t);
  Table back("q", s);
  ASSERT_TRUE(ImportCsv(csv, &back).ok());
  EXPECT_EQ(back.rows(), t.rows());
}

TEST(CsvTest, RejectsBadInput) {
  Schema s;
  s.columns = {{"a", Type::kInt, 0}, {"b", Type::kInt, 0}};
  Table t("x", s);
  EXPECT_FALSE(ImportCsv("", &t).ok());                     // no header
  EXPECT_FALSE(ImportCsv("a,wrong\n1,2\n", &t).ok());       // bad header
  EXPECT_FALSE(ImportCsv("a,b\n1\n", &t).ok());             // arity
  EXPECT_FALSE(ImportCsv("a,b\n1,\"unterminated\n", &t).ok());
  EXPECT_FALSE(ImportCsv("a,b\n1,notanint\n", &t).ok());
}

}  // namespace
}  // namespace minidb
}  // namespace ule
