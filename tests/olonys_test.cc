// Tests for the Olonys nested emulator: the DynaRisc interpreter written in
// VeRisc must agree with the native DynaRisc emulator, instruction for
// instruction, on programs exercising the whole ISA. Also covers the
// Bootstrap document round trip.

#include <gtest/gtest.h>

#include <string>

#include "dynarisc/assembler.h"
#include "dynarisc/machine.h"
#include "olonys/bootstrap.h"
#include "olonys/dynarisc_in_verisc.h"
#include "support/random.h"
#include "verisc/implementations.h"

namespace ule {
namespace olonys {
namespace {

dynarisc::Program Asm(const std::string& src) {
  auto r = dynarisc::Assemble(src);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r.TakeValue() : dynarisc::Program{};
}

// Runs a program both natively and nested, requiring identical output.
void ExpectEquivalent(const dynarisc::Program& p, BytesView input) {
  auto native = dynarisc::RunProgram(p, input);
  ASSERT_TRUE(native.ok()) << native.status().ToString();
  auto nested = RunNested(p, input);
  ASSERT_TRUE(nested.ok()) << nested.status().ToString();
  EXPECT_EQ(nested.value(), native.value());
}

TEST(InterpreterTest, GeneratesOnceAndIsDeterministic) {
  const verisc::Program& a = DynaRiscInterpreter();
  const verisc::Program& b = DynaRiscInterpreter();
  EXPECT_EQ(&a, &b);
  EXPECT_GT(a.words.size(), 100u);
  // Regeneration yields identical words (archivability).
  EXPECT_EQ(a.words, verisc::Program::Deserialize(a.Serialize()).value().words);
}

TEST(InterpreterTest, EmptyProgramHaltImmediately) {
  ExpectEquivalent(Asm("SYS #2"), {});
}

TEST(InterpreterTest, EchoProgram) {
  Bytes input = {1, 2, 3, 0, 255, 128};
  ExpectEquivalent(Asm("loop: SYS #0\nJC done\nSYS #1\nJUMP loop\ndone: SYS #2"),
                   input);
}

TEST(InterpreterTest, ArithmeticSweep) {
  // Adds/subtracts a grid of values and emits every result byte by byte.
  const std::string src = R"(
      LDI R5,#0x8000
      MOVE D3,R5
      LDI R0,#0          ; a
outer:
      LDI R1,#0          ; b
inner:
      MOVE R2,R0
      ADD R2,R1          ; a+b
      CALL emit16
      MOVE R2,R0
      SUB R2,R1          ; a-b
      CALL emit16
      MOVE R2,R0
      MUL R2,R1          ; a*b low
      CALL emit16
      MOVE R2,HI         ; a*b high
      CALL emit16
      LDI R6,#0x1357
      ADD R1,R6
      JNC inner          ; until b wraps
      LDI R6,#0x2468
      ADD R0,R6
      JNC outer
      SYS #2
emit16:
      MOVE R7,R2
      MOVE R3,R2
      LSR R3,#8
      MOVE R2,R3
      CALL emit8
      MOVE R2,R7
      CALL emit8
      RET
emit8:
      MOVE R4,R0         ; preserve R0 (SYS #1 writes R0)
      MOVE R0,R2
      SYS #1
      MOVE R0,R4
      RET
  )";
  ExpectEquivalent(Asm(".entry start\nstart: JUMP go\ngo:\n" + src), {});
}

TEST(InterpreterTest, FlagSemanticsAdcSbb) {
  // Chain ADC/SBB through carries and emit intermediate flags as bytes.
  const std::string src = R"(
      LDI R5,#0x8000
      MOVE D3,R5
      LDI R0,#0xFFFF
      LDI R1,#1
      ADD R0,R1          ; C=1, Z=1
      CALL emitflags
      LDI R2,#5
      LDI R3,#3
      ADC R2,R3          ; 5+3+1=9, C=0
      CALL emitflags
      MOVE R0,R2
      SYS #1             ; 9
      LDI R2,#3
      LDI R3,#5
      SUB R2,R3          ; borrow
      CALL emitflags
      LDI R2,#10
      LDI R3,#1
      SBB R2,R3          ; 10-1-1=8
      CALL emitflags
      MOVE R0,R2
      SYS #1             ; 8
      SYS #2
emitflags:               ; emits (C<<1)|Z without disturbing flags' meaning
      LDI R6,#0
      JC havec
      JUMP testz
havec:
      LDI R6,#2
testz:
      JZ havez
      JUMP emitf
havez:
      LDI R7,#1
      OR R6,R7
emitf:
      MOVE R0,R6
      SYS #1
      RET
  )";
  ExpectEquivalent(Asm(src), {});
}

TEST(InterpreterTest, ShiftsAllFourOps) {
  const std::string src = R"(
      LDI R5,#0x8000
      MOVE D3,R5
      LDI R0,#0x8421
      MOVE R1,R0
      LSL R1,#1
      CALL emit
      MOVE R1,R0
      LSR R1,#3
      CALL emit
      MOVE R1,R0
      ASR R1,#3
      CALL emit
      MOVE R1,R0
      ROR R1,#5
      CALL emit
      LDI R2,#11
      MOVE R1,R0
      LSL R1,R2
      CALL emit
      MOVE R1,R0
      LSR R1,R2
      CALL emit
      LDI R2,#0
      MOVE R1,R0
      ROR R1,R2
      CALL emit
      SYS #2
emit:                     ; emit R1 as two bytes
      MOVE R3,R1
      LSR R3,#8
      MOVE R0,R3
      SYS #1
      MOVE R0,R1
      SYS #1
      RET
  )";
  ExpectEquivalent(Asm(src), {});
}

TEST(InterpreterTest, MemoryAndPointers) {
  const std::string src = R"(
      LDI R5,#0x8000
      MOVE D3,R5
      LDI R1,#0x4000
      MOVE D0,R1
      MOVE D1,R1
      LDI R0,#0
      LDI R2,#64
      LDI R3,#1
fill:                     ; mem[0x4000+i] = (i*7) & 0xFF
      MOVE R4,R0
      LDI R6,#7
      MUL R4,R6
      MOVE R7,R0
      MOVE R0,R4
      STM.B R0,[D0+]
      MOVE R0,R7
      ADD R0,R3
      CMP R0,R2
      JNZ fill
      LDI R0,#0
read:                     ; emit them back as words (pairs)
      LDM.W R4,[D1+]
      MOVE R7,R0
      MOVE R0,R4
      SYS #1
      LSR R4,#8
      MOVE R0,R4
      SYS #1
      MOVE R0,R7
      LDI R6,#2
      ADD R0,R6
      CMP R0,R2
      JNZ read
      SYS #2
  )";
  ExpectEquivalent(Asm(src), {});
}

TEST(InterpreterTest, MoveAcrossAllSpaces) {
  const std::string src = R"(
      LDI R5,#0x8000
      MOVE D3,R5
      LDI R0,#0xBEEF
      MOVE D0,R0
      MOVE D1,D0
      MOVE R1,D1
      MOVE R0,R1
      SYS #1
      LSR R0,#8
      SYS #1
      LDI R2,#0x300
      LDI R3,#0x500
      MUL R2,R3          ; HI = 0x000F
      MOVE R4,HI
      MOVE R0,R4
      SYS #1
      SYS #2
  )";
  ExpectEquivalent(Asm(src), {});
}

TEST(InterpreterTest, StackRecursionFibonacci) {
  // Recursive fib(10) via the D3 stack: exercises CALL/RET/LDM/STM deeply.
  const std::string src = R"(
      .entry main
fib:                      ; input R0, output R1 = fib(R0), clobbers R2,R3
      LDI R2,#2
      CMP R0,R2
      JC base            ; R0 < 2
      MOVE R2,R0         ; n
      SUB R0,R3          ; R3 == 1 (set by main) -> R0 = n-1
      MOVE R4,D3
      LDI R5,#2
      SUB R4,R5
      MOVE D3,R4
      STM.W R2,[D3]      ; push n
      CALL fib           ; R1 = fib(n-1)
      LDM.W R2,[D3]      ; peek n
      MOVE R6,R1         ; save fib(n-1)
      STM.W R6,[D3]      ; replace slot with fib(n-1)
      MOVE R0,R2
      LDI R5,#2
      SUB R0,R5          ; n-2
      CALL fib           ; R1 = fib(n-2)
      LDM.W R6,[D3]      ; fib(n-1)
      ADD R1,R6
      MOVE R4,D3         ; pop
      LDI R5,#2
      ADD R4,R5
      MOVE D3,R4
      RET
base:
      MOVE R1,R0
      RET
main:
      LDI R7,#0x8000
      MOVE D3,R7
      LDI R3,#1
      LDI R0,#10
      CALL fib
      MOVE R0,R1
      SYS #1             ; fib(10) = 55
      LSR R1,#8
      MOVE R0,R1
      SYS #1
      SYS #2
  )";
  auto p = Asm(src);
  auto native = dynarisc::RunProgram(p, {});
  ASSERT_TRUE(native.ok());
  ASSERT_EQ(native.value().size(), 2u);
  EXPECT_EQ(native.value()[0], 55);
  ExpectEquivalent(p, {});
}

TEST(InterpreterTest, IllegalOpcodeHaltsNested) {
  // The archived interpreter defines illegal opcodes as halt (isa.h notes
  // the native machine faults instead — divergence is documented).
  dynarisc::Program p;
  p.image = {0xFF, 0xFF};
  auto nested = RunNested(p, {});
  ASSERT_TRUE(nested.ok());
  EXPECT_TRUE(nested.value().empty());
}

TEST(InterpreterTest, EntryPointRespected) {
  dynarisc::Program p = Asm(
      ".entry main\n"
      "dead: LDI R0,#1\nSYS #1\nSYS #2\n"
      "main: LDI R0,#7\nSYS #1\nSYS #2");
  ExpectEquivalent(p, {});
  auto nested = RunNested(p, {});
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(nested.value(), Bytes{7});
}

TEST(InterpreterTest, RunsOnEveryVeriscImplementation) {
  // The full nested stack on each independently written VeRisc VM.
  dynarisc::Program p =
      Asm("loop: SYS #0\nJC done\nLDI R1,#1\nADD R0,R1\nSYS #1\nJUMP loop\n"
          "done: SYS #2");
  Bytes input = {10, 20, 30};
  Bytes expected = {11, 21, 31};
  for (const auto& impl : verisc::AllImplementations()) {
    auto out = RunNested(p, input, {}, impl.run);
    ASSERT_TRUE(out.ok()) << impl.name;
    EXPECT_EQ(out.value(), expected) << impl.name;
  }
}

// Property sweep: random linear programs (no backward jumps) must agree.
class RandomProgramEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgramEquivalence, NativeMatchesNested) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  // Generate a straight-line program over R0..R7 ending in an output loop.
  std::string src = "LDI R7,#0x8000\nMOVE D3,R7\n";
  const char* kOps[] = {"ADD", "ADC", "SUB", "SBB", "CMP",
                        "MUL", "AND", "OR",  "XOR"};
  for (int i = 0; i < 40; ++i) {
    const int kind = static_cast<int>(rng.Below(12));
    const int rd = static_cast<int>(rng.Below(8));
    const int rs = static_cast<int>(rng.Below(8));
    if (kind < 9) {
      src += std::string(kOps[kind]) + " R" + std::to_string(rd) + ",R" +
             std::to_string(rs) + "\n";
    } else if (kind == 9) {
      src += "LDI R" + std::to_string(rd) + ",#" +
             std::to_string(rng.Below(65536)) + "\n";
    } else if (kind == 10) {
      const char* shifts[] = {"LSL", "LSR", "ASR", "ROR"};
      src += std::string(shifts[rng.Below(4)]) + " R" + std::to_string(rd) +
             ",#" + std::to_string(rng.Below(16)) + "\n";
    } else {
      src += "MOVE R" + std::to_string(rd) + ",R" + std::to_string(rs) + "\n";
    }
  }
  // Emit all 8 registers, low byte then high byte.
  for (int r = 0; r < 8; ++r) {
    src += "MOVE R0,R" + std::to_string(r) + "\nSYS #1\nLSR R0,#8\nSYS #1\n";
    // note: R0 is overwritten progressively; emit R0 first
    if (r == 0) continue;
  }
  src = "LDI R6,#0\n" + src + "SYS #2\n";
  ExpectEquivalent(Asm(src), {});
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramEquivalence,
                         ::testing::Range(0, 12));

// ---------------- Bootstrap document ----------------

TEST(BootstrapTest, RoundTrip) {
  dynarisc::Program mocoder = Asm("SYS #0\nJC e\nSYS #1\ne: SYS #2");
  const std::string text =
      GenerateBootstrapText(DynaRiscInterpreter(), mocoder);
  auto parsed = ParseBootstrapText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().dynarisc_emulator.words,
            DynaRiscInterpreter().words);
  EXPECT_EQ(parsed.value().mocoder.image, mocoder.image);
}

TEST(BootstrapTest, PseudocodeIsShort) {
  // Paper: "less than 500 lines of code that can be implemented by anyone";
  // "writing less than 300 lines of code" to bootstrap the emulator.
  EXPECT_LT(PseudocodeLineCount(), 300);
}

TEST(BootstrapTest, CorruptedLettersDetected) {
  dynarisc::Program mocoder = Asm("SYS #2");
  std::string text = GenerateBootstrapText(DynaRiscInterpreter(), mocoder);
  // Flip one letter inside the Part II section.
  const size_t pos = text.find("-----BEGIN VERISC PROGRAM-----") + 40;
  text[pos] = (text[pos] == 'A') ? 'B' : 'A';
  EXPECT_FALSE(ParseBootstrapText(text).ok());
}

TEST(BootstrapTest, MissingSectionDetected) {
  EXPECT_FALSE(ParseBootstrapText("not a bootstrap at all").ok());
}

}  // namespace
}  // namespace olonys
}  // namespace ule
