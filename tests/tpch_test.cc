// Tests for the TPC-H generator substrate.

#include <gtest/gtest.h>

#include "minidb/sqldump.h"
#include "tpch/tpch.h"

namespace ule {
namespace tpch {
namespace {

TEST(TpchTest, AllEightTablesPresent) {
  Options opt;
  opt.scale_factor = 0.0005;
  auto db = Generate(opt);
  ASSERT_TRUE(db.ok());
  const std::vector<std::string> expected = {"region",   "nation", "supplier",
                                             "part",     "partsupp",
                                             "customer", "orders", "lineitem"};
  EXPECT_EQ(db.value().TableNames(), expected);
}

TEST(TpchTest, FixedTablesHaveSpecCardinality) {
  Options opt;
  opt.scale_factor = 0.001;
  auto db = Generate(opt);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value().GetTable("region")->row_count(), 5u);
  EXPECT_EQ(db.value().GetTable("nation")->row_count(), 25u);
}

TEST(TpchTest, ScaledCardinalitiesTrackSpec) {
  Options opt;
  opt.scale_factor = 0.002;
  auto db = Generate(opt);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value().GetTable("supplier")->row_count(), 20u);
  EXPECT_EQ(db.value().GetTable("part")->row_count(), 400u);
  EXPECT_EQ(db.value().GetTable("partsupp")->row_count(), 1600u);
  EXPECT_EQ(db.value().GetTable("customer")->row_count(), 300u);
  EXPECT_EQ(db.value().GetTable("orders")->row_count(), 3000u);
  // lineitem: 1..7 lines per order
  const size_t li = db.value().GetTable("lineitem")->row_count();
  EXPECT_GT(li, 3000u);
  EXPECT_LT(li, 21000u);
}

TEST(TpchTest, Deterministic) {
  Options opt;
  opt.scale_factor = 0.001;
  auto a = Generate(opt);
  auto b = Generate(opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(minidb::DumpSql(a.value()), minidb::DumpSql(b.value()));
  opt.seed = 7;
  auto c = Generate(opt);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(minidb::DumpSql(a.value()), minidb::DumpSql(c.value()));
}

TEST(TpchTest, RejectsBadScale) {
  Options opt;
  opt.scale_factor = 0;
  EXPECT_FALSE(Generate(opt).ok());
  opt.scale_factor = 2.0;
  EXPECT_FALSE(Generate(opt).ok());
}

TEST(TpchTest, DumpRoundTripsThroughLoader) {
  Options opt;
  opt.scale_factor = 0.0005;
  auto db = Generate(opt);
  ASSERT_TRUE(db.ok());
  const std::string dump = minidb::DumpSql(db.value());
  auto back = minidb::LoadSql(dump);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back.value().SameContentAs(db.value()));
}

TEST(TpchTest, LineitemDatesAreConsistent) {
  Options opt;
  opt.scale_factor = 0.0005;
  auto db = Generate(opt);
  ASSERT_TRUE(db.ok());
  const minidb::Table* li = db.value().GetTable("lineitem");
  const int ship = li->schema().FindColumn("l_shipdate");
  const int receipt = li->schema().FindColumn("l_receiptdate");
  ASSERT_GE(ship, 0);
  ASSERT_GE(receipt, 0);
  li->Scan([&](const minidb::Row& r) {
    EXPECT_LT(r[static_cast<size_t>(ship)].AsInt(),
              r[static_cast<size_t>(receipt)].AsInt());
    return true;
  });
}

TEST(TpchTest, GenerateForDumpSizeHitsTarget) {
  // The paper's experiment: "roughly 1MB in size (1.2MB)".
  auto db = GenerateForDumpSize(300000);
  ASSERT_TRUE(db.ok());
  const size_t size = minidb::DumpSql(db.value()).size();
  EXPECT_GT(size, 300000u * 7 / 10);
  EXPECT_LT(size, 300000u * 13 / 10);
}

}  // namespace
}  // namespace tpch
}  // namespace ule
